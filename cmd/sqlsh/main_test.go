package main

import (
	"errors"
	"strings"
	"testing"
)

// Script mode: a failing statement mid-script must be reported on stderr,
// later statements must still run by default, and the exit status (the
// returned error) must be nonzero.
func TestScriptErrorContinuesAndFailsExit(t *testing.T) {
	script := strings.Join([]string{
		"SELECT FROM nonsense",
		"SELECT income, COUNT(*) FROM cases GROUP BY income",
	}, "\n")
	var out, errBuf strings.Builder
	err := run([]string{"-gen", "census", "-rows", "200"}, strings.NewReader(script), &out, &errBuf)
	if !errors.Is(err, errStatementFailed) {
		t.Fatalf("run returned %v, want errStatementFailed", err)
	}
	if !strings.Contains(errBuf.String(), "sqlsh: error:") {
		t.Fatalf("stderr missing error report: %q", errBuf.String())
	}
	if strings.Contains(out.String(), "error:") {
		t.Fatalf("error leaked to stdout: %q", out.String())
	}
	// The second statement ran: its result and cost line are on stdout.
	if !strings.Contains(out.String(), "simulated cost:") {
		t.Fatalf("statement after the error did not run: %q", out.String())
	}
}

// -e aborts at the first error: the following statement must not execute.
func TestScriptAbortFlag(t *testing.T) {
	script := strings.Join([]string{
		"SELECT FROM nonsense",
		"SELECT income, COUNT(*) FROM cases GROUP BY income",
	}, "\n")
	var out, errBuf strings.Builder
	err := run([]string{"-gen", "census", "-rows", "200", "-e"}, strings.NewReader(script), &out, &errBuf)
	if !errors.Is(err, errStatementFailed) {
		t.Fatalf("run returned %v, want errStatementFailed", err)
	}
	if strings.Contains(out.String(), "simulated cost:") {
		t.Fatalf("statement after the error ran under -e: %q", out.String())
	}
}

// A clean script exits 0 and prints results.
func TestScriptCleanExit(t *testing.T) {
	script := "SELECT income, COUNT(*) FROM cases GROUP BY income\n\\q\n"
	var out, errBuf strings.Builder
	if err := run([]string{"-gen", "census", "-rows", "200"}, strings.NewReader(script), &out, &errBuf); err != nil {
		t.Fatalf("clean script returned %v; stderr=%q", err, errBuf.String())
	}
	if !strings.Contains(out.String(), "simulated cost:") {
		t.Fatalf("no result output: %q", out.String())
	}
	if errBuf.Len() != 0 {
		t.Fatalf("stderr not empty: %q", errBuf.String())
	}
}
