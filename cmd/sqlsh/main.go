// Command sqlsh is an interactive shell over the embedded SQL engine — the
// simulated "SQL Server 7.0" backend the middleware runs against. It is
// useful for inspecting generated datasets and for issuing the paper's
// UNION-of-GROUP-BY counts queries by hand.
//
// With -csv or -gen a dataset is preloaded into table "cases". Statements
// are terminated by newline; the shell prints the result set plus the
// simulated cost of each statement. Query errors go to stderr and make the
// exit status nonzero; -e aborts on the first error instead of continuing
// (the scripting default is to keep going, like psql without ON_ERROR_STOP).
//
// Beyond plain SQL, the shell covers the in-database scoring surface:
// \train builds a classifier over "cases" through the middleware and
// registers it in the engine's model catalog, after which the scoring
// statements apply it — SCORE TABLE streams the vectorized batch path and
// CLASSIFY evaluates the model per row inside any SELECT.
//
// Example session:
//
//	$ sqlsh -gen census -rows 5000
//	sql> SELECT income, COUNT(*) FROM cases GROUP BY income
//	sql> \train m 4
//	sql> SCORE TABLE cases USING m WORKERS 4
//	sql> SELECT CLASSIFY(m, age, workclass, education, marital, occupation,
//	     relationship, race, sex, capgain, caploss, hours, country) FROM cases LIMIT 3
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errStatementFailed) {
			fmt.Fprintf(os.Stderr, "sqlsh: %v\n", err)
		}
		os.Exit(1)
	}
}

// errStatementFailed marks "one or more statements errored": the failures
// were already reported to stderr as they happened, so main only sets the
// exit status.
var errStatementFailed = errors.New("statement failed")

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sqlsh", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csvPath := fs.String("csv", "", "preload this CSV into table 'cases'")
	gen := fs.String("gen", "", "preload a generated dataset: tree, gaussians or census")
	rows := fs.Int("rows", 5000, "rows for -gen")
	seed := fs.Int64("seed", 1, "seed for -gen")
	abort := fs.Bool("e", false, "abort on the first statement error instead of continuing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)

	var srv *engine.Server
	if *csvPath != "" || *gen != "" {
		ds, err := load(*csvPath, *gen, *rows, *seed)
		if err != nil {
			return err
		}
		srv, err = engine.NewServer(eng, "cases", ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded %d rows into table cases: %s\n", ds.N(), ds.Schema)
	}

	failed := false
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(stdout, "sql> ")
	for sc.Scan() {
		stmt := strings.TrimSpace(sc.Text())
		switch {
		case stmt == "":
		case stmt == "\\q" || stmt == "exit" || stmt == "quit":
			return exitStatus(failed)
		case stmt == "\\d":
			for _, n := range eng.TableNames() {
				t, _ := eng.Table(n)
				fmt.Fprintf(stdout, "%s (%s): %d rows, %d pages\n", n, strings.Join(t.Cols, ", "), t.NumRows(), t.NumPages())
			}
		case stmt == "\\models":
			for _, n := range eng.ModelNames() {
				m, err := eng.Model(n)
				if err != nil {
					fmt.Fprintf(stderr, "sqlsh: model %s: %v\n", n, err)
					continue
				}
				fmt.Fprintf(stdout, "%s: %d nodes, %d attrs, %d classes\n", n, len(m.Nodes), m.Cols, m.Classes)
			}
		case strings.HasPrefix(stmt, "\\train"):
			before := meter.Snapshot()
			if err := train(stdout, eng, srv, stmt); err != nil {
				fmt.Fprintf(stderr, "sqlsh: error: %v\n", err)
				failed = true
				if *abort {
					return errStatementFailed
				}
			} else {
				fmt.Fprintf(stdout, "simulated cost: %v\n", meter.Since(before))
			}
		default:
			before := meter.Snapshot()
			rs, err := eng.Exec(stmt)
			if err != nil {
				fmt.Fprintf(stderr, "sqlsh: error: %v\n", err)
				failed = true
				if *abort {
					return errStatementFailed
				}
			} else {
				if rs != nil {
					fmt.Fprint(stdout, rs)
					fmt.Fprintf(stdout, "(%d rows) ", len(rs.Rows))
				}
				fmt.Fprintf(stdout, "simulated cost: %v\n", meter.Since(before))
			}
		}
		fmt.Fprint(stdout, "sql> ")
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return exitStatus(failed)
}

// train handles "\train <model> [maxdepth]": build a tree over the preloaded
// table through the middleware, compile it, and register it in the engine's
// model catalog so SCORE TABLE and CLASSIFY can reach it.
func train(stdout io.Writer, eng *engine.Engine, srv *engine.Server, stmt string) error {
	if srv == nil {
		return fmt.Errorf("\\train needs a preloaded table (use -csv or -gen)")
	}
	fields := strings.Fields(stmt)
	if len(fields) < 2 || len(fields) > 3 {
		return fmt.Errorf("usage: \\train <model> [maxdepth]")
	}
	opt := dtree.Options{}
	if len(fields) == 3 {
		d, err := strconv.Atoi(fields[2])
		if err != nil || d < 1 {
			return fmt.Errorf("\\train: maxdepth must be a positive integer, got %q", fields[2])
		}
		opt.MaxDepth = d
	}
	m, err := mw.New(srv, mw.Config{})
	if err != nil {
		return err
	}
	defer m.Close()
	tree, err := dtree.Build(m, opt)
	if err != nil {
		return err
	}
	model, err := dtree.Compile(tree, fields[1])
	if err != nil {
		return err
	}
	if err := eng.RegisterModel(model); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "model %s: %d nodes, %d leaves, depth %d\n", fields[1], tree.NumNodes, tree.NumLeaves, tree.MaxDepth)
	return nil
}

func exitStatus(failed bool) error {
	if failed {
		return errStatementFailed
	}
	return nil
}

func load(csvPath, gen string, rows int, seed int64) (*data.Dataset, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return data.ReadCSV(f)
	}
	switch gen {
	case "tree":
		cfg := datagen.TreeGenConfig{Seed: seed}.Normalize()
		cfg.CasesPerLeaf = rows / cfg.Leaves
		if cfg.CasesPerLeaf < 1 {
			cfg.CasesPerLeaf = 1
		}
		ds, _, err := datagen.GenerateTreeData(cfg)
		return ds, err
	case "gaussians":
		cfg := datagen.GaussianConfig{Seed: seed}.Normalize()
		cfg.PerClass = rows / cfg.Components
		if cfg.PerClass < 1 {
			cfg.PerClass = 1
		}
		return datagen.GenerateGaussians(cfg)
	case "census":
		return datagen.GenerateCensus(datagen.CensusConfig{Rows: rows, Seed: seed})
	}
	return nil, fmt.Errorf("unknown generator %q", gen)
}
