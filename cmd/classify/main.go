// Command classify builds a decision tree (or a Naive Bayes model) over a
// categorical dataset through the scalable classification middleware,
// reporting the model, its accuracy and the simulated cost of the build.
//
// The dataset comes from a CSV file (-csv; last column is the class) or from
// one of the built-in generators (-gen tree|gaussians|census).
//
// Examples:
//
//	classify -gen census -rows 20000 -staging file+memory -memory 4
//	classify -csv data.csv -measure gini -maxdepth 6 -rules
//	classify -gen gaussians -model nb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/nb"
	"repro/internal/obs"
	_ "repro/internal/obs/profile" // registers the -explain profile renderer
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "classify: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		csvPath = flag.String("csv", "", "CSV file (header row; last column is the class)")
		gen     = flag.String("gen", "", "generator: tree, gaussians or census")
		rows    = flag.Int("rows", 10000, "rows for the generators")
		seed    = flag.Int64("seed", 1, "generator seed")

		model    = flag.String("model", "dtree", "model: dtree or nb")
		measure  = flag.String("measure", "entropy", "split measure: entropy, gini or gainratio")
		split    = flag.String("split", "binary", "split style: binary or multiway")
		maxDepth = flag.Int("maxdepth", 0, "maximum tree depth (0 = unlimited)")
		minRows  = flag.Int64("minrows", 0, "minimum rows to split a node")
		rules    = flag.Bool("rules", false, "print the tree as decision rules")
		prune    = flag.String("prune", "", "pruning: none (default), pessimistic or reduced-error")
		testFrac = flag.Float64("test", 0, "hold out this fraction as a test set (e.g. 0.3)")
		dotOut   = flag.String("dot", "", "write the tree in Graphviz DOT format to this file")
		cvFolds  = flag.Int("cv", 0, "additionally run k-fold cross-validation (e.g. 5)")

		staging  = flag.String("staging", "memory", "staging: none, file, memory or file+memory")
		policy   = flag.String("policy", "split", "file policy: split, pernode or singleton")
		memory   = flag.Float64("memory", 0, "middleware memory budget in MB (0 = unlimited)")
		workers  = flag.Int("workers", 1, "parallel scan workers per batch (1 = sequential)")
		columnar = flag.Bool("columnar", true, "scan the columnar row-group copy where available (false forces the row path)")

		traceOut    = flag.String("trace", "", "write a deterministic virtual-time trace of the build to this file")
		traceFormat = flag.String("trace-format", "chrome", "trace format: chrome (Perfetto-loadable) or ndjson")
		metricsOut  = flag.String("metrics", "", "write per-batch metrics and counter timelines (JSON) to this file")
		explain     = flag.Bool("explain", false, "print the EXPLAIN ANALYZE-style build profile (per-span costs, critical path, skew)")
	)
	flag.Parse()

	ds, err := loadDataset(*csvPath, *gen, *rows, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d rows, %d attributes, %d classes (%.2f MB)\n",
		ds.N(), ds.Schema.NumAttrs(), ds.Schema.Class.Card, float64(ds.Bytes())/(1<<20))

	train := ds
	var test *data.Dataset
	if *testFrac > 0 {
		if *testFrac >= 1 {
			return fmt.Errorf("-test must be in (0,1)")
		}
		train, test = dtree.Split(ds, *testFrac, *seed)
		fmt.Printf("split: %d train / %d test rows\n", train.N(), test.N())
	}

	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)
	srv, err := engine.NewServer(eng, "cases", train)
	if err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1")
	}
	mcfg := mw.Config{Memory: int64(*memory * (1 << 20)), Workers: *workers}
	if !*columnar {
		mcfg.Columnar = mw.ColumnarOff
	}
	switch *staging {
	case "none":
		mcfg.Staging = mw.StageNone
	case "file":
		mcfg.Staging = mw.StageFileOnly
	case "memory":
		mcfg.Staging = mw.StageMemoryOnly
	case "file+memory":
		mcfg.Staging = mw.StageFileAndMemory
	default:
		return fmt.Errorf("unknown staging %q", *staging)
	}
	switch *policy {
	case "split":
		mcfg.FilePolicy = mw.FileSplitThreshold
	case "pernode":
		mcfg.FilePolicy = mw.FilePerNode
	case "singleton":
		mcfg.FilePolicy = mw.FileSingleton
	default:
		return fmt.Errorf("unknown file policy %q", *policy)
	}
	// Observability attaches to the engine and middleware before the build and
	// observes the meter without charging it: traces and metrics never change
	// the simulated cost or the model.
	col := obs.NewCollector(*traceOut != "" || *explain, *metricsOut != "")
	if col != nil {
		tr, pm := col.Proc("classify", meter)
		eng.SetTracer(tr)
		mcfg.Metrics = pm
	}
	m, err := mw.New(srv, mcfg)
	if err != nil {
		return err
	}
	defer m.Close()

	if *model == "nb" {
		nbm, err := nb.Train(m, 1)
		if err != nil {
			return err
		}
		fmt.Printf("naive bayes: trained on %d rows\n", nbm.Rows)
		fmt.Printf("training accuracy: %.4f\n", nbm.Accuracy(train))
		if test != nil {
			fmt.Printf("test accuracy:     %.4f\n", nbm.Accuracy(test))
		}
		fmt.Printf("simulated cost: %v\n", meter.Now())
		fmt.Printf("counters: %v\n", meter)
		if err := writeExplain(col, *explain); err != nil {
			return err
		}
		return writeObs(col, *traceOut, *traceFormat, *metricsOut)
	}

	opt := dtree.Options{MaxDepth: *maxDepth, MinRows: *minRows}
	switch *measure {
	case "entropy":
		opt.Measure = dtree.Entropy
	case "gini":
		opt.Measure = dtree.Gini
	case "gainratio":
		opt.Measure = dtree.GainRatio
	default:
		return fmt.Errorf("unknown measure %q", *measure)
	}
	switch *split {
	case "binary":
		opt.Split = dtree.BinarySplit
	case "multiway":
		opt.Split = dtree.MultiwaySplit
	default:
		return fmt.Errorf("unknown split style %q", *split)
	}

	tree, err := dtree.Build(m, opt)
	if err != nil {
		return err
	}
	fmt.Printf("tree: %d nodes, %d leaves, depth %d\n", tree.NumNodes, tree.NumLeaves, tree.MaxDepth)

	switch *prune {
	case "", "none":
	case "pessimistic":
		n := tree.PrunePessimistic(0)
		fmt.Printf("pessimistic pruning removed %d subtrees: %d nodes, %d leaves remain\n",
			n, tree.NumNodes, tree.NumLeaves)
	case "reduced-error":
		if test == nil {
			return fmt.Errorf("reduced-error pruning needs a holdout set: pass -test 0.3")
		}
		n := tree.PruneReducedError(test)
		fmt.Printf("reduced-error pruning removed %d subtrees: %d nodes, %d leaves remain\n",
			n, tree.NumNodes, tree.NumLeaves)
	default:
		return fmt.Errorf("unknown pruning %q", *prune)
	}

	fmt.Printf("training accuracy: %.4f\n", tree.Accuracy(train))
	if test != nil {
		cm := dtree.Evaluate(tree, test)
		fmt.Printf("test accuracy:     %.4f (%d held-out rows)\n", cm.Accuracy(), test.N())
		fmt.Println(cm)
	}
	fmt.Printf("simulated cost: %v\n", meter.Now())
	fmt.Printf("counters: %v\n", meter)
	if *cvFolds > 1 {
		cv, err := dtree.CrossValidate(ds, *cvFolds, opt, *seed)
		if err != nil {
			return err
		}
		fmt.Println(cv)
	}
	if *rules {
		fmt.Println("\nrules:")
		for _, r := range tree.Rules() {
			fmt.Println("  " + r)
		}
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		if err := tree.WriteDot(w); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	if err := writeExplain(col, *explain); err != nil {
		return err
	}
	return writeObs(col, *traceOut, *traceFormat, *metricsOut)
}

// writeExplain prints the post-hoc build profile to stdout.
func writeExplain(col *obs.Collector, explain bool) error {
	if !explain {
		return nil
	}
	fmt.Println("\nexplain (virtual-time build profile):")
	return col.WriteProfile(os.Stdout, "text")
}

// writeObs writes the requested trace and metrics files; nil col is a no-op.
func writeObs(col *obs.Collector, tracePath, traceFormat, metricsPath string) error {
	if col == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := col.WriteTrace(f, traceFormat); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s (%s; load chrome format at https://ui.perfetto.dev)\n", tracePath, traceFormat)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := col.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if s := col.Summary(); s != "" {
			fmt.Print(s)
		}
		fmt.Printf("wrote metrics %s\n", metricsPath)
	}
	return nil
}

func loadDataset(csvPath, gen string, rows int, seed int64) (*data.Dataset, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return data.ReadCSV(f)
	}
	switch gen {
	case "", "tree":
		cfg := datagen.TreeGenConfig{Seed: seed}
		cfg = cfg.Normalize()
		cfg.CasesPerLeaf = rows / cfg.Leaves
		if cfg.CasesPerLeaf < 1 {
			cfg.CasesPerLeaf = 1
		}
		ds, _, err := datagen.GenerateTreeData(cfg)
		return ds, err
	case "gaussians":
		cfg := datagen.GaussianConfig{Seed: seed}
		cfg = cfg.Normalize()
		cfg.PerClass = rows / cfg.Components
		if cfg.PerClass < 1 {
			cfg.PerClass = 1
		}
		return datagen.GenerateGaussians(cfg)
	case "census":
		return datagen.GenerateCensus(datagen.CensusConfig{Rows: rows, Seed: seed})
	}
	return nil, fmt.Errorf("unknown generator %q (want tree, gaussians or census)", gen)
}
