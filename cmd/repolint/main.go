// Command repolint runs the repository's static-analysis suite (see
// internal/analysis) over the packages matching the given patterns
// (default ./...) and exits non-zero if any invariant is violated:
//
//	go run ./cmd/repolint ./...
//
// Diagnostics print as file:line:col: analyzer: message. A justified
// exception is annotated in the source with //repolint:<analyzer> <reason>
// on the flagged line or the line above.
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(".", analysis.Analyzers(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s) in %d analyzer(s) suite\n", len(diags), len(analysis.Analyzers()))
		os.Exit(1)
	}
}
