// Command repolint runs the repository's static-analysis suite (see
// internal/analysis) over the packages matching the given patterns
// (default ./...) and exits non-zero if any invariant is violated:
//
//	go run ./cmd/repolint ./...
//
// Diagnostics print as file:line:col: analyzer: message. With -json each
// finding is emitted as one JSON object per line on stdout (analyzer,
// position, message, callee chain) so CI can archive and diff the output;
// stdout is byte-identical across reruns. With -stats the per-analyzer
// wall times and the module summary-coverage figures print to stderr
// (stderr only — timings are nondeterministic by nature and must never
// contaminate the comparable stream).
//
// A justified exception is annotated in the source with
// //repolint:<analyzer> <reason> on the flagged line or the line above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

// jsonFinding is the stable shape of one -json output line.
type jsonFinding struct {
	Analyzer string   `json:"analyzer"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON Lines on stdout")
	stats := flag.Bool("stats", false, "print per-analyzer wall times and summary coverage to stderr")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.RunSuite(".", analysis.Analyzers(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	if *stats {
		for _, tm := range res.Timings {
			fmt.Fprintf(os.Stderr, "repolint: %-14s %v\n", tm.Name, tm.Elapsed)
		}
		fmt.Fprintf(os.Stderr, "repolint: summaries: %d functions, %d cross-function obligation events\n",
			res.Stats.Functions, res.Stats.CrossFunc)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range res.Diags {
			f := jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
				Chain:    d.Chain,
			}
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, "repolint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range res.Diags {
			fmt.Println(d.String())
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s) in %d analyzer(s) suite\n", len(res.Diags), len(analysis.Analyzers()))
		os.Exit(1)
	}
}
