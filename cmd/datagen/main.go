// Command datagen produces the paper's synthetic datasets (§5.1) as CSV on
// stdout or to a file: data drawn from random decision trees, from mixtures
// of Gaussians discretized to categorical bins, or census-like demographic
// data.
//
// Examples:
//
//	datagen -gen tree -leaves 500 -cases 950 -attrs 25 > tree.csv
//	datagen -gen gaussians -dims 100 -classes 10 -perclass 10000 -out gauss.csv
//	datagen -gen census -rows 300000 -out census.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/data"
	"repro/internal/datagen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gen  = flag.String("gen", "tree", "generator: tree, gaussians or census")
		out  = flag.String("out", "", "output file (default stdout)")
		seed = flag.Int64("seed", 1, "random seed")

		// tree generator
		leaves  = flag.Int("leaves", 500, "tree: leaves in the generating tree")
		attrs   = flag.Int("attrs", 25, "tree: number of attributes")
		values  = flag.Int("values", 4, "tree: mean values per attribute")
		valsSD  = flag.Float64("values-stddev", 0, "tree: stddev of values per attribute")
		classes = flag.Int("classes", 10, "tree/gaussians: number of classes")
		cases   = flag.Int("cases", 100, "tree: cases per leaf")
		casesSD = flag.Float64("cases-stddev", 0, "tree: stddev of cases per leaf")
		skew    = flag.Float64("skew", 0, "tree: 0=balanced .. 1=lop-sided")

		// gaussians generator
		dims     = flag.Int("dims", 100, "gaussians: dimensions")
		perClass = flag.Int("perclass", 1000, "gaussians: samples per component")
		bins     = flag.Int("bins", 4, "gaussians: discretization bins")

		// census generator
		rows  = flag.Int("rows", 30000, "census: rows")
		noise = flag.Float64("noise", 0.08, "census: label noise")
	)
	flag.Parse()

	var (
		ds  *data.Dataset
		err error
	)
	switch *gen {
	case "tree":
		ds, _, err = datagen.GenerateTreeData(datagen.TreeGenConfig{
			Leaves: *leaves, Attrs: *attrs, Values: *values, ValuesStdDev: *valsSD,
			Classes: *classes, CasesPerLeaf: *cases, CasesStdDev: *casesSD,
			Skew: *skew, Seed: *seed,
		})
	case "gaussians":
		ds, err = datagen.GenerateGaussians(datagen.GaussianConfig{
			Dims: *dims, Components: *classes, PerClass: *perClass, Bins: *bins, Seed: *seed,
		})
	case "census":
		ds, err = datagen.GenerateCensus(datagen.CensusConfig{Rows: *rows, Seed: *seed, Noise: *noise})
	default:
		return fmt.Errorf("unknown generator %q (want tree, gaussians or census)", *gen)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := ds.WriteCSV(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d rows, %d columns (%.2f MB encoded)\n",
		ds.N(), ds.Schema.NumCols(), float64(ds.Bytes())/(1<<20))
	return nil
}
