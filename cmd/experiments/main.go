// Command experiments reproduces the paper's experimental study (§5.2): it
// runs one experiment per figure on the simulated stack and prints each
// figure's series in virtual-time seconds.
//
// Usage:
//
//	experiments [-scale 1.0] [-run fig6] [-format text|markdown|json] [-out FILE] [-list]
//
// Scale multiplies the workload sizes (leaves, rows); 1.0 completes in well
// under a minute, larger values approach the paper's sizes at the cost of
// wall time. Output format "markdown" emits the tables EXPERIMENTS.md
// embeds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro/internal/exp"
	"repro/internal/obs"
)

// writeFile creates path and streams fn's output into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	run := flag.String("run", "", "run only this experiment id (see -list)")
	format := flag.String("format", "text", "output format: text, markdown or json")
	out := flag.String("out", "", "write output to this file instead of stdout")
	list := flag.Bool("list", false, "list experiment ids and exit")
	check := flag.Bool("check", false, "validate each figure's shape against the paper's claim; exit nonzero on failure")
	columnar := flag.Bool("columnar", true, "scan the columnar row-group copy where available; false forces every figure build onto the row path (ablation)")
	parallel := flag.Int("parallel", 1, "run up to this many experiments concurrently (each is internally deterministic)")
	traceOut := flag.String("trace", "", "write a deterministic virtual-time trace of every tree build to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace format: chrome (Perfetto-loadable) or ndjson")
	metricsOut := flag.String("metrics", "", "write per-batch metrics and counter timelines (JSON) to this file")
	flag.Parse()
	if !*columnar {
		exp.SetForceRowPath(true)
	}

	// Observability registers one proc per tree build in registration order;
	// run experiments sequentially so the trace is deterministic.
	col := obs.NewCollector(*traceOut != "", *metricsOut != "")
	if col != nil && *parallel != 1 {
		fmt.Fprintln(os.Stderr, "experiments: -trace/-metrics force -parallel=1 for deterministic output")
		*parallel = 1
	}

	if *list {
		for _, r := range exp.Runners() {
			fmt.Printf("%-12s %s\n", r.ID, r.Notes)
		}
		return
	}

	var runners []exp.Runner
	if *run != "" {
		r, ok := exp.Get(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q; known: %s\n", *run, strings.Join(exp.IDs(), ", "))
			os.Exit(2)
		}
		runners = []exp.Runner{r}
	} else {
		runners = exp.Runners()
	}

	// Run experiments (optionally several at a time); results are collected
	// and emitted in registry order, so output is identical regardless of
	// parallelism.
	type outcome struct {
		e   *exp.Experiment
		err error
	}
	outcomes := make([]outcome, len(runners))
	sem := make(chan struct{}, max(1, *parallel))
	var wg sync.WaitGroup
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r exp.Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var env *exp.Env
			if col != nil {
				env = &exp.Env{Obs: col, Label: r.ID}
			}
			e, err := r.Run(env, *scale)
			outcomes[i] = outcome{e, err}
		}(i, r)
	}
	wg.Wait()

	var b strings.Builder
	failures := 0
	for i, r := range runners {
		e, err := outcomes[i].e, outcomes[i].err
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		if *check {
			if err := exp.Check(e); err != nil {
				fmt.Fprintf(&b, "FAIL %-12s %v\n", e.ID, err)
				failures++
			} else {
				fmt.Fprintf(&b, "ok   %-12s %s\n", e.ID, e.Title)
			}
			continue
		}
		switch *format {
		case "markdown":
			b.WriteString(e.Markdown())
		case "json":
			js, err := e.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
				os.Exit(1)
			}
			b.WriteString(js)
		default:
			b.WriteString(e.Text())
			b.WriteString("\n")
		}
	}
	defer func() {
		if failures > 0 {
			os.Exit(1)
		}
	}()

	if col != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, func(w io.Writer) error { return col.WriteTrace(w, *traceFormat) }); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote trace %s\n", *traceOut)
		}
		if *metricsOut != "" {
			if err := writeFile(*metricsOut, col.WriteMetrics); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote metrics %s\n", *metricsOut)
		}
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(b.String())
}
