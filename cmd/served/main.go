// Command served is the network daemon over the embedded SQL engine and the
// classification middleware: it preloads one dataset into table "cases" and
// serves the wire protocol of internal/wire on a TCP address. Clients — the
// ccsql database/sql driver, or anything speaking the protocol — submit
// plain SQL statements, or the daemon's BUILD TREE command:
//
//	BUILD TREE [MAXDEPTH n] [MINROWS n] [OUTPUT STATS|TREE|TRACE]
//
// Builds submitted by concurrent clients run as one multi-tenant fleet
// cohort: the memory budget splits fairly across them and, with
// -scan-sharing (the default), their table scans share physical page reads.
// SIGTERM or SIGINT drains gracefully: in-flight statements complete and
// flush before the process exits.
//
// Example:
//
//	$ served -gen census -rows 20000 -addr 127.0.0.1:7744 &
//	$ # any database/sql client: sql.Open("ccsql", "127.0.0.1:7744")
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "served: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("served", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", "127.0.0.1:7744", "TCP listen address")
	csvPath := fs.String("csv", "", "preload this CSV into table 'cases'")
	gen := fs.String("gen", "census", "preload a generated dataset: tree, gaussians or census")
	rows := fs.Int("rows", 20000, "rows for -gen")
	seed := fs.Int64("seed", 1, "seed for -gen")
	workers := fs.Int("workers", 1, "parallel scan workers per session")
	memory := fs.Int64("memory", 0, "total middleware memory budget in bytes, split across sessions (0 = unlimited)")
	maxSessions := fs.Int("max-sessions", 8, "concurrent build sessions; arrivals beyond the cap wait (0 = unlimited)")
	scanSharing := fs.Bool("scan-sharing", true, "share physical table scans across concurrent builds")
	meanGap := fs.Int64("mean-gap-ns", 0, "mean virtual inter-arrival gap of a build cohort (0 = simultaneous)")
	arrivalSeed := fs.Int64("arrival-seed", 1, "seed for the virtual arrival schedule")
	stageDir := fs.String("dir", "", "directory for middleware staging files (default: OS temp dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := load(*csvPath, *gen, *rows, *seed)
	if err != nil {
		return err
	}
	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)
	srv, err := engine.NewServer(eng, "cases", ds)
	if err != nil {
		return err
	}

	cfg := serve.DaemonConfig{
		Fleet: serve.FleetConfig{
			Base: mw.Config{
				Staging: mw.StageFileAndMemory,
				Workers: *workers,
				Dir:     *stageDir,
			},
			TotalMemory: *memory,
			MaxSessions: *maxSessions,
			ScanSharing: *scanSharing,
		},
		Seed:      *arrivalSeed,
		MeanGapNS: *meanGap,
	}
	d := serve.NewDaemon(srv, cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("served: listening on %s (table cases, %d rows: %s)\n", ln.Addr(), ds.N(), ds.Schema)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- d.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Println("served: draining")
		d.Drain(ln)
		<-errCh
		return nil
	case err := <-errCh:
		return err
	}
}

// load builds the preloaded dataset from -csv or -gen, mirroring sqlsh.
func load(csvPath, gen string, rows int, seed int64) (*data.Dataset, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return data.ReadCSV(f)
	}
	switch gen {
	case "tree":
		cfg := datagen.TreeGenConfig{Seed: seed}.Normalize()
		cfg.CasesPerLeaf = rows / cfg.Leaves
		if cfg.CasesPerLeaf < 1 {
			cfg.CasesPerLeaf = 1
		}
		ds, _, err := datagen.GenerateTreeData(cfg)
		return ds, err
	case "gaussians":
		cfg := datagen.GaussianConfig{Seed: seed}.Normalize()
		cfg.PerClass = rows / cfg.Components
		if cfg.PerClass < 1 {
			cfg.PerClass = 1
		}
		return datagen.GenerateGaussians(cfg)
	case "census":
		cfg := datagen.CensusConfig{Seed: seed, Rows: rows}.Normalize()
		return datagen.GenerateCensus(cfg)
	}
	return nil, fmt.Errorf("unknown -gen %q (want tree, gaussians or census)", gen)
}
