// Command perfgate is the virtual-time perf-regression gate: it profiles the
// fixed scenario set (internal/exp CollectPerf), compares the condensed
// metrics against the committed baseline in BENCH_history.json, and exits
// nonzero when any metric grew past the tolerance band. Because every metric
// is derived from the simulator's virtual clock, the gate has zero noise —
// it fails only when a code change actually changed simulated cost.
//
// Usage:
//
//	perfgate [-history BENCH_history.json] [-scale 0.25] [-tol 0.10]
//	         [-explain FILE] [-update]
//
// -update records the current run as the new baseline (appending an entry,
// never rewriting history) instead of gating; commit the updated file
// together with the change that moved the numbers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	history := flag.String("history", "BENCH_history.json", "cumulative benchmark history file")
	scale := flag.Float64("scale", 0.25, "workload scale factor (baselines are matched per scale)")
	tol := flag.Float64("tol", 0.10, "relative tolerance band per metric")
	explain := flag.String("explain", "", "write the combined profile explain report to this file")
	update := flag.Bool("update", false, "append the current run to the history as the new baseline")
	flag.Parse()

	if err := run(*history, *scale, *tol, *explain, *update); err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}
}

func run(history string, scale, tol float64, explain string, update bool) error {
	snaps, report, err := exp.CollectPerf(scale)
	if err != nil {
		return err
	}
	if explain != "" {
		if err := os.WriteFile(explain, []byte(report), 0o644); err != nil {
			return err
		}
		fmt.Printf("perfgate: explain report written to %s\n", explain)
	}

	h, err := exp.LoadPerfHistory(history)
	if err != nil {
		return err
	}
	if update {
		h.Append(scale, snaps)
		if err := h.Save(history); err != nil {
			return err
		}
		fmt.Printf("perfgate: recorded baseline seq %d at scale %g in %s (%d scenarios)\n",
			h.Entries[len(h.Entries)-1].Seq, scale, history, len(snaps))
		return nil
	}

	base := h.Baseline(scale)
	if base == nil {
		return fmt.Errorf("no baseline at scale %g in %s; run with -update to record one", scale, history)
	}
	if msgs := exp.ComparePerf(base.Snapshots, snaps, tol); len(msgs) > 0 {
		for _, m := range msgs {
			fmt.Fprintln(os.Stderr, "perfgate: REGRESSION:", m)
		}
		return fmt.Errorf("%d regression(s) vs baseline seq %d at tol %g", len(msgs), base.Seq, tol)
	}
	fmt.Printf("perfgate: OK — %d scenarios within tol %g of baseline seq %d (scale %g)\n",
		len(snaps), tol, base.Seq, scale)
	return nil
}
