// Package ccsql is a database/sql driver for the cmd/served wire protocol:
// register-on-import in the stdlib manner, so
//
//	import _ "repro/driver"
//	db, _ := sql.Open("ccsql", "127.0.0.1:7744")
//	rows, _ := db.Query("SELECT class, COUNT(*) FROM census GROUP BY class")
//
// works with stock database/sql. The DSN is the daemon's TCP address. The
// driver speaks plain statements only (no placeholder parameters, no
// transactions — the served engine is read-mostly and autocommit), and
// streams result rows batch by batch, so large result sets never fully
// buffer on the client.
package ccsql

import (
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/wire"
)

func init() {
	sql.Register("ccsql", &Driver{})
}

// Driver implements driver.Driver.
type Driver struct{}

// Open dials the daemon and performs the protocol handshake.
func (Driver) Open(dsn string) (driver.Conn, error) {
	nc, err := net.Dial("tcp", dsn)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(nc, wire.THello, wire.Hello{Version: wire.Version}); err != nil {
		nc.Close()
		return nil, err
	}
	var ack wire.HelloAck
	if err := wire.Expect(nc, wire.THelloAck, &ack); err != nil {
		nc.Close()
		return nil, fmt.Errorf("ccsql: handshake: %w", err)
	}
	return &Conn{nc: nc, ack: ack}, nil
}

// Conn is one protocol connection. database/sql guarantees single-goroutine
// use.
type Conn struct {
	nc     net.Conn
	ack    wire.HelloAck
	inRows bool // a Rows result stream is still draining
}

// Table returns the served table's name, from the handshake.
func (c *Conn) Table() string { return c.ack.Table }

// Prepare returns a statement handle; the protocol has no server-side
// prepare, so this is client-side bookkeeping only.
func (c *Conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{c: c, query: query}, nil
}

// Close sends an orderly goodbye and closes the connection.
func (c *Conn) Close() error {
	wire.WriteFrame(c.nc, wire.TGoodbye, nil)
	return c.nc.Close()
}

// Begin is unsupported: the served engine is autocommit.
func (c *Conn) Begin() (driver.Tx, error) {
	return nil, errors.New("ccsql: transactions are not supported")
}

// stmt is a prepared statement handle.
type stmt struct {
	c     *Conn
	query string
}

// Close releases the handle (nothing is held server-side).
func (s *stmt) Close() error { return nil }

// NumInput returns 0: the protocol has no placeholder parameters, so any
// bound argument is rejected by database/sql before reaching the wire.
func (s *stmt) NumInput() int { return 0 }

// Exec runs the statement and drains its result stream.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	r, err := s.Query(args)
	if err != nil {
		return nil, err
	}
	rows := r.(*rows)
	if err := rows.Close(); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

// Query runs the statement and returns its streaming result rows.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, errors.New("ccsql: placeholder parameters are not supported")
	}
	if s.c.inRows {
		return nil, errors.New("ccsql: connection busy with an open result set")
	}
	if err := wire.WriteFrame(s.c.nc, wire.TQuery, wire.Query{SQL: s.query}); err != nil {
		return nil, err
	}
	var hdr wire.ResultHeader
	if err := wire.Expect(s.c.nc, wire.TResultHeader, &hdr); err != nil {
		return nil, err
	}
	s.c.inRows = true
	return &rows{c: s.c, cols: hdr.Cols}, nil
}

// rows streams one statement's result set.
type rows struct {
	c     *Conn
	cols  []string
	batch [][]wire.Cell
	i     int
	done  bool
}

// Columns returns the result's column names.
func (r *rows) Columns() []string { return r.cols }

// Close drains any frames the caller has not consumed, so the connection is
// immediately reusable for the next statement. The stream is drained to its
// end even when a statement error arrives mid-stream: returning early would
// leave inRows set and poison the connection for every later statement.
func (r *rows) Close() error {
	var ferr error
	for !r.done {
		if err := r.fetch(); err != nil && err != io.EOF && ferr == nil {
			ferr = err
		}
	}
	r.c.inRows = false
	return ferr
}

// fetch reads the next frame of the stream into the batch buffer.
func (r *rows) fetch() error {
	t, payload, err := wire.ReadFrame(r.c.nc)
	if err != nil {
		r.done = true
		return err
	}
	switch t {
	case wire.TRowBatch:
		var b wire.RowBatch
		if err := wire.Unmarshal(payload, &b); err != nil {
			r.done = true
			return err
		}
		r.batch, r.i = b.Rows, 0
		return nil
	case wire.TScoredBatch:
		var b wire.ScoredBatch
		if err := wire.Unmarshal(payload, &b); err != nil {
			r.done = true
			return err
		}
		if len(b.Dists) > 0 && len(b.Dists) != len(b.Classes) {
			// The frame is self-consistent JSON with inconsistent content:
			// surface a typed error but leave the stream drainable, so Close
			// can still walk to the terminating frame and the connection
			// stays usable.
			return fmt.Errorf("ccsql: scored batch has %d distributions for %d rows", len(b.Dists), len(b.Classes))
		}
		// Expand scored rows to cell rows matching the announced header:
		// the class label, then the per-class counts when streamed.
		rows := make([][]wire.Cell, len(b.Classes))
		for i, cl := range b.Classes {
			row := make([]wire.Cell, 0, len(r.cols))
			row = append(row, wire.Cell{I: int64(cl)})
			if len(b.Dists) > 0 {
				for _, d := range b.Dists[i] {
					row = append(row, wire.Cell{I: d})
				}
			}
			rows[i] = row
		}
		r.batch, r.i = rows, 0
		return nil
	case wire.TDone:
		r.done = true
		return io.EOF
	case wire.TError:
		r.done = true
		var e wire.Error
		if err := wire.Unmarshal(payload, &e); err != nil {
			return err
		}
		return errors.New(e.Msg)
	default:
		r.done = true
		return fmt.Errorf("ccsql: unexpected %s frame in result stream", t)
	}
}

// Next fills dest with the next row, or returns io.EOF at stream end.
func (r *rows) Next(dest []driver.Value) error {
	for r.i >= len(r.batch) {
		if r.done {
			r.c.inRows = false
			return io.EOF
		}
		if err := r.fetch(); err != nil {
			if err == io.EOF {
				r.c.inRows = false
			}
			return err
		}
	}
	row := r.batch[r.i]
	r.i++
	if len(row) != len(dest) {
		return fmt.Errorf("ccsql: row has %d values, want %d", len(row), len(dest))
	}
	for i, cell := range row {
		if cell.Str {
			dest[i] = cell.S
		} else {
			dest[i] = cell.I
		}
	}
	return nil
}
