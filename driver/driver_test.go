package ccsql

import (
	"database/sql"
	"database/sql/driver"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/wire"
)

// fakeServer speaks just enough of the wire protocol to exercise the driver's
// result-stream handling: every query answers with a one-row batch, and
// queries containing "boom" end the stream with a statement error instead of
// Done.
func fakeServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				var hello wire.Hello
				if err := wire.Expect(nc, wire.THello, &hello); err != nil {
					return
				}
				if err := wire.WriteFrame(nc, wire.THelloAck, wire.HelloAck{Version: wire.Version, Table: "t"}); err != nil {
					return
				}
				for {
					typ, payload, err := wire.ReadFrame(nc)
					if err != nil || typ == wire.TGoodbye {
						return
					}
					if typ != wire.TQuery {
						return
					}
					var q wire.Query
					if err := wire.Unmarshal(payload, &q); err != nil {
						return
					}
					switch {
					case strings.Contains(q.SQL, "scorebad"):
						// A scored batch whose distribution count disagrees
						// with its class count: the driver must reject it
						// with a typed error, not index out of range.
						wire.WriteFrame(nc, wire.TResultHeader, wire.ResultHeader{Cols: []string{"class", "c0", "c1"}})
						wire.WriteFrame(nc, wire.TScoredBatch, wire.ScoredBatch{Model: "m", Classes: []int32{0}, Dists: [][]int64{{1, 2}, {3, 4}}})
						wire.WriteFrame(nc, wire.TDone, wire.Done{Rows: 1})
					case strings.Contains(q.SQL, "scoreboom"):
						// A statement error after the first scored batch:
						// mid-stream failure on the scoring path.
						wire.WriteFrame(nc, wire.TResultHeader, wire.ResultHeader{Cols: []string{"class", "c0", "c1"}})
						wire.WriteFrame(nc, wire.TScoredBatch, wire.ScoredBatch{Model: "m", Classes: []int32{1}, Dists: [][]int64{{0, 5}}})
						wire.WriteFrame(nc, wire.TError, wire.Error{Msg: "scoring failed mid-stream"})
					case strings.Contains(q.SQL, "score"):
						// A healthy scored stream split over two batches,
						// the second class-only (no distributions).
						wire.WriteFrame(nc, wire.TResultHeader, wire.ResultHeader{Cols: []string{"class"}})
						wire.WriteFrame(nc, wire.TScoredBatch, wire.ScoredBatch{Model: "m", Classes: []int32{0, 1}})
						wire.WriteFrame(nc, wire.TScoredBatch, wire.ScoredBatch{Model: "m", Classes: []int32{1}})
						wire.WriteFrame(nc, wire.TDone, wire.Done{Rows: 3})
					case strings.Contains(q.SQL, "boom"):
						wire.WriteFrame(nc, wire.TResultHeader, wire.ResultHeader{Cols: []string{"a"}})
						wire.WriteFrame(nc, wire.TRowBatch, wire.RowBatch{Rows: [][]wire.Cell{{{I: 1}}}})
						wire.WriteFrame(nc, wire.TError, wire.Error{Msg: "boom"})
					default:
						wire.WriteFrame(nc, wire.TResultHeader, wire.ResultHeader{Cols: []string{"a"}})
						wire.WriteFrame(nc, wire.TRowBatch, wire.RowBatch{Rows: [][]wire.Cell{{{I: 1}}}})
						wire.WriteFrame(nc, wire.TDone, wire.Done{Rows: 1})
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestConnReusableAfterStatementError pins the Rows.Close drain contract: a
// statement error arriving mid-stream must still clear the connection's
// in-rows state, so the next statement on the same connection runs instead
// of failing with "connection busy". (Before the fix, Close returned early
// on the TError frame and poisoned the connection.)
func TestConnReusableAfterStatementError(t *testing.T) {
	addr := fakeServer(t)
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// One pooled connection, so the second statement must reuse the first's.
	db.SetMaxOpenConns(1)

	rows, err := db.Query("SELECT boom")
	if err != nil {
		t.Fatalf("query start: %v", err)
	}
	for rows.Next() {
		var v int64
		if err := rows.Scan(&v); err != nil {
			t.Fatal(err)
		}
	}
	if err := rows.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("rows.Err() = %v, want the boom statement error", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("rows.Close: %v", err)
	}

	got := 0
	rows2, err := db.Query("SELECT ok")
	if err != nil {
		t.Fatalf("second query on the same connection: %v", err)
	}
	defer rows2.Close()
	for rows2.Next() {
		got++
	}
	if err := rows2.Err(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("second query returned %d rows, want 1", got)
	}
}

// TestScoredStreamLazyBatches drives the driver below database/sql to pin
// that scored rows stream batch by batch: after the first Next the client
// buffer holds only the first frame's rows, and the second frame is fetched
// lazily when the buffer runs dry.
func TestScoredStreamLazyBatches(t *testing.T) {
	addr := fakeServer(t)
	conn, err := Driver{}.Open(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	st, err := conn.Prepare("SELECT score")
	if err != nil {
		t.Fatal(err)
	}
	dr, err := st.(*stmt).Query(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := dr.(*rows)

	dest := make([]driver.Value, 1)
	if err := r.Next(dest); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if got := len(r.batch); got != 2 {
		t.Fatalf("after first Next the buffer holds %d rows, want only the first batch's 2", got)
	}
	if r.done {
		t.Fatal("stream marked done while a second batch is still unread")
	}
	want := []int64{0, 1, 1}
	got := []int64{dest[0].(int64)}
	for {
		err := r.Next(dest)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, dest[0].(int64))
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: class %d, want %d", i, got[i], want[i])
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("rows.Close: %v", err)
	}
}

// TestScoredStreamMidStreamError pins that a statement error arriving after
// a scored batch surfaces through rows.Err and leaves the pooled connection
// reusable — the scoring dual of TestConnReusableAfterStatementError.
func TestScoredStreamMidStreamError(t *testing.T) {
	addr := fakeServer(t)
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	rows, err := db.Query("SELECT scoreboom")
	if err != nil {
		t.Fatalf("query start: %v", err)
	}
	n := 0
	for rows.Next() {
		var class, c0, c1 int64
		if err := rows.Scan(&class, &c0, &c1); err != nil {
			t.Fatal(err)
		}
		if class != 1 || c0 != 0 || c1 != 5 {
			t.Fatalf("scored row = (%d, %d, %d), want (1, 0, 5)", class, c0, c1)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("read %d rows before the error, want 1", n)
	}
	if err := rows.Err(); err == nil || !strings.Contains(err.Error(), "scoring failed mid-stream") {
		t.Fatalf("rows.Err() = %v, want the mid-stream scoring error", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("rows.Close: %v", err)
	}
	if _, err := db.Exec("SELECT ok"); err != nil {
		t.Fatalf("connection poisoned after scored-stream error: %v", err)
	}
}

// TestScoredStreamMismatchedDists pins the typed rejection of a scored batch
// whose distribution count disagrees with its class count, and that the
// malformed frame does not poison the connection.
func TestScoredStreamMismatchedDists(t *testing.T) {
	addr := fakeServer(t)
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	if _, err := db.Exec("SELECT scorebad"); err == nil || !strings.Contains(err.Error(), "distributions for") {
		t.Fatalf("exec error = %v, want the mismatched-distributions rejection", err)
	}
	if _, err := db.Exec("SELECT ok"); err != nil {
		t.Fatalf("connection poisoned after malformed scored batch: %v", err)
	}
}

// TestExecDrainsScoredStream pins that rows.Close (via Exec) drains the new
// TScoredBatch frame type to the stream's end.
func TestExecDrainsScoredStream(t *testing.T) {
	addr := fakeServer(t)
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	if _, err := db.Exec("SELECT score"); err != nil {
		t.Fatalf("exec over scored stream: %v", err)
	}
	if _, err := db.Exec("SELECT ok"); err != nil {
		t.Fatalf("connection not reusable after drained scored stream: %v", err)
	}
}

// TestCloseReportsStatementError pins that an undrained result set closed
// early still surfaces the statement error while leaving the connection
// reusable.
func TestCloseReportsStatementError(t *testing.T) {
	addr := fakeServer(t)
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	// Exec drains via rows.Close without reading any row first.
	if _, err := db.Exec("SELECT boom"); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("exec error = %v, want boom", err)
	}
	if _, err := db.Exec("SELECT ok"); err != nil {
		t.Fatalf("connection not reusable after drained statement error: %v", err)
	}
}
