package ccsql

import (
	"database/sql"
	"net"
	"strings"
	"testing"

	"repro/internal/wire"
)

// fakeServer speaks just enough of the wire protocol to exercise the driver's
// result-stream handling: every query answers with a one-row batch, and
// queries containing "boom" end the stream with a statement error instead of
// Done.
func fakeServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				var hello wire.Hello
				if err := wire.Expect(nc, wire.THello, &hello); err != nil {
					return
				}
				if err := wire.WriteFrame(nc, wire.THelloAck, wire.HelloAck{Version: wire.Version, Table: "t"}); err != nil {
					return
				}
				for {
					typ, payload, err := wire.ReadFrame(nc)
					if err != nil || typ == wire.TGoodbye {
						return
					}
					if typ != wire.TQuery {
						return
					}
					var q wire.Query
					if err := wire.Unmarshal(payload, &q); err != nil {
						return
					}
					wire.WriteFrame(nc, wire.TResultHeader, wire.ResultHeader{Cols: []string{"a"}})
					wire.WriteFrame(nc, wire.TRowBatch, wire.RowBatch{Rows: [][]wire.Cell{{{I: 1}}}})
					if strings.Contains(q.SQL, "boom") {
						wire.WriteFrame(nc, wire.TError, wire.Error{Msg: "boom"})
					} else {
						wire.WriteFrame(nc, wire.TDone, wire.Done{Rows: 1})
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestConnReusableAfterStatementError pins the Rows.Close drain contract: a
// statement error arriving mid-stream must still clear the connection's
// in-rows state, so the next statement on the same connection runs instead
// of failing with "connection busy". (Before the fix, Close returned early
// on the TError frame and poisoned the connection.)
func TestConnReusableAfterStatementError(t *testing.T) {
	addr := fakeServer(t)
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// One pooled connection, so the second statement must reuse the first's.
	db.SetMaxOpenConns(1)

	rows, err := db.Query("SELECT boom")
	if err != nil {
		t.Fatalf("query start: %v", err)
	}
	for rows.Next() {
		var v int64
		if err := rows.Scan(&v); err != nil {
			t.Fatal(err)
		}
	}
	if err := rows.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("rows.Err() = %v, want the boom statement error", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("rows.Close: %v", err)
	}

	got := 0
	rows2, err := db.Query("SELECT ok")
	if err != nil {
		t.Fatalf("second query on the same connection: %v", err)
	}
	defer rows2.Close()
	for rows2.Next() {
		got++
	}
	if err := rows2.Err(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("second query returned %d rows, want 1", got)
	}
}

// TestCloseReportsStatementError pins that an undrained result set closed
// early still surfaces the statement error while leaving the connection
// reusable.
func TestCloseReportsStatementError(t *testing.T) {
	addr := fakeServer(t)
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	// Exec drains via rows.Close without reading any row first.
	if _, err := db.Exec("SELECT boom"); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("exec error = %v, want boom", err)
	}
	if _, err := db.Exec("SELECT ok"); err != nil {
		t.Fatalf("connection not reusable after drained statement error: %v", err)
	}
}
