// Package baseline implements the comparison strategies the paper measures
// the middleware against:
//
//   - ExtractAll (§2.3 strawman 1): pull the entire table through a cursor
//     to the client and run the traditional classification client on the
//     local copy. When the extracted data exceeds the client's memory it is
//     spilled to client secondary storage and every counting pass re-reads
//     it from disk — the scalability failure the paper's architecture
//     exists to avoid.
//   - SQLCounting (§2.3 strawman 2, Figure 7 right): grow the tree by
//     executing one UNION-of-GROUP-BY SQL statement per active node at the
//     server; "optimizers in most database systems are not capable of
//     exploiting the commonality", so every arm of every statement performs
//     its own scan.
//   - FileStore (Figure 8a): read the table from the database once, save it
//     locally, and feed every subsequent scan from the local file instead
//     of the RDBMS ("the effect of not using the RDBMS as a continuous
//     source of data"). This is exactly the middleware restricted to
//     file-only staging with a singleton file, so it delegates to that
//     configuration.
package baseline

import (
	"repro/internal/cc"
	"repro/internal/data"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// ExtractAll pulls every row of the server's table to the client (charging
// transfer plus client materialization) and grows the tree with the
// traditional level-synchronous client. clientMemory bounds the client's
// RAM: if the extracted data fits, counting passes touch memory; otherwise
// the copy lives on client disk and every pass pays per-row disk reads.
// clientMemory = 0 means unlimited.
func ExtractAll(srv *engine.Server, clientMemory int64, opt dtree.Options) (*dtree.Tree, error) {
	meter := srv.Meter()
	costs := meter.Costs()
	ds := data.NewDataset(srv.Schema())
	cur := srv.OpenScan(predicate.MatchAll())
	defer cur.Close()
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		meter.Charge(sim.CtrClientRows, costs.ClientRowLoad, 1)
		ds.Rows = append(ds.Rows, row.Clone())
	}

	spill := clientMemory > 0 && ds.Bytes() > clientMemory
	if spill {
		// The copy is written once to client disk.
		meter.Charge(sim.CtrFileRowsWritten, costs.FileRowWrite, int64(ds.N()))
	}
	onRow := func() {
		if spill {
			meter.Charge(sim.CtrFileRowsRead, costs.FileRowRead, 1)
		} else {
			meter.Charge(sim.CtrMemRowsRead, costs.MemRowRead, 1)
		}
	}
	return dtree.BuildLevelwise(ds, opt, onRow)
}

// SQLCounting grows the tree with all counting done by the database server
// via UNION-of-GROUP-BY queries: one SQL statement per active node. The tree
// produced is identical to the middleware's; only the cost differs
// (dramatically, per Figure 7).
func SQLCounting(srv *engine.Server, opt dtree.Options) (*dtree.Tree, error) {
	fetch := func(path predicate.Conj, attrs []int) (*cc.Table, error) {
		rs, err := srv.Engine().Exec(mw.CountsSQL(srv.Schema(), srv.TableName(), path, attrs))
		if err != nil {
			return nil, err
		}
		return mw.CountsFromResult(srv.Schema(), rs)
	}
	return dtree.BuildWithCounts(srv.Schema(), srv.NumRows(), opt, fetch)
}

// FileStore grows the tree with the file-based data store of Figure 8a: the
// middleware restricted to a single staging file filled on the first scan
// and re-scanned for every batch, with the given middleware memory budget
// for counts tables.
func FileStore(srv *engine.Server, dir string, memory int64, opt dtree.Options) (*dtree.Tree, error) {
	m, err := mw.New(srv, mw.Config{
		Staging:    mw.StageFileOnly,
		FilePolicy: mw.FileSingleton,
		Memory:     memory,
		Dir:        dir,
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	return dtree.Build(m, opt)
}
