package baseline

import (
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/sim"
)

func genData(t *testing.T, seed int64) *data.Dataset {
	t.Helper()
	ds, _, err := datagen.GenerateTreeData(datagen.TreeGenConfig{
		Leaves: 10, Attrs: 6, Values: 3, ValuesStdDev: 0,
		Classes: 4, CasesPerLeaf: 60, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func newServer(t *testing.T, ds *data.Dataset) *engine.Server {
	t.Helper()
	srv, err := engine.NewServer(engine.New(sim.NewDefaultMeter(), 0), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestAllStrategiesProduceTheSameTree: every baseline and the middleware
// agree with the in-memory reference.
func TestAllStrategiesProduceTheSameTree(t *testing.T) {
	ds := genData(t, 1)
	opt := dtree.Options{}
	want, err := dtree.BuildInMemory(ds, opt)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("extract-all", func(t *testing.T) {
		got, err := ExtractAll(newServer(t, ds), 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !dtree.Equal(got, want) {
			t.Error("tree differs")
		}
	})
	t.Run("extract-all-spill", func(t *testing.T) {
		got, err := ExtractAll(newServer(t, ds), 1024, opt) // forces client disk spill
		if err != nil {
			t.Fatal(err)
		}
		if !dtree.Equal(got, want) {
			t.Error("tree differs")
		}
	})
	t.Run("sql-counting", func(t *testing.T) {
		got, err := SQLCounting(newServer(t, ds), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !dtree.Equal(got, want) {
			t.Error("tree differs")
		}
	})
	t.Run("file-store", func(t *testing.T) {
		got, err := FileStore(newServer(t, ds), t.TempDir(), 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !dtree.Equal(got, want) {
			t.Error("tree differs")
		}
	})
}

func TestSQLCountingIsSlowerThanMiddleware(t *testing.T) {
	ds := genData(t, 2)
	opt := dtree.Options{}

	srvMW := newServer(t, ds)
	m, err := mw.New(srvMW, mw.Config{Staging: mw.StageNone})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := dtree.Build(m, opt); err != nil {
		t.Fatal(err)
	}
	mwTime := srvMW.Meter().Now()

	srvSQL := newServer(t, ds)
	if _, err := SQLCounting(srvSQL, opt); err != nil {
		t.Fatal(err)
	}
	sqlTime := srvSQL.Meter().Now()

	if sqlTime < 2*mwTime {
		t.Errorf("sql counting %v not >= 2x middleware %v", sqlTime, mwTime)
	}
}

func TestExtractAllSpillCharges(t *testing.T) {
	ds := genData(t, 3)
	// Fits in client memory: no file traffic.
	srv := newServer(t, ds)
	if _, err := ExtractAll(srv, 2*ds.Bytes(), dtree.Options{}); err != nil {
		t.Fatal(err)
	}
	if srv.Meter().Count(sim.CtrFileRowsRead) != 0 {
		t.Error("in-memory client paid file reads")
	}
	if srv.Meter().Count(sim.CtrMemRowsRead) == 0 {
		t.Error("in-memory client paid no memory reads")
	}

	// Spills: counting passes pay per-row disk reads.
	srv2 := newServer(t, ds)
	if _, err := ExtractAll(srv2, ds.Bytes()/2, dtree.Options{}); err != nil {
		t.Fatal(err)
	}
	if srv2.Meter().Count(sim.CtrFileRowsRead) == 0 {
		t.Error("spilled client paid no file reads")
	}
	if srv2.Meter().Count(sim.CtrFileRowsWritten) != int64(ds.N()) {
		t.Errorf("spill wrote %d rows, want %d", srv2.Meter().Count(sim.CtrFileRowsWritten), ds.N())
	}
	// And the spilled run costs more.
	if srv2.Meter().Now() <= srv.Meter().Now() {
		t.Errorf("spilled run (%v) not slower than in-memory run (%v)",
			srv2.Meter().Now(), srv.Meter().Now())
	}
}

func TestExtractAllTransmitsEverything(t *testing.T) {
	ds := genData(t, 4)
	srv := newServer(t, ds)
	if _, err := ExtractAll(srv, 0, dtree.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Meter().Count(sim.CtrRowsTransmitted); got != int64(ds.N()) {
		t.Errorf("transmitted %d rows, want %d", got, ds.N())
	}
	if got := srv.Meter().Count(sim.CtrClientRows); got != int64(ds.N()) {
		t.Errorf("materialized %d rows, want %d", got, ds.N())
	}
}

func TestFileStoreUsesFileAfterFirstScan(t *testing.T) {
	ds := genData(t, 5)
	srv := newServer(t, ds)
	if _, err := FileStore(srv, t.TempDir(), 0, dtree.Options{}); err != nil {
		t.Fatal(err)
	}
	m := srv.Meter()
	if m.Count(sim.CtrServerScans) != 1 {
		t.Errorf("file store used %d server scans, want exactly 1", m.Count(sim.CtrServerScans))
	}
	if m.Count(sim.CtrFileRowsRead) == 0 {
		t.Error("file store never read its file")
	}
}
