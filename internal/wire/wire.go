// Package wire defines the small length-prefixed protocol cmd/served speaks
// and the ccsql database/sql driver consumes. Every frame is a 4-byte
// big-endian payload length, a 1-byte frame type, and a JSON payload —
// trivially debuggable with a hex dump, stdlib-only, and streaming-friendly:
// query results flow back as a ResultHeader frame followed by any number of
// RowBatch frames and a terminating Done (or Error) frame, so the server
// never buffers a whole result set for the client.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Version is the protocol version negotiated by Hello/HelloAck.
const Version = 1

// MaxPayload bounds a frame's JSON payload; a peer announcing more is
// malformed (or hostile) and the connection should drop.
const MaxPayload = 16 << 20

// BatchRows is the number of result rows a server packs per RowBatch frame.
const BatchRows = 256

// Type tags a frame.
type Type byte

const (
	// THello opens a connection: client → server, payload Hello.
	THello Type = 1 + iota
	// THelloAck acknowledges: server → client, payload HelloAck.
	THelloAck
	// TQuery submits one statement: client → server, payload Query.
	TQuery
	// TResultHeader starts a result stream: server → client, payload
	// ResultHeader.
	TResultHeader
	// TRowBatch carries up to BatchRows result rows, payload RowBatch.
	TRowBatch
	// TDone ends a successful result stream, payload Done.
	TDone
	// TError reports a failed statement (or handshake), payload Error. A
	// statement error ends its result stream but not the connection.
	TError
	// TGoodbye announces an orderly client disconnect, no payload.
	TGoodbye
	// TScoredBatch carries up to BatchRows scored rows of a SCORE result
	// stream, payload ScoredBatch. Streams end with TDone/TError like any
	// other result.
	TScoredBatch
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case THelloAck:
		return "hello-ack"
	case TQuery:
		return "query"
	case TResultHeader:
		return "result-header"
	case TRowBatch:
		return "row-batch"
	case TDone:
		return "done"
	case TError:
		return "error"
	case TGoodbye:
		return "goodbye"
	case TScoredBatch:
		return "scored-batch"
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// Hello is the client's opening frame.
type Hello struct {
	Version int `json:"version"`
}

// HelloAck is the server's handshake reply, describing the served table.
type HelloAck struct {
	Version int    `json:"version"`
	Table   string `json:"table"`
	Rows    int64  `json:"rows"`
}

// Query submits one statement: any SQL the engine accepts, or the daemon's
// BUILD TREE command.
type Query struct {
	SQL string `json:"sql"`
}

// ResultHeader announces a result stream's column names.
type ResultHeader struct {
	Cols []string `json:"cols"`
}

// Cell is one result value: an integer (the default) or a string.
type Cell struct {
	Str bool   `json:"t,omitempty"`
	I   int64  `json:"i,omitempty"`
	S   string `json:"s,omitempty"`
}

// RowBatch carries a slice of a result stream.
type RowBatch struct {
	Rows [][]Cell `json:"rows"`
}

// ScoredBatch carries a slice of a scoring result stream: the model that
// scored it, one predicted class label per row, and (when the client asked
// for them) the per-row class-count distributions, aligned with Classes.
type ScoredBatch struct {
	Model   string    `json:"model"`
	Classes []int32   `json:"classes"`
	Dists   [][]int64 `json:"dists,omitempty"`
}

// Done terminates a successful result stream with its total row count.
type Done struct {
	Rows int64 `json:"rows"`
}

// Error reports a failure.
type Error struct {
	Msg string `json:"msg"`
}

// WriteFrame encodes msg as the frame's JSON payload and writes the frame.
// A nil msg writes an empty payload.
func WriteFrame(w io.Writer, t Type, msg any) error {
	var payload []byte
	if msg != nil {
		var err error
		payload, err = json.Marshal(msg)
		if err != nil {
			return fmt.Errorf("wire: encode %s: %w", t, err)
		}
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: %s payload %d bytes exceeds limit", t, len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame and returns its type and raw JSON payload.
func ReadFrame(r io.Reader) (Type, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("wire: frame payload %d bytes exceeds limit", n)
	}
	t := Type(hdr[4])
	if n == 0 {
		return t, nil, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}

// Unmarshal decodes a frame payload into msg with a wire-level error.
func Unmarshal(payload []byte, msg any) error {
	if err := json.Unmarshal(payload, msg); err != nil {
		return fmt.Errorf("wire: decode payload: %w", err)
	}
	return nil
}

// Expect reads one frame and decodes it into msg, failing when the frame's
// type differs from want — except that a TError frame decodes into an error
// return regardless of want, so protocol errors surface as errors wherever
// the caller expected data. A nil msg skips decoding.
func Expect(r io.Reader, want Type, msg any) error {
	t, payload, err := ReadFrame(r)
	if err != nil {
		return err
	}
	if t == TError && want != TError {
		var e Error
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("wire: malformed error frame: %w", err)
		}
		return fmt.Errorf("%s", e.Msg)
	}
	if t != want {
		return fmt.Errorf("wire: got %s frame, want %s", t, want)
	}
	if msg == nil {
		return nil
	}
	if err := json.Unmarshal(payload, msg); err != nil {
		return fmt.Errorf("wire: decode %s: %w", t, err)
	}
	return nil
}
