package wire

import (
	"bytes"
	"strings"
	"testing"
)

// TestFrameRoundTrip writes each frame type and reads it back.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		t   Type
		msg any
	}{
		{THello, Hello{Version: Version}},
		{THelloAck, HelloAck{Version: Version, Table: "cases", Rows: 42}},
		{TQuery, Query{SQL: "SELECT COUNT(*) FROM cases"}},
		{TResultHeader, ResultHeader{Cols: []string{"a", "b"}}},
		{TRowBatch, RowBatch{Rows: [][]Cell{{{I: 7}, {Str: true, S: "x"}}}}},
		{TDone, Done{Rows: 1}},
		{TError, Error{Msg: "boom"}},
		{TGoodbye, nil},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f.t, f.msg); err != nil {
			t.Fatalf("write %s: %v", f.t, err)
		}
	}

	for _, f := range frames {
		typ, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", f.t, err)
		}
		if typ != f.t {
			t.Fatalf("got %s frame, want %s", typ, f.t)
		}
		if f.msg == nil {
			if len(payload) != 0 {
				t.Fatalf("%s: want empty payload, got %d bytes", f.t, len(payload))
			}
			continue
		}
		var again bytes.Buffer
		if err := WriteFrame(&again, f.t, f.msg); err != nil {
			t.Fatalf("re-encode %s: %v", f.t, err)
		}
		_, p2, err := ReadFrame(&again)
		if err != nil {
			t.Fatalf("re-read %s: %v", f.t, err)
		}
		if !bytes.Equal(payload, p2) {
			t.Fatalf("%s: payload not stable across round trips", f.t)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after all frames read", buf.Len())
	}
}

// TestCellRoundTrip checks both cell variants survive a batch round trip.
func TestCellRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := RowBatch{Rows: [][]Cell{
		{{I: -3}, {I: 0}, {Str: true, S: ""}},
		{{Str: true, S: "hello"}, {I: 1 << 40}},
	}}
	if err := WriteFrame(&buf, TRowBatch, in); err != nil {
		t.Fatal(err)
	}
	_, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out RowBatch
	if err := Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || len(out.Rows[0]) != 3 || len(out.Rows[1]) != 2 {
		t.Fatalf("shape mismatch: %+v", out)
	}
	if out.Rows[0][0].I != -3 || out.Rows[0][2].Str != true || out.Rows[1][0].S != "hello" || out.Rows[1][1].I != 1<<40 {
		t.Fatalf("values mismatch: %+v", out)
	}
}

// TestExpectErrorFrame: Expect converts a TError frame into a Go error even
// when the caller wanted data.
func TestExpectErrorFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TError, Error{Msg: "no such table"}); err != nil {
		t.Fatal(err)
	}
	var hdr ResultHeader
	err := Expect(&buf, TResultHeader, &hdr)
	if err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Fatalf("want the server error surfaced, got %v", err)
	}
}

// TestExpectWrongType: a non-error frame of the wrong type is a protocol
// error naming both types.
func TestExpectWrongType(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TDone, Done{}); err != nil {
		t.Fatal(err)
	}
	err := Expect(&buf, TResultHeader, nil)
	if err == nil || !strings.Contains(err.Error(), "done") || !strings.Contains(err.Error(), "result-header") {
		t.Fatalf("want type-mismatch error, got %v", err)
	}
}

// TestOversizePayload: writing a payload over MaxPayload fails, and a header
// announcing one is rejected before allocation.
func TestOversizePayload(t *testing.T) {
	big := RowBatch{Rows: [][]Cell{{{Str: true, S: strings.Repeat("x", MaxPayload)}}}}
	if err := WriteFrame(&bytes.Buffer{}, TRowBatch, big); err == nil {
		t.Fatal("want write error for oversized payload")
	}

	hdr := []byte{0xff, 0xff, 0xff, 0xff, byte(TRowBatch)}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("want read error for oversized announced payload")
	}
}

// TestShortFrame: a truncated payload is an I/O error, not a hang or panic.
func TestShortFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TQuery, Query{SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, _, err := ReadFrame(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("want error on truncated frame")
	}
}
