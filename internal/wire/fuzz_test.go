package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// frameBytes hand-assembles a raw frame: length prefix, type byte, payload.
func frameBytes(n uint32, t byte, payload []byte) []byte {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], n)
	hdr[4] = t
	return append(hdr[:], payload...)
}

// FuzzDecodeFrame feeds arbitrary byte streams to ReadFrame and pins its
// contract: no panic, errors (never garbage) on truncated input and on
// length prefixes past the 16 MiB cap, zero-length payloads decode to a nil
// payload, and every successful read round-trips to exactly the bytes
// consumed.
func FuzzDecodeFrame(f *testing.F) {
	// Valid frames produced by the real encoder.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, THello, Hello{Version: Version}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var q bytes.Buffer
	_ = WriteFrame(&q, TQuery, Query{SQL: "SELECT COUNT(*) FROM cases"})
	f.Add(q.Bytes())
	// Zero-length payload (nil msg writes no payload bytes).
	var zero bytes.Buffer
	_ = WriteFrame(&zero, TGoodbye, nil)
	f.Add(zero.Bytes())
	// Truncations: empty, partial header, header promising absent payload.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add(frameBytes(10, byte(TDone), []byte("short")))
	// Length prefix exactly at, one past, and far past the cap.
	f.Add(frameBytes(MaxPayload, byte(TRowBatch), nil))
	f.Add(frameBytes(MaxPayload+1, byte(TRowBatch), nil))
	f.Add(frameBytes(^uint32(0), 0xff, nil))
	// Two frames back to back.
	f.Add(append(append([]byte{}, zero.Bytes()...), valid.Bytes()...))
	// Scored-batch frames: a well-formed one, one with a malformed model id
	// (not JSON-escapable garbage in the name position), and a truncated
	// distribution payload (header promises more bytes than follow).
	var sb bytes.Buffer
	_ = WriteFrame(&sb, TScoredBatch, ScoredBatch{
		Model:   "m1",
		Classes: []int32{0, 1, 1},
		Dists:   [][]int64{{5, 1}, {0, 9}, {2, 2}},
	})
	f.Add(sb.Bytes())
	f.Add(frameBytes(24, byte(TScoredBatch), []byte(`{"model":1,"classes":{}}`)))
	var sbt bytes.Buffer
	_ = WriteFrame(&sbt, TScoredBatch, ScoredBatch{Model: "m", Classes: []int32{1}, Dists: [][]int64{{1, 2}}})
	f.Add(sbt.Bytes()[:len(sbt.Bytes())-7])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, payload, err := ReadFrame(r)
		if err != nil {
			// Error cases must be the documented ones: truncation or the
			// payload cap. Anything else is a new failure mode.
			if err != io.EOF && err != io.ErrUnexpectedEOF &&
				!strings.Contains(err.Error(), "exceeds limit") {
				t.Fatalf("unexpected ReadFrame error class: %v", err)
			}
			if len(data) >= 5 {
				if n := binary.BigEndian.Uint32(data[:4]); n <= MaxPayload && len(data) >= 5+int(n) {
					t.Fatalf("ReadFrame errored (%v) on a complete in-cap frame (len=%d)", err, n)
				}
			}
			return
		}
		n := binary.BigEndian.Uint32(data[:4])
		if n > MaxPayload {
			t.Fatalf("ReadFrame accepted %d-byte payload past the %d cap", n, MaxPayload)
		}
		if int(n) != len(payload) {
			t.Fatalf("payload length %d, header promised %d", len(payload), n)
		}
		if n == 0 && payload != nil {
			t.Fatalf("zero-length payload decoded non-nil: %q", payload)
		}
		// Round-trip: re-assembling the frame must reproduce exactly the
		// consumed prefix of the input.
		consumed := 5 + int(n)
		if got := frameBytes(n, byte(typ), payload); !bytes.Equal(got, data[:consumed]) {
			t.Fatalf("re-encoded frame differs from consumed input:\n got %x\nwant %x", got, data[:consumed])
		}
		if r.Len() != len(data)-consumed {
			t.Fatalf("ReadFrame consumed %d bytes, want %d", len(data)-r.Len(), consumed)
		}
		// Unmarshal into the matching message type must never panic; errors
		// are fine (arbitrary payloads are rarely valid JSON).
		switch typ {
		case THello:
			_ = Unmarshal(payload, &Hello{})
		case TRowBatch:
			_ = Unmarshal(payload, &RowBatch{})
		case TScoredBatch:
			var sb ScoredBatch
			if err := Unmarshal(payload, &sb); err == nil && len(sb.Dists) > 0 {
				if len(sb.Dists) != len(sb.Classes) {
					// Misaligned distributions decode (JSON cannot enforce
					// the invariant); receivers must length-check, so the
					// fuzz target does what a receiver does.
					_ = sb
				}
			}
		case TError:
			_ = Unmarshal(payload, &Error{})
		}
	})
}
