// Package discretize converts numeric attributes to the categorical codes
// the classification stack operates on. The paper assumes "all attributes
// are categorical or have been discretized" (§1, referring to [CFB97] and to
// Fayyad & Irani's entropy-based method [FI92b/FI93] for numeric-valued
// attributes); this package supplies the three standard discretizers:
//
//   - EqualWidth: k equal-width bins over the observed range;
//   - EqualFrequency: k bins with (approximately) equal row counts;
//   - EntropyMDL: Fayyad & Irani's supervised method — recursively choose
//     the boundary minimizing class-entropy and accept it only if it passes
//     the minimum description length criterion.
//
// A fitted Discretizer maps float64 values to data.Value codes and can be
// applied to unseen values (clamping to the learned bins).
package discretize

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
)

// Discretizer maps one numeric column to categorical codes via learned cut
// points: value v falls in bin i where i is the number of cuts <= v.
type Discretizer struct {
	Cuts []float64 // ascending; len(Cuts)+1 bins
}

// Bins returns the number of bins.
func (d *Discretizer) Bins() int { return len(d.Cuts) + 1 }

// Code maps a value to its bin.
func (d *Discretizer) Code(v float64) data.Value {
	// Binary search for the first cut > v.
	i := sort.SearchFloat64s(d.Cuts, v)
	// SearchFloat64s returns the first index with Cuts[i] >= v; values equal
	// to a cut belong to the right bin boundary-exclusive on the left, so
	// adjust: bin = count of cuts strictly <= v.
	for i < len(d.Cuts) && d.Cuts[i] <= v {
		i++
	}
	return data.Value(i)
}

// EqualWidth fits k equal-width bins over [min(values), max(values)].
func EqualWidth(values []float64, k int) (*Discretizer, error) {
	if k < 2 {
		return nil, fmt.Errorf("discretize: need at least 2 bins, got %d", k)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("discretize: no values")
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return &Discretizer{}, nil // single bin: constant column
	}
	d := &Discretizer{}
	width := (hi - lo) / float64(k)
	for i := 1; i < k; i++ {
		d.Cuts = append(d.Cuts, lo+width*float64(i))
	}
	return d, nil
}

// EqualFrequency fits k bins holding approximately equal numbers of rows.
// Duplicate boundary values collapse, so the result may have fewer bins.
func EqualFrequency(values []float64, k int) (*Discretizer, error) {
	if k < 2 {
		return nil, fmt.Errorf("discretize: need at least 2 bins, got %d", k)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("discretize: no values")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	d := &Discretizer{}
	for i := 1; i < k; i++ {
		idx := i * len(sorted) / k
		if idx <= 0 || idx >= len(sorted) {
			continue
		}
		cut := sorted[idx]
		if len(d.Cuts) == 0 || cut > d.Cuts[len(d.Cuts)-1] {
			d.Cuts = append(d.Cuts, cut)
		}
	}
	return d, nil
}

// EntropyMDL fits Fayyad & Irani's entropy-based discretization with the
// MDL stopping criterion: boundaries are candidate midpoints between
// adjacent values of different classes; the boundary minimizing the weighted
// class entropy is accepted when information gain exceeds the MDL threshold,
// and the procedure recurses on both sides. maxBins caps the result
// (0 = unlimited).
func EntropyMDL(values []float64, classes []data.Value, classCard, maxBins int) (*Discretizer, error) {
	if len(values) != len(classes) {
		return nil, fmt.Errorf("discretize: %d values vs %d classes", len(values), len(classes))
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("discretize: no values")
	}
	pairs := make([]pair, len(values))
	for i := range values {
		pairs[i] = pair{values[i], classes[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })

	d := &Discretizer{}
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if maxBins > 0 && len(d.Cuts)+1 >= maxBins {
			return
		}
		n := hi - lo
		if n < 4 {
			return
		}
		total := histOf(pairs[lo:hi], classCard)
		hAll := entropy(total, int64(n))

		// Scan boundaries: prefix class histogram.
		best := -1
		bestH := math.Inf(1)
		left := make([]int64, classCard)
		for i := lo; i < hi-1; i++ {
			left[pairs[i].c]++
			if pairs[i].v == pairs[i+1].v {
				continue // not a boundary
			}
			nl := int64(i - lo + 1)
			nr := int64(hi - i - 1)
			right := make([]int64, classCard)
			for c := range right {
				right[c] = total[c] - left[c]
			}
			h := (float64(nl)*entropy(left, nl) + float64(nr)*entropy(right, nr)) / float64(n)
			if h < bestH {
				bestH = h
				best = i
			}
		}
		if best < 0 {
			return
		}
		gain := hAll - bestH

		// MDL criterion (Fayyad & Irani 1993).
		k := distinctClasses(total)
		leftHist := histOf(pairs[lo:best+1], classCard)
		rightHist := histOf(pairs[best+1:hi], classCard)
		k1, k2 := distinctClasses(leftHist), distinctClasses(rightHist)
		h1 := entropy(leftHist, int64(best+1-lo))
		h2 := entropy(rightHist, int64(hi-best-1))
		delta := math.Log2(math.Pow(3, float64(k))-2) -
			(float64(k)*hAll - float64(k1)*h1 - float64(k2)*h2)
		threshold := (math.Log2(float64(n)-1) + delta) / float64(n)
		if gain <= threshold {
			return
		}

		cut := (pairs[best].v + pairs[best+1].v) / 2
		d.Cuts = append(d.Cuts, cut)
		rec(lo, best+1)
		rec(best+1, hi)
	}
	rec(0, len(pairs))
	sort.Float64s(d.Cuts)
	return d, nil
}

// pair is one (value, class) observation used by the supervised method.
type pair struct {
	v float64
	c data.Value
}

func histOf(pairs []pair, classCard int) []int64 {
	h := make([]int64, classCard)
	for _, p := range pairs {
		h[p.c]++
	}
	return h
}

func distinctClasses(h []int64) int {
	k := 0
	for _, c := range h {
		if c > 0 {
			k++
		}
	}
	return k
}

func entropy(h []int64, n int64) float64 {
	if n == 0 {
		return 0
	}
	e := 0.0
	for _, c := range h {
		if c > 0 {
			p := float64(c) / float64(n)
			e -= p * math.Log2(p)
		}
	}
	return e
}

// Table discretizes a numeric matrix column-by-column into a data.Dataset.
// cols[i] holds column i's values; classes holds the class codes. method is
// applied per column; attribute cardinalities come from the fitted bins.
func Table(cols [][]float64, names []string, classes []data.Value, classCard int,
	fit func(values []float64, classes []data.Value) (*Discretizer, error)) (*data.Dataset, []*Discretizer, error) {

	if len(cols) == 0 || len(cols) != len(names) {
		return nil, nil, fmt.Errorf("discretize: %d columns vs %d names", len(cols), len(names))
	}
	n := len(classes)
	for i, col := range cols {
		if len(col) != n {
			return nil, nil, fmt.Errorf("discretize: column %d has %d values, want %d", i, len(col), n)
		}
	}
	schema := &data.Schema{Class: data.Attribute{Name: "class", Card: classCard}}
	ds := data.NewDataset(schema)
	discs := make([]*Discretizer, len(cols))
	for i, col := range cols {
		d, err := fit(col, classes)
		if err != nil {
			return nil, nil, fmt.Errorf("discretize: column %q: %w", names[i], err)
		}
		discs[i] = d
		schema.Attrs = append(schema.Attrs, data.Attribute{Name: names[i], Card: d.Bins()})
	}
	for r := 0; r < n; r++ {
		row := make(data.Row, len(cols)+1)
		for i := range cols {
			row[i] = discs[i].Code(cols[i][r])
		}
		row[len(cols)] = classes[r]
		ds.Rows = append(ds.Rows, row)
	}
	if err := ds.Validate(); err != nil {
		return nil, nil, err
	}
	return ds, discs, nil
}
