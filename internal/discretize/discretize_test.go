package discretize

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/data"
)

func TestEqualWidth(t *testing.T) {
	d, err := EqualWidth([]float64{0, 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Cuts, []float64{2.5, 5, 7.5}) {
		t.Fatalf("cuts = %v", d.Cuts)
	}
	if d.Bins() != 4 {
		t.Errorf("bins = %d", d.Bins())
	}
	cases := map[float64]data.Value{0: 0, 2.4: 0, 2.5: 1, 5.1: 2, 7.5: 3, 10: 3, -5: 0, 99: 3}
	for v, want := range cases {
		if got := d.Code(v); got != want {
			t.Errorf("Code(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestEqualWidthConstantColumn(t *testing.T) {
	d, err := EqualWidth([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bins() != 1 || d.Code(3) != 0 || d.Code(99) != 0 {
		t.Errorf("constant column: bins=%d", d.Bins())
	}
}

func TestEqualFrequencyBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 1000)
	for i := range values {
		values[i] = rng.ExpFloat64() // skewed distribution
	}
	d, err := EqualFrequency(values, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, d.Bins())
	for _, v := range values {
		counts[d.Code(v)]++
	}
	for b, c := range counts {
		if c < 150 || c > 350 {
			t.Errorf("bin %d holds %d of 1000 rows; equal-frequency should balance", b, c)
		}
	}
}

func TestEqualFrequencyDuplicateHeavy(t *testing.T) {
	// 90% zeros: duplicate boundaries must collapse, not produce equal cuts.
	values := make([]float64, 100)
	for i := 90; i < 100; i++ {
		values[i] = float64(i)
	}
	d, err := EqualFrequency(values, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d.Cuts); i++ {
		if d.Cuts[i] <= d.Cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", d.Cuts)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := EqualWidth(nil, 4); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := EqualWidth([]float64{1}, 1); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := EqualFrequency(nil, 4); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := EntropyMDL([]float64{1}, nil, 2, 0); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestEntropyMDLFindsTrueBoundary(t *testing.T) {
	// Class 0 below 5.0, class 1 above: one clean boundary near 5.
	var values []float64
	var classes []data.Value
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		v := rng.Float64() * 10
		values = append(values, v)
		if v < 5 {
			classes = append(classes, 0)
		} else {
			classes = append(classes, 1)
		}
	}
	d, err := EntropyMDL(values, classes, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cuts) != 1 {
		t.Fatalf("cuts = %v, want exactly one", d.Cuts)
	}
	if d.Cuts[0] < 4.5 || d.Cuts[0] > 5.5 {
		t.Errorf("cut at %v, want near 5", d.Cuts[0])
	}
}

func TestEntropyMDLTwoBoundaries(t *testing.T) {
	// Class pattern 0 | 1 | 0 over thirds: needs two cuts.
	var values []float64
	var classes []data.Value
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 600; i++ {
		v := rng.Float64() * 9
		values = append(values, v)
		switch {
		case v < 3:
			classes = append(classes, 0)
		case v < 6:
			classes = append(classes, 1)
		default:
			classes = append(classes, 0)
		}
	}
	d, err := EntropyMDL(values, classes, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cuts) != 2 {
		t.Fatalf("cuts = %v, want two", d.Cuts)
	}
	if d.Cuts[0] < 2.5 || d.Cuts[0] > 3.5 || d.Cuts[1] < 5.5 || d.Cuts[1] > 6.5 {
		t.Errorf("cuts at %v, want near 3 and 6", d.Cuts)
	}
}

func TestEntropyMDLRejectsNoise(t *testing.T) {
	// Class independent of value: MDL must accept no cuts.
	rng := rand.New(rand.NewSource(4))
	var values []float64
	var classes []data.Value
	for i := 0; i < 500; i++ {
		values = append(values, rng.Float64())
		classes = append(classes, data.Value(rng.Intn(2)))
	}
	d, err := EntropyMDL(values, classes, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cuts) > 1 {
		t.Errorf("noise produced %d cuts: %v", len(d.Cuts), d.Cuts)
	}
}

func TestEntropyMDLMaxBins(t *testing.T) {
	var values []float64
	var classes []data.Value
	for i := 0; i < 400; i++ {
		values = append(values, float64(i))
		classes = append(classes, data.Value((i/50)%2)) // 8 alternating segments
	}
	d, err := EntropyMDL(values, classes, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bins() > 3 {
		t.Errorf("bins = %d, want <= 3", d.Bins())
	}
}

func TestTable(t *testing.T) {
	cols := [][]float64{
		{1, 2, 3, 10, 11, 12},
		{0, 0, 0, 5, 5, 5},
	}
	classes := []data.Value{0, 0, 0, 1, 1, 1}
	ds, discs, err := Table(cols, []string{"x", "y"}, classes, 2,
		func(v []float64, c []data.Value) (*Discretizer, error) { return EntropyMDL(v, c, 2, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 6 || len(discs) != 2 {
		t.Fatalf("table shape: %d rows, %d discretizers", ds.N(), len(discs))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// The first three rows must share codes, distinct from the last three.
	if ds.Rows[0][0] == ds.Rows[3][0] {
		t.Error("discretization failed to separate the classes on x")
	}
	if _, _, err := Table(nil, nil, classes, 2, nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, _, err := Table([][]float64{{1}}, []string{"x"}, classes, 2, nil); err == nil {
		t.Error("ragged table accepted")
	}
}

// TestCodeMonotoneProperty: codes are monotone in the value and cover
// exactly Bins() codes.
func TestCodeMonotoneProperty(t *testing.T) {
	f := func(raw []float64, kSeed uint8) bool {
		if len(raw) < 2 {
			return true
		}
		for _, v := range raw {
			if v != v || v > 1e300 || v < -1e300 { // NaN/overflow guards
				return true
			}
		}
		k := int(kSeed%6) + 2
		d, err := EqualWidth(raw, k)
		if err != nil {
			return false
		}
		prev := data.Value(-1)
		sorted := append([]float64(nil), raw...)
		sortFloats(sorted)
		for _, v := range sorted {
			c := d.Code(v)
			if c < prev || int(c) >= d.Bins() {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
