package sqlparser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseSimpleSelect(t *testing.T) {
	st := mustParse(t, "SELECT a, b FROM t WHERE a = 1")
	s, ok := st.(*Select)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if len(s.Cores) != 1 || s.Cores[0].Table != "t" || len(s.Cores[0].Items) != 2 {
		t.Fatalf("core = %+v", s.Cores[0])
	}
	be, ok := s.Cores[0].Where.(*BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("where = %v", s.Cores[0].Where)
	}
}

func TestParseCountsQueryShape(t *testing.T) {
	// The §2.3 counts query: per-attribute GROUP BY arms joined by UNION.
	sql := `SELECT 'A1' AS attr_name, A1 AS value, class, COUNT(*)
	        FROM Data_table WHERE A1 = 2 AND A2 <> 0 GROUP BY class, A1
	        UNION
	        SELECT 'A2', A2, class, COUNT(*)
	        FROM Data_table WHERE A1 = 2 AND A2 <> 0 GROUP BY class, A2`
	st := mustParse(t, sql)
	s := st.(*Select)
	if len(s.Cores) != 2 {
		t.Fatalf("%d cores", len(s.Cores))
	}
	if s.UnionAll[0] {
		t.Error("UNION parsed as UNION ALL")
	}
	if len(s.Cores[0].GroupBy) != 2 {
		t.Errorf("group by = %v", s.Cores[0].GroupBy)
	}
	if s.Cores[0].Items[0].Alias != "attr_name" {
		t.Errorf("alias = %q", s.Cores[0].Items[0].Alias)
	}
	if _, ok := s.Cores[0].Items[3].Expr.(*CountStar); !ok {
		t.Errorf("item 3 = %v", s.Cores[0].Items[3].Expr)
	}
}

func TestParsePrecedence(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3")
	s := st.(*Select)
	or, ok := s.Cores[0].Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %v", s.Cores[0].Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR = %v", or.R)
	}
	if _, ok := and.R.(*NotExpr); !ok {
		t.Fatalf("right of AND = %v", and.R)
	}
}

func TestParseComparisonOps(t *testing.T) {
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		st := mustParse(t, "SELECT * FROM t WHERE a "+op+" 5")
		be := st.(*Select).Cores[0].Where.(*BinaryExpr)
		if be.Op != op {
			t.Errorf("op %q parsed as %q", op, be.Op)
		}
	}
	// != is normalized to <>.
	st := mustParse(t, "SELECT * FROM t WHERE a != 5")
	if be := st.(*Select).Cores[0].Where.(*BinaryExpr); be.Op != "<>" {
		t.Errorf("!= parsed as %q", be.Op)
	}
}

func TestParseArithmeticAndUnaryMinus(t *testing.T) {
	st := mustParse(t, "SELECT a + 1 - 2 FROM t WHERE a = -3")
	s := st.(*Select)
	if got := s.Cores[0].Items[0].Expr.String(); got != "((a + 1) - 2)" {
		t.Errorf("expr = %q", got)
	}
	be := s.Cores[0].Where.(*BinaryExpr)
	il, ok := be.R.(*IntLit)
	if !ok || il.Val != -3 {
		t.Errorf("rhs = %v", be.R)
	}
}

func TestParseAggregates(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*), SUM(a), MIN(a), MAX(b) FROM t GROUP BY c")
	items := st.(*Select).Cores[0].Items
	if _, ok := items[0].Expr.(*CountStar); !ok {
		t.Error("COUNT(*)")
	}
	for i, fn := range []string{"SUM", "MIN", "MAX"} {
		agg, ok := items[i+1].Expr.(*AggExpr)
		if !ok || agg.Func != fn {
			t.Errorf("item %d: %v", i+1, items[i+1].Expr)
		}
	}
}

func TestParseOrderByAndDistinct(t *testing.T) {
	st := mustParse(t, "SELECT DISTINCT a FROM t ORDER BY a DESC, b ASC, c")
	s := st.(*Select)
	if !s.Cores[0].Distinct {
		t.Error("DISTINCT lost")
	}
	if len(s.OrderBy) != 3 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc || s.OrderBy[2].Desc {
		t.Errorf("order by = %+v", s.OrderBy)
	}
}

func TestParseDDLAndDML(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE t (a INT, b VARCHAR(10), c INT)").(*CreateTable)
	if ct.Name != "t" || len(ct.Cols) != 3 || ct.Cols[1].Type != "VARCHAR" {
		t.Errorf("create table = %+v", ct)
	}
	ci := mustParse(t, "CREATE INDEX i ON t (a)").(*CreateIndex)
	if ci.Name != "i" || ci.Table != "t" || ci.Col != "a" {
		t.Errorf("create index = %+v", ci)
	}
	ins := mustParse(t, "INSERT INTO t VALUES (1, 2, 3), (4, 5, 6)").(*Insert)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[1]) != 3 {
		t.Errorf("insert = %+v", ins)
	}
	del := mustParse(t, "DELETE FROM t WHERE a = 1").(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
	del2 := mustParse(t, "DELETE FROM t").(*Delete)
	if del2.Where != nil {
		t.Errorf("bare delete = %+v", del2)
	}
	dr := mustParse(t, "DROP TABLE t").(*DropTable)
	if dr.Name != "t" {
		t.Errorf("drop = %+v", dr)
	}
}

func TestParseStringsAndComments(t *testing.T) {
	st := mustParse(t, "SELECT 'it''s', 'x' FROM t -- trailing comment\n WHERE a = 1")
	items := st.(*Select).Cores[0].Items
	if sl := items[0].Expr.(*StringLit); sl.Val != "it's" {
		t.Errorf("escaped string = %q", sl.Val)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	st := mustParse(t, "select a from t where a = 1 group by a")
	if len(st.(*Select).Cores[0].GroupBy) != 1 {
		t.Error("lowercase keywords not recognized")
	}
}

func TestParseErrors(t *testing.T) {
	for _, sql := range []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a t",
		"FOO BAR",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t trailing junk (",
		"SELECT 'unterminated FROM t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a FLOAT)",
		"INSERT INTO t VALUES",
		"SELECT a FROM t WHERE a @ 1",
		"SELECT a FROM t ORDER",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) accepted invalid SQL", sql)
		}
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t WHERE @")
	if err == nil {
		t.Fatal("no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 2") {
		t.Errorf("error lacks position: %q", msg)
	}
}

// TestRoundTrip: String() output re-parses to a statement that prints
// identically (a fixed point after one round).
func TestRoundTrip(t *testing.T) {
	statements := []string{
		"SELECT a, b AS x, COUNT(*) FROM t WHERE (a = 1 AND b <> 2) OR NOT c < 3 GROUP BY a, b ORDER BY a DESC",
		"SELECT * FROM t",
		"SELECT DISTINCT a FROM t",
		"SELECT 1 AS attr, A1 AS val, class, COUNT(*) FROM cases WHERE 1 = 1 GROUP BY class, A1 UNION ALL SELECT 2, A2, class, COUNT(*) FROM cases WHERE 1 = 1 GROUP BY class, A2",
		"SELECT 'a''b' FROM t",
		"CREATE TABLE t (a INT, b INT)",
		"CREATE INDEX i ON t (a)",
		"INSERT INTO t VALUES (1, 2), (3, 4)",
		"DELETE FROM t WHERE a = 1",
		"DROP TABLE t",
		"SELECT SUM(a), MIN(b), MAX(c) FROM t GROUP BY d",
	}
	for _, sql := range statements {
		st1 := mustParse(t, sql)
		printed := st1.String()
		st2 := mustParse(t, printed)
		if st2.String() != printed {
			t.Errorf("round trip diverged:\n  in:  %s\n  1st: %s\n  2nd: %s", sql, printed, st2.String())
		}
	}
}

func TestParseHavingLimitAvg(t *testing.T) {
	st := mustParse(t, "SELECT a, AVG(b) FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY a LIMIT 5")
	s := st.(*Select)
	if s.Cores[0].Having == nil {
		t.Error("HAVING lost")
	}
	if s.Limit != 5 {
		t.Errorf("limit = %d", s.Limit)
	}
	if agg, ok := s.Cores[0].Items[1].Expr.(*AggExpr); !ok || agg.Func != "AVG" {
		t.Errorf("AVG parsed as %v", s.Cores[0].Items[1].Expr)
	}
	// Round trip.
	printed := st.String()
	if st2 := mustParse(t, printed); st2.String() != printed {
		t.Errorf("round trip diverged: %s vs %s", printed, st2.String())
	}
	// No-limit statements keep Limit = -1.
	st3 := mustParse(t, "SELECT a FROM t")
	if st3.(*Select).Limit != -1 {
		t.Error("missing LIMIT should be -1")
	}
	if _, err := Parse("SELECT a FROM t LIMIT x"); err == nil {
		t.Error("bad LIMIT accepted")
	}
}

func TestParseCaseExpr(t *testing.T) {
	st := mustParse(t, "SELECT CASE WHEN a = 1 THEN 10 WHEN b = 2 THEN 20 ELSE 30 END FROM t")
	s := st.(*Select)
	ce, ok := s.Cores[0].Items[0].Expr.(*CaseExpr)
	if !ok {
		t.Fatalf("item = %T", s.Cores[0].Items[0].Expr)
	}
	if len(ce.Whens) != 2 || ce.Else == nil {
		t.Fatalf("case = %+v", ce)
	}
	// Nested CASE (the compiled-tree shape) round-trips.
	nested := "SELECT CASE WHEN a = 1 THEN CASE WHEN b = 2 THEN 0 ELSE 1 END ELSE 2 END FROM t"
	printed := mustParse(t, nested).String()
	if mustParse(t, printed).String() != printed {
		t.Errorf("nested CASE round trip diverged: %s", printed)
	}
	// ELSE is optional; a WHEN-less CASE is not.
	st2 := mustParse(t, "SELECT CASE WHEN a = 1 THEN 2 END FROM t")
	if ce2 := st2.(*Select).Cores[0].Items[0].Expr.(*CaseExpr); ce2.Else != nil {
		t.Error("absent ELSE parsed non-nil")
	}
	if _, err := Parse("SELECT CASE ELSE 1 END FROM t"); err == nil {
		t.Error("CASE without WHEN accepted")
	}
	if _, err := Parse("SELECT CASE WHEN a = 1 THEN 2 FROM t"); err == nil {
		t.Error("CASE without END accepted")
	}
}

func TestParseClassify(t *testing.T) {
	st := mustParse(t, "SELECT CLASSIFY(m, a, b + 1, 3) FROM t")
	ce, ok := st.(*Select).Cores[0].Items[0].Expr.(*ClassifyExpr)
	if !ok {
		t.Fatalf("item = %T", st.(*Select).Cores[0].Items[0].Expr)
	}
	if ce.Model != "m" || len(ce.Args) != 3 {
		t.Fatalf("classify = %+v", ce)
	}
	printed := st.String()
	if mustParse(t, printed).String() != printed {
		t.Errorf("round trip diverged: %s", printed)
	}
	// Zero-argument form parses (arity is the engine's concern).
	st2 := mustParse(t, "SELECT CLASSIFY(m) FROM t")
	if ce2 := st2.(*Select).Cores[0].Items[0].Expr.(*ClassifyExpr); len(ce2.Args) != 0 {
		t.Errorf("args = %v", ce2.Args)
	}
	if _, err := Parse("SELECT CLASSIFY() FROM t"); err == nil {
		t.Error("CLASSIFY without model accepted")
	}
}

func TestParseScoreTable(t *testing.T) {
	st := mustParse(t, "SCORE TABLE cases USING m1 WORKERS 4")
	sc, ok := st.(*ScoreTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if sc.Table != "cases" || sc.Model != "m1" || sc.Workers != 4 {
		t.Fatalf("score = %+v", sc)
	}
	if st.String() != "SCORE TABLE cases USING m1 WORKERS 4" {
		t.Errorf("rendered %q", st.String())
	}
	st2 := mustParse(t, "SCORE TABLE cases USING m1")
	if st2.(*ScoreTable).Workers != 0 {
		t.Errorf("workers = %d", st2.(*ScoreTable).Workers)
	}
	for _, bad := range []string{
		"SCORE cases USING m1",
		"SCORE TABLE cases m1",
		"SCORE TABLE cases USING m1 WORKERS 0",
		"SCORE TABLE cases USING m1 WORKERS x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
