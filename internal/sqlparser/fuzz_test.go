package sqlparser

import (
	"fmt"
	"testing"
)

// FuzzParse checks that the parser never panics and that every accepted
// statement round-trips through String() to an equivalent fixed point. The
// seed corpus covers every statement kind; `go test -fuzz=FuzzParse` widens
// it.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT a, COUNT(*) FROM t WHERE a = 1 AND b <> 2 GROUP BY a HAVING COUNT(*) > 3 ORDER BY a DESC LIMIT 7",
		"SELECT 'str''ing', -5 + 3 FROM t UNION ALL SELECT x, y FROM u",
		"CREATE TABLE t (a INT, b VARCHAR(8))",
		"CREATE INDEX i ON t (a)",
		"INSERT INTO t VALUES (1, 2), (3, 4)",
		"DELETE FROM t WHERE NOT a >= 2",
		"DROP TABLE t",
		"select distinct a from t -- comment\n where a < 1 or b > 2",
		"SELECT SUM(a), MIN(b), MAX(c), AVG(d) FROM t GROUP BY e",
		"((((", "SELECT", "'", "\x00\xff", "WHERE WHERE WHERE",
		"SELECT CASE WHEN a = 1 THEN 0 ELSE 1 END FROM t",
		"SELECT CLASSIFY(m, a, b, c) FROM t",
		"SCORE TABLE t USING m WORKERS 4",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := st.String()
		st2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", sql, printed, err)
		}
		if st2.String() != printed {
			t.Fatalf("render not a fixed point: %q -> %q", printed, st2.String())
		}
	})
}

// FuzzClassifyParse drives the scoring grammar specifically: CASE
// expressions, CLASSIFY() calls and SCORE TABLE statements, assembled from
// fuzz-chosen fragments, must never panic the parser and must round-trip
// whenever accepted.
func FuzzClassifyParse(f *testing.F) {
	f.Add("m", "a", int64(1), 4)
	f.Add("model_1", "col", int64(-7), 0)
	f.Add("", "", int64(0), -1)
	f.Add("END", "WHEN", int64(9), 1<<30)
	f.Add("m'); DROP TABLE t", "a.b.c", int64(1), 2)
	f.Fuzz(func(t *testing.T, model, col string, val int64, workers int) {
		stmts := []string{
			"SELECT CLASSIFY(" + model + ", " + col + ") FROM t",
			"SELECT CASE WHEN " + col + " = " + itoa(val) + " THEN 1 ELSE 0 END FROM t",
			"SELECT CASE WHEN " + col + " = 1 THEN CLASSIFY(" + model + ", " + col + ") END FROM t",
			"SCORE TABLE t USING " + model,
			"SCORE TABLE " + col + " USING " + model + " WORKERS " + itoa(int64(workers)),
		}
		for _, sql := range stmts {
			st, err := Parse(sql)
			if err != nil {
				continue // rejection is fine; panics are not
			}
			printed := st.String()
			st2, err := Parse(printed)
			if err != nil {
				t.Fatalf("accepted %q but rejected own rendering %q: %v", sql, printed, err)
			}
			if st2.String() != printed {
				t.Fatalf("render not a fixed point: %q -> %q", printed, st2.String())
			}
		}
	})
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }
