package sqlparser

import (
	"testing"
)

// FuzzParse checks that the parser never panics and that every accepted
// statement round-trips through String() to an equivalent fixed point. The
// seed corpus covers every statement kind; `go test -fuzz=FuzzParse` widens
// it.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT a, COUNT(*) FROM t WHERE a = 1 AND b <> 2 GROUP BY a HAVING COUNT(*) > 3 ORDER BY a DESC LIMIT 7",
		"SELECT 'str''ing', -5 + 3 FROM t UNION ALL SELECT x, y FROM u",
		"CREATE TABLE t (a INT, b VARCHAR(8))",
		"CREATE INDEX i ON t (a)",
		"INSERT INTO t VALUES (1, 2), (3, 4)",
		"DELETE FROM t WHERE NOT a >= 2",
		"DROP TABLE t",
		"select distinct a from t -- comment\n where a < 1 or b > 2",
		"SELECT SUM(a), MIN(b), MAX(c), AVG(d) FROM t GROUP BY e",
		"((((", "SELECT", "'", "\x00\xff", "WHERE WHERE WHERE",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := st.String()
		st2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", sql, printed, err)
		}
		if st2.String() != printed {
			t.Fatalf("render not a fixed point: %q -> %q", printed, st2.String())
		}
	})
}
