// Package sqlparser implements the SQL subset the classification middleware
// and its baselines need against the embedded engine: SELECT with WHERE,
// GROUP BY, ORDER BY and UNION [ALL]; CREATE TABLE / CREATE INDEX; INSERT;
// DELETE; and DROP TABLE. The subset deliberately covers the exact query
// shapes of §2.3 of the paper (the UNION-of-GROUP-BY counts query) plus the
// DDL the experiments use.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokString
	tokSymbol // punctuation and operators: ( ) , * = <> < <= > >= + -
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int    // byte offset in the input, for error messages
}

// Error is a parse or lex error with position context.
type Error struct {
	Pos int
	Msg string
	SQL string
}

func (e *Error) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.SQL); i++ {
		if e.SQL[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("sql: %s at line %d col %d", e.Msg, line, col)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "UNION": true, "ALL": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "CREATE": true, "TABLE": true, "INDEX": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DROP": true, "INT": true,
	"ASC": true, "DESC": true, "DELETE": true, "DISTINCT": true,
	"VARCHAR": true, "NULL": true, "HAVING": true, "LIMIT": true, "AVG": true,
	"JOIN": true, "INNER": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CLASSIFY": true, "SCORE": true,
	"USING": true, "WORKERS": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), SQL: l.src}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if up := strings.ToUpper(text); keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil

	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: tokInt, text: l.src[start:l.pos], pos: start}, nil

	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			if l.src[l.pos] == '\'' {
				// Doubled quote is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start}, nil

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '>' || l.src[l.pos] == '=') {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil

	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil

	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokSymbol, text: "<>", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected character %q", c)

	case strings.ContainsRune("(),*=+-.", rune(c)):
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
