package sqlparser

import (
	"strconv"
)

// Parse parses a single SQL statement.
func Parse(sql string) (Statement, error) {
	p := &parser{lex: lexer{src: sql}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.tok.text)
	}
	return st, nil
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) errf(format string, args ...interface{}) error {
	return p.lex.errf(p.tok.pos, format, args...)
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) atSymbol(s string) bool {
	return p.tok.kind == tokSymbol && p.tok.text == s
}

// accept consumes the current token if it matches the keyword.
func (p *parser) acceptKeyword(kw string) (bool, error) {
	if p.atKeyword(kw) {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) acceptSymbol(s string) (bool, error) {
	if p.atSymbol(s) {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expectSymbol(s string) error {
	if !p.atSymbol(s) {
		return p.errf("expected %q, found %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.atKeyword("SELECT"):
		return p.selectStmt()
	case p.atKeyword("CREATE"):
		return p.createStmt()
	case p.atKeyword("INSERT"):
		return p.insertStmt()
	case p.atKeyword("DELETE"):
		return p.deleteStmt()
	case p.atKeyword("DROP"):
		return p.dropStmt()
	case p.atKeyword("SCORE"):
		return p.scoreStmt()
	}
	return nil, p.errf("expected statement, found %q", p.tok.text)
}

// scoreStmt parses SCORE TABLE t USING model [WORKERS n].
func (p *parser) scoreStmt() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	model, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s := &ScoreTable{Table: table, Model: model}
	if ok, err := p.acceptKeyword("WORKERS"); err != nil {
		return nil, err
	} else if ok {
		if p.tok.kind != tokInt {
			return nil, p.errf("expected worker count, found %q", p.tok.text)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 1 {
			return nil, p.errf("bad worker count %q", p.tok.text)
		}
		s.Workers = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) selectStmt() (Statement, error) {
	s := &Select{Limit: -1}
	core, err := p.selectCore()
	if err != nil {
		return nil, err
	}
	s.Cores = append(s.Cores, core)
	for {
		ok, err := p.acceptKeyword("UNION")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		all, err := p.acceptKeyword("ALL")
		if err != nil {
			return nil, err
		}
		core, err := p.selectCore()
		if err != nil {
			return nil, err
		}
		s.Cores = append(s.Cores, core)
		s.UnionAll = append(s.UnionAll, all)
	}
	if ok, err := p.acceptKeyword("ORDER"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if ok, err := p.acceptKeyword("DESC"); err != nil {
				return nil, err
			} else if ok {
				item.Desc = true
			} else if ok, err := p.acceptKeyword("ASC"); err != nil {
				return nil, err
			} else {
				_ = ok
			}
			s.OrderBy = append(s.OrderBy, item)
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if ok, err := p.acceptKeyword("LIMIT"); err != nil {
		return nil, err
	} else if ok {
		if p.tok.kind != tokInt {
			return nil, p.errf("expected LIMIT count, found %q", p.tok.text)
		}
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", p.tok.text)
		}
		s.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) selectCore() (SelectCore, error) {
	var c SelectCore
	if err := p.expectKeyword("SELECT"); err != nil {
		return c, err
	}
	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return c, err
	} else if ok {
		c.Distinct = true
	}
	for {
		if ok, err := p.acceptSymbol("*"); err != nil {
			return c, err
		} else if ok {
			c.Items = append(c.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return c, err
			}
			item := SelectItem{Expr: e}
			if ok, err := p.acceptKeyword("AS"); err != nil {
				return c, err
			} else if ok {
				alias, err := p.expectIdent()
				if err != nil {
					return c, err
				}
				item.Alias = alias
			} else if p.tok.kind == tokIdent {
				// Bare alias without AS.
				item.Alias = p.tok.text
				if err := p.advance(); err != nil {
					return c, err
				}
			}
			c.Items = append(c.Items, item)
		}
		if ok, err := p.acceptSymbol(","); err != nil {
			return c, err
		} else if !ok {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return c, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return c, err
	}
	c.Table = tbl
	// Optional bare alias.
	if p.tok.kind == tokIdent {
		c.TableAlias = p.tok.text
		if err := p.advance(); err != nil {
			return c, err
		}
	}
	// Optional [INNER] JOIN table [alias] ON expr.
	if ok, err := p.acceptKeyword("INNER"); err != nil {
		return c, err
	} else if ok {
		if !p.atKeyword("JOIN") {
			return c, p.errf("expected JOIN after INNER")
		}
	}
	if ok, err := p.acceptKeyword("JOIN"); err != nil {
		return c, err
	} else if ok {
		j := &JoinClause{}
		j.Table, err = p.expectIdent()
		if err != nil {
			return c, err
		}
		if p.tok.kind == tokIdent {
			j.Alias = p.tok.text
			if err := p.advance(); err != nil {
				return c, err
			}
		}
		if err := p.expectKeyword("ON"); err != nil {
			return c, err
		}
		j.On, err = p.expr()
		if err != nil {
			return c, err
		}
		c.Join = j
	}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return c, err
	} else if ok {
		w, err := p.expr()
		if err != nil {
			return c, err
		}
		c.Where = w
	}
	if ok, err := p.acceptKeyword("GROUP"); err != nil {
		return c, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return c, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return c, err
			}
			c.GroupBy = append(c.GroupBy, e)
			if ok, err := p.acceptSymbol(","); err != nil {
				return c, err
			} else if !ok {
				break
			}
		}
	}
	if ok, err := p.acceptKeyword("HAVING"); err != nil {
		return c, err
	} else if ok {
		h, err := p.expr()
		if err != nil {
			return c, err
		}
		c.Having = h
	}
	return c, nil
}

// Expression grammar, loosest to tightest:
//
//	expr   := and (OR and)*
//	and    := not (AND not)*
//	not    := [NOT] cmp
//	cmp    := add [(=|<>|<|<=|>|>=) add]
//	add    := primary ((+|-) primary)*
//	primary:= INT | STRING | ident | COUNT(*) | SUM|MIN|MAX|COUNT (expr) | (expr)
func (p *parser) expr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.atKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokSymbol {
		switch p.tok.text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("+") || p.atSymbol("-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.tok.kind == tokInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", p.tok.text)
		}
		return &IntLit{Val: v}, p.advance()

	case p.tok.kind == tokString:
		v := p.tok.text
		return &StringLit{Val: v}, p.advance()

	case p.tok.kind == tokSymbol && p.tok.text == "-":
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokInt {
			return nil, p.errf("expected integer after unary minus")
		}
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", p.tok.text)
		}
		return &IntLit{Val: -v}, p.advance()

	case p.atKeyword("COUNT"), p.atKeyword("SUM"), p.atKeyword("MIN"), p.atKeyword("MAX"), p.atKeyword("AVG"):
		fn := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if fn == "COUNT" {
			if ok, err := p.acceptSymbol("*"); err != nil {
				return nil, err
			} else if ok {
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &CountStar{}, nil
			}
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &AggExpr{Func: fn, Arg: arg}, nil

	case p.atKeyword("CASE"):
		return p.caseExpr()

	case p.atKeyword("CLASSIFY"):
		return p.classifyExpr()

	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Qualified reference: alias.column.
		if p.atSymbol(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Name: name + "." + col}, nil
		}
		return &ColumnRef{Name: name}, nil

	case p.atSymbol("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected expression, found %q", p.tok.text)
}

// caseExpr parses a searched CASE:
// CASE WHEN cond THEN result [WHEN ...] [ELSE result] END.
func (p *parser) caseExpr() (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	e := &CaseExpr{}
	for {
		ok, err := p.acceptKeyword("WHEN")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		e.Whens = append(e.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(e.Whens) == 0 {
		return nil, p.errf("CASE needs at least one WHEN arm")
	}
	if ok, err := p.acceptKeyword("ELSE"); err != nil {
		return nil, err
	} else if ok {
		if e.Else, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return e, nil
}

// classifyExpr parses CLASSIFY(model, arg1, arg2, ...).
func (p *parser) classifyExpr() (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	model, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	e := &ClassifyExpr{Model: model}
	for {
		ok, err := p.acceptSymbol(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		e.Args = append(e.Args, arg)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) createStmt() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if ok, err := p.acceptKeyword("TABLE"); err != nil {
		return nil, err
	} else if ok {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		st := &CreateTable{Name: name}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var typ string
			switch {
			case p.atKeyword("INT"):
				typ = "INT"
			case p.atKeyword("VARCHAR"):
				typ = "VARCHAR"
			default:
				return nil, p.errf("expected column type INT or VARCHAR, found %q", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			// Optional (n) length on VARCHAR.
			if ok, err := p.acceptSymbol("("); err != nil {
				return nil, err
			} else if ok {
				if p.tok.kind != tokInt {
					return nil, p.errf("expected length, found %q", p.tok.text)
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			st.Cols = append(st.Cols, ColumnDef{Name: col, Type: typ})
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return st, nil
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: tbl, Col: col}, nil
}

func (p *parser) insertStmt() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	st := &Insert{Table: name}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if ok, err := p.acceptSymbol(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &Delete{Table: name}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) dropStmt() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}
