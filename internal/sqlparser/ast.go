package sqlparser

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// String renders the statement back to SQL; parse(s.String()) must
	// yield an equivalent statement (the parser round-trip property).
	String() string
}

// Expr is a scalar or boolean expression.
type Expr interface {
	expr()
	String() string
}

// ColumnRef references a column by name.
type ColumnRef struct{ Name string }

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// StringLit is a string literal.
type StringLit struct{ Val string }

// BinaryExpr is a binary operation. Op is one of
// "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "+", "-".
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// NotExpr negates a boolean expression.
type NotExpr struct{ E Expr }

// CountStar is the COUNT(*) aggregate.
type CountStar struct{}

// AggExpr is an aggregate over a column: SUM/MIN/MAX(col).
type AggExpr struct {
	Func string // "SUM", "MIN", "MAX", "COUNT"
	Arg  Expr
}

// WhenClause is one WHEN cond THEN result arm of a CASE expression.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a searched CASE expression:
// CASE WHEN c1 THEN r1 [WHEN c2 THEN r2 ...] [ELSE e] END.
// A compiled decision tree is one of these, nested per internal node.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr // nil when absent
}

// ClassifyExpr scores one row with a registered model:
// CLASSIFY(model, a1, a2, ...). Args are the model's attribute columns in
// training order.
type ClassifyExpr struct {
	Model string
	Args  []Expr
}

func (*ColumnRef) expr()    {}
func (*IntLit) expr()       {}
func (*StringLit) expr()    {}
func (*BinaryExpr) expr()   {}
func (*NotExpr) expr()      {}
func (*CountStar) expr()    {}
func (*AggExpr) expr()      {}
func (*CaseExpr) expr()     {}
func (*ClassifyExpr) expr() {}

func (e *ColumnRef) String() string { return e.Name }
func (e *IntLit) String() string    { return fmt.Sprintf("%d", e.Val) }
func (e *StringLit) String() string {
	return "'" + strings.ReplaceAll(e.Val, "'", "''") + "'"
}
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}
func (e *NotExpr) String() string   { return fmt.Sprintf("(NOT %s)", e.E) }
func (e *CountStar) String() string { return "COUNT(*)" }
func (e *AggExpr) String() string   { return fmt.Sprintf("%s(%s)", e.Func, e.Arg) }
func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else)
	}
	b.WriteString(" END")
	return b.String()
}
func (e *ClassifyExpr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CLASSIFY(%s", e.Model)
	for _, a := range e.Args {
		fmt.Fprintf(&b, ", %s", a)
	}
	b.WriteString(")")
	return b.String()
}

// SelectItem is one projection: an expression with an optional alias, or *.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

func (si SelectItem) String() string {
	if si.Star {
		return "*"
	}
	if si.Alias != "" {
		return fmt.Sprintf("%s AS %s", si.Expr, si.Alias)
	}
	return si.Expr.String()
}

// JoinClause is an [INNER] JOIN of a second table with an ON condition.
type JoinClause struct {
	Table string
	Alias string // "" = none
	On    Expr
}

// SelectCore is one SELECT ... FROM ... [JOIN ... ON ...] [WHERE ...]
// [GROUP BY ...] [HAVING ...] block.
type SelectCore struct {
	Distinct   bool
	Items      []SelectItem
	Table      string
	TableAlias string // "" = none
	Join       *JoinClause
	Where      Expr // nil = none
	GroupBy    []Expr
	Having     Expr // nil = none
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a full query: one or more cores combined with UNION [ALL], plus
// optional ORDER BY and LIMIT applied to the combined result.
type Select struct {
	Cores    []SelectCore
	UnionAll []bool // UnionAll[i] is the combinator between Cores[i] and Cores[i+1]
	OrderBy  []OrderItem
	Limit    int64 // -1 = no limit
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var b strings.Builder
	for i, c := range s.Cores {
		if i > 0 {
			if s.UnionAll[i-1] {
				b.WriteString(" UNION ALL ")
			} else {
				b.WriteString(" UNION ")
			}
		}
		b.WriteString("SELECT ")
		if c.Distinct {
			b.WriteString("DISTINCT ")
		}
		for j, it := range c.Items {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
		b.WriteString(" FROM ")
		b.WriteString(c.Table)
		if c.TableAlias != "" {
			b.WriteString(" ")
			b.WriteString(c.TableAlias)
		}
		if c.Join != nil {
			b.WriteString(" JOIN ")
			b.WriteString(c.Join.Table)
			if c.Join.Alias != "" {
				b.WriteString(" ")
				b.WriteString(c.Join.Alias)
			}
			b.WriteString(" ON ")
			b.WriteString(c.Join.On.String())
		}
		if c.Where != nil {
			b.WriteString(" WHERE ")
			b.WriteString(c.Where.String())
		}
		if len(c.GroupBy) > 0 {
			b.WriteString(" GROUP BY ")
			for j, g := range c.GroupBy {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(g.String())
			}
		}
		if c.Having != nil {
			b.WriteString(" HAVING ")
			b.WriteString(c.Having.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for j, o := range s.OrderBy {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// ColumnDef is one column in CREATE TABLE. The engine supports INT (4-byte
// categorical codes); VARCHAR is accepted for schema compatibility but
// stored as codes by the callers in this repository.
type ColumnDef struct {
	Name string
	Type string // "INT" or "VARCHAR"
}

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name string
	Cols []ColumnDef
}

func (*CreateTable) stmt() {}

func (s *CreateTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", s.Name)
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteString(")")
	return b.String()
}

// CreateIndex is CREATE INDEX name ON table (col).
type CreateIndex struct {
	Name  string
	Table string
	Col   string
}

func (*CreateIndex) stmt() {}

func (s *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX %s ON %s (%s)", s.Name, s.Table, s.Col)
}

// Insert is INSERT INTO table VALUES (...), (...), ....
type Insert struct {
	Table string
	Rows  [][]Expr
}

func (*Insert) stmt() {}

func (s *Insert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", s.Table)
	for i, r := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range r {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

func (s *Delete) String() string {
	if s.Where == nil {
		return fmt.Sprintf("DELETE FROM %s", s.Table)
	}
	return fmt.Sprintf("DELETE FROM %s WHERE %s", s.Table, s.Where)
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

func (*DropTable) stmt() {}

func (s *DropTable) String() string { return "DROP TABLE " + s.Name }

// ScoreTable is the batch scoring statement:
// SCORE TABLE t USING model [WORKERS n].
// It scores every row of t with the registered model through the engine's
// vectorized scoring operator, returning one predicted class per row in heap
// order. WORKERS caps the scan partitions (0 = engine default of 1).
type ScoreTable struct {
	Table   string
	Model   string
	Workers int
}

func (*ScoreTable) stmt() {}

func (s *ScoreTable) String() string {
	out := fmt.Sprintf("SCORE TABLE %s USING %s", s.Table, s.Model)
	if s.Workers > 0 {
		out += fmt.Sprintf(" WORKERS %d", s.Workers)
	}
	return out
}
