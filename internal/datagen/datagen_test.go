package datagen

import (
	"reflect"
	"testing"

	"repro/internal/dtree"
)

func TestTreeDataDeterministic(t *testing.T) {
	cfg := TreeGenConfig{Leaves: 12, Attrs: 8, Values: 3, Classes: 4, CasesPerLeaf: 30, Seed: 9}
	a, la, err := GenerateTreeData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, lb, err := GenerateTreeData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if la != lb || a.N() != b.N() {
		t.Fatalf("sizes differ: %d/%d leaves, %d/%d rows", la, lb, a.N(), b.N())
	}
	for i := range a.Rows {
		if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
	c, _, _ := GenerateTreeData(TreeGenConfig{Leaves: 12, Attrs: 8, Values: 3, Classes: 4, CasesPerLeaf: 30, Seed: 10})
	same := c.N() == a.N()
	if same {
		same = reflect.DeepEqual(a.Rows[0], c.Rows[0]) && reflect.DeepEqual(a.Rows[1], c.Rows[1])
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestTreeDataValidAndSized(t *testing.T) {
	cfg := TreeGenConfig{Leaves: 20, Attrs: 10, Values: 4, Classes: 5, CasesPerLeaf: 25, Seed: 1}
	ds, leaves, err := GenerateTreeData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if leaves < 20 {
		t.Errorf("leaves = %d, want >= 20", leaves)
	}
	// Complete splits may overshoot the leaf target by at most one split's
	// fanout.
	if leaves > 20+32 {
		t.Errorf("leaves = %d overshoots the target", leaves)
	}
	if ds.N() < leaves { // at least one case per leaf
		t.Errorf("rows = %d < leaves", ds.N())
	}
	// All classes appear.
	hist := ds.ClassHistogram()
	for c, n := range hist {
		if n == 0 {
			t.Errorf("class %d absent", c)
		}
	}
}

// TestTreeDataIsLearnable: data generated from a tree must be classifiable
// to high accuracy by a grown tree (§5.1.1: "the effect of applying
// classification on the data will be the given decision tree").
func TestTreeDataIsLearnable(t *testing.T) {
	ds, _, err := GenerateTreeData(TreeGenConfig{
		Leaves: 15, Attrs: 8, Values: 3, ValuesStdDev: 0, Classes: 4, CasesPerLeaf: 80, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := dtree.BuildInMemory(ds, dtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(ds); acc < 0.999 {
		t.Errorf("accuracy = %v, want ~1 (noise-free generated data)", acc)
	}
}

func TestTreeDataSkewProducesDeeperTrees(t *testing.T) {
	flat, _, err := GenerateTreeData(TreeGenConfig{
		Leaves: 20, Attrs: 20, Values: 2, ValuesStdDev: 0, Classes: 3, CasesPerLeaf: 40, Seed: 4, Skew: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	deep, _, err := GenerateTreeData(TreeGenConfig{
		Leaves: 20, Attrs: 20, Values: 2, ValuesStdDev: 0, Classes: 3, CasesPerLeaf: 40, Seed: 4, Skew: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tf, err := dtree.BuildInMemory(flat, dtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	td, err := dtree.BuildInMemory(deep, dtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if td.MaxDepth <= tf.MaxDepth {
		t.Errorf("skewed generator gave depth %d, balanced %d; want deeper", td.MaxDepth, tf.MaxDepth)
	}
}

func TestTreeDataClassNoise(t *testing.T) {
	clean, _, _ := GenerateTreeData(TreeGenConfig{
		Leaves: 10, Attrs: 6, Values: 3, ValuesStdDev: 0, Classes: 3, CasesPerLeaf: 50, Seed: 5,
	})
	noisy, _, _ := GenerateTreeData(TreeGenConfig{
		Leaves: 10, Attrs: 6, Values: 3, ValuesStdDev: 0, Classes: 3, CasesPerLeaf: 50, Seed: 5, ClassNoise: 0.3,
	})
	diff := 0
	n := clean.N()
	if noisy.N() < n {
		n = noisy.N()
	}
	for i := 0; i < n; i++ {
		if clean.Rows[i].Class() != noisy.Rows[i].Class() {
			diff++
		}
	}
	if diff == 0 {
		t.Error("class noise had no effect")
	}
}

func TestSizedTreeData(t *testing.T) {
	target := int64(200 << 10) // 200 KB
	ds, _, err := SizedTreeData(50, target, TreeGenConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := ds.Bytes()
	if got < target*8/10 || got > target*12/10 {
		t.Errorf("sized data = %d bytes, want within 20%% of %d", got, target)
	}
}

func TestGaussiansShapeAndDeterminism(t *testing.T) {
	cfg := GaussianConfig{Dims: 10, Components: 4, PerClass: 100, Bins: 5, Seed: 2}
	a, err := GenerateGaussians(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.N() != 400 || a.Schema.NumAttrs() != 10 || a.Schema.Class.Card != 4 {
		t.Fatalf("shape: %d rows, %d attrs, %d classes", a.N(), a.Schema.NumAttrs(), a.Schema.Class.Card)
	}
	for _, at := range a.Schema.Attrs {
		if at.Card != 5 {
			t.Errorf("attr %s card %d, want 5", at.Name, at.Card)
		}
	}
	b, _ := GenerateGaussians(cfg)
	for i := range a.Rows {
		if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
			t.Fatal("not deterministic")
		}
	}
	hist := a.ClassHistogram()
	for c, n := range hist {
		if n != 100 {
			t.Errorf("class %d has %d rows, want 100", c, n)
		}
	}
}

func TestGaussiansAreSeparable(t *testing.T) {
	ds, err := GenerateGaussians(GaussianConfig{Dims: 16, Components: 4, PerClass: 300, Bins: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := dtree.BuildInMemory(ds, dtree.Options{MaxDepth: 10, MinRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(ds); acc < 0.8 {
		t.Errorf("gaussian tree accuracy = %v, want >= 0.8", acc)
	}
}

func TestGaussiansConfigErrors(t *testing.T) {
	if _, err := GenerateGaussians(GaussianConfig{Dims: -1, Components: 2, PerClass: 10, Bins: 4, Seed: 1}); err == nil {
		t.Error("negative dims accepted")
	}
	if _, err := GenerateGaussians(GaussianConfig{Dims: 2, Components: 2, PerClass: 10, Bins: 1, Seed: 1}); err == nil {
		t.Error("one bin accepted")
	}
}

func TestCensusShapeAndClassBalance(t *testing.T) {
	ds, err := GenerateCensus(CensusConfig{Rows: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.N() != 5000 || ds.Schema.Class.Card != 2 || ds.Schema.NumAttrs() != 12 {
		t.Fatalf("shape: %d rows, %d attrs", ds.N(), ds.Schema.NumAttrs())
	}
	hist := ds.ClassHistogram()
	minority := float64(hist[1]) / float64(ds.N())
	if hist[1] > hist[0] {
		minority = float64(hist[0]) / float64(ds.N())
	}
	// The income class is skewed but both classes must be well represented
	// (the real Adult data is ~24% >50K).
	if minority < 0.08 || minority > 0.45 {
		t.Errorf("minority class fraction = %.3f, want in [0.08, 0.45]", minority)
	}
}

func TestCensusIsLearnableAboveBaseRate(t *testing.T) {
	ds, err := GenerateCensus(CensusConfig{Rows: 8000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := dtree.BuildInMemory(ds, dtree.Options{MaxDepth: 8, MinRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	hist := ds.ClassHistogram()
	base := float64(hist[0]) / float64(ds.N())
	if base < 0.5 {
		base = 1 - base
	}
	if acc := tree.Accuracy(ds); acc < base+0.03 {
		t.Errorf("accuracy %.3f not above majority base rate %.3f", acc, base)
	}
}

func TestCensusDeterministic(t *testing.T) {
	a, _ := GenerateCensus(CensusConfig{Rows: 1000, Seed: 6})
	b, _ := GenerateCensus(CensusConfig{Rows: 1000, Seed: 6})
	for i := range a.Rows {
		if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
			t.Fatal("census not deterministic")
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	tc := TreeGenConfig{}.Normalize()
	if tc.Leaves != 500 || tc.Attrs != 25 || tc.Values != 4 || tc.Classes != 10 || !tc.CompleteSplit {
		t.Errorf("tree defaults: %+v", tc)
	}
	gc := GaussianConfig{}.Normalize()
	if gc.Dims != 100 || gc.Components != 10 || gc.Bins != 4 {
		t.Errorf("gaussian defaults: %+v", gc)
	}
	cc := CensusConfig{}.Normalize()
	if cc.Rows != 30000 || cc.Noise != 0.08 {
		t.Errorf("census defaults: %+v", cc)
	}
}

// TestPaperScaleArithmetic reproduces the paper's sizing: 500 leaves x ~950
// cases with 25 attributes is about 50 MB (§5.2.1).
func TestPaperScaleArithmetic(t *testing.T) {
	cfg := TreeGenConfig{}.Normalize() // 25 attrs
	rowBytes := int64(4 * (cfg.Attrs + 1))
	total := rowBytes * 500 * 950
	if mb := float64(total) / (1 << 20); mb < 45 || mb > 55 {
		t.Errorf("500 leaves x 950 cases = %.1f MB, paper says ~50 MB", mb)
	}
}

func TestClusteredShapeAndDeterminism(t *testing.T) {
	cfg := ClusteredConfig{Rows: 3000, Seed: 5, Regions: 6, Attrs: 4, Values: 3}
	ds, err := GenerateClustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3000 {
		t.Fatalf("rows = %d, want 3000", ds.N())
	}
	if got := ds.Schema.NumAttrs(); got != 5 {
		t.Fatalf("attrs = %d, want 5 (region + 4)", got)
	}
	if ds.Schema.Attrs[0].Name != "region" || ds.Schema.Attrs[0].Card != 6 {
		t.Fatalf("attr 0 = %+v, want region/card 6", ds.Schema.Attrs[0])
	}
	// Clustered placement: region values ascend monotonically through the
	// row order (contiguous equal slabs), and every region holds Rows/Regions
	// rows.
	counts := make([]int, cfg.Regions)
	prev := 0
	for i, r := range ds.Rows {
		v := int(r[0])
		if v < prev {
			t.Fatalf("row %d: region %d after %d — placement not contiguous", i, v, prev)
		}
		prev = v
		counts[v]++
	}
	for v, n := range counts {
		if n != 500 {
			t.Fatalf("region %d holds %d rows, want 500", v, n)
		}
	}
	// Same seed, same bytes; different seed, different rows.
	ds2, err := GenerateClustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Rows {
		for j := range ds.Rows[i] {
			if ds.Rows[i][j] != ds2.Rows[i][j] {
				t.Fatalf("row %d differs across identical seeds", i)
			}
		}
	}
	cfg.Seed = 6
	ds3, err := GenerateClustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ds.Rows {
		for j := range ds.Rows[i] {
			if ds.Rows[i][j] != ds3.Rows[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestClusteredDefaultsAndClassSignal(t *testing.T) {
	ds, err := GenerateClustered(ClusteredConfig{Rows: 4000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Schema.NumAttrs(); got != 6 {
		t.Fatalf("default attrs = %d, want 6 (region + 5)", got)
	}
	// The class rule is a noisy parity of region and the first attributes:
	// within one (region, a1, a2) cell the majority class must be far from
	// a coin flip.
	var agree, total int
	for _, r := range ds.Rows {
		want := (int(r[0]) + int(r[1])*2 + int(r[2])) % 2
		total++
		if int(r[len(r)-1]) == want {
			agree++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Fatalf("class agrees with rule on %.2f of rows, want >= 0.9 (noise 0.05)", frac)
	}
}
