package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
)

// ClusteredConfig controls the clustered (value-correlated row placement)
// generator: rows are physically ordered by a "region" attribute, so an
// equality filter on the region matches one contiguous slab of heap pages.
// This is the canonical skew workload for partitioned scans — with
// equal-width page splits, one lane receives essentially every matching row
// (and pays every transmit/processing cost) while the others scan and
// discard, making that lane the straggler. Real tables look like this
// whenever they are loaded in an order correlated with an attribute:
// append-ordered logs by day, customers loaded per territory, and so on.
type ClusteredConfig struct {
	Rows int
	Seed int64
	// Regions is the cardinality of the clustering attribute (attribute 0,
	// "region"); rows are laid out in Regions contiguous equal slabs.
	Regions int
	// Attrs and Values size the remaining independent attributes.
	Attrs  int
	Values int
	// Noise is the probability a row's class label is flipped.
	Noise float64
}

// Normalize fills unset fields.
func (c ClusteredConfig) Normalize() ClusteredConfig {
	if c.Rows == 0 {
		c.Rows = 24000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Regions == 0 {
		c.Regions = 8
	}
	if c.Attrs == 0 {
		c.Attrs = 5
	}
	if c.Values == 0 {
		c.Values = 4
	}
	if c.Noise == 0 {
		c.Noise = 0.05
	}
	return c
}

// GenerateClustered draws the clustered dataset: attribute 0 ("region")
// partitions the row order into contiguous equal slabs, the remaining
// attributes are sampled independently, and the binary class label follows a
// noisy rule over the region and the first attributes so trees split on
// meaningful structure.
func GenerateClustered(cfg ClusteredConfig) (*data.Dataset, error) {
	cfg = cfg.Normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))

	schema := &data.Schema{Class: data.Attribute{Name: "class", Card: 2}}
	schema.Attrs = append(schema.Attrs, data.Attribute{Name: "region", Card: cfg.Regions})
	for i := 0; i < cfg.Attrs; i++ {
		schema.Attrs = append(schema.Attrs, data.Attribute{
			Name: fmt.Sprintf("a%d", i+1),
			Card: cfg.Values,
		})
	}

	ds := data.NewDataset(schema)
	ncols := schema.NumCols()
	for r := 0; r < cfg.Rows; r++ {
		row := make(data.Row, ncols)
		// Contiguous placement: row r lives in region r*Regions/Rows.
		region := r * cfg.Regions / cfg.Rows
		row[0] = data.Value(region)
		for i := 1; i <= cfg.Attrs; i++ {
			row[i] = data.Value(rng.Intn(cfg.Values))
		}
		score := region
		if cfg.Attrs >= 1 {
			score += int(row[1]) * 2
		}
		if cfg.Attrs >= 2 {
			score += int(row[2])
		}
		cls := data.Value(score % 2)
		if rng.Float64() < cfg.Noise {
			cls = 1 - cls
		}
		row[ncols-1] = cls
		ds.Rows = append(ds.Rows, row)
	}
	return ds, nil
}
