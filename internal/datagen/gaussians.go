package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
)

// GaussianConfig controls the mixture-of-Gaussians generator (§5.1.2): the
// means of the Gaussians are uniform over [-5, +5] in each dimension, the
// per-dimension variances uniform over [0.7, 1.5], and the class of a sample
// is the index of the component that produced it. Continuous values are
// discretized into Bins equal-width bins over [-8, +8] (the paper assumes
// discretized attributes; see §1 and [CFB97]).
type GaussianConfig struct {
	Dims       int // dimensionality (the paper uses 100)
	Components int // number of Gaussians = number of classes (the paper uses 10... derived from 1M/10k? components = classes)
	PerClass   int // samples drawn per component (the paper uses 10,000)
	Bins       int // discretization bins per dimension (default 4, §5.1.3)
	Seed       int64
}

// Normalize fills unset fields with defaults scaled for test use.
func (c GaussianConfig) Normalize() GaussianConfig {
	if c.Dims == 0 {
		c.Dims = 100
	}
	if c.Components == 0 {
		c.Components = 10
	}
	if c.PerClass == 0 {
		c.PerClass = 1000
	}
	if c.Bins == 0 {
		c.Bins = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

const (
	gaussLo = -8.0
	gaussHi = 8.0
)

// GenerateGaussians draws the mixture dataset. Because the mixture property
// is preserved under dropping dimensions or components (§5.1.2), callers can
// vary Dims and Components freely without changing the nature of the data.
func GenerateGaussians(cfg GaussianConfig) (*data.Dataset, error) {
	cfg = cfg.Normalize()
	if cfg.Dims < 1 || cfg.Components < 1 || cfg.PerClass < 1 || cfg.Bins < 2 {
		return nil, fmt.Errorf("datagen: invalid gaussian config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	schema := &data.Schema{Class: data.Attribute{Name: "class", Card: cfg.Components}}
	for d := 0; d < cfg.Dims; d++ {
		schema.Attrs = append(schema.Attrs, data.Attribute{Name: fmt.Sprintf("X%d", d+1), Card: cfg.Bins})
	}

	// Component parameters.
	means := make([][]float64, cfg.Components)
	sds := make([][]float64, cfg.Components)
	for k := 0; k < cfg.Components; k++ {
		means[k] = make([]float64, cfg.Dims)
		sds[k] = make([]float64, cfg.Dims)
		for d := 0; d < cfg.Dims; d++ {
			means[k][d] = -5 + 10*rng.Float64()
			variance := 0.7 + 0.8*rng.Float64()
			sds[k][d] = math.Sqrt(variance)
		}
	}

	binWidth := (gaussHi - gaussLo) / float64(cfg.Bins)
	ds := data.NewDataset(schema)
	ncols := schema.NumCols()
	for k := 0; k < cfg.Components; k++ {
		for i := 0; i < cfg.PerClass; i++ {
			row := make(data.Row, ncols)
			for d := 0; d < cfg.Dims; d++ {
				x := means[k][d] + rng.NormFloat64()*sds[k][d]
				b := int((x - gaussLo) / binWidth)
				if b < 0 {
					b = 0
				}
				if b >= cfg.Bins {
					b = cfg.Bins - 1
				}
				row[d] = data.Value(b)
			}
			row[ncols-1] = data.Value(k)
			ds.Rows = append(ds.Rows, row)
		}
	}
	rng.Shuffle(len(ds.Rows), func(i, j int) { ds.Rows[i], ds.Rows[j] = ds.Rows[j], ds.Rows[i] })
	return ds, nil
}
