// Package datagen implements the paper's three data sources (§5.1): data
// generated from random decision trees, data from mixtures of Gaussians
// discretized to categorical bins, and a synthetic census-like dataset
// standing in for the U.S. Census Bureau database the paper benchmarks on.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
)

// TreeGenConfig controls the random-tree data generator (§5.1.1). Defaults
// (applied by Normalize) follow §5.1.3: 25 attributes, 4 values per
// attribute with standard deviation 4, 10 classes, complete splits, zero
// standard deviation on cases per leaf.
type TreeGenConfig struct {
	Leaves        int     // leaves in the generating tree (tree size)
	Attrs         int     // number of predictor attributes
	Values        int     // mean number of values per attribute
	ValuesStdDev  float64 // stddev of values per attribute
	Classes       int     // number of class values
	CasesPerLeaf  int     // mean cases generated per leaf
	CasesStdDev   float64 // stddev of cases per leaf (fraction of mean if < 1? no: absolute)
	Skew          float64 // 0 = balanced expansion; 1 = always expand the deepest leaf (lop-sided)
	ClassNoise    float64 // fraction of rows whose class is re-drawn uniformly
	CompleteSplit bool    // split generating nodes on every value of the chosen attribute
	Seed          int64
}

// Normalize fills unset fields with the paper's defaults.
func (c TreeGenConfig) Normalize() TreeGenConfig {
	if c.Leaves == 0 {
		c.Leaves = 500
	}
	if c.Attrs == 0 {
		c.Attrs = 25
	}
	if c.Values == 0 {
		c.Values = 4
		if c.ValuesStdDev == 0 {
			c.ValuesStdDev = 4
		}
	}
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.CasesPerLeaf == 0 {
		c.CasesPerLeaf = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.CompleteSplit = true
	return c
}

// genNode is a node of the generating tree.
type genNode struct {
	parent   *genNode
	attr     int        // split attribute (internal nodes)
	val      data.Value // edge value from the parent
	depth    int
	children []*genNode
	class    data.Value // leaf label
	used     map[int]bool
}

// GenerateTreeData builds a random generating tree per the configuration and
// draws a dataset from it, so that "the effect of applying classification on
// the data will be the given decision tree" (§5.1.1). It returns the dataset
// and the number of leaves actually created (expansion stops early if every
// path exhausts its attributes).
func GenerateTreeData(cfg TreeGenConfig) (*data.Dataset, int, error) {
	cfg = cfg.Normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-attribute cardinalities: mean cfg.Values, stddev cfg.ValuesStdDev,
	// clamped to [2, 32].
	schema := &data.Schema{Class: data.Attribute{Name: "class", Card: cfg.Classes}}
	for i := 0; i < cfg.Attrs; i++ {
		card := int(math.Round(float64(cfg.Values) + rng.NormFloat64()*cfg.ValuesStdDev))
		if card < 2 {
			card = 2
		}
		if card > 32 {
			card = 32
		}
		schema.Attrs = append(schema.Attrs, data.Attribute{Name: fmt.Sprintf("A%d", i+1), Card: card})
	}

	root := &genNode{used: map[int]bool{}}
	// open holds leaves still eligible for expansion; closed holds leaves
	// whose paths have exhausted every attribute.
	open := []*genNode{root}
	var closed []*genNode

	// Grow until the requested number of leaves (each complete split on an
	// attribute of cardinality k replaces one leaf with k leaves) or until
	// every path is exhausted.
	for len(open)+len(closed) < cfg.Leaves && len(open) > 0 {
		// Pick the leaf to expand: with probability Skew the deepest open
		// leaf (producing long lop-sided trees), otherwise uniform.
		li := rng.Intn(len(open))
		if cfg.Skew > 0 && rng.Float64() < cfg.Skew {
			li = 0
			for i, l := range open {
				if l.depth > open[li].depth {
					li = i
				}
			}
		}
		n := open[li]

		// Pick an attribute unused on this path.
		var candidates []int
		for a := 0; a < cfg.Attrs; a++ {
			if !n.used[a] {
				candidates = append(candidates, a)
			}
		}
		if len(candidates) == 0 {
			// This path is final; retire it from the expansion pool.
			open = append(open[:li], open[li+1:]...)
			closed = append(closed, n)
			continue
		}
		a := candidates[rng.Intn(len(candidates))]

		card := schema.Attrs[a].Card
		n.attr = a
		for v := 0; v < card; v++ {
			child := &genNode{
				parent: n,
				val:    data.Value(v),
				depth:  n.depth + 1,
				used:   map[int]bool{a: true},
			}
			//repolint:ordered set-to-set copy is order-independent
			for k := range n.used {
				child.used[k] = true
			}
			n.children = append(n.children, child)
		}
		open = append(open[:li], open[li+1:]...)
		open = append(open, n.children...)
	}
	leaves := append(open, closed...)

	// Label leaves with classes (round-robin with random offset keeps all
	// classes populated, then shuffle by random assignment for larger leaf
	// counts).
	for i, l := range leaves {
		if i < cfg.Classes {
			l.class = data.Value(i)
		} else {
			l.class = data.Value(rng.Intn(cfg.Classes))
		}
	}

	// Draw rows: fix the attributes on the leaf's path, randomize the rest.
	ds := data.NewDataset(schema)
	ncols := schema.NumCols()
	for _, l := range leaves {
		cases := cfg.CasesPerLeaf
		if cfg.CasesStdDev > 0 {
			cases = int(math.Round(float64(cfg.CasesPerLeaf) + rng.NormFloat64()*cfg.CasesStdDev))
			if cases < 1 {
				cases = 1
			}
		}
		// Collect the path constraints.
		type fixed struct {
			attr int
			val  data.Value
		}
		var path []fixed
		for n := l; n.parent != nil; n = n.parent {
			path = append(path, fixed{attr: n.parent.attr, val: n.val})
		}
		for c := 0; c < cases; c++ {
			row := make(data.Row, ncols)
			for a := 0; a < cfg.Attrs; a++ {
				row[a] = data.Value(rng.Intn(schema.Attrs[a].Card))
			}
			for _, f := range path {
				row[f.attr] = f.val
			}
			cls := l.class
			if cfg.ClassNoise > 0 && rng.Float64() < cfg.ClassNoise {
				cls = data.Value(rng.Intn(cfg.Classes))
			}
			row[ncols-1] = cls
			ds.Rows = append(ds.Rows, row)
		}
	}

	// Shuffle rows so physical order carries no class signal.
	rng.Shuffle(len(ds.Rows), func(i, j int) { ds.Rows[i], ds.Rows[j] = ds.Rows[j], ds.Rows[i] })
	return ds, len(leaves), nil
}

// SizedTreeData generates random-tree data targeting approximately
// targetBytes of data with the given number of leaves, by choosing cases per
// leaf (the paper's Fig 4/5 methodology: "the number of leaves is set to 500
// and the cases per leaf are varied to produce the needed data set size").
func SizedTreeData(leaves int, targetBytes int64, cfg TreeGenConfig) (*data.Dataset, int, error) {
	cfg = cfg.Normalize()
	cfg.Leaves = leaves
	rowBytes := int64(4 * (cfg.Attrs + 1))
	rows := targetBytes / rowBytes
	if rows < int64(leaves) {
		rows = int64(leaves)
	}
	cfg.CasesPerLeaf = int(rows / int64(leaves))
	if cfg.CasesPerLeaf < 1 {
		cfg.CasesPerLeaf = 1
	}
	return GenerateTreeData(cfg)
}
