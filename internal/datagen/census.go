package datagen

import (
	"math/rand"

	"repro/internal/data"
)

// CensusConfig controls the census-like generator, the stand-in for the
// "large, publicly available database obtained from the U.S. Census Bureau"
// (§5.1). The schema and marginal distributions are modeled on the UCI
// Adult/Census-Income extract: skewed categorical demographics with a binary
// income class driven by noisy rules over education, age, occupation, hours
// and capital gains. The paper uses the census data only as "a real
// database"; what matters for the experiments is realistic skew (uneven
// attribute cardinalities and impure regions), which this generator
// reproduces deterministically.
type CensusConfig struct {
	Rows int
	Seed int64
	// Noise is the probability a row's class label is flipped (default 0.08),
	// keeping the tree from terminating too early.
	Noise float64
}

// Normalize fills unset fields.
func (c CensusConfig) Normalize() CensusConfig {
	if c.Rows == 0 {
		c.Rows = 30000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Noise == 0 {
		c.Noise = 0.08
	}
	return c
}

// censusAttr describes one census column: a name, its categories' relative
// weights (implying the cardinality), sampled independently.
type censusAttr struct {
	name    string
	weights []float64
}

// The demographic-shaped marginals. Cardinalities are intentionally uneven
// (2..14) to exercise the scheduler's cardinality estimates.
var censusAttrs = []censusAttr{
	{"age", []float64{6, 12, 14, 13, 10, 7, 4, 2}},                     // 8 age buckets
	{"workclass", []float64{70, 8, 6, 5, 4, 3, 2, 2}},                  // 8
	{"education", []float64{32, 22, 16, 10, 7, 5, 4, 2, 1, 1}},         // 10
	{"marital", []float64{46, 33, 10, 6, 3, 2}},                        // 6
	{"occupation", []float64{13, 12, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3}}, // 12
	{"relationship", []float64{40, 26, 15, 10, 5, 4}},                  // 6
	{"race", []float64{85, 10, 3, 1, 1}},                               // 5
	{"sex", []float64{67, 33}},                                         // 2
	{"capgain", []float64{91, 4, 3, 2}},                                // 4 buckets
	{"caploss", []float64{95, 3, 2}},                                   // 3 buckets
	{"hours", []float64{20, 55, 15, 10}},                               // 4 buckets
	{"country", []float64{90, 2, 2, 1, 1, 1, 1, 1, 0.5, 0.5}},          // 10
}

// GenerateCensus draws the census-like dataset with a binary income class.
func GenerateCensus(cfg CensusConfig) (*data.Dataset, error) {
	cfg = cfg.Normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))

	schema := &data.Schema{Class: data.Attribute{Name: "income", Card: 2}}
	cum := make([][]float64, len(censusAttrs))
	for i, a := range censusAttrs {
		schema.Attrs = append(schema.Attrs, data.Attribute{Name: a.name, Card: len(a.weights)})
		cum[i] = cumulative(a.weights)
	}

	idx := map[string]int{}
	for i, a := range censusAttrs {
		idx[a.name] = i
	}
	age, edu, occ, hours, capgain, marital, sex :=
		idx["age"], idx["education"], idx["occupation"], idx["hours"], idx["capgain"], idx["marital"], idx["sex"]

	ds := data.NewDataset(schema)
	ncols := schema.NumCols()
	for r := 0; r < cfg.Rows; r++ {
		row := make(data.Row, ncols)
		for i := range censusAttrs {
			row[i] = data.Value(sample(cum[i], rng))
		}
		// Noisy income rule: a score over education, age, occupation,
		// hours, capital gains, marital status and sex, thresholded.
		score := 0.0
		score += float64(row[edu]) * 0.55  // higher education codes = more schooling
		score += agePeak(int(row[age]))    // prime earning years
		score += float64(row[capgain]) * 2 // any capital gains strongly predict >50K
		score -= float64(row[occ]) * 0.18  // lower occupation codes = managerial
		if row[hours] >= 2 {
			score += 1.4
		}
		if row[marital] == 0 {
			score += 1.2 // married-civ-spouse
		}
		if row[sex] == 0 {
			score += 0.4
		}
		cls := data.Value(0)
		if score > 4.4 {
			cls = 1
		}
		if rng.Float64() < cfg.Noise {
			cls = 1 - cls
		}
		row[ncols-1] = cls
		ds.Rows = append(ds.Rows, row)
	}
	return ds, nil
}

// agePeak scores the prime-earning age buckets highest.
func agePeak(bucket int) float64 {
	peaks := []float64{0, 0.6, 1.4, 1.8, 1.6, 1.0, 0.4, 0}
	if bucket < 0 || bucket >= len(peaks) {
		return 0
	}
	return peaks[bucket]
}

func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	total := 0.0
	for _, x := range w {
		total += x
	}
	acc := 0.0
	for i, x := range w {
		acc += x / total
		out[i] = acc
	}
	out[len(out)-1] = 1.0
	return out
}

func sample(cum []float64, rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range cum {
		if u <= c {
			return i
		}
	}
	return len(cum) - 1
}
