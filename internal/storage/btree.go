package storage

// BTree is a B+-tree mapping int64 keys to TIDs, the ordered secondary
// index of the engine (duplicate keys allowed; entries with equal keys keep
// insertion order). Leaves hold the entries and are linked for range scans;
// interior nodes hold separator keys.
type BTree struct {
	root   btNode
	height int
	size   int
}

// btOrder is the maximum number of entries per leaf / children per interior
// node.
const btOrder = 32

type btNode interface {
	// insert adds (key, tid); if the node splits it returns the new right
	// sibling and the separator key (the smallest key in the right node).
	insert(key int64, tid TID) (btNode, int64, bool)
	// firstLeafGE locates the leaf and position of the first entry with
	// key >= k.
	firstLeafGE(k int64) (*btLeaf, int)
}

type btLeaf struct {
	keys [btOrder]int64
	tids [btOrder]TID
	n    int
	next *btLeaf
}

type btInner struct {
	// keys[i] separates children[i] (< keys[i]) from children[i+1] (>= keys[i]).
	keys     [btOrder]int64
	children [btOrder + 1]btNode
	n        int // number of keys; children count is n+1
}

// NewBTree returns an empty tree.
func NewBTree() *BTree { return &BTree{root: &btLeaf{}, height: 1} }

// Len returns the number of entries.
func (t *BTree) Len() int { return t.size }

// Height returns the tree height (1 = a single leaf).
func (t *BTree) Height() int { return t.height }

// Insert adds one entry. Duplicate keys are allowed; later inserts of an
// equal key land after earlier ones.
func (t *BTree) Insert(key int64, tid TID) {
	right, sep, split := t.root.insert(key, tid)
	if split {
		inner := &btInner{n: 1}
		inner.keys[0] = sep
		inner.children[0] = t.root
		inner.children[1] = right
		t.root = inner
		t.height++
	}
	t.size++
}

// AscendRange visits entries with lo <= key <= hi in key order (insertion
// order within equal keys), stopping early if fn returns false.
func (t *BTree) AscendRange(lo, hi int64, fn func(key int64, tid TID) bool) {
	leaf, i := t.root.firstLeafGE(lo)
	for leaf != nil {
		for ; i < leaf.n; i++ {
			if leaf.keys[i] > hi {
				return
			}
			if !fn(leaf.keys[i], leaf.tids[i]) {
				return
			}
		}
		leaf = leaf.next
		i = 0
	}
}

// Get returns the TIDs stored under key, in insertion order.
func (t *BTree) Get(key int64) []TID {
	var out []TID
	t.AscendRange(key, key, func(_ int64, tid TID) bool {
		out = append(out, tid)
		return true
	})
	return out
}

// --- leaf ---

func (l *btLeaf) insert(key int64, tid TID) (btNode, int64, bool) {
	// Position after all entries with keys <= key (stable for duplicates).
	pos := l.n
	for pos > 0 && l.keys[pos-1] > key {
		pos--
	}
	if l.n < btOrder {
		copy(l.keys[pos+1:l.n+1], l.keys[pos:l.n])
		copy(l.tids[pos+1:l.n+1], l.tids[pos:l.n])
		l.keys[pos] = key
		l.tids[pos] = tid
		l.n++
		return nil, 0, false
	}
	// Split: move the upper half to a new right leaf, then insert into the
	// appropriate side.
	mid := btOrder / 2
	right := &btLeaf{n: btOrder - mid, next: l.next}
	copy(right.keys[:], l.keys[mid:])
	copy(right.tids[:], l.tids[mid:])
	l.n = mid
	l.next = right
	if pos <= mid && !(pos == mid && key >= right.keys[0]) {
		l.insert(key, tid)
	} else {
		right.insert(key, tid)
	}
	return right, right.keys[0], true
}

func (l *btLeaf) firstLeafGE(k int64) (*btLeaf, int) {
	lo, hi := 0, l.n
	for lo < hi {
		m := (lo + hi) / 2
		if l.keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo == l.n {
		// All keys here are < k; the answer starts at the next leaf (whose
		// keys are all >= ours). Returning (next, 0) is correct because
		// leaves are ordered.
		return l.next, 0
	}
	return l, lo
}

// --- interior ---

func (in *btInner) childFor(key int64) int {
	lo, hi := 0, in.n
	for lo < hi {
		m := (lo + hi) / 2
		if in.keys[m] <= key {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

func (in *btInner) insert(key int64, tid TID) (btNode, int64, bool) {
	ci := in.childFor(key)
	right, sep, split := in.children[ci].insert(key, tid)
	if !split {
		return nil, 0, false
	}
	if in.n < btOrder {
		copy(in.keys[ci+1:in.n+1], in.keys[ci:in.n])
		copy(in.children[ci+2:in.n+2], in.children[ci+1:in.n+1])
		in.keys[ci] = sep
		in.children[ci+1] = right
		in.n++
		return nil, 0, false
	}
	// Split this interior node: promote the middle key.
	mid := btOrder / 2
	promoted := in.keys[mid]
	newRight := &btInner{n: btOrder - mid - 1}
	copy(newRight.keys[:], in.keys[mid+1:])
	copy(newRight.children[:], in.children[mid+1:])
	in.n = mid
	// Re-insert the pending separator into the proper half.
	target := in
	if sep >= promoted {
		target = newRight
	}
	ti := target.childFor(sep)
	copy(target.keys[ti+1:target.n+1], target.keys[ti:target.n])
	copy(target.children[ti+2:target.n+2], target.children[ti+1:target.n+1])
	target.keys[ti] = sep
	target.children[ti+1] = right
	target.n++
	return newRight, promoted, true
}

func (in *btInner) firstLeafGE(k int64) (*btLeaf, int) {
	// Descend to the leftmost child that can contain a key >= k. On
	// equality with a separator, go left: duplicates of the separator key
	// may live in the left subtree (the linked leaves recover any
	// overshoot to the left, never to the right).
	lo, hi := 0, in.n
	for lo < hi {
		m := (lo + hi) / 2
		if in.keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return in.children[lo].firstLeafGE(k)
}
