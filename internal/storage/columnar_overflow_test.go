package storage

import (
	"testing"

	"repro/internal/data"
)

// distinctCol builds one column of n rows, every value distinct, in a
// shuffled-looking but deterministic order (stride walk) so encoding cannot
// rely on sorted input.
func distinctCol(n int) [][]data.Value {
	col := make([]data.Value, n)
	const stride = 7919 // prime, coprime with any n we test
	v := 0
	for i := range col {
		col[i] = data.Value(v)
		v += stride
		if v >= n {
			v -= n
		}
	}
	return [][]data.Value{col}
}

// The uint16 code-space boundary: 65535 and 65536 distinct values encode
// exactly (65536 codes 0..65535 fill the space), 65537 must be rejected
// loudly — silent truncation would alias two distinct values onto one code.
func TestEncodeGroupDictBoundary(t *testing.T) {
	for _, n := range []int{maxDictSize - 1, maxDictSize} {
		g := encodeGroup(distinctCol(n), n)
		if got := len(g.Dict(0)); got != n {
			t.Fatalf("n=%d: dictionary has %d entries", n, got)
		}
		// Every code must round-trip to its original value, exactly once.
		codes, dict, counts := g.Codes(0), g.Dict(0), g.CodeCounts(0)
		want := distinctCol(n)[0]
		for i, c := range codes {
			if dict[c] != want[i] {
				t.Fatalf("n=%d: row %d decoded %d, want %d", n, i, dict[c], want[i])
			}
		}
		for c, cnt := range counts {
			if cnt != 1 {
				t.Fatalf("n=%d: code %d has count %d, want 1", n, c, cnt)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("encodeGroup accepted 65537 distinct values without panicking")
		}
	}()
	encodeGroup(distinctCol(maxDictSize+1), maxDictSize+1)
}

// Sealed groups can never overflow the code space: the store seals at
// RowGroupSize rows, which the compile-time guard pins at or below the
// dictionary capacity. This exercises the worst sealed case — every row
// distinct.
func TestAppendAllDistinctSealsSafely(t *testing.T) {
	cs := NewColStore(1)
	for i := 0; i < RowGroupSize+10; i++ {
		cs.Append([]data.Value{data.Value(i)})
	}
	if cs.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", cs.NumGroups())
	}
	sealed := cs.Group(0)
	if len(sealed.Dict(0)) != RowGroupSize {
		t.Fatalf("sealed dictionary has %d entries, want %d", len(sealed.Dict(0)), RowGroupSize)
	}
	if got, ok := sealed.FindCode(0, data.Value(RowGroupSize-1)); !ok || int(got) != RowGroupSize-1 {
		t.Fatalf("FindCode(max) = (%d, %v)", got, ok)
	}
}
