package storage

import (
	"sort"

	"repro/internal/data"
)

// RowGroupSize is the number of rows per sealed columnar row group. 4096
// rows of one 4-byte column dictionary-encode to roughly half a page at
// byte-wide codes, so a sealed group costs about one modeled page per
// column — versus the dozen-plus row-major pages the same rows occupy in
// the heap when the table is more than a couple of columns wide.
const RowGroupSize = 4096

// maxDictSize is the number of distinct values one group column can encode:
// codes are uint16, so the dictionary may hold at most 1<<16 entries (codes
// 0..65535). encodeGroup refuses larger dictionaries outright — truncating
// would silently alias distinct values onto the same code.
const maxDictSize = 1 << 16

// Compile-time guard: a group holds at most RowGroupSize rows, so its
// per-column dictionaries can never exceed RowGroupSize distinct values and
// the uint16 code space is unreachable through Append/Group. Raising
// RowGroupSize past maxDictSize would break that invariant and mis-encode
// sealed groups; fail the build instead (negative array length).
var _ [maxDictSize - RowGroupSize]struct{}

// ColStore is a column-major, dictionary-encoded copy of a table kept
// beside its row-major heap. Rows are appended in heap insertion order and
// sealed into immutable row groups of RowGroupSize rows; the open tail is
// encoded on demand so scans always see every row. Each sealed group stores,
// per column, a sorted dictionary of the distinct values, a dense code
// vector, and per-code occurrence counts. The sorted dictionary doubles as
// the group's zone map: min = dict[0], max = dict[last], and membership is
// a binary search — enough to prove a predicate can match no row of the
// group without touching a single page.
type ColStore struct {
	ncols  int
	groups []*ColGroup
	tail   [][]data.Value // per-column open tail, < RowGroupSize rows
	tailN  int
	tailG  *ColGroup // cached encoding of the tail; nil when stale
}

// NewColStore creates an empty columnar store for rows of ncols values.
func NewColStore(ncols int) *ColStore {
	if ncols <= 0 {
		panic("storage: columnar store needs at least one column")
	}
	return &ColStore{ncols: ncols, tail: make([][]data.Value, ncols)}
}

// NumCols returns the number of columns.
func (cs *ColStore) NumCols() int { return cs.ncols }

// NumRows returns the total number of rows, sealed and tail.
func (cs *ColStore) NumRows() int64 {
	return int64(len(cs.groups))*RowGroupSize + int64(cs.tailN)
}

// NumGroups returns the number of row groups a scan visits: all sealed
// groups plus one for the open tail when it is non-empty.
func (cs *ColStore) NumGroups() int {
	n := len(cs.groups)
	if cs.tailN > 0 {
		n++
	}
	return n
}

// Append adds one row (in insertion order, mirroring HeapFile.Insert) and
// seals a row group when the tail fills.
func (cs *ColStore) Append(row []data.Value) {
	if len(row) != cs.ncols {
		panic("storage: columnar row width mismatch")
	}
	for c, v := range row {
		cs.tail[c] = append(cs.tail[c], v)
	}
	cs.tailN++
	cs.tailG = nil
	if cs.tailN == RowGroupSize {
		cs.groups = append(cs.groups, encodeGroup(cs.tail, cs.tailN))
		for c := range cs.tail {
			cs.tail[c] = cs.tail[c][:0]
		}
		cs.tailN = 0
	}
}

// Group returns row group g. Index len(sealed groups) addresses the open
// tail, which is encoded on first access and cached until the next Append.
// The returned group is immutable.
func (cs *ColStore) Group(g int) *ColGroup {
	if g < len(cs.groups) {
		return cs.groups[g]
	}
	if g == len(cs.groups) && cs.tailN > 0 {
		if cs.tailG == nil {
			cs.tailG = encodeGroup(cs.tail, cs.tailN)
		}
		return cs.tailG
	}
	panic("storage: columnar group index out of range")
}

// Bytes returns the modeled compressed size of the store: every group,
// every column.
func (cs *ColStore) Bytes() int64 {
	var total int64
	for g := 0; g < cs.NumGroups(); g++ {
		total += cs.Group(g).Bytes(nil)
	}
	return total
}

// ColGroup is one immutable row group: up to RowGroupSize rows,
// dictionary-encoded per column.
type ColGroup struct {
	nrows int
	cols  []colVec
}

type colVec struct {
	dict   []data.Value // sorted distinct values; doubles as the zone map
	codes  []uint16     // codes[i] indexes dict
	counts []int64      // occurrences per code, exact
}

// encodeGroup dictionary-encodes n rows of column vectors. The dictionary
// is built collect-then-sort — copy, sort, dedupe — so construction order
// is deterministic without ever ranging a map. A column whose distinct-value
// count exceeds the uint16 code space (possible only for callers passing
// n > RowGroupSize; sealed groups are bounded by the compile-time guard
// above) panics rather than silently truncating codes.
func encodeGroup(cols [][]data.Value, n int) *ColGroup {
	g := &ColGroup{nrows: n, cols: make([]colVec, len(cols))}
	scratch := make([]data.Value, n)
	for c, vals := range cols {
		copy(scratch, vals[:n])
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		dict := make([]data.Value, 0, 8)
		for i, v := range scratch {
			if i == 0 || v != dict[len(dict)-1] {
				dict = append(dict, v)
			}
		}
		if len(dict) > maxDictSize {
			panic("storage: column cardinality exceeds 16-bit dictionary codes; shrink the group instead of truncating")
		}
		codes := make([]uint16, n)
		counts := make([]int64, len(dict))
		for i, v := range vals[:n] {
			code := uint16(sort.Search(len(dict), func(j int) bool { return dict[j] >= v }))
			codes[i] = code
			counts[code]++
		}
		g.cols[c] = colVec{dict: dict, codes: codes, counts: counts}
	}
	return g
}

// NumRows returns the number of rows in the group.
func (g *ColGroup) NumRows() int { return g.nrows }

// NumCols returns the number of columns in the group.
func (g *ColGroup) NumCols() int { return len(g.cols) }

// Dict returns the sorted distinct values of col. Callers must not modify it.
func (g *ColGroup) Dict(col int) []data.Value { return g.cols[col].dict }

// Codes returns col's dense code vector. Callers must not modify it.
func (g *ColGroup) Codes(col int) []uint16 { return g.cols[col].codes }

// CodeCounts returns the exact per-code occurrence counts for col, aligned
// with Dict. Callers must not modify it.
func (g *ColGroup) CodeCounts(col int) []int64 { return g.cols[col].counts }

// FindCode binary-searches col's dictionary for v, returning its code and
// whether the value occurs in this group at all. A miss is a zone-map
// verdict: no row of the group has v in col.
func (g *ColGroup) FindCode(col int, v data.Value) (uint16, bool) {
	dict := g.cols[col].dict
	i := sort.Search(len(dict), func(j int) bool { return dict[j] >= v })
	if i < len(dict) && dict[i] == v {
		return uint16(i), true
	}
	return 0, false
}

// colBytes returns the modeled size of one encoded column: the dictionary
// at 4 bytes per value plus the code vector at one byte per row for
// dictionaries that fit 8-bit codes, two bytes otherwise.
func (g *ColGroup) colBytes(col int) int64 {
	v := &g.cols[col]
	width := int64(1)
	if len(v.dict) > 256 {
		width = 2
	}
	return int64(4*len(v.dict)) + width*int64(g.nrows)
}

// Bytes returns the modeled size of the listed columns (nil means all).
func (g *ColGroup) Bytes(cols []int) int64 {
	var total int64
	if cols == nil {
		for c := range g.cols {
			total += g.colBytes(c)
		}
		return total
	}
	for _, c := range cols {
		total += g.colBytes(c)
	}
	return total
}

// Pages returns the modeled page-I/O cost of reading the listed columns of
// this group (nil means all): each column is packed into its own run of
// PageSize pages, at least one per column, so a scan that needs only k
// columns reads only their pages.
func (g *ColGroup) Pages(cols []int) int64 {
	var pages int64
	count := func(c int) {
		b := g.colBytes(c)
		p := (b + PageSize - 1) / PageSize
		if p < 1 {
			p = 1
		}
		pages += p
	}
	if cols == nil {
		for c := range g.cols {
			count(c)
		}
		return pages
	}
	for _, c := range cols {
		count(c)
	}
	return pages
}
