package storage

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func rec8(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestHeapInsertScanRoundTrip(t *testing.T) {
	h := NewHeapFile(8)
	meter := sim.NewDefaultMeter()
	bp := NewBufferPool(meter, 4)

	const n = 5000
	for i := uint64(0); i < n; i++ {
		h.Insert(rec8(i))
	}
	if h.NumRows() != n {
		t.Fatalf("NumRows = %d", h.NumRows())
	}
	var got []uint64
	bp.Scan(h, func(tid TID, rec []byte) bool {
		got = append(got, binary.LittleEndian.Uint64(rec))
		return true
	})
	if len(got) != n {
		t.Fatalf("scanned %d rows", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("row %d = %d (physical order must equal insertion order)", i, v)
		}
	}
}

func TestHeapFetchByTID(t *testing.T) {
	h := NewHeapFile(8)
	meter := sim.NewDefaultMeter()
	bp := NewBufferPool(meter, 4)
	var tids []TID
	for i := uint64(0); i < 3000; i++ {
		tids = append(tids, h.Insert(rec8(i*7)))
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(tids))
		rec, err := bp.Fetch(h, tids[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(rec); got != uint64(i*7) {
			t.Fatalf("Fetch(%v) = %d, want %d", tids[i], got, i*7)
		}
	}
	if meter.Count(sim.CtrTIDFetches) != 200 {
		t.Errorf("TID fetches = %d, want 200", meter.Count(sim.CtrTIDFetches))
	}
}

func TestHeapRecordBounds(t *testing.T) {
	h := NewHeapFile(8)
	h.Insert(rec8(1))
	if _, ok := h.Record(TID{Page: 5, Slot: 0}); ok {
		t.Error("out-of-range page accepted")
	}
	if _, ok := h.Record(TID{Page: 0, Slot: 99}); ok {
		t.Error("out-of-range slot accepted")
	}
	if rec, ok := h.Record(TID{Page: 0, Slot: 0}); !ok || binary.LittleEndian.Uint64(rec) != 1 {
		t.Error("valid TID rejected")
	}
}

func TestRecordsPerPageAndBytes(t *testing.T) {
	h := NewHeapFile(100)
	want := (PageSize - pageHeaderBytes) / 100
	if h.RecordsPerPage() != want {
		t.Fatalf("RecordsPerPage = %d, want %d", h.RecordsPerPage(), want)
	}
	for i := 0; i < want+1; i++ { // one page plus one record
		h.Insert(make([]byte, 100))
	}
	if h.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", h.NumPages())
	}
	if h.Bytes() != 2*PageSize {
		t.Errorf("Bytes = %d", h.Bytes())
	}
}

func TestNewHeapFilePanics(t *testing.T) {
	for _, recLen := range []int{0, -4, PageSize} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("recLen %d: no panic", recLen)
				}
			}()
			NewHeapFile(recLen)
		}()
	}
}

func TestInsertWrongLengthPanics(t *testing.T) {
	h := NewHeapFile(8)
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong record length")
		}
	}()
	h.Insert([]byte{1, 2, 3})
}

func TestBufferPoolChargesMissesOnly(t *testing.T) {
	h := NewHeapFile(8)
	meter := sim.NewDefaultMeter()
	perPage := h.RecordsPerPage()
	// Fill exactly 3 pages.
	for i := 0; i < 3*perPage; i++ {
		h.Insert(rec8(uint64(i)))
	}
	bp := NewBufferPool(meter, 10) // all pages fit
	count := func() (n int) {
		bp.Scan(h, func(TID, []byte) bool { n++; return n >= 0 })
		return n
	}
	count()
	if got := meter.Count(sim.CtrServerPages); got != 3 {
		t.Fatalf("first scan read %d pages, want 3", got)
	}
	count()
	if got := meter.Count(sim.CtrServerPages); got != 3 {
		t.Fatalf("second scan re-read pages (%d); pool should have cached all 3", got)
	}
	hits, misses := bp.Stats()
	if misses != 3 || hits != 3 {
		t.Errorf("hits=%d misses=%d, want 3/3", hits, misses)
	}
}

func TestBufferPoolEvictsLRU(t *testing.T) {
	h := NewHeapFile(8)
	meter := sim.NewDefaultMeter()
	perPage := h.RecordsPerPage()
	for i := 0; i < 4*perPage; i++ { // 4 pages
		h.Insert(rec8(uint64(i)))
	}
	bp := NewBufferPool(meter, 2) // pool smaller than file
	bp.Scan(h, func(TID, []byte) bool { return true })
	bp.Scan(h, func(TID, []byte) bool { return true })
	// With LRU capacity 2 over a 4-page sequential scan, every access
	// misses on both scans.
	if got := meter.Count(sim.CtrServerPages); got != 8 {
		t.Errorf("pages read = %d, want 8 (sequential flooding)", got)
	}
}

func TestBufferPoolInvalidate(t *testing.T) {
	h1 := NewHeapFile(8)
	h2 := NewHeapFile(8)
	meter := sim.NewDefaultMeter()
	bp := NewBufferPool(meter, 10)
	h1.Insert(rec8(1))
	h2.Insert(rec8(2))
	bp.Scan(h1, func(TID, []byte) bool { return true })
	bp.Scan(h2, func(TID, []byte) bool { return true })
	bp.Invalidate(h1)
	before := meter.Count(sim.CtrServerPages)
	bp.Scan(h2, func(TID, []byte) bool { return true })
	if meter.Count(sim.CtrServerPages) != before {
		t.Error("invalidate evicted the wrong file's pages")
	}
	bp.Scan(h1, func(TID, []byte) bool { return true })
	if meter.Count(sim.CtrServerPages) != before+1 {
		t.Error("invalidated page still cached")
	}
}

func TestBufferPoolCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero capacity")
		}
	}()
	NewBufferPool(sim.NewDefaultMeter(), 0)
}

func TestScanEarlyStop(t *testing.T) {
	h := NewHeapFile(8)
	bp := NewBufferPool(sim.NewDefaultMeter(), 4)
	for i := 0; i < 100; i++ {
		h.Insert(rec8(uint64(i)))
	}
	n := 0
	bp.Scan(h, func(TID, []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("scan visited %d records after early stop", n)
	}
}

// TestHeapRoundTripProperty: inserting arbitrary records and scanning them
// back yields exactly the inserted sequence, and every returned TID resolves
// to its record.
func TestHeapRoundTripProperty(t *testing.T) {
	f := func(recs [][4]byte) bool {
		h := NewHeapFile(4)
		bp := NewBufferPool(sim.NewDefaultMeter(), 2)
		tids := make([]TID, len(recs))
		for i, r := range recs {
			tids[i] = h.Insert(r[:])
		}
		i := 0
		ok := true
		bp.Scan(h, func(tid TID, rec []byte) bool {
			if i >= len(recs) || !bytes.Equal(rec, recs[i][:]) || tid != tids[i] {
				ok = false
				return false
			}
			i++
			return true
		})
		if !ok || i != len(recs) {
			return false
		}
		for j, tid := range tids {
			rec, err := bp.Fetch(h, tid)
			if err != nil || !bytes.Equal(rec, recs[j][:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
