// Package storage implements the server's physical layer: fixed-width
// records packed into 8 KB pages, heap files, and an LRU buffer pool that
// charges simulated disk I/O to a sim.Meter on misses.
//
// The paper requires "no changes to the physical design of the SQL database"
// — the middleware works against a plain heap-organized table — so the
// storage layer is intentionally simple: heap files of fixed-width records
// (our rows are vectors of 4-byte categorical codes), sequential scans, and
// record fetch by TID for the keyset-cursor and TID-join experiments (§4.3.3).
package storage

import (
	"fmt"

	"repro/internal/sim"
)

// PageSize is the size of one disk page in bytes, matching SQL Server 7.0's
// 8 KB pages.
const PageSize = 8192

// pageHeaderBytes reserves room at the start of each page for the record
// count.
const pageHeaderBytes = 8

// PageID identifies a page within one heap file.
type PageID int32

// TID is a tuple identifier: (page, slot) within a heap file. It is stable
// for the lifetime of the record (this storage layer never moves records).
type TID struct {
	Page PageID
	Slot uint16
}

// String renders the TID as "page:slot".
func (t TID) String() string { return fmt.Sprintf("%d:%d", t.Page, t.Slot) }

// page is one 8 KB page holding fixed-width records.
type page struct {
	buf  [PageSize]byte
	nrec uint16
}

// HeapFile is an append-only heap of fixed-width records. Pages live in
// memory (this is a simulation of server disk, not a persistence layer) and
// all access is metered through the owning BufferPool so that scans charge
// realistic I/O.
type HeapFile struct {
	recLen  int
	perPage int
	pages   []*page
	nrows   int64
}

// NewHeapFile creates a heap file for records of recLen bytes.
func NewHeapFile(recLen int) *HeapFile {
	if recLen <= 0 || recLen > PageSize-pageHeaderBytes {
		panic(fmt.Sprintf("storage: invalid record length %d", recLen))
	}
	return &HeapFile{
		recLen:  recLen,
		perPage: (PageSize - pageHeaderBytes) / recLen,
	}
}

// RecLen returns the fixed record length in bytes.
func (h *HeapFile) RecLen() int { return h.recLen }

// NumRows returns the number of records in the file.
func (h *HeapFile) NumRows() int64 { return h.nrows }

// NumPages returns the number of pages in the file.
func (h *HeapFile) NumPages() int { return len(h.pages) }

// Bytes returns the on-disk size of the file.
func (h *HeapFile) Bytes() int64 { return int64(len(h.pages)) * PageSize }

// RecordsPerPage returns how many records fit in one page.
func (h *HeapFile) RecordsPerPage() int { return h.perPage }

// Insert appends one record and returns its TID. rec must be exactly RecLen
// bytes.
func (h *HeapFile) Insert(rec []byte) TID {
	if len(rec) != h.recLen {
		panic(fmt.Sprintf("storage: record length %d, want %d", len(rec), h.recLen))
	}
	var p *page
	if n := len(h.pages); n > 0 && int(h.pages[n-1].nrec) < h.perPage {
		p = h.pages[n-1]
	} else {
		p = &page{}
		h.pages = append(h.pages, p)
	}
	slot := p.nrec
	off := pageHeaderBytes + int(slot)*h.recLen
	copy(p.buf[off:off+h.recLen], rec)
	p.nrec++
	h.nrows++
	return TID{Page: PageID(len(h.pages) - 1), Slot: slot}
}

// Record returns the raw bytes of the record at tid without metering, and
// whether the slot exists. The returned slice aliases page memory and must
// not be modified. Callers that need I/O accounting must pair this with
// BufferPool.TouchForScan or use BufferPool.Fetch.
func (h *HeapFile) Record(tid TID) ([]byte, bool) {
	rec, err := h.record(tid)
	if err != nil {
		return nil, false
	}
	return rec, true
}

// record returns the raw bytes of the record at tid without metering. The
// returned slice aliases page memory and must not be modified or retained
// across inserts.
func (h *HeapFile) record(tid TID) ([]byte, error) {
	if int(tid.Page) < 0 || int(tid.Page) >= len(h.pages) {
		return nil, fmt.Errorf("storage: TID %v: page out of range [0,%d)", tid, len(h.pages))
	}
	p := h.pages[tid.Page]
	if tid.Slot >= p.nrec {
		return nil, fmt.Errorf("storage: TID %v: slot out of range [0,%d)", tid, p.nrec)
	}
	off := pageHeaderBytes + int(tid.Slot)*h.recLen
	return p.buf[off : off+h.recLen], nil
}

// BufferPool is an LRU cache of (file, page) frames. A hit is free; a miss
// charges one ServerPageIO to the meter. The pool capacity models the
// server's buffer cache: with the default small capacity, repeated full
// scans of a large table keep paying disk I/O, which is the regime the
// paper's middleware is designed for.
type BufferPool struct {
	meter    *sim.Meter
	capacity int
	frames   map[frameKey]*frameNode
	head     *frameNode // most recently used
	tail     *frameNode // least recently used
	hits     int64
	misses   int64
}

type frameKey struct {
	file *HeapFile
	page PageID
}

type frameNode struct {
	key        frameKey
	prev, next *frameNode
}

// NewBufferPool creates a pool holding up to capacity pages. capacity must
// be at least 1.
func NewBufferPool(meter *sim.Meter, capacity int) *BufferPool {
	if capacity < 1 {
		panic("storage: buffer pool capacity must be >= 1")
	}
	return &BufferPool{
		meter:    meter,
		capacity: capacity,
		frames:   make(map[frameKey]*frameNode, capacity),
	}
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Stats returns the cumulative hit and miss counts.
func (bp *BufferPool) Stats() (hits, misses int64) { return bp.hits, bp.misses }

// touch records an access to (file, page), charging disk I/O on a miss and
// maintaining LRU order.
func (bp *BufferPool) touch(f *HeapFile, pid PageID) {
	k := frameKey{f, pid}
	if n, ok := bp.frames[k]; ok {
		bp.hits++
		bp.moveToFront(n)
		return
	}
	bp.misses++
	bp.meter.Charge(sim.CtrServerPages, bp.meter.Costs().ServerPageIO, 1)
	n := &frameNode{key: k}
	bp.frames[k] = n
	bp.pushFront(n)
	if len(bp.frames) > bp.capacity {
		bp.evict()
	}
}

// TouchForScan records a sequential page access during a pull-based cursor
// scan, charging disk I/O on a pool miss.
func (bp *BufferPool) TouchForScan(f *HeapFile, pid PageID) { bp.touch(f, pid) }

// Invalidate drops all frames belonging to the file (used when a temp table
// is dropped).
func (bp *BufferPool) Invalidate(f *HeapFile) {
	for n := bp.head; n != nil; {
		next := n.next
		if n.key.file == f {
			bp.unlink(n)
			delete(bp.frames, n.key)
		}
		n = next
	}
}

func (bp *BufferPool) pushFront(n *frameNode) {
	n.prev = nil
	n.next = bp.head
	if bp.head != nil {
		bp.head.prev = n
	}
	bp.head = n
	if bp.tail == nil {
		bp.tail = n
	}
}

func (bp *BufferPool) unlink(n *frameNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		bp.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		bp.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (bp *BufferPool) moveToFront(n *frameNode) {
	if bp.head == n {
		return
	}
	bp.unlink(n)
	bp.pushFront(n)
}

func (bp *BufferPool) evict() {
	if bp.tail == nil {
		return
	}
	n := bp.tail
	bp.unlink(n)
	delete(bp.frames, n.key)
}

// Scan iterates the heap file in physical order through the buffer pool,
// calling fn for each record. fn must not retain rec. Iteration stops early
// if fn returns false. Each page access is metered (disk I/O on pool miss).
func (bp *BufferPool) Scan(f *HeapFile, fn func(tid TID, rec []byte) bool) {
	for pi, p := range f.pages {
		bp.touch(f, PageID(pi))
		for s := uint16(0); s < p.nrec; s++ {
			off := pageHeaderBytes + int(s)*f.recLen
			if !fn(TID{Page: PageID(pi), Slot: s}, p.buf[off:off+f.recLen]) {
				return
			}
		}
	}
}

// Fetch reads one record by TID through the buffer pool, charging the
// random-I/O TIDFetch cost in addition to the page access.
func (bp *BufferPool) Fetch(f *HeapFile, tid TID) ([]byte, error) {
	rec, err := f.record(tid)
	if err != nil {
		return nil, err
	}
	bp.touch(f, tid.Page)
	bp.meter.Charge(sim.CtrTIDFetches, bp.meter.Costs().TIDFetch, 1)
	return rec, nil
}
