package storage

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

func TestColStoreRoundTrip(t *testing.T) {
	const ncols = 4
	rng := rand.New(rand.NewSource(19))
	n := RowGroupSize + 700 // one sealed group plus an open tail
	rows := make([][]data.Value, n)
	cs := NewColStore(ncols)
	for i := range rows {
		row := make([]data.Value, ncols)
		for c := range row {
			row[c] = data.Value(rng.Intn(50))
		}
		rows[i] = row
		cs.Append(row)
	}
	if cs.NumRows() != int64(n) {
		t.Fatalf("NumRows = %d, want %d", cs.NumRows(), n)
	}
	if cs.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", cs.NumGroups())
	}
	// Decoding every group in order must reproduce the appended rows exactly.
	got := 0
	for g := 0; g < cs.NumGroups(); g++ {
		grp := cs.Group(g)
		for i := 0; i < grp.NumRows(); i++ {
			for c := 0; c < ncols; c++ {
				v := grp.Dict(c)[grp.Codes(c)[i]]
				if v != rows[got][c] {
					t.Fatalf("group %d row %d col %d = %d, want %d", g, i, c, v, rows[got][c])
				}
			}
			got++
		}
	}
	if got != n {
		t.Fatalf("decoded %d rows, want %d", got, n)
	}
}

func TestColGroupDictSortedAndCountsExact(t *testing.T) {
	cs := NewColStore(2)
	vals := []data.Value{5, 1, 5, 9, 1, 5, 0}
	for _, v := range vals {
		cs.Append([]data.Value{v, 3})
	}
	g := cs.Group(0) // open tail, encoded on demand
	dict := g.Dict(0)
	want := []data.Value{0, 1, 5, 9}
	if len(dict) != len(want) {
		t.Fatalf("dict = %v, want %v", dict, want)
	}
	for i := range want {
		if dict[i] != want[i] {
			t.Fatalf("dict = %v, want %v", dict, want)
		}
	}
	counts := g.CodeCounts(0)
	wantCounts := []int64{1, 2, 3, 1}
	for i := range wantCounts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", counts, wantCounts)
		}
	}
	// Constant column collapses to a single dictionary entry.
	if d := g.Dict(1); len(d) != 1 || d[0] != 3 || g.CodeCounts(1)[0] != int64(len(vals)) {
		t.Fatalf("constant column dict = %v counts = %v", d, g.CodeCounts(1))
	}
}

func TestColGroupFindCode(t *testing.T) {
	cs := NewColStore(1)
	for _, v := range []data.Value{10, 20, 30} {
		cs.Append([]data.Value{v})
	}
	g := cs.Group(0)
	if code, ok := g.FindCode(0, 20); !ok || code != 1 {
		t.Fatalf("FindCode(20) = %d, %v", code, ok)
	}
	for _, miss := range []data.Value{5, 15, 35} {
		if _, ok := g.FindCode(0, miss); ok {
			t.Fatalf("FindCode(%d) should miss", miss)
		}
	}
}

func TestColGroupPages(t *testing.T) {
	cs := NewColStore(3)
	for i := 0; i < RowGroupSize; i++ {
		cs.Append([]data.Value{data.Value(i % 8), data.Value(i % 300), data.Value(i % 2)})
	}
	g := cs.Group(0)
	// Column 0: 8-entry dict, byte codes -> 4096 + 32 bytes -> 1 page.
	// Column 1: 300-entry dict, 2-byte codes -> 8192 + 1200 bytes -> 2 pages.
	if p := g.Pages([]int{0}); p != 1 {
		t.Fatalf("Pages(col0) = %d, want 1", p)
	}
	if p := g.Pages([]int{1}); p != 2 {
		t.Fatalf("Pages(col1) = %d, want 2", p)
	}
	if p := g.Pages(nil); p != 4 {
		t.Fatalf("Pages(all) = %d, want 4", p)
	}
	if b := g.Bytes([]int{0}); b != 4*8+RowGroupSize {
		t.Fatalf("Bytes(col0) = %d", b)
	}
}

func TestColStoreTailCacheInvalidation(t *testing.T) {
	cs := NewColStore(1)
	cs.Append([]data.Value{1})
	g1 := cs.Group(0)
	if g1.NumRows() != 1 {
		t.Fatalf("tail rows = %d, want 1", g1.NumRows())
	}
	cs.Append([]data.Value{2})
	g2 := cs.Group(0)
	if g2.NumRows() != 2 {
		t.Fatalf("tail rows after append = %d, want 2", g2.NumRows())
	}
	if v := g2.Dict(0)[g2.Codes(0)[1]]; v != 2 {
		t.Fatalf("tail row 1 = %d, want 2", v)
	}
}
