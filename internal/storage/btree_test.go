package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func tidOf(i int) TID { return TID{Page: PageID(i / 100), Slot: uint16(i % 100)} }

func TestBTreeInsertGet(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 1000; i++ {
		bt.Insert(int64(i%37), tidOf(i))
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d", bt.Len())
	}
	for k := int64(0); k < 37; k++ {
		tids := bt.Get(k)
		var want []TID
		for i := 0; i < 1000; i++ {
			if int64(i%37) == k {
				want = append(want, tidOf(i))
			}
		}
		if len(tids) != len(want) {
			t.Fatalf("Get(%d) = %d tids, want %d", k, len(tids), len(want))
		}
		for i := range want {
			if tids[i] != want[i] {
				t.Fatalf("Get(%d)[%d] = %v, want %v (insertion order lost)", k, i, tids[i], want[i])
			}
		}
	}
	if bt.Get(999) != nil {
		t.Error("absent key returned entries")
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := NewBTree()
	rng := rand.New(rand.NewSource(1))
	var keys []int64
	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(500))
		keys = append(keys, k)
		bt.Insert(k, tidOf(i))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, rangeCase := range [][2]int64{{0, 499}, {100, 200}, {250, 250}, {490, 600}, {-10, 5}, {600, 700}} {
		lo, hi := rangeCase[0], rangeCase[1]
		var got []int64
		bt.AscendRange(lo, hi, func(k int64, _ TID) bool {
			got = append(got, k)
			return true
		})
		var want []int64
		for _, k := range keys {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range [%d,%d]: %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range [%d,%d] position %d: %d, want %d", lo, hi, i, got[i], want[i])
			}
		}
	}
}

func TestBTreeEarlyStop(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Insert(int64(i), tidOf(i))
	}
	n := 0
	bt.AscendRange(0, 99, func(int64, TID) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("visited %d after early stop", n)
	}
}

func TestBTreeHeightGrows(t *testing.T) {
	bt := NewBTree()
	if bt.Height() != 1 {
		t.Fatalf("empty height %d", bt.Height())
	}
	for i := 0; i < 10000; i++ {
		bt.Insert(int64(i), tidOf(i))
	}
	if bt.Height() < 3 {
		t.Errorf("10k sequential keys gave height %d; splits not propagating", bt.Height())
	}
	// Sanity: all keys retrievable after deep splits.
	var n int
	bt.AscendRange(-1<<62, 1<<62, func(int64, TID) bool { n++; return true })
	if n != 10000 {
		t.Errorf("full scan saw %d of 10000", n)
	}
}

func TestBTreeDescendingInsertion(t *testing.T) {
	bt := NewBTree()
	for i := 9999; i >= 0; i-- {
		bt.Insert(int64(i), tidOf(i))
	}
	prev := int64(-1)
	n := 0
	bt.AscendRange(0, 9999, func(k int64, _ TID) bool {
		if k < prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
		n++
		return true
	})
	if n != 10000 {
		t.Errorf("saw %d keys", n)
	}
}

// TestBTreeAgainstReferenceProperty: arbitrary insert sequences agree with a
// sorted-slice reference for membership and range scans, including negative
// keys and heavy duplication.
func TestBTreeAgainstReferenceProperty(t *testing.T) {
	f := func(raw []int16, loSeed, hiSeed int16) bool {
		bt := NewBTree()
		ref := map[int64][]TID{}
		var sorted []int64
		for i, r := range raw {
			k := int64(r % 50) // heavy duplication
			bt.Insert(k, tidOf(i))
			ref[k] = append(ref[k], tidOf(i))
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if bt.Len() != len(raw) {
			return false
		}
		// Point lookups preserve insertion order.
		for k, want := range ref {
			got := bt.Get(k)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		// A random range agrees with the reference.
		lo, hi := int64(loSeed%60)-5, int64(hiSeed%60)-5
		if lo > hi {
			lo, hi = hi, lo
		}
		var want int
		for _, k := range sorted {
			if k >= lo && k <= hi {
				want++
			}
		}
		var got int
		bt.AscendRange(lo, hi, func(int64, TID) bool { got++; return true })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
