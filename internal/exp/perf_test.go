package exp

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestCollectPerfDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("profiled builds take a moment")
	}
	snaps1, rep1, err := CollectPerf(0.1)
	if err != nil {
		t.Fatal(err)
	}
	snaps2, rep2, err := CollectPerf(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snaps1, snaps2) {
		t.Error("snapshots differ across reruns")
	}
	if rep1 != rep2 {
		t.Error("explain report differs across reruns")
	}
	if len(snaps1) != len(perfScenarios()) {
		t.Fatalf("got %d snapshots, want %d", len(snaps1), len(perfScenarios()))
	}
	for _, s := range snaps1 {
		if s.Metrics["total_ns"] <= 0 {
			t.Errorf("%s: total_ns = %d, want > 0", s.Scenario, s.Metrics["total_ns"])
		}
		if s.Metrics["spans"] <= 0 {
			t.Errorf("%s: spans = %d, want > 0", s.Scenario, s.Metrics["spans"])
		}
	}
	// The fallback scenario gates the fallback arms, not scans.
	for _, s := range snaps1 {
		if s.Scenario != "fallback" {
			continue
		}
		if _, ok := s.Metrics["excl_ns/fallback"]; !ok {
			t.Error("fallback scenario has no excl_ns/fallback metric")
		}
	}
	if !strings.Contains(rep1, "perf scenario row-seq") {
		t.Error("report missing scenario header")
	}
}

func clonePerf(snaps []PerfSnapshot) []PerfSnapshot {
	out := make([]PerfSnapshot, len(snaps))
	for i, s := range snaps {
		m := make(map[string]int64, len(s.Metrics))
		for k, v := range s.Metrics { //repolint:ordered map-to-map copy
			m[k] = v
		}
		out[i] = PerfSnapshot{Scenario: s.Scenario, Metrics: m}
	}
	return out
}

func TestComparePerf(t *testing.T) {
	base := []PerfSnapshot{
		{Scenario: "a", Metrics: map[string]int64{"total_ns": 1_000_000_000, "spans": 40, "zero": 0}},
		{Scenario: "b", Metrics: map[string]int64{"total_ns": 500_000_000}},
	}

	if msgs := ComparePerf(base, clonePerf(base), 0.10); len(msgs) != 0 {
		t.Errorf("identical run flagged: %v", msgs)
	}

	// Tolerance boundary at 10%: values up to the exact limit pass, one past
	// it fails.
	for _, tc := range []struct {
		v    int64
		pass bool
	}{{1_099_000_000, true}, {1_100_000_000, true}, {1_100_000_001, false}} {
		cur := clonePerf(base)
		cur[0].Metrics["total_ns"] = tc.v
		msgs := ComparePerf(base, cur, 0.10)
		if tc.pass && len(msgs) != 0 {
			t.Errorf("total_ns=%d should pass at tol 0.10: %v", tc.v, msgs)
		}
		if !tc.pass && len(msgs) == 0 {
			t.Errorf("total_ns=%d should fail at tol 0.10", tc.v)
		}
	}

	// The acceptance negative test: a 20% regression must be caught.
	cur := clonePerf(base)
	cur[1].Metrics["total_ns"] = 600_000_000
	if msgs := ComparePerf(base, cur, 0.10); len(msgs) != 1 || !strings.Contains(msgs[0], "regressed") {
		t.Errorf("20%% regression not caught: %v", msgs)
	}

	// Missing scenario and missing metric.
	if msgs := ComparePerf(base, clonePerf(base)[:1], 0.10); len(msgs) != 1 || !strings.Contains(msgs[0], "scenario missing") {
		t.Errorf("missing scenario not caught: %v", msgs)
	}
	cur = clonePerf(base)
	delete(cur[0].Metrics, "spans")
	if msgs := ComparePerf(base, cur, 0.10); len(msgs) != 1 || !strings.Contains(msgs[0], "metric spans missing") {
		t.Errorf("missing metric not caught: %v", msgs)
	}

	// A zero baseline is an absolute-delta comparison: drift within the
	// count floor passes, growth past it gates.
	cur = clonePerf(base)
	cur[0].Metrics["zero"] = perfAbsCountAllowance
	if msgs := ComparePerf(base, cur, 0.10); len(msgs) != 0 {
		t.Errorf("zero baseline within absolute floor flagged: %v", msgs)
	}
	cur = clonePerf(base)
	cur[0].Metrics["zero"] = perfAbsCountAllowance + 1
	if msgs := ComparePerf(base, cur, 0.10); len(msgs) != 1 || !strings.Contains(msgs[0], "regressed") {
		t.Errorf("zero-baseline growth past floor not caught: %v", msgs)
	}

	// Metrics unknown to the baseline are ignored (new instrumentation).
	cur = clonePerf(base)
	cur[0].Metrics["brand_new"] = 123
	if msgs := ComparePerf(base, cur, 0.10); len(msgs) != 0 {
		t.Errorf("new metric flagged: %v", msgs)
	}

	// Improvements pass.
	cur = clonePerf(base)
	cur[0].Metrics["total_ns"] = 700
	if msgs := ComparePerf(base, cur, 0.10); len(msgs) != 0 {
		t.Errorf("improvement flagged: %v", msgs)
	}
}

// The zero-baseline regression test for the perfgate fix: ns-valued and
// count-valued metrics each get their own absolute floor, and small nonzero
// baselines keep the floor too (2→3 on a counter is noise, not a 50%
// regression).
func TestComparePerfZeroBaselineAbsoluteDelta(t *testing.T) {
	base := []PerfSnapshot{{Scenario: "s", Metrics: map[string]int64{
		"ctr/col_groups_skipped": 0,
		"excl_ns/scan":           0,
		"ctr/sql_fallbacks":      2,
	}}}

	cur := []PerfSnapshot{{Scenario: "s", Metrics: map[string]int64{
		"ctr/col_groups_skipped": perfAbsCountAllowance,
		"excl_ns/scan":           perfAbsNSAllowance,
		"ctr/sql_fallbacks":      2 + perfAbsCountAllowance,
	}}}
	if msgs := ComparePerf(base, cur, 0.10); len(msgs) != 0 {
		t.Fatalf("drift within absolute floors flagged: %v", msgs)
	}

	cur = []PerfSnapshot{{Scenario: "s", Metrics: map[string]int64{
		"ctr/col_groups_skipped": perfAbsCountAllowance + 1,
		"excl_ns/scan":           perfAbsNSAllowance + 1,
		"ctr/sql_fallbacks":      2,
	}}}
	msgs := ComparePerf(base, cur, 0.10)
	if len(msgs) != 2 {
		t.Fatalf("growth past absolute floors: got %v, want 2 regressions", msgs)
	}
}

func TestPerfHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")

	h, err := LoadPerfHistory(path)
	if err != nil {
		t.Fatalf("missing file should load as empty: %v", err)
	}
	if len(h.Entries) != 0 {
		t.Fatalf("empty history has %d entries", len(h.Entries))
	}
	if h.Baseline(0.25) != nil {
		t.Error("empty history has a baseline")
	}

	snapsA := []PerfSnapshot{{Scenario: "a", Metrics: map[string]int64{"total_ns": 10}}}
	snapsB := []PerfSnapshot{{Scenario: "a", Metrics: map[string]int64{"total_ns": 20}}}
	h.Append(0.25, snapsA)
	h.Append(1.0, snapsB)
	h.Append(0.25, snapsB)
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadPerfHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(got.Entries))
	}
	if got.Entries[0].Seq != 1 || got.Entries[1].Seq != 2 || got.Entries[2].Seq != 3 {
		t.Errorf("sequence numbers %d,%d,%d", got.Entries[0].Seq, got.Entries[1].Seq, got.Entries[2].Seq)
	}
	b := got.Baseline(0.25)
	if b == nil || b.Seq != 3 {
		t.Fatalf("baseline at 0.25 = %+v, want seq 3 (latest wins)", b)
	}
	if b.Snapshots[0].Metrics["total_ns"] != 20 {
		t.Errorf("baseline metrics = %v", b.Snapshots[0].Metrics)
	}
	if got.Baseline(0.5) != nil {
		t.Error("baseline for unrecorded scale")
	}
}
