package exp

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

// ServeFleet measures the multi-tenant serving layer: 1, 2, 4 and 8
// concurrent clients each build a full census tree against one engine, with
// scan sharing on and off. With sharing off, every session's server batches
// read their own pages, so total modeled page I/O grows linearly with the
// cohort; with sharing on, sessions whose next batch scans the table attach
// to one physical scan that charges the page I/O once, so the cohort's total
// pages stay near the single-client figure while every session still gets
// the byte-identical single-tenant tree. Makespan approximates inverse
// throughput, mean per-session latency the client experience; both are
// virtual-time, hence exactly reproducible.
func ServeFleet(env *Env, scale float64) (*Experiment, error) {
	ds, err := datagen.GenerateCensus(datagen.CensusConfig{Rows: scaled(8000, scale), Seed: 7})
	if err != nil {
		return nil, err
	}
	e := &Experiment{
		ID:     "serve",
		Title:  "Multi-tenant serving: concurrent builds with and without scan sharing",
		XLabel: "clients",
		YLabel: "virtual seconds",
		PaperShape: "total modeled page I/O grows linearly with concurrent clients when every " +
			"session scans alone, and stays near the single-client figure when concurrent " +
			"scans share one cursor; sharing never slows a session down, and every session's " +
			"tree is identical to the single-tenant build",
		Series: []Series{
			{Name: "makespan shared"},
			{Name: "makespan solo"},
			{Name: "mean latency shared"},
			{Name: "mean latency solo"},
		},
	}

	var col *obs.Collector
	if env != nil {
		col = env.Obs
	}
	var refTree *dtree.Tree
	for _, clients := range []int{1, 2, 4, 8} {
		for si, sharing := range []bool{true, false} {
			meter := sim.NewDefaultMeter()
			srv, err := engine.NewServer(engine.New(meter, 0), "cases", ds)
			if err != nil {
				return nil, err
			}
			fcfg := serve.FleetConfig{
				Base:        mw.Config{Staging: mw.StageFileAndMemory},
				TotalMemory: ds.Bytes() / 2,
				ScanSharing: sharing,
			}
			fleet, err := serve.NewFleet(srv, col, fcfg)
			if err != nil {
				return nil, err
			}
			arrivals := sim.Arrivals(1, clients, 500_000)
			for c := 0; c < clients; c++ {
				label := fmt.Sprintf("serve-c%d-share%v-s%d", clients, sharing, c+1)
				s, err := fleet.Open(label, dtree.Options{}, arrivals[c])
				if err != nil {
					return nil, err
				}
				// Run closes finished sessions; the defer covers error paths.
				defer s.Close()
			}
			if err := fleet.Run(); err != nil {
				return nil, err
			}

			var latSum float64
			for _, s := range fleet.Sessions() {
				// Node ids depend on batch composition (and therefore on the
				// per-session budget slice), so compare structure, not dumps.
				if refTree == nil {
					refTree = s.Tree()
				} else if !dtree.Equal(s.Tree(), refTree) {
					return nil, fmt.Errorf("exp serve: session %s tree differs from the single-tenant build", s.Label)
				}
				latSum += float64(s.LatencyNS()) / 1e9
			}
			counters := map[string]int64{
				"server_pages_total": fleet.TotalServerPages(),
				"shared_io_pages":    fleet.IOMeter().Count(sim.CtrServerPages),
			}
			x := float64(clients)
			e.Series[si].Points = append(e.Series[si].Points, Point{
				X: x, Seconds: float64(fleet.MakespanNS()) / 1e9, Counters: counters,
			})
			e.Series[si+2].Points = append(e.Series[si+2].Points, Point{
				X: x, Seconds: latSum / float64(clients), Counters: counters,
			})
		}
	}
	return e, nil
}
