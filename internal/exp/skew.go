package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// SkewPartitioning measures skew-aware (histogram-guided) partitioning
// against equal-width page splits on the clustered workload, where rows are
// physically ordered by a "region" attribute. Each build answers one
// region-selective counting request per region, one request per batch, so
// every parallel scan faces maximal placement skew: all matching rows sit in
// one contiguous slab of pages. With equal-width splits the lane owning the
// slab pays every transmit and CC-update cost while the others scan and
// discard; histogram-guided splits size the page ranges by estimated work
// and should cut the per-batch lane imbalance by at least 2x at 8 workers —
// without changing a single counted value. Wall-clock (virtual seconds) and
// the worst per-batch lane imbalance are both recorded, for Workers in
// {1, 2, 4, 8} and both split policies.
func SkewPartitioning(env *Env, scale float64) (*Experiment, error) {
	const regions = 6
	ds, err := datagen.GenerateClustered(datagen.ClusteredConfig{
		Rows:    scaled(32000, scale),
		Seed:    11,
		Regions: regions,
		Attrs:   7,
	})
	if err != nil {
		return nil, err
	}
	e := &Experiment{
		ID:     "skew",
		Title:  "Skew-aware partitioning: lane imbalance and build time vs workers",
		XLabel: "workers",
		YLabel: "virtual seconds",
		PaperShape: "on a clustered table, histogram-guided page splits cut the worst " +
			"per-batch lane imbalance by >= 2x versus equal-width splits at 8 workers, " +
			"are never slower, and every counted value is identical under both policies",
		Series: []Series{
			{Name: "equal-width"},
			{Name: "histogram"},
		},
	}
	var refFP string
	for si, noHints := range []bool{true, false} {
		for _, workers := range []int{1, 2, 4, 8} {
			secs, imb, fp, err := skewDrive(env, ds, regions, workers, noHints)
			if err != nil {
				return nil, err
			}
			if refFP == "" {
				refFP = fp
			} else if fp != refFP {
				return nil, fmt.Errorf("exp skew: %s at %d workers: counts differ from reference run",
					e.Series[si].Name, workers)
			}
			e.Series[si].Points = append(e.Series[si].Points, Point{
				X: float64(workers), Seconds: secs,
				Counters: map[string]int64{"max_lane_imbalance_ns": imb},
			})
		}
	}
	return e, nil
}

// skewDrive runs the fixed skew protocol — a root counting request followed
// by one region-selective request per region, one request per batch — against
// a fresh middleware and returns the virtual build time, the worst per-batch
// lane imbalance, and a fingerprint of every fulfilled CC table. StageNone
// keeps every batch on the partitioned server scan, and MaxBatch of one stops
// the scheduler from OR-ing region filters together (which would dilute the
// skew the experiment exists to measure).
func skewDrive(env *Env, ds *data.Dataset, regions, workers int, noHints bool) (float64, int64, string, error) {
	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)
	srv, err := engine.NewServer(eng, "cases", ds)
	if err != nil {
		return 0, 0, "", err
	}
	cfg := mw.Config{
		Staging:          mw.StageNone,
		Workers:          workers,
		MaxBatch:         1,
		NoHistogramHints: noHints,
		// The experiment compares page-split policies on the row path; the
		// columnar path partitions by row group and is measured by the
		// columnar experiment instead.
		Columnar: mw.ColumnarOff,
	}
	// Lane imbalance comes from the metrics layer, so this runner always
	// attaches a ProcMetrics — the caller's collector when one is wired up
	// (so traces land beside every other figure's), a private one otherwise.
	label := "skew"
	if env != nil && env.Obs != nil {
		if env.Label != "" {
			label = env.Label
		}
		tr, pm := env.Obs.Proc(label, meter)
		eng.SetTracer(tr)
		cfg.Metrics = pm
	} else {
		_, pm := obs.NewCollector(false, true).Proc(label, meter)
		cfg.Metrics = pm
	}
	pm := cfg.Metrics
	m, err := mw.New(srv, cfg)
	if err != nil {
		return 0, 0, "", err
	}
	defer m.Close()

	var sb strings.Builder
	drain := func() error {
		for m.Pending() > 0 {
			results, err := m.Step()
			if err != nil {
				return err
			}
			if len(results) == 0 {
				return fmt.Errorf("exp skew: pending requests but Step produced no results")
			}
			sort.Slice(results, func(i, j int) bool { return results[i].Req.NodeID < results[j].Req.NodeID })
			for _, r := range results {
				fmt.Fprintf(&sb, "node %d rows=%d cc=%s\n", r.Req.NodeID, r.CC.Rows(), r.CC.String())
			}
		}
		return nil
	}

	attrs := make([]int, ds.Schema.NumAttrs())
	for i := range attrs {
		attrs[i] = i
	}
	var est int64
	for _, a := range ds.Schema.Attrs {
		est += int64(a.Card)
	}
	est = est*int64(ds.Schema.Class.Card) + int64(ds.Schema.Class.Card)
	if err := m.Enqueue(&mw.Request{
		NodeID: 0, ParentID: -1, Attrs: attrs, Rows: int64(ds.N()), EstCC: est,
	}); err != nil {
		return 0, 0, "", err
	}
	if err := drain(); err != nil {
		return 0, 0, "", err
	}

	// One child per region value: a point filter on the clustering attribute,
	// counting over the remaining attributes.
	for v := 0; v < regions; v++ {
		val := data.Value(v)
		var rows int64
		for _, r := range ds.Rows {
			if r[0] == val {
				rows++
			}
		}
		if err := m.Enqueue(&mw.Request{
			NodeID: 1 + v, ParentID: 0,
			Path:  predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: val}},
			Attrs: attrs[1:],
			Rows:  rows,
			EstCC: est,
		}); err != nil {
			return 0, 0, "", err
		}
	}
	m.CloseNode(0)
	if err := drain(); err != nil {
		return 0, 0, "", err
	}
	for v := 0; v < regions; v++ {
		m.CloseNode(1 + v)
	}
	return meter.Now().Seconds(), pm.MaxLaneImbalanceNS(), sb.String(), nil
}
