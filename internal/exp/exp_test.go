package exp

import (
	"strings"
	"testing"
)

// TestRunAllSmoke runs every experiment at a small scale and sanity-checks
// output structure.
func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	exps, err := RunAll(nil, 0.4)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(exps) != len(Runners()) {
		t.Fatalf("got %d experiments, want %d", len(exps), len(Runners()))
	}
	for _, e := range exps {
		if len(e.Series) == 0 {
			t.Errorf("%s: no series", e.ID)
		}
		for _, s := range e.Series {
			if len(s.Points) == 0 {
				t.Errorf("%s/%s: no points", e.ID, s.Name)
			}
			for _, p := range s.Points {
				if p.Seconds <= 0 {
					t.Errorf("%s/%s: non-positive time %v", e.ID, s.Name, p.Seconds)
				}
			}
		}
		if md := e.Markdown(); !strings.Contains(md, e.ID) {
			t.Errorf("%s: markdown missing id", e.ID)
		}
		if txt := e.Text(); !strings.Contains(txt, e.Title) {
			t.Errorf("%s: text missing title", e.ID)
		}
	}
}

// TestPaperShapes asserts the qualitative results the paper reports, at a
// small scale.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	t.Run("fig4-caching-beats-none-at-high-memory", func(t *testing.T) {
		e, err := Fig4MemorySweep(nil, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		caching, none := e.Series[0], e.Series[1]
		last := len(caching.Points) - 1
		if caching.Points[last].Seconds >= none.Points[last].Seconds {
			t.Errorf("at max memory caching=%.3fs >= no-caching=%.3fs",
				caching.Points[last].Seconds, none.Points[last].Seconds)
		}
		// Both curves should be non-increasing overall (first vs last).
		for _, s := range e.Series {
			if s.Points[last].Seconds > s.Points[0].Seconds {
				t.Errorf("%s: time rose with memory: %.3f -> %.3f", s.Name, s.Points[0].Seconds, s.Points[last].Seconds)
			}
		}
	})
	t.Run("fig5a-less-memory-more-time", func(t *testing.T) {
		e, err := Fig5aLimitedCCMemory(nil, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		pts := e.Series[0].Points
		if pts[0].Seconds <= pts[len(pts)-1].Seconds {
			t.Errorf("tight memory (%.3fs) not slower than ample memory (%.3fs)",
				pts[0].Seconds, pts[len(pts)-1].Seconds)
		}
	})
	t.Run("fig7-sql-counting-loses", func(t *testing.T) {
		e, err := Fig7SQLCounting(nil, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		mwS, sqlS := e.Series[0], e.Series[1]
		for i := range mwS.Points {
			if sqlS.Points[i].Seconds < 2*mwS.Points[i].Seconds {
				t.Errorf("rows=%.0f: sql=%.3fs not >= 2x middleware=%.3fs",
					mwS.Points[i].X, sqlS.Points[i].Seconds, mwS.Points[i].Seconds)
			}
		}
		// Divergence: the ratio grows with data size.
		r0 := sqlS.Points[0].Seconds / mwS.Points[0].Seconds
		rN := sqlS.Points[len(sqlS.Points)-1].Seconds / mwS.Points[len(mwS.Points)-1].Seconds
		if rN <= r0 {
			t.Errorf("sql/mw ratio did not grow with data: %.2f -> %.2f", r0, rN)
		}
	})
	t.Run("sec5.2.5-indexes-do-not-help", func(t *testing.T) {
		e, err := IndexScans(nil, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		pts := e.Series[0].Points
		seq := pts[0].Seconds
		for _, p := range pts[1:] {
			if p.Seconds < seq*0.95 {
				t.Errorf("%s (%.3fs) beat the sequential scan (%.3fs) by >5%%", p.Label, p.Seconds, seq)
			}
		}
	})
}

// TestSensitivityOrderingsHold verifies the headline orderings survive every
// cost-model perturbation.
func TestSensitivityOrderingsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	e, err := Sensitivity(nil, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	caching, noC := e.Series[0], e.Series[1]
	for i := range caching.Points {
		if caching.Points[i].Seconds >= noC.Points[i].Seconds {
			t.Errorf("variant %s: caching (%.3f) not faster than no caching (%.3f)",
				caching.Points[i].Label, caching.Points[i].Seconds, noC.Points[i].Seconds)
		}
	}
}

// TestExperimentsDeterministic: the whole harness is seeded; running an
// experiment twice yields byte-identical output.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	for _, id := range []string{"fig5a", "fig6", "sec5.2.5"} {
		r, ok := Get(id)
		if !ok {
			t.Fatalf("unknown id %s", id)
		}
		a, err := r.Run(nil, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Run(nil, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if a.Markdown() != b.Markdown() {
			t.Errorf("%s: two runs differ:\n%s\nvs\n%s", id, a.Markdown(), b.Markdown())
		}
	}
}

// TestScalingWorkersTiny runs the parallel-pipeline experiment at a tiny
// scale. Unlike the full-scale suites it does NOT skip under -short, so the
// race-detector pass (`go test -race -short ./...`, see verify.sh) always
// exercises the exp → mw multi-worker path; the runner itself errors if any
// worker count grows a different tree.
func TestScalingWorkersTiny(t *testing.T) {
	e, err := ScalingWorkers(nil, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(e.Series))
	}
	for _, s := range e.Series {
		if len(s.Points) != 4 {
			t.Fatalf("%s: got %d points, want 4 (workers 1,2,4,8)", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Seconds <= 0 {
				t.Errorf("%s workers=%g: non-positive time %v", s.Name, p.X, p.Seconds)
			}
		}
	}
}

// TestGetAndIDs covers the registry helpers.
func TestGetAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Runners()) {
		t.Fatal("IDs length mismatch")
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown id resolved")
	}
	for _, id := range ids {
		if _, ok := Get(id); !ok {
			t.Errorf("id %s not resolvable", id)
		}
	}
}

// TestAllShapeChecksPass runs every experiment at a reduced scale and
// validates its machine-checkable shape.
func TestAllShapeChecksPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	for _, r := range Runners() {
		if !HasCheck(r.ID) {
			t.Errorf("%s: no shape check registered", r.ID)
			continue
		}
		e, err := r.Run(nil, 1.0) // the calibrated scale of EXPERIMENTS.md
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if err := Check(e); err != nil {
			t.Errorf("%s: shape check failed: %v", r.ID, err)
		}
	}
}
