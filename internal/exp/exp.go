// Package exp reproduces every figure of the paper's experimental study
// (§5.2) on the simulated stack: each runner builds the figure's workload,
// drives the middleware (and, where the figure calls for them, the baseline
// strategies), and reports one series per curve in virtual-time seconds.
//
// Absolute numbers are not expected to match the paper (the substrate is a
// calibrated simulator, not SQL Server 7.0 on Pentium-II hardware); the
// shapes — which configuration wins, by roughly what factor, and where
// curves flatten or cross — are the reproduction target. EXPERIMENTS.md
// records paper-versus-measured for every figure.
package exp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Env carries per-run observability context into the runners. A nil *Env (or
// an Env with a nil Collector) is fully supported and means "no
// instrumentation": every hook below degrades to a no-op, so batch runs and
// tests pay nothing. Obs wiring never perturbs measured results — spans and
// metrics observe the meter, they do not charge it.
type Env struct {
	Obs   *obs.Collector
	Label string // proc label prefix for traces/metrics, e.g. the figure id
}

// attach registers one tree build with the collector: a tracer on the engine
// and a metrics observer on the middleware config. Safe on a nil receiver.
func (e *Env) attach(meter *sim.Meter, eng *engine.Engine, mcfg *mw.Config) {
	if e == nil || e.Obs == nil {
		return
	}
	label := e.Label
	if label == "" {
		label = "build"
	}
	tr, pm := e.Obs.Proc(label, meter)
	eng.SetTracer(tr)
	mcfg.Metrics = pm
}

// Point is one measurement: x-value, virtual seconds, and selected counters.
type Point struct {
	X        float64
	Label    string // used instead of X when non-empty (categorical axes)
	Seconds  float64
	Counters map[string]int64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Experiment is one reproduced figure.
type Experiment struct {
	ID         string // e.g. "fig4-left"
	Title      string
	XLabel     string
	YLabel     string
	PaperShape string // the qualitative result the paper reports
	Series     []Series
}

// Markdown renders the experiment as a markdown section with one table.
func (e *Experiment) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", e.ID, e.Title)
	fmt.Fprintf(&b, "*Paper:* %s\n\n", e.PaperShape)
	fmt.Fprintf(&b, "| %s ", e.XLabel)
	for _, s := range e.Series {
		fmt.Fprintf(&b, "| %s ", s.Name)
	}
	b.WriteString("|\n|---")
	for range e.Series {
		b.WriteString("|---")
	}
	b.WriteString("|\n")
	for i := range e.xs() {
		fmt.Fprintf(&b, "| %s ", e.xAt(i))
		for _, s := range e.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "| %.3f ", s.Points[i].Seconds)
			} else {
				b.WriteString("| ")
			}
		}
		b.WriteString("|\n")
	}
	b.WriteString("\n")
	return b.String()
}

func (e *Experiment) xs() []Point {
	if len(e.Series) == 0 {
		return nil
	}
	longest := e.Series[0].Points
	for _, s := range e.Series[1:] {
		if len(s.Points) > len(longest) {
			longest = s.Points
		}
	}
	return longest
}

func (e *Experiment) xAt(i int) string {
	p := e.xs()[i]
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("%.3g", p.X)
}

// JSON renders the experiment as indented JSON, for machine consumption
// (benchmark artifacts, plotting scripts).
func (e *Experiment) JSON() (string, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// Text renders the experiment as an aligned console table.
func (e *Experiment) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", e.ID, e.Title)
	fmt.Fprintf(&b, "  paper: %s\n", e.PaperShape)
	w := len(e.XLabel)
	for i := range e.xs() {
		if l := len(e.xAt(i)); l > w {
			w = l
		}
	}
	fmt.Fprintf(&b, "  %-*s", w, e.XLabel)
	for _, s := range e.Series {
		fmt.Fprintf(&b, "  %14s", s.Name)
	}
	b.WriteString("  (virtual seconds)\n")
	for i := range e.xs() {
		fmt.Fprintf(&b, "  %-*s", w, e.xAt(i))
		for _, s := range e.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "  %14.3f", s.Points[i].Seconds)
			} else {
				fmt.Fprintf(&b, "  %14s", "")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BuildStats captures one measured tree build.
type BuildStats struct {
	Seconds   float64
	TreeNodes int
	Counters  map[string]int64
}

// selectedCounters are reported alongside times.
var selectedCounters = []sim.Counter{
	sim.CtrServerScans, sim.CtrRowsTransmitted, sim.CtrFileRowsRead,
	sim.CtrMemRowsRead, sim.CtrSQLStatements, sim.CtrSQLFallbacks,
	sim.CtrFilesCreated, sim.CtrServerPages,
}

func countersOf(m *sim.Meter) map[string]int64 {
	out := map[string]int64{}
	for _, c := range selectedCounters {
		if v := m.Count(c); v != 0 {
			out[c.String()] = v
		}
	}
	return out
}

// forceRowPath, when set via SetForceRowPath, pins every BuildTree-driven
// experiment to the row scan path — the whole-suite columnar ablation behind
// the experiments CLI's -columnar=false flag. Runners that compare the two
// paths explicitly (the columnar experiment) or pin a path for measurement
// validity (skew) are unaffected: they configure the middleware directly.
var forceRowPath bool

// SetForceRowPath toggles the whole-suite row-path ablation. Not safe
// concurrently with running experiments; set it once before RunAll.
func SetForceRowPath(v bool) { forceRowPath = v }

// BuildTree loads ds into a fresh simulated server, grows a tree through a
// middleware with the given config, and returns the virtual-time cost of the
// build (loading is unmetered).
func BuildTree(env *Env, ds *data.Dataset, mcfg mw.Config, opt dtree.Options) (BuildStats, error) {
	if forceRowPath {
		mcfg.Columnar = mw.ColumnarOff
	}
	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)
	srv, err := engine.NewServer(eng, "cases", ds)
	if err != nil {
		return BuildStats{}, err
	}
	env.attach(meter, eng, &mcfg)
	m, err := mw.New(srv, mcfg)
	if err != nil {
		return BuildStats{}, err
	}
	defer m.Close()
	tree, err := dtree.Build(m, opt)
	if err != nil {
		return BuildStats{}, err
	}
	return BuildStats{
		Seconds:   meter.Now().Seconds(),
		TreeNodes: tree.NumNodes,
		Counters:  countersOf(meter),
	}, nil
}

// NewServer loads ds into a fresh engine with its own meter — the common
// setup step for baseline measurements.
func NewServer(ds *data.Dataset) (*engine.Server, error) {
	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)
	return engine.NewServer(eng, "cases", ds)
}

// Registry lists every experiment runner by figure id.
type Runner struct {
	ID    string
	Run   func(env *Env, scale float64) (*Experiment, error)
	Notes string
}

// Runners returns all experiment runners in paper order.
func Runners() []Runner {
	return []Runner{
		{"fig4-left", Fig4MemorySweep, "time vs middleware memory, caching vs no caching"},
		{"fig4-right", Fig4DataSize, "time vs data size at two memory levels"},
		{"fig5a", Fig5aLimitedCCMemory, "limited memory for count tables forces multiple scans"},
		{"fig5b", Fig5bRows, "scalability with the number of rows"},
		{"fig6", Fig6FileStaging, "four file-staging configurations vs memory"},
		{"fig7-left", Fig7Attributes, "scalability with the number of attributes"},
		{"fig7-right", Fig7SQLCounting, "SQL-based counting vs middleware"},
		{"fig8a", Fig8aAttributeValues, "attribute values; cursor scan vs file-based data store"},
		{"fig8b", Fig8bLeaves, "number of leaves; caching vs no caching"},
		{"sec5.2.5", IndexScans, "index-scan alternatives vs sequential scan"},
		{"extract-all", ExtractAllComparison, "extract-everything strawman vs middleware"},
		{"naive-bayes", NaiveBayesPlugin, "Naive Bayes plug-in client"},
		{"abl-pushdown", AblationFilterPushdown, "ablation: filter expression pushdown (§4.3.1)"},
		{"abl-batching", AblationBatching, "ablation: multi-node single-scan counting (§4.1.1)"},
		{"abl-rule3", AblationRule3, "ablation: Rule 3 smallest-estimate-first admission"},
		{"sensitivity", Sensitivity, "cost-model sensitivity of the headline orderings"},
		{"scaling", ScalingWorkers, "parallel scan pipeline speedup, workers 1-8"},
		{"skew", SkewPartitioning, "histogram-guided vs equal-width splits on a clustered table"},
		{"columnar", ColumnarStorage, "columnar row groups vs the row heap, uniform and clustered"},
		{"serve", ServeFleet, "concurrent multi-tenant builds, scan sharing on/off"},
		{"scoring", Scoring, "in-engine vectorized batch scoring vs in-client row loop"},
	}
}

// RunAll executes every experiment at the given scale. env may be nil.
func RunAll(env *Env, scale float64) ([]*Experiment, error) {
	var out []*Experiment
	for _, r := range Runners() {
		e, err := r.Run(env, scale)
		if err != nil {
			return nil, fmt.Errorf("exp %s: %w", r.ID, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Get returns the runner with the given id.
func Get(id string) (Runner, bool) {
	for _, r := range Runners() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all experiment ids, sorted in paper order.
func IDs() []string {
	rs := Runners()
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

// SortPointsByX orders a series' points by x, for runners that collect
// points out of order.
func SortPointsByX(s *Series) {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}
