package exp

import (
	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/sim"
)

// BuildTreeWithCosts is BuildTree under an explicit cost model, for the
// sensitivity analysis.
func BuildTreeWithCosts(env *Env, ds *data.Dataset, costs sim.Costs, mcfg mw.Config, opt dtree.Options) (BuildStats, error) {
	meter := sim.NewMeter(costs)
	eng := engine.New(meter, 0)
	srv, err := engine.NewServer(eng, "cases", ds)
	if err != nil {
		return BuildStats{}, err
	}
	env.attach(meter, eng, &mcfg)
	m, err := mw.New(srv, mcfg)
	if err != nil {
		return BuildStats{}, err
	}
	defer m.Close()
	tree, err := dtree.Build(m, opt)
	if err != nil {
		return BuildStats{}, err
	}
	return BuildStats{
		Seconds:   meter.Now().Seconds(),
		TreeNodes: tree.NumNodes,
		Counters:  countersOf(meter),
	}, nil
}

// costVariant is one perturbation of the calibrated model.
type costVariant struct {
	name  string
	apply func(*sim.Costs)
}

func costVariants() []costVariant {
	return []costVariant{
		{"base", func(*sim.Costs) {}},
		{"transmit/2", func(c *sim.Costs) { c.RowTransmit /= 2 }},
		{"transmit*2", func(c *sim.Costs) { c.RowTransmit *= 2 }},
		{"fileio/2", func(c *sim.Costs) { c.FileRowRead /= 2; c.FileRowWrite /= 2 }},
		{"fileio*2", func(c *sim.Costs) { c.FileRowRead *= 2; c.FileRowWrite *= 2 }},
		{"pageio*2", func(c *sim.Costs) { c.ServerPageIO *= 2 }},
		{"sqlcpu/2", func(c *sim.Costs) { c.SQLAggRow /= 2; c.QueryStartup /= 2 }},
	}
}

// Sensitivity re-measures the headline comparisons (memory staging vs no
// staging; the middleware vs the per-node SQL strawman) under perturbed cost
// models. The reproduction's conclusions must not hinge on the exact
// calibration: staging must win and SQL counting must lose under every
// variant within a factor of two of the defaults.
func Sensitivity(env *Env, scale float64) (*Experiment, error) {
	ds, err := fig45Data(scale, 100, 71)
	if err != nil {
		return nil, err
	}
	memory := ds.Bytes() * 2
	e := &Experiment{
		ID:     "sensitivity",
		Title:  "Cost-model sensitivity: headline orderings under perturbed calibrations",
		XLabel: "cost model",
		YLabel: "virtual seconds",
		PaperShape: "orderings (staging < no staging; middleware << per-node SQL counting) hold for " +
			"every 2x perturbation of the calibrated costs",
		Series: []Series{{Name: "caching"}, {Name: "no caching"}, {Name: "sql counting"}},
	}
	// A smaller dataset for the SQL strawman keeps the suite fast.
	small, err := fig45Data(scale*0.3, 40, 71)
	if err != nil {
		return nil, err
	}
	for i, v := range costVariants() {
		costs := sim.DefaultCosts()
		v.apply(&costs)
		withC, err := BuildTreeWithCosts(env, ds, costs, mw.Config{Staging: mw.StageMemoryOnly, Memory: memory}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		noC, err := BuildTreeWithCosts(env, ds, costs, mw.Config{Staging: mw.StageNone, Memory: memory}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		sqlStats, err := sqlCountingWithCosts(small, costs)
		if err != nil {
			return nil, err
		}
		x := float64(i)
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Label: v.name, Seconds: withC.Seconds, Counters: withC.Counters})
		e.Series[1].Points = append(e.Series[1].Points, Point{X: x, Label: v.name, Seconds: noC.Seconds, Counters: noC.Counters})
		e.Series[2].Points = append(e.Series[2].Points, Point{X: x, Label: v.name, Seconds: sqlStats, Counters: nil})
	}
	return e, nil
}

// sqlCountingWithCosts measures the per-node SQL strawman under a cost
// model on its own (smaller) input; the comparison of interest is its ratio
// to the middleware, checked by the sensitivity test.
func sqlCountingWithCosts(ds *data.Dataset, costs sim.Costs) (float64, error) {
	meter := sim.NewMeter(costs)
	eng := engine.New(meter, 0)
	srv, err := engine.NewServer(eng, "cases", ds)
	if err != nil {
		return 0, err
	}
	if _, err := baseline.SQLCounting(srv, dtree.Options{}); err != nil {
		return 0, err
	}
	return meter.Now().Seconds(), nil
}
