package exp

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/sim"
)

// Scoring measures in-database batch scoring against the in-client row loop
// the paper's architecture implies for deployment: once a tree is built, the
// client either pulls every row through a full-width cursor and walks the
// tree itself, or ships the compiled model to the engine and lets a
// vectorized operator probe the columnar store, reading only the columns the
// model splits on. Both arms score the same table with the same tree on a
// fresh virtual clock; the x-axis sweeps the engine operator's worker count
// (the in-client loop is inherently serial, so its curve is flat). Reported
// per point: virtual seconds, modeled server pages, and derived rows/sec.
func Scoring(env *Env, scale float64) (*Experiment, error) {
	// Large enough that even a -scale 0.25 run spans several sealed columnar
	// row groups (4096 rows each), so the worker sweep has partitions to
	// hand out.
	ds, err := datagen.GenerateCensus(datagen.CensusConfig{Rows: scaled(64000, scale), Seed: 7})
	if err != nil {
		return nil, err
	}
	tree, err := dtree.BuildInMemory(ds, dtree.Options{MaxDepth: 6})
	if err != nil {
		return nil, err
	}
	model, err := dtree.Compile(tree, "m")
	if err != nil {
		return nil, err
	}

	e := &Experiment{
		ID:     "scoring",
		Title:  "In-database batch scoring vs in-client row loop",
		XLabel: "engine workers",
		YLabel: "virtual seconds",
		PaperShape: "shipping the model to the data beats shipping the data to the model: the " +
			"vectorized in-engine operator reads only the split columns' pages and scores " +
			"dictionary codes in 1024-row blocks, so it outruns the full-width cursor + " +
			"client tree walk on both time and modeled page I/O at every worker count, " +
			"and scales further as workers grow",
		Series: []Series{
			{Name: "in-engine batch"},
			{Name: "in-client row loop"},
		},
	}

	for _, workers := range []int{1, 2, 4, 8} {
		// In-engine arm: vectorized scoring over the columnar store.
		meter := sim.NewDefaultMeter()
		eng := engine.New(meter, 0)
		if _, err := engine.NewServer(eng, "cases", ds); err != nil {
			return nil, err
		}
		env.attach(meter, eng, &mw.Config{})
		if err := eng.RegisterModel(model); err != nil {
			return nil, err
		}
		tbl, err := eng.Table("cases")
		if err != nil {
			return nil, err
		}
		before := meter.Snapshot()
		res, err := eng.ScoreTable(tbl, model, workers)
		if err != nil {
			return nil, err
		}
		if res.Rows != int64(len(ds.Rows)) {
			return nil, fmt.Errorf("exp scoring: engine scored %d rows, want %d", res.Rows, len(ds.Rows))
		}
		e.Series[0].Points = append(e.Series[0].Points, scoringPoint(meter, before, workers, res.Rows))

		// In-client arm: full-width cursor extraction, then a per-row tree
		// walk at the client. The extraction pays the row-scan cost model
		// (cursor, pages, per-row transmit); the client pays a row
		// materialization plus one model-node probe per tree level walked —
		// the same walk the engine operator performs, minus the vectorized
		// batching. Serial by construction, so workers do not help it.
		cmeter := sim.NewDefaultMeter()
		ceng := engine.New(cmeter, 0)
		if _, err := engine.NewServer(ceng, "cases", ds); err != nil {
			return nil, err
		}
		env.attach(cmeter, ceng, &mw.Config{})
		cbefore := cmeter.Snapshot()
		rs, err := ceng.Exec("SELECT * FROM cases")
		if err != nil {
			return nil, err
		}
		costs := cmeter.Costs()
		probes := int64(0)
		for _, row := range ds.Rows {
			probes += clientWalkProbes(tree, row)
		}
		cmeter.Charge(sim.CtrClientRows, costs.ClientRowLoad, int64(len(rs.Rows)))
		cmeter.Charge(sim.CtrScoreRows, costs.ScoreRowEval, int64(len(rs.Rows)))
		cmeter.Charge(sim.CtrModelProbes, costs.ModelNodeProbe, probes)
		e.Series[1].Points = append(e.Series[1].Points, scoringPoint(cmeter, cbefore, workers, int64(len(rs.Rows))))
	}
	return e, nil
}

// clientWalkProbes counts the nodes an in-client prediction visits,
// including the stop node — the client-side analogue of the engine
// operator's model_node_probes accounting.
func clientWalkProbes(t *dtree.Tree, row data.Row) int64 {
	n := t.Root
	probes := int64(1)
	for !n.Leaf {
		var next *dtree.Node
		if !n.Multiway {
			if row[n.SplitAttr] == n.SplitVal {
				next = n.Children[0]
			} else {
				next = n.Children[1]
			}
		} else {
			for i, sv := range n.SplitVals {
				if row[n.SplitAttr] == sv {
					next = n.Children[i]
					break
				}
			}
		}
		if next == nil {
			return probes
		}
		n = next
		probes++
	}
	return probes
}

// scoringPoint snapshots one scoring arm's measurement.
func scoringPoint(m *sim.Meter, before sim.Snapshot, workers int, rows int64) Point {
	secs := m.Since(before).Seconds()
	counters := map[string]int64{
		"server_pages_read": m.CountSince(before, sim.CtrServerPages),
		"score_rows":        m.CountSince(before, sim.CtrScoreRows),
		"model_node_probes": m.CountSince(before, sim.CtrModelProbes),
		"rows_transmitted":  m.CountSince(before, sim.CtrRowsTransmitted),
	}
	if secs > 0 {
		counters["rows_per_sec"] = int64(float64(rows) / secs)
	}
	return Point{X: float64(workers), Seconds: secs, Counters: counters}
}
