package exp

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/sim"
)

// buildTreeRules is BuildTree plus the grown tree's rule set, used to assert
// that a configuration change (here: the worker count) altered only the cost
// of the build, never its result.
func buildTreeRules(env *Env, ds *data.Dataset, mcfg mw.Config, opt dtree.Options) (BuildStats, string, error) {
	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)
	srv, err := engine.NewServer(eng, "cases", ds)
	if err != nil {
		return BuildStats{}, "", err
	}
	env.attach(meter, eng, &mcfg)
	m, err := mw.New(srv, mcfg)
	if err != nil {
		return BuildStats{}, "", err
	}
	defer m.Close()
	tree, err := dtree.Build(m, opt)
	if err != nil {
		return BuildStats{}, "", err
	}
	stats := BuildStats{
		Seconds:   meter.Now().Seconds(),
		TreeNodes: tree.NumNodes,
		Counters:  countersOf(meter),
	}
	return stats, strings.Join(tree.Rules(), "\n"), nil
}

// ScalingWorkers measures the parallel batched-scan pipeline: full
// census-workload tree builds at 1, 2, 4 and 8 scan workers, across four
// arms — no staging (every batch scans the server), full file+memory
// staging, a fallback-only arm (a CC budget below every estimate pushes each
// node to the SQL fallback, whose per-attribute GROUP BY arms fan over
// lanes), and the keyset access path (partitioned keyset builds and
// re-scans). The deterministic parallel cost model should cut virtual build
// time as workers grow — scan-dominated phases divide across lanes while
// the serial fractions (cursor opens, shard merges) bound the speedup — and
// the grown tree must be identical at every worker count.
func ScalingWorkers(env *Env, scale float64) (*Experiment, error) {
	ds, err := datagen.GenerateCensus(datagen.CensusConfig{Rows: scaled(20000, scale), Seed: 7})
	if err != nil {
		return nil, err
	}
	e := &Experiment{
		ID:     "scaling",
		Title:  "Parallel scan pipeline: build time vs workers",
		XLabel: "workers",
		YLabel: "virtual seconds",
		PaperShape: "virtual build time falls as scan workers are added (near-linear while " +
			"scans dominate, flattening as serial fractions take over); the tree itself " +
			"is identical at every worker count",
		Series: []Series{
			{Name: "no staging"},
			{Name: "file+memory"},
			{Name: "sql-fallback"},
			{Name: "keyset"},
		},
	}
	configs := []mw.Config{
		{Staging: mw.StageNone},
		{Staging: mw.StageFileAndMemory, Memory: ds.Bytes() / 2},
		// A budget below one CC entry admits nothing: every node is answered
		// by the SQL fallback, isolating the parallel GROUP BY arms.
		{Staging: mw.StageNone, Memory: cc.EntryBytes - 1},
		{Staging: mw.StageNone, Access: mw.AccessKeyset, AuxThreshold: 0.6},
	}
	for si, base := range configs {
		var refRules string
		for _, workers := range []int{1, 2, 4, 8} {
			cfg := base
			cfg.Workers = workers
			stats, rules, err := buildTreeRules(env, ds, cfg, dtree.Options{})
			if err != nil {
				return nil, err
			}
			if workers == 1 {
				refRules = rules
			} else if rules != refRules {
				return nil, fmt.Errorf("exp scaling: %s: tree at %d workers differs from sequential build",
					e.Series[si].Name, workers)
			}
			e.Series[si].Points = append(e.Series[si].Points, Point{
				X: float64(workers), Seconds: stats.Seconds, Counters: stats.Counters,
			})
		}
	}
	return e, nil
}
