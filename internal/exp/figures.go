package exp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/mw"
	"repro/internal/nb"
	"repro/internal/sim"
)

// The experiments run on scaled-down versions of the paper's workloads so
// that the whole suite completes in seconds. scale = 1 is the default; the
// cmd/experiments binary accepts larger scales for closer-to-paper sizes.
// All randomness is seeded, so results are fully deterministic.

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		return 1
	}
	return v
}

// fig45Data generates the Fig 4/5 workload: 500-leaf random-tree data where
// cases per leaf set the data size (§5.2.1), scaled down.
func fig45Data(scale float64, casesPerLeaf int, seed int64) (*data.Dataset, error) {
	cfg := datagen.TreeGenConfig{
		Leaves:       scaled(60, scale),
		Attrs:        25,
		Values:       4,
		ValuesStdDev: 0,
		Classes:      10,
		CasesPerLeaf: casesPerLeaf,
		Seed:         seed,
	}
	ds, _, err := datagen.GenerateTreeData(cfg)
	return ds, err
}

const mb = 1 << 20

// Fig4MemorySweep reproduces Figure 4 (left): total tree-build time versus
// middleware memory, with and without data caching. The paper's curves drop
// as memory grows and flatten once (caching) the whole data set is loaded on
// the first scan or (no caching) a full frontier of count tables fits in one
// scan; caching dominates at every memory size where the data fits.
func Fig4MemorySweep(env *Env, scale float64) (*Experiment, error) {
	ds, err := fig45Data(scale, 100, 41)
	if err != nil {
		return nil, err
	}
	bytes := ds.Bytes()
	fractions := []float64{0.10, 0.20, 0.40, 0.70, 1.00, 1.30, 2.00, 2.60}
	e := &Experiment{
		ID:     "fig4-left",
		Title:  "Effect of memory buffer size (fixed data size)",
		XLabel: "memory (MB)",
		YLabel: "virtual seconds",
		PaperShape: "both curves fall with memory and flatten; with caching the entire data set " +
			"loads on the first scan and beats no-caching until both flatten at high memory",
		Series: []Series{{Name: "caching"}, {Name: "no caching"}},
	}
	for _, f := range fractions {
		memBytes := int64(f * float64(bytes))
		x := float64(memBytes) / mb
		withC, err := BuildTree(env, ds, mw.Config{Staging: mw.StageMemoryOnly, Memory: memBytes}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		noC, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, Memory: memBytes}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Seconds: withC.Seconds, Counters: withC.Counters})
		e.Series[1].Points = append(e.Series[1].Points, Point{X: x, Seconds: noC.Seconds, Counters: noC.Counters})
	}
	return e, nil
}

// Fig4DataSize reproduces Figure 4 (right): time versus data size at two
// memory levels, with and without caching. Time grows with data size in all
// configurations; low-memory/no-caching grows fastest, caching with enough
// memory stays cheapest.
func Fig4DataSize(env *Env, scale float64) (*Experiment, error) {
	casesSweep := []int{40, 80, 160, 320}
	// Memory levels chosen relative to the largest data set, mirroring the
	// paper's 5 MB / 20 MB against data up to ~60 MB.
	large, err := fig45Data(scale, casesSweep[len(casesSweep)-1], 42)
	if err != nil {
		return nil, err
	}
	memLo := large.Bytes() / 8
	memHi := large.Bytes() * 6 / 10
	e := &Experiment{
		ID:     "fig4-right",
		Title:  "Effect of data size at two memory levels",
		XLabel: "data (MB)",
		YLabel: "virtual seconds",
		PaperShape: "time rises with data size in all four configurations; caching helps while data " +
			"fits in memory, and the low-memory no-caching curve is steepest",
		Series: []Series{
			{Name: "loMem caching"}, {Name: "loMem no-cache"},
			{Name: "hiMem caching"}, {Name: "hiMem no-cache"},
		},
	}
	for _, cases := range casesSweep {
		ds, err := fig45Data(scale, cases, 42)
		if err != nil {
			return nil, err
		}
		x := float64(ds.Bytes()) / mb
		cfgs := []mw.Config{
			{Staging: mw.StageMemoryOnly, Memory: memLo},
			{Staging: mw.StageNone, Memory: memLo},
			{Staging: mw.StageMemoryOnly, Memory: memHi},
			{Staging: mw.StageNone, Memory: memHi},
		}
		for i, cfg := range cfgs {
			st, err := BuildTree(env, ds, cfg, dtree.Options{})
			if err != nil {
				return nil, err
			}
			e.Series[i].Points = append(e.Series[i].Points, Point{X: x, Seconds: st.Seconds, Counters: st.Counters})
		}
	}
	return e, nil
}

// Fig5aLimitedCCMemory reproduces Figure 5a: with staging disabled, shrinking
// the memory available for count tables below a full frontier forces
// multiple server scans per tree level, and time rises steeply.
func Fig5aLimitedCCMemory(env *Env, scale float64) (*Experiment, error) {
	ds, err := fig45Data(scale, 100, 43)
	if err != nil {
		return nil, err
	}
	e := &Experiment{
		ID:     "fig5a",
		Title:  "Limited memory for count tables (no staging)",
		XLabel: "memory (KB)",
		YLabel: "virtual seconds",
		PaperShape: "time falls steeply as memory grows (fewer scans per frontier) and flattens " +
			"once all count tables of the frontier fit in one scan",
		Series: []Series{{Name: "no caching"}},
	}
	for _, kb := range []int64{64, 96, 128, 192, 256, 512, 1024, 2048} {
		st, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, Memory: kb << 10}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: float64(kb), Seconds: st.Seconds, Counters: st.Counters})
	}
	return e, nil
}

// Fig5bRows reproduces Figure 5b: time versus the number of rows at a fixed
// memory budget. Growth is near linear; once the data outgrows the memory
// available for staging, proportionally less of it can be cached and the
// slope steepens.
func Fig5bRows(env *Env, scale float64) (*Experiment, error) {
	casesSweep := []int{30, 60, 120, 240, 480}
	mid, err := fig45Data(scale, casesSweep[2], 44)
	if err != nil {
		return nil, err
	}
	memory := mid.Bytes() // data at the midpoint of the sweep just fits
	e := &Experiment{
		ID:     "fig5b",
		Title:  "Scalability with the number of rows (fixed memory)",
		XLabel: "rows",
		YLabel: "virtual seconds",
		PaperShape: "near-linear growth; beyond the memory size a smaller fraction of the data " +
			"can be staged, causing more scans and a steeper slope",
		Series: []Series{{Name: "caching"}, {Name: "no caching"}},
	}
	for _, cases := range casesSweep {
		ds, err := fig45Data(scale, cases, 44)
		if err != nil {
			return nil, err
		}
		x := float64(ds.N())
		withC, err := BuildTree(env, ds, mw.Config{Staging: mw.StageMemoryOnly, Memory: memory}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		noC, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, Memory: memory}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Seconds: withC.Seconds, Counters: withC.Counters})
		e.Series[1].Points = append(e.Series[1].Points, Point{X: x, Seconds: noC.Seconds, Counters: noC.Counters})
	}
	return e, nil
}

// censusTree returns the Fig 6 workload: census-like data and options tuned
// to a few-hundred-node tree (the paper "adjusted the scoring algorithm to
// produce a smaller tree (about 300 nodes)").
func censusTree(scale float64, seed int64) (*data.Dataset, dtree.Options, error) {
	ds, err := datagen.GenerateCensus(datagen.CensusConfig{Rows: scaled(12000, scale), Seed: seed})
	if err != nil {
		return nil, dtree.Options{}, err
	}
	opt := dtree.Options{MinRows: int64(ds.N() / 150), MaxDepth: 10}
	return ds, opt, nil
}

// Fig6FileStaging reproduces Figure 6: total tree-build time for the four
// file-staging configurations as middleware memory grows.
func Fig6FileStaging(env *Env, scale float64) (*Experiment, error) {
	ds, opt, err := censusTree(scale, 45)
	if err != nil {
		return nil, err
	}
	bytes := ds.Bytes()
	e := &Experiment{
		ID:     "fig6",
		Title:  "File staging configurations (census-like data)",
		XLabel: "memory (MB)",
		YLabel: "virtual seconds",
		PaperShape: "file-per-node pays heavy splitting overhead early in the tree; one-file re-scans " +
			"too much late in the tree; the 50% hybrid wins, and adding memory caching wins more as memory grows " +
			"until everything fits",
		Series: []Series{
			{Name: "file/node"}, {Name: "one file"}, {Name: "split@50%"}, {Name: "split@50%+mem"},
		},
	}
	for _, f := range []float64{0.05, 0.10, 0.20, 0.60, 1.50} {
		memBytes := int64(f * float64(bytes))
		x := float64(memBytes) / mb
		cfgs := []mw.Config{
			{Staging: mw.StageFileOnly, FilePolicy: mw.FilePerNode, Memory: memBytes},
			{Staging: mw.StageFileOnly, FilePolicy: mw.FileSingleton, Memory: memBytes},
			{Staging: mw.StageFileOnly, FilePolicy: mw.FileSplitThreshold, Memory: memBytes},
			{Staging: mw.StageFileAndMemory, FilePolicy: mw.FileSplitThreshold, Memory: memBytes},
		}
		for i, cfg := range cfgs {
			st, err := BuildTree(env, ds, cfg, opt)
			if err != nil {
				return nil, err
			}
			e.Series[i].Points = append(e.Series[i].Points, Point{X: x, Seconds: st.Seconds, Counters: st.Counters})
		}
	}
	return e, nil
}

// Fig7Attributes reproduces Figure 7 (left): time versus the number of
// (binary) attributes with a fixed number of rows.
func Fig7Attributes(env *Env, scale float64) (*Experiment, error) {
	e := &Experiment{
		ID:     "fig7-left",
		Title:  "Scalability with the number of attributes (binary attributes, fixed rows)",
		XLabel: "attributes",
		YLabel: "virtual seconds",
		PaperShape: "time grows with attribute count (bigger rows to ship, bigger estimated count " +
			"tables => fewer nodes per scan); caching stays below no-caching",
		Series: []Series{{Name: "caching"}, {Name: "no caching"}},
	}
	var maxBytes int64
	var dss []*data.Dataset
	attrsSweep := []int{10, 20, 40, 80}
	for _, attrs := range attrsSweep {
		cfg := datagen.TreeGenConfig{
			Leaves: scaled(40, scale), Attrs: attrs, Values: 2, ValuesStdDev: 0,
			Classes: 10, CasesPerLeaf: 125, Seed: 46,
		}
		ds, _, err := datagen.GenerateTreeData(cfg)
		if err != nil {
			return nil, err
		}
		dss = append(dss, ds)
		if ds.Bytes() > maxBytes {
			maxBytes = ds.Bytes()
		}
	}
	memory := maxBytes / 3 // the paper's 32/64 MB against 40–200 MB data
	for i, attrs := range attrsSweep {
		withC, err := BuildTree(env, dss[i], mw.Config{Staging: mw.StageMemoryOnly, Memory: memory}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		noC, err := BuildTree(env, dss[i], mw.Config{Staging: mw.StageNone, Memory: memory}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		x := float64(attrs)
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Seconds: withC.Seconds, Counters: withC.Counters})
		e.Series[1].Points = append(e.Series[1].Points, Point{X: x, Seconds: noC.Seconds, Counters: noC.Counters})
	}
	return e, nil
}

// Fig7SQLCounting reproduces Figure 7 (right): the straightforward
// SQL-based counting implementation versus the middleware's cursor scan on
// small data sets. Even at these sizes the UNION-of-GROUP-BY strawman is an
// order of magnitude slower, and diverges as data grows.
func Fig7SQLCounting(env *Env, scale float64) (*Experiment, error) {
	e := &Experiment{
		ID:     "fig7-right",
		Title:  "SQL-based counting vs middleware cursor scan (small data)",
		XLabel: "rows",
		YLabel: "virtual seconds",
		PaperShape: "SQL-based counting is far slower even on 1–3 MB data sets and grows much faster; " +
			"for larger data it is 'unacceptably poor'",
		Series: []Series{{Name: "middleware"}, {Name: "sql counting"}},
	}
	// The paper scales both the number of leaves and the cases per leaf to
	// produce the 1–3 MB data sets, so the tree (and with it the number of
	// SQL statements) grows along with the data.
	for _, leaves := range []int{10, 20, 40} {
		cfg := datagen.TreeGenConfig{
			Leaves: scaled(leaves, scale), Attrs: 10, Values: 2, ValuesStdDev: 0,
			Classes: 5, CasesPerLeaf: 30 + leaves, Seed: 47,
		}
		ds, _, err := datagen.GenerateTreeData(cfg)
		if err != nil {
			return nil, err
		}
		x := float64(ds.N())

		st, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Seconds: st.Seconds, Counters: st.Counters})

		srv, err := NewServer(ds)
		if err != nil {
			return nil, err
		}
		if _, err := baseline.SQLCounting(srv, dtree.Options{}); err != nil {
			return nil, err
		}
		e.Series[1].Points = append(e.Series[1].Points, Point{
			X: x, Seconds: srv.Meter().Now().Seconds(), Counters: countersOf(srv.Meter()),
		})
	}
	return e, nil
}

// Fig8aAttributeValues reproduces Figure 8a: time versus values per
// attribute on a long lop-sided tree, comparing the cursor scan (no caching)
// with the file-based data store.
func Fig8aAttributeValues(env *Env, scale float64) (*Experiment, error) {
	e := &Experiment{
		ID:     "fig8a",
		Title:  "Attribute values on a lop-sided tree; cursor vs file-based data store",
		XLabel: "values per attribute",
		YLabel: "virtual seconds",
		PaperShape: "the file store looks good early (file reads beat cursor reads) but loses as the " +
			"relevant data shrinks, because the server's WHERE clause limits transmitted records while the " +
			"file must be fully re-read every scan",
		Series: []Series{{Name: "cursor no-cache"}, {Name: "file store"}},
	}
	for _, vals := range []int{2, 4, 8, 12} {
		cfg := datagen.TreeGenConfig{
			Leaves: scaled(50, scale), Attrs: 25, Values: vals, ValuesStdDev: 0,
			Classes: 6, CasesPerLeaf: 100, Skew: 0.97, Seed: 48,
		}
		ds, _, err := datagen.GenerateTreeData(cfg)
		if err != nil {
			return nil, err
		}
		x := float64(vals)
		// A bounded counts-table budget, as in the paper's 8b setting:
		// late in the lop-sided tree the frontier needs several scans.
		memory := ds.Bytes() / 4

		st, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, Memory: memory}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Seconds: st.Seconds, Counters: st.Counters})

		srv, err := NewServer(ds)
		if err != nil {
			return nil, err
		}
		if _, err := baseline.FileStore(srv, "", memory, dtree.Options{}); err != nil {
			return nil, err
		}
		e.Series[1].Points = append(e.Series[1].Points, Point{
			X: x, Seconds: srv.Meter().Now().Seconds(), Counters: countersOf(srv.Meter()),
		})
	}
	return e, nil
}

// Fig8bLeaves reproduces Figure 8b: time versus the number of leaves in the
// generating tree for a fixed data size, with a small memory budget.
func Fig8bLeaves(env *Env, scale float64) (*Experiment, error) {
	totalRows := scaled(8000, scale)
	e := &Experiment{
		ID:     "fig8b",
		Title:  "Number of leaves (fixed data size, small memory)",
		XLabel: "leaves",
		YLabel: "virtual seconds",
		PaperShape: "more leaves => less similar points, a larger request frontier and more scans; " +
			"time rises for both curves, with caching below no caching",
		Series: []Series{{Name: "caching"}, {Name: "no caching"}},
	}
	var memory int64
	for i, leaves := range []int{20, 40, 80, 160} {
		cfg := datagen.TreeGenConfig{
			Leaves: scaled(leaves, scale), Attrs: 25, Values: 4, ValuesStdDev: 0,
			Classes: 10, CasesPerLeaf: totalRows / scaled(leaves, scale), Seed: 49,
		}
		ds, _, err := datagen.GenerateTreeData(cfg)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			memory = ds.Bytes() / 6 // the paper's "small amount of memory (8MB)" vs 10 MB data
		}
		x := float64(scaled(leaves, scale))
		withC, err := BuildTree(env, ds, mw.Config{Staging: mw.StageMemoryOnly, Memory: memory}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		noC, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, Memory: memory}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Seconds: withC.Seconds, Counters: withC.Counters})
		e.Series[1].Points = append(e.Series[1].Points, Point{X: x, Seconds: noC.Seconds, Counters: noC.Counters})
	}
	return e, nil
}

// IndexScans reproduces the §5.2.5 experiment: the auxiliary server-side
// access structures (copy table, TID join, keyset cursor + stored procedure)
// versus the plain sequential scan, on a lop-sided tree whose active data
// set shrinks along one long path.
func IndexScans(env *Env, scale float64) (*Experiment, error) {
	cfg := datagen.TreeGenConfig{
		Leaves: scaled(30, scale), Attrs: 12, Values: 3, ValuesStdDev: 0,
		Classes: 4, CasesPerLeaf: 200, Skew: 0.97, Seed: 50,
	}
	ds, _, err := datagen.GenerateTreeData(cfg)
	if err != nil {
		return nil, err
	}
	e := &Experiment{
		ID:     "sec5.2.5",
		Title:  "Index-scan alternatives vs sequential scan (thin tree)",
		XLabel: "access mode",
		YLabel: "virtual seconds",
		PaperShape: "even under favourable conditions the index alternatives do not beat the plain " +
			"sequential scan with a pushed-down filter",
		Series: []Series{{Name: "total"}},
	}
	modes := []struct {
		name   string
		access mw.ServerAccess
	}{
		{"seq-scan", mw.AccessScan},
		{"keyset+sproc", mw.AccessKeyset},
		{"tid-join", mw.AccessTIDJoin},
		{"copy-table", mw.AccessCopyTable},
	}
	for i, md := range modes {
		st, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, Access: md.access}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{
			X: float64(i), Label: md.name, Seconds: st.Seconds, Counters: st.Counters,
		})
	}
	return e, nil
}

// ExtractAllComparison measures the §2.3 extract-everything strawman against
// the middleware at growing data sizes, with a client memory that the larger
// data sets overflow.
func ExtractAllComparison(env *Env, scale float64) (*Experiment, error) {
	e := &Experiment{
		ID:     "extract-all",
		Title:  "Extract-everything strawman vs middleware",
		XLabel: "rows",
		YLabel: "virtual seconds",
		PaperShape: "extracting the entire data set to the client 'performs extremely poorly' once " +
			"the data exceeds client memory; the middleware scales past it",
		Series: []Series{{Name: "middleware caching"}, {Name: "extract-all"}},
	}
	var clientMem int64
	for i, cases := range []int{40, 80, 160, 320} {
		ds, err := fig45Data(scale, cases, 51)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			clientMem = 2 * ds.Bytes() // the smallest data set fits; later ones spill
		}
		x := float64(ds.N())
		st, err := BuildTree(env, ds, mw.Config{Staging: mw.StageMemoryOnly, Memory: clientMem}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Seconds: st.Seconds, Counters: st.Counters})

		srv, err := NewServer(ds)
		if err != nil {
			return nil, err
		}
		if _, err := baseline.ExtractAll(srv, clientMem, dtree.Options{}); err != nil {
			return nil, err
		}
		e.Series[1].Points = append(e.Series[1].Points, Point{
			X: x, Seconds: srv.Meter().Now().Seconds(), Counters: countersOf(srv.Meter()),
		})
	}
	return e, nil
}

// NaiveBayesPlugin measures the Naive Bayes client: one scan of the data
// builds the root counts table and the model; time is linear in rows and a
// small multiple of a single scan regardless of data size.
func NaiveBayesPlugin(env *Env, scale float64) (*Experiment, error) {
	e := &Experiment{
		ID:     "naive-bayes",
		Title:  "Naive Bayes plug-in client (single-scan training)",
		XLabel: "rows",
		YLabel: "virtual seconds",
		PaperShape: "any sufficient-statistics classifier plugs into the middleware; Naive Bayes " +
			"trains in exactly one scan, so time is linear in data size",
		Series: []Series{{Name: "nb train"}},
	}
	for _, perClass := range []int{200, 400, 800} {
		ds, err := datagen.GenerateGaussians(datagen.GaussianConfig{
			Dims: 20, Components: 5, PerClass: scaled(perClass, scale), Bins: 4, Seed: 52,
		})
		if err != nil {
			return nil, err
		}
		srv, err := NewServer(ds)
		if err != nil {
			return nil, err
		}
		m, err := mw.New(srv, mw.Config{})
		if err != nil {
			return nil, err
		}
		model, err := nb.Train(m, 1)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.Close()
		if acc := model.Accuracy(ds); acc < 1.0/float64(ds.Schema.Class.Card) {
			return nil, fmt.Errorf("naive bayes accuracy %.3f below chance", acc)
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{
			X: float64(ds.N()), Seconds: srv.Meter().Now().Seconds(), Counters: countersOf(srv.Meter()),
		})
	}
	return e, nil
}

var _ = sim.CtrBatches
