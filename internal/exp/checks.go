package exp

import "fmt"

// Check validates an experiment's qualitative shape against the paper's
// claim — the machine-checkable form of the PaperShape sentence. It returns
// nil when the shape is reproduced. Unknown experiment ids return an error.
func Check(e *Experiment) error {
	fn, ok := checks[e.ID]
	if !ok {
		return fmt.Errorf("exp: no shape check for %q", e.ID)
	}
	return fn(e)
}

// HasCheck reports whether a shape check exists for the experiment id.
func HasCheck(id string) bool { _, ok := checks[id]; return ok }

var checks = map[string]func(*Experiment) error{
	"fig4-left": func(e *Experiment) error {
		caching, none := e.Series[0].Points, e.Series[1].Points
		last := len(caching) - 1
		if caching[last].Seconds >= none[last].Seconds {
			return fmt.Errorf("caching (%.3f) not faster than no-caching (%.3f) at max memory",
				caching[last].Seconds, none[last].Seconds)
		}
		for _, s := range e.Series {
			if s.Points[last].Seconds > s.Points[0].Seconds {
				return fmt.Errorf("%s: time rose with memory", s.Name)
			}
		}
		return nil
	},
	"fig4-right": func(e *Experiment) error {
		// Time rises with data size in every configuration.
		for _, s := range e.Series {
			n := len(s.Points)
			if s.Points[n-1].Seconds <= s.Points[0].Seconds {
				return fmt.Errorf("%s: time did not grow with data size", s.Name)
			}
		}
		// High-memory caching is the cheapest configuration at the largest size.
		last := len(e.Series[0].Points) - 1
		best := e.Series[2].Points[last].Seconds // hiMem caching
		for _, s := range []Series{e.Series[0], e.Series[1], e.Series[3]} {
			if s.Points[last].Seconds < best {
				return fmt.Errorf("hiMem caching not cheapest at max size (beaten by %s)", s.Name)
			}
		}
		return nil
	},
	"fig5a": func(e *Experiment) error {
		pts := e.Series[0].Points
		if pts[0].Seconds <= pts[len(pts)-1].Seconds {
			return fmt.Errorf("tight memory not slower than ample memory")
		}
		return nil
	},
	"fig5b": func(e *Experiment) error {
		for _, s := range e.Series {
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].Seconds < s.Points[i-1].Seconds {
					return fmt.Errorf("%s: time fell as rows grew", s.Name)
				}
			}
		}
		return nil
	},
	"fig6": func(e *Experiment) error {
		// The hybrid (series 2) never loses to one-file (series 1) by more
		// than noise, and config 4 (series 3) wins at the highest memory.
		hybrid, oneFile, withMem := e.Series[2].Points, e.Series[1].Points, e.Series[3].Points
		for i := range hybrid {
			if hybrid[i].Seconds > oneFile[i].Seconds*1.05 {
				return fmt.Errorf("split@50%% lost to one-file at point %d", i)
			}
		}
		last := len(hybrid) - 1
		if withMem[last].Seconds >= hybrid[last].Seconds {
			return fmt.Errorf("memory staging added nothing at max memory")
		}
		return nil
	},
	"fig7-left": func(e *Experiment) error {
		for _, s := range e.Series {
			n := len(s.Points)
			if s.Points[n-1].Seconds <= s.Points[0].Seconds {
				return fmt.Errorf("%s: time did not grow with attributes", s.Name)
			}
		}
		caching, none := e.Series[0].Points, e.Series[1].Points
		for i := range caching {
			if caching[i].Seconds >= none[i].Seconds {
				return fmt.Errorf("caching not below no-caching at point %d", i)
			}
		}
		return nil
	},
	"fig7-right": func(e *Experiment) error {
		mws, sqls := e.Series[0].Points, e.Series[1].Points
		for i := range mws {
			if sqls[i].Seconds < 2*mws[i].Seconds {
				return fmt.Errorf("sql counting not >= 2x middleware at point %d", i)
			}
		}
		r0 := sqls[0].Seconds / mws[0].Seconds
		rN := sqls[len(sqls)-1].Seconds / mws[len(mws)-1].Seconds
		if rN <= r0 {
			return fmt.Errorf("sql/mw ratio did not grow with data (%.1f -> %.1f)", r0, rN)
		}
		return nil
	},
	"fig8a": func(e *Experiment) error {
		cursor, file := e.Series[0].Points, e.Series[1].Points
		worse := 0
		for i := range cursor {
			if file[i].Seconds > cursor[i].Seconds {
				worse++
			}
		}
		if worse < len(cursor)-1 {
			return fmt.Errorf("file store beat the cursor at %d of %d points", len(cursor)-worse, len(cursor))
		}
		return nil
	},
	"fig8b": func(e *Experiment) error {
		for _, s := range e.Series {
			n := len(s.Points)
			if s.Points[n-1].Seconds <= s.Points[0].Seconds {
				return fmt.Errorf("%s: time did not grow with leaves", s.Name)
			}
		}
		return nil
	},
	"sec5.2.5": func(e *Experiment) error {
		pts := e.Series[0].Points
		seq := pts[0].Seconds
		for _, p := range pts[1:] {
			if p.Seconds < seq*0.95 {
				return fmt.Errorf("%s beat the sequential scan by >5%%", p.Label)
			}
		}
		return nil
	},
	"extract-all": func(e *Experiment) error {
		mws, ext := e.Series[0].Points, e.Series[1].Points
		last := len(mws) - 1
		if ext[last].Seconds <= mws[last].Seconds {
			return fmt.Errorf("extract-all not slower at the largest (spilling) size")
		}
		return nil
	},
	"naive-bayes": func(e *Experiment) error {
		pts := e.Series[0].Points
		for i := 1; i < len(pts); i++ {
			if pts[i].Seconds <= pts[i-1].Seconds {
				return fmt.Errorf("training time not increasing in rows")
			}
		}
		// Roughly linear: doubling rows should not much more than double time.
		r := pts[len(pts)-1].Seconds / pts[0].Seconds
		x := pts[len(pts)-1].X / pts[0].X
		if r > 1.6*x {
			return fmt.Errorf("training time superlinear: %.1fx time for %.1fx rows", r, x)
		}
		return nil
	},
	"abl-pushdown": func(e *Experiment) error {
		on, off := e.Series[0].Points, e.Series[1].Points
		for i := range on {
			if off[i].Seconds <= on[i].Seconds {
				return fmt.Errorf("pushdown showed no benefit at point %d", i)
			}
		}
		return nil
	},
	"abl-batching": func(e *Experiment) error {
		on, off := e.Series[0].Points, e.Series[1].Points
		for i := range on {
			if off[i].Seconds < 2*on[i].Seconds {
				return fmt.Errorf("batching benefit below 2x at point %d", i)
			}
		}
		return nil
	},
	"abl-rule3": func(e *Experiment) error {
		// Expect parity: neither order ahead by more than 15%.
		r3, fifo := e.Series[0].Points, e.Series[1].Points
		for i := range r3 {
			ratio := r3[i].Seconds / fifo[i].Seconds
			if ratio > 1.15 || ratio < 0.85 {
				return fmt.Errorf("rule3/fifo ratio %.2f outside parity band at point %d", ratio, i)
			}
		}
		return nil
	},
	"scaling": func(e *Experiment) error {
		// Adding workers must pay: in every configuration, 2 workers beat 1
		// and 4 workers beat 1 on virtual build time.
		for _, s := range e.Series {
			one := s.Points[0].Seconds
			for _, p := range s.Points[1:] {
				if p.X > 4 {
					// 8 workers may flatten against serial fractions but
					// must never regress below sequential.
					if p.Seconds > one {
						return fmt.Errorf("%s: %g workers (%.3fs) slower than 1 worker (%.3fs)",
							s.Name, p.X, p.Seconds, one)
					}
					continue
				}
				if p.Seconds >= one {
					return fmt.Errorf("%s: %g workers (%.3fs) not faster than 1 worker (%.3fs)",
						s.Name, p.X, p.Seconds, one)
				}
			}
		}
		return nil
	},
	"skew": func(e *Experiment) error {
		eq, hist := e.Series[0].Points, e.Series[1].Points
		// Histogram splits never cost wall-clock: at every worker count the
		// skew-aware build is at least as fast as the equal-width build.
		for i := range hist {
			if hist[i].Seconds > eq[i].Seconds*1.001 {
				return fmt.Errorf("histogram build (%.3fs) slower than equal-width (%.3fs) at %g workers",
					hist[i].Seconds, eq[i].Seconds, hist[i].X)
			}
		}
		// The headline claim: at the highest worker count the worst per-batch
		// lane imbalance falls by at least 2x under histogram splits.
		last := len(eq) - 1
		eqImb := eq[last].Counters["max_lane_imbalance_ns"]
		histImb := hist[last].Counters["max_lane_imbalance_ns"]
		if eqImb <= 0 {
			return fmt.Errorf("equal-width run shows no lane imbalance at %g workers", eq[last].X)
		}
		if histImb*2 > eqImb {
			return fmt.Errorf("histogram imbalance %d ns not <= half of equal-width %d ns at %g workers",
				histImb, eqImb, eq[last].X)
		}
		return nil
	},
	"columnar": func(e *Experiment) error {
		row, col := e.Series[0].Points, e.Series[1].Points
		for i := range row {
			// Never slower: the block kernel's cheaper cost shape must show
			// up as virtual time on every workload.
			if col[i].Seconds > row[i].Seconds*1.001 {
				return fmt.Errorf("columnar build (%.3fs) slower than row path (%.3fs) on %s",
					col[i].Seconds, row[i].Seconds, col[i].Label)
			}
			// Dictionary packing alone must cut modeled pages everywhere.
			if col[i].Counters["server_pages_read"] >= row[i].Counters["server_pages_read"] {
				return fmt.Errorf("columnar read %d pages, row path %d on %s: no packing win",
					col[i].Counters["server_pages_read"], row[i].Counters["server_pages_read"], col[i].Label)
			}
		}
		// The headline claim: on the clustered workload (last point) zone-map
		// skipping stacks on packing for at least a 2x page-I/O cut.
		last := len(row) - 1
		rp := row[last].Counters["server_pages_read"]
		cp := col[last].Counters["server_pages_read"]
		if rp < 2*cp {
			return fmt.Errorf("clustered: row path read %d pages, columnar %d — below the 2x claim", rp, cp)
		}
		if col[last].Counters["col_groups_skipped"] == 0 {
			return fmt.Errorf("clustered: zone maps skipped no row groups")
		}
		return nil
	},
	"serve": func(e *Experiment) error {
		shared, solo := e.Series[0].Points, e.Series[1].Points
		for i := range shared {
			sp := shared[i].Counters["server_pages_total"]
			np := solo[i].Counters["server_pages_total"]
			if shared[i].X == 1 {
				// A lone session has nobody to share with: identical cost.
				if sp != np {
					return fmt.Errorf("1 client: sharing-on read %d pages, off %d — must be identical", sp, np)
				}
				continue
			}
			// The headline claim: attaching concurrent scans to one cursor
			// cuts the cohort's total modeled page I/O.
			if sp >= np {
				return fmt.Errorf("%g clients: sharing-on read %d pages, off %d — no sharing win",
					shared[i].X, sp, np)
			}
			if shared[i].Counters["shared_io_pages"] == 0 {
				return fmt.Errorf("%g clients: no pages charged to the shared scan", shared[i].X)
			}
			// Sharing must never slow the cohort down.
			if shared[i].Seconds > solo[i].Seconds*1.001 {
				return fmt.Errorf("%g clients: makespan %.3fs with sharing, %.3fs without",
					shared[i].X, shared[i].Seconds, solo[i].Seconds)
			}
		}
		// Per-session latency: sharing at worst matches running alone.
		latShared, latSolo := e.Series[2].Points, e.Series[3].Points
		for i := range latShared {
			if latShared[i].Seconds > latSolo[i].Seconds*1.001 {
				return fmt.Errorf("%g clients: mean latency %.3fs with sharing, %.3fs without",
					latShared[i].X, latShared[i].Seconds, latSolo[i].Seconds)
			}
		}
		return nil
	},
	"sensitivity": func(e *Experiment) error {
		caching, none := e.Series[0].Points, e.Series[1].Points
		for i := range caching {
			if caching[i].Seconds >= none[i].Seconds {
				return fmt.Errorf("variant %s: caching not faster", caching[i].Label)
			}
		}
		return nil
	},
	"scoring": func(e *Experiment) error {
		eng, client := e.Series[0].Points, e.Series[1].Points
		if len(eng) == 0 || len(eng) != len(client) {
			return fmt.Errorf("scoring: malformed series (%d engine, %d client points)", len(eng), len(client))
		}
		for i := range eng {
			// The headline claim, at every worker count: shipping the model
			// to the data beats shipping the data to the model on time,
			// throughput and modeled page I/O.
			if eng[i].Seconds >= client[i].Seconds {
				return fmt.Errorf("workers=%g: in-engine %.4fs, in-client %.4fs — no scoring win",
					eng[i].X, eng[i].Seconds, client[i].Seconds)
			}
			ep, cp := eng[i].Counters["server_pages_read"], client[i].Counters["server_pages_read"]
			if ep >= cp {
				return fmt.Errorf("workers=%g: in-engine read %d pages, in-client %d — no page win",
					eng[i].X, ep, cp)
			}
			if eng[i].Counters["rows_per_sec"] <= client[i].Counters["rows_per_sec"] {
				return fmt.Errorf("workers=%g: in-engine %d rows/s, in-client %d — no throughput win",
					eng[i].X, eng[i].Counters["rows_per_sec"], client[i].Counters["rows_per_sec"])
			}
			// Both arms must actually have scored the whole table the same way.
			if eng[i].Counters["score_rows"] != client[i].Counters["score_rows"] {
				return fmt.Errorf("workers=%g: engine scored %d rows, client %d",
					eng[i].X, eng[i].Counters["score_rows"], client[i].Counters["score_rows"])
			}
			if eng[i].Counters["model_node_probes"] == 0 {
				return fmt.Errorf("workers=%g: engine walked no model nodes", eng[i].X)
			}
		}
		// Worker scaling: the parallel operator at 8 workers beats itself at 1.
		if last, first := eng[len(eng)-1], eng[0]; last.Seconds >= first.Seconds {
			return fmt.Errorf("no worker scaling: %.4fs at workers=%g vs %.4fs at workers=%g",
				last.Seconds, last.X, first.Seconds, first.X)
		}
		return nil
	},
}
