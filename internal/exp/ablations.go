package exp

import (
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/mw"
)

// Ablation experiments: each disables one of the middleware's design
// choices (DESIGN.md) to quantify its contribution. They are not paper
// figures — the paper argues for these choices qualitatively — but they
// regenerate the argument as data.

// AblationFilterPushdown measures §4.3.1's filter expressions: with the
// ablation every scan ships the entire table, so cost stops tracking the
// shrinking active set.
func AblationFilterPushdown(env *Env, scale float64) (*Experiment, error) {
	e := &Experiment{
		ID:     "abl-pushdown",
		Title:  "Ablation: filter expressions pushed into the server WHERE clause",
		XLabel: "rows",
		YLabel: "virtual seconds",
		PaperShape: "§4.3.1: the filter 'ensures that only data relevant to the nodes are " +
			"transmitted'; without it every scan ships the whole table",
		Series: []Series{{Name: "pushdown (paper)"}, {Name: "no pushdown"}},
	}
	for _, cases := range []int{60, 120, 240} {
		ds, err := fig45Data(scale, cases, 61)
		if err != nil {
			return nil, err
		}
		x := float64(ds.N())
		on, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		off, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, NoFilterPushdown: true}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Seconds: on.Seconds, Counters: on.Counters})
		e.Series[1].Points = append(e.Series[1].Points, Point{X: x, Seconds: off.Seconds, Counters: off.Counters})
	}
	return e, nil
}

// AblationBatching measures §4.1.1's multi-node single-scan counting: with a
// batch size of one, every active node costs its own scan, which is the
// regime the per-node SQL strawman also suffers from.
func AblationBatching(env *Env, scale float64) (*Experiment, error) {
	e := &Experiment{
		ID:     "abl-batching",
		Title:  "Ablation: batching multiple nodes into one scan",
		XLabel: "rows",
		YLabel: "virtual seconds",
		PaperShape: "§4.1.1: counts tables for multiple active nodes are built in a single " +
			"data scan; one scan per node forfeits the core optimization",
		Series: []Series{{Name: "batched (paper)"}, {Name: "one node per scan"}},
	}
	for _, cases := range []int{60, 120, 240} {
		ds, err := fig45Data(scale, cases, 62)
		if err != nil {
			return nil, err
		}
		x := float64(ds.N())
		on, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		off, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, MaxBatch: 1}, dtree.Options{})
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: x, Seconds: on.Seconds, Counters: on.Counters})
		e.Series[1].Points = append(e.Series[1].Points, Point{X: x, Seconds: off.Seconds, Counters: off.Counters})
	}
	return e, nil
}

// AblationRule3 measures the scheduler's smallest-estimate-first admission
// (Rule 3) under a constrained memory budget, against FIFO admission. The
// paper adopts Rule 3 "for simplicity", not as a performance claim, and the
// measurement confirms the choice is about determinism and maximal packing
// rather than speed: both orders land within a few percent.
func AblationRule3(env *Env, scale float64) (*Experiment, error) {
	e := &Experiment{
		ID:     "abl-rule3",
		Title:  "Ablation: Rule 3 (admit smallest estimated counts tables first)",
		XLabel: "memory (KB)",
		YLabel: "virtual seconds",
		PaperShape: "the paper orders eligible nodes by increasing estimated size 'for " +
			"simplicity'; expect parity with FIFO (Rule 3 buys deterministic maximal packing, not speed)",
		Series: []Series{{Name: "rule 3 (paper)"}, {Name: "fifo"}},
	}
	// A lop-sided tree mixes one large active node with many small ones at
	// every level, the regime where admission order matters.
	cfg := datagen.TreeGenConfig{
		Leaves: scaled(40, scale), Attrs: 20, Values: 4, ValuesStdDev: 2,
		Classes: 8, CasesPerLeaf: 150, Skew: 0.9, Seed: 63,
	}
	ds, _, err := datagen.GenerateTreeData(cfg)
	if err != nil {
		return nil, err
	}
	opt := dtree.Options{}
	for _, kb := range []int64{24, 48, 96, 192} {
		on, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, Memory: kb << 10}, opt)
		if err != nil {
			return nil, err
		}
		off, err := BuildTree(env, ds, mw.Config{Staging: mw.StageNone, Memory: kb << 10, FIFOScheduling: true}, opt)
		if err != nil {
			return nil, err
		}
		e.Series[0].Points = append(e.Series[0].Points, Point{X: float64(kb), Seconds: on.Seconds, Counters: on.Counters})
		e.Series[1].Points = append(e.Series[1].Points, Point{X: float64(kb), Seconds: off.Seconds, Counters: off.Counters})
	}
	return e, nil
}
