package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// ColumnarStorage measures the columnar row-group path against the row heap
// on the skew protocol (a root counting request plus one region-selective
// request per region, one per batch, at 8 workers): the same builds, once
// over the heap cursors (ColumnarOff) and once over the dictionary-encoded
// columnar copy. Two workloads separate the two effects the path stacks:
// on uniform data every row group holds every region value, so the entire
// win is dictionary packing — fewer modeled pages per full scan; on the
// clustered table the per-group dictionaries double as zone maps, whole row
// groups fail the region filter before any page I/O is charged, and the
// modeled page count collapses. Counts must be identical in all four runs.
func ColumnarStorage(env *Env, scale float64) (*Experiment, error) {
	const regions = 6
	// The columnar scan partitions by 4096-row group, so the table must span
	// at least Workers row groups for the lanes to fan out fully — even at
	// the quarter scale the CI gate runs (32768 rows = 8 groups).
	rows := scaled(131072, scale)
	clustered, err := datagen.GenerateClustered(datagen.ClusteredConfig{
		Rows: rows, Seed: 17, Regions: regions, Attrs: 7,
	})
	if err != nil {
		return nil, err
	}
	uniform := uniformDataset(clustered.Schema, rows, 18)

	e := &Experiment{
		ID:     "columnar",
		Title:  "Columnar row groups: dictionary pages and zone-map skipping vs the row heap",
		XLabel: "workload",
		YLabel: "virtual seconds",
		PaperShape: "the columnar copy reads fewer modeled pages than the heap on every " +
			"workload (dictionary packing), at least 2x fewer on the clustered table " +
			"(zone maps skip whole row groups), and is never slower — with every " +
			"counted value identical to the row path's",
		Series: []Series{
			{Name: "row"},
			{Name: "columnar"},
		},
	}
	for _, wl := range []struct {
		label string
		ds    *data.Dataset
	}{
		{"uniform", uniform},
		{"clustered", clustered},
	} {
		var refFP string
		for si, mode := range []mw.ColumnarMode{mw.ColumnarOff, mw.ColumnarAuto} {
			secs, counters, fp, err := columnarDrive(env, wl.ds, regions, mode)
			if err != nil {
				return nil, err
			}
			if refFP == "" {
				refFP = fp
			} else if fp != refFP {
				return nil, fmt.Errorf("exp columnar: %s on %s: counts differ from the row path",
					e.Series[si].Name, wl.label)
			}
			e.Series[si].Points = append(e.Series[si].Points, Point{
				Label: wl.label, Seconds: secs, Counters: counters,
			})
		}
	}
	return e, nil
}

// uniformDataset redraws a schema's rows uniformly at random: same columns
// and cardinalities as the clustered table, no physical clustering — the
// ablation workload where zone maps cannot skip anything.
func uniformDataset(schema *data.Schema, rows int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := data.NewDataset(schema)
	ncols := schema.NumCols()
	for i := 0; i < rows; i++ {
		r := make(data.Row, ncols)
		for c, a := range schema.Attrs {
			r[c] = data.Value(rng.Intn(a.Card))
		}
		r[ncols-1] = data.Value(rng.Intn(schema.Class.Card))
		ds.Append(r)
	}
	return ds
}

// columnarDrive runs the fixed skew protocol against a fresh middleware with
// the given columnar mode at 8 workers and returns the virtual build time,
// the scan-relevant counters, and a fingerprint of every fulfilled CC table.
func columnarDrive(env *Env, ds *data.Dataset, regions int, mode mw.ColumnarMode) (float64, map[string]int64, string, error) {
	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)
	srv, err := engine.NewServer(eng, "cases", ds)
	if err != nil {
		return 0, nil, "", err
	}
	cfg := mw.Config{
		Staging:  mw.StageNone,
		Workers:  8,
		MaxBatch: 1,
		Columnar: mode,
	}
	if env != nil && env.Obs != nil {
		label := env.Label
		if label == "" {
			label = "columnar"
		}
		tr, pm := env.Obs.Proc(label, meter)
		eng.SetTracer(tr)
		cfg.Metrics = pm
	}
	m, err := mw.New(srv, cfg)
	if err != nil {
		return 0, nil, "", err
	}
	defer m.Close()

	var sb strings.Builder
	drain := func() error {
		for m.Pending() > 0 {
			results, err := m.Step()
			if err != nil {
				return err
			}
			if len(results) == 0 {
				return fmt.Errorf("exp columnar: pending requests but Step produced no results")
			}
			sort.Slice(results, func(i, j int) bool { return results[i].Req.NodeID < results[j].Req.NodeID })
			for _, r := range results {
				fmt.Fprintf(&sb, "node %d rows=%d cc=%s\n", r.Req.NodeID, r.CC.Rows(), r.CC.String())
			}
		}
		return nil
	}

	attrs := make([]int, ds.Schema.NumAttrs())
	for i := range attrs {
		attrs[i] = i
	}
	var est int64
	for _, a := range ds.Schema.Attrs {
		est += int64(a.Card)
	}
	est = est*int64(ds.Schema.Class.Card) + int64(ds.Schema.Class.Card)
	if err := m.Enqueue(&mw.Request{
		NodeID: 0, ParentID: -1, Attrs: attrs, Rows: int64(ds.N()), EstCC: est,
	}); err != nil {
		return 0, nil, "", err
	}
	if err := drain(); err != nil {
		return 0, nil, "", err
	}
	for v := 0; v < regions; v++ {
		val := data.Value(v)
		var rows int64
		for _, r := range ds.Rows {
			if r[0] == val {
				rows++
			}
		}
		if err := m.Enqueue(&mw.Request{
			NodeID: 1 + v, ParentID: 0,
			Path:  predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: val}},
			Attrs: attrs[1:],
			Rows:  rows,
			EstCC: est,
		}); err != nil {
			return 0, nil, "", err
		}
	}
	m.CloseNode(0)
	if err := drain(); err != nil {
		return 0, nil, "", err
	}
	for v := 0; v < regions; v++ {
		m.CloseNode(1 + v)
	}

	counters := map[string]int64{
		sim.CtrServerPages.String(): meter.Count(sim.CtrServerPages),
	}
	for _, c := range []sim.Counter{sim.CtrColGroupsScanned, sim.CtrColGroupsSkipped} {
		if v := meter.Count(c); v != 0 {
			counters[c.String()] = v
		}
	}
	return meter.Now().Seconds(), counters, sb.String(), nil
}
