package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// The perf-regression gate. CollectPerf profiles a fixed set of build
// scenarios on the virtual clock and condenses each profile into a flat
// metric map; BENCH_history.json accumulates those snapshots across commits,
// and cmd/perfgate compares the current run against the committed baseline
// with a per-metric tolerance band. Everything is virtual-time, so the gate
// is noise-free: a metric moves only when the simulated cost actually moves.

// PerfSnapshot is one scenario's condensed profile.
type PerfSnapshot struct {
	Scenario string           `json:"scenario"`
	Metrics  map[string]int64 `json:"metrics"`
}

// PerfEntry is one recorded run of all scenarios.
type PerfEntry struct {
	Seq       int            `json:"seq"`
	Scale     float64        `json:"scale"`
	Snapshots []PerfSnapshot `json:"snapshots"`
}

// PerfHistory is the cumulative BENCH_history.json document.
type PerfHistory struct {
	Entries []PerfEntry `json:"entries"`
}

// perfScenario is one gated configuration: by default a tree build driven
// through BuildTree, or an arbitrary drive when run is set.
type perfScenario struct {
	name string
	gen  func(scale float64) (*data.Dataset, error)
	cfg  func(ds *data.Dataset) mw.Config
	opt  func(ds *data.Dataset) dtree.Options
	// run, when non-nil, replaces the default BuildTree drive; it must
	// route all simulated work through an engine attached to env so the
	// profile sees exactly one proc.
	run func(env *Env, ds *data.Dataset) error
}

func perfScenarios() []perfScenario {
	census := func(scale float64) (*data.Dataset, error) {
		return datagen.GenerateCensus(datagen.CensusConfig{Rows: scaled(8000, scale), Seed: 61})
	}
	shallow := func(ds *data.Dataset) dtree.Options {
		return dtree.Options{MaxDepth: 6, MinRows: int64(ds.N() / 100)}
	}
	return []perfScenario{
		{
			name: "row-seq",
			gen:  census,
			cfg: func(*data.Dataset) mw.Config {
				return mw.Config{Workers: 1, Columnar: mw.ColumnarOff, Staging: mw.StageNone}
			},
			opt: shallow,
		},
		{
			name: "staged-parallel",
			gen:  census,
			cfg: func(ds *data.Dataset) mw.Config {
				return mw.Config{Workers: 4, Staging: mw.StageFileAndMemory, Memory: ds.Bytes() / 2}
			},
			opt: shallow,
		},
		{
			name: "fallback",
			gen: func(scale float64) (*data.Dataset, error) {
				return datagen.GenerateCensus(datagen.CensusConfig{Rows: scaled(3000, scale), Seed: 62})
			},
			// A budget under two CC entries pushes every node to the SQL
			// fallback, gating the fallback arms' cost.
			cfg: func(*data.Dataset) mw.Config {
				return mw.Config{Workers: 4, Memory: 64, Staging: mw.StageNone}
			},
			opt: func(*data.Dataset) dtree.Options { return dtree.Options{MaxDepth: 3, MinRows: 40} },
		},
		{
			name: "columnar-clustered",
			gen: func(scale float64) (*data.Dataset, error) {
				return datagen.GenerateClustered(datagen.ClusteredConfig{
					Rows: scaled(8000, scale), Seed: 63, Regions: 6, Attrs: 7,
				})
			},
			cfg: func(*data.Dataset) mw.Config {
				return mw.Config{Workers: 4, Staging: mw.StageNone}
			},
			opt: shallow,
		},
		{
			name: "score-batch",
			gen: func(scale float64) (*data.Dataset, error) {
				return datagen.GenerateCensus(datagen.CensusConfig{Rows: scaled(16000, scale), Seed: 64})
			},
			// The vectorized in-engine scoring operator at four workers:
			// gates the scoring kernel's block/probe cost shape the same way
			// the build scenarios gate the counting pipeline.
			run: func(env *Env, ds *data.Dataset) error {
				tree, err := dtree.BuildInMemory(ds, dtree.Options{MaxDepth: 6})
				if err != nil {
					return err
				}
				model, err := dtree.Compile(tree, "score")
				if err != nil {
					return err
				}
				meter := sim.NewDefaultMeter()
				eng := engine.New(meter, 0)
				if _, err := engine.NewServer(eng, "cases", ds); err != nil {
					return err
				}
				env.attach(meter, eng, &mw.Config{})
				if err := eng.RegisterModel(model); err != nil {
					return err
				}
				tbl, err := eng.Table("cases")
				if err != nil {
					return err
				}
				_, err = eng.ScoreTable(tbl, model, 4)
				return err
			},
		},
	}
}

// CollectPerf profiles every gate scenario at the given scale and returns the
// snapshots plus the combined explain report (the per-scenario profile text).
// Fully deterministic: same scale, same bytes.
func CollectPerf(scale float64) ([]PerfSnapshot, string, error) {
	var snaps []PerfSnapshot
	var report strings.Builder
	for _, sc := range perfScenarios() {
		ds, err := sc.gen(scale)
		if err != nil {
			return nil, "", fmt.Errorf("perf %s: generate: %w", sc.name, err)
		}
		col := obs.NewCollector(true, false)
		env := &Env{Obs: col, Label: "perf-" + sc.name}
		if sc.run != nil {
			if err := sc.run(env, ds); err != nil {
				return nil, "", fmt.Errorf("perf %s: run: %w", sc.name, err)
			}
		} else if _, err := BuildTree(env, ds, sc.cfg(ds), sc.opt(ds)); err != nil {
			return nil, "", fmt.Errorf("perf %s: build: %w", sc.name, err)
		}
		p := profile.Compute(col.Trace, col.Metrics)
		if len(p.Procs) != 1 {
			return nil, "", fmt.Errorf("perf %s: profiled %d procs, want 1", sc.name, len(p.Procs))
		}
		snaps = append(snaps, PerfSnapshot{Scenario: sc.name, Metrics: perfMetrics(p.Procs[0])})
		fmt.Fprintf(&report, "### perf scenario %s (scale %g)\n\n", sc.name, scale)
		if err := p.WriteText(&report); err != nil {
			return nil, "", err
		}
		report.WriteString("\n")
	}
	return snaps, report.String(), nil
}

// perfMetrics flattens one profiled proc into the gated metric map:
// total_ns, spans, excl_ns/<category> and ctr/<counter>.
func perfMetrics(proc *profile.Proc) map[string]int64 {
	m := map[string]int64{
		"total_ns": proc.TotalNS,
		"spans":    int64(proc.Spans),
	}
	for _, r := range proc.ByCat {
		m["excl_ns/"+r.Key] = r.ExclNS
	}
	keys := make([]string, 0, len(proc.Counters))
	for k := range proc.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m["ctr/"+k] = proc.Counters[k]
	}
	return m
}

// LoadPerfHistory reads the history file; a missing file is an empty history,
// not an error.
func LoadPerfHistory(path string) (*PerfHistory, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &PerfHistory{}, nil
	}
	if err != nil {
		return nil, err
	}
	h := &PerfHistory{}
	if err := json.Unmarshal(b, h); err != nil {
		return nil, fmt.Errorf("perf history %s: %w", path, err)
	}
	return h, nil
}

// Save writes the history as indented JSON.
func (h *PerfHistory) Save(path string) error {
	b, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Baseline returns the most recent entry recorded at the given scale, or nil.
func (h *PerfHistory) Baseline(scale float64) *PerfEntry {
	for i := len(h.Entries) - 1; i >= 0; i-- {
		if h.Entries[i].Scale == scale {
			return &h.Entries[i]
		}
	}
	return nil
}

// Append records a new entry with the next sequence number.
func (h *PerfHistory) Append(scale float64, snaps []PerfSnapshot) {
	seq := 0
	for _, e := range h.Entries {
		if e.Seq > seq {
			seq = e.Seq
		}
	}
	h.Entries = append(h.Entries, PerfEntry{Seq: seq + 1, Scale: scale, Snapshots: snaps})
}

// Absolute allowances backing the relative tolerance band. A zero-valued
// baseline metric (a counter the workload never hits, a category with no
// exclusive time) admits no relative slack at all — base*(1+tol) is still
// zero — so any nonzero current value would gate. Instead every metric gets
// an absolute-delta floor: time-like metrics may drift by a virtual
// millisecond, counts by a handful, before the relative band takes over.
const (
	perfAbsNSAllowance    = 1_000_000 // ns-valued metrics (total_ns, excl_ns/*)
	perfAbsCountAllowance = 8         // count-valued metrics (spans, ctr/*)
)

// perfAllowance returns the gate allowance for one metric: the larger of the
// relative band and the metric's absolute-delta floor.
func perfAllowance(metric string, baseline int64, tol float64) int64 {
	allow := int64(float64(baseline) * tol)
	abs := int64(perfAbsCountAllowance)
	if metric == "total_ns" || strings.HasPrefix(metric, "excl_ns/") {
		abs = perfAbsNSAllowance
	}
	if allow < abs {
		allow = abs
	}
	return allow
}

// ComparePerf checks the current snapshots against a baseline with a relative
// tolerance band and returns one message per regression (empty = pass). A
// scenario or metric present in the baseline but missing now, or a metric
// grown past base + max(base*tol, absolute floor), count as regressions; the
// absolute floor makes zero baselines an absolute-delta comparison instead of
// an unconditional failure. Metrics the baseline does not know are ignored —
// adding instrumentation must not fail the gate until re-baselined.
func ComparePerf(base, cur []PerfSnapshot, tol float64) []string {
	curBy := map[string]PerfSnapshot{}
	for _, s := range cur {
		curBy[s.Scenario] = s
	}
	var msgs []string
	for _, b := range base {
		c, ok := curBy[b.Scenario]
		if !ok {
			msgs = append(msgs, fmt.Sprintf("%s: scenario missing from current run", b.Scenario))
			continue
		}
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := b.Metrics[k]
			cv, ok := c.Metrics[k]
			if !ok {
				msgs = append(msgs, fmt.Sprintf("%s: metric %s missing from current run (baseline %d)", b.Scenario, k, bv))
				continue
			}
			limit := bv + perfAllowance(k, bv, tol)
			if cv > limit {
				msgs = append(msgs, fmt.Sprintf("%s: %s regressed: baseline %d, now %d (limit %d at tol %g)",
					b.Scenario, k, bv, cv, limit, tol))
			}
		}
	}
	return msgs
}
