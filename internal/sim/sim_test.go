package sim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestChargeAdvancesClockAndCounter(t *testing.T) {
	m := NewDefaultMeter()
	m.Charge(CtrServerScans, 1000, 3)
	if got := m.Count(CtrServerScans); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := m.Now(); got != 3*time.Microsecond {
		t.Errorf("Now = %v, want 3µs", got)
	}
}

func TestChargeZeroCost(t *testing.T) {
	m := NewDefaultMeter()
	m.Charge(CtrBatches, 0, 5)
	if m.Now() != 0 {
		t.Errorf("zero-cost charge advanced the clock to %v", m.Now())
	}
	if m.Count(CtrBatches) != 5 {
		t.Errorf("counter = %d, want 5", m.Count(CtrBatches))
	}
}

func TestAdvance(t *testing.T) {
	m := NewDefaultMeter()
	m.Advance(1500)
	if m.Now() != 1500*time.Nanosecond {
		t.Errorf("Now = %v, want 1.5µs", m.Now())
	}
}

func TestNegativePanics(t *testing.T) {
	m := NewDefaultMeter()
	for name, fn := range map[string]func(){
		"advance": func() { m.Advance(-1) },
		"charge":  func() { m.Charge(CtrServerRows, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on negative input", name)
				}
			}()
			fn()
		}()
	}
}

func TestReset(t *testing.T) {
	m := NewDefaultMeter()
	m.Charge(CtrServerRows, 100, 10)
	m.Reset()
	if m.Now() != 0 || m.Count(CtrServerRows) != 0 {
		t.Errorf("Reset left state: now=%v count=%d", m.Now(), m.Count(CtrServerRows))
	}
	if m.Costs() != DefaultCosts() {
		t.Error("Reset clobbered the cost model")
	}
}

func TestSnapshotDeltas(t *testing.T) {
	m := NewDefaultMeter()
	m.Charge(CtrFileRowsRead, 1000, 4)
	s := m.Snapshot()
	m.Charge(CtrFileRowsRead, 1000, 6)
	if d := m.CountSince(s, CtrFileRowsRead); d != 6 {
		t.Errorf("CountSince = %d, want 6", d)
	}
	if d := m.Since(s); d != 6*time.Microsecond {
		t.Errorf("Since = %v, want 6µs", d)
	}
	// The snapshot itself is immutable.
	if s.Counts[CtrFileRowsRead] != 4 {
		t.Errorf("snapshot mutated: %d", s.Counts[CtrFileRowsRead])
	}
}

func TestCounterNamesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "counter(") {
			t.Errorf("counter %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if got := Counter(999).String(); got != "counter(999)" {
		t.Errorf("out-of-range counter name = %q", got)
	}
}

func TestStringListsNonZeroCountersSorted(t *testing.T) {
	m := NewDefaultMeter()
	m.Charge(CtrServerScans, 0, 2)
	m.Charge(CtrCCUpdates, 0, 7)
	s := m.String()
	if !strings.Contains(s, "server_scans=2") || !strings.Contains(s, "cc_updates=7") {
		t.Errorf("String() missing counters: %s", s)
	}
	if strings.Contains(s, "rows_transmitted") {
		t.Errorf("String() lists zero counter: %s", s)
	}
	if strings.Index(s, "cc_updates") > strings.Index(s, "server_scans") {
		t.Errorf("String() not sorted by name: %s", s)
	}
}

func TestDefaultCostOrderings(t *testing.T) {
	c := DefaultCosts()
	// The orderings the paper's results depend on (see package comment).
	if !(c.MemRowRead < c.FileRowRead) {
		t.Error("memory read must be cheaper than file read")
	}
	if !(c.FileRowRead < c.RowTransmit+c.ServerRowCPU) {
		t.Error("file read must be cheaper than fetching a row through a server cursor")
	}
	if !(c.ServerRowCPU < c.FileRowRead) {
		t.Error("server-side row evaluation must be cheaper than a middleware file read (the Figure 8a crossover)")
	}
	if !(c.TIDFetch > c.ServerPageIO/4) {
		t.Error("TID fetch must be random-I/O expensive")
	}
	if !(c.QueryStartup > 100*c.ServerRowCPU) {
		t.Error("per-statement startup must dominate per-row costs on small inputs")
	}
}

// TestClockMonotoneProperty: any sequence of non-negative charges leaves the
// clock equal to the sum of cost*count and never decreases it.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		m := NewDefaultMeter()
		var want int64
		for i, s := range steps {
			cost := int64(s % 17)
			n := int64(s % 5)
			c := Counter(i % int(numCounters))
			before := m.Now()
			m.Charge(c, cost, n)
			want += cost * n
			if m.Now() < before {
				return false
			}
		}
		return m.Now() == time.Duration(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForkJoinSumsCountersMaxClock(t *testing.T) {
	m := NewDefaultMeter()
	m.Charge(CtrBatches, 500, 1) // pre-fork state survives the join

	lanes := m.Fork(3)
	lanes[0].Charge(CtrServerRows, 100, 10) // elapsed 1000
	lanes[1].Charge(CtrServerRows, 100, 25) // elapsed 2500 (slowest)
	lanes[2].Charge(CtrCCUpdates, 60, 5)    // elapsed 300
	m.Join(lanes)

	if got := m.Count(CtrServerRows); got != 35 {
		t.Errorf("joined server rows = %d, want 35 (counters must sum)", got)
	}
	if got := m.Count(CtrCCUpdates); got != 5 {
		t.Errorf("joined cc updates = %d, want 5", got)
	}
	if got := m.Count(CtrBatches); got != 1 {
		t.Errorf("pre-fork counter = %d, want 1", got)
	}
	want := time.Duration(500 + 2500) // pre-fork + max lane, not the sum
	if got := m.Now(); got != want {
		t.Errorf("joined clock = %v, want %v (max over lanes)", got, want)
	}
}

func TestForkLanesShareCosts(t *testing.T) {
	m := NewDefaultMeter()
	for i, l := range m.Fork(2) {
		if l.Costs() != m.Costs() {
			t.Errorf("lane %d has different costs", i)
		}
		if l.Now() != 0 || l.Count(CtrBatches) != 0 {
			t.Errorf("lane %d not zeroed", i)
		}
	}
}

func TestJoinEmptyLanesIsNoOp(t *testing.T) {
	m := NewDefaultMeter()
	m.Charge(CtrBatches, 1000, 2)
	before := m.Snapshot()
	m.Join(m.Fork(4))
	if m.Since(before) != 0 || m.CountSince(before, CtrBatches) != 0 {
		t.Error("joining idle lanes changed the meter")
	}
}

// chargeRec records observer callbacks for assertions.
type chargeRec struct {
	c     Counter
	n     int64
	total int64
	nowNS int64
}

type recObserver struct{ recs []chargeRec }

func (r *recObserver) ObserveCharge(c Counter, n, total, nowNS int64) {
	r.recs = append(r.recs, chargeRec{c, n, total, nowNS})
}

func TestChargeObserver(t *testing.T) {
	m := NewDefaultMeter()
	obs := &recObserver{}
	m.SetObserver(obs)

	m.Charge(CtrMemRowsRead, 10, 3)
	if len(obs.recs) != 1 {
		t.Fatalf("observer calls = %d, want 1", len(obs.recs))
	}
	got := obs.recs[0]
	want := chargeRec{CtrMemRowsRead, 3, 3, 30}
	if got != want {
		t.Fatalf("observed %+v, want %+v", got, want)
	}

	// Join notifies once per counter that moved, with the post-fold totals and
	// the post-fold clock; lanes never inherit the observer.
	lanes := m.Fork(2)
	for _, l := range lanes {
		if l.obs != nil {
			t.Fatal("lane inherited observer")
		}
	}
	lanes[0].Charge(CtrMemRowsRead, 10, 2)
	lanes[1].Charge(CtrFileRowsRead, 5, 4)
	if len(obs.recs) != 1 {
		t.Fatalf("lane charges reached parent observer: %d calls", len(obs.recs))
	}
	obs.recs = nil
	m.Join(lanes)
	if len(obs.recs) != 2 {
		t.Fatalf("Join observer calls = %d, want 2 (one per moved counter)", len(obs.recs))
	}
	joinNow := int64(m.Now())
	for _, r := range obs.recs {
		if r.nowNS != joinNow {
			t.Fatalf("Join notification clock = %d, want post-fold %d", r.nowNS, joinNow)
		}
	}

	// Detach: no further notifications.
	m.SetObserver(nil)
	obs.recs = nil
	m.Charge(CtrMemRowsRead, 10, 1)
	if len(obs.recs) != 0 {
		t.Fatal("detached observer still notified")
	}
}

// TestChargeNilObserverAllocs pins the disabled-observability hot path:
// Charge with no observer attached must not allocate.
func TestChargeNilObserverAllocs(t *testing.T) {
	m := NewDefaultMeter()
	allocs := testing.AllocsPerRun(1000, func() {
		m.Charge(CtrMemRowsRead, 10, 1)
	})
	if allocs != 0 {
		t.Fatalf("Charge with nil observer allocated %v times per run, want 0", allocs)
	}
}

func TestCountersSince(t *testing.T) {
	m := NewDefaultMeter()
	m.Charge(CtrMemRowsRead, 1, 5)
	snap := m.Snapshot()
	m.Charge(CtrMemRowsRead, 1, 2)
	m.Charge(CtrFileRowsRead, 1, 7)
	d := m.CountersSince(snap)
	if len(d) != 2 || d[CtrMemRowsRead] != 2 || d[CtrFileRowsRead] != 7 {
		t.Fatalf("CountersSince = %v", d)
	}
}
