package sim

import (
	"reflect"
	"testing"
	"time"
)

func TestClocksSelection(t *testing.T) {
	c := NewClocks(DefaultCosts())
	c.Open(1, 100)
	c.Open(2, 50)
	c.Open(3, 100)

	if id, ok := c.Next(nil); !ok || id != 2 {
		t.Fatalf("Next = %d,%v, want 2 (furthest behind)", id, ok)
	}
	c.Meter(2).Advance(200)
	// 1 and 3 tie at 100: lower id wins.
	if id, _ := c.Next(nil); id != 1 {
		t.Fatalf("tie broke to %d, want 1", id)
	}
	// Eligibility restricts the candidate set.
	if id, _ := c.Next(func(id int) bool { return id == 3 }); id != 3 {
		t.Fatalf("eligible-restricted Next picked %d", id)
	}
	if _, ok := c.Next(func(int) bool { return false }); ok {
		t.Fatal("Next found a session with nothing eligible")
	}
	if c.MaxNow() != 250*time.Nanosecond {
		t.Fatalf("MaxNow = %v", c.MaxNow())
	}
	c.Close(2)
	if c.Len() != 2 || c.MaxNow() != 100*time.Nanosecond {
		t.Fatalf("after close: len %d, max %v", c.Len(), c.MaxNow())
	}
}

func TestAbsorbDelta(t *testing.T) {
	src := NewDefaultMeter()
	dst := NewDefaultMeter()
	base := src.CounterVec()
	baseNow := src.Now()
	src.Charge(CtrServerPages, 10, 5)
	src.Charge(CtrServerScans, 3, 1)

	dst.AbsorbDelta(src.CounterVec().Delta(base), int64(src.Now()-baseNow))
	if dst.Count(CtrServerPages) != 5 || dst.Count(CtrServerScans) != 1 {
		t.Fatalf("absorbed counters: pages=%d scans=%d", dst.Count(CtrServerPages), dst.Count(CtrServerScans))
	}
	if dst.Now() != 53*time.Nanosecond {
		t.Fatalf("absorbed clock = %v, want 53ns", dst.Now())
	}
}

func TestArrivalsDeterministicAndBounded(t *testing.T) {
	a := Arrivals(42, 8, 1000)
	b := Arrivals(42, 8, 1000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if reflect.DeepEqual(a, Arrivals(43, 8, 1000)) {
		t.Fatal("different seeds produced the same schedule")
	}
	var prev int64
	for i, v := range a {
		if v < prev {
			t.Fatalf("arrival %d = %d before predecessor %d", i, v, prev)
		}
		prev = v
	}
	// Gaps are uniform in [0, 2*mean): n arrivals fit under n*2*mean.
	if last := a[len(a)-1]; last >= int64(len(a))*2000 {
		t.Fatalf("last arrival %d outside bound", last)
	}
	if got := Arrivals(7, 3, 0); got[0] != 0 || got[2] != 0 {
		t.Fatalf("zero mean gap must yield zero offsets: %v", got)
	}
}
