package sim

import (
	"fmt"
	"sort"
	"time"
)

// Multi-clock harness for multi-tenant simulation. Each concurrent session
// owns a private Meter (its virtual clock), pre-advanced to the session's
// arrival offset; a deterministic coordinator repeatedly picks the session
// whose clock is furthest behind and lets it run one step. Because every
// clock is a pure function of the work charged to it and selection ties
// break on session id, the whole fleet simulates identically regardless of
// host scheduling — the same guarantee Fork/Join gives worker lanes, lifted
// to whole sessions.

// Clocks tracks the per-session virtual clocks of a fleet.
type Clocks struct {
	costs Costs
	ids   []int // sorted; iteration order for determinism
	m     map[int]*Meter
}

// NewClocks returns an empty harness; every clock it opens shares one cost
// model.
func NewClocks(costs Costs) *Clocks {
	return &Clocks{costs: costs, m: make(map[int]*Meter)}
}

// Open creates the clock for a new session, pre-advanced to its arrival
// offset, and returns its meter. Session ids must be unique.
func (c *Clocks) Open(id int, arrivalNS int64) *Meter {
	if _, ok := c.m[id]; ok {
		panic(fmt.Sprintf("sim: clock %d already open", id))
	}
	m := NewMeter(c.costs)
	m.Advance(arrivalNS)
	c.m[id] = m
	i := sort.SearchInts(c.ids, id)
	c.ids = append(c.ids, 0)
	copy(c.ids[i+1:], c.ids[i:])
	c.ids[i] = id
	return m
}

// Meter returns the clock of an open session.
func (c *Clocks) Meter(id int) *Meter {
	m, ok := c.m[id]
	if !ok {
		panic(fmt.Sprintf("sim: clock %d not open", id))
	}
	return m
}

// Close removes a finished session's clock from the selection set.
func (c *Clocks) Close(id int) {
	if _, ok := c.m[id]; !ok {
		panic(fmt.Sprintf("sim: clock %d not open", id))
	}
	delete(c.m, id)
	i := sort.SearchInts(c.ids, id)
	c.ids = append(c.ids[:i], c.ids[i+1:]...)
}

// Next returns the open session whose clock is furthest behind — the one
// that runs next under fair virtual-time scheduling — restricted to sessions
// the eligible predicate accepts (nil means all). Ties break on the lower
// id. The second result is false when no session is eligible.
func (c *Clocks) Next(eligible func(id int) bool) (int, bool) {
	best, found := 0, false
	var bestNow time.Duration
	for _, id := range c.ids {
		if eligible != nil && !eligible(id) {
			continue
		}
		now := c.m[id].Now()
		if !found || now < bestNow || (now == bestNow && id < best) {
			best, bestNow, found = id, now, true
		}
	}
	return best, found
}

// MaxNow returns the latest clock among open sessions — the fleet makespan
// so far. Zero when no clock is open.
func (c *Clocks) MaxNow() time.Duration {
	var max time.Duration
	for _, id := range c.ids {
		if now := c.m[id].Now(); now > max {
			max = now
		}
	}
	return max
}

// Len returns the number of open clocks.
func (c *Clocks) Len() int { return len(c.ids) }

// AbsorbDelta folds externally metered work into m: counters add and the
// clock advances by the elapsed time. It models a session waiting on work
// performed under a foreign clock domain — the engine meter during a SQL
// fallback, or a shared scan's io meter — while keeping per-domain counter
// accounting exact. The observer, if any, sees the folded deltas like a
// Join.
func (m *Meter) AbsorbDelta(d CounterVec, elapsedNS int64) {
	if elapsedNS < 0 {
		panic("sim: negative absorb elapsed")
	}
	for i := range d {
		if d[i] < 0 {
			panic("sim: negative absorb delta")
		}
		m.counts[i] += d[i]
	}
	m.now += elapsedNS
	if m.obs != nil {
		for i, dv := range d {
			if dv != 0 {
				m.obs.ObserveCharge(Counter(i), dv, m.counts[i], m.now)
			}
		}
	}
}

// Arrivals returns n session arrival offsets in virtual nanoseconds:
// non-decreasing, gap i drawn uniformly from [0, 2*meanGapNS) by a seeded
// splitmix64 stream. Pure integer arithmetic, so the schedule is identical
// on every platform; the first session arrives after one gap, not at zero,
// so even session 0's start depends on the seed.
func Arrivals(seed int64, n int, meanGapNS int64) []int64 {
	if meanGapNS < 0 {
		panic("sim: negative arrival gap")
	}
	out := make([]int64, n)
	state := uint64(seed)
	var t int64
	for i := range out {
		// splitmix64 step (Steele et al.); deterministic and stdlib-free.
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if meanGapNS > 0 {
			t += int64(z % uint64(2*meanGapNS))
		}
		out[i] = t
	}
	return out
}
