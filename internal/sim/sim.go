// Package sim provides the deterministic virtual clock, cost model and
// operation counters that every subsystem in this repository charges into.
//
// The paper reports wall-clock seconds measured on 1999-era hardware
// (Pentium-II, 128 MB RAM, Microsoft SQL Server 7.0). Re-measuring wall time
// on a modern host would neither match the paper's absolute numbers nor be
// deterministic, so instead every data-touching operation — a page read at
// the server, a row shipped over the "wire" to the middleware, a row read
// back from a middleware staging file, a row counted from middleware memory,
// a SQL aggregation step — advances a virtual clock by a calibrated cost.
// The *relative* magnitudes of these costs encode the orderings the paper's
// results depend on (server cursor fetch >> local file read >> in-memory
// read), so the shapes of the figures are reproduced deterministically.
//
// A Meter combines the clock with named counters (scans started, pages read,
// rows transmitted, ...) so experiments can report both virtual time and the
// underlying operation counts.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Costs is the calibrated cost model, in virtual nanoseconds per operation.
// The defaults (see DefaultCosts) are chosen so that a sequential scan of a
// 50 MB table through a server cursor costs a few virtual seconds, matching
// the scale of the paper's figures.
type Costs struct {
	// Server-side costs.
	ServerPageIO   int64 // read one 8 KB page from server disk
	ServerRowCPU   int64 // evaluate the pushed-down filter on one row at the server
	RowTransmit    int64 // ship one matching row from server to middleware
	CursorOpen     int64 // initiate a server cursor scan
	QueryStartup   int64 // parse/optimize one SQL statement at the server
	SQLAggRow      int64 // aggregate one row in a server-side GROUP BY
	IndexProbe     int64 // traverse one index node / probe one hash bucket
	TIDFetch       int64 // fetch one record by TID (random I/O amortized)
	ServerRowWrite int64 // insert one row into a server-side (temp) table

	// Columnar scan-path costs (the vectorized per-block charge shape; the
	// row path above never charges these).
	ColRowEval     int64 // evaluate the pushed-down filter on one row of a columnar block
	ColRowTransmit int64 // ship one matching row of a columnar block to the middleware

	// Middleware-side costs.
	FileRowWrite int64 // append one row to a middleware staging file
	FileRowRead  int64 // read one row back from a middleware staging file
	FileOpen     int64 // create/open one middleware staging file
	MemRowRead   int64 // touch one row staged in middleware memory
	CCUpdate     int64 // update the counts (CC) table for one (row, node) pair
	CCBump       int64 // bump one dense histogram cell for one selected row (vectorized kernel)
	CCFoldEntry  int64 // fold one distinct histogram cell into the treap, once per block
	MergeEntry   int64 // fold one worker-shard CC entry into the merged node table

	// Client-side costs.
	ClientRowLoad int64 // materialize one extracted row at the client (ExtractAll baseline)

	// Scoring costs (the in-database prediction path; the in-client
	// dtree.Evaluate loop never charges these).
	ScoreRowEval   int64 // per-row fixed overhead of the vectorized scoring kernel
	ModelNodeProbe int64 // walk one compiled-model node for one row (code-space compare)
}

// DefaultCosts returns the calibrated default cost model.
//
// Relative ordering (per row): server cursor fetch (RowTransmit + ServerRowCPU
// + amortized ServerPageIO) ≈ 13 µs >> file read ≈ 1.5 µs >> memory read
// ≈ 0.15 µs. A 50 MB table (≈ 500 k rows of 100 bytes) therefore costs
// roughly 6.5 virtual seconds per full server scan, in line with the scale
// of the paper's charts.
func DefaultCosts() Costs {
	return Costs{
		ServerPageIO:   200_000, // 200 µs per 8 KB page
		ServerRowCPU:   1_000,
		RowTransmit:    8_000,
		CursorOpen:     5_000_000,  // 5 ms per scan initiation
		QueryStartup:   20_000_000, // 20 ms per SQL statement
		SQLAggRow:      2_000,
		IndexProbe:     4_000,
		TIDFetch:       80_000, // random I/O dominated
		ServerRowWrite: 15_000,

		// The columnar block scan amortizes cursor bookkeeping, predicate
		// dispatch and the wire protocol over 1024-row blocks: filter
		// evaluation is a dictionary-code compare per condition (~1/8 of the
		// row-at-a-time interpreter) and block transfer quarters the per-row
		// transmit overhead. Page I/O is charged at the unchanged
		// ServerPageIO — the columnar win on I/O comes from reading fewer,
		// denser pages (dictionary packing and zone-map skipping), not from a
		// cheaper page.
		ColRowEval:     125,
		ColRowTransmit: 2_000,

		// Middleware files live on the middleware machine's disk, so
		// reading them is not fundamentally cheaper per row than the
		// server's own sequential scan (~3.6 µs/row including page I/O);
		// the file's advantage is avoiding the per-row wire transfer, the
		// server's advantage is filtering before transmitting (§4.3.1,
		// Figure 8a's crossover).
		FileRowWrite: 8_000,
		FileRowRead:  6_000,
		FileOpen:     1_000_000, // 1 ms
		MemRowRead:   150,
		CCUpdate:     60, // per (row, attribute-set, node) counting step, charged per row per node
		CCBump:       8,  // dense array increment per selected row (no treap probe)
		CCFoldEntry:  80, // treap insert per distinct cell, once per (node, block)
		MergeEntry:   80, // per shard entry: one treap lookup/insert plus a count add

		ClientRowLoad: 500,

		// Scoring walks the compiled model in dictionary-code space: per row
		// a fixed dispatch overhead plus one probe per visited node, each a
		// uint16 compare — far below the per-row interpreter costs of the
		// client loop (ClientRowLoad + RowTransmit per row).
		ScoreRowEval:   100,
		ModelNodeProbe: 40,
	}
}

// Counter identifies one named operation counter on a Meter.
type Counter int

// The counters tracked by a Meter.
const (
	CtrServerScans       Counter = iota // server cursor scans initiated
	CtrServerPages                      // server pages read
	CtrServerRows                       // rows evaluated at the server
	CtrRowsTransmitted                  // rows shipped server -> middleware
	CtrSQLStatements                    // SQL statements executed
	CtrSQLAggRows                       // rows aggregated server-side
	CtrIndexProbes                      // index probes
	CtrTIDFetches                       // record fetches by TID
	CtrFileRowsWritten                  // rows written to middleware files
	CtrFileRowsRead                     // rows read from middleware files
	CtrFilesCreated                     // middleware staging files created
	CtrMemRowsRead                      // rows read from middleware memory
	CtrCCUpdates                        // counts-table updates
	CtrClientRows                       // rows materialized at the client
	CtrBatches                          // middleware scheduling batches executed
	CtrSQLFallbacks                     // nodes serviced by the SQL fallback path
	CtrShardMergeEntries                // CC shard entries folded into merged node tables
	CtrColGroupsScanned                 // columnar row groups scanned
	CtrColGroupsSkipped                 // columnar row groups skipped via zone maps
	CtrColBlocks                        // columnar 1024-row blocks evaluated
	CtrCCFolds                          // distinct histogram cells folded into CC treaps
	CtrScoreRows                        // rows scored by the in-database prediction path
	CtrScoreBlocks                      // columnar blocks pushed through the scoring kernel
	CtrModelProbes                      // compiled-model nodes walked while scoring
	numCounters
)

var counterNames = [...]string{
	CtrServerScans:       "server_scans",
	CtrServerPages:       "server_pages_read",
	CtrServerRows:        "server_rows_evaluated",
	CtrRowsTransmitted:   "rows_transmitted",
	CtrSQLStatements:     "sql_statements",
	CtrSQLAggRows:        "sql_agg_rows",
	CtrIndexProbes:       "index_probes",
	CtrTIDFetches:        "tid_fetches",
	CtrFileRowsWritten:   "file_rows_written",
	CtrFileRowsRead:      "file_rows_read",
	CtrFilesCreated:      "files_created",
	CtrMemRowsRead:       "mem_rows_read",
	CtrCCUpdates:         "cc_updates",
	CtrClientRows:        "client_rows_loaded",
	CtrBatches:           "mw_batches",
	CtrSQLFallbacks:      "sql_fallbacks",
	CtrShardMergeEntries: "shard_merge_entries",
	CtrColGroupsScanned:  "col_groups_scanned",
	CtrColGroupsSkipped:  "col_groups_skipped",
	CtrColBlocks:         "col_blocks",
	CtrCCFolds:           "cc_folds",
	CtrScoreRows:         "score_rows",
	CtrScoreBlocks:       "score_blocks",
	CtrModelProbes:       "model_node_probes",
}

// Counters returns every counter in declaration order.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for c := Counter(0); c < numCounters; c++ {
		out[c] = c
	}
	return out
}

// String returns the snake_case name of the counter.
func (c Counter) String() string {
	if c < 0 || int(c) >= len(counterNames) {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// ChargeObserver receives a callback after every Charge on an observed
// Meter. Observers are pure readers: they run after the clock and counter
// have been updated and must not charge the meter (directly or indirectly),
// so attaching one can never perturb a simulated result. The metrics layer
// (internal/obs) uses this hook to sample counter time series against the
// virtual clock.
type ChargeObserver interface {
	// ObserveCharge reports one accounting event: counter c advanced by n to
	// the cumulative value total, with the virtual clock now at nowNS.
	ObserveCharge(c Counter, n, total, nowNS int64)
}

// Meter is a virtual clock plus operation counters. The zero value is not
// ready for use; construct one with NewMeter. A Meter is not safe for
// concurrent use: every simulated thread of control charges its own Meter.
// The single-threaded systems in this repository use one Meter throughout;
// the parallel scan pipeline gives each worker goroutine a private lane
// meter (Fork) and deterministically folds the lanes back (Join), so no
// Meter is ever shared between goroutines.
type Meter struct {
	costs  Costs
	now    int64 // virtual nanoseconds since start
	counts [numCounters]int64
	obs    ChargeObserver
}

// NewMeter returns a Meter using the given cost model.
func NewMeter(c Costs) *Meter { return &Meter{costs: c} }

// NewDefaultMeter returns a Meter using DefaultCosts.
func NewDefaultMeter() *Meter { return NewMeter(DefaultCosts()) }

// Costs returns the meter's cost model.
func (m *Meter) Costs() Costs { return m.costs }

// Now returns the current virtual time.
func (m *Meter) Now() time.Duration { return time.Duration(m.now) }

// Advance moves the virtual clock forward by d virtual nanoseconds.
func (m *Meter) Advance(d int64) {
	if d < 0 {
		panic("sim: negative clock advance")
	}
	m.now += d
}

// Charge advances the clock by n times the unit cost and increments the
// counter by n. It is the single point through which all simulated work is
// accounted. With no observer attached the only overhead over the raw
// arithmetic is one nil check — zero allocations (the disabled-observability
// hot path; asserted by TestChargeNilObserverAllocs).
func (m *Meter) Charge(c Counter, unitCost int64, n int64) {
	if n < 0 {
		panic("sim: negative charge count")
	}
	m.counts[c] += n
	m.now += unitCost * n
	if m.obs != nil {
		m.obs.ObserveCharge(c, n, m.counts[c], m.now)
	}
}

// SetObserver attaches (or, with nil, detaches) a charge observer. Lane
// meters created by Fork never inherit the observer: their work surfaces on
// the parent as deltas when Join folds them back.
func (m *Meter) SetObserver(o ChargeObserver) { m.obs = o }

// Count returns the current value of a counter.
func (m *Meter) Count(c Counter) int64 { return m.counts[c] }

// Fork returns n child meters ("lanes") sharing the parent's cost table,
// each with a zeroed clock and zeroed counters. Each lane models one worker
// of a parallel scan: the worker charges all of its simulated work into its
// own lane, so goroutine scheduling on the host can never affect any meter.
// The parent must not be charged between Fork and the matching Join, and
// each lane must be used by exactly one goroutine.
func (m *Meter) Fork(n int) []*Meter {
	if n < 1 {
		panic("sim: Fork needs at least one lane")
	}
	lanes := make([]*Meter, n)
	for i := range lanes {
		lanes[i] = NewMeter(m.costs)
	}
	return lanes
}

// Join folds forked lanes back into the parent. Counters sum — the total
// work performed is conserved — but the clock advances by max(lane elapsed):
// the lanes ran concurrently, so the batch takes as long as its slowest
// worker. This models the paper's multi-CPU middleware host deterministically:
// each lane's final state is a pure function of its data partition, so the
// joined clock is bit-for-bit reproducible regardless of GOMAXPROCS or
// goroutine interleaving. Post-barrier work that is inherently serial (e.g.
// folding CC shards into the merged table, Costs.MergeEntry per entry) is
// charged by the caller on the parent after Join.
func (m *Meter) Join(lanes []*Meter) {
	var max int64
	var deltas [numCounters]int64
	for _, l := range lanes {
		for i := range l.counts {
			deltas[i] += l.counts[i]
		}
		if l.now > max {
			max = l.now
		}
	}
	for i := range deltas {
		m.counts[i] += deltas[i]
	}
	m.now += max
	if m.obs != nil {
		for i, d := range deltas {
			if d != 0 {
				m.obs.ObserveCharge(Counter(i), d, m.counts[i], m.now)
			}
		}
	}
}

// Reset zeroes the clock and all counters, keeping the cost model.
func (m *Meter) Reset() {
	m.now = 0
	m.counts = [numCounters]int64{}
}

// Snapshot captures the meter state so a caller can compute deltas around a
// region of interest.
type Snapshot struct {
	Now    time.Duration
	Counts map[Counter]int64
}

// Snapshot returns a copy of the current clock and counters.
func (m *Meter) Snapshot() Snapshot {
	s := Snapshot{Now: m.Now(), Counts: make(map[Counter]int64, numCounters)}
	for c := Counter(0); c < numCounters; c++ {
		if m.counts[c] != 0 {
			s.Counts[c] = m.counts[c]
		}
	}
	return s
}

// Since returns the virtual time elapsed since the snapshot was taken.
func (m *Meter) Since(s Snapshot) time.Duration { return m.Now() - s.Now }

// CountSince returns the counter delta since the snapshot was taken.
func (m *Meter) CountSince(s Snapshot, c Counter) int64 {
	return m.counts[c] - s.Counts[c]
}

// CountersSince returns every non-zero counter delta since the snapshot was
// taken, keyed by counter.
func (m *Meter) CountersSince(s Snapshot) map[Counter]int64 {
	out := make(map[Counter]int64)
	for c := Counter(0); c < numCounters; c++ {
		if d := m.counts[c] - s.Counts[c]; d != 0 {
			out[c] = d
		}
	}
	return out
}

// CounterVec is a dense copy of every counter value, indexed by Counter in
// declaration order. It is the allocation-light companion of Snapshot for
// span-boundary captures (internal/obs): copying the array is one memmove,
// no map, so tracing can snapshot counters at every span start and end
// without perturbing the simulation or the garbage collector.
type CounterVec [numCounters]int64

// CounterVec returns the current value of every counter as a dense vector.
func (m *Meter) CounterVec() CounterVec { return m.counts }

// Delta returns v - base, elementwise: the counter movement between two
// boundary captures.
func (v CounterVec) Delta(base CounterVec) CounterVec {
	for i := range v {
		v[i] -= base[i]
	}
	return v
}

// Sub subtracts o from v in place (used to turn inclusive counter deltas
// into exclusive ones by removing child-span contributions).
func (v *CounterVec) Sub(o *CounterVec) {
	for i := range v {
		v[i] -= o[i]
	}
}

// Add accumulates o into v in place.
func (v *CounterVec) Add(o *CounterVec) {
	for i := range v {
		v[i] += o[i]
	}
}

// Get returns the vector's value for counter c (0 when out of range).
func (v *CounterVec) Get(c Counter) int64 {
	if c < 0 || c >= numCounters {
		return 0
	}
	return v[c]
}

// IsZero reports whether every counter in the vector is zero.
func (v *CounterVec) IsZero() bool {
	for _, n := range v {
		if n != 0 {
			return false
		}
	}
	return true
}

// EachNonZero calls fn for every non-zero counter in declaration order —
// deterministic by construction, unlike ranging over a map snapshot.
func (v *CounterVec) EachNonZero(fn func(c Counter, n int64)) {
	for i, n := range v {
		if n != 0 {
			fn(Counter(i), n)
		}
	}
}

// String renders the non-zero counters, sorted by name, plus the clock.
func (m *Meter) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v", m.Now())
	type kv struct {
		name string
		v    int64
	}
	var kvs []kv
	for c := Counter(0); c < numCounters; c++ {
		if m.counts[c] != 0 {
			kvs = append(kvs, kv{c.String(), m.counts[c]})
		}
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].name < kvs[j].name })
	for _, e := range kvs {
		fmt.Fprintf(&b, " %s=%d", e.name, e.v)
	}
	return b.String()
}
