package cc

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

func benchRows(n int) []data.Row {
	rng := rand.New(rand.NewSource(1))
	rows := make([]data.Row, n)
	for i := range rows {
		rows[i] = data.Row{
			data.Value(rng.Intn(4)), data.Value(rng.Intn(4)), data.Value(rng.Intn(4)),
			data.Value(rng.Intn(4)), data.Value(rng.Intn(10)),
		}
	}
	return rows
}

// BenchmarkAddRow measures the scan-based-counting inner loop: one row
// accumulated into a counts table over 4 attributes + class.
func BenchmarkAddRow(b *testing.B) {
	rows := benchRows(1024)
	attrs := []int{0, 1, 2, 3, 4}
	t := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.AddRow(rows[i&1023], attrs)
	}
}

// BenchmarkClassVector measures reading one (attr, value) class vector, the
// split-scoring hot path.
func BenchmarkClassVector(b *testing.B) {
	t := New()
	attrs := []int{0, 1, 2, 3, 4}
	for _, r := range benchRows(4096) {
		t.AddRow(r, attrs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.ClassVector(i&3, data.Value(i&3), 10)
	}
}

// BenchmarkSortedInsert inserts strictly increasing keys — the adversarial
// monotone pattern produced by sequential attribute codes. The old unbalanced
// BST degenerated to a linked list here (O(n) per insert, quadratic total);
// the treap's hash-derived priorities keep each insert O(log n), so ns/op
// stays flat as b.N grows.
func BenchmarkSortedInsert(b *testing.B) {
	t := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Add(0, data.Value(i), 0, 1)
	}
}

// BenchmarkMerge measures folding one 4k-entry shard into a same-sized table,
// the per-worker post-barrier cost of the parallel scan pipeline.
func BenchmarkMerge(b *testing.B) {
	attrs := []int{0, 1, 2, 3, 4}
	shard := New()
	for _, r := range benchRows(4096) {
		shard.AddRow(r, attrs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dst := shard.Clone()
		b.StartTimer()
		dst.Merge(shard)
	}
}

// BenchmarkEstimate measures the scheduler's Est_cc computation.
func BenchmarkEstimate(b *testing.B) {
	t := New()
	attrs := []int{0, 1, 2, 3, 4}
	for _, r := range benchRows(4096) {
		t.AddRow(r, attrs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EstimateEntries(t, attrs[:4], 1000, 4096, 10)
	}
}
