package cc

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

// depth returns the height of the subtree rooted at n.
func depth(n *node) int {
	if n == nil {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// checkTreap verifies both treap invariants: BST order over keys and
// max-heap order over priorities.
func checkTreap(t *testing.T, n *node) {
	t.Helper()
	if n == nil {
		return
	}
	if n.left != nil {
		if !n.left.key.less(n.key) {
			t.Fatalf("BST order violated: %v not < %v", n.left.key, n.key)
		}
		if n.left.prio > n.prio {
			t.Fatalf("heap order violated at %v", n.key)
		}
	}
	if n.right != nil {
		if !n.key.less(n.right.key) {
			t.Fatalf("BST order violated: %v not < %v", n.key, n.right.key)
		}
		if n.right.prio > n.prio {
			t.Fatalf("heap order violated at %v", n.key)
		}
	}
	checkTreap(t, n.left)
	checkTreap(t, n.right)
}

// TestSortedInsertBalanced is the degeneration regression: monotone keys
// (sequential attribute codes from datagen) collapsed the old unbalanced BST
// to a linked list of depth n. The treap must stay at O(log n) depth.
func TestSortedInsertBalanced(t *testing.T) {
	tb := New()
	const n = 1 << 14 // log2 = 14
	for i := 0; i < n; i++ {
		tb.Add(0, data.Value(i), 0, 1)
	}
	if tb.Entries() != n {
		t.Fatalf("entries = %d, want %d", tb.Entries(), n)
	}
	// Random treaps have expected depth ~1.39*log2(n) and are exponentially
	// unlikely to exceed a few multiples of it; 4*log2(n) = 56 is generous,
	// while the degenerate BST would be 16384 deep.
	if d := depth(tb.root); d > 4*14 {
		t.Errorf("sorted inserts produced depth %d (> %d): tree degenerated", d, 4*14)
	}
	checkTreap(t, tb.root)

	// Reverse-sorted inserts are equally adversarial.
	rv := New()
	for i := n - 1; i >= 0; i-- {
		rv.Add(0, data.Value(i), 0, 1)
	}
	if d := depth(rv.root); d > 4*14 {
		t.Errorf("reverse-sorted inserts produced depth %d", d)
	}
	if !tb.Equal(rv) {
		t.Error("insertion order changed table contents")
	}
}

// TestTreapShapeDeterministic: the tree shape is a pure function of the key
// set, independent of insertion order (priorities are key hashes).
func TestTreapShapeDeterministic(t *testing.T) {
	keys := make([]Key, 0, 500)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		keys = append(keys, Key{Attr: rng.Intn(8), Val: data.Value(rng.Intn(50)), Class: data.Value(rng.Intn(4))})
	}
	build := func(perm []int) *Table {
		tb := New()
		for _, i := range perm {
			tb.Add(keys[i].Attr, keys[i].Val, keys[i].Class, 1)
		}
		return tb
	}
	perm := rng.Perm(len(keys))
	fwd := make([]int, len(keys))
	for i := range fwd {
		fwd[i] = i
	}
	a, b := build(fwd), build(perm)
	var shapeA, shapeB []Key
	collect := func(dst *[]Key) func(n *node) {
		var rec func(n *node)
		rec = func(n *node) {
			if n == nil {
				return
			}
			*dst = append(*dst, n.key) // pre-order encodes the shape
			rec(n.left)
			rec(n.right)
		}
		return rec
	}
	collect(&shapeA)(a.root)
	collect(&shapeB)(b.root)
	if len(shapeA) != len(shapeB) {
		t.Fatalf("shapes differ in size: %d vs %d", len(shapeA), len(shapeB))
	}
	for i := range shapeA {
		if shapeA[i] != shapeB[i] {
			t.Fatalf("shape differs at pre-order position %d: %v vs %v", i, shapeA[i], shapeB[i])
		}
	}
	checkTreap(t, a.root)
}

// TestMergeMatchesSequential: building shard tables over disjoint row
// partitions and merging them must equal one sequential build — the
// correctness contract of the parallel scan pipeline.
func TestMergeMatchesSequential(t *testing.T) {
	ds, want := buildRandom(900, 11)
	attrs := []int{0, 1, 2, 3, 4}
	for _, nparts := range []int{2, 3, 4, 7} {
		shards := make([]*Table, nparts)
		for p := 0; p < nparts; p++ {
			shards[p] = New()
			lo := p * ds.N() / nparts
			hi := (p + 1) * ds.N() / nparts
			for _, r := range ds.Rows[lo:hi] {
				shards[p].AddRow(r, attrs)
			}
		}
		merged := shards[0]
		for _, sh := range shards[1:] {
			merged.Merge(sh)
		}
		if !merged.Equal(want) {
			t.Fatalf("nparts=%d: merged shards differ from sequential build", nparts)
		}
		if merged.Rows() != want.Rows() {
			t.Fatalf("nparts=%d: rows = %d, want %d", nparts, merged.Rows(), want.Rows())
		}
		if merged.Bytes() != want.Bytes() {
			t.Fatalf("nparts=%d: bytes = %d, want %d", nparts, merged.Bytes(), want.Bytes())
		}
		checkTreap(t, merged.root)
	}
}

// TestMergeEmptyAndNil covers the degenerate merge inputs.
func TestMergeEmptyAndNil(t *testing.T) {
	tb := New()
	tb.Add(1, 2, 0, 5)
	tb.SetRows(3)
	tb.Merge(nil)
	tb.Merge(New())
	if tb.Entries() != 1 || tb.Rows() != 3 || tb.Count(1, 2, 0) != 5 {
		t.Errorf("merge of nil/empty changed the table: %v", tb)
	}
	empty := New()
	empty.Merge(tb)
	if !empty.Equal(tb) {
		t.Errorf("merge into empty: got %v, want %v", empty, tb)
	}
}
