package cc

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

// encodeColumn dictionary-encodes one column of rows: sorted distinct values
// plus a code per row, the same representation the columnar store produces.
func encodeColumn(rows []data.Row, col int) (dict []data.Value, codes []uint16) {
	seen := map[data.Value]int{}
	for _, r := range rows {
		if _, ok := seen[r[col]]; !ok {
			seen[r[col]] = 0
			dict = append(dict, r[col])
		}
	}
	// Sort the dictionary and assign codes by rank.
	for i := 1; i < len(dict); i++ {
		for j := i; j > 0 && dict[j] < dict[j-1]; j-- {
			dict[j], dict[j-1] = dict[j-1], dict[j]
		}
	}
	for i, v := range dict {
		seen[v] = i
	}
	codes = make([]uint16, len(rows))
	for i, r := range rows {
		codes[i] = uint16(seen[r[col]])
	}
	return dict, codes
}

// addManyOverRows drives AddMany exactly as the vectorized kernel does: one
// call per attribute over the block's selection vector, then one AddRows.
func addManyOverRows(t *Table, rows []data.Row, attrs []int, sel []int32, hist []int64) []int64 {
	classCol := len(rows[0]) - 1
	classDict, classCodes := encodeColumn(rows, classCol)
	for _, a := range attrs {
		dict, codes := encodeColumn(rows, a)
		hist, _ = t.AddMany(a, dict, codes, classDict, classCodes, sel, hist)
	}
	t.AddRows(int64(len(sel)))
	return hist
}

// TestAddManyFoldEquivalence asserts AddMany is fold-equivalent to the N
// sequential Add calls it batches: same entries, same counts, same row
// totals, same key order — including first-seen entries created mid-block and
// attributes of different arities.
func TestAddManyFoldEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	// Attribute arities deliberately differ (first-seen edge cases fire at
	// different rates per attribute); attr 2 is binary, attr 0 is wide.
	cards := []int{9, 3, 2, 5}
	const classCard = 3
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(400)
		rows := make([]data.Row, n)
		for i := range rows {
			r := make(data.Row, len(cards)+1)
			for j, c := range cards {
				r[j] = data.Value(rng.Intn(c))
			}
			r[len(cards)] = data.Value(rng.Intn(classCard))
			rows[i] = r
		}
		// A random selection vector, sometimes empty, sometimes everything.
		var sel []int32
		switch trial % 3 {
		case 0:
			for i := 0; i < n; i++ {
				sel = append(sel, int32(i))
			}
		case 1: // empty
		default:
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					sel = append(sel, int32(i))
				}
			}
		}
		attrs := []int{0, 1, 2, 3, len(cards)} // includes the class column, like ccWork.attrs

		seq := New()
		for _, i := range sel {
			seq.AddRow(rows[i], attrs)
		}
		batched := New()
		addManyOverRows(batched, rows, attrs, sel, nil)

		if !batched.Equal(seq) {
			t.Fatalf("trial %d: AddMany result differs from %d sequential AddRow calls:\nbatched: %s\nseq:     %s",
				trial, len(sel), batched, seq)
		}
		if batched.Rows() != int64(len(sel)) {
			t.Fatalf("trial %d: rows = %d, want %d", trial, batched.Rows(), len(sel))
		}
	}
}

// TestAddManyScratchReuse asserts the returned scratch buffer comes back
// zeroed and can be reused across calls (and across differently sized
// dictionaries) without perturbing results.
func TestAddManyScratchReuse(t *testing.T) {
	rows := []data.Row{
		{0, 2, 1}, {1, 0, 0}, {0, 1, 1}, {2, 2, 0}, {1, 1, 1},
	}
	sel := []int32{0, 1, 2, 3, 4}
	seq := New()
	for _, i := range sel {
		seq.AddRow(rows[i], []int{0, 1, 2})
	}
	batched := New()
	hist := addManyOverRows(batched, rows, []int{0, 1, 2}, sel, nil)
	for i, v := range hist {
		if v != 0 {
			t.Fatalf("scratch cell %d not re-zeroed: %d", i, v)
		}
	}
	// Second fold reusing the same scratch must double every count.
	addManyOverRows(batched, rows, []int{0, 1, 2}, sel, hist)
	seq2 := seq.Clone()
	seq2.Merge(seq)
	if !batched.Equal(seq2) {
		t.Fatalf("scratch reuse perturbed the fold:\nbatched: %s\nwant:    %s", batched, seq2)
	}
}

// TestAddManyFoldCount asserts the folded-cells result counts distinct
// (value, class) cells, the quantity the cost model charges per block.
func TestAddManyFoldCount(t *testing.T) {
	tab := New()
	dict := []data.Value{3, 7}
	classDict := []data.Value{0, 1}
	codes := []uint16{0, 0, 1, 1}
	classCodes := []uint16{0, 0, 0, 1}
	_, folded := tab.AddMany(2, dict, codes, classDict, classCodes, []int32{0, 1, 2, 3}, nil)
	if folded != 3 { // cells (3,0) x2, (7,0), (7,1)
		t.Fatalf("folded = %d, want 3", folded)
	}
	if got := tab.Count(2, 3, 0); got != 2 {
		t.Fatalf("count(2,3,0) = %d, want 2", got)
	}
	if tab.Entries() != 3 {
		t.Fatalf("entries = %d, want 3", tab.Entries())
	}
	_, folded = tab.AddMany(2, dict, codes, classDict, classCodes, nil, nil)
	if folded != 0 {
		t.Fatalf("empty selection folded %d cells, want 0", folded)
	}
}
