package cc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/data"
)

func TestAddAndCount(t *testing.T) {
	tb := New()
	if !tb.Add(0, 1, 2, 3) {
		t.Error("first Add should create an entry")
	}
	if tb.Add(0, 1, 2, 2) {
		t.Error("second Add to the same key should not create an entry")
	}
	if got := tb.Count(0, 1, 2); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := tb.Count(0, 1, 3); got != 0 {
		t.Errorf("absent Count = %d, want 0", got)
	}
	if tb.Entries() != 1 || tb.Bytes() != EntryBytes {
		t.Errorf("entries=%d bytes=%d", tb.Entries(), tb.Bytes())
	}
}

func TestAddRowCountsAllAttrs(t *testing.T) {
	tb := New()
	row := data.Row{2, 0, 1, 1} // attrs 0..2, class 1 at index 3
	tb.AddRow(row, []int{0, 1, 2, 3})
	if tb.Rows() != 1 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	for _, c := range []struct {
		attr int
		val  data.Value
	}{{0, 2}, {1, 0}, {2, 1}, {3, 1}} {
		if got := tb.Count(c.attr, c.val, 1); got != 1 {
			t.Errorf("Count(%d,%d,1) = %d, want 1", c.attr, c.val, got)
		}
	}
}

func buildRandom(n int, seed int64) (*data.Dataset, *Table) {
	rng := rand.New(rand.NewSource(seed))
	s := data.NewSchema(4, 3, 2)
	ds := data.NewDataset(s)
	for i := 0; i < n; i++ {
		ds.Append(data.Row{
			data.Value(rng.Intn(3)), data.Value(rng.Intn(3)),
			data.Value(rng.Intn(3)), data.Value(rng.Intn(3)),
			data.Value(rng.Intn(2)),
		})
	}
	return ds, FromDataset(ds, []int{0, 1, 2, 3, 4}, nil)
}

// TestAttrTotalsEqualRows: the central consistency invariant — for every
// counted attribute, the counts sum to the number of rows.
func TestAttrTotalsEqualRows(t *testing.T) {
	ds, tb := buildRandom(500, 1)
	for a := 0; a <= 4; a++ {
		var sum int64
		tb.Walk(func(k Key, c int64) {
			if k.Attr == a {
				sum += c
			}
		})
		if sum != int64(ds.N()) {
			t.Errorf("attr %d sums to %d, want %d", a, sum, ds.N())
		}
	}
}

func TestClassVectorAndTotals(t *testing.T) {
	ds, tb := buildRandom(300, 2)
	classCard := 2
	// ClassVector(a, v) must equal the direct count.
	for a := 0; a < 4; a++ {
		for v := data.Value(0); v < 3; v++ {
			vec := tb.ClassVector(a, v, classCard)
			for cls := data.Value(0); cls < 2; cls++ {
				var want int64
				for _, r := range ds.Rows {
					if r[a] == v && r.Class() == cls {
						want++
					}
				}
				if vec[cls] != want {
					t.Fatalf("ClassVector(%d,%d)[%d] = %d, want %d", a, v, cls, vec[cls], want)
				}
			}
		}
	}
	totals := tb.ClassTotals(0, classCard)
	hist := ds.ClassHistogram()
	if !reflect.DeepEqual(totals, hist) {
		t.Errorf("ClassTotals = %v, want %v", totals, hist)
	}
}

func TestValuesCardAttrs(t *testing.T) {
	tb := New()
	tb.Add(1, 5, 0, 1)
	tb.Add(1, 2, 0, 1)
	tb.Add(1, 2, 1, 1)
	tb.Add(3, 0, 0, 1)
	if got := tb.Values(1); !reflect.DeepEqual(got, []data.Value{2, 5}) {
		t.Errorf("Values(1) = %v", got)
	}
	if tb.Card(1) != 2 || tb.Card(3) != 1 || tb.Card(0) != 0 {
		t.Errorf("cards = %d %d %d", tb.Card(1), tb.Card(3), tb.Card(0))
	}
	if got := tb.Attrs(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("Attrs = %v", got)
	}
}

func TestValueTotal(t *testing.T) {
	ds, tb := buildRandom(400, 3)
	for v := data.Value(0); v < 3; v++ {
		var want int64
		for _, r := range ds.Rows {
			if r[2] == v {
				want++
			}
		}
		if got := tb.ValueTotal(2, v); got != want {
			t.Errorf("ValueTotal(2,%d) = %d, want %d", v, got, want)
		}
	}
}

func TestEqualAndClone(t *testing.T) {
	_, a := buildRandom(200, 4)
	_, b := buildRandom(200, 4)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("identical builds not Equal")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not Equal")
	}
	c.Add(0, 0, 0, 1)
	if a.Equal(c) {
		t.Error("modified clone still Equal")
	}
	_, d := buildRandom(200, 5)
	if a.Equal(d) {
		t.Error("different datasets Equal")
	}
}

func TestWalkOrderSorted(t *testing.T) {
	_, tb := buildRandom(300, 6)
	keys := tb.SortedKeys()
	var walked []Key
	tb.Walk(func(k Key, _ int64) { walked = append(walked, k) })
	if !reflect.DeepEqual(keys, walked) {
		t.Error("Walk order differs from sorted key order")
	}
	if !sort.SliceIsSorted(walked, func(i, j int) bool { return walked[i].less(walked[j]) }) {
		t.Error("walk order not sorted")
	}
}

func TestFromDatasetWithPredicate(t *testing.T) {
	ds, _ := buildRandom(300, 7)
	pred := func(r data.Row) bool { return r[0] == 1 }
	tb := FromDataset(ds, []int{1, 4}, pred)
	var want int64
	for _, r := range ds.Rows {
		if pred(r) {
			want++
		}
	}
	if tb.Rows() != want {
		t.Errorf("Rows = %d, want %d", tb.Rows(), want)
	}
	// Attribute 0 was not counted.
	if tb.Card(0) != 0 {
		t.Error("uncounted attribute present")
	}
}

func TestSetRows(t *testing.T) {
	tb := New()
	tb.SetRows(42)
	if tb.Rows() != 42 {
		t.Error("SetRows")
	}
}

func TestStringRendersEntries(t *testing.T) {
	tb := New()
	tb.Add(0, 1, 0, 2)
	if got := tb.String(); got != "cc{rows=0 entries=1 (0,1,0)=2}" {
		t.Errorf("String = %q", got)
	}
}

func TestEstimateEntries(t *testing.T) {
	// Parent: 100 rows, attrs {0,1} with cards 4 and 2, 3 classes seen.
	parent := New()
	for v := data.Value(0); v < 4; v++ {
		for c := data.Value(0); c < 3; c++ {
			parent.Add(0, v, c, 2)
		}
	}
	for v := data.Value(0); v < 2; v++ {
		for c := data.Value(0); c < 3; c++ {
			parent.Add(1, v, c, 2)
		}
	}
	parent.SetRows(100)

	// Child with half the rows keeping both attrs: ratio 0.5 of
	// (4+2) * 3 classes = 9.
	est := EstimateEntries(parent, []int{0, 1}, 50, 100, 3)
	if est != 9 {
		t.Errorf("est = %d, want 9", est)
	}
	// Dropping attr 0: 0.5 * 2 * 3 = 3.
	if est := EstimateEntries(parent, []int{1}, 50, 100, 3); est != 3 {
		t.Errorf("est = %d, want 3", est)
	}
	// Zero rows clamps to len(attrs).
	if est := EstimateEntries(parent, []int{0, 1}, 0, 100, 3); est != 2 {
		t.Errorf("zero-row est = %d", est)
	}
	// Tiny ratio clamps to at least one entry per attribute.
	if est := EstimateEntries(parent, []int{0, 1}, 1, 1000000, 3); est < 2 {
		t.Errorf("clamped est = %d", est)
	}
}

// TestEstimateIsDeterministicAndMonotone: Est_cc grows with child size.
func TestEstimateIsDeterministicAndMonotone(t *testing.T) {
	_, parent := buildRandom(500, 8)
	attrs := []int{0, 1, 2, 3}
	prev := int64(0)
	for _, rows := range []int64{10, 50, 100, 250, 500} {
		est := EstimateEntries(parent, attrs, rows, 500, 2)
		if est < prev {
			t.Errorf("estimate not monotone: %d rows -> %d (prev %d)", rows, est, prev)
		}
		if est2 := EstimateEntries(parent, attrs, rows, 500, 2); est2 != est {
			t.Error("estimate not deterministic")
		}
		prev = est
	}
}

// TestBSTAgainstMapProperty: the binary search tree agrees with a plain map
// under arbitrary add sequences.
func TestBSTAgainstMapProperty(t *testing.T) {
	type op struct {
		Attr  uint8
		Val   uint8
		Class uint8
		Delta uint8
	}
	f := func(ops []op) bool {
		tb := New()
		ref := map[Key]int64{}
		for _, o := range ops {
			k := Key{Attr: int(o.Attr % 5), Val: data.Value(o.Val % 7), Class: data.Value(o.Class % 3)}
			d := int64(o.Delta%9) + 1
			tb.Add(k.Attr, k.Val, k.Class, d)
			ref[k] += d
		}
		if tb.Entries() != len(ref) {
			return false
		}
		for k, v := range ref {
			if tb.Count(k.Attr, k.Val, k.Class) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
