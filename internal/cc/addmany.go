package cc

import "repro/internal/data"

// AddMany is the batched seam of the vectorized counting kernel: one call
// folds a whole selection vector's worth of (attr, value, class) increments
// into the table, replacing len(sel) sequential Add probes with a dense
// histogram bump plus one treap insert per distinct cell.
//
// codes and classCodes are dictionary-encoded column vectors (codes[i] indexes
// dict, classCodes[i] indexes classDict) and sel lists the selected row
// offsets. For every i in sel the count of (attr, dict[codes[i]],
// classDict[classCodes[i]]) is incremented by one. Because the fold visits
// the dense histogram in (code, classCode) order and both dictionaries are
// sorted ascending, entries are inserted in ascending key order — and the
// treap shape is a pure function of the key set anyway — so AddMany is
// fold-equivalent to the sequential Add calls in every observable way
// (asserted by TestAddManyFoldEquivalence).
//
// hist is an optional scratch buffer of at least len(dict)*len(classDict)
// cells; it must be all zeros on entry and is returned all zeros (the fold
// re-zeroes every cell it touched), so one buffer can be reused across calls
// without clearing. Pass nil to allocate. The returned slice is the
// (possibly grown) scratch buffer; the second result is the number of
// distinct (value, class) cells folded — the per-block treap work the cost
// model charges, as opposed to the per-row bumps.
func (t *Table) AddMany(attr int, dict []data.Value, codes []uint16, classDict []data.Value, classCodes []uint16, sel []int32, hist []int64) ([]int64, int) {
	nd, nc := len(dict), len(classDict)
	need := nd * nc
	if cap(hist) < need {
		hist = make([]int64, need)
	}
	hist = hist[:need]
	for _, i := range sel {
		hist[int(codes[i])*nc+int(classCodes[i])]++
	}
	folded := 0
	for v := 0; v < nd; v++ {
		row := hist[v*nc : (v+1)*nc]
		for c, n := range row {
			if n == 0 {
				continue
			}
			t.Add(attr, dict[v], classDict[c], n)
			folded++
			row[c] = 0
		}
	}
	return hist, folded
}

// AddRows advances the node row counter by n: the batched counterpart of the
// per-row bump AddRow performs, charged once per (node, block) by the
// vectorized kernel after its AddMany calls.
func (t *Table) AddRows(n int64) { t.rows += n }
