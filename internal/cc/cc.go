// Package cc implements the counts ("CC") tables of §2.2 of the paper: for
// one tree node, the co-occurrence count of every (attribute, value, class)
// combination present in the node's data. The CC table is the only
// information a sufficient-statistics-driven classifier needs about the data
// (Observation 1), and it is typically much smaller than the data and does
// not grow with the number of records (Observation 2).
//
// Per §5 of the paper, counts tables are stored as binary search trees keyed
// by (attribute, value, class); "because of the way points are sorted in the
// tree, retrieving a vector of counts for the states of a class correlated
// with a particular attribute and its state is efficient". This package
// keeps that representation (a search tree over the composite key, with
// in-order traversal grouping all classes of one (attr,value) together) and
// layers the derived quantities the classifier and the middleware scheduler
// need: class vectors, per-attribute cardinalities card(n,Aj), and memory
// footprints for the scheduler's budget.
//
// The tree is a treap: each node carries a priority derived by hashing its
// key, and rotations keep the structure a max-heap over priorities. A plain
// unbalanced BST degenerates to a linked list under the monotone key
// sequences that sequential attribute codes produce (sorted inserts turned
// AddRow into O(n) per entry); hashing the key gives each node a
// deterministic pseudo-random priority, so the expected depth is O(log n)
// for every insertion order while the shape — and therefore every walk,
// count and accounting result — remains a pure function of the key set.
package cc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
)

// Key identifies one counts-table entry: attribute index, attribute value,
// class value.
type Key struct {
	Attr  int
	Val   data.Value
	Class data.Value
}

// less orders keys by (Attr, Val, Class); this ordering makes the class
// vector for a given (attr, value) contiguous in an in-order walk.
func (k Key) less(o Key) bool {
	if k.Attr != o.Attr {
		return k.Attr < o.Attr
	}
	if k.Val != o.Val {
		return k.Val < o.Val
	}
	return k.Class < o.Class
}

type node struct {
	key         Key
	prio        uint64 // hash-derived treap priority (max-heap)
	count       int64
	left, right *node
}

// priority derives the node's treap priority from its key: a splitmix64-style
// bit mix over the packed (attr, val, class) fields. Deterministic — two
// tables holding the same key set always have the same shape, on every host.
func (k Key) priority() uint64 {
	x := uint64(uint32(k.Attr))<<42 ^ uint64(uint32(k.Val))<<21 ^ uint64(uint32(k.Class))
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// EntryBytes is the accounted in-memory footprint of one counts-table entry
// (key + count + two child pointers), used by the middleware's memory
// budgeting. It is a model constant: the treap priority is derived storage
// and is deliberately not accounted, keeping budget arithmetic identical to
// the original BST representation.
const EntryBytes = 40

// Table is one node's counts table. The zero value is an empty table ready
// for use.
type Table struct {
	root    *node
	entries int
	rows    int64
}

// New returns an empty counts table.
func New() *Table { return &Table{} }

// Entries returns the number of distinct (attr, value, class) combinations.
func (t *Table) Entries() int { return t.entries }

// Bytes returns the accounted memory footprint of the table.
func (t *Table) Bytes() int64 { return int64(t.entries) * EntryBytes }

// Rows returns the number of data rows accumulated into the table via
// AddRow (the node's data size |n|).
func (t *Table) Rows() int64 { return t.rows }

// Add increments the count for (attr, val, class) by delta, inserting the
// entry if absent. It reports whether a new entry was created.
func (t *Table) Add(attr int, val, class data.Value, delta int64) bool {
	k := Key{Attr: attr, Val: val, Class: class}
	created := false
	t.root = insert(t.root, k, delta, &created)
	if created {
		t.entries++
	}
	return created
}

// insert descends to the key's BST position and rotates the new node up
// while its priority exceeds its parent's, restoring the treap heap order.
// Recursion depth is the tree height, O(log n) in expectation.
func insert(n *node, k Key, delta int64, created *bool) *node {
	if n == nil {
		*created = true
		return &node{key: k, prio: k.priority(), count: delta}
	}
	switch {
	case k.less(n.key):
		n.left = insert(n.left, k, delta, created)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	case n.key.less(k):
		n.right = insert(n.right, k, delta, created)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	default:
		n.count += delta
	}
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// AddRow accumulates one data row over the attribute set attrs (indices into
// the row): for each listed attribute it increments the count of
// (attr, row[attr], row.Class()). It also advances the node row counter.
func (t *Table) AddRow(r data.Row, attrs []int) {
	cl := r.Class()
	for _, a := range attrs {
		t.Add(a, r[a], cl, 1)
	}
	t.rows++
}

// SetRows overrides the row counter; used when a table is reconstructed from
// a server-side aggregation rather than row-at-a-time counting.
func (t *Table) SetRows(n int64) { t.rows = n }

// Count returns the count for (attr, val, class), or 0 if absent.
func (t *Table) Count(attr int, val, class data.Value) int64 {
	k := Key{Attr: attr, Val: val, Class: class}
	n := t.root
	for n != nil {
		switch {
		case k.less(n.key):
			n = n.left
		case n.key.less(k):
			n = n.right
		default:
			return n.count
		}
	}
	return 0
}

// Walk visits every entry in key order.
func (t *Table) Walk(fn func(Key, int64)) { walk(t.root, fn) }

func walk(n *node, fn func(Key, int64)) {
	if n == nil {
		return
	}
	walk(n.left, fn)
	fn(n.key, n.count)
	walk(n.right, fn)
}

// ClassVector returns the per-class counts for (attr, val) as a dense slice
// of length classCard: the quantity a splitting measure scores.
func (t *Table) ClassVector(attr int, val data.Value, classCard int) []int64 {
	v := make([]int64, classCard)
	t.walkRange(attr, val, func(k Key, c int64) {
		if int(k.Class) < classCard {
			v[k.Class] += c
		}
	})
	return v
}

// walkRange visits entries with exactly the given (attr, val), pruning the
// BST by key order.
func (t *Table) walkRange(attr int, val data.Value, fn func(Key, int64)) {
	lo := Key{Attr: attr, Val: val, Class: -1 << 30}
	hi := Key{Attr: attr, Val: val, Class: 1 << 30}
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		if lo.less(n.key) {
			rec(n.left)
		}
		if lo.less(n.key) && n.key.less(hi) {
			fn(n.key, n.count)
		}
		if n.key.less(hi) {
			rec(n.right)
		}
	}
	rec(t.root)
}

// ClassTotals returns the node's class histogram (length classCard), derived
// from the counts of the given reference attribute; every attribute present
// at the node yields the same totals, which is the package's central
// consistency invariant.
func (t *Table) ClassTotals(refAttr int, classCard int) []int64 {
	v := make([]int64, classCard)
	t.Walk(func(k Key, c int64) {
		if k.Attr == refAttr && int(k.Class) < classCard {
			v[k.Class] += c
		}
	})
	return v
}

// Values returns the distinct values of attr present in the node's data, in
// increasing order. len(Values(attr)) is card(n, A) from §4.2.1.
func (t *Table) Values(attr int) []data.Value {
	var vals []data.Value
	var last data.Value
	first := true
	t.Walk(func(k Key, _ int64) {
		if k.Attr != attr {
			return
		}
		if first || k.Val != last {
			vals = append(vals, k.Val)
			last = k.Val
			first = false
		}
	})
	return vals
}

// Card returns card(n, A): the number of distinct values of attr in the
// node's data.
func (t *Table) Card(attr int) int { return len(t.Values(attr)) }

// Attrs returns the attribute indices present in the table, increasing.
func (t *Table) Attrs() []int {
	var attrs []int
	last := -1
	t.Walk(func(k Key, _ int64) {
		if k.Attr != last {
			attrs = append(attrs, k.Attr)
			last = k.Attr
		}
	})
	return attrs
}

// ValueTotal returns the total number of rows with attr = val, summed over
// classes: the exact child data size |n_i| the scheduler's estimator reads
// off the parent CC table (§4.2.1).
func (t *Table) ValueTotal(attr int, val data.Value) int64 {
	var n int64
	t.walkRange(attr, val, func(_ Key, c int64) { n += c })
	return n
}

// Equal reports whether two tables hold exactly the same entries and row
// counts. Used by the property tests asserting that every build path
// (server scan, file scan, memory scan, SQL fallback) yields identical
// sufficient statistics.
func (t *Table) Equal(o *Table) bool {
	if t.entries != o.entries || t.rows != o.rows {
		return false
	}
	eq := true
	t.Walk(func(k Key, c int64) {
		if eq && o.Count(k.Attr, k.Val, k.Class) != c {
			eq = false
		}
	})
	return eq
}

// Merge folds every entry of o into t, summing per-key counts and the row
// totals. This is the shard-combining step of the parallel scan pipeline:
// each worker counts its disjoint data partition into a private shard table,
// and because counting is a commutative aggregation, merging the shards
// yields exactly the table a single sequential scan would have built. Entry
// and byte accounting are maintained by the underlying Add calls, and the
// treap shape of the result depends only on the merged key set, so the merge
// order does not affect any observable state. o is not modified.
func (t *Table) Merge(o *Table) {
	if o == nil {
		return
	}
	o.Walk(func(k Key, c int64) { t.Add(k.Attr, k.Val, k.Class, c) })
	t.rows += o.rows
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := New()
	c.rows = t.rows
	t.Walk(func(k Key, n int64) { c.Add(k.Attr, k.Val, k.Class, n) })
	return c
}

// String renders the table as the 4-column relation of §2.2:
// (attr, value, class, count) rows in key order.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cc{rows=%d entries=%d", t.rows, t.entries)
	t.Walk(func(k Key, c int64) {
		fmt.Fprintf(&b, " (%d,%d,%d)=%d", k.Attr, k.Val, k.Class, c)
	})
	b.WriteString("}")
	return b.String()
}

// FromDataset builds a CC table directly from in-memory rows matching pred
// over the attribute set attrs. pred may be nil to accept all rows. This is
// the unmetered reference builder used by tests and the in-memory reference
// classifier.
func FromDataset(d *data.Dataset, attrs []int, pred func(data.Row) bool) *Table {
	t := New()
	for _, r := range d.Rows {
		if pred == nil || pred(r) {
			t.AddRow(r, attrs)
		}
	}
	return t
}

// EstimateEntries implements the scheduler's count-table size estimate
// Est_cc(n) of §4.2.1: for a child n of parent p reached with data size
// childRows out of parentRows, the estimate is
//
//	(childRows / parentRows) * Σ_j card(p, A_j) * card(p, C)
//
// computed over the attributes that remain present in the child, assuming
// independence of the partitioning attribute from the remaining attributes.
// The estimate is deterministic and, because card(p, A_j) is exact, does not
// propagate estimation error down the tree. The result is clamped to at
// least one entry per remaining attribute.
func EstimateEntries(parent *Table, childAttrs []int, childRows, parentRows int64, classCard int) int64 {
	if parentRows <= 0 || childRows <= 0 {
		return int64(len(childAttrs))
	}
	var sum int64
	for _, a := range childAttrs {
		sum += int64(parent.Card(a))
	}
	classes := int64(1)
	// Number of distinct classes observed at the parent bounds the child's.
	if len(childAttrs) > 0 {
		seen := map[data.Value]bool{}
		parent.walkRange2(childAttrs[0], func(k Key, _ int64) { seen[k.Class] = true })
		if len(seen) > 0 {
			classes = int64(len(seen))
		}
	} else if classCard > 0 {
		classes = int64(classCard)
	}
	est := (childRows*sum*classes + parentRows - 1) / parentRows
	if min := int64(len(childAttrs)); est < min {
		est = min
	}
	return est
}

// walkRange2 visits entries for one attribute (all values).
func (t *Table) walkRange2(attr int, fn func(Key, int64)) {
	lo := Key{Attr: attr, Val: -1 << 30, Class: -1 << 30}
	hi := Key{Attr: attr, Val: 1 << 30, Class: 1 << 30}
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		if lo.less(n.key) {
			rec(n.left)
		}
		if lo.less(n.key) && n.key.less(hi) {
			fn(n.key, n.count)
		}
		if n.key.less(hi) {
			rec(n.right)
		}
	}
	rec(t.root)
}

// SortedKeys returns all keys in order; primarily for tests and debugging.
func (t *Table) SortedKeys() []Key {
	keys := make([]Key, 0, t.entries)
	t.Walk(func(k Key, _ int64) { keys = append(keys, k) })
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}
