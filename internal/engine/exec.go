package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// Val is one result-set value: an integer or a string.
type Val struct {
	I   int64
	S   string
	Str bool
}

// IntVal and StrVal construct result values.
func IntVal(i int64) Val  { return Val{I: i} }
func StrVal(s string) Val { return Val{S: s, Str: true} }

// String renders the value.
func (v Val) String() string {
	if v.Str {
		return v.S
	}
	return fmt.Sprintf("%d", v.I)
}

// less orders values: integers before strings, then by value.
func (v Val) less(o Val) bool {
	if v.Str != o.Str {
		return !v.Str
	}
	if v.Str {
		return v.S < o.S
	}
	return v.I < o.I
}

func (v Val) equal(o Val) bool { return v == o }

// ResultSet is the materialized result of a query.
type ResultSet struct {
	Cols []string
	Rows [][]Val
}

// String renders the result set as an aligned text table.
func (rs *ResultSet) String() string {
	widths := make([]int, len(rs.Cols))
	for i, c := range rs.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rs.Rows))
	for ri, r := range rs.Rows {
		cells[ri] = make([]string, len(r))
		for ci, v := range r {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range rs.Cols {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteString("\n")
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Exec parses and executes one SQL statement, charging the per-statement
// QueryStartup cost. DDL and DML statements return a nil result set.
func (e *Engine) Exec(sql string) (*ResultSet, error) {
	sp := e.tracer.Start(obs.CatSQL, "sql").AttrStr("stmt", obs.Truncate(sql, 120))
	rs, err := e.execStmt(sql)
	if rs != nil {
		sp.SetRows(int64(len(rs.Rows)))
	}
	sp.End()
	return rs, err
}

func (e *Engine) execStmt(sql string) (*ResultSet, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	e.meter.Charge(sim.CtrSQLStatements, e.meter.Costs().QueryStartup, 1)
	switch s := st.(type) {
	case *sqlparser.Select:
		return e.execSelect(s)
	case *sqlparser.CreateTable:
		cols := make([]string, len(s.Cols))
		for i, c := range s.Cols {
			cols[i] = c.Name
		}
		_, err := e.CreateTable(s.Name, cols)
		return nil, err
	case *sqlparser.CreateIndex:
		t, err := e.Table(s.Table)
		if err != nil {
			return nil, err
		}
		_, err = e.CreateIndex(t, s.Col)
		return nil, err
	case *sqlparser.Insert:
		return nil, e.execInsert(s)
	case *sqlparser.Delete:
		return nil, e.execDelete(s)
	case *sqlparser.DropTable:
		return nil, e.DropTable(s.Name)
	case *sqlparser.ScoreTable:
		return e.execScore(s)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", st)
}

// execScore runs SCORE TABLE t USING model [WORKERS n] through the
// vectorized scoring operator and materializes one "class" row per table
// row, charging result transmission like any SELECT.
func (e *Engine) execScore(s *sqlparser.ScoreTable) (*ResultSet, error) {
	t, err := e.Table(s.Table)
	if err != nil {
		return nil, err
	}
	m, err := e.Model(s.Model)
	if err != nil {
		return nil, err
	}
	res, err := e.ScoreTable(t, m, s.Workers)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Cols: []string{"class"}, Rows: make([][]Val, len(res.Classes))}
	for i, c := range res.Classes {
		rs.Rows[i] = []Val{{I: int64(c)}}
	}
	e.meter.Charge(sim.CtrRowsTransmitted, e.meter.Costs().RowTransmit, int64(len(rs.Rows)))
	return rs, nil
}

// MustExec executes sql and panics on error; intended for test and example
// setup code.
func (e *Engine) MustExec(sql string) *ResultSet {
	rs, err := e.Exec(sql)
	if err != nil {
		panic(err)
	}
	return rs
}

func (e *Engine) execInsert(s *sqlparser.Insert) error {
	t, err := e.Table(s.Table)
	if err != nil {
		return err
	}
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(t.Cols) {
			return fmt.Errorf("engine: insert into %q: %d values, want %d", t.Name, len(exprRow), len(t.Cols))
		}
		row := make(data.Row, len(exprRow))
		for i, ex := range exprRow {
			v, err := evalConst(ex)
			if err != nil {
				return err
			}
			if v.Str {
				return fmt.Errorf("engine: insert into %q: string values are not storable (column %s)", t.Name, t.Cols[i])
			}
			row[i] = data.Value(v.I)
		}
		if _, err := e.Insert(t, row); err != nil {
			return err
		}
	}
	return nil
}

// execDelete rebuilds the heap without the matching rows (the heap layer is
// append-only).
func (e *Engine) execDelete(s *sqlparser.Delete) error {
	t, err := e.Table(s.Table)
	if err != nil {
		return err
	}
	var pred func(data.Row) (bool, error)
	if s.Where != nil {
		ev, err := e.compileExpr(s.Where, t)
		if err != nil {
			return err
		}
		pred = func(r data.Row) (bool, error) {
			v, err := ev(r)
			if err != nil {
				return false, err
			}
			return !v.Str && v.I != 0, nil
		}
	}
	var keep []data.Row
	var scanErr error
	e.scan(t, func(_ storage.TID, row data.Row) bool {
		if pred == nil {
			return true // delete all: keep nothing
		}
		m, err := pred(row)
		if err != nil {
			scanErr = err
			return false
		}
		if !m {
			keep = append(keep, row.Clone())
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	name, cols := t.Name, t.Cols
	if err := e.DropTable(name); err != nil {
		return err
	}
	nt, err := e.CreateTable(name, cols)
	if err != nil {
		return err
	}
	e.meter.Charge(sim.CtrServerRows, e.meter.Costs().ServerRowWrite, int64(len(keep)))
	return e.BulkLoad(nt, keep)
}

// evaluator computes an expression over one row of a table (or over the
// concatenated row of a join).
type evaluator func(data.Row) (Val, error)

// colResolver resolves a column name (possibly alias-qualified) to its
// position in the rows the evaluators receive. *Table and *relation satisfy
// it.
type colResolver interface {
	ColIndex(name string) int
}

// compileExpr compiles a non-aggregate expression against a column resolver.
// It is an Engine method because CLASSIFY resolves models from the catalog
// and charges scoring costs to the engine's meter.
func (e *Engine) compileExpr(ex sqlparser.Expr, t colResolver) (evaluator, error) {
	switch x := ex.(type) {
	case *sqlparser.IntLit:
		v := Val{I: x.Val}
		return func(data.Row) (Val, error) { return v, nil }, nil
	case *sqlparser.StringLit:
		v := Val{S: x.Val, Str: true}
		return func(data.Row) (Val, error) { return v, nil }, nil
	case *sqlparser.ColumnRef:
		ci := t.ColIndex(x.Name)
		if ci < 0 {
			return nil, fmt.Errorf("engine: unknown column %q", x.Name)
		}
		return func(r data.Row) (Val, error) { return Val{I: int64(r[ci])}, nil }, nil
	case *sqlparser.NotExpr:
		sub, err := e.compileExpr(x.E, t)
		if err != nil {
			return nil, err
		}
		return func(r data.Row) (Val, error) {
			v, err := sub(r)
			if err != nil {
				return Val{}, err
			}
			if v.Str {
				return Val{}, fmt.Errorf("engine: NOT applied to string")
			}
			return Val{I: b2i(v.I == 0)}, nil
		}, nil
	case *sqlparser.BinaryExpr:
		l, err := e.compileExpr(x.L, t)
		if err != nil {
			return nil, err
		}
		r, err := e.compileExpr(x.R, t)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(row data.Row) (Val, error) {
			lv, err := l(row)
			if err != nil {
				return Val{}, err
			}
			rv, err := r(row)
			if err != nil {
				return Val{}, err
			}
			return applyBinary(op, lv, rv)
		}, nil
	case *sqlparser.CaseExpr:
		return e.compileCase(x, t)
	case *sqlparser.ClassifyExpr:
		return e.compileClassify(x, t)
	case *sqlparser.CountStar, *sqlparser.AggExpr:
		return nil, fmt.Errorf("engine: aggregate %s in a non-aggregate context", ex)
	}
	return nil, fmt.Errorf("engine: unsupported expression %T", ex)
}

// compileCase compiles a searched CASE: arms evaluate in order, the first
// true condition wins, and a missing ELSE yields 0 (the subset's NULL).
func (e *Engine) compileCase(x *sqlparser.CaseExpr, t colResolver) (evaluator, error) {
	type arm struct{ cond, then evaluator }
	arms := make([]arm, len(x.Whens))
	for i, w := range x.Whens {
		cond, err := e.compileExpr(w.Cond, t)
		if err != nil {
			return nil, err
		}
		then, err := e.compileExpr(w.Then, t)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{cond, then}
	}
	var els evaluator
	if x.Else != nil {
		var err error
		if els, err = e.compileExpr(x.Else, t); err != nil {
			return nil, err
		}
	}
	return func(r data.Row) (Val, error) {
		for _, a := range arms {
			v, err := a.cond(r)
			if err != nil {
				return Val{}, err
			}
			if truthy(v) {
				return a.then(r)
			}
		}
		if els == nil {
			return Val{I: 0}, nil
		}
		return els(r)
	}, nil
}

// compileClassify compiles CLASSIFY(model, a1, ..): resolve the registered
// model once at compile time, then per row assemble the argument vector and
// walk the model, charging the same per-row scoring costs as the vectorized
// operator (one ScoreRowEval plus one ModelNodeProbe per visited node).
func (e *Engine) compileClassify(x *sqlparser.ClassifyExpr, t colResolver) (evaluator, error) {
	m, err := e.Model(x.Model)
	if err != nil {
		return nil, err
	}
	if len(x.Args) != m.Cols {
		return nil, fmt.Errorf("engine: CLASSIFY(%s, ...): %d arguments, model wants %d", x.Model, len(x.Args), m.Cols)
	}
	argEvals := make([]evaluator, len(x.Args))
	for i, a := range x.Args {
		if argEvals[i], err = e.compileExpr(a, t); err != nil {
			return nil, err
		}
	}
	costs := e.meter.Costs()
	row := make(data.Row, len(argEvals))
	return func(r data.Row) (Val, error) {
		for i, ev := range argEvals {
			v, err := ev(r)
			if err != nil {
				return Val{}, err
			}
			if v.Str {
				return Val{}, fmt.Errorf("engine: CLASSIFY(%s, ...): string argument %d", x.Model, i+1)
			}
			row[i] = data.Value(v.I)
		}
		n, probes := m.predictNode(row)
		e.meter.Charge(sim.CtrScoreRows, costs.ScoreRowEval, 1)
		e.meter.Charge(sim.CtrModelProbes, costs.ModelNodeProbe, probes)
		return Val{I: int64(m.Nodes[n].Class)}, nil
	}, nil
}

// evalConst evaluates an expression with no column references.
func evalConst(ex sqlparser.Expr) (Val, error) {
	switch x := ex.(type) {
	case *sqlparser.IntLit:
		return Val{I: x.Val}, nil
	case *sqlparser.StringLit:
		return Val{S: x.Val, Str: true}, nil
	case *sqlparser.BinaryExpr:
		l, err := evalConst(x.L)
		if err != nil {
			return Val{}, err
		}
		r, err := evalConst(x.R)
		if err != nil {
			return Val{}, err
		}
		return applyBinary(x.Op, l, r)
	}
	return Val{}, fmt.Errorf("engine: expression %s is not constant", ex)
}

func applyBinary(op string, l, r Val) (Val, error) {
	switch op {
	case "AND":
		return Val{I: b2i(truthy(l) && truthy(r))}, nil
	case "OR":
		return Val{I: b2i(truthy(l) || truthy(r))}, nil
	}
	if l.Str != r.Str {
		return Val{}, fmt.Errorf("engine: type mismatch in %q comparison", op)
	}
	switch op {
	case "=":
		return Val{I: b2i(l.equal(r))}, nil
	case "<>":
		return Val{I: b2i(!l.equal(r))}, nil
	case "<":
		return Val{I: b2i(l.less(r))}, nil
	case "<=":
		return Val{I: b2i(!r.less(l))}, nil
	case ">":
		return Val{I: b2i(r.less(l))}, nil
	case ">=":
		return Val{I: b2i(!l.less(r))}, nil
	case "+", "-":
		if l.Str || r.Str {
			return Val{}, fmt.Errorf("engine: arithmetic on strings")
		}
		if op == "+" {
			return Val{I: l.I + r.I}, nil
		}
		return Val{I: l.I - r.I}, nil
	}
	return Val{}, fmt.Errorf("engine: unsupported operator %q", op)
}

func truthy(v Val) bool { return !v.Str && v.I != 0 }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// aggState accumulates one aggregate.
type aggState struct {
	fn    string // "COUNT*", "COUNT", "SUM", "MIN", "MAX"
	arg   evaluator
	count int64
	sum   int64
	min   int64
	max   int64
	any   bool
}

func (a *aggState) update(r data.Row) error {
	if a.fn == "COUNT*" {
		a.count++
		return nil
	}
	v, err := a.arg(r)
	if err != nil {
		return err
	}
	if v.Str {
		return fmt.Errorf("engine: aggregate over string value")
	}
	a.count++
	a.sum += v.I
	if !a.any || v.I < a.min {
		a.min = v.I
	}
	if !a.any || v.I > a.max {
		a.max = v.I
	}
	a.any = true
	return nil
}

func (a *aggState) value() Val {
	switch a.fn {
	case "COUNT*", "COUNT":
		return Val{I: a.count}
	case "SUM":
		return Val{I: a.sum}
	case "MIN":
		return Val{I: a.min}
	case "MAX":
		return Val{I: a.max}
	case "AVG":
		// Integer average (the engine stores categorical codes; a
		// truncated mean suffices for the supported workloads).
		if a.count == 0 {
			return Val{}
		}
		return Val{I: a.sum / a.count}
	}
	return Val{}
}

func (a *aggState) clone() *aggState {
	c := *a
	return &c
}

// execSelect executes a full Select: each core independently (its own scan —
// the engine does not share scans across UNION arms), then UNION
// combination, then ORDER BY.
func (e *Engine) execSelect(s *sqlparser.Select) (*ResultSet, error) {
	var out *ResultSet
	for i := range s.Cores {
		rs, err := e.execCore(&s.Cores[i])
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = rs
			continue
		}
		if len(rs.Cols) != len(out.Cols) {
			return nil, fmt.Errorf("engine: UNION arms have %d and %d columns", len(out.Cols), len(rs.Cols))
		}
		out.Rows = append(out.Rows, rs.Rows...)
		if !s.UnionAll[i-1] {
			out.Rows = dedupeRows(out.Rows)
		}
	}
	if len(s.OrderBy) > 0 {
		if err := e.orderBy(out, s.OrderBy); err != nil {
			return nil, err
		}
	}
	if s.Limit >= 0 && int64(len(out.Rows)) > s.Limit {
		out.Rows = out.Rows[:s.Limit]
	}
	// Result rows cross the wire to the caller.
	e.meter.Charge(sim.CtrRowsTransmitted, e.meter.Costs().RowTransmit, int64(len(out.Rows)))
	return out, nil
}

func dedupeRows(rows [][]Val) [][]Val {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var key strings.Builder
	for _, r := range rows {
		key.Reset()
		for _, v := range r {
			if v.Str {
				key.WriteByte('s')
				key.WriteString(v.S)
			} else {
				fmt.Fprintf(&key, "i%d", v.I)
			}
			key.WriteByte('\x00')
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// orderBy sorts the result set. Order keys that are column references are
// resolved against the result's output column names; other expressions are
// not supported at this level (the paper's queries never need them).
func (e *Engine) orderBy(rs *ResultSet, keys []sqlparser.OrderItem) error {
	type keySpec struct {
		col  int
		desc bool
	}
	specs := make([]keySpec, len(keys))
	for i, k := range keys {
		cr, ok := k.Expr.(*sqlparser.ColumnRef)
		if !ok {
			return fmt.Errorf("engine: ORDER BY supports output column names only, got %s", k.Expr)
		}
		ci := -1
		for j, c := range rs.Cols {
			if c == cr.Name {
				ci = j
				break
			}
		}
		if ci < 0 {
			// Fall back to matching the bare column name against
			// alias-qualified output columns (and vice versa), requiring
			// uniqueness.
			for j, c := range rs.Cols {
				if lastSegment(c) == lastSegment(cr.Name) {
					if ci >= 0 {
						return fmt.Errorf("engine: ORDER BY column %q is ambiguous", cr.Name)
					}
					ci = j
				}
			}
		}
		if ci < 0 {
			return fmt.Errorf("engine: ORDER BY references unknown output column %q", cr.Name)
		}
		specs[i] = keySpec{col: ci, desc: k.Desc}
	}
	sort.SliceStable(rs.Rows, func(a, b int) bool {
		for _, sp := range specs {
			va, vb := rs.Rows[a][sp.col], rs.Rows[b][sp.col]
			if va.equal(vb) {
				continue
			}
			if sp.desc {
				return vb.less(va)
			}
			return va.less(vb)
		}
		return false
	})
	return nil
}

// execCore executes one SELECT ... FROM ... WHERE ... GROUP BY block with a
// full table scan (using an index only for a simple single-column equality
// WHERE clause).
func (e *Engine) execCore(c *sqlparser.SelectCore) (*ResultSet, error) {
	rel, err := e.buildRelation(c)
	if err != nil {
		return nil, err
	}
	t := rel // column resolver for expression compilation

	// Compile WHERE.
	var where evaluator
	if c.Where != nil {
		where, err = e.compileExpr(c.Where, t)
		if err != nil {
			return nil, err
		}
	}

	// Classify projection items, expand *.
	type item struct {
		name string
		eval evaluator // nil for aggregates
		agg  *aggState // nil for scalars
	}
	var items []item
	hasAgg := false
	for _, si := range c.Items {
		if si.Star {
			for _, col := range rel.cols {
				ev, _ := e.compileExpr(&sqlparser.ColumnRef{Name: col}, t)
				items = append(items, item{name: col, eval: ev})
			}
			continue
		}
		name := si.Alias
		if name == "" {
			name = si.Expr.String()
		}
		switch x := si.Expr.(type) {
		case *sqlparser.CountStar:
			items = append(items, item{name: name, agg: &aggState{fn: "COUNT*"}})
			hasAgg = true
		case *sqlparser.AggExpr:
			argEval, err := e.compileExpr(x.Arg, t)
			if err != nil {
				return nil, err
			}
			items = append(items, item{name: name, agg: &aggState{fn: x.Func, arg: argEval}})
			hasAgg = true
		default:
			ev, err := e.compileExpr(si.Expr, t)
			if err != nil {
				return nil, err
			}
			items = append(items, item{name: name, eval: ev})
		}
	}
	cols := make([]string, len(items))
	for i, it := range items {
		cols[i] = it.name
	}

	grouped := hasAgg || len(c.GroupBy) > 0

	// Group-by key evaluators.
	var groupEvals []evaluator
	for _, g := range c.GroupBy {
		ev, err := e.compileExpr(g, t)
		if err != nil {
			return nil, err
		}
		groupEvals = append(groupEvals, ev)
	}

	rs := &ResultSet{Cols: cols}

	// scanSource drives rows through fn: an index probe (simple equality
	// WHERE on an indexed single-table column), or a sequential scan of the
	// relation with the WHERE filter applied.
	scanSource := func(fn func(data.Row) error) error {
		if rel.table != nil {
			if col, lo, hi, ok := simpleRange(c.Where, rel.table); ok {
				if idx, has := rel.table.indexes[col]; has {
					var row data.Row
					for _, tid := range e.LookupRange(idx, lo, hi) {
						row, err = e.fetch(rel.table, tid, row)
						if err != nil {
							return err
						}
						if ferr := fn(row); ferr != nil {
							return ferr
						}
					}
					return nil
				}
			}
		}
		return rel.iterate(func(row data.Row) error {
			if where != nil {
				v, err := where(row)
				if err != nil {
					return err
				}
				if !truthy(v) {
					return nil
				}
			}
			return fn(row)
		})
	}

	if !grouped {
		err := scanSource(func(row data.Row) error {
			out := make([]Val, len(items))
			for i, it := range items {
				v, err := it.eval(row)
				if err != nil {
					return err
				}
				out[i] = v
			}
			rs.Rows = append(rs.Rows, out)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if c.Distinct {
			rs.Rows = dedupeRows(rs.Rows)
		}
		return rs, nil
	}

	// Grouped execution: hash aggregation.
	type group struct {
		scalars []Val // values of non-aggregate items, from the first row
		aggs    []*aggState
		hidden  []*aggState // aggregates appearing only in HAVING
		rep     data.Row    // representative row (for HAVING column refs)
		order   int
	}
	groups := make(map[string]*group)
	var orderSeq int
	aggCost := e.meter.Costs().SQLAggRow

	// Compile HAVING: aggregate subexpressions become hidden per-group
	// states; column references read the group's representative row.
	var hiddenTpl []*aggState
	var havingFn func(hidden []*aggState, rep data.Row) (Val, error)
	if c.Having != nil {
		havingFn, err = e.compileHaving(c.Having, t, &hiddenTpl)
		if err != nil {
			return nil, err
		}
	}

	err = scanSource(func(row data.Row) error {
		e.meter.Charge(sim.CtrSQLAggRows, aggCost, 1)
		var key strings.Builder
		for _, ge := range groupEvals {
			v, err := ge(row)
			if err != nil {
				return err
			}
			if v.Str {
				key.WriteByte('s')
				key.WriteString(v.S)
			} else {
				fmt.Fprintf(&key, "i%d", v.I)
			}
			key.WriteByte('\x00')
		}
		k := key.String()
		g, ok := groups[k]
		if !ok {
			g = &group{order: orderSeq}
			orderSeq++
			for _, it := range items {
				if it.agg != nil {
					g.aggs = append(g.aggs, it.agg.clone())
				} else {
					v, err := it.eval(row)
					if err != nil {
						return err
					}
					g.scalars = append(g.scalars, v)
					g.aggs = append(g.aggs, nil)
				}
			}
			for _, h := range hiddenTpl {
				g.hidden = append(g.hidden, h.clone())
			}
			if havingFn != nil {
				g.rep = row.Clone()
			}
			groups[k] = g
		}
		for _, a := range g.aggs {
			if a != nil {
				if err := a.update(row); err != nil {
					return err
				}
			}
		}
		for _, a := range g.hidden {
			if err := a.update(row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// An aggregate with no GROUP BY over empty input still yields one row
	// (COUNT(*) = 0; SUM/MIN/MAX degenerate to 0 since the engine has no
	// NULL).
	if len(groups) == 0 && len(groupEvals) == 0 {
		g := &group{}
		for _, it := range items {
			if it.agg != nil {
				g.aggs = append(g.aggs, it.agg.clone())
			} else {
				g.scalars = append(g.scalars, Val{})
				g.aggs = append(g.aggs, nil)
			}
		}
		groups[""] = g
	}

	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })
	for _, g := range ordered {
		if havingFn != nil {
			keep, err := havingFn(g.hidden, g.rep)
			if err != nil {
				return nil, err
			}
			if !truthy(keep) {
				continue
			}
		}
		out := make([]Val, len(items))
		si := 0
		for i := range items {
			if g.aggs[i] != nil {
				out[i] = g.aggs[i].value()
			} else {
				out[i] = g.scalars[si]
				si++
			}
		}
		rs.Rows = append(rs.Rows, out)
	}
	return rs, nil
}

// compileHaving compiles a HAVING expression: aggregate subexpressions are
// registered as hidden per-group aggregate templates (appended to tpl) and
// read back by index at evaluation time; column references evaluate against
// the group's representative row.
func (e *Engine) compileHaving(ex sqlparser.Expr, t colResolver, tpl *[]*aggState) (func([]*aggState, data.Row) (Val, error), error) {
	switch x := ex.(type) {
	case *sqlparser.IntLit:
		v := Val{I: x.Val}
		return func([]*aggState, data.Row) (Val, error) { return v, nil }, nil
	case *sqlparser.StringLit:
		v := Val{S: x.Val, Str: true}
		return func([]*aggState, data.Row) (Val, error) { return v, nil }, nil
	case *sqlparser.ColumnRef:
		ci := t.ColIndex(x.Name)
		if ci < 0 {
			return nil, fmt.Errorf("engine: HAVING references unknown column %q", x.Name)
		}
		return func(_ []*aggState, rep data.Row) (Val, error) {
			return Val{I: int64(rep[ci])}, nil
		}, nil
	case *sqlparser.CountStar:
		idx := len(*tpl)
		*tpl = append(*tpl, &aggState{fn: "COUNT*"})
		return func(hidden []*aggState, _ data.Row) (Val, error) {
			return hidden[idx].value(), nil
		}, nil
	case *sqlparser.AggExpr:
		argEval, err := e.compileExpr(x.Arg, t)
		if err != nil {
			return nil, err
		}
		idx := len(*tpl)
		*tpl = append(*tpl, &aggState{fn: x.Func, arg: argEval})
		return func(hidden []*aggState, _ data.Row) (Val, error) {
			return hidden[idx].value(), nil
		}, nil
	case *sqlparser.NotExpr:
		sub, err := e.compileHaving(x.E, t, tpl)
		if err != nil {
			return nil, err
		}
		return func(hidden []*aggState, rep data.Row) (Val, error) {
			v, err := sub(hidden, rep)
			if err != nil {
				return Val{}, err
			}
			return Val{I: b2i(!truthy(v))}, nil
		}, nil
	case *sqlparser.BinaryExpr:
		l, err := e.compileHaving(x.L, t, tpl)
		if err != nil {
			return nil, err
		}
		r, err := e.compileHaving(x.R, t, tpl)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(hidden []*aggState, rep data.Row) (Val, error) {
			lv, err := l(hidden, rep)
			if err != nil {
				return Val{}, err
			}
			rv, err := r(hidden, rep)
			if err != nil {
				return Val{}, err
			}
			return applyBinary(op, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("engine: unsupported HAVING expression %T", ex)
}

// lastSegment returns the part of a column name after the final dot.
func lastSegment(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// simpleEquality reports whether the WHERE clause is exactly "col = int" on
// a column of t, enabling an index probe.
func simpleEquality(where sqlparser.Expr, t *Table) (col string, val data.Value, ok bool) {
	be, isBin := where.(*sqlparser.BinaryExpr)
	if !isBin || be.Op != "=" {
		return "", 0, false
	}
	cr, lcol := be.L.(*sqlparser.ColumnRef)
	il, rint := be.R.(*sqlparser.IntLit)
	if lcol && rint && t.ColIndex(cr.Name) >= 0 {
		return cr.Name, data.Value(il.Val), true
	}
	cr2, rcol := be.R.(*sqlparser.ColumnRef)
	il2, lint := be.L.(*sqlparser.IntLit)
	if rcol && lint && t.ColIndex(cr2.Name) >= 0 {
		return cr2.Name, data.Value(il2.Val), true
	}
	return "", 0, false
}

// simpleRange recognizes a WHERE clause of the form "col OP int" (OP one of
// =, <, <=, >, >=) on a column of t and returns the equivalent closed key
// range for a B-tree scan.
func simpleRange(where sqlparser.Expr, t *Table) (col string, lo, hi int64, ok bool) {
	if c, v, eq := simpleEquality(where, t); eq {
		return c, int64(v), int64(v), true
	}
	be, isBin := where.(*sqlparser.BinaryExpr)
	if !isBin {
		return "", 0, 0, false
	}
	cr, lcol := be.L.(*sqlparser.ColumnRef)
	il, rint := be.R.(*sqlparser.IntLit)
	if !lcol || !rint || t.ColIndex(cr.Name) < 0 {
		return "", 0, 0, false
	}
	const inf = int64(1) << 40
	switch be.Op {
	case "<":
		return cr.Name, -inf, il.Val - 1, true
	case "<=":
		return cr.Name, -inf, il.Val, true
	case ">":
		return cr.Name, il.Val + 1, inf, true
	case ">=":
		return cr.Name, il.Val, inf, true
	}
	return "", 0, 0, false
}
