package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/sim"
)

// TestRandomGroupedQueriesAgainstReference generates random GROUP BY /
// aggregate / HAVING queries and cross-checks the executor against a direct
// in-memory evaluation of the same semantics.
func TestRandomGroupedQueriesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := data.NewSchema(3, 4, 3)
	ds := data.NewDataset(s)
	for i := 0; i < 700; i++ {
		ds.Append(data.Row{
			data.Value(rng.Intn(4)), data.Value(rng.Intn(4)),
			data.Value(rng.Intn(4)), data.Value(rng.Intn(3)),
		})
	}
	srv, err := NewServer(New(sim.NewDefaultMeter(), 0), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	e := srv.Engine()

	for trial := 0; trial < 80; trial++ {
		groupCol := rng.Intn(4) // 3 attrs + class
		aggCol := rng.Intn(3)
		whereCol := rng.Intn(3)
		whereVal := rng.Intn(4)
		withHaving := rng.Intn(2) == 0
		havingMin := rng.Intn(40)

		gName := ds.Schema.ColName(groupCol)
		aName := ds.Schema.ColName(aggCol)
		wName := ds.Schema.ColName(whereCol)

		sql := fmt.Sprintf("SELECT %s, COUNT(*), SUM(%s) FROM cases WHERE %s <> %d GROUP BY %s",
			gName, aName, wName, whereVal, gName)
		if withHaving {
			sql += fmt.Sprintf(" HAVING COUNT(*) > %d", havingMin)
		}
		sql += fmt.Sprintf(" ORDER BY %s", gName)

		rs, err := e.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}

		// Reference evaluation.
		type agg struct{ n, sum int64 }
		ref := map[data.Value]*agg{}
		for _, r := range ds.Rows {
			if r[whereCol] == data.Value(whereVal) {
				continue
			}
			g := r[groupCol]
			a, ok := ref[g]
			if !ok {
				a = &agg{}
				ref[g] = a
			}
			a.n++
			a.sum += int64(r[aggCol])
		}
		var keys []data.Value
		for k, a := range ref {
			if withHaving && a.n <= int64(havingMin) {
				continue
			}
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		if len(rs.Rows) != len(keys) {
			t.Fatalf("%s: %d groups, want %d", sql, len(rs.Rows), len(keys))
		}
		for i, k := range keys {
			row := rs.Rows[i]
			if row[0].I != int64(k) || row[1].I != ref[k].n || row[2].I != ref[k].sum {
				t.Fatalf("%s: group %d = (%d,%d,%d), want (%d,%d,%d)",
					sql, i, row[0].I, row[1].I, row[2].I, k, ref[k].n, ref[k].sum)
			}
		}
	}
}

// TestRandomUnionQueries cross-checks multi-arm UNION [ALL] row counts.
func TestRandomUnionQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := data.NewSchema(2, 3, 2)
	ds := data.NewDataset(s)
	for i := 0; i < 300; i++ {
		ds.Append(data.Row{data.Value(rng.Intn(3)), data.Value(rng.Intn(3)), data.Value(rng.Intn(2))})
	}
	srv, err := NewServer(New(sim.NewDefaultMeter(), 0), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	e := srv.Engine()

	for trial := 0; trial < 40; trial++ {
		arms := rng.Intn(3) + 2
		all := rng.Intn(2) == 0
		var parts []string
		var refRows [][2]int64
		for a := 0; a < arms; a++ {
			v := rng.Intn(3)
			parts = append(parts, fmt.Sprintf("SELECT A1, A2 FROM cases WHERE A1 = %d", v))
			for _, r := range ds.Rows {
				if r[0] == data.Value(v) {
					refRows = append(refRows, [2]int64{int64(r[0]), int64(r[1])})
				}
			}
		}
		sep := " UNION "
		if all {
			sep = " UNION ALL "
		}
		sql := strings.Join(parts, sep)
		rs, err := e.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		want := len(refRows)
		if !all {
			seen := map[[2]int64]bool{}
			for _, r := range refRows {
				seen[r] = true
			}
			want = len(seen)
		}
		if len(rs.Rows) != want {
			t.Fatalf("%s: %d rows, want %d", sql, len(rs.Rows), want)
		}
	}
}
