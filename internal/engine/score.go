package engine

import (
	"fmt"
	"sync"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/storage"
)

// This file is the vectorized scoring operator: batch prediction executed
// inside the engine against the columnar store, instead of shipping rows to
// the client for a per-row dtree.Eval loop. The model is compiled once per
// row group into dictionary-code space (groupModel), so the per-row walk
// compares uint16 codes — no value materialization, no dictionary lookups in
// the inner loop. The block stream comes from the same machinery as the
// counting kernel — ScanColumnarRange for a solo partitioned scan,
// ScanColumnarShared when a fleet shares one physical scan — so scoring pays
// the identical page/eval/transmit shape as building, plus the new
// score-specific charges (ScoreRowEval per row, ModelNodeProbe per visited
// node).

// ScoreResult is one scoring pass over a table: the predicted class per row
// in heap (insertion) order, plus the index of the model node that made each
// prediction — the reached leaf, or the internal node whose multiway split
// had no arm for the row's value — from which per-row class distributions
// are read.
type ScoreResult struct {
	Model   string
	Rows    int64
	Classes []data.Value // prediction per row, heap order
	Nodes   []int32      // decision node per row (index into Model.Nodes)
}

// Dist returns row i's class-count distribution: the counts at its decision
// node. The caller must pass the model the result was scored with.
func (r *ScoreResult) Dist(m *Model, i int) []int64 {
	return m.Nodes[r.Nodes[i]].Counts
}

// groupNode is one model node compiled against one row group's dictionaries.
type groupNode struct {
	leaf       bool
	multiway   bool
	attr       int32
	valPresent bool // binary: split value exists in the group's dictionary
	valCode    uint16
	kid0, kid1 int32
	armByCode  []int32 // multiway: dictionary code -> child, -1 = fallback here
}

// groupModel is a model compiled into one group's code space.
type groupModel struct {
	nodes []groupNode
}

func (gm *groupModel) compile(g *storage.ColGroup, m *Model) {
	if cap(gm.nodes) < len(m.Nodes) {
		gm.nodes = make([]groupNode, len(m.Nodes))
	}
	gm.nodes = gm.nodes[:len(m.Nodes)]
	for i := range m.Nodes {
		n := &m.Nodes[i]
		gn := &gm.nodes[i]
		*gn = groupNode{leaf: n.Leaf, multiway: n.Multiway, attr: n.Attr}
		if n.Leaf {
			continue
		}
		if !n.Multiway {
			gn.valCode, gn.valPresent = g.FindCode(int(n.Attr), n.Val)
			gn.kid0, gn.kid1 = n.Kids[0], n.Kids[1]
			continue
		}
		arms := make([]int32, len(g.Dict(int(n.Attr))))
		for c := range arms {
			arms[c] = -1
		}
		for k, v := range n.Vals {
			if code, ok := g.FindCode(int(n.Attr), v); ok {
				arms[code] = n.Kids[k]
			}
		}
		gn.armByCode = arms
	}
}

// walk scores group-relative row i: the decision node plus nodes probed.
// Semantically identical to Model.predictNode, in code space — a group
// dictionary miss on a binary split value routes to the else-arm (the value
// cannot equal the split value), and a multiway code with no arm falls back
// to the node's majority class, exactly the unseen-value rule.
func (gm *groupModel) walk(g *storage.ColGroup, i int32) (int32, int64) {
	n := int32(0)
	probes := int64(0)
	for {
		gn := &gm.nodes[n]
		probes++
		if gn.leaf {
			return n, probes
		}
		code := g.Codes(int(gn.attr))[i]
		if !gn.multiway {
			if gn.valPresent && code == gn.valCode {
				n = gn.kid0
			} else {
				n = gn.kid1
			}
			continue
		}
		next := gn.armByCode[code]
		if next < 0 {
			return n, probes
		}
		n = next
	}
}

// ScoreConsumer scores every selected row of a columnar block stream: the
// per-block body of the scoring operator, driven either by one lane of a
// partitioned ScanColumnarRange (ScoreColumnar) or by ScanColumnarShared as
// a fleet session's attachment to a shared physical scan — the same kernel
// either way, so shared and solo scoring produce identical predictions.
type ScoreConsumer struct {
	model    *Model
	lane     *sim.Meter
	costs    sim.Costs
	curGroup *storage.ColGroup
	gm       groupModel
	preds    []data.Value
	nodes    []int32
}

// NewScoreConsumer creates a consumer charging all scoring costs to lane.
func NewScoreConsumer(m *Model, lane *sim.Meter) *ScoreConsumer {
	return &ScoreConsumer{model: m, lane: lane, costs: lane.Costs()}
}

// NeedCols returns the columns the scoring scan must read: the model's split
// attributes. Always non-nil — a single-leaf model reads no column pages.
func (c *ScoreConsumer) NeedCols() []int { return c.model.Attrs() }

// Consume scores one block; it always keeps the consumer attached.
func (c *ScoreConsumer) Consume(blk *ColBlock) bool {
	g := blk.Group
	if g != c.curGroup {
		c.curGroup = g
		c.gm.compile(g, c.model)
	}
	var probes int64
	for _, i := range blk.Sel {
		n, p := c.gm.walk(g, i)
		probes += p
		c.preds = append(c.preds, c.model.Nodes[n].Class)
		c.nodes = append(c.nodes, n)
	}
	c.lane.Charge(sim.CtrScoreBlocks, 0, 1)
	c.lane.Charge(sim.CtrScoreRows, c.costs.ScoreRowEval, int64(len(blk.Sel)))
	c.lane.Charge(sim.CtrModelProbes, c.costs.ModelNodeProbe, probes)
	return true
}

// Result returns the consumer's accumulated predictions.
func (c *ScoreConsumer) Result() *ScoreResult {
	return &ScoreResult{
		Model:   c.model.Name,
		Rows:    int64(len(c.preds)),
		Classes: c.preds,
		Nodes:   c.nodes,
	}
}

// scoreCheck validates that t can be scored with m.
func scoreCheck(t *Table, m *Model) error {
	if t.colstore == nil || t.colstore.NumRows() != t.NumRows() {
		return fmt.Errorf("engine: table %q has no columnar copy to score", t.Name)
	}
	attrs := m.Attrs()
	if len(attrs) > 0 && attrs[len(attrs)-1] >= len(t.Cols) {
		return fmt.Errorf("engine: model %q splits on column %d; table %q has %d",
			m.Name, attrs[len(attrs)-1], t.Name, len(t.Cols))
	}
	return nil
}

// scoreColumnar is the shared driver behind Engine.ScoreTable and
// Server.ScoreColumnar: a partitioned columnar scan of t fanned over up to
// workers lanes of disjoint row-group ranges, each walking the compiled
// model per block, with lane results concatenated in partition order so the
// output is byte-identical at any worker count.
func scoreColumnar(t *Table, m *Model, meter *sim.Meter, tracer *obs.Tracer, workers int) (*ScoreResult, error) {
	if err := scoreCheck(t, m); err != nil {
		return nil, err
	}
	ng := t.colstore.NumGroups()
	if workers < 1 {
		workers = 1
	}
	if workers > ng {
		workers = ng
	}
	if workers < 1 {
		workers = 1 // empty table: one lane, zero groups
	}
	srv := &Server{meter: meter, tracer: tracer, table: t}
	needCols := m.Attrs()
	sp := tracer.Start(obs.CatScore, "score").
		AttrStr("model", m.Name).
		Attr("model_nodes", int64(len(m.Nodes))).
		Attr("workers", int64(workers))

	lanes := meter.Fork(workers)
	ltrs := tracer.ForkLanes(lanes)
	parts := make([]*ScoreConsumer, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		var ltr *obs.Tracer
		if ltrs != nil {
			ltr = ltrs[w]
		}
		wg.Add(1)
		go func(part int, lane *sim.Meter, ltr *obs.Tracer) {
			defer wg.Done()
			lsp := ltr.Start(obs.CatLane, "lane").SetPartition(part, workers)
			lo, hi := RangeOf(part, workers, ng, nil)
			sc := NewScoreConsumer(m, lane)
			parts[part] = sc
			srv.ScanColumnarRange(predicate.MatchAll(), needCols, lo, hi, lane, sc.Consume)
			lsp.SetRows(int64(len(sc.preds))).End()
		}(w, lanes[w], ltr)
	}
	wg.Wait()
	meter.Join(lanes)
	tracer.JoinLanes(ltrs)

	res := &ScoreResult{Model: m.Name}
	for _, sc := range parts {
		res.Classes = append(res.Classes, sc.preds...)
		res.Nodes = append(res.Nodes, sc.nodes...)
	}
	res.Rows = int64(len(res.Classes))
	sp.SetRows(res.Rows).End()
	return res, nil
}

// ScoreTable scores every row of t with m inside the engine, charging the
// engine's meter: the SCORE TABLE execution path.
func (e *Engine) ScoreTable(t *Table, m *Model, workers int) (*ScoreResult, error) {
	return scoreColumnar(t, m, e.meter, e.tracer, workers)
}

// ScoreColumnar scores every row of the server's table with m, charging the
// server view's meter and tracer — the per-session form fleet scoring
// sessions use when no shared scan is available.
func (s *Server) ScoreColumnar(m *Model, workers int) (*ScoreResult, error) {
	return scoreColumnar(s.table, m, s.meter, s.Tracer(), workers)
}
