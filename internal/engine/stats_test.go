package engine

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/predicate"
)

// eqFilter is a one-condition equality filter on attr = val.
func eqFilter(attr int, val data.Value) predicate.Filter {
	return predicate.Or(predicate.Conj{{Attr: attr, Op: predicate.Eq, Val: val}})
}

func TestWeightedBoundsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		nparts := 1 + rng.Intn(16)
		weights := make([]int64, n)
		var total int64
		for i := range weights {
			// Heavily skewed weights: mostly small, occasionally huge.
			w := int64(rng.Intn(10))
			if rng.Intn(8) == 0 {
				w = int64(1000 + rng.Intn(100000))
			}
			weights[i] = w
			total += w
		}
		b := WeightedBounds(weights, nparts)
		if total == 0 {
			if b != nil {
				t.Fatalf("trial %d: non-nil bounds for zero total weight", trial)
			}
			continue
		}
		if len(b) != nparts+1 {
			t.Fatalf("trial %d: len(bounds) = %d, want %d", trial, len(b), nparts+1)
		}
		if b[0] != 0 || b[nparts] != n {
			t.Fatalf("trial %d: bounds %v do not tile [0, %d]", trial, b, n)
		}
		for i := 1; i <= nparts; i++ {
			if b[i] < b[i-1] {
				t.Fatalf("trial %d: bounds not monotone: %v", trial, b)
			}
		}
		// Balance: no span's weight exceeds an equal share by more than the
		// largest single weight (the granularity limit of contiguous splits).
		var maxW int64
		for _, w := range weights {
			if w > maxW {
				maxW = w
			}
		}
		share := total / int64(nparts)
		for i := 0; i < nparts; i++ {
			var span int64
			for _, w := range weights[b[i]:b[i+1]] {
				span += w
			}
			if span > share+2*maxW {
				t.Fatalf("trial %d: span %d weight %d far above share %d (max unit %d)",
					trial, i, span, share, maxW)
			}
		}
	}
}

func TestWeightedBoundsDegenerate(t *testing.T) {
	cases := []struct {
		name    string
		weights []int64
		nparts  int
	}{
		{"no weights", nil, 4},
		{"nparts zero", []int64{1, 2}, 0},
		{"nparts negative", []int64{1, 2}, -1},
		{"zero total", []int64{0, 0, 0}, 2},
		{"negative weight", []int64{3, -1, 2}, 2},
	}
	for _, tc := range cases {
		if b := WeightedBounds(tc.weights, tc.nparts); b != nil {
			t.Errorf("%s: got %v, want nil", tc.name, b)
		}
	}
	// A single part still tiles the whole range.
	if b := WeightedBounds([]int64{5, 5}, 1); len(b) != 2 || b[0] != 0 || b[1] != 2 {
		t.Errorf("single part: got %v", b)
	}
}

func TestValueStatsSingleColumnExact(t *testing.T) {
	vs := NewValueStats(2, 10)
	counts := map[data.Value]int64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 137; i++ {
		v := data.Value(rng.Intn(5))
		counts[v]++
		vs.Note(data.Row{v, data.Value(rng.Intn(3))})
	}
	if got := vs.Rows(); got != 137 {
		t.Fatalf("Rows = %d, want 137", got)
	}
	if got, want := vs.NumBuckets(), 14; got != want {
		t.Fatalf("NumBuckets = %d, want %d", got, want)
	}
	// Single-column equality estimates are exact: each bucket counts the
	// value directly, and the total is the sum of buckets.
	for v := data.Value(0); v < 6; v++ {
		if got := vs.EstimateMatch(eqFilter(0, v)); got != counts[v] {
			t.Errorf("EstimateMatch(attr0=%d) = %d, want %d", v, got, counts[v])
		}
	}
	// Ne is the complement, also exact for one condition.
	ne := predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Ne, Val: 1}})
	if got := vs.EstimateMatch(ne); got != 137-counts[1] {
		t.Errorf("EstimateMatch(attr0<>1) = %d, want %d", got, 137-counts[1])
	}
	// Match-all returns every row; an empty filter returns none.
	if got := vs.EstimateMatch(predicate.MatchAll()); got != 137 {
		t.Errorf("EstimateMatch(all) = %d, want 137", got)
	}
	if got := vs.EstimateMatch(predicate.Or()); got != 0 {
		t.Errorf("EstimateMatch(empty) = %d, want 0", got)
	}
	// Hints per bucket never exceed the bucket's rows and sum to the total.
	hints := vs.BucketHints(eqFilter(0, 2))
	var sum int64
	for _, h := range hints {
		if h.Match > h.Rows {
			t.Fatalf("bucket hint match %d > rows %d", h.Match, h.Rows)
		}
		sum += h.Match
	}
	if sum != counts[2] {
		t.Errorf("bucket hint sum = %d, want %d", sum, counts[2])
	}
}

func TestValueStatsNilAndDisabled(t *testing.T) {
	var vs *ValueStats
	vs.Note(data.Row{0}) // must not panic
	vs.NoteAt(3, data.Row{0})
	vs.Append(nil)
	if vs.NumBuckets() != 0 || vs.Rows() != 0 {
		t.Fatal("nil stats not empty")
	}
	if vs.BucketHints(predicate.MatchAll()) != nil {
		t.Fatal("nil stats produced hints")
	}
	// perBucket 0 disables sequential Note (heap tables use NoteAt).
	d := NewValueStats(1, 0)
	d.Note(data.Row{1})
	if d.NumBuckets() != 0 {
		t.Fatal("Note recorded with perBucket = 0")
	}
	d.NoteAt(2, data.Row{1})
	if d.NumBuckets() != 3 || d.Rows() != 1 {
		t.Fatalf("NoteAt: buckets=%d rows=%d, want 3/1", d.NumBuckets(), d.Rows())
	}
}

func TestValueStatsAppendPreservesOrder(t *testing.T) {
	a := NewValueStats(1, 2)
	b := NewValueStats(1, 2)
	for i := 0; i < 4; i++ {
		a.Note(data.Row{0})
		b.Note(data.Row{1})
	}
	a.Append(b)
	hints := a.BucketHints(eqFilter(0, 1))
	if len(hints) != 4 {
		t.Fatalf("buckets after append = %d, want 4", len(hints))
	}
	for i, h := range hints {
		want := int64(0)
		if i >= 2 {
			want = 2 // b's buckets follow a's
		}
		if h.Match != want {
			t.Fatalf("bucket %d match = %d, want %d", i, h.Match, want)
		}
	}
}

func TestValueStatsOverflowValues(t *testing.T) {
	vs := NewValueStats(1, 100)
	for i := 0; i < 10; i++ {
		vs.Note(data.Row{data.Value(statMaxValue + i)})
	}
	// Overflow values share one counter: any over-range value estimates the
	// full overflow population (a deliberate over-estimate, never under).
	if got := vs.EstimateMatch(eqFilter(0, statMaxValue+3)); got != 10 {
		t.Errorf("overflow estimate = %d, want 10", got)
	}
	if got := vs.EstimateMatch(eqFilter(0, 5)); got != 0 {
		t.Errorf("in-range estimate on overflow-only data = %d, want 0", got)
	}
}

// clusteredTestDataset lays rows out in `card` contiguous equal slabs of
// attribute 0 (the clustered-placement regime the hints exist to describe).
func clusteredTestDataset(n, card int) *data.Dataset {
	rng := rand.New(rand.NewSource(9))
	s := data.NewSchema(2, card, 2)
	ds := data.NewDataset(s)
	for i := 0; i < n; i++ {
		ds.Append(data.Row{
			data.Value(i * card / n), data.Value(rng.Intn(card)), data.Value(rng.Intn(2)),
		})
	}
	return ds
}

// TestTablePartitionHintsMatchHeap pins the Table-level wiring: stats buckets
// are heap pages, hints pad to the page count, and estimates for a clustered
// attribute concentrate on the pages actually holding the value.
func TestTablePartitionHintsMatchHeap(t *testing.T) {
	ds := clusteredTestDataset(900, 3)
	srv, err := NewServer(newEngine(), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	table := srv.table
	hints := table.PartitionHints(eqFilter(0, 1))
	if len(hints) != table.NumPages() {
		t.Fatalf("hints for %d pages, got %d entries", table.NumPages(), len(hints))
	}
	var rows, match int64
	for _, h := range hints {
		rows += h.Rows
		match += h.Match
	}
	if rows != 900 {
		t.Fatalf("hint rows total %d, want 900", rows)
	}
	if match != 300 {
		t.Fatalf("hint match total %d, want 300 (single-column estimates are exact)", match)
	}
	// Clustered placement: every matching row sits in the middle third of the
	// heap, so pages outside some contiguous band must estimate zero.
	first, last := -1, -1
	for i, h := range hints {
		if h.Match > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		t.Fatal("no page estimated any match")
	}
	for i, h := range hints {
		if i > first && i < last && h.Rows > 0 && h.Match == 0 {
			t.Fatalf("hole in clustered match band at page %d", i)
		}
	}
	if srv.EstimateMatch(eqFilter(0, 1)) != 300 {
		t.Fatal("server EstimateMatch disagrees with hints")
	}
	srv.SetSplitHints(false)
	if srv.EstimateMatch(eqFilter(0, 1)) != -1 {
		t.Fatal("EstimateMatch not -1 with hints disabled")
	}
	if srv.PageBounds(eqFilter(0, 1), 4, 0) != nil {
		t.Fatal("PageBounds not nil with hints disabled")
	}
}
