// Package engine implements the embedded relational engine that stands in
// for Microsoft SQL Server 7.0, the backend the paper's middleware runs
// against. It provides:
//
//   - a catalog of heap-organized tables of integer (categorical-code)
//     columns stored in 8 KB pages through internal/storage;
//   - a SQL executor for the subset parsed by internal/sqlparser, including
//     the UNION-of-GROUP-BY counts queries of §2.3 (each UNION arm performs
//     its own scan: the engine's optimizer, like the commercial optimizers
//     the paper discusses, does not exploit the commonality across arms);
//   - B-tree secondary indexes (CREATE INDEX) with point and range planning,
//     and inner hash equi-joins with qualified column names;
//   - the OLE-DB-like cursor surface the middleware consumes (Server):
//     firehose cursors with pushed-down filter expressions, keyset cursors
//     with an optional stored-procedure filter (§4.3.3c), TID-join access
//     (§4.3.3b), and subset copying into temp tables (§4.3.3a).
//
// All work is metered through a sim.Meter so experiments measure
// deterministic virtual time.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

// DefaultBufferPages is the default server buffer-pool size (pages). It is
// deliberately small relative to the experiment tables so that repeated full
// scans keep paying disk I/O, the regime the paper's middleware targets.
const DefaultBufferPages = 256

// Table is one heap-organized table: named integer columns over a heap file,
// plus any secondary indexes.
type Table struct {
	Name     string
	Cols     []string
	heap     *storage.HeapFile
	colstore *storage.ColStore // column-major dictionary-encoded copy of the heap
	indexes  map[string]*Index // by column name
	stats    *ValueStats       // per-page value histograms (partition hints)
	temp     bool
}

// NumRows returns the number of rows in the table.
func (t *Table) NumRows() int64 { return t.heap.NumRows() }

// NumPages returns the number of pages backing the table.
func (t *Table) NumPages() int { return t.heap.NumPages() }

// Bytes returns the on-disk size of the table.
func (t *Table) Bytes() int64 { return t.heap.Bytes() }

// ColIndex resolves a column name to its position, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Index is an ordered B-tree index on one integer column, mapping value ->
// TIDs in insertion order and supporting range scans.
type Index struct {
	Col string
	bt  *storage.BTree
}

// Engine is the embedded database: a catalog of tables sharing one buffer
// pool and one meter.
type Engine struct {
	meter  *sim.Meter
	bp     *storage.BufferPool
	tables map[string]*Table
	models map[string]*Model // registered scoring models, by name (model.go)
	tmpSeq int
	tracer *obs.Tracer
}

// New creates an engine with the given meter and buffer-pool capacity in
// pages (DefaultBufferPages if bufferPages <= 0).
func New(meter *sim.Meter, bufferPages int) *Engine {
	if bufferPages <= 0 {
		bufferPages = DefaultBufferPages
	}
	return &Engine{
		meter:  meter,
		bp:     storage.NewBufferPool(meter, bufferPages),
		tables: make(map[string]*Table),
		models: make(map[string]*Model),
	}
}

// Meter returns the engine's meter.
func (e *Engine) Meter() *sim.Meter { return e.meter }

// SetTracer attaches an observability tracer clocked by the engine's meter.
// Spans open around SQL statements, cursor scans and aux-structure builds;
// a nil tracer (the default) disables all of it at zero allocation cost.
func (e *Engine) SetTracer(tr *obs.Tracer) { e.tracer = tr }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// CreateTable creates an empty table with the given integer columns.
func (e *Engine) CreateTable(name string, cols []string) (*Table, error) {
	if _, ok := e.tables[name]; ok {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: table %q must have at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if c == "" || seen[c] {
			return nil, fmt.Errorf("engine: table %q: duplicate or empty column %q", name, c)
		}
		seen[c] = true
	}
	t := &Table{
		Name:     name,
		Cols:     append([]string(nil), cols...),
		heap:     storage.NewHeapFile(4 * len(cols)),
		colstore: storage.NewColStore(len(cols)),
		indexes:  make(map[string]*Index),
		stats:    NewValueStats(len(cols), 0),
	}
	e.tables[name] = t
	return t, nil
}

// DropTable removes a table and invalidates its buffered pages.
func (e *Engine) DropTable(name string) error {
	t, ok := e.tables[name]
	if !ok {
		return fmt.Errorf("engine: no table %q", name)
	}
	e.bp.Invalidate(t.heap)
	delete(e.tables, name)
	// Dropping a model's catalog table unregisters the model: the cached
	// copy must not outlive its persisted form.
	if rest, ok := cutPrefix(name, ModelCatalogPrefix); ok {
		delete(e.models, rest)
	}
	return nil
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// Table looks up a table by name.
func (e *Engine) Table(name string) (*Table, error) {
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: no table %q", name)
	}
	return t, nil
}

// TableNames returns the catalog's table names, sorted.
func (e *Engine) TableNames() []string {
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Insert appends one row (charging the server row-write cost) and maintains
// any indexes.
func (e *Engine) Insert(t *Table, r data.Row) (storage.TID, error) {
	if len(r) != len(t.Cols) {
		return storage.TID{}, fmt.Errorf("engine: insert into %q: %d values, want %d", t.Name, len(r), len(t.Cols))
	}
	buf := make([]byte, 0, 4*len(r))
	buf = r.Encode(buf)
	tid := t.heap.Insert(buf)
	t.colstore.Append(r)
	t.stats.NoteAt(int(tid.Page), r)
	e.meter.Charge(sim.CtrServerRows, e.meter.Costs().ServerRowWrite, 1)
	for ci, col := range t.Cols {
		if idx, ok := t.indexes[col]; ok {
			idx.bt.Insert(int64(r[ci]), tid)
		}
	}
	return tid, nil
}

// BulkLoad inserts many rows without per-row write metering (modeling a bulk
// load utility, used to populate experiment tables without polluting the
// measured phase).
func (e *Engine) BulkLoad(t *Table, rows []data.Row) error {
	buf := make([]byte, 0, 4*len(t.Cols))
	for _, r := range rows {
		if len(r) != len(t.Cols) {
			return fmt.Errorf("engine: bulk load into %q: %d values, want %d", t.Name, len(r), len(t.Cols))
		}
		buf = r.Encode(buf[:0])
		tid := t.heap.Insert(buf)
		t.colstore.Append(r)
		t.stats.NoteAt(int(tid.Page), r)
		for ci, col := range t.Cols {
			if idx, ok := t.indexes[col]; ok {
				idx.bt.Insert(int64(r[ci]), tid)
			}
		}
	}
	return nil
}

// CreateIndex builds a B-tree index on one column, charging a full scan plus
// one index-probe cost per row for insertion into the structure.
func (e *Engine) CreateIndex(t *Table, col string) (*Index, error) {
	ci := t.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("engine: table %q has no column %q", t.Name, col)
	}
	if _, ok := t.indexes[col]; ok {
		return nil, fmt.Errorf("engine: index on %q(%s) already exists", t.Name, col)
	}
	idx := &Index{Col: col, bt: storage.NewBTree()}
	ncols := len(t.Cols)
	var row data.Row
	e.bp.Scan(t.heap, func(tid storage.TID, rec []byte) bool {
		row = data.DecodeRow(rec, ncols, row)
		e.meter.Charge(sim.CtrServerRows, e.meter.Costs().ServerRowCPU, 1)
		e.meter.Charge(sim.CtrIndexProbes, e.meter.Costs().IndexProbe, 1)
		idx.bt.Insert(int64(row[ci]), tid)
		return true
	})
	t.indexes[col] = idx
	return idx, nil
}

// Lookup probes the index for TIDs with col = v, charging one probe per
// traversed tree level.
func (e *Engine) Lookup(idx *Index, v data.Value) []storage.TID {
	e.meter.Charge(sim.CtrIndexProbes, e.meter.Costs().IndexProbe, int64(idx.bt.Height()))
	return idx.bt.Get(int64(v))
}

// LookupRange scans the index for TIDs with lo <= col <= hi in key order,
// charging one probe per traversed level plus one per returned entry.
func (e *Engine) LookupRange(idx *Index, lo, hi int64) []storage.TID {
	e.meter.Charge(sim.CtrIndexProbes, e.meter.Costs().IndexProbe, int64(idx.bt.Height()))
	var out []storage.TID
	idx.bt.AscendRange(lo, hi, func(_ int64, tid storage.TID) bool {
		out = append(out, tid)
		return true
	})
	e.meter.Charge(sim.CtrIndexProbes, e.meter.Costs().IndexProbe/8, int64(len(out)))
	return out
}

// scan iterates the table through the buffer pool, decoding rows and
// charging per-row server CPU. fn must not retain row.
func (e *Engine) scan(t *Table, fn func(tid storage.TID, row data.Row) bool) {
	ncols := len(t.Cols)
	var row data.Row
	e.bp.Scan(t.heap, func(tid storage.TID, rec []byte) bool {
		row = data.DecodeRow(rec, ncols, row)
		e.meter.Charge(sim.CtrServerRows, e.meter.Costs().ServerRowCPU, 1)
		return fn(tid, row)
	})
}

// fetch reads one row by TID through the buffer pool.
func (e *Engine) fetch(t *Table, tid storage.TID, dst data.Row) (data.Row, error) {
	rec, err := e.bp.Fetch(t.heap, tid)
	if err != nil {
		return nil, err
	}
	return data.DecodeRow(rec, len(t.Cols), dst), nil
}

// tempName generates a unique temp-table name.
func (e *Engine) tempName() string {
	e.tmpSeq++
	return fmt.Sprintf("#tmp%d", e.tmpSeq)
}
