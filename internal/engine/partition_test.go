package engine

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func partitionTestServer(t *testing.T, n int) (*Server, *data.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	s := data.NewSchema(3, 4, 2)
	ds := data.NewDataset(s)
	for i := 0; i < n; i++ {
		ds.Append(data.Row{
			data.Value(rng.Intn(4)), data.Value(rng.Intn(4)),
			data.Value(rng.Intn(4)), data.Value(rng.Intn(2)),
		})
	}
	srv, err := NewServer(New(sim.NewDefaultMeter(), 0), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	return srv, ds
}

func drain(c Cursor) []data.Row {
	var out []data.Row
	for {
		r, ok := c.Next()
		if !ok {
			c.Close()
			return out
		}
		out = append(out, r.Clone())
	}
}

// TestScanPartitionCoversHeapExactlyOnce: the union of all partitions, in
// partition order, is exactly the sequential scan — no row lost, duplicated
// or reordered, for any worker count (including more workers than pages).
func TestScanPartitionCoversHeapExactlyOnce(t *testing.T) {
	srv, _ := partitionTestServer(t, 5000)
	want := drain(srv.OpenScan(predicate.MatchAll()))
	for _, nparts := range []int{1, 2, 3, 4, 8, srv.NumPages(), srv.NumPages() + 3} {
		var got []data.Row
		for p := 0; p < nparts; p++ {
			got = append(got, drain(srv.OpenScanPartition(predicate.MatchAll(), p, nparts, nil))...)
		}
		if len(got) != len(want) {
			t.Fatalf("nparts=%d: %d rows, want %d", nparts, len(got), len(want))
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("nparts=%d: row %d differs: %v vs %v", nparts, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScanPartitionFilterPushdown: the partition cursor applies the filter
// server-side and charges transmission only for matching rows.
func TestScanPartitionFilterPushdown(t *testing.T) {
	srv, ds := partitionTestServer(t, 3000)
	f := predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 2}})
	var want int64
	for _, r := range ds.Rows {
		if r[0] == 2 {
			want++
		}
	}
	lanes := srv.Meter().Fork(4)
	var got, transmitted int64
	for p := 0; p < 4; p++ {
		got += int64(len(drain(srv.OpenScanPartition(f, p, 4, lanes[p]))))
		transmitted += lanes[p].Count(sim.CtrRowsTransmitted)
	}
	if got != want || transmitted != want {
		t.Errorf("matched %d rows, transmitted %d, want %d", got, transmitted, want)
	}
}

// TestScanPartitionLaneCharging: lane meters absorb the partition's costs and
// sum to a full cold scan; the server's own meter stays untouched, and page
// charges cover each heap page exactly once across disjoint partitions.
func TestScanPartitionLaneCharging(t *testing.T) {
	srv, ds := partitionTestServer(t, 4000)
	before := srv.Meter().Snapshot()
	lanes := srv.Meter().Fork(3)
	var pages, rows int64
	for p := 0; p < 3; p++ {
		drain(srv.OpenScanPartition(predicate.MatchAll(), p, 3, lanes[p]))
		pages += lanes[p].Count(sim.CtrServerPages)
		rows += lanes[p].Count(sim.CtrServerRows)
		if lanes[p].Count(sim.CtrServerScans) != 1 {
			t.Errorf("lane %d: %d cursor opens, want 1", p, lanes[p].Count(sim.CtrServerScans))
		}
	}
	if pages != int64(srv.NumPages()) {
		t.Errorf("lanes charged %d pages, want %d (each page exactly once)", pages, srv.NumPages())
	}
	if rows != int64(ds.N()) {
		t.Errorf("lanes charged %d rows, want %d", rows, ds.N())
	}
	if srv.Meter().Since(before) != 0 {
		t.Errorf("partition scan with lanes charged the server meter by %v", srv.Meter().Since(before))
	}
}

// TestPartitionOverSubscription pins the nparts > units behavior of every
// partitioned source: partitions past the unit count come back empty, no
// cursor panics, and the union still covers every unit exactly once — for
// tiny tables (down to a single row) and for empty auxiliary structures.
func TestPartitionOverSubscription(t *testing.T) {
	all := predicate.MatchAll()
	none := predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 9}}) // card 4: matches nothing
	for _, n := range []int{1, 3, 40, 700} {
		srv, _ := partitionTestServer(t, n)
		ks := srv.OpenKeyset(all)
		emptyKS := srv.OpenKeyset(none)
		tt := srv.CopyTIDs(all)
		emptyTT := srv.CopyTIDs(none)
		sources := []struct {
			name  string
			units int
			open  func(part, nparts int) Cursor
		}{
			{"server-scan", srv.NumPages(), func(p, np int) Cursor {
				return srv.OpenScanPartition(all, p, np, nil)
			}},
			{"keyset", ks.Size(), func(p, np int) Cursor {
				return ks.OpenScanPartition(nil, p, np, nil)
			}},
			{"keyset-empty", emptyKS.Size(), func(p, np int) Cursor {
				return emptyKS.OpenScanPartition(nil, p, np, nil)
			}},
			{"tid-join", tt.Size(), func(p, np int) Cursor {
				return tt.OpenJoinPartition(all, p, np, nil)
			}},
			{"tid-join-empty", emptyTT.Size(), func(p, np int) Cursor {
				return emptyTT.OpenJoinPartition(all, p, np, nil)
			}},
		}
		for _, src := range sources {
			want := len(drain(src.open(0, 1)))
			for _, nparts := range []int{src.units + 1, 2*src.units + 3, 16} {
				if nparts < 1 {
					nparts = 1
				}
				got, empties := 0, 0
				for p := 0; p < nparts; p++ {
					rows := len(drain(src.open(p, nparts)))
					if rows == 0 {
						empties++
					}
					got += rows
				}
				if got != want {
					t.Errorf("n=%d %s nparts=%d: drained %d rows, want %d", n, src.name, nparts, got, want)
				}
				if nparts > src.units && empties == 0 && src.units > 0 {
					t.Errorf("n=%d %s nparts=%d over %d units: expected empty partitions", n, src.name, nparts, src.units)
				}
			}
		}
	}
}
