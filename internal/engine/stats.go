package engine

import (
	"repro/internal/data"
	"repro/internal/predicate"
)

// statMaxValue bounds the per-column value histograms: categorical codes in
// [0, statMaxValue) get an exact counter, anything larger shares one overflow
// counter. The paper's workloads have attribute cardinalities far below this,
// so in practice the histograms are exact.
const statMaxValue = 64

// colCounts is the per-column value histogram of one bucket: exact counts for
// small categorical codes plus an overflow counter. Slices (not maps) keep
// every walk deterministically ordered.
type colCounts struct {
	counts []int64 // counts[v] = rows with column value v, for v < statMaxValue
	over   int64   // rows with column value >= statMaxValue
}

func (c *colCounts) note(v data.Value) {
	i := int(v)
	if i < 0 || i >= statMaxValue {
		c.over++
		return
	}
	for len(c.counts) <= i {
		c.counts = append(c.counts, 0)
	}
	c.counts[i]++
}

// count returns the number of noted rows with column value v. Values in the
// overflow range are not individually distinguishable; the shared overflow
// count is the best (over-)estimate available.
func (c *colCounts) count(v data.Value) int64 {
	i := int(v)
	if i < 0 {
		return 0
	}
	if i >= statMaxValue {
		return c.over
	}
	if i >= len(c.counts) {
		return 0
	}
	return c.counts[i]
}

// bucketStat summarizes one bucket (a heap page, or a run of staged file
// rows): the resident row count and one value histogram per column.
type bucketStat struct {
	rows int64
	cols []colCounts
}

// estimate returns the estimated number of bucket rows matching f, assuming
// column independence within the bucket (the textbook Selinger estimate, in
// pure integer arithmetic so boundaries derived from it are deterministic).
// Disjunct estimates are summed and clamped to the bucket's row count.
func (b *bucketStat) estimate(f predicate.Filter) int64 {
	if f.All() {
		return b.rows
	}
	if b.rows == 0 || f.Empty() {
		return 0
	}
	var est int64
	for _, cj := range f.Conjs() {
		est += b.estimateConj(cj)
		if est >= b.rows {
			return b.rows
		}
	}
	return est
}

func (b *bucketStat) estimateConj(cj predicate.Conj) int64 {
	est := b.rows
	for _, c := range cj {
		if est == 0 {
			return 0
		}
		if c.Attr < 0 || c.Attr >= len(b.cols) {
			continue
		}
		cnt := b.cols[c.Attr].count(c.Val)
		if c.Op == predicate.Ne {
			cnt = b.rows - cnt
		}
		est = est * cnt / b.rows
	}
	return est
}

// PageHint is the per-bucket estimate returned by partition-hint queries:
// resident rows plus the estimated rows matching the filter. Both are exact
// totals of the noted rows (Match is an estimate only when the filter touches
// more than one column of the same bucket).
type PageHint struct {
	Rows  int64 // rows resident in the bucket
	Match int64 // estimated rows matching the filter
}

// ValueStats is a cheap equi-depth statistics sketch over an ordered stream
// of rows: the stream is cut into buckets (one per heap page, or one per
// rowsPerBucket staged rows), and each bucket carries per-column value
// histograms. Everything is integer counters over slices, so hint
// computation is a pure deterministic function of the noted rows — and it is
// never metered: statistics ride along with writes the caller already paid
// for.
type ValueStats struct {
	ncols     int
	perBucket int64 // bucket capacity for sequential Note; 0 disables Note
	buckets   []bucketStat
}

// NewValueStats creates stats for rows of ncols columns. rowsPerBucket sets
// the bucket granularity for sequential Note appends; callers that place
// rows themselves (heap pages) use NoteAt and may pass 0.
func NewValueStats(ncols int, rowsPerBucket int64) *ValueStats {
	return &ValueStats{ncols: ncols, perBucket: rowsPerBucket}
}

func (vs *ValueStats) noteInto(b *bucketStat, r data.Row) {
	if b.cols == nil {
		b.cols = make([]colCounts, vs.ncols)
	}
	b.rows++
	for i := 0; i < vs.ncols && i < len(r); i++ {
		b.cols[i].note(r[i])
	}
}

// NoteAt records one row placed in the given bucket (growing the bucket list
// as needed). Heap tables use the row's page id as the bucket.
func (vs *ValueStats) NoteAt(bucket int, r data.Row) {
	if vs == nil || bucket < 0 {
		return
	}
	for len(vs.buckets) <= bucket {
		vs.buckets = append(vs.buckets, bucketStat{})
	}
	vs.noteInto(&vs.buckets[bucket], r)
}

// Note records one row appended to the stream, opening a new bucket every
// perBucket rows. Staged-file writers use this: buckets then correspond to
// contiguous row ranges of the file.
func (vs *ValueStats) Note(r data.Row) {
	if vs == nil || vs.perBucket <= 0 {
		return
	}
	n := len(vs.buckets)
	if n == 0 || vs.buckets[n-1].rows >= vs.perBucket {
		vs.buckets = append(vs.buckets, bucketStat{})
		n++
	}
	vs.noteInto(&vs.buckets[n-1], r)
}

// Append concatenates other's buckets after the receiver's, preserving
// bucket order. Parallel staging writers build per-shard stats and append
// them in partition order, mirroring how the row bytes themselves are
// concatenated; bucket boundaries need not align with perBucket because
// hints map buckets to row offsets through the recorded row counts.
func (vs *ValueStats) Append(other *ValueStats) {
	if vs == nil || other == nil {
		return
	}
	vs.buckets = append(vs.buckets, other.buckets...)
}

// NumBuckets returns the number of buckets noted so far.
func (vs *ValueStats) NumBuckets() int {
	if vs == nil {
		return 0
	}
	return len(vs.buckets)
}

// Rows returns the total number of noted rows.
func (vs *ValueStats) Rows() int64 {
	if vs == nil {
		return 0
	}
	var n int64
	for i := range vs.buckets {
		n += vs.buckets[i].rows
	}
	return n
}

// BucketHints estimates, per bucket, how many rows match f. A nil receiver
// returns nil (callers fall back to equal-width splits).
func (vs *ValueStats) BucketHints(f predicate.Filter) []PageHint {
	if vs == nil || len(vs.buckets) == 0 {
		return nil
	}
	hints := make([]PageHint, len(vs.buckets))
	for i := range vs.buckets {
		b := &vs.buckets[i]
		hints[i] = PageHint{Rows: b.rows, Match: b.estimate(f)}
	}
	return hints
}

// EstimateMatch returns the estimated total number of rows matching f.
func (vs *ValueStats) EstimateMatch(f predicate.Filter) int64 {
	if vs == nil {
		return 0
	}
	var n int64
	for i := range vs.buckets {
		n += vs.buckets[i].estimate(f)
	}
	return n
}

// PartitionHints returns the per-page matching-row estimates for f, padded
// to the heap's page count. Tables populated only through Insert/BulkLoad
// always have stats; the result is nil only for empty tables.
func (t *Table) PartitionHints(f predicate.Filter) []PageHint {
	if t.stats == nil || t.heap.NumPages() == 0 {
		return nil
	}
	hints := t.stats.BucketHints(f)
	for len(hints) < t.heap.NumPages() {
		hints = append(hints, PageHint{})
	}
	return hints
}

// WeightedBounds splits the index range [0, len(weights)) into nparts
// contiguous spans of approximately equal total weight: the returned slice b
// has nparts+1 monotone entries with b[0] = 0 and b[nparts] = len(weights),
// and part i covers [b[i], b[i+1]). Some spans may be empty. The split is a
// pure integer function of the weights, so it is deterministic. Degenerate
// inputs (no weights, non-positive totals, negative weights, nparts < 1)
// return nil and the caller falls back to equal-width splitting.
func WeightedBounds(weights []int64, nparts int) []int {
	if nparts < 1 || len(weights) == 0 {
		return nil
	}
	var total int64
	for _, w := range weights {
		if w < 0 {
			return nil
		}
		total += w
	}
	if total <= 0 {
		return nil
	}
	bounds := make([]int, nparts+1)
	bounds[nparts] = len(weights)
	var prefix int64
	j := 0
	for i := 1; i < nparts; i++ {
		// Smallest j whose weight prefix reaches the i-th equal share.
		target := total * int64(i) / int64(nparts)
		for j < len(weights) && prefix < target {
			prefix += weights[j]
			j++
		}
		bounds[i] = j
	}
	return bounds
}

// rangeOf resolves partition part of nparts over n units: span [lo, hi) from
// the weighted bounds when present, the equal-width formula otherwise. It is
// the one place all partitioned sources share, so the property tests pin the
// same arithmetic the production cursors use.
func rangeOf(part, nparts, n int, bounds []int) (lo, hi int) {
	if len(bounds) == nparts+1 {
		return bounds[part], bounds[part+1]
	}
	return part * n / nparts, (part + 1) * n / nparts
}

// RangeOf exposes rangeOf for callers outside the engine (the middleware's
// file and memory sources partition with the same arithmetic).
func RangeOf(part, nparts, n int, bounds []int) (lo, hi int) {
	return rangeOf(part, nparts, n, bounds)
}
