package engine

import (
	"fmt"
	"sync"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/storage"
)

// This file is the engine side of the multi-worker pipeline: partitioned
// construction of the §4.3.3 auxiliary structures, partitioned cursors over
// keysets and TID tables, and the per-arm execution primitive the parallel
// SQL fallback fans out over. The determinism rules match OpenScanPartition:
// workers read the immutable heap directly (never the shared LRU buffer
// pool), charge only their private lane meter, and record spans only on
// their private lane tracer, so every lane's outcome is a pure function of
// its partition and the folded result is bit-for-bit reproducible across
// GOMAXPROCS and goroutine interleavings.

// scanHeapRange drives the heap pages [lo, hi) through fn under the
// cold-scan cost model: one ServerPageIO per page holding records,
// ServerRowCPU per decoded row, all charged to lane. The aux builders feed
// it boundaries from PageBounds (weighted) or the equal-width formula.
func (s *Server) scanHeapRange(loPage, hiPage int, lane *sim.Meter, fn func(tid storage.TID, row data.Row)) {
	h := s.table.heap
	ncols := len(s.table.Cols)
	costs := lane.Costs()
	lo := storage.PageID(loPage)
	hi := storage.PageID(hiPage)
	var row data.Row
	for p := lo; p < hi; p++ {
		for slot := uint16(0); ; slot++ {
			rec, ok := heapRecord(h, p, slot)
			if !ok {
				break
			}
			if slot == 0 {
				lane.Charge(sim.CtrServerPages, costs.ServerPageIO, 1)
			}
			row = data.DecodeRow(rec, ncols, row)
			lane.Charge(sim.CtrServerRows, costs.ServerRowCPU, 1)
			fn(storage.TID{Page: p, Slot: slot}, row)
		}
	}
}

// auxWorkers clamps a requested aux-build worker count to the table's page
// count (each worker needs at least one page) and collapses to the serial
// path below two.
func (s *Server) auxWorkers(n int) int {
	if np := s.table.NumPages(); np < n {
		n = np
	}
	if n < 2 {
		return 1
	}
	return n
}

// laneTracer indexes a ForkLanes result, tolerating the nil slice a nil
// tracer produces.
func laneTracer(ltrs []*obs.Tracer, i int) *obs.Tracer {
	if ltrs == nil {
		return nil
	}
	return ltrs[i]
}

// OpenKeysetParallel is OpenKeyset with the qualifying scan partitioned over
// nworkers page ranges: each worker captures the TIDs of its own range on a
// forked lane meter, and the shards concatenate in partition order — TIDs
// ascend within a partition and partitions tile the heap in order, so the
// combined keyset is identical to the sequential scan's. Page boundaries are
// histogram-weighted (capturing a TID is free, so weights reduce to page +
// row-CPU cost), equal-width when hints are off. nworkers <= 1 (or a table
// too small to split) delegates to the serial builder.
func (s *Server) OpenKeysetParallel(f predicate.Filter, nworkers int) *Keyset {
	nworkers = s.auxWorkers(nworkers)
	if nworkers < 2 {
		return s.OpenKeyset(f)
	}
	np := s.table.NumPages()
	bounds := s.PageBounds(f, nworkers, 0)
	tr := s.Tracer()
	sp := tr.Start(obs.CatAux, "keyset-build").Attr("workers", int64(nworkers))
	lanes := s.meter.Fork(nworkers)
	ltrs := tr.ForkLanes(lanes)
	shards := make([][]storage.TID, nworkers)
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(part int, lane *sim.Meter, ltr *obs.Tracer) {
			defer wg.Done()
			psp := ltr.Start(obs.CatAux, "keyset-partition").SetPartition(part, nworkers)
			lane.Charge(sim.CtrServerScans, lane.Costs().CursorOpen, 1)
			var tids []storage.TID
			lo, hi := rangeOf(part, nworkers, np, bounds)
			s.scanHeapRange(lo, hi, lane, func(tid storage.TID, row data.Row) {
				if f.Eval(row) {
					tids = append(tids, tid)
				}
			})
			shards[part] = tids
			psp.SetRows(int64(len(tids))).End()
		}(w, lanes[w], laneTracer(ltrs, w))
	}
	wg.Wait()
	s.meter.Join(lanes)
	tr.JoinLanes(ltrs)
	ks := &Keyset{s: s}
	for _, sh := range shards {
		ks.tids = append(ks.tids, sh...)
	}
	sp.SetRows(int64(len(ks.tids))).End()
	return ks
}

// CopyTIDsParallel is CopyTIDs with the qualifying scan partitioned over
// nworkers page ranges. Each worker charges one server row-write per TID it
// captures (the copy into the server-side TID table), exactly as the serial
// builder does, and shards concatenate in partition order. Page boundaries
// weight each estimated matching row at the row-write cost, so a worker over
// the matching region doesn't straggle behind workers copying nothing.
func (s *Server) CopyTIDsParallel(f predicate.Filter, nworkers int) *TIDTable {
	nworkers = s.auxWorkers(nworkers)
	if nworkers < 2 {
		return s.CopyTIDs(f)
	}
	np := s.table.NumPages()
	bounds := s.PageBounds(f, nworkers, s.meter.Costs().ServerRowWrite)
	tr := s.Tracer()
	sp := tr.Start(obs.CatAux, "tid-table-build").Attr("workers", int64(nworkers))
	lanes := s.meter.Fork(nworkers)
	ltrs := tr.ForkLanes(lanes)
	shards := make([][]storage.TID, nworkers)
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(part int, lane *sim.Meter, ltr *obs.Tracer) {
			defer wg.Done()
			psp := ltr.Start(obs.CatAux, "tid-table-partition").SetPartition(part, nworkers)
			costs := lane.Costs()
			lane.Charge(sim.CtrServerScans, costs.CursorOpen, 1)
			var tids []storage.TID
			lo, hi := rangeOf(part, nworkers, np, bounds)
			s.scanHeapRange(lo, hi, lane, func(tid storage.TID, row data.Row) {
				if f.Eval(row) {
					tids = append(tids, tid)
					lane.Charge(sim.CtrServerRows, costs.ServerRowWrite, 1)
				}
			})
			shards[part] = tids
			psp.SetRows(int64(len(tids))).End()
		}(w, lanes[w], laneTracer(ltrs, w))
	}
	wg.Wait()
	s.meter.Join(lanes)
	tr.JoinLanes(ltrs)
	tt := &TIDTable{s: s}
	for _, sh := range shards {
		tt.tids = append(tt.tids, sh...)
	}
	sp.SetRows(int64(len(tt.tids))).End()
	return tt
}

// CopySubsetParallel is CopySubset with the qualifying scan partitioned over
// nworkers page ranges. Workers collect matching rows into private buffers,
// charging one server row-write per copied row on their lane; after the
// barrier the coordinator appends the buffers to the temp table in partition
// order (the physical bulk append — its costs were already charged in the
// lanes), so the temp table's heap order equals the sequential copy's.
func (s *Server) CopySubsetParallel(f predicate.Filter, nworkers int) (*Server, error) {
	nworkers = s.auxWorkers(nworkers)
	if nworkers < 2 {
		return s.CopySubset(f)
	}
	name := s.eng.tempName()
	t, err := s.eng.CreateTable(name, s.table.Cols)
	if err != nil {
		return nil, err
	}
	t.temp = true
	np := s.table.NumPages()
	bounds := s.PageBounds(f, nworkers, s.meter.Costs().ServerRowWrite)
	tr := s.Tracer()
	sp := tr.Start(obs.CatAux, "copy-subset").Attr("workers", int64(nworkers))
	lanes := s.meter.Fork(nworkers)
	ltrs := tr.ForkLanes(lanes)
	shards := make([][]data.Row, nworkers)
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(part int, lane *sim.Meter, ltr *obs.Tracer) {
			defer wg.Done()
			psp := ltr.Start(obs.CatAux, "copy-subset-partition").SetPartition(part, nworkers)
			costs := lane.Costs()
			lane.Charge(sim.CtrServerScans, costs.CursorOpen, 1)
			var rows []data.Row
			lo, hi := rangeOf(part, nworkers, np, bounds)
			s.scanHeapRange(lo, hi, lane, func(_ storage.TID, row data.Row) {
				if f.Eval(row) {
					rows = append(rows, row.Clone())
					lane.Charge(sim.CtrServerRows, costs.ServerRowWrite, 1)
				}
			})
			shards[part] = rows
			psp.SetRows(int64(len(rows))).End()
		}(w, lanes[w], laneTracer(ltrs, w))
	}
	wg.Wait()
	s.meter.Join(lanes)
	tr.JoinLanes(ltrs)
	for _, sh := range shards {
		if err := s.eng.BulkLoad(t, sh); err != nil {
			sp.End()
			return nil, err
		}
	}
	sp.SetRows(t.NumRows()).End()
	return &Server{eng: s.eng, meter: s.meter, tracer: s.tracer, schema: s.schema, table: t, noHints: s.noHints}, nil
}

// OpenScanPartition re-scans one contiguous partition of the keyset:
// TIDs [part*n/nparts, (part+1)*n/nparts), so the partitions tile the keyset
// in capture order. All costs charge to lane. Like the heap partition
// cursors, fetches bypass the shared buffer pool (its LRU state would make
// accounting depend on lane interleaving) and charge the amortized random-I/O
// TIDFetch cost per record against the immutable heap.
func (k *Keyset) OpenScanPartition(sproc *predicate.Filter, part, nparts int, lane *sim.Meter) Cursor {
	if part < 0 || nparts < 1 || part >= nparts {
		panic(fmt.Sprintf("engine: invalid keyset partition %d of %d", part, nparts))
	}
	lo, hi := rangeOf(part, nparts, len(k.tids), nil)
	return k.OpenScanRange(sproc, lo, hi, lane)
}

// OpenScanRange is OpenScanPartition over an explicit TID index range
// [lo, hi), typically chosen by ScanBounds. Empty ranges are valid.
func (k *Keyset) OpenScanRange(sproc *predicate.Filter, lo, hi int, lane *sim.Meter) Cursor {
	if lo < 0 || hi < lo || hi > len(k.tids) {
		panic(fmt.Sprintf("engine: invalid keyset range [%d, %d) of %d TIDs", lo, hi, len(k.tids)))
	}
	if lane == nil {
		lane = k.s.meter
	}
	lane.Charge(sim.CtrServerScans, lane.Costs().CursorOpen, 1)
	return &keysetPartCursor{k: k, sproc: sproc, lane: lane, i: lo, end: hi}
}

// ScanBounds returns histogram-guided TID boundaries splitting a keyset
// re-scan into nparts lanes of approximately equal estimated cost. Every TID
// pays the fetch (plus sproc CPU); the transmit-and-process cost — RowTransmit
// plus the caller's perMatch — is scaled by the match density of the TID's
// home page under the sproc filter, from the same per-page statistics that
// guide heap scans. Nil when hints are disabled or the keyset is empty.
func (k *Keyset) ScanBounds(sproc *predicate.Filter, nparts int, perMatch int64) []int {
	s := k.s
	if s.noHints || nparts < 2 || len(k.tids) == 0 {
		return nil
	}
	costs := s.meter.Costs()
	base := costs.TIDFetch
	var hints []PageHint
	if sproc != nil {
		base += costs.ServerRowCPU
		hints = s.table.PartitionHints(*sproc)
	}
	per := costs.RowTransmit + perMatch
	weights := make([]int64, len(k.tids))
	for i, tid := range k.tids {
		w := base
		if hints == nil {
			// No sproc: every keyset row is transmitted.
			w += per
		} else if h := hints[tid.Page]; h.Rows > 0 {
			w += per * h.Match / h.Rows
		}
		weights[i] = w
	}
	return WeightedBounds(weights, nparts)
}

// keysetPartCursor is a keysetCursor restricted to a TID range, charging a
// dedicated lane meter and fetching records straight from the heap.
type keysetPartCursor struct {
	k      *Keyset
	sproc  *predicate.Filter
	lane   *sim.Meter
	i, end int
	row    data.Row
	closed bool
}

func (c *keysetPartCursor) Next() (data.Row, bool) {
	if c.closed {
		return nil, false
	}
	s := c.k.s
	h := s.table.heap
	ncols := len(s.table.Cols)
	costs := c.lane.Costs()
	for c.i < c.end {
		tid := c.k.tids[c.i]
		c.i++
		rec, ok := heapRecord(h, tid.Page, tid.Slot)
		if !ok {
			panic(fmt.Sprintf("engine: keyset partition fetch: no record at %v", tid))
		}
		c.lane.Charge(sim.CtrTIDFetches, costs.TIDFetch, 1)
		c.row = data.DecodeRow(rec, ncols, c.row)
		if c.sproc != nil {
			c.lane.Charge(sim.CtrServerRows, costs.ServerRowCPU, 1)
			if !c.sproc.Eval(c.row) {
				continue
			}
		}
		c.lane.Charge(sim.CtrRowsTransmitted, costs.RowTransmit, 1)
		return c.row, true
	}
	return nil, false
}

func (c *keysetPartCursor) Close() { c.closed = true }

// OpenJoinPartition retrieves one contiguous partition of the TID table via
// a TID join, applying filter server-side and charging all costs to lane.
// Partitions tile the TID table in capture order; fetches use the same
// pool-bypassing model as OpenScanPartition on the keyset.
func (t *TIDTable) OpenJoinPartition(filter predicate.Filter, part, nparts int, lane *sim.Meter) Cursor {
	if part < 0 || nparts < 1 || part >= nparts {
		panic(fmt.Sprintf("engine: invalid TID-join partition %d of %d", part, nparts))
	}
	lo, hi := rangeOf(part, nparts, len(t.tids), nil)
	return t.OpenJoinRange(filter, lo, hi, lane)
}

// OpenJoinRange is OpenJoinPartition over an explicit TID index range
// [lo, hi), typically chosen by JoinBounds. Empty ranges are valid.
func (t *TIDTable) OpenJoinRange(filter predicate.Filter, lo, hi int, lane *sim.Meter) Cursor {
	if lo < 0 || hi < lo || hi > len(t.tids) {
		panic(fmt.Sprintf("engine: invalid TID-join range [%d, %d) of %d TIDs", lo, hi, len(t.tids)))
	}
	if lane == nil {
		lane = t.s.meter
	}
	lane.Charge(sim.CtrServerScans, lane.Costs().CursorOpen, 1)
	return &tidJoinPartCursor{t: t, filter: filter, lane: lane, i: lo, end: hi}
}

// JoinBounds returns histogram-guided TID boundaries splitting a TID join
// into nparts lanes of approximately equal estimated cost: every TID pays
// probe + fetch + row CPU, and the transmit-and-process cost (RowTransmit +
// perMatch) is scaled by the match density of the TID's home page under
// filter. Nil when hints are disabled or the table is empty.
func (t *TIDTable) JoinBounds(filter predicate.Filter, nparts int, perMatch int64) []int {
	s := t.s
	if s.noHints || nparts < 2 || len(t.tids) == 0 {
		return nil
	}
	costs := s.meter.Costs()
	base := costs.IndexProbe + costs.TIDFetch + costs.ServerRowCPU
	hints := s.table.PartitionHints(filter)
	per := costs.RowTransmit + perMatch
	weights := make([]int64, len(t.tids))
	for i, tid := range t.tids {
		w := base
		if hints == nil {
			w += per
		} else if h := hints[tid.Page]; h.Rows > 0 {
			w += per * h.Match / h.Rows
		}
		weights[i] = w
	}
	return WeightedBounds(weights, nparts)
}

// tidJoinPartCursor is a tidJoinCursor restricted to a TID range, charging a
// dedicated lane meter and fetching records straight from the heap.
type tidJoinPartCursor struct {
	t      *TIDTable
	filter predicate.Filter
	lane   *sim.Meter
	i, end int
	row    data.Row
	closed bool
}

func (c *tidJoinPartCursor) Next() (data.Row, bool) {
	if c.closed {
		return nil, false
	}
	s := c.t.s
	h := s.table.heap
	ncols := len(s.table.Cols)
	costs := c.lane.Costs()
	for c.i < c.end {
		tid := c.t.tids[c.i]
		c.i++
		c.lane.Charge(sim.CtrIndexProbes, costs.IndexProbe, 1)
		rec, ok := heapRecord(h, tid.Page, tid.Slot)
		if !ok {
			panic(fmt.Sprintf("engine: TID-join partition fetch: no record at %v", tid))
		}
		c.lane.Charge(sim.CtrTIDFetches, costs.TIDFetch, 1)
		c.row = data.DecodeRow(rec, ncols, c.row)
		c.lane.Charge(sim.CtrServerRows, costs.ServerRowCPU, 1)
		if !c.filter.Eval(c.row) {
			continue
		}
		c.lane.Charge(sim.CtrRowsTransmitted, costs.RowTransmit, 1)
		return c.row, true
	}
	return nil, false
}

func (c *tidJoinPartCursor) Close() { c.closed = true }

// WarmTable reports whether arm scans of the table run against a resident
// buffer pool, faulting the table in if needed. When the table fits the
// pool, one sequential prefetch on the server meter makes every page
// resident — the same pages, charges and LRU state a serial statement's
// first scan would produce, and pages already resident from earlier
// statements cost nothing. When the table exceeds the pool a sequential
// scan floods the LRU and every later scan re-pays full disk I/O (the
// paper's target regime), so there is nothing to warm and arm scans must
// model cold reads like the serial UNION's arms do.
func (s *Server) WarmTable() bool {
	h := s.table.heap
	np := h.NumPages()
	if np > s.eng.bp.Capacity() {
		return false
	}
	for p := 0; p < np; p++ {
		s.eng.bp.TouchForScan(h, storage.PageID(p))
	}
	return true
}

// CountsArmScan executes one GROUP BY arm of a §2.3 counts query on a
// private lane: a full scan evaluating the pushed-down path filter and one
// aggregation step per qualifying row, which is handed to fn. The caller
// maintains the groups (the arm's counts shard), charges RowTransmit per
// resulting group row, and charges the per-statement QueryStartup once per
// request on its own meter — the middleware still issues one UNION statement
// per request; the server merely executes its arms on parallel CPUs
// (intra-query parallelism), so no per-arm startup exists.
//
// The engine's serial UNION execution performs one scan per arm too (the
// optimizer does not share scans across arms), through the shared buffer
// pool. warm — typically the result of a parent-side WarmTable call — says
// whether the pool holds the whole table: warm arms read resident pages for
// free, exactly like serial arms of a pool-resident table, while cold arms
// (table larger than the pool, where every serial scan re-faults each page)
// pay ServerPageIO per page. Row CPU and aggregation costs are always
// charged. Lanes never touch the pool itself, so concurrent arm scans stay
// race-free and deterministic.
func (s *Server) CountsArmScan(f predicate.Filter, lane *sim.Meter, warm bool, fn func(data.Row)) {
	if lane == nil {
		lane = s.meter
	}
	costs := lane.Costs()
	h := s.table.heap
	ncols := len(s.table.Cols)
	np := h.NumPages()
	var row data.Row
	for p := storage.PageID(0); p < storage.PageID(np); p++ {
		for slot := uint16(0); ; slot++ {
			rec, ok := heapRecord(h, p, slot)
			if !ok {
				break
			}
			if slot == 0 && !warm {
				lane.Charge(sim.CtrServerPages, costs.ServerPageIO, 1)
			}
			row = data.DecodeRow(rec, ncols, row)
			lane.Charge(sim.CtrServerRows, costs.ServerRowCPU, 1)
			if f.Eval(row) {
				lane.Charge(sim.CtrSQLAggRows, costs.SQLAggRow, 1)
				fn(row)
			}
		}
	}
}
