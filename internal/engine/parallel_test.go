package engine

import (
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func auxTestFilter() predicate.Filter {
	return predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 1}})
}

// TestParallelBuildersMatchSerial: the partitioned keyset, TID-table and
// copy-table builders produce exactly the structures the serial builders do
// (same TIDs in the same order, same copied rows in the same heap order), for
// any worker count including more workers than pages.
func TestParallelBuildersMatchSerial(t *testing.T) {
	f := auxTestFilter()
	for _, nw := range []int{1, 2, 3, 4, 100} {
		srv, _ := partitionTestServer(t, 4000)
		wantKS := srv.OpenKeyset(f)
		wantTT := srv.CopyTIDs(f)
		wantSub, err := srv.CopySubset(f)
		if err != nil {
			t.Fatal(err)
		}

		gotKS := srv.OpenKeysetParallel(f, nw)
		if !reflect.DeepEqual(gotKS.tids, wantKS.tids) {
			t.Errorf("nw=%d: parallel keyset TIDs differ from serial (%d vs %d)",
				nw, len(gotKS.tids), len(wantKS.tids))
		}
		gotTT := srv.CopyTIDsParallel(f, nw)
		if !reflect.DeepEqual(gotTT.tids, wantTT.tids) {
			t.Errorf("nw=%d: parallel TID table differs from serial (%d vs %d)",
				nw, len(gotTT.tids), len(wantTT.tids))
		}
		gotSub, err := srv.CopySubsetParallel(f, nw)
		if err != nil {
			t.Fatal(err)
		}
		wantRows := drain(wantSub.OpenScan(predicate.MatchAll()))
		gotRows := drain(gotSub.OpenScan(predicate.MatchAll()))
		if !reflect.DeepEqual(gotRows, wantRows) {
			t.Errorf("nw=%d: parallel copy-table rows differ from serial (%d vs %d)",
				nw, len(gotRows), len(wantRows))
		}
	}
}

// TestParallelBuildersChargeLanes: a partitioned build advances the server
// clock by the slowest lane plus nothing serial, which is strictly less than
// the serial build's full-scan time for a table big enough to split.
func TestParallelBuildersChargeLanes(t *testing.T) {
	f := auxTestFilter()
	srvSerial, _ := partitionTestServer(t, 6000)
	srvSerial.OpenKeyset(f)
	serial := srvSerial.Meter().Now()

	srvPar, _ := partitionTestServer(t, 6000)
	srvPar.OpenKeysetParallel(f, 4)
	parallel := srvPar.Meter().Now()

	if parallel >= serial {
		t.Errorf("parallel keyset build took %v, serial %v — no speedup", parallel, serial)
	}
}

// TestKeysetScanPartitionCoversKeysetExactlyOnce: the union of all keyset
// scan partitions, in partition order, equals the serial keyset re-scan.
func TestKeysetScanPartitionCoversKeysetExactlyOnce(t *testing.T) {
	srv, _ := partitionTestServer(t, 3000)
	f := auxTestFilter()
	ks := srv.OpenKeyset(f)
	sproc := predicate.Or(predicate.Conj{{Attr: 1, Op: predicate.Eq, Val: 2}})
	want := drain(ks.OpenScan(&sproc))
	for _, nparts := range []int{1, 2, 3, 5, ks.Size(), ks.Size() + 7} {
		var got []data.Row
		for p := 0; p < nparts; p++ {
			got = append(got, drain(ks.OpenScanPartition(&sproc, p, nparts, nil))...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("nparts=%d: %d rows, want %d (or order differs)", nparts, len(got), len(want))
		}
	}
}

// TestTIDJoinPartitionCoversTableExactlyOnce: the union of all TID-join
// partitions, in partition order, equals the serial TID join.
func TestTIDJoinPartitionCoversTableExactlyOnce(t *testing.T) {
	srv, _ := partitionTestServer(t, 3000)
	f := auxTestFilter()
	tt := srv.CopyTIDs(f)
	sub := predicate.Or(predicate.Conj{
		{Attr: 0, Op: predicate.Eq, Val: 1},
		{Attr: 2, Op: predicate.Ne, Val: 3},
	})
	want := drain(tt.OpenJoin(sub))
	for _, nparts := range []int{1, 2, 4, 7} {
		var got []data.Row
		for p := 0; p < nparts; p++ {
			got = append(got, drain(tt.OpenJoinPartition(sub, p, nparts, nil))...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("nparts=%d: %d rows, want %d (or order differs)", nparts, len(got), len(want))
		}
	}
}

// TestAuxPartitionLaneCharging: partitioned keyset/TID-join cursors charge
// only their lane meters — one cursor open per lane, one TID fetch per
// record — and leave the server meter untouched.
func TestAuxPartitionLaneCharging(t *testing.T) {
	srv, _ := partitionTestServer(t, 3000)
	f := auxTestFilter()
	ks := srv.OpenKeyset(f)
	tt := srv.CopyTIDs(f)
	before := srv.Meter().Snapshot()

	lanes := srv.Meter().Fork(3)
	var fetches int64
	for p := 0; p < 3; p++ {
		drain(ks.OpenScanPartition(nil, p, 3, lanes[p]))
		if got := lanes[p].Count(sim.CtrServerScans); got != 1 {
			t.Errorf("keyset lane %d: %d cursor opens, want 1", p, got)
		}
		fetches += lanes[p].Count(sim.CtrTIDFetches)
	}
	if fetches != int64(ks.Size()) {
		t.Errorf("keyset lanes charged %d TID fetches, want %d", fetches, ks.Size())
	}

	lanes = srv.Meter().Fork(3)
	fetches = 0
	for p := 0; p < 3; p++ {
		drain(tt.OpenJoinPartition(predicate.MatchAll(), p, 3, lanes[p]))
		fetches += lanes[p].Count(sim.CtrTIDFetches)
		if got, want := lanes[p].Count(sim.CtrIndexProbes), lanes[p].Count(sim.CtrTIDFetches); got != want {
			t.Errorf("tid-join lane %d: %d index probes, want %d", p, got, want)
		}
	}
	if fetches != int64(tt.Size()) {
		t.Errorf("tid-join lanes charged %d TID fetches, want %d", fetches, tt.Size())
	}

	if srv.Meter().Since(before) != 0 {
		t.Errorf("partitioned aux cursors charged the server meter by %v", srv.Meter().Since(before))
	}
}

// TestCountsArmScanAggregates: one GROUP BY arm charges a cold scan of every
// page and one aggregation step per qualifying row — never a statement
// startup, which belongs to the request's single UNION statement on the
// parent — and hands exactly the qualifying rows to the caller. A warm arm
// (table resident in the buffer pool) pays no page IO but all per-row costs.
func TestCountsArmScanAggregates(t *testing.T) {
	srv, ds := partitionTestServer(t, 2000)
	f := auxTestFilter()
	var want int64
	for _, r := range ds.Rows {
		if r[0] == 1 {
			want++
		}
	}
	lane := srv.Meter().Fork(1)[0]
	var got int64
	srv.CountsArmScan(f, lane, false, func(data.Row) { got++ })
	if got != want {
		t.Errorf("arm scan handed %d rows to fn, want %d", got, want)
	}
	if n := lane.Count(sim.CtrSQLStatements); n != 0 {
		t.Errorf("arm scan charged %d statements, want 0 (startup is per request, not per arm)", n)
	}
	if n := lane.Count(sim.CtrSQLAggRows); n != want {
		t.Errorf("arm scan charged %d agg rows, want %d", n, want)
	}
	if n := lane.Count(sim.CtrServerPages); n != int64(srv.NumPages()) {
		t.Errorf("arm scan charged %d pages, want %d", n, srv.NumPages())
	}

	cold := lane.Now()
	srv.CountsArmScan(f, lane, true, func(data.Row) {})
	if n := lane.Count(sim.CtrServerPages); n != int64(srv.NumPages()) {
		t.Errorf("warm arm scan charged page IO: %d pages total, want %d", n, srv.NumPages())
	}
	warmCost := lane.Now() - cold
	if warmCost <= 0 || warmCost >= cold {
		t.Errorf("warm arm cost %v not in (0, cold cost %v)", warmCost, cold)
	}
	if n := lane.Count(sim.CtrSQLAggRows); n != 2*want {
		t.Errorf("warm arm scan charged %d agg rows total, want %d", n, 2*want)
	}
}

// TestWarmTableResidency: WarmTable faults a pool-sized table in once (later
// calls hit resident pages for free) and refuses to warm a table larger than
// the pool, where sequential scans flood the LRU.
func TestWarmTableResidency(t *testing.T) {
	srv, ds := partitionTestServer(t, 2000)
	meter := srv.Meter()
	if !srv.WarmTable() {
		t.Fatal("table within pool capacity reported not warmable")
	}
	after := meter.Count(sim.CtrServerPages)
	if !srv.WarmTable() {
		t.Fatal("second WarmTable call reported not warmable")
	}
	if n := meter.Count(sim.CtrServerPages); n != after {
		t.Errorf("second WarmTable re-faulted %d pages, want 0", n-after)
	}

	// A one-page pool can never hold the multi-page table.
	small, err := NewServer(New(sim.NewDefaultMeter(), 1), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumPages() < 2 {
		t.Fatalf("test table has %d pages, need >= 2", small.NumPages())
	}
	if small.WarmTable() {
		t.Error("table larger than the pool reported warm")
	}
}
