package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/storage"
)

// This file is the engine half of in-database scoring: a compiled decision
// model as a flat node array (the representation the vectorized scoring
// kernel of score.go walks), plus the model catalog — every registered model
// is materialized as an ordinary engine table, one row per node, so models
// survive as data: they can be inspected with plain SELECTs, travel with a
// dump of the catalog, and be reconstructed without the client that built
// them. dtree.Compile produces Models from finished trees; the engine never
// imports the tree builder.

// ModelCatalogPrefix prefixes the catalog table backing each registered
// model: model "m" lives in table "model_m".
const ModelCatalogPrefix = "model_"

// ModelCatalogTable returns the catalog table name backing a model.
func ModelCatalogTable(model string) string { return ModelCatalogPrefix + model }

// ModelNode is one node of a compiled model. Nodes are addressed by index
// into Model.Nodes; node 0 is the root.
type ModelNode struct {
	Parent int32 // parent node index, -1 at the root
	Leaf   bool

	// Split, meaningful at internal nodes only.
	Attr     int32      // split attribute (column index), -1 at leaves
	Val      data.Value // binary split value: Kids[0] iff row[Attr] == Val
	Multiway bool
	Vals     []data.Value // multiway arm values, aligned with Kids
	Kids     []int32      // child node indices

	// Prediction state, carried by every node: internal nodes keep their
	// majority class and distribution as the fallback for attribute values
	// unseen at training time (the multiway dictionary-miss rule).
	Class  data.Value
	Counts []int64 // class-count distribution over the training rows at the node
}

// Model is a compiled classification model: a flat array of nodes walked
// from index 0. It is the common representation behind the nested-CASE SQL
// form and the persisted catalog form — all three score identically.
type Model struct {
	Name    string
	Cols    int // training-schema width (scored rows index columns < Cols)
	Classes int // class-label cardinality (length of every Counts slice)
	Nodes   []ModelNode
}

// Validate checks structural invariants: a rooted tree over the node array
// with consistent parent/child pointers, two kids per binary split, aligned
// arm values per multiway split, and a full distribution at every node.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("model: empty name")
	}
	if m.Classes < 1 {
		return fmt.Errorf("model %q: class cardinality %d", m.Name, m.Classes)
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("model %q: no nodes", m.Name)
	}
	if m.Nodes[0].Parent != -1 {
		return fmt.Errorf("model %q: node 0 is not a root (parent %d)", m.Name, m.Nodes[0].Parent)
	}
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if i > 0 {
			if n.Parent < 0 || int(n.Parent) >= len(m.Nodes) || int(n.Parent) == i {
				return fmt.Errorf("model %q: node %d has parent %d", m.Name, i, n.Parent)
			}
		}
		if len(n.Counts) != m.Classes {
			return fmt.Errorf("model %q: node %d carries %d counts, want %d", m.Name, i, len(n.Counts), m.Classes)
		}
		for _, c := range n.Counts {
			if c < 0 || c > math.MaxInt32 {
				return fmt.Errorf("model %q: node %d count %d out of catalog range", m.Name, i, c)
			}
		}
		if n.Class < 0 || int(n.Class) >= m.Classes {
			return fmt.Errorf("model %q: node %d predicts class %d of %d", m.Name, i, n.Class, m.Classes)
		}
		if n.Leaf {
			if len(n.Kids) != 0 {
				return fmt.Errorf("model %q: leaf %d has %d children", m.Name, i, len(n.Kids))
			}
			continue
		}
		if n.Attr < 0 || int(n.Attr) >= m.Cols {
			return fmt.Errorf("model %q: node %d splits on attribute %d of %d", m.Name, i, n.Attr, m.Cols)
		}
		if n.Multiway {
			if len(n.Vals) != len(n.Kids) || len(n.Kids) == 0 {
				return fmt.Errorf("model %q: multiway node %d has %d arms over %d values", m.Name, i, len(n.Kids), len(n.Vals))
			}
		} else if len(n.Kids) != 2 {
			return fmt.Errorf("model %q: binary node %d has %d children", m.Name, i, len(n.Kids))
		}
		for _, k := range n.Kids {
			if k <= 0 || int(k) >= len(m.Nodes) {
				return fmt.Errorf("model %q: node %d has child %d", m.Name, i, k)
			}
			if m.Nodes[k].Parent != int32(i) {
				return fmt.Errorf("model %q: node %d claims child %d whose parent is %d", m.Name, i, k, m.Nodes[k].Parent)
			}
		}
	}
	return nil
}

// Attrs returns the sorted distinct split attributes — the only columns the
// scoring scan has to read. Always non-nil (a single-leaf model needs no
// columns, and an empty slice keeps the page model from charging all of
// them).
func (m *Model) Attrs() []int {
	seen := map[int]bool{}
	for i := range m.Nodes {
		if !m.Nodes[i].Leaf {
			seen[int(m.Nodes[i].Attr)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// predictNode walks the model for one row and returns the node where the
// prediction is made — the reached leaf, or the internal node whose multiway
// split had no arm for the row's value (the majority-class fallback) — plus
// the number of nodes probed. The walk reproduces dtree's Predict exactly.
func (m *Model) predictNode(row data.Row) (int32, int64) {
	n := int32(0)
	probes := int64(0)
	for {
		nd := &m.Nodes[n]
		probes++
		if nd.Leaf {
			return n, probes
		}
		v := row[nd.Attr]
		if !nd.Multiway {
			if v == nd.Val {
				n = nd.Kids[0]
			} else {
				n = nd.Kids[1]
			}
			continue
		}
		next := int32(-1)
		for i, sv := range nd.Vals {
			if sv == v {
				next = nd.Kids[i]
				break
			}
		}
		if next < 0 {
			return n, probes
		}
		n = next
	}
}

// Predict classifies one row (the unmetered convenience form; the metered
// paths run through the scoring kernel or the classify() evaluator).
func (m *Model) Predict(row data.Row) data.Value {
	n, _ := m.predictNode(row)
	return m.Nodes[n].Class
}

// catalogCols returns the catalog table's column layout for a model with the
// given class cardinality: fixed node/edge/split/prediction columns followed
// by one count column per class.
func catalogCols(classes int) []string {
	cols := []string{"node", "parent", "arm", "leaf", "multiway", "split_attr", "split_val", "arm_val", "class"}
	for c := 0; c < classes; c++ {
		cols = append(cols, fmt.Sprintf("c%d", c))
	}
	return cols
}

// catalogRows encodes the model as catalog rows, one per node: identity
// (node, parent, arm = index within the parent's children), the edge value
// that routes a row from the parent to this node (arm_val), this node's own
// split (split_attr, split_val, multiway), and its prediction state (class
// and the per-class counts).
func (m *Model) catalogRows() []data.Row {
	rows := make([]data.Row, len(m.Nodes))
	arm := make([]int32, len(m.Nodes))
	armVal := make([]data.Value, len(m.Nodes))
	for i := range m.Nodes {
		n := &m.Nodes[i]
		for k, kid := range n.Kids {
			arm[kid] = int32(k)
			if n.Multiway {
				armVal[kid] = n.Vals[k]
			} else {
				armVal[kid] = n.Val
			}
		}
	}
	// The root has no incoming edge, so its arm_val cell is free: it carries
	// the training-schema width, which the reconstruction needs to size
	// scored rows exactly as the original model did.
	armVal[0] = data.Value(m.Cols)
	for i := range m.Nodes {
		n := &m.Nodes[i]
		row := make(data.Row, 0, 9+m.Classes)
		splitAttr, splitVal := int32(-1), data.Value(0)
		if !n.Leaf {
			splitAttr, splitVal = n.Attr, n.Val
		}
		a := int32(-1)
		if i > 0 {
			a = arm[i]
		}
		row = append(row,
			data.Value(i), data.Value(n.Parent), data.Value(a),
			data.Value(b32(n.Leaf)), data.Value(b32(n.Multiway)),
			data.Value(splitAttr), splitVal, armVal[i], n.Class)
		for _, c := range n.Counts {
			row = append(row, data.Value(c))
		}
		rows[i] = row
	}
	return rows
}

func b32(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// RegisterModel validates the model, materializes its catalog table
// (ModelCatalogTable(name), one row per node) and caches it for classify()
// and SCORE TABLE. Registration fails if a model of the same name — or a
// clashing table — already exists. The catalog load is unmetered, like every
// other bulk load.
func (e *Engine) RegisterModel(m *Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if _, ok := e.models[m.Name]; ok {
		return fmt.Errorf("engine: model %q already registered", m.Name)
	}
	t, err := e.CreateTable(ModelCatalogTable(m.Name), catalogCols(m.Classes))
	if err != nil {
		return err
	}
	if err := e.BulkLoad(t, m.catalogRows()); err != nil {
		return err
	}
	e.models[m.Name] = m
	return nil
}

// Model resolves a registered model by name. A model whose in-memory entry
// is gone (a fresh registry over surviving tables) is reconstructed from its
// catalog table — that round trip is what "models survive as data" means —
// and re-cached.
func (e *Engine) Model(name string) (*Model, error) {
	if m, ok := e.models[name]; ok {
		return m, nil
	}
	m, err := e.ModelFromCatalog(name)
	if err != nil {
		return nil, err
	}
	e.models[name] = m
	return m, nil
}

// ModelNames lists every resolvable model, sorted: cached entries plus
// catalog tables awaiting reconstruction.
func (e *Engine) ModelNames() []string {
	seen := map[string]bool{}
	for n := range e.models {
		seen[n] = true
	}
	for tn := range e.tables {
		if strings.HasPrefix(tn, ModelCatalogPrefix) {
			seen[strings.TrimPrefix(tn, ModelCatalogPrefix)] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModelFromCatalog reconstructs a model from its catalog table, charging a
// metered scan of the table (loading a persisted model is a real read). The
// result is validated, so a corrupted catalog is an error, not a bad model.
func (e *Engine) ModelFromCatalog(name string) (*Model, error) {
	t, err := e.Table(ModelCatalogTable(name))
	if err != nil {
		return nil, fmt.Errorf("engine: no model %q: %v", name, err)
	}
	const fixed = 9
	if len(t.Cols) <= fixed {
		return nil, fmt.Errorf("engine: model %q: catalog has %d columns, want > %d", name, len(t.Cols), fixed)
	}
	classes := len(t.Cols) - fixed
	nn := int(t.NumRows())
	m := &Model{Name: name, Classes: classes, Nodes: make([]ModelNode, nn)}
	filled := make([]bool, nn)
	var scanErr error
	e.scan(t, func(_ storage.TID, row data.Row) bool {
		id := int(row[0])
		if id < 0 || id >= nn || filled[id] {
			scanErr = fmt.Errorf("engine: model %q: catalog node id %d invalid or duplicated", name, id)
			return false
		}
		filled[id] = true
		n := &m.Nodes[id]
		n.Parent = int32(row[1])
		n.Leaf = row[3] != 0
		n.Multiway = row[4] != 0
		n.Attr = int32(row[5])
		n.Val = row[6]
		n.Class = row[8]
		n.Counts = make([]int64, classes)
		for c := 0; c < classes; c++ {
			n.Counts[c] = int64(row[fixed+c])
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	for id, ok := range filled {
		if !ok {
			return nil, fmt.Errorf("engine: model %q: catalog is missing node %d", name, id)
		}
	}
	// Re-derive child pointers and arm values from the edge columns: every
	// non-root row names its parent, its arm index and the value that routes
	// a scored row from the parent to it.
	type edge struct {
		arm    int32
		armVal data.Value
	}
	edges := make([]edge, nn)
	e.scan(t, func(_ storage.TID, row data.Row) bool {
		edges[int(row[0])] = edge{arm: int32(row[2]), armVal: row[7]}
		return true
	})
	kids := make([][]int32, nn)
	for id := 1; id < nn; id++ {
		p := int(m.Nodes[id].Parent)
		if p < 0 || p >= nn {
			return nil, fmt.Errorf("engine: model %q: node %d has parent %d", name, id, p)
		}
		kids[p] = append(kids[p], int32(id))
	}
	maxAttr := -1
	for id := 0; id < nn; id++ {
		n := &m.Nodes[id]
		if int(n.Attr) > maxAttr {
			maxAttr = int(n.Attr)
		}
		if n.Leaf {
			n.Attr = -1
			continue
		}
		ks := kids[id]
		sort.Slice(ks, func(a, b int) bool { return edges[ks[a]].arm < edges[ks[b]].arm })
		for i, k := range ks {
			if int(edges[k].arm) != i {
				return nil, fmt.Errorf("engine: model %q: node %d arm %d missing or duplicated", name, id, i)
			}
		}
		n.Kids = ks
		if n.Multiway {
			n.Vals = make([]data.Value, len(ks))
			for i, k := range ks {
				n.Vals[i] = edges[k].armVal
			}
		}
	}
	m.Cols = int(edges[0].armVal) // stashed in the root's free arm_val cell
	if m.Cols < maxAttr+1 {
		return nil, fmt.Errorf("engine: model %q: catalog width %d below split attribute %d", name, m.Cols, maxAttr)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
