package engine

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/storage"
)

// This file is the server side of the columnar scan path: every table keeps
// a column-major, dictionary-encoded copy of its heap (storage.ColStore)
// built at load time and kept in sync with Insert, and the middleware scans
// it in 1024-row blocks through ScanColumnarRange. Three things distinguish
// it from the row cursors in server.go:
//
//   - Zone-map skipping: each row group's sorted dictionaries decide, per
//     group, whether the pushed-down filter can match at all. A skipped
//     group charges nothing — not even page I/O — which is where the
//     clustered-workload win comes from.
//   - Code-space predicates: the filter is compiled once per group into
//     dictionary codes, so the inner row loop compares uint16s instead of
//     re-evaluating predicate.Cond on materialized values.
//   - Block-granular metering: the per-row costs (ColRowEval,
//     ColRowTransmit) are cheaper than their row-path counterparts because
//     cursor bookkeeping and the wire protocol amortize over whole blocks,
//     and page I/O is charged per encoded column actually needed.
//
// Like the partition cursors, the columnar scan bypasses the shared LRU
// buffer pool (cold-scan model): concurrent lanes would otherwise interleave
// nondeterministically in the pool's state, and leaving the pool untouched
// also keeps the row path's I/O accounting independent of whether columnar
// copies exist.

// BlockRows is the number of rows the columnar scan hands to the middleware
// per callback: the vectorization unit of the filter-then-count kernel.
const BlockRows = 1024

// codeCond is one simple condition compiled into a row group's code space.
type codeCond struct {
	col  int
	ne   bool
	code uint16
}

// GroupConj is one conjunction (a node's path predicate) compiled against
// one row group's dictionaries. Conditions that are always true in the
// group are dropped at compile time; a conjunction that cannot match any
// row of the group compiles to None.
type GroupConj struct {
	conds []codeCond
	none  bool
}

// CompileGroupConj compiles cj against g's dictionaries.
func CompileGroupConj(g *storage.ColGroup, cj predicate.Conj) GroupConj {
	var gc GroupConj
	for _, c := range cj {
		code, ok := g.FindCode(c.Attr, c.Val)
		card := len(g.Dict(c.Attr))
		if c.Op == predicate.Eq {
			if !ok {
				return GroupConj{none: true} // value absent: zone-map verdict
			}
			if card == 1 {
				continue // every row of the group has this value
			}
			gc.conds = append(gc.conds, codeCond{col: c.Attr, code: code})
		} else {
			if !ok {
				continue // value absent: Ne is true for every row
			}
			if card == 1 {
				return GroupConj{none: true} // every row has exactly this value
			}
			gc.conds = append(gc.conds, codeCond{col: c.Attr, ne: true, code: code})
		}
	}
	return gc
}

// None reports that no row of the group can satisfy the conjunction.
func (gc *GroupConj) None() bool { return gc.none }

// Refine filters sel (group-relative row indices) down to the rows
// satisfying the compiled conjunction, appending to out and returning it.
// Unmetered: callers charge their own per-row kernel costs.
func (gc *GroupConj) Refine(g *storage.ColGroup, sel []int32, out []int32) []int32 {
	if gc.none {
		return out
	}
	if len(gc.conds) == 0 {
		return append(out, sel...)
	}
	for _, i := range sel {
		ok := true
		for _, c := range gc.conds {
			if (g.Codes(c.col)[i] == c.code) == c.ne {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// Estimate returns the estimated number of group rows matching the
// conjunction, from the group's exact per-code counts under the same
// column-independence assumption as bucketStat.estimateConj — except that
// here single-condition estimates are exact, and so is the None case.
func (gc *GroupConj) Estimate(g *storage.ColGroup) int64 {
	if gc.none {
		return 0
	}
	rows := int64(g.NumRows())
	est := rows
	for _, c := range gc.conds {
		if est == 0 {
			return 0
		}
		cnt := g.CodeCounts(c.col)[c.code]
		if c.ne {
			cnt = rows - cnt
		}
		est = est * cnt / rows
	}
	return est
}

// GroupFilter is a disjunction of compiled conjunctions: the batch filter
// compiled against one row group. A filter with no surviving conjunctions
// matches no row of the group, which is the zone-map skip signal.
type GroupFilter struct {
	all   bool
	conjs []GroupConj
}

// CompileGroupFilter compiles f against g's dictionaries, dropping
// conjunctions that cannot match in this group.
func CompileGroupFilter(g *storage.ColGroup, f predicate.Filter) GroupFilter {
	if f.All() {
		return GroupFilter{all: true}
	}
	var gf GroupFilter
	for _, cj := range f.Conjs() {
		gc := CompileGroupConj(g, cj)
		if gc.none {
			continue
		}
		if len(gc.conds) == 0 {
			return GroupFilter{all: true} // one disjunct covers the whole group
		}
		gf.conjs = append(gf.conjs, gc)
	}
	return gf
}

// None reports that no row of the group can satisfy the filter: the group
// is skipped before any page I/O is charged.
func (gf *GroupFilter) None() bool { return !gf.all && len(gf.conjs) == 0 }

// selectBlock appends the group-relative indices of the matching rows in
// [base, base+n) to out.
func (gf *GroupFilter) selectBlock(g *storage.ColGroup, base, n int, out []int32) []int32 {
	if gf.all {
		for i := 0; i < n; i++ {
			out = append(out, int32(base+i))
		}
		return out
	}
	for i := base; i < base+n; i++ {
		for ci := range gf.conjs {
			ok := true
			for _, c := range gf.conjs[ci].conds {
				if (g.Codes(c.col)[i] == c.code) == c.ne {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, int32(i))
				break
			}
		}
	}
	return out
}

// Refine filters sel (group-relative row indices) down to the rows
// satisfying the compiled filter, appending to out and returning it.
// Unmetered, like GroupConj.Refine.
func (gf *GroupFilter) Refine(g *storage.ColGroup, sel []int32, out []int32) []int32 {
	if gf.all {
		return append(out, sel...)
	}
	for _, i := range sel {
		for ci := range gf.conjs {
			ok := true
			for _, c := range gf.conjs[ci].conds {
				if (g.Codes(c.col)[i] == c.code) == c.ne {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Estimate returns the estimated number of group rows matching the filter:
// disjunct estimates summed and clamped to the group's row count.
func (gf *GroupFilter) Estimate(g *storage.ColGroup) int64 {
	rows := int64(g.NumRows())
	if gf.all {
		return rows
	}
	var est int64
	for i := range gf.conjs {
		est += gf.conjs[i].Estimate(g)
		if est >= rows {
			return rows
		}
	}
	return est
}

// ColBlock is one block of a columnar scan: rows [Base, Base+N) of Group,
// with Sel holding the group-relative indices of the rows matching the
// pushed-down filter. The same ColBlock is reused across callbacks; callers
// must not retain it or Sel.
type ColBlock struct {
	Group      *storage.ColGroup
	GroupIndex int
	Base       int
	N          int
	Sel        []int32
}

// MaterializeRow decodes the full row at group-relative index i into dst
// (grown as needed). Unmetered: the scan already charged the block.
func (b *ColBlock) MaterializeRow(i int32, dst data.Row) data.Row {
	nc := b.Group.NumCols()
	if cap(dst) < nc {
		dst = make(data.Row, nc)
	}
	dst = dst[:nc]
	for c := 0; c < nc; c++ {
		dst[c] = b.Group.Dict(c)[b.Group.Codes(c)[i]]
	}
	return dst
}

// ColumnarAvailable reports whether the server's table has a columnar copy
// to scan. Tables populated through CreateTable/Insert/BulkLoad — including
// the temp tables CopySubset builds — always do.
func (s *Server) ColumnarAvailable() bool {
	return s.table.colstore != nil && s.table.colstore.NumRows() == s.table.NumRows()
}

// NumColGroups returns the number of columnar row groups — the unit the
// partitioned columnar scan divides between workers.
func (s *Server) NumColGroups() int {
	if s.table.colstore == nil {
		return 0
	}
	return s.table.colstore.NumGroups()
}

// ColGroupBounds returns histogram-guided group boundaries splitting a
// columnar scan with filter f into nparts lanes of approximately equal
// estimated cost: per group, the page I/O for the needed columns (nil
// needCols means all), per-row block evaluation, and perMatch — the
// caller's full per-matching-row cost — times the estimated matching rows.
// Groups the zone maps prove empty weigh nothing, so lanes are balanced
// over the work that will actually be done. WeightedBounds-shaped, pure,
// and unmetered, like PageBounds; nil means "use equal-width".
func (s *Server) ColGroupBounds(f predicate.Filter, needCols []int, nparts int, perMatch int64) []int {
	if s.noHints || nparts < 2 {
		return nil
	}
	cs := s.table.colstore
	if cs == nil || cs.NumGroups() == 0 {
		return nil
	}
	costs := s.meter.Costs()
	weights := make([]int64, cs.NumGroups())
	for gi := range weights {
		g := cs.Group(gi)
		gf := CompileGroupFilter(g, f)
		if gf.None() {
			continue // skipped group: the lane pays nothing for it
		}
		weights[gi] = g.Pages(needCols)*costs.ServerPageIO +
			int64(g.NumRows())*costs.ColRowEval +
			gf.Estimate(g)*perMatch
	}
	return WeightedBounds(weights, nparts)
}

// ScanColumnarRange scans columnar row groups [loGroup, hiGroup) with f
// pushed down, invoking fn per BlockRows-row block until fn returns false.
// needCols lists the columns whose pages the scan reads (nil means all;
// callers that materialize full rows must pass nil). All costs are charged
// to lane (the server's own meter when nil): the cursor open, then per
// scanned group its column pages and per-row evaluation, and per block the
// transmission of the selected rows. Groups whose zone maps prove the
// filter unsatisfiable are skipped before any charge. Empty ranges are
// valid and yield no blocks.
func (s *Server) ScanColumnarRange(f predicate.Filter, needCols []int, loGroup, hiGroup int, lane *sim.Meter, fn func(blk *ColBlock) bool) {
	cs := s.table.colstore
	if cs == nil {
		panic(fmt.Sprintf("engine: table %q has no columnar copy", s.table.Name))
	}
	ng := cs.NumGroups()
	if loGroup < 0 || hiGroup < loGroup || hiGroup > ng {
		panic(fmt.Sprintf("engine: invalid columnar range [%d, %d) of %d groups", loGroup, hiGroup, ng))
	}
	if lane == nil {
		lane = s.meter
	}
	costs := lane.Costs()
	lane.Charge(sim.CtrServerScans, costs.CursorOpen, 1)
	blk := &ColBlock{}
	var sel []int32
	for gi := loGroup; gi < hiGroup; gi++ {
		g := cs.Group(gi)
		gf := CompileGroupFilter(g, f)
		if gf.None() {
			lane.Charge(sim.CtrColGroupsSkipped, 0, 1)
			continue
		}
		lane.Charge(sim.CtrColGroupsScanned, 0, 1)
		lane.Charge(sim.CtrServerPages, costs.ServerPageIO, g.Pages(needCols))
		nrows := g.NumRows()
		for base := 0; base < nrows; base += BlockRows {
			n := nrows - base
			if n > BlockRows {
				n = BlockRows
			}
			lane.Charge(sim.CtrColBlocks, 0, 1)
			lane.Charge(sim.CtrServerRows, costs.ColRowEval, int64(n))
			sel = gf.selectBlock(g, base, n, sel[:0])
			lane.Charge(sim.CtrRowsTransmitted, costs.ColRowTransmit, int64(len(sel)))
			blk.Group, blk.GroupIndex, blk.Base, blk.N, blk.Sel = g, gi, base, n, sel
			if !fn(blk) {
				return
			}
		}
	}
}
