package engine

import (
	"fmt"

	"repro/internal/predicate"
	"repro/internal/sim"
)

// This file is the server side of multi-tenant scan sharing: the paper's
// batching idea (§4.1 — merge many nodes' counting work into one data scan)
// lifted from nodes-within-a-build to builds-within-a-fleet. Concurrent
// sessions whose current batch scans the same table attach a ScanConsumer
// each to one physical columnar scan; the block stream is decoded once and
// fanned out, so the page I/O is charged once (to the shared io meter) while
// each consumer pays its own per-row evaluation and transmission on its own
// session lane.

// ScanConsumer is one session's attachment to a shared columnar scan.
type ScanConsumer struct {
	// Filter is the consumer's pushed-down batch filter; it is compiled per
	// row group, so each consumer keeps its private zone-map skipping even
	// inside a shared scan.
	Filter predicate.Filter
	// Lane receives the consumer's own costs: group/block counters, per-row
	// evaluation and row transmission. Required.
	Lane *sim.Meter
	// Fn receives each block with Sel holding this consumer's matching rows.
	// Returning false detaches the consumer: it sees no further blocks while
	// the scan continues for the others.
	Fn func(blk *ColBlock) bool

	detached bool
	gf       GroupFilter
	sel      []int32
}

// ScanColumnarShared runs one physical columnar scan over all row groups and
// fans every block out to the attached consumers. Shared costs go to io:
// one cursor open for the whole cohort, and the column pages of each group
// that at least one consumer needs — charged once, however many consumers
// read the group. needCols lists the union of the columns any consumer
// touches (nil means all). Per group, each consumer's filter is compiled
// against the group's dictionaries; consumers whose filter cannot match skip
// the group on their own lane (zone-map verdict) without forcing or joining
// the read. Consumers are fed in slice order, so the interleaving is
// deterministic. A single-consumer cohort degenerates to ScanColumnarRange's
// cost model with the cursor open and page I/O moved to the io meter.
func (s *Server) ScanColumnarShared(cons []*ScanConsumer, needCols []int, io *sim.Meter) {
	cs := s.table.colstore
	if cs == nil {
		panic(fmt.Sprintf("engine: table %q has no columnar copy", s.table.Name))
	}
	if io == nil {
		io = s.meter
	}
	for i, c := range cons {
		if c.Lane == nil || c.Fn == nil {
			panic(fmt.Sprintf("engine: shared-scan consumer %d missing lane or callback", i))
		}
		c.detached = false
	}
	costs := io.Costs()
	io.Charge(sim.CtrServerScans, costs.CursorOpen, 1)
	blk := &ColBlock{}
	ng := cs.NumGroups()
	for gi := 0; gi < ng; gi++ {
		g := cs.Group(gi)
		readers := 0
		for _, c := range cons {
			if c.detached {
				continue
			}
			c.gf = CompileGroupFilter(g, c.Filter)
			if c.gf.None() {
				c.Lane.Charge(sim.CtrColGroupsSkipped, 0, 1)
				continue
			}
			c.Lane.Charge(sim.CtrColGroupsScanned, 0, 1)
			readers++
		}
		if readers == 0 {
			continue // no consumer needs this group: no page is read
		}
		io.Charge(sim.CtrServerPages, costs.ServerPageIO, g.Pages(needCols))
		nrows := g.NumRows()
		for base := 0; base < nrows; base += BlockRows {
			n := nrows - base
			if n > BlockRows {
				n = BlockRows
			}
			for _, c := range cons {
				if c.detached || c.gf.None() {
					continue
				}
				c.Lane.Charge(sim.CtrColBlocks, 0, 1)
				c.Lane.Charge(sim.CtrServerRows, costs.ColRowEval, int64(n))
				c.sel = c.gf.selectBlock(g, base, n, c.sel[:0])
				c.Lane.Charge(sim.CtrRowsTransmitted, costs.ColRowTransmit, int64(len(c.sel)))
				blk.Group, blk.GroupIndex, blk.Base, blk.N, blk.Sel = g, gi, base, n, c.sel
				if !c.Fn(blk) {
					c.detached = true
				}
			}
		}
	}
}
