package engine

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/storage"
)

// clusteredColumnarServer builds a table whose attr 0 is clustered by row
// position (the regime zone maps exploit): value i*regions/n, so each value
// occupies a contiguous run of row groups.
func clusteredColumnarServer(t *testing.T, n, regions int) (*Server, *data.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	s := data.NewSchema(3, regions, 2)
	ds := data.NewDataset(s)
	for i := 0; i < n; i++ {
		ds.Append(data.Row{
			data.Value(i * regions / n), data.Value(rng.Intn(regions)),
			data.Value(rng.Intn(regions)), data.Value(rng.Intn(2)),
		})
	}
	srv, err := NewServer(New(sim.NewDefaultMeter(), 0), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	return srv, ds
}

// drainColumnar materializes every selected row of a columnar range scan.
func drainColumnar(srv *Server, f predicate.Filter, lo, hi int) []data.Row {
	var out []data.Row
	srv.ScanColumnarRange(f, nil, lo, hi, nil, func(blk *ColBlock) bool {
		for _, i := range blk.Sel {
			out = append(out, blk.MaterializeRow(i, nil))
		}
		return true
	})
	return out
}

func sameRows(a, b []data.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestColumnarScanMatchesRowScan: the columnar scan yields exactly the rows
// the row cursor yields, in the same order, for a spread of filters.
func TestColumnarScanMatchesRowScan(t *testing.T) {
	srv, _ := clusteredColumnarServer(t, 11000, 4)
	ng := srv.NumColGroups()
	filters := []predicate.Filter{
		predicate.MatchAll(),
		predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 2}}),
		predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 9}}), // matches nothing
		predicate.Or(
			predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 1}, {Attr: 1, Op: predicate.Ne, Val: 3}},
			predicate.Conj{{Attr: 2, Op: predicate.Eq, Val: 0}},
		),
	}
	for fi, f := range filters {
		want := drain(srv.OpenScan(f))
		got := drainColumnar(srv, f, 0, ng)
		if !sameRows(got, want) {
			t.Fatalf("filter %d: columnar scan differs from row scan (%d vs %d rows)", fi, len(got), len(want))
		}
	}
}

// TestColumnarPartitionsCoverGroupsExactlyOnce: concatenating disjoint group
// ranges reproduces the full columnar scan for any part count.
func TestColumnarPartitionsCoverGroupsExactlyOnce(t *testing.T) {
	srv, _ := clusteredColumnarServer(t, 9000, 4)
	ng := srv.NumColGroups()
	f := predicate.Or(predicate.Conj{{Attr: 1, Op: predicate.Ne, Val: 1}})
	want := drainColumnar(srv, f, 0, ng)
	for _, nparts := range []int{1, 2, 3, ng, ng + 2} {
		var got []data.Row
		for p := 0; p < nparts; p++ {
			lo, hi := RangeOf(p, nparts, ng, nil)
			got = append(got, drainColumnar(srv, f, lo, hi)...)
		}
		if !sameRows(got, want) {
			t.Fatalf("nparts=%d: partitioned columnar scan differs (%d vs %d rows)", nparts, len(got), len(want))
		}
	}
}

// TestColumnarZoneMapSkipCharges: a filter selecting one clustered region
// must skip most groups, and skipped groups charge no page I/O at all.
func TestColumnarZoneMapSkipCharges(t *testing.T) {
	srv, _ := clusteredColumnarServer(t, 12*storage.RowGroupSize, 6)
	m := srv.Meter()
	f := predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 0}})

	snapAll := m.Snapshot()
	drainColumnar(srv, predicate.MatchAll(), 0, srv.NumColGroups())
	allPages := m.CountSince(snapAll, sim.CtrServerPages)

	snapSel := m.Snapshot()
	drainColumnar(srv, f, 0, srv.NumColGroups())
	selPages := m.CountSince(snapSel, sim.CtrServerPages)
	scanned := m.CountSince(snapSel, sim.CtrColGroupsScanned)
	skipped := m.CountSince(snapSel, sim.CtrColGroupsSkipped)

	if scanned+skipped != int64(srv.NumColGroups()) {
		t.Fatalf("scanned %d + skipped %d != %d groups", scanned, skipped, srv.NumColGroups())
	}
	// Region 0 is 1/6 of the table: at most 3 of 12 groups touch it
	// (boundary groups straddle regions).
	if skipped < int64(srv.NumColGroups())/2 {
		t.Fatalf("skipped only %d of %d groups", skipped, srv.NumColGroups())
	}
	if selPages*2 > allPages {
		t.Fatalf("selective scan read %d pages, full scan %d: zone maps saved <2x", selPages, allPages)
	}
}

// TestColumnarPagesCheaperThanHeap: dictionary packing makes a full columnar
// read of all columns cost fewer modeled pages than the row-major heap scan.
func TestColumnarPagesCheaperThanHeap(t *testing.T) {
	srv, _ := clusteredColumnarServer(t, 6*storage.RowGroupSize, 4)
	m := srv.Meter()
	snap := m.Snapshot()
	drainColumnar(srv, predicate.MatchAll(), 0, srv.NumColGroups())
	colPages := m.CountSince(snap, sim.CtrServerPages)
	heapPages := int64(srv.NumPages())
	if colPages*2 > heapPages {
		t.Fatalf("columnar full scan = %d pages, heap = %d: want >=2x packing win", colPages, heapPages)
	}
}

// TestColGroupBoundsShape: bounds are WeightedBounds-shaped, skew toward the
// matching region, and vanish when hints are disabled.
func TestColGroupBoundsShape(t *testing.T) {
	srv, _ := clusteredColumnarServer(t, 12*storage.RowGroupSize, 6)
	f := predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 5}})
	const nparts = 4
	bounds := srv.ColGroupBounds(f, nil, nparts, 10_000)
	if len(bounds) != nparts+1 {
		t.Fatalf("bounds = %v, want %d entries", bounds, nparts+1)
	}
	ng := srv.NumColGroups()
	if bounds[0] != 0 || bounds[nparts] != ng {
		t.Fatalf("bounds = %v, want [0 .. %d]", bounds, ng)
	}
	for i := 0; i < nparts; i++ {
		if bounds[i] > bounds[i+1] {
			t.Fatalf("bounds %v not monotone", bounds)
		}
	}
	// Region 5 lives in the last couple of groups; with skipped groups
	// weighing nothing, the first partition must swallow well over its
	// equal-width share of groups.
	if bounds[1] <= ng/nparts {
		t.Fatalf("bounds = %v: first lane got %d groups, equal-width would give %d", bounds, bounds[1], ng/nparts)
	}
	srv.SetSplitHints(false)
	if b := srv.ColGroupBounds(f, nil, nparts, 10_000); b != nil {
		t.Fatalf("bounds with hints disabled = %v, want nil", b)
	}
}

// TestGroupConjRefineAndEstimate: compiled-conjunction refinement matches
// row-at-a-time evaluation, and single-condition estimates are exact.
func TestGroupConjRefineAndEstimate(t *testing.T) {
	srv, ds := clusteredColumnarServer(t, 3000, 4)
	cs := srv.table.colstore
	g := cs.Group(0)
	conjs := []predicate.Conj{
		nil,
		{{Attr: 1, Op: predicate.Eq, Val: 2}},
		{{Attr: 1, Op: predicate.Eq, Val: 2}, {Attr: 2, Op: predicate.Ne, Val: 0}},
		{{Attr: 1, Op: predicate.Eq, Val: 99}}, // absent value: None
	}
	all := make([]int32, g.NumRows())
	for i := range all {
		all[i] = int32(i)
	}
	for ci, cj := range conjs {
		gc := CompileGroupConj(g, cj)
		got := gc.Refine(g, all, nil)
		var want []int32
		exact := int64(0)
		for i := 0; i < g.NumRows(); i++ {
			if cj.Eval(ds.Rows[i]) {
				want = append(want, int32(i))
				exact++
			}
		}
		if len(got) != len(want) {
			t.Fatalf("conj %d: refine selected %d rows, want %d", ci, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("conj %d: refine sel[%d] = %d, want %d", ci, i, got[i], want[i])
			}
		}
		if len(cj) <= 1 {
			if est := gc.Estimate(g); est != exact {
				t.Fatalf("conj %d: estimate = %d, want exact %d", ci, est, exact)
			}
		}
	}
}
