package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/sim"
)

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestHavingFiltersGroups(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) >= 2 ORDER BY a")
	want := [][]int64{{1, 2}, {2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestHavingWithAggregateNotInProjection(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	// SUM(b) per a: a=1 -> 40, a=2 -> 30, a=3 -> 10.
	got := queryInts(t, e, "SELECT a FROM t GROUP BY a HAVING SUM(b) > 25 ORDER BY a")
	want := [][]int64{{1}, {2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestHavingOnGroupColumn(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT a, COUNT(*) FROM t GROUP BY a HAVING a <> 2 AND COUNT(*) > 0 ORDER BY a")
	want := [][]int64{{1, 2}, {3, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestHavingErrors(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	if _, err := e.Exec("SELECT a FROM t GROUP BY a HAVING nope = 1"); err == nil {
		t.Error("unknown column in HAVING accepted")
	}
}

func TestLimit(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT b FROM t ORDER BY b DESC LIMIT 2")
	want := [][]int64{{30}, {20}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if got := queryInts(t, e, "SELECT b FROM t LIMIT 0"); len(got) != 0 {
		t.Errorf("LIMIT 0 returned %d rows", len(got))
	}
	// LIMIT larger than the result is a no-op.
	if got := queryInts(t, e, "SELECT b FROM t LIMIT 100"); len(got) != 5 {
		t.Errorf("LIMIT 100 returned %d rows", len(got))
	}
}

func TestAvg(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT a, AVG(b) FROM t GROUP BY a ORDER BY a")
	// a=1: (10+30)/2=20; a=2: (20+10)/2=15; a=3: 10.
	want := [][]int64{{1, 20}, {2, 15}, {3, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// AVG over empty input yields 0 (no NULL in this engine).
	e.MustExec("CREATE TABLE empty (x INT)")
	if got := queryInts(t, e, "SELECT AVG(x) FROM empty"); got[0][0] != 0 {
		t.Errorf("AVG over empty = %d", got[0][0])
	}
}

func TestHavingLimitRoundTrip(t *testing.T) {
	// Parser round-trip for the new clauses (complements parser_test).
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT a, COUNT(*) FROM t WHERE c = 0 GROUP BY a HAVING COUNT(*) >= 1 ORDER BY a LIMIT 1")
	if len(got) != 1 || got[0][0] != 1 {
		t.Errorf("got %v", got)
	}
}

func TestIndexRangeScanMatchesSeqScan(t *testing.T) {
	e := newEngine()
	tbl, _ := e.CreateTable("big", []string{"k", "v"})
	rng := newTestRng(7)
	var rows []data.Row
	for i := 0; i < 3000; i++ {
		rows = append(rows, data.Row{data.Value(rng.Intn(100)), data.Value(rng.Intn(10))})
	}
	if err := e.BulkLoad(tbl, rows); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT v, COUNT(*) FROM big WHERE k < 20 GROUP BY v ORDER BY v",
		"SELECT v, COUNT(*) FROM big WHERE k <= 20 GROUP BY v ORDER BY v",
		"SELECT v, COUNT(*) FROM big WHERE k > 80 GROUP BY v ORDER BY v",
		"SELECT v, COUNT(*) FROM big WHERE k >= 80 GROUP BY v ORDER BY v",
		"SELECT v, COUNT(*) FROM big WHERE k = 42 GROUP BY v ORDER BY v",
	}
	var want []string
	for _, q := range queries {
		rs, err := e.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rs.String())
	}
	e.MustExec("CREATE INDEX ik ON big (k)")
	for i, q := range queries {
		probesBefore := e.Meter().Count(sim.CtrIndexProbes)
		rs, err := e.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if rs.String() != want[i] {
			t.Errorf("%s: index result differs from scan:\n%s\nvs\n%s", q, rs, want[i])
		}
		if e.Meter().Count(sim.CtrIndexProbes) == probesBefore {
			t.Errorf("%s: did not use the index", q)
		}
	}
}
