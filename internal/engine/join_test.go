package engine

import (
	"reflect"
	"testing"
)

func seedJoinTables(t *testing.T, e *Engine) {
	t.Helper()
	e.MustExec("CREATE TABLE orders (id INT, cust INT, amount INT)")
	e.MustExec("INSERT INTO orders VALUES (1, 10, 5), (2, 10, 7), (3, 20, 3), (4, 30, 9)")
	e.MustExec("CREATE TABLE customers (id INT, region INT)")
	e.MustExec("INSERT INTO customers VALUES (10, 1), (20, 2), (40, 3)")
}

func TestInnerJoinBasic(t *testing.T) {
	e := newEngine()
	seedJoinTables(t, e)
	got := queryInts(t, e,
		"SELECT o.id, c.region FROM orders o JOIN customers c ON o.cust = c.id ORDER BY id")
	want := [][]int64{{1, 1}, {2, 1}, {3, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestJoinWithoutAliases(t *testing.T) {
	e := newEngine()
	seedJoinTables(t, e)
	got := queryInts(t, e,
		"SELECT amount, region FROM orders JOIN customers ON cust = customers.id ORDER BY amount")
	want := [][]int64{{3, 2}, {5, 1}, {7, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestJoinWithWhereAndAggregate(t *testing.T) {
	e := newEngine()
	seedJoinTables(t, e)
	got := queryInts(t, e,
		"SELECT c.region, COUNT(*), SUM(o.amount) FROM orders o JOIN customers c ON o.cust = c.id WHERE o.amount > 3 GROUP BY c.region ORDER BY region")
	want := [][]int64{{1, 2, 12}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestJoinResidualOnCondition(t *testing.T) {
	e := newEngine()
	seedJoinTables(t, e)
	// Residual non-equi condition on top of the hash key.
	got := queryInts(t, e,
		"SELECT o.id FROM orders o JOIN customers c ON o.cust = c.id AND o.amount > 4 ORDER BY id")
	want := [][]int64{{1}, {2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestJoinStarExpansion(t *testing.T) {
	e := newEngine()
	seedJoinTables(t, e)
	rs, err := e.Exec("SELECT * FROM orders o JOIN customers c ON o.cust = c.id")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"o.id", "o.cust", "o.amount", "c.id", "c.region"}
	if !reflect.DeepEqual(rs.Cols, wantCols) {
		t.Errorf("cols = %v, want %v", rs.Cols, wantCols)
	}
	if len(rs.Rows) != 3 {
		t.Errorf("%d rows", len(rs.Rows))
	}
}

func TestJoinDuplicateRightMatches(t *testing.T) {
	e := newEngine()
	e.MustExec("CREATE TABLE l (k INT, v INT)")
	e.MustExec("INSERT INTO l VALUES (1, 100), (2, 200)")
	e.MustExec("CREATE TABLE r (k INT, w INT)")
	e.MustExec("INSERT INTO r VALUES (1, 11), (1, 12), (2, 21)")
	got := queryInts(t, e, "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k ORDER BY w")
	want := [][]int64{{100, 11}, {100, 12}, {200, 21}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestJoinMultiKey(t *testing.T) {
	e := newEngine()
	e.MustExec("CREATE TABLE a (x INT, y INT, p INT)")
	e.MustExec("INSERT INTO a VALUES (1, 1, 7), (1, 2, 8), (2, 1, 9)")
	e.MustExec("CREATE TABLE b (x INT, y INT, q INT)")
	e.MustExec("INSERT INTO b VALUES (1, 1, 70), (1, 2, 80), (2, 2, 90)")
	got := queryInts(t, e, "SELECT a.p, b.q FROM a JOIN b ON a.x = b.x AND a.y = b.y ORDER BY p")
	want := [][]int64{{7, 70}, {8, 80}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestJoinErrors(t *testing.T) {
	e := newEngine()
	seedJoinTables(t, e)
	for _, sql := range []string{
		"SELECT * FROM orders o JOIN customers c ON o.amount > 3",     // no equality
		"SELECT * FROM orders o JOIN customers o ON o.cust = o.id",    // duplicate alias
		"SELECT id FROM orders o JOIN customers c ON o.cust = c.id",   // ambiguous bare column
		"SELECT * FROM orders o JOIN missing m ON o.cust = m.id",      // unknown table
		"SELECT o.nope FROM orders o JOIN customers c ON cust = c.id", // unknown column
	} {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded", sql)
		}
	}
}

func TestInnerKeywordAccepted(t *testing.T) {
	e := newEngine()
	seedJoinTables(t, e)
	got := queryInts(t, e,
		"SELECT COUNT(*) FROM orders o INNER JOIN customers c ON o.cust = c.id")
	if got[0][0] != 3 {
		t.Errorf("count = %d", got[0][0])
	}
}

func TestQualifiedNamesOnSingleTable(t *testing.T) {
	e := newEngine()
	seedJoinTables(t, e)
	got := queryInts(t, e, "SELECT orders.amount FROM orders WHERE orders.cust = 10 ORDER BY orders.amount")
	want := [][]int64{{5}, {7}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// Alias form too.
	got2 := queryInts(t, e, "SELECT o.amount FROM orders o WHERE o.cust = 20")
	if !reflect.DeepEqual(got2, [][]int64{{3}}) {
		t.Errorf("alias form = %v", got2)
	}
}
