package engine

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func benchServer(b *testing.B, rows int) *Server {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	s := data.NewSchema(8, 4, 4)
	ds := data.NewDataset(s)
	for i := 0; i < rows; i++ {
		r := make(data.Row, 9)
		for j := range r {
			r[j] = data.Value(rng.Intn(4))
		}
		ds.Append(r)
	}
	srv, err := NewServer(New(sim.NewDefaultMeter(), 0), "cases", ds)
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// BenchmarkCursorScan measures the firehose cursor with a pushed-down
// filter over 10k rows.
func BenchmarkCursorScan(b *testing.B) {
	srv := benchServer(b, 10000)
	filter := predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 1}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := srv.OpenScan(filter)
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
		}
		cur.Close()
	}
}

// BenchmarkGroupByQuery measures one GROUP BY COUNT(*) statement end to end
// (parse, plan, scan, aggregate) over 10k rows.
func BenchmarkGroupByQuery(b *testing.B) {
	srv := benchServer(b, 10000)
	e := srv.Engine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT A1, class, COUNT(*) FROM cases WHERE A2 <> 3 GROUP BY A1, class"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexProbeQuery measures an index-served point query.
func BenchmarkIndexProbeQuery(b *testing.B) {
	srv := benchServer(b, 10000)
	e := srv.Engine()
	if _, err := e.Exec("CREATE INDEX i ON cases (A1)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT COUNT(*) FROM cases WHERE A1 = 2"); err != nil {
			b.Fatal(err)
		}
	}
}
