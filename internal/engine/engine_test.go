package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func newEngine() *Engine { return New(sim.NewDefaultMeter(), 0) }

func seedTable(t *testing.T, e *Engine) *Table {
	t.Helper()
	tbl, err := e.CreateTable("t", []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	rows := []data.Row{
		{1, 10, 0},
		{2, 20, 1},
		{1, 30, 0},
		{3, 10, 1},
		{2, 10, 0},
	}
	if err := e.BulkLoad(tbl, rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func queryInts(t *testing.T, e *Engine, sql string) [][]int64 {
	t.Helper()
	rs, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	out := make([][]int64, len(rs.Rows))
	for i, r := range rs.Rows {
		out[i] = make([]int64, len(r))
		for j, v := range r {
			if v.Str {
				t.Fatalf("unexpected string value %q", v.S)
			}
			out[i][j] = v.I
		}
	}
	return out
}

func TestSelectWhereProjection(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT a, b FROM t WHERE c = 0 AND b >= 10")
	want := [][]int64{{1, 10}, {1, 30}, {2, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSelectStar(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	rs, err := e.Exec("SELECT * FROM t WHERE a = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Cols, []string{"a", "b", "c"}) {
		t.Errorf("cols = %v", rs.Cols)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][1].I != 10 {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestGroupByCount(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a")
	want := [][]int64{{1, 2}, {2, 2}, {3, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestAggregates(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT COUNT(*), SUM(b), MIN(b), MAX(b) FROM t")
	want := [][]int64{{5, 80, 10, 30}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestGroupByMultipleKeysWithScalar(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT c, b, COUNT(*) FROM t GROUP BY c, b ORDER BY c, b")
	want := [][]int64{{0, 10, 2}, {0, 30, 1}, {1, 10, 1}, {1, 20, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestUnionAndUnionAll(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	all := queryInts(t, e, "SELECT a FROM t WHERE c = 0 UNION ALL SELECT a FROM t WHERE c = 0")
	if len(all) != 6 {
		t.Errorf("UNION ALL rows = %d, want 6", len(all))
	}
	dedup := queryInts(t, e, "SELECT a FROM t WHERE c = 0 UNION SELECT a FROM t WHERE c = 0 ORDER BY a")
	want := [][]int64{{1}, {2}}
	if !reflect.DeepEqual(dedup, want) {
		t.Errorf("UNION rows = %v, want %v", dedup, want)
	}
}

func TestDistinct(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT DISTINCT c FROM t ORDER BY c")
	if !reflect.DeepEqual(got, [][]int64{{0}, {1}}) {
		t.Errorf("got %v", got)
	}
}

func TestOrderByDesc(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	got := queryInts(t, e, "SELECT b FROM t WHERE a = 1 ORDER BY b DESC")
	if !reflect.DeepEqual(got, [][]int64{{30}, {10}}) {
		t.Errorf("got %v", got)
	}
}

func TestStringLiteralProjection(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	rs, err := e.Exec("SELECT 'attr_a' AS attr_name, a, COUNT(*) FROM t GROUP BY a ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Rows[0][0].Str || rs.Rows[0][0].S != "attr_a" {
		t.Errorf("string literal = %v", rs.Rows[0][0])
	}
	if rs.Cols[0] != "attr_name" {
		t.Errorf("alias = %q", rs.Cols[0])
	}
}

func TestInsertAndDelete(t *testing.T) {
	e := newEngine()
	e.MustExec("CREATE TABLE u (x INT, y INT)")
	e.MustExec("INSERT INTO u VALUES (1, 2), (3, 4), (5, 6)")
	if got := queryInts(t, e, "SELECT COUNT(*) FROM u"); got[0][0] != 3 {
		t.Fatalf("count = %d", got[0][0])
	}
	e.MustExec("DELETE FROM u WHERE x = 3")
	got := queryInts(t, e, "SELECT x FROM u ORDER BY x")
	if !reflect.DeepEqual(got, [][]int64{{1}, {5}}) {
		t.Errorf("after delete: %v", got)
	}
	e.MustExec("DELETE FROM u")
	if got := queryInts(t, e, "SELECT COUNT(*) FROM u"); got[0][0] != 0 {
		t.Errorf("after delete-all: %d", got[0][0])
	}
}

func TestDropTable(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	e.MustExec("DROP TABLE t")
	if _, err := e.Exec("SELECT * FROM t"); err == nil {
		t.Error("query on dropped table succeeded")
	}
	if _, err := e.Exec("DROP TABLE t"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestCreateTableErrors(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	if _, err := e.CreateTable("t", []string{"x"}); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := e.CreateTable("u", nil); err == nil {
		t.Error("zero-column table accepted")
	}
	if _, err := e.CreateTable("u", []string{"x", "x"}); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestIndexProbeMatchesScan(t *testing.T) {
	e := newEngine()
	tbl, _ := e.CreateTable("big", []string{"k", "v"})
	rng := rand.New(rand.NewSource(3))
	var rows []data.Row
	for i := 0; i < 2000; i++ {
		rows = append(rows, data.Row{data.Value(rng.Intn(50)), data.Value(rng.Intn(10))})
	}
	if err := e.BulkLoad(tbl, rows); err != nil {
		t.Fatal(err)
	}
	scan := queryInts(t, e, "SELECT v, COUNT(*) FROM big WHERE k = 7 GROUP BY v ORDER BY v")
	e.MustExec("CREATE INDEX ik ON big (k)")
	pagesBefore := e.Meter().Count(sim.CtrServerPages)
	probesBefore := e.Meter().Count(sim.CtrIndexProbes)
	idx := queryInts(t, e, "SELECT v, COUNT(*) FROM big WHERE k = 7 GROUP BY v ORDER BY v")
	if !reflect.DeepEqual(scan, idx) {
		t.Errorf("index result %v differs from scan %v", idx, scan)
	}
	if e.Meter().Count(sim.CtrIndexProbes) == probesBefore {
		t.Error("indexed query did not probe the index")
	}
	_ = pagesBefore
}

func TestIndexMaintainedByInsert(t *testing.T) {
	e := newEngine()
	e.MustExec("CREATE TABLE u (x INT, y INT)")
	e.MustExec("CREATE INDEX ix ON u (x)")
	e.MustExec("INSERT INTO u VALUES (5, 1), (5, 2), (6, 3)")
	got := queryInts(t, e, "SELECT y FROM u WHERE x = 5 ORDER BY y")
	if !reflect.DeepEqual(got, [][]int64{{1}, {2}}) {
		t.Errorf("got %v", got)
	}
}

func TestDuplicateIndexRejected(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	e.MustExec("CREATE INDEX i1 ON t (a)")
	if _, err := e.Exec("CREATE INDEX i2 ON t (a)"); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := e.Exec("CREATE INDEX i3 ON t (nope)"); err == nil {
		t.Error("index on unknown column accepted")
	}
}

func TestExecErrors(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	for _, sql := range []string{
		"SELECT nope FROM t",
		"SELECT a FROM missing",
		"INSERT INTO t VALUES (1)",
		"INSERT INTO t VALUES ('s', 1, 2)",
		"SELECT a FROM t WHERE a = 'x'",
		"SELECT a + 'x' FROM t",
		"SELECT SUM('x') FROM t",
		"SELECT a FROM t UNION SELECT a, b FROM t",
		"SELECT a FROM t ORDER BY nope",
	} {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded", sql)
		}
	}
}

func TestUnionArmsEachScan(t *testing.T) {
	// The engine must NOT share scans across UNION arms (§2.3: optimizers
	// do not exploit the commonality) — the middleware's whole reason to
	// exist. Verify pages read scale with the number of arms.
	costOf := func(arms int) int64 {
		// A buffer pool smaller than the table, as in any scan-bound
		// workload: each arm's scan re-reads from disk.
		e := New(sim.NewDefaultMeter(), 2)
		tbl, _ := e.CreateTable("w", []string{"a", "b"})
		var rows []data.Row
		for i := 0; i < 30000; i++ {
			rows = append(rows, data.Row{data.Value(i % 4), data.Value(i % 7)})
		}
		e.BulkLoad(tbl, rows)
		sql := ""
		for i := 0; i < arms; i++ {
			if i > 0 {
				sql += " UNION ALL "
			}
			sql += fmt.Sprintf("SELECT %d, a, COUNT(*) FROM w GROUP BY a", i)
		}
		e.MustExec(sql)
		return e.Meter().Count(sim.CtrServerPages)
	}
	one, four := costOf(1), costOf(4)
	if four < 4*one {
		t.Errorf("4 arms read %d pages, 1 arm %d; arms must scan independently", four, one)
	}
}

func TestQueryStartupChargedPerStatement(t *testing.T) {
	e := newEngine()
	seedTable(t, e)
	before := e.Meter().Count(sim.CtrSQLStatements)
	e.MustExec("SELECT a FROM t")
	e.MustExec("SELECT b FROM t")
	if got := e.Meter().Count(sim.CtrSQLStatements) - before; got != 2 {
		t.Errorf("statements = %d, want 2", got)
	}
}

// --- Server cursor surface ---

func testDataset(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := data.NewSchema(3, 4, 2)
	ds := data.NewDataset(s)
	for i := 0; i < n; i++ {
		ds.Append(data.Row{
			data.Value(rng.Intn(4)), data.Value(rng.Intn(4)),
			data.Value(rng.Intn(4)), data.Value(rng.Intn(2)),
		})
	}
	return ds
}

func newTestServer(t *testing.T, n int) (*Server, *data.Dataset) {
	t.Helper()
	ds := testDataset(n, 7)
	srv, err := NewServer(newEngine(), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	return srv, ds
}

func collect(c Cursor) []data.Row {
	var out []data.Row
	for {
		r, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, r.Clone())
	}
	c.Close()
	return out
}

func TestScanCursorFilterExact(t *testing.T) {
	srv, ds := newTestServer(t, 500)
	filter := predicate.Or(
		predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 1}},
		predicate.Conj{{Attr: 1, Op: predicate.Ne, Val: 2}, {Attr: 2, Op: predicate.Eq, Val: 3}},
	)
	got := collect(srv.OpenScan(filter))
	var want []data.Row
	for _, r := range ds.Rows {
		if filter.Eval(r) {
			want = append(want, r)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("cursor returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Exactly the matching rows were transmitted.
	if tx := srv.Meter().Count(sim.CtrRowsTransmitted); tx != int64(len(want)) {
		t.Errorf("transmitted %d rows, want %d", tx, len(want))
	}
	// But every row was evaluated at the server.
	if ev := srv.Meter().Count(sim.CtrServerRows); ev != int64(ds.N()) {
		t.Errorf("evaluated %d rows, want %d", ev, ds.N())
	}
}

func TestScanCursorMatchAllAndCloseEarly(t *testing.T) {
	srv, ds := newTestServer(t, 100)
	c := srv.OpenScan(predicate.MatchAll())
	r, ok := c.Next()
	if !ok || len(r) != ds.Schema.NumCols() {
		t.Fatal("first row missing")
	}
	c.Close()
	if _, ok := c.Next(); ok {
		t.Error("Next after Close returned a row")
	}
}

func TestKeysetCursor(t *testing.T) {
	srv, ds := newTestServer(t, 400)
	base := predicate.Or(predicate.Conj{{Attr: 0, Op: predicate.Eq, Val: 2}})
	ks := srv.OpenKeyset(base)
	var wantN int
	for _, r := range ds.Rows {
		if base.Eval(r) {
			wantN++
		}
	}
	if ks.Size() != wantN {
		t.Fatalf("keyset size %d, want %d", ks.Size(), wantN)
	}

	// Without a stored procedure every keyset row is transmitted.
	before := srv.Meter().Count(sim.CtrRowsTransmitted)
	all := collect(ks.OpenScan(nil))
	if len(all) != wantN {
		t.Errorf("keyset scan returned %d rows", len(all))
	}
	if got := srv.Meter().Count(sim.CtrRowsTransmitted) - before; got != int64(wantN) {
		t.Errorf("transmitted %d, want %d", got, wantN)
	}

	// With a stored-procedure filter only the narrowed subset crosses.
	narrow := predicate.Or(predicate.Conj{
		{Attr: 0, Op: predicate.Eq, Val: 2}, {Attr: 1, Op: predicate.Eq, Val: 1},
	})
	before = srv.Meter().Count(sim.CtrRowsTransmitted)
	sub := collect(ks.OpenScan(&narrow))
	var wantSub int
	for _, r := range ds.Rows {
		if narrow.Eval(r) {
			wantSub++
		}
	}
	if len(sub) != wantSub {
		t.Errorf("sproc scan returned %d rows, want %d", len(sub), wantSub)
	}
	if got := srv.Meter().Count(sim.CtrRowsTransmitted) - before; got != int64(wantSub) {
		t.Errorf("sproc transmitted %d, want %d", got, wantSub)
	}
}

func TestTIDJoin(t *testing.T) {
	srv, ds := newTestServer(t, 400)
	base := predicate.Or(predicate.Conj{{Attr: 2, Op: predicate.Ne, Val: 0}})
	tt := srv.CopyTIDs(base)
	narrow := predicate.Or(predicate.Conj{
		{Attr: 2, Op: predicate.Ne, Val: 0}, {Attr: 0, Op: predicate.Eq, Val: 1},
	})
	got := collect(tt.OpenJoin(narrow))
	var want int
	for _, r := range ds.Rows {
		if narrow.Eval(r) {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("TID join returned %d rows, want %d", len(got), want)
	}
	if probes := srv.Meter().Count(sim.CtrIndexProbes); probes < int64(tt.Size()) {
		t.Errorf("TID join probed %d times, want >= %d", probes, tt.Size())
	}
}

func TestCopySubset(t *testing.T) {
	srv, ds := newTestServer(t, 300)
	f := predicate.Or(predicate.Conj{{Attr: 1, Op: predicate.Eq, Val: 0}})
	sub, err := srv.CopySubset(f)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, r := range ds.Rows {
		if f.Eval(r) {
			want++
		}
	}
	if sub.NumRows() != want {
		t.Errorf("subset has %d rows, want %d", sub.NumRows(), want)
	}
	// Scanning the subset returns only matching rows.
	got := collect(sub.OpenScan(predicate.MatchAll()))
	if int64(len(got)) != want {
		t.Errorf("subset scan returned %d rows", len(got))
	}
	if err := sub.Drop(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Engine().Exec("SELECT * FROM " + sub.TableName()); err == nil {
		t.Error("dropped temp table still queryable")
	}
}

func TestServerAccessors(t *testing.T) {
	srv, ds := newTestServer(t, 100)
	if srv.NumRows() != int64(ds.N()) {
		t.Error("NumRows")
	}
	if srv.Schema() != ds.Schema {
		t.Error("Schema")
	}
	if srv.TableName() != "cases" {
		t.Error("TableName")
	}
	if srv.DataBytes() <= 0 {
		t.Error("DataBytes")
	}
}

// TestSelectAgainstReference cross-checks the executor against a direct
// in-memory evaluation for randomized conjunctive/disjunctive predicates.
func TestSelectAgainstReference(t *testing.T) {
	srv, ds := newTestServer(t, 800)
	e := srv.Engine()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		a1 := rng.Intn(3)
		v1 := rng.Intn(4)
		a2 := rng.Intn(3)
		v2 := rng.Intn(4)
		op2 := "="
		if rng.Intn(2) == 0 {
			op2 = "<>"
		}
		comb := "AND"
		if rng.Intn(2) == 0 {
			comb = "OR"
		}
		sql := fmt.Sprintf("SELECT COUNT(*) FROM cases WHERE A%d = %d %s A%d %s %d",
			a1+1, v1, comb, a2+1, op2, v2)
		got := queryInts(t, e, sql)[0][0]
		var want int64
		for _, r := range ds.Rows {
			c1 := r[a1] == data.Value(v1)
			c2 := r[a2] == data.Value(v2)
			if op2 == "<>" {
				c2 = !c2
			}
			m := c1 && c2
			if comb == "OR" {
				m = c1 || c2
			}
			if m {
				want++
			}
		}
		if got != want {
			t.Fatalf("%s: got %d, want %d", sql, got, want)
		}
	}
}

func TestValOrdering(t *testing.T) {
	a, b := IntVal(1), IntVal(2)
	if !a.less(b) || b.less(a) || !a.equal(IntVal(1)) {
		t.Error("int ordering")
	}
	s1, s2 := StrVal("a"), StrVal("b")
	if !s1.less(s2) || s2.less(s1) {
		t.Error("string ordering")
	}
	if !a.less(s1) || s1.less(a) {
		t.Error("ints must order before strings")
	}
	if a.String() != "1" || s1.String() != "a" {
		t.Error("String()")
	}
}

func TestResultSetString(t *testing.T) {
	rs := &ResultSet{Cols: []string{"x", "long"}, Rows: [][]Val{{IntVal(1), StrVal("v")}}}
	s := rs.String()
	if s == "" || s[0] != 'x' {
		t.Errorf("render = %q", s)
	}
}
