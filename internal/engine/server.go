package engine

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Server is the OLE-DB-like surface the paper's middleware consumes: a SQL
// engine plus cursor-based data access against one classification table. It
// keeps the data.Schema alongside the engine table so that predicates
// expressed over attribute indices can be pushed down.
type Server struct {
	eng     *Engine
	meter   *sim.Meter
	tracer  *obs.Tracer // per-view override; nil inherits the engine tracer
	schema  *data.Schema
	table   *Table
	noHints bool // disable histogram-guided partition bounds (ablation)
}

// NewServer creates a server around an engine and loads the dataset into a
// table with the given name (bulk load, unmetered).
func NewServer(eng *Engine, name string, ds *data.Dataset) (*Server, error) {
	cols := make([]string, ds.Schema.NumCols())
	for i := range cols {
		cols[i] = ds.Schema.ColName(i)
	}
	t, err := eng.CreateTable(name, cols)
	if err != nil {
		return nil, err
	}
	if err := eng.BulkLoad(t, ds.Rows); err != nil {
		return nil, err
	}
	return &Server{eng: eng, meter: eng.Meter(), schema: ds.Schema, table: t}, nil
}

// Engine returns the underlying SQL engine (for SQL-based baselines).
func (s *Server) Engine() *Engine { return s.eng }

// SetSplitHints toggles histogram-guided partition bounds (PageBounds,
// ScanBounds, JoinBounds and the weighted aux builders). Hints are enabled
// by default; disabling them restores equal-width splits everywhere, the
// ablation arm of the skew experiment. Derived servers (CopySubset) inherit
// the setting.
func (s *Server) SetSplitHints(on bool) { s.noHints = !on }

// SplitHints reports whether histogram-guided partition bounds are enabled.
func (s *Server) SplitHints() bool { return !s.noHints }

// Meter returns the server's meter.
func (s *Server) Meter() *sim.Meter { return s.meter }

// Tracer returns the observability tracer every server-side span is opened
// on: the view's own tracer when set, the engine's otherwise (nil when
// disabled).
func (s *Server) Tracer() *obs.Tracer {
	if s.tracer != nil {
		return s.tracer
	}
	return s.eng.tracer
}

// View returns a session-scoped view of the server: same engine and table,
// but every cursor cost is charged to the given meter and every span opened
// on the given tracer. Views are how the multi-tenant scheduler gives each
// concurrent build its own virtual clock and trace over one shared engine;
// a nil tracer inherits the engine's. The view copies the split-hint flag,
// so SetSplitHints on a view never leaks to other sessions.
func (s *Server) View(meter *sim.Meter, tracer *obs.Tracer) *Server {
	if meter == nil {
		meter = s.meter
	}
	return &Server{eng: s.eng, meter: meter, tracer: tracer, schema: s.schema, table: s.table, noHints: s.noHints}
}

// Schema returns the classification schema of the data table.
func (s *Server) Schema() *data.Schema { return s.schema }

// TableName returns the name of the data table.
func (s *Server) TableName() string { return s.table.Name }

// NumRows returns the number of rows in the data table.
func (s *Server) NumRows() int64 { return s.table.NumRows() }

// NumPages returns the number of heap pages backing the data table — the
// unit the partitioned scan divides between workers.
func (s *Server) NumPages() int { return s.table.NumPages() }

// DataBytes returns the on-disk size of the data table.
func (s *Server) DataBytes() int64 { return s.table.Bytes() }

// Cursor streams rows from the server to the middleware. Next returns the
// next row (valid until the following call) and whether one was produced.
type Cursor interface {
	Next() (data.Row, bool)
	Close()
}

// scanCursor is a firehose cursor over the data table with a pushed-down
// filter: the server evaluates the filter on every row (charging server CPU
// and page I/O through the buffer pool) and transmits only matching rows
// (charging RowTransmit each), exactly the §4.3.1 "reducing data transmitted
// from the server" mechanism.
type scanCursor struct {
	s      *Server
	filter predicate.Filter
	page   storage.PageID
	slot   uint16
	row    data.Row
	closed bool
	sp     *obs.Span
	rows   int64
}

// OpenScan initiates a cursor scan of the data table with the filter pushed
// down, charging the cursor-open cost.
func (s *Server) OpenScan(f predicate.Filter) Cursor {
	s.meter.Charge(sim.CtrServerScans, s.meter.Costs().CursorOpen, 1)
	return &scanCursor{s: s, filter: f, sp: s.Tracer().Start(obs.CatCursor, "server-scan")}
}

// finish closes the cursor span once, recording the rows transmitted.
func (c *scanCursor) finish() {
	if c.sp != nil {
		c.sp.SetRows(c.rows).End()
		c.sp = nil
	}
}

func (c *scanCursor) Next() (data.Row, bool) {
	if c.closed {
		return nil, false
	}
	h := c.s.table.heap
	ncols := len(c.s.table.Cols)
	costs := c.s.meter.Costs()
	for int(c.page) < h.NumPages() {
		rec, ok := heapRecord(h, c.page, c.slot)
		if !ok {
			c.page++
			c.slot = 0
			continue
		}
		if c.slot == 0 {
			// First record on the page: account the page read.
			c.s.eng.bp.TouchForScan(h, c.page)
		}
		c.slot++
		c.row = data.DecodeRow(rec, ncols, c.row)
		c.s.meter.Charge(sim.CtrServerRows, costs.ServerRowCPU, 1)
		if c.filter.Eval(c.row) {
			c.s.meter.Charge(sim.CtrRowsTransmitted, costs.RowTransmit, 1)
			c.rows++
			return c.row, true
		}
	}
	c.finish()
	return nil, false
}

func (c *scanCursor) Close() {
	c.closed = true
	c.finish()
}

// OpenScanPartition initiates a cursor scan over one horizontal partition of
// the data table: partition part of nparts, formed by splitting the heap
// into nparts contiguous, disjoint page ranges. Every worker of a parallel
// batch opens its own partition cursor (so the cursor-open cost is paid once
// per partition) and all of the cursor's costs are charged to lane — the
// worker's forked meter. A nil lane charges the server's own meter.
//
// Unlike OpenScan, a partition cursor bypasses the shared LRU buffer pool
// and charges ServerPageIO for every page it reads. Concurrent workers would
// interleave nondeterministically in the pool's LRU state, so the pool
// cannot be consulted without making page-I/O accounting depend on goroutine
// scheduling; the cold-scan model keeps parallel accounting bit-for-bit
// reproducible and matches the physical reality that n concurrent scan
// streams defeat a small shared cache. The pool's contents are left
// untouched for later sequential operations.
func (s *Server) OpenScanPartition(f predicate.Filter, part, nparts int, lane *sim.Meter) Cursor {
	if part < 0 || nparts < 1 || part >= nparts {
		panic(fmt.Sprintf("engine: invalid scan partition %d of %d", part, nparts))
	}
	lo, hi := rangeOf(part, nparts, s.table.heap.NumPages(), nil)
	return s.OpenScanRange(f, lo, hi, lane)
}

// OpenScanRange is OpenScanPartition generalized to an explicit page range
// [loPage, hiPage): the caller picks the boundaries, typically from
// PageBounds so lanes receive approximately equal estimated work rather than
// equal pages. The cost model and determinism rules are identical to
// OpenScanPartition. Empty ranges are valid (an empty lane of a skewed
// split) and yield no rows.
func (s *Server) OpenScanRange(f predicate.Filter, loPage, hiPage int, lane *sim.Meter) Cursor {
	np := s.table.heap.NumPages()
	if loPage < 0 || hiPage < loPage || hiPage > np {
		panic(fmt.Sprintf("engine: invalid scan range [%d, %d) of %d pages", loPage, hiPage, np))
	}
	if lane == nil {
		lane = s.meter
	}
	lane.Charge(sim.CtrServerScans, lane.Costs().CursorOpen, 1)
	return &partScanCursor{
		s:      s,
		lane:   lane,
		filter: f,
		page:   storage.PageID(loPage),
		end:    storage.PageID(hiPage),
	}
}

// PageBounds returns histogram-guided page boundaries splitting a scan with
// filter f into nparts lanes of approximately equal estimated cost: per page,
// one page read, per-row CPU, and perMatch — the caller's full per-matching-
// row cost (transmission, client-side counting, staging writes, copy writes
// ... whatever the scan feeds) — times the estimated matching rows. The
// result is WeightedBounds-shaped (nparts+1 monotone entries) and a pure
// function of the table statistics and the filter; computing it charges
// nothing. Returns nil — meaning "use equal-width" — when hints are disabled
// or the table is empty.
func (s *Server) PageBounds(f predicate.Filter, nparts int, perMatch int64) []int {
	if s.noHints || nparts < 2 {
		return nil
	}
	hints := s.table.PartitionHints(f)
	if hints == nil {
		return nil
	}
	costs := s.meter.Costs()
	weights := make([]int64, len(hints))
	for i, h := range hints {
		weights[i] = costs.ServerPageIO + h.Rows*costs.ServerRowCPU + h.Match*perMatch
	}
	return WeightedBounds(weights, nparts)
}

// EstimateMatch returns the statistics-based estimate of how many table rows
// match f, or -1 when hints are disabled (callers fall back to uniform
// assumptions). Pure and unmetered, like PageBounds.
func (s *Server) EstimateMatch(f predicate.Filter) int64 {
	if s.noHints || s.table.stats == nil {
		return -1
	}
	return s.table.stats.EstimateMatch(f)
}

// partScanCursor is a scanCursor restricted to a page range [page, end),
// charging a dedicated lane meter. It reads heap pages directly (the heap is
// immutable during scans) and never touches shared engine state, so any
// number of partition cursors over disjoint ranges may run concurrently.
type partScanCursor struct {
	s      *Server
	lane   *sim.Meter
	filter predicate.Filter
	page   storage.PageID
	end    storage.PageID
	slot   uint16
	row    data.Row
	closed bool
}

func (c *partScanCursor) Next() (data.Row, bool) {
	if c.closed {
		return nil, false
	}
	h := c.s.table.heap
	ncols := len(c.s.table.Cols)
	costs := c.lane.Costs()
	for c.page < c.end {
		rec, ok := heapRecord(h, c.page, c.slot)
		if !ok {
			c.page++
			c.slot = 0
			continue
		}
		if c.slot == 0 {
			// First record on the page: cold-scan page read (see
			// OpenScanPartition for why the buffer pool is bypassed).
			c.lane.Charge(sim.CtrServerPages, costs.ServerPageIO, 1)
		}
		c.slot++
		c.row = data.DecodeRow(rec, ncols, c.row)
		c.lane.Charge(sim.CtrServerRows, costs.ServerRowCPU, 1)
		if c.filter.Eval(c.row) {
			c.lane.Charge(sim.CtrRowsTransmitted, costs.RowTransmit, 1)
			return c.row, true
		}
	}
	return nil, false
}

func (c *partScanCursor) Close() { c.closed = true }

// Keyset is a keyset cursor (§4.3.3c): the set of TIDs of rows satisfying a
// predicate, captured by one qualifying scan. Re-scanning the keyset fetches
// records by TID; an optional stored-procedure filter restricts which rows
// are transmitted to the middleware.
type Keyset struct {
	s    *Server
	tids []storage.TID
}

// OpenKeyset runs the qualifying scan and captures the keyset. The scan
// charges full sequential-scan costs but transmits nothing.
func (s *Server) OpenKeyset(f predicate.Filter) *Keyset {
	sp := s.Tracer().Start(obs.CatAux, "keyset-build")
	s.meter.Charge(sim.CtrServerScans, s.meter.Costs().CursorOpen, 1)
	ks := &Keyset{s: s}
	s.eng.scan(s.table, func(tid storage.TID, row data.Row) bool {
		if f.Eval(row) {
			ks.tids = append(ks.tids, tid)
		}
		return true
	})
	sp.SetRows(int64(len(ks.tids))).End()
	return ks
}

// Size returns the number of rows captured in the keyset.
func (k *Keyset) Size() int { return len(k.tids) }

// keysetCursor fetches keyset rows by TID. If sproc is non-nil it is
// applied at the server so only matching rows are transmitted; with a nil
// sproc every keyset row is transmitted (the client filters), which is the
// behaviour the paper improves on with the stored procedure.
type keysetCursor struct {
	k      *Keyset
	sproc  *predicate.Filter
	i      int
	row    data.Row
	closed bool
	sp     *obs.Span
	rows   int64
}

// OpenScan re-scans the keyset, optionally filtering server-side with the
// stored procedure sproc.
func (k *Keyset) OpenScan(sproc *predicate.Filter) Cursor {
	k.s.meter.Charge(sim.CtrServerScans, k.s.meter.Costs().CursorOpen, 1)
	return &keysetCursor{k: k, sproc: sproc, sp: k.s.Tracer().Start(obs.CatCursor, "keyset-scan")}
}

func (c *keysetCursor) finish() {
	if c.sp != nil {
		c.sp.SetRows(c.rows).End()
		c.sp = nil
	}
}

func (c *keysetCursor) Next() (data.Row, bool) {
	if c.closed {
		return nil, false
	}
	s := c.k.s
	costs := s.meter.Costs()
	for c.i < len(c.k.tids) {
		tid := c.k.tids[c.i]
		c.i++
		row, err := s.eng.fetch(s.table, tid, c.row)
		if err != nil {
			// TIDs are captured from the same immutable heap; a failed
			// fetch indicates corruption and cannot occur in normal use.
			panic(fmt.Sprintf("engine: keyset fetch: %v", err))
		}
		c.row = row
		if c.sproc != nil {
			s.meter.Charge(sim.CtrServerRows, costs.ServerRowCPU, 1)
			if !c.sproc.Eval(row) {
				continue
			}
		}
		s.meter.Charge(sim.CtrRowsTransmitted, costs.RowTransmit, 1)
		c.rows++
		return row, true
	}
	c.finish()
	return nil, false
}

func (c *keysetCursor) Close() {
	c.closed = true
	c.finish()
}

// CopySubset copies the rows satisfying f into a new server-side temp table
// (§4.3.3a) and returns a Server view over it. Charges a full scan plus one
// server row-write per copied row.
func (s *Server) CopySubset(f predicate.Filter) (*Server, error) {
	name := s.eng.tempName()
	t, err := s.eng.CreateTable(name, s.table.Cols)
	if err != nil {
		return nil, err
	}
	t.temp = true
	sp := s.Tracer().Start(obs.CatAux, "copy-subset")
	defer func() { sp.SetRows(t.NumRows()).End() }()
	s.meter.Charge(sim.CtrServerScans, s.meter.Costs().CursorOpen, 1)
	costs := s.meter.Costs()
	var copyErr error
	s.eng.scan(s.table, func(_ storage.TID, row data.Row) bool {
		if !f.Eval(row) {
			return true
		}
		if _, err := s.eng.Insert(t, row); err != nil {
			copyErr = err
			return false
		}
		_ = costs
		return true
	})
	if copyErr != nil {
		return nil, copyErr
	}
	return &Server{eng: s.eng, meter: s.meter, tracer: s.tracer, schema: s.schema, table: t, noHints: s.noHints}, nil
}

// Drop removes the server's table (used to free temp tables).
func (s *Server) Drop() error { return s.eng.DropTable(s.table.Name) }

// TIDTable is the §4.3.3b alternative: the TIDs of the relevant subset are
// copied into a server-side temp table, and the subset is retrieved with a
// TID join.
type TIDTable struct {
	s    *Server
	tids []storage.TID
}

// CopyTIDs captures the TIDs of rows satisfying f into a server-side TID
// table: one qualifying scan plus one row-write per TID.
func (s *Server) CopyTIDs(f predicate.Filter) *TIDTable {
	sp := s.Tracer().Start(obs.CatAux, "tid-table-build")
	s.meter.Charge(sim.CtrServerScans, s.meter.Costs().CursorOpen, 1)
	tt := &TIDTable{s: s}
	costs := s.meter.Costs()
	s.eng.scan(s.table, func(tid storage.TID, row data.Row) bool {
		if f.Eval(row) {
			tt.tids = append(tt.tids, tid)
			s.meter.Charge(sim.CtrServerRows, costs.ServerRowWrite, 1)
		}
		return true
	})
	sp.SetRows(int64(len(tt.tids))).End()
	return tt
}

// Size returns the number of TIDs captured.
func (t *TIDTable) Size() int { return len(t.tids) }

// tidJoinCursor joins the TID table back to the data table: each probe is a
// random fetch plus join overhead (an index probe per TID).
type tidJoinCursor struct {
	t      *TIDTable
	filter predicate.Filter
	i      int
	row    data.Row
	closed bool
	sp     *obs.Span
	rows   int64
}

// OpenJoin retrieves the subset via a TID join, applying filter server-side.
func (t *TIDTable) OpenJoin(filter predicate.Filter) Cursor {
	t.s.meter.Charge(sim.CtrServerScans, t.s.meter.Costs().CursorOpen, 1)
	return &tidJoinCursor{t: t, filter: filter, sp: t.s.Tracer().Start(obs.CatCursor, "tid-join-scan")}
}

func (c *tidJoinCursor) finish() {
	if c.sp != nil {
		c.sp.SetRows(c.rows).End()
		c.sp = nil
	}
}

func (c *tidJoinCursor) Next() (data.Row, bool) {
	if c.closed {
		return nil, false
	}
	s := c.t.s
	costs := s.meter.Costs()
	for c.i < len(c.t.tids) {
		tid := c.t.tids[c.i]
		c.i++
		s.meter.Charge(sim.CtrIndexProbes, costs.IndexProbe, 1)
		row, err := s.eng.fetch(s.table, tid, c.row)
		if err != nil {
			panic(fmt.Sprintf("engine: TID join fetch: %v", err))
		}
		c.row = row
		s.meter.Charge(sim.CtrServerRows, costs.ServerRowCPU, 1)
		if !c.filter.Eval(row) {
			continue
		}
		s.meter.Charge(sim.CtrRowsTransmitted, costs.RowTransmit, 1)
		c.rows++
		return row, true
	}
	c.finish()
	return nil, false
}

func (c *tidJoinCursor) Close() {
	c.closed = true
	c.finish()
}

// heapRecord returns the raw record at (page, slot) if it exists. It peeks
// directly into the heap (metering is the cursor's responsibility).
func heapRecord(h *storage.HeapFile, p storage.PageID, s uint16) ([]byte, bool) {
	return h.Record(storage.TID{Page: p, Slot: s})
}
