package engine

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// relation is the row source of one SELECT core: a single table or an inner
// equi-join of two tables. It resolves (possibly alias-qualified) column
// names to positions in the rows it produces and drives those rows through a
// callback.
type relation struct {
	eng   *Engine
	cols  []string       // output names for * expansion
	index map[string]int // name -> position (qualified and unambiguous bare names)

	// Single-table fast path (nil for joins).
	table *Table

	// Join execution state (nil for single tables).
	left, right         *Table
	leftKeys, rightKeys []int          // equi-join key columns (parallel slices)
	residual            sqlparser.Expr // non-equi conjuncts of ON, evaluated on joined rows
}

// ColIndex resolves a column name for expression compilation.
func (r *relation) ColIndex(name string) int {
	if i, ok := r.index[name]; ok {
		return i
	}
	return -1
}

// buildRelation resolves the FROM clause of one core.
func (e *Engine) buildRelation(c *sqlparser.SelectCore) (*relation, error) {
	left, err := e.Table(c.Table)
	if err != nil {
		return nil, err
	}
	if c.Join == nil {
		return &relation{eng: e, table: left, cols: left.Cols, index: singleIndex(left, c.TableAlias)}, nil
	}
	right, err := e.Table(c.Join.Table)
	if err != nil {
		return nil, err
	}
	leftAlias := c.TableAlias
	if leftAlias == "" {
		leftAlias = c.Table
	}
	rightAlias := c.Join.Alias
	if rightAlias == "" {
		rightAlias = c.Join.Table
	}
	if leftAlias == rightAlias {
		return nil, fmt.Errorf("engine: duplicate table alias %q in join", leftAlias)
	}

	rel := &relation{eng: e, left: left, right: right, index: map[string]int{}}
	// Qualified names always resolve; bare names only when unambiguous.
	bare := map[string]int{} // count of tables defining the name
	for _, col := range left.Cols {
		bare[col]++
	}
	for _, col := range right.Cols {
		bare[col]++
	}
	for i, col := range left.Cols {
		rel.index[leftAlias+"."+col] = i
		if bare[col] == 1 {
			rel.index[col] = i
		}
		rel.cols = append(rel.cols, leftAlias+"."+col)
	}
	for i, col := range right.Cols {
		rel.index[rightAlias+"."+col] = len(left.Cols) + i
		if bare[col] == 1 {
			rel.index[col] = len(left.Cols) + i
		}
		rel.cols = append(rel.cols, rightAlias+"."+col)
	}

	// Split ON into equi-join keys and a residual condition.
	if err := rel.analyzeOn(c.Join.On); err != nil {
		return nil, err
	}
	if len(rel.leftKeys) == 0 {
		return nil, fmt.Errorf("engine: JOIN ON must include at least one cross-table equality")
	}
	return rel, nil
}

func singleIndex(t *Table, alias string) map[string]int {
	idx := make(map[string]int, 2*len(t.Cols))
	for i, col := range t.Cols {
		idx[col] = i
		idx[t.Name+"."+col] = i
		if alias != "" {
			idx[alias+"."+col] = i
		}
	}
	return idx
}

// analyzeOn walks the AND-conjunction tree of the ON expression, extracting
// cross-table equality conditions as hash-join keys; everything else becomes
// the residual filter.
func (r *relation) analyzeOn(on sqlparser.Expr) error {
	var residuals []sqlparser.Expr
	var walk func(ex sqlparser.Expr)
	walk = func(ex sqlparser.Expr) {
		if be, ok := ex.(*sqlparser.BinaryExpr); ok {
			if be.Op == "AND" {
				walk(be.L)
				walk(be.R)
				return
			}
			if be.Op == "=" {
				lc, lok := be.L.(*sqlparser.ColumnRef)
				rc, rok := be.R.(*sqlparser.ColumnRef)
				if lok && rok {
					li, ri := r.ColIndex(lc.Name), r.ColIndex(rc.Name)
					if li >= 0 && ri >= 0 && (li < len(r.left.Cols)) != (ri < len(r.left.Cols)) {
						if li < len(r.left.Cols) {
							r.leftKeys = append(r.leftKeys, li)
							r.rightKeys = append(r.rightKeys, ri-len(r.left.Cols))
						} else {
							r.leftKeys = append(r.leftKeys, ri)
							r.rightKeys = append(r.rightKeys, li-len(r.left.Cols))
						}
						return
					}
				}
			}
		}
		residuals = append(residuals, ex)
	}
	walk(on)
	for _, ex := range residuals {
		if r.residual == nil {
			r.residual = ex
		} else {
			r.residual = &sqlparser.BinaryExpr{Op: "AND", L: r.residual, R: ex}
		}
	}
	return nil
}

// iterate drives every row of the relation (before WHERE) through fn. For a
// join it builds a hash table on the right table's key columns and probes it
// with the left table's rows, charging one probe per left row and the usual
// scan costs for both inputs.
func (r *relation) iterate(fn func(data.Row) error) error {
	e := r.eng
	if r.table != nil {
		var ferr error
		e.scan(r.table, func(_ storage.TID, row data.Row) bool {
			if err := fn(row); err != nil {
				ferr = err
				return false
			}
			return true
		})
		return ferr
	}

	// Build side: hash the right table on its key columns.
	build := make(map[string][]data.Row)
	var key strings.Builder
	keyOf := func(row data.Row, keys []int) string {
		key.Reset()
		for _, k := range keys {
			fmt.Fprintf(&key, "%d.", row[k])
		}
		return key.String()
	}
	e.scan(r.right, func(_ storage.TID, row data.Row) bool {
		k := keyOf(row, r.rightKeys)
		build[k] = append(build[k], row.Clone())
		return true
	})

	// Residual filter over joined rows.
	var residual evaluator
	if r.residual != nil {
		ev, err := r.eng.compileExpr(r.residual, r)
		if err != nil {
			return err
		}
		residual = ev
	}

	// Probe side.
	probeCost := e.meter.Costs().IndexProbe
	joined := make(data.Row, len(r.left.Cols)+len(r.right.Cols))
	var ferr error
	e.scan(r.left, func(_ storage.TID, lrow data.Row) bool {
		e.meter.Charge(sim.CtrIndexProbes, probeCost, 1)
		matches := build[keyOf(lrow, r.leftKeys)]
		for _, rrow := range matches {
			copy(joined, lrow)
			copy(joined[len(r.left.Cols):], rrow)
			if residual != nil {
				v, err := residual(joined)
				if err != nil {
					ferr = err
					return false
				}
				if !truthy(v) {
					continue
				}
			}
			if err := fn(joined); err != nil {
				ferr = err
				return false
			}
		}
		return true
	})
	return ferr
}
