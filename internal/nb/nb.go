// Package nb implements a Naive Bayes classifier as a second client of the
// classification middleware, demonstrating the paper's claim (§1) that "other
// classification algorithms such as Naive Bayes can also plug in to this
// architecture": Naive Bayes is driven entirely by the same sufficient
// statistics — the co-occurrence counts of (attribute, value, class) — and
// needs exactly one counts table, the root's, obtained in a single scan.
package nb

import (
	"fmt"
	"math"

	"repro/internal/cc"
	"repro/internal/data"
	"repro/internal/mw"
)

// Model is a trained Naive Bayes classifier.
type Model struct {
	Schema *data.Schema
	// Priors[c] is the class prior probability.
	Priors []float64
	// CondLog[a][v][c] is log P(A_a = v | C = c) with Laplace smoothing.
	CondLog [][][]float64
	// Alpha is the Laplace smoothing constant used.
	Alpha float64
	// Rows is the number of training rows.
	Rows int64
}

// Train builds a model through the middleware: one request for the root
// counts table, then pure arithmetic.
func Train(m *mw.Middleware, alpha float64) (*Model, error) {
	schema := m.Schema()
	attrs := make([]int, schema.NumAttrs())
	for i := range attrs {
		attrs[i] = i
	}
	var est int64
	for _, a := range schema.Attrs {
		est += int64(a.Card)
	}
	est = est*int64(schema.Class.Card) + int64(schema.Class.Card)
	if err := m.Enqueue(&mw.Request{
		NodeID: 0, ParentID: -1, Attrs: attrs, Rows: m.DataRows(), EstCC: est,
	}); err != nil {
		return nil, err
	}
	var table *cc.Table
	for m.Pending() > 0 {
		results, err := m.Step()
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			if res.Req.NodeID == 0 {
				table = res.CC
			}
			m.CloseNode(res.Req.NodeID)
		}
	}
	if table == nil {
		return nil, fmt.Errorf("nb: middleware returned no counts table")
	}
	return FromCounts(schema, table, alpha)
}

// FromCounts trains a model from a root counts table (which must include the
// class pseudo-attribute the middleware always counts).
func FromCounts(schema *data.Schema, t *cc.Table, alpha float64) (*Model, error) {
	if alpha <= 0 {
		alpha = 1
	}
	classCard := schema.Class.Card
	classIdx := schema.ClassIndex()

	classCounts := make([]int64, classCard)
	var total int64
	for c := 0; c < classCard; c++ {
		classCounts[c] = t.Count(classIdx, data.Value(c), data.Value(c))
		total += classCounts[c]
	}
	if total == 0 {
		return nil, fmt.Errorf("nb: empty counts table")
	}

	m := &Model{Schema: schema, Alpha: alpha, Rows: total}
	m.Priors = make([]float64, classCard)
	for c := 0; c < classCard; c++ {
		m.Priors[c] = float64(classCounts[c]) / float64(total)
	}

	m.CondLog = make([][][]float64, schema.NumAttrs())
	for a := 0; a < schema.NumAttrs(); a++ {
		card := schema.Attrs[a].Card
		m.CondLog[a] = make([][]float64, card)
		for v := 0; v < card; v++ {
			m.CondLog[a][v] = make([]float64, classCard)
			for c := 0; c < classCard; c++ {
				n := t.Count(a, data.Value(v), data.Value(c))
				p := (float64(n) + alpha) / (float64(classCounts[c]) + alpha*float64(card))
				m.CondLog[a][v][c] = math.Log(p)
			}
		}
	}
	return m, nil
}

// TrainInMemory trains directly from a dataset (the unmetered reference).
func TrainInMemory(ds *data.Dataset, alpha float64) (*Model, error) {
	attrs := make([]int, ds.Schema.NumCols())
	for i := range attrs {
		attrs[i] = i
	}
	t := cc.FromDataset(ds, attrs, nil)
	return FromCounts(ds.Schema, t, alpha)
}

// LogPosteriors returns the unnormalized log posterior per class for a row.
func (m *Model) LogPosteriors(row data.Row) []float64 {
	classCard := m.Schema.Class.Card
	out := make([]float64, classCard)
	for c := 0; c < classCard; c++ {
		lp := math.Inf(-1)
		if m.Priors[c] > 0 {
			lp = math.Log(m.Priors[c])
			for a := 0; a < m.Schema.NumAttrs(); a++ {
				v := int(row[a])
				if v >= 0 && v < len(m.CondLog[a]) {
					lp += m.CondLog[a][v][c]
				}
			}
		}
		out[c] = lp
	}
	return out
}

// Predict returns the maximum-a-posteriori class for a row.
func (m *Model) Predict(row data.Row) data.Value {
	lps := m.LogPosteriors(row)
	best := 0
	for c := 1; c < len(lps); c++ {
		if lps[c] > lps[best] {
			best = c
		}
	}
	return data.Value(best)
}

// Accuracy returns the fraction of rows whose class the model predicts
// correctly.
func (m *Model) Accuracy(ds *data.Dataset) float64 {
	if ds.N() == 0 {
		return 0
	}
	correct := 0
	for _, r := range ds.Rows {
		if m.Predict(r) == r.Class() {
			correct++
		}
	}
	return float64(correct) / float64(ds.N())
}
