package nb

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/sim"
)

// separableDataset: attribute 0 equals the class; other attributes are
// noise. Naive Bayes must classify it perfectly.
func separableDataset(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := data.NewSchema(3, 3, 3)
	ds := data.NewDataset(s)
	for i := 0; i < n; i++ {
		c := data.Value(rng.Intn(3))
		ds.Append(data.Row{c, data.Value(rng.Intn(3)), data.Value(rng.Intn(3)), c})
	}
	return ds
}

func TestTrainInMemorySeparable(t *testing.T) {
	ds := separableDataset(900, 1)
	m, err := TrainInMemory(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(ds); acc != 1.0 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
	if m.Rows != 900 {
		t.Errorf("Rows = %d", m.Rows)
	}
}

func TestPriorsSumToOne(t *testing.T) {
	ds := separableDataset(500, 2)
	m, err := TrainInMemory(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range m.Priors {
		if p < 0 || p > 1 {
			t.Errorf("prior %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("priors sum to %v", sum)
	}
}

func TestConditionalsNormalized(t *testing.T) {
	ds := separableDataset(500, 3)
	m, err := TrainInMemory(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	// For each attribute and class, sum over values of P(v|c) must be 1.
	for a := 0; a < ds.Schema.NumAttrs(); a++ {
		for c := 0; c < ds.Schema.Class.Card; c++ {
			var sum float64
			for v := 0; v < ds.Schema.Attrs[a].Card; v++ {
				sum += math.Exp(m.CondLog[a][v][c])
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("P(A%d|c=%d) sums to %v", a+1, c, sum)
			}
		}
	}
}

func TestLaplaceSmoothingNoZeroProbabilities(t *testing.T) {
	ds := separableDataset(100, 4)
	m, err := TrainInMemory(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	for a := range m.CondLog {
		for v := range m.CondLog[a] {
			for c := range m.CondLog[a][v] {
				if math.IsInf(m.CondLog[a][v][c], -1) {
					t.Fatalf("zero conditional at a=%d v=%d c=%d despite smoothing", a, v, c)
				}
			}
		}
	}
}

func TestTrainViaMiddlewareMatchesInMemory(t *testing.T) {
	ds := separableDataset(600, 5)
	srv, err := engine.NewServer(engine.New(sim.NewDefaultMeter(), 0), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mw.New(srv, mw.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	got, err := Train(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TrainInMemory(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows {
		t.Fatalf("rows %d vs %d", got.Rows, want.Rows)
	}
	for c := range got.Priors {
		if math.Abs(got.Priors[c]-want.Priors[c]) > 1e-12 {
			t.Fatalf("prior %d differs", c)
		}
	}
	for a := range got.CondLog {
		for v := range got.CondLog[a] {
			for c := range got.CondLog[a][v] {
				if math.Abs(got.CondLog[a][v][c]-want.CondLog[a][v][c]) > 1e-12 {
					t.Fatalf("conditional (%d,%d,%d) differs", a, v, c)
				}
			}
		}
	}
	// Exactly one server scan trained the model.
	if scans := srv.Meter().Count(sim.CtrServerScans); scans != 1 {
		t.Errorf("training used %d scans, want 1", scans)
	}
}

func TestPredictBeatsChanceOnGaussians(t *testing.T) {
	ds, err := datagen.GenerateGaussians(datagen.GaussianConfig{
		Dims: 12, Components: 4, PerClass: 400, Bins: 4, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainInMemory(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(ds); acc < 0.7 {
		t.Errorf("gaussian accuracy = %v, want >= 0.7", acc)
	}
}

func TestLogPosteriorsShape(t *testing.T) {
	ds := separableDataset(300, 7)
	m, _ := TrainInMemory(ds, 1)
	lps := m.LogPosteriors(ds.Rows[0])
	if len(lps) != 3 {
		t.Fatalf("%d posteriors", len(lps))
	}
	best := 0
	for c := range lps {
		if lps[c] > lps[best] {
			best = c
		}
	}
	if data.Value(best) != m.Predict(ds.Rows[0]) {
		t.Error("Predict disagrees with LogPosteriors argmax")
	}
}

func TestFromCountsEmptyErrors(t *testing.T) {
	ds := separableDataset(10, 8)
	empty := data.NewDataset(ds.Schema)
	if _, err := TrainInMemory(empty, 1); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestAlphaDefaulting(t *testing.T) {
	ds := separableDataset(100, 9)
	m, err := TrainInMemory(ds, 0) // invalid alpha defaults to 1
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha != 1 {
		t.Errorf("alpha = %v, want 1", m.Alpha)
	}
}
