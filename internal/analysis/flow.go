package analysis

// This file implements the shared obligation analysis behind the spanend,
// forkjoin, closer and gohandoff analyzers: a value acquired at some call
// site (an obs span, a slice of forked lane meters, a cursor or staging
// writer) carries an obligation — End the span, Join the lanes, Close the
// resource — that must be discharged on every path out of the acquiring
// function.
//
// The walker is a small abstract interpreter over the AST, path-sensitive
// across if/switch/select arms. Ownership transfer is resolved against the
// module's function summaries (summary.go) where possible: passing an
// obligation to an always-releasing helper discharges it, passing to a
// never- or conditionally-releasing helper keeps it tracked here (the leak
// is reported at the acquirer with the callee chain), and a call whose
// summarized results carry fresh obligations is itself an acquire site. Where
// no summary exists (stdlib, indirect calls, escapes into structs or
// globals) the engine stays deliberately permissive: the obligation is
// treated as handed off and is not tracked further, keeping false positives
// near zero — the property a CI gate needs.
//
// The same engine runs in four modes:
//
//   - modeAnalyze:   the analyzers' normal walk; leaks report at acquire sites
//   - modeSummary:   computes a FuncSummary for one function (no reporting)
//   - modeGoHandoff: the gohandoff analyzer's walk — obligations captured by
//     `go` statements are borrow-checked against the goroutine body instead
//     of being handed off, and only goroutine-capture leaks report
//   - modeGoCheck:   the nested walk over one goroutine body deciding
//     whether it releases a captured obligation on all paths
//
// The analysis proceeds in three phases per function literal or declaration:
//
//  1. collect obligations: simple assignments whose right-hand side is (or
//     chains from) an acquiring call — intrinsic to the rule set or a call
//     whose summary returns fresh obligations;
//  2. escape scan: drop obligations that are deferred-released, captured by a
//     nested function literal, or transferred out of the function;
//  3. path walk: simulate the statement list, forking the environment at
//     branches, discharging obligations at release calls and summarized
//     always-releasing callees, and reporting any obligation still open when
//     a path exits the function.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// flowMode selects the engine's behavior (see the package comment above).
type flowMode int

const (
	modeAnalyze flowMode = iota
	modeSummary
	modeGoHandoff
	modeGoCheck
)

// escKind classifies one use of a tracked variable.
type escKind int

const (
	escNone      escKind = iota // the use keeps the obligation in hand
	escHandoff                  // ownership transfers beyond this analysis
	escGoroutine                // captured by (or passed into) a `go` statement
)

// obRules parameterizes the obligation engine for one analyzer.
type obRules struct {
	// name keys this rule set's summary table in the ModuleIndex; empty
	// disables summary consults.
	name string

	// acquire reports whether call creates obligations, which of the call's
	// result indices carry them, and a short description for diagnostics.
	acquire func(p *Pass, call *ast.CallExpr) (desc string, idxs []int, ok bool)

	// paramType reports whether a parameter (or result) type can carry this
	// rule set's obligation, with the description used in diagnostics. The
	// summary layer seeds matching parameters as obligations.
	paramType func(p *Pass, t types.Type) (string, bool)

	// releaseRecv holds method names that discharge the obligation when
	// invoked with the obligation value as the root of the receiver chain
	// (sp.SetRows(1).End() discharges sp).
	releaseRecv map[string]bool

	// releaseArg holds method names that discharge the obligation passed as
	// their first argument (meter.Join(lanes) discharges lanes). Nil when the
	// analyzer has no such form.
	releaseArg map[string]bool

	// validRelease, when set, vets a candidate release call (the method name
	// already matched); use it to pin the receiver type.
	validRelease func(p *Pass, call *ast.CallExpr) bool

	// keepArg reports that passing the obligation value as an argument of
	// call does not transfer ownership (tr.ForkLanes(lanes) reads the lanes
	// but joining them stays the caller's job).
	keepArg func(p *Pass, call *ast.CallExpr) bool

	// onOpenCall, when set, observes every call executed while obligations
	// are open, in statement order (forkjoin flags parent-meter charges).
	onOpenCall func(p *Pass, call *ast.CallExpr, open []*obligation)

	// leakVerb completes "X is not <leakVerb> on every path".
	leakVerb string
}

// obligation is one tracked acquisition.
type obligation struct {
	v     *types.Var
	pos   token.Pos // acquire call position, where leaks are reported
	desc  string
	recv  string // receiver expression of the acquiring call ("m.meter")
	param int    // parameter index in summary mode, -1 for acquired values

	// errVar is the error sibling of a `v, err := acquire()` form, if any: on
	// a path guarded by `err != nil` the acquisition failed and v carries no
	// obligation. Cleared per path once errVar is reassigned.
	errVar *types.Var

	// chain is the callee chain explaining why a hand-off attempt did not
	// discharge the obligation ("interproc.forwardLeak -> interproc.logSpan");
	// chainRel records whether the chain's end never releases or only
	// conditionally releases. The first recorded chain wins (walk order is
	// deterministic).
	chain    []string
	chainRel relStatus

	// goPos is the `go` statement that captured the obligation without an
	// in-goroutine release (modeGoHandoff); leaks report there.
	goPos token.Pos
}

// runObligations applies the rules to every function declaration and function
// literal in the package, in the analyzers' normal reporting mode.
func runObligations(p *Pass, rules *obRules) {
	runObligationsMode(p, rules, modeAnalyze)
}

// runObligationsMode is runObligations with an explicit engine mode
// (gohandoff re-runs the rule sets in modeGoHandoff).
func runObligationsMode(p *Pass, rules *obRules, mode flowMode) {
	var sums map[string]*FuncSummary
	if p.index != nil {
		sums = p.index.summaries(rules)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeFuncBody(p, rules, fn.Body, mode, sums)
				}
			case *ast.FuncLit:
				analyzeFuncBody(p, rules, fn.Body, mode, sums)
			}
			return true
		})
	}
}

// obState is one obligation's status on the current path.
type obState struct {
	ob          *obligation
	released    bool
	releasedAny bool // released on some merged-away path, or conditionally by a callee
	errStale    bool // the error sibling was reassigned; nil-checks no longer vouch
}

type obEnv map[*types.Var]*obState

func (e obEnv) clone() obEnv {
	out := make(obEnv, len(e))
	for v, s := range e { //repolint:ordered environment copy is order-independent
		out[v] = &obState{ob: s.ob, released: s.released, releasedAny: s.releasedAny, errStale: s.errStale}
	}
	return out
}

// flowAnalysis is the per-function state of one obligation walk.
type flowAnalysis struct {
	p        *Pass
	rules    *obRules
	body     *ast.BlockStmt
	tracked  map[*types.Var]*obligation
	reported map[*types.Var]bool

	mode flowMode
	idx  *ModuleIndex
	sums map[string]*FuncSummary // summaries for rules.name, nil without an index
	sb   *summaryBuilder         // modeSummary accumulator

	goFail bool // modeGoCheck: some goroutine path left the obligation open
}

func analyzeFuncBody(p *Pass, rules *obRules, body *ast.BlockStmt, mode flowMode, sums map[string]*FuncSummary) {
	fa := &flowAnalysis{
		p:        p,
		rules:    rules,
		body:     body,
		tracked:  map[*types.Var]*obligation{},
		reported: map[*types.Var]bool{},
		mode:     mode,
		idx:      p.index,
		sums:     sums,
	}
	fa.collectObligations()
	if len(fa.tracked) == 0 {
		return
	}
	fa.dropEscapes()
	if len(fa.tracked) == 0 && (rules.onOpenCall == nil || mode != modeAnalyze) {
		return
	}
	env := obEnv{}
	terminated := fa.walkStmts(fa.body.List, env)
	if !terminated {
		fa.checkExit(env, fa.body.Rbrace)
	}
}

// ---- phase 1: collect obligations --------------------------------------

// acquire reports whether call creates obligations: intrinsically per the
// rule set, or because the callee's summary marks result indices as carrying
// fresh obligations (a constructor wrapping an acquire).
func (fa *flowAnalysis) acquire(call *ast.CallExpr) (string, []int, bool) {
	if desc, idxs, ok := fa.rules.acquire(fa.p, call); ok {
		return desc, idxs, ok
	}
	if fa.sums == nil {
		return "", nil, false
	}
	f := calleeFunc(fa.p.Info, call)
	if f == nil {
		return "", nil, false
	}
	sum := fa.sums[f.FullName()]
	if sum == nil {
		return "", nil, false
	}
	var idxs []int
	var desc string
	for i, r := range sum.Results {
		if r.Fresh {
			idxs = append(idxs, i)
			desc = r.Desc
		}
	}
	if len(idxs) == 0 {
		return "", nil, false
	}
	fa.countCross()
	return desc, idxs, true
}

// collectObligations finds simple assignments binding an acquiring call (or a
// setter chain rooted at one) to a local variable, plus acquiring calls whose
// result is discarded outright.
func (fa *flowAnalysis) collectObligations() {
	inspectSkipFuncLit(fa.body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			fa.collectAssign(st.Lhs, st.Rhs)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, id := range vs.Names {
							lhs[i] = id
						}
						fa.collectAssign(lhs, vs.Values)
					}
				}
			}
		case *ast.ExprStmt:
			fa.checkDiscarded(st.X)
		}
	})
}

// collectAssign inspects one assignment (or var declaration with values).
func (fa *flowAnalysis) collectAssign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// v, err := acquire(): obligations attach by result index, and the
		// error sibling guards failure paths (v is nil when err is non-nil).
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		desc, idxs, ok := fa.acquire(call)
		if !ok {
			return
		}
		var errv *types.Var
		for _, l := range lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
				if v := fa.objectOf(id); v != nil && isErrorType(v.Type()) {
					errv = v
				}
			}
		}
		for _, i := range idxs {
			if i < len(lhs) {
				if ob := fa.track(lhs[i], call, desc); ob != nil {
					ob.errVar = errv
				}
			}
		}
		return
	}
	for i, r := range rhs {
		if i >= len(lhs) {
			break
		}
		call, desc, ok := fa.acquireChainRoot(r)
		if !ok {
			continue
		}
		fa.track(lhs[i], call, desc)
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// track registers an obligation for an identifier target; a blank identifier
// discards the value and is reported immediately.
func (fa *flowAnalysis) track(target ast.Expr, call *ast.CallExpr, desc string) *obligation {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		// Assigned to a field, index or dereference: ownership moves into a
		// longer-lived structure — someone else's obligation now.
		return nil
	}
	if id.Name == "_" {
		if fa.mode == modeAnalyze {
			fa.p.Reportf(call.Pos(), "%s is discarded without being %s", desc, fa.rules.leakVerb)
		}
		return nil
	}
	v := fa.objectOf(id)
	if v == nil {
		return nil
	}
	ob := &obligation{v: v, pos: call.Pos(), desc: desc, recv: recvExprString(call), param: -1}
	fa.tracked[v] = ob
	return ob
}

func (fa *flowAnalysis) objectOf(id *ast.Ident) *types.Var {
	if o, ok := fa.p.Info.Defs[id].(*types.Var); ok {
		return o
	}
	if o, ok := fa.p.Info.Uses[id].(*types.Var); ok {
		return o
	}
	return nil
}

// acquireChainRoot reports whether expr is an acquiring call, possibly
// extended by a chain of single-result method calls (tr.Start(..).SetRows(1)).
// A release method anywhere above the acquire discharges it in place.
func (fa *flowAnalysis) acquireChainRoot(expr ast.Expr) (*ast.CallExpr, string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	if desc, idxs, ok := fa.acquire(call); ok {
		if len(idxs) == 1 && idxs[0] == 0 {
			return call, desc, true
		}
		return nil, "", false
	}
	// Not an acquire itself: if it is a method call, look down the receiver
	// chain for one, unless this link releases it.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	if fa.rules.releaseRecv[sel.Sel.Name] && fa.validRelease(call) {
		return nil, "", false
	}
	return fa.acquireChainRoot(sel.X)
}

// checkDiscarded reports an acquiring chain whose result is dropped on the
// floor as a bare expression statement without an in-chain release.
func (fa *flowAnalysis) checkDiscarded(expr ast.Expr) {
	if fa.mode != modeAnalyze {
		return
	}
	call, desc, ok := fa.acquireChainRoot(expr)
	if ok {
		fa.p.Reportf(call.Pos(), "%s is discarded without being %s", desc, fa.rules.leakVerb)
	}
}

// ---- phase 2: escape scan ----------------------------------------------

// dropEscapes untracks obligations that are discharged for every path at once
// (defer v.End()) or whose ownership leaves the function (captured by a
// closure, stored, passed to an unsummarized function, returned). Summary
// mode records the escape kind instead of just forgetting it, and
// modeGoHandoff keeps goroutine captures tracked for the borrow check.
func (fa *flowAnalysis) dropEscapes() {
	drop := map[*types.Var]bool{}
	var stack []ast.Node
	ast.Inspect(fa.body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := fa.p.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		ob, tracked := fa.tracked[v]
		if !tracked {
			return true
		}
		switch fa.useEscapes(stack, id) {
		case escNone:
		case escHandoff:
			if fa.mode == modeSummary && ob.param >= 0 {
				if acc := fa.sb.params[v]; acc != nil {
					acc.escaped = true
				}
			}
			drop[v] = true
		case escGoroutine:
			switch fa.mode {
			case modeSummary:
				if ob.param >= 0 {
					if acc := fa.sb.params[v]; acc != nil {
						acc.goroutine = true
					}
				}
				drop[v] = true
			case modeGoHandoff:
				// Kept: the GoStmt walk decides borrow vs leak.
			default:
				drop[v] = true
			}
		}
		return true
	})
	for v := range drop { //repolint:ordered map removal is order-independent
		delete(fa.tracked, v)
	}
}

// useEscapes classifies one use of a tracked variable given its ancestor
// stack (outermost first, the identifier last).
func (fa *flowAnalysis) useEscapes(stack []ast.Node, id *ast.Ident) escKind {
	// A use inside a nested function literal: a plain closure may (and in
	// this codebase does, e.g. deferred cleanups) release it — hand off. A
	// literal launched by a `go` statement is a goroutine capture.
	for j, n := range stack[:len(stack)-1] {
		if _, ok := n.(*ast.FuncLit); ok {
			if isGoLit(stack, j) {
				return escGoroutine
			}
			return escHandoff
		}
	}
	// Walk outward past wrappers that keep the value in hand.
	i := len(stack) - 2
	child := ast.Node(id)
	for i >= 0 {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			child = parent
			i--
			continue
		case *ast.SelectorExpr:
			// v.Method or v.Field read: stay.
			if parent.X == child {
				return escNone
			}
			return escHandoff
		case *ast.IndexExpr:
			// v[i] element read does not move the slice's obligation.
			if parent.X == child {
				return escNone
			}
			return escHandoff // used as an index: impossible for our types, bail out
		case *ast.SliceExpr:
			// v[lo:hi] re-slices alias the backing array — hand off.
			return escHandoff
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok && fa.isBuiltin(fun) {
				if fun.Name == "len" || fun.Name == "cap" {
					return escNone
				}
				return escHandoff // append, copy, ...: hand off
			}
			// Argument of a release-by-argument call keeps the obligation
			// here (the release is what the path walk looks for); so does a
			// whitelisted read-only callee.
			if fa.isReleaseArgCall(parent) {
				return escNone
			}
			if fa.rules.keepArg != nil && fa.rules.keepArg(fa.p, parent) {
				return escNone
			}
			// go helper(v): the GoStmt walk decides what the goroutine does.
			if i > 0 {
				if g, ok := stack[i-1].(*ast.GoStmt); ok && g.Call == parent {
					return escGoroutine
				}
			}
			// A summarized callee that releases (or visibly leaks) keeps the
			// obligation under this function's analysis; anything else is an
			// ownership hand-off.
			if fa.argSummaryKeeps(parent, child) {
				return escNone
			}
			return escHandoff
		case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt:
			return escNone // comparisons and conditions read, never transfer
		case *ast.RangeStmt:
			if parent.X != child {
				return escHandoff
			}
			return escNone // ranging over v reads it
		case *ast.AssignStmt:
			for _, r := range parent.Rhs {
				if ast.Unparen(r) == child {
					return escHandoff // aliased into another variable or location
				}
			}
			return escNone // left-hand side or part of a larger expression
		case *ast.ReturnStmt:
			return escHandoff
		case *ast.ValueSpec, *ast.CompositeLit, *ast.KeyValueExpr,
			*ast.SendStmt, *ast.UnaryExpr, *ast.StarExpr, *ast.GoStmt:
			return escHandoff
		case *ast.DeferStmt:
			// defer v.Release() discharges on every exit; checked below via
			// the deferred call itself. A defer that does not release keeps
			// the obligation open, but reporting through an unrelated defer
			// would be noise — hand off.
			if fa.deferReleases(parent, id) {
				return escNone
			}
			return escHandoff
		case *ast.ExprStmt, *ast.BlockStmt, *ast.CaseClause, *ast.CommClause,
			*ast.IncDecStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
			return escNone
		default:
			return escHandoff // unanticipated context: be permissive, hand off
		}
	}
	return escNone
}

// isGoLit reports whether stack[j] is a function literal immediately invoked
// by a `go` statement (go func(...){...}(...)).
func isGoLit(stack []ast.Node, j int) bool {
	if j < 2 {
		return false
	}
	lit, ok := stack[j].(*ast.FuncLit)
	if !ok {
		return false
	}
	call, ok := stack[j-1].(*ast.CallExpr)
	if !ok || ast.Unparen(call.Fun) != ast.Node(lit) {
		return false
	}
	g, ok := stack[j-2].(*ast.GoStmt)
	return ok && g.Call == call
}

// argSummaryKeeps reports whether passing child as an argument of call keeps
// the obligation tracked here: the callee has a summary for that parameter
// that either always releases it (the path walk will discharge it at the
// call) or visibly fails to (the leak reports at this function's acquirer
// with the callee chain). An //repolint:owner directive at the call site
// forces the old hand-off reading.
func (fa *flowAnalysis) argSummaryKeeps(call *ast.CallExpr, child ast.Node) bool {
	if fa.sums == nil {
		return false
	}
	f := calleeFunc(fa.p.Info, call)
	if f == nil {
		return false
	}
	sum := fa.sums[f.FullName()]
	if sum == nil {
		return false
	}
	if fa.p.Directive(call.Pos(), "owner") {
		return false
	}
	k := -1
	for i, a := range call.Args {
		if a == child || ast.Unparen(a) == child {
			k = i
			break
		}
	}
	if k < 0 {
		return false
	}
	pidx := summaryParamIndex(f, sum, k)
	if pidx < 0 {
		return false
	}
	ps := sum.Params[pidx]
	return ps.Tracked && !ps.Escapes && !ps.Goroutine
}

// summaryParamIndex maps a call-argument index onto the flattened parameter
// index of the callee's summary (receiver at 0 for methods, variadic tail
// collapsed onto the last parameter), or -1.
func summaryParamIndex(f *types.Func, sum *FuncSummary, k int) int {
	sig := funcSignature(f)
	if sig == nil {
		return -1
	}
	pidx := k
	if sig.Recv() != nil {
		pidx++
	}
	if pidx >= len(sum.Params) {
		if sig.Variadic() && len(sum.Params) > 0 {
			return len(sum.Params) - 1
		}
		return -1
	}
	return pidx
}

// deferReleases reports whether the deferred call discharges the identifier's
// obligation: defer v.End(), defer cur.Close(), defer m.Join(lanes).
func (fa *flowAnalysis) deferReleases(d *ast.DeferStmt, id *ast.Ident) bool {
	for _, rid := range fa.releasedBy(d.Call) {
		if fa.p.Info.Uses[rid] == fa.p.Info.Uses[id] {
			return true
		}
	}
	return false
}

// isBuiltin reports whether the identifier names a universe-scope builtin.
func (fa *flowAnalysis) isBuiltin(id *ast.Ident) bool {
	_, ok := fa.p.Info.Uses[id].(*types.Builtin)
	return ok
}

// isReleaseArgCall reports whether call is a release-by-argument method
// (Join/JoinLanes) according to the rules.
func (fa *flowAnalysis) isReleaseArgCall(call *ast.CallExpr) bool {
	if fa.rules.releaseArg == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !fa.rules.releaseArg[sel.Sel.Name] {
		return false
	}
	return fa.validRelease(call)
}

func (fa *flowAnalysis) validRelease(call *ast.CallExpr) bool {
	if fa.rules.validRelease == nil {
		return true
	}
	return fa.rules.validRelease(fa.p, call)
}

// ---- phase 3: path walk ------------------------------------------------

// walkStmts simulates a statement list, returning true when every path
// through it terminates (returns, branches away or panics).
func (fa *flowAnalysis) walkStmts(list []ast.Stmt, env obEnv) bool {
	for _, st := range list {
		if fa.walkStmt(st, env) {
			return true
		}
	}
	return false
}

func (fa *flowAnalysis) walkStmt(st ast.Stmt, env obEnv) bool {
	switch s := st.(type) {
	case *ast.ExprStmt:
		fa.scanExpr(s.X, env)
		return isPanicCall(fa.p, s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			fa.scanExpr(r, env)
		}
		for _, l := range s.Lhs {
			fa.scanExpr(l, env)
		}
		fa.staleErrGuards(s.Lhs, env)
		fa.openAssigned(s.Lhs, s.Rhs, env)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						fa.scanExpr(val, env)
					}
					if len(vs.Values) > 0 {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, id := range vs.Names {
							lhs[i] = id
						}
						fa.openAssigned(lhs, vs.Values, env)
					}
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fa.scanExpr(r, env)
		}
		if fa.mode == modeSummary {
			fa.recordReturn(s, env)
		}
		fa.checkExit(env, s.Pos())
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			fa.walkStmt(s.Init, env)
		}
		fa.scanExpr(s.Cond, env)
		thenEnv := env.clone()
		elseEnv := env.clone()
		if v, nonNilIsThen := fa.nilCheckVar(s.Cond); v != nil {
			// `if err != nil` guards the acquisition-failed path: sibling
			// obligations from `v, err := acquire()` never came alive there.
			guarded := elseEnv
			if nonNilIsThen {
				guarded = thenEnv
			}
			for _, st := range guarded { //repolint:ordered per-state flag update, order-independent
				if st.ob.errVar == v && !st.errStale {
					st.released = true
				}
			}
			// `if v != nil { v.Close() }` over the obligation value itself:
			// on the nil branch there is nothing to release — the release is
			// vacuously satisfied there.
			nilEnv := thenEnv
			if nonNilIsThen {
				nilEnv = elseEnv
			}
			if st, ok := nilEnv[v]; ok {
				st.released = true
			}
		}
		thenTerm := fa.walkStmts(s.Body.List, thenEnv)
		elseTerm := false
		if s.Else != nil {
			elseTerm = fa.walkStmt(s.Else, elseEnv)
		}
		return mergeEnvs(env, []obEnv{thenEnv, elseEnv}, []bool{thenTerm, elseTerm})
	case *ast.BlockStmt:
		return fa.walkStmts(s.List, env)
	case *ast.ForStmt:
		if s.Init != nil {
			fa.walkStmt(s.Init, env)
		}
		if s.Cond != nil {
			fa.scanExpr(s.Cond, env)
		}
		bodyEnv := env.clone()
		fa.walkStmts(s.Body.List, bodyEnv)
		if s.Post != nil {
			fa.walkStmt(s.Post, bodyEnv)
		}
		// The body may run zero times: merge it with the fall-through path.
		// (An infinite `for {}` that always returns still terminated inside.)
		mergeEnvs(env, []obEnv{bodyEnv, env.clone()}, []bool{false, false})
		return false
	case *ast.RangeStmt:
		fa.scanExpr(s.X, env)
		bodyEnv := env.clone()
		fa.walkStmts(s.Body.List, bodyEnv)
		mergeEnvs(env, []obEnv{bodyEnv, env.clone()}, []bool{false, false})
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			fa.walkStmt(s.Init, env)
		}
		if s.Tag != nil {
			fa.scanExpr(s.Tag, env)
		}
		return fa.walkCases(s.Body, env, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			fa.walkStmt(s.Init, env)
		}
		return fa.walkCases(s.Body, env, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		return fa.walkCases(s.Body, env, false)
	case *ast.DeferStmt:
		// defer v.End() discharges the obligation on every path that reaches
		// this statement (paths exiting earlier still count as open). The
		// deferred call itself runs at exit, so onOpenCall does not see it.
		for _, rid := range fa.releasedBy(s.Call) {
			if v, ok := fa.p.Info.Uses[rid].(*types.Var); ok {
				if st, tracked := env[v]; tracked {
					st.released = true
				}
			}
		}
		// defer helper(v) with an always-releasing helper discharges too;
		// conditional or never-releasing helpers keep the obligation open
		// and the consult records the callee chain.
		fa.consultCall(s.Call, env)
		for _, a := range s.Call.Args {
			fa.scanExpr(a, env)
		}
		return false
	case *ast.GoStmt:
		// go m.Join(lanes) / go sp.End(): an asynchronous release still
		// reaches the release method — count it.
		for _, rid := range fa.releasedBy(s.Call) {
			if v, ok := fa.p.Info.Uses[rid].(*types.Var); ok {
				if st, tracked := env[v]; tracked {
					st.released = true
				}
			}
		}
		for _, a := range s.Call.Args {
			fa.scanExpr(a, env)
		}
		if fa.mode == modeGoHandoff {
			fa.checkGoStmt(s, env)
		}
		return false
	case *ast.BranchStmt:
		// break/continue/goto leave the structured path; the loop merge
		// already assumes the body may not complete, so stop here without an
		// exit check (the function has not been left).
		return true
	case *ast.LabeledStmt:
		return fa.walkStmt(s.Stmt, env)
	case *ast.SendStmt:
		fa.scanExpr(s.Chan, env)
		fa.scanExpr(s.Value, env)
		return false
	case *ast.IncDecStmt:
		fa.scanExpr(s.X, env)
		return false
	case *ast.EmptyStmt:
		return false
	}
	return false
}

// walkCases simulates every case body of a switch/select from the incoming
// environment and merges the results. Without a default (or for selects with
// no always-taken arm) the incoming path itself joins the merge.
func (fa *flowAnalysis) walkCases(body *ast.BlockStmt, env obEnv, exhaustive bool) bool {
	var envs []obEnv
	var terms []bool
	for _, cl := range body.List {
		caseEnv := env.clone()
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				fa.scanExpr(e, caseEnv)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				fa.walkStmt(c.Comm, caseEnv)
			}
			stmts = c.Body
		}
		terms = append(terms, fa.walkStmts(stmts, caseEnv))
		envs = append(envs, caseEnv)
	}
	if !exhaustive {
		envs = append(envs, env.clone())
		terms = append(terms, false)
	}
	return mergeEnvs(env, envs, terms)
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// mergeEnvs folds branch environments back into env. An obligation counts as
// released only if every non-terminated branch released it; terminated
// branches already ran their own exit checks. Returns true when every branch
// terminated (nothing flows past the statement).
func mergeEnvs(env obEnv, branches []obEnv, terminated []bool) bool {
	live := 0
	for i := range branches {
		if !terminated[i] {
			live++
		}
	}
	if live == 0 {
		return true
	}
	// Collect every obligation seen in any live branch (they may have been
	// opened inside a branch).
	seen := map[*types.Var]*obligation{}
	for i, b := range branches {
		if terminated[i] {
			continue
		}
		for v, s := range b { //repolint:ordered merged set is rebuilt, order-independent
			seen[v] = s.ob
		}
	}
	for v, ob := range seen { //repolint:ordered merge is per-variable, order-independent
		// A branch that never acquired the obligation cannot leak it, so only
		// branches that hold it open count against the merge (this keeps an
		// acquire+release wholly inside a loop body from reading as open on
		// the zero-iteration path).
		releasedAll := true
		releasedAny := false
		stale := false
		for i, b := range branches {
			if terminated[i] {
				continue
			}
			if s, ok := b[v]; ok {
				if !s.released {
					releasedAll = false
				}
				if s.released || s.releasedAny {
					releasedAny = true
				}
				if s.errStale {
					stale = true
				}
			}
		}
		env[v] = &obState{ob: ob, released: releasedAll, releasedAny: releasedAny, errStale: stale}
	}
	return false
}

// staleErrGuards marks obligations whose error sibling is overwritten by this
// assignment: a later `err != nil` check then refers to a different failure
// and no longer exempts the obligation. (The acquiring assignment itself
// re-opens its obligations afterwards with a fresh state.)
func (fa *flowAnalysis) staleErrGuards(lhs []ast.Expr, env obEnv) {
	for _, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		w := fa.objectOf(id)
		if w == nil {
			continue
		}
		for _, s := range env { //repolint:ordered per-state flag update, order-independent
			if s.ob.errVar == w {
				s.errStale = true
			}
		}
	}
}

// nilCheckVar decodes a `x != nil` / `x == nil` condition over a plain
// identifier, returning the variable and whether the non-nil outcome selects
// the then-branch.
func (fa *flowAnalysis) nilCheckVar(cond ast.Expr) (*types.Var, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	var side ast.Expr
	switch {
	case fa.isNil(y):
		side = x
	case fa.isNil(x):
		side = y
	default:
		return nil, false
	}
	id, ok := side.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, _ := fa.p.Info.Uses[id].(*types.Var)
	return v, be.Op == token.NEQ
}

func (fa *flowAnalysis) isNil(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := fa.p.Info.Uses[id].(*types.Nil)
	return isNil
}

// openAssigned registers obligations created by an assignment on the current
// path (phase 1 found the same sites; here they gain a position in the walk).
func (fa *flowAnalysis) openAssigned(lhs, rhs []ast.Expr, env obEnv) {
	bind := func(target ast.Expr, ob *obligation) {
		id, ok := ast.Unparen(target).(*ast.Ident)
		if !ok {
			return
		}
		v := fa.objectOf(id)
		if v == nil {
			return
		}
		if tracked, ok := fa.tracked[v]; ok && tracked == ob {
			env[v] = &obState{ob: ob}
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		_, idxs, ok := fa.acquire(call)
		if !ok {
			return
		}
		for _, i := range idxs {
			if i < len(lhs) {
				if id, ok := ast.Unparen(lhs[i]).(*ast.Ident); ok {
					if v := fa.objectOf(id); v != nil {
						if ob, tracked := fa.tracked[v]; tracked {
							bind(lhs[i], ob)
						}
					}
				}
			}
		}
		return
	}
	for i, r := range rhs {
		if i >= len(lhs) {
			break
		}
		if call, _, ok := fa.acquireChainRoot(r); ok {
			if id, ok := ast.Unparen(lhs[i]).(*ast.Ident); ok {
				if v := fa.objectOf(id); v != nil {
					if ob, tracked := fa.tracked[v]; tracked && ob.pos == call.Pos() {
						bind(lhs[i], ob)
					}
				}
			}
		}
	}
}

// recordReturn (summary mode) marks result indices whose returned value
// carries an open obligation acquired inside this function: the function is
// a constructor and its callers inherit the obligation.
func (fa *flowAnalysis) recordReturn(s *ast.ReturnStmt, env obEnv) {
	if len(s.Results) == 1 {
		// A lone call expression forwards all of the callee's results.
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			if desc, idxs, ok := fa.acquire(call); ok {
				for _, k := range idxs {
					fa.sb.setFresh(k, desc)
				}
				return
			}
		}
	}
	for i, r := range s.Results {
		r = ast.Unparen(r)
		if id, ok := r.(*ast.Ident); ok {
			if v, ok := fa.p.Info.Uses[id].(*types.Var); ok {
				if st, tracked := env[v]; tracked && !st.released && st.ob.param < 0 {
					fa.sb.setFresh(i, st.ob.desc)
				}
			}
			continue
		}
		if call, ok := r.(*ast.CallExpr); ok {
			if desc, idxs, ok := fa.acquire(call); ok && len(idxs) == 1 && idxs[0] == 0 {
				fa.sb.setFresh(i, desc)
			}
		}
	}
}

// scanExpr processes one expression on the current path: applies releases
// and summary consults, then lets the analyzer observe remaining open calls.
// Nested function literals are opaque (analyzed separately).
func (fa *flowAnalysis) scanExpr(expr ast.Expr, env obEnv) {
	if expr == nil {
		return
	}
	inspectSkipFuncLit(expr, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		for _, id := range fa.releasedBy(call) {
			if v, ok := fa.p.Info.Uses[id].(*types.Var); ok {
				if s, tracked := env[v]; tracked {
					s.released = true
				}
			}
		}
		fa.consultCall(call, env)
		if fa.rules.onOpenCall != nil && fa.mode == modeAnalyze {
			var open []*obligation
			var vars []*types.Var
			for v, s := range env { //repolint:ordered sorted below before use
				if !s.released {
					vars = append(vars, v)
				}
			}
			sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
			for _, v := range vars {
				open = append(open, env[v].ob)
			}
			fa.rules.onOpenCall(fa.p, call, open)
		}
	})
}

// consultCall applies the callee's summary to tracked obligations passed as
// receiver or arguments: an always-releasing callee discharges them, a
// conditionally- or never-releasing callee records the callee chain for the
// eventual leak diagnostic.
func (fa *flowAnalysis) consultCall(call *ast.CallExpr, env obEnv) {
	if fa.sums == nil {
		return
	}
	f := calleeFunc(fa.p.Info, call)
	if f == nil {
		return
	}
	sum := fa.sums[f.FullName()]
	if sum == nil {
		return
	}
	if fa.isReleaseArgCall(call) {
		return
	}
	if fa.rules.keepArg != nil && fa.rules.keepArg(fa.p, call) {
		return
	}
	if fa.p.Directive(call.Pos(), "owner") {
		return
	}
	// Receiver position: a module method that closes (or conditionally
	// closes) its own receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(sum.Params) > 0 {
		if sig := funcSignature(f); sig != nil && sig.Recv() != nil {
			if root := chainRootIdent(sel.X); root != nil {
				if v, ok := fa.p.Info.Uses[root].(*types.Var); ok {
					if s, tracked := env[v]; tracked && !s.released {
						fa.applyParamSummary(f, sum.Params[0], s, true)
					}
				}
			}
		}
	}
	for k, a := range call.Args {
		id, ok := ast.Unparen(a).(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := fa.p.Info.Uses[id].(*types.Var)
		if !ok {
			continue
		}
		s, tracked := env[v]
		if !tracked || s.released {
			continue
		}
		pidx := summaryParamIndex(f, sum, k)
		if pidx < 0 {
			continue
		}
		fa.applyParamSummary(f, sum.Params[pidx], s, false)
	}
}

// applyParamSummary acts on one (obligation, callee parameter) pairing.
func (fa *flowAnalysis) applyParamSummary(callee *types.Func, ps ParamSummary, s *obState, recvPos bool) {
	if !ps.Tracked || ps.Escapes || ps.Goroutine {
		return
	}
	switch ps.Status {
	case relAlways:
		s.released = true
		fa.countCross()
	case relCond:
		s.releasedAny = true
		fa.recordChain(callee, ps, s, relCond)
	case relNever:
		if recvPos {
			return // ordinary method use, not a hand-off attempt
		}
		fa.recordChain(callee, ps, s, relNever)
	}
}

// recordChain attaches the callee chain to the obligation (analyze and
// gohandoff modes) or to the summary accumulator (summary mode).
func (fa *flowAnalysis) recordChain(callee *types.Func, ps ParamSummary, s *obState, rel relStatus) {
	chain := buildChain(fa.selfName(), callee, ps.Chain)
	if fa.mode == modeSummary {
		if acc := fa.sb.params[s.ob.v]; acc != nil && acc.chain == nil {
			acc.chain = chain
		}
		return
	}
	if s.ob.chain == nil {
		s.ob.chain = chain
		s.ob.chainRel = rel
	}
	fa.countCross()
}

// selfName is the function under summarization, for chain self-skips.
func (fa *flowAnalysis) selfName() string {
	if fa.sb != nil && fa.sb.self != nil {
		return shortFuncName(fa.sb.self)
	}
	return ""
}

// countCross bumps the module's cross-function obligation counter (the
// verify.sh coverage stat); only the analyzers' primary walk counts.
func (fa *flowAnalysis) countCross() {
	if fa.mode == modeAnalyze && fa.idx != nil {
		fa.idx.crossFunc++
	}
}

// ---- goroutine hand-off check (modeGoHandoff) ---------------------------

// checkGoStmt decides, for every open obligation the `go` statement hands to
// its goroutine, whether the goroutine releases it on all paths (a proper
// hand-off: the parent's obligation is discharged) or not (the obligation
// stays open and the leak reports at the `go` statement if the parent never
// releases it either — the borrow-without-return shape).
func (fa *flowAnalysis) checkGoStmt(g *ast.GoStmt, env obEnv) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		// Obligations captured by the literal's body.
		captured := map[*types.Var]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := fa.p.Info.Uses[id].(*types.Var); ok {
					if s, tracked := env[v]; tracked && !s.released {
						captured[v] = true
					}
				}
			}
			return true
		})
		var vars []*types.Var
		for v := range captured { //repolint:ordered sorted below
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
		for _, v := range vars {
			s := env[v]
			if fa.goroutineReleases(lit.Body, v, s.ob) {
				s.released = true
			} else {
				fa.markGoCapture(s, g)
			}
		}
		// Obligations passed as arguments become the literal's parameters.
		for k, a := range g.Call.Args {
			id, ok := ast.Unparen(a).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := fa.p.Info.Uses[id].(*types.Var)
			if !ok {
				continue
			}
			s, tracked := env[v]
			if !tracked || s.released {
				continue
			}
			pv := litParamVar(fa.p, lit, k)
			if pv == nil {
				s.released = true // unanalyzable: permissive hand-off
				continue
			}
			if fa.goroutineReleases(lit.Body, pv, s.ob) {
				s.released = true
			} else {
				fa.markGoCapture(s, g)
			}
		}
		return
	}
	// go helper(v) / go v.Method(): consult the callee summary.
	f := calleeFunc(fa.p.Info, g.Call)
	var sum *FuncSummary
	if f != nil && fa.sums != nil {
		sum = fa.sums[f.FullName()]
	}
	if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		if root := chainRootIdent(sel.X); root != nil {
			if v, ok := fa.p.Info.Uses[root].(*types.Var); ok {
				if s, tracked := env[v]; tracked && !s.released {
					fa.goConsult(f, sum, 0, s, g)
				}
			}
		}
	}
	for k, a := range g.Call.Args {
		id, ok := ast.Unparen(a).(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := fa.p.Info.Uses[id].(*types.Var)
		if !ok {
			continue
		}
		s, tracked := env[v]
		if !tracked || s.released {
			continue
		}
		pidx := -1
		if f != nil && sum != nil {
			pidx = summaryParamIndex(f, sum, k)
		}
		if pidx < 0 {
			s.released = true // no summary: permissive hand-off
			continue
		}
		fa.goConsult(f, sum, pidx, s, g)
	}
}

// goConsult resolves one obligation handed to a goroutine-launched call
// against the callee's summary.
func (fa *flowAnalysis) goConsult(f *types.Func, sum *FuncSummary, pidx int, s *obState, g *ast.GoStmt) {
	if sum == nil || pidx >= len(sum.Params) {
		s.released = true // no summary: permissive hand-off
		return
	}
	ps := sum.Params[pidx]
	if !ps.Tracked || ps.Escapes || ps.Goroutine {
		s.released = true // beyond the summary's sight: permissive hand-off
		return
	}
	if ps.Status == relAlways {
		s.released = true
		return
	}
	if s.ob.chain == nil && f != nil {
		s.ob.chain = buildChain("", f, ps.Chain)
		s.ob.chainRel = ps.Status
	}
	fa.markGoCapture(s, g)
}

// markGoCapture records the capturing `go` statement on the obligation; the
// leak reports there if neither the goroutine nor the parent releases it.
func (fa *flowAnalysis) markGoCapture(s *obState, g *ast.GoStmt) {
	if fa.p.Directive(g.Pos(), "owner") {
		s.released = true
		return
	}
	if s.ob.goPos == token.NoPos {
		s.ob.goPos = g.Pos()
	}
}

// goroutineReleases reports whether the goroutine body releases the
// obligation rooted at v on every path. Escapes inside the goroutine are
// read permissively (the goroutine handed it on), so false means the body
// visibly keeps the value and still fails to release it.
func (fa *flowAnalysis) goroutineReleases(body *ast.BlockStmt, v *types.Var, ob *obligation) bool {
	child := &flowAnalysis{
		p:        fa.p,
		rules:    fa.rules,
		body:     body,
		tracked:  map[*types.Var]*obligation{v: {v: v, pos: ob.pos, desc: ob.desc, param: -1}},
		reported: map[*types.Var]bool{},
		mode:     modeGoCheck,
		idx:      fa.idx,
		sums:     fa.sums,
	}
	child.dropEscapes()
	if len(child.tracked) == 0 {
		return true // escaped inside the goroutine: permissive hand-off
	}
	env := obEnv{v: &obState{ob: child.tracked[v]}}
	if !child.walkStmts(body.List, env) {
		child.checkExit(env, body.Rbrace)
	}
	return !child.goFail
}

// litParamVar resolves the k-th parameter variable of a function literal.
func litParamVar(p *Pass, lit *ast.FuncLit, k int) *types.Var {
	if lit.Type.Params == nil {
		return nil
	}
	i := 0
	for _, field := range lit.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if i == k {
				v, _ := p.Info.Defs[name].(*types.Var)
				return v
			}
			i++
		}
	}
	return nil
}

// releasedBy returns the identifiers whose obligations the call discharges:
// the receiver-chain root for releaseRecv methods, the first argument for
// releaseArg methods.
func (fa *flowAnalysis) releasedBy(call *ast.CallExpr) []*ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var out []*ast.Ident
	if fa.rules.releaseRecv[sel.Sel.Name] && fa.validRelease(call) {
		if root := chainRootIdent(sel.X); root != nil {
			out = append(out, root)
		}
	}
	if fa.rules.releaseArg != nil && fa.rules.releaseArg[sel.Sel.Name] &&
		fa.validRelease(call) && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			out = append(out, id)
		}
	}
	return out
}

// chainRootIdent walks a method-call chain (sp.SetRows(1).Attr("k", 2)) down
// to the identifier it is rooted at, or nil for non-chain receivers.
func chainRootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.CallExpr:
			sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			expr = sel.X
		default:
			return nil
		}
	}
}

// checkExit resolves every obligation still open when a path leaves the
// function: analyze mode reports leaks at the acquire site, summary mode
// records the exit outcome per parameter, gohandoff mode reports goroutine
// captures at the `go` statement, and the goroutine sub-check just flags the
// open path.
func (fa *flowAnalysis) checkExit(env obEnv, exit token.Pos) {
	switch fa.mode {
	case modeSummary:
		for v, acc := range fa.sb.params { //repolint:ordered per-param counters, order-independent
			s, ok := env[v]
			if !ok {
				continue // escaped before the walk; the escape bits tell the story
			}
			switch {
			case s.released:
				acc.rel++
			case s.releasedAny:
				acc.cond++
			default:
				acc.open++
			}
		}
		return
	case modeGoCheck:
		for _, s := range env { //repolint:ordered single-obligation env
			if !s.released {
				fa.goFail = true
			}
		}
		return
	}
	var vars []*types.Var
	for v, s := range env { //repolint:ordered sorted below before reporting
		if s.released || fa.reported[v] {
			continue
		}
		if fa.mode == modeGoHandoff && s.ob.goPos == token.NoPos {
			continue // base-analyzer territory, not a goroutine capture
		}
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		fa.reported[v] = true
		ob := env[v].ob
		var pos token.Pos
		var msg string
		if fa.mode == modeGoHandoff {
			pos = ob.goPos
			msg = fmt.Sprintf("%s %q is captured by a goroutine but not %s inside it on every path (acquired at line %d)",
				ob.desc, v.Name(), fa.rules.leakVerb, fa.p.Fset.Position(ob.pos).Line)
		} else {
			pos = ob.pos
			msg = fmt.Sprintf("%s %q is not %s on every path: function exit at line %d",
				ob.desc, v.Name(), fa.rules.leakVerb, fa.p.Fset.Position(exit).Line)
		}
		if len(ob.chain) > 0 {
			verb := "never releases it"
			if ob.chainRel == relCond {
				verb = "releases it only on some paths"
			}
			msg += fmt.Sprintf(" (passed to %s, which %s)", strings.Join(ob.chain, " -> "), verb)
		}
		fa.p.report(pos, ob.chain, "%s", msg)
	}
}

// isPanicCall reports whether the expression statement unconditionally stops
// the function: panic(...), os.Exit(...), log.Fatal*(...).
func isPanicCall(p *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if f := calleeFunc(p.Info, call); f != nil && f.Pkg() != nil {
			switch f.Pkg().Path() {
			case "os":
				return f.Name() == "Exit"
			case "log":
				return f.Name() == "Fatal" || f.Name() == "Fatalf" || f.Name() == "Fatalln"
			}
		}
	}
	return false
}

// inspectSkipFuncLit walks the AST under root, skipping nested function
// literals (each is analyzed as its own function).
func inspectSkipFuncLit(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
