package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// NoreentrancyAnalyzer enforces sim.ChargeObserver's purity contract:
// observers run inside Meter.Charge, after the clock and counter update, and
// must never charge a meter themselves — directly or through helpers — or
// attaching observability would perturb the simulated result (and recurse).
// The check walks the package-local static call graph from every
// ObserveCharge method and flags any reachable Meter.Charge or Meter.Advance.
var NoreentrancyAnalyzer = &Analyzer{
	Name: "noreentrancy",
	Doc:  "no Meter.Charge/Advance inside a ChargeObserver callback chain",
	Run:  runNoreentrancy,
}

func runNoreentrancy(p *Pass) {
	// Package-local function bodies, keyed by their object.
	bodies := map[*types.Func]*ast.FuncDecl{}
	var observers []*types.Func
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			bodies[obj] = fd
			if fd.Name.Name == "ObserveCharge" && fd.Recv != nil {
				observers = append(observers, obj)
			}
		}
	}
	sort.Slice(observers, func(i, j int) bool { return observers[i].Pos() < observers[j].Pos() })

	for _, root := range observers {
		// BFS over package-local static calls (closures included: a closure
		// declared in the chain runs, or may run, as part of it).
		visited := map[*types.Func]bool{root: true}
		queue := []*types.Func{root}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			fd := bodies[fn]
			if fd == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p.Info, call)
				if callee == nil {
					return true
				}
				if pkgBase(callee.Pkg()) == "sim" &&
					(callee.Name() == "Charge" || callee.Name() == "Advance") &&
					funcSignature(callee).Recv() != nil {
					p.Reportf(call.Pos(),
						"sim.Meter.%s inside a ChargeObserver callback chain (reachable from %s); observers must be pure readers",
						callee.Name(), methodLabel(root))
					return true
				}
				if callee.Pkg() == p.Pkg && !visited[callee] {
					visited[callee] = true
					queue = append(queue, callee)
				}
				return true
			})
		}
	}
}

// methodLabel renders a method for diagnostics: (*ProcMetrics).ObserveCharge.
func methodLabel(f *types.Func) string {
	sig := funcSignature(f)
	if recv := sig.Recv(); recv != nil {
		return "(" + types.TypeString(recv.Type(), types.RelativeTo(f.Pkg())) + ")." + f.Name()
	}
	return f.Name()
}
