// Package analysis is repolint's self-contained static-analysis toolkit: a
// miniature go/analysis built only on the standard library's go/ast,
// go/types, go/parser and go/importer (the module deliberately has no
// third-party dependencies, so golang.org/x/tools is not available).
//
// The suite mechanically enforces the invariants that keep this repository's
// runs byte-deterministic — the property every reproduced figure depends on.
// PR 3 fixed three hand-found bugs (a leaked scan span, leaked staging
// writers, a zero budget slice) that belong to mechanically detectable
// classes; these analyzers make those classes impossible to reintroduce
// unnoticed:
//
//   - determinism:  no wall-clock time, no global math/rand, no map-order
//     dependence in non-test code
//   - spanend:      every obs span reaches End on all paths
//   - forkjoin:     every sim.Meter.Fork / obs.Tracer.ForkLanes is paired
//     with Join / JoinLanes on all paths, and the parent is never charged
//     (or traced) between fork and join
//   - closer:       resources with Close/Finish/Abort obligations are
//     released on all paths
//   - noreentrancy: no Meter.Charge from inside a ChargeObserver callback
//     chain
//
// A justified exception is annotated with a directive comment on the
// flagged line or the line above:
//
//	//repolint:<analyzer> <reason>   suppresses that analyzer's diagnostic
//	//repolint:ordered <reason>      marks a map iteration order-independent
//	                                 (determinism's domain-specific form)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check that runs over a type-checked package.
type Analyzer struct {
	Name string // short lowercase identifier, used in output and directives
	Doc  string // one-line description of the guarded invariant
	Run  func(*Pass)
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package through one analyzer and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Module is the module path of the package under analysis ("" outside a
	// module). Analyzers use it to scope rules to first-party types.
	Module string

	pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //repolint:<analyzer>
// directive on the same line (or the line above) justifies the site.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Directive(pos, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive reports whether a //repolint:<name> comment annotates the line of
// pos or the line immediately above it.
func (p *Pass) Directive(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	for _, d := range p.pkg.directives[position.Filename] {
		if d.name == name && (d.line == position.Line || d.line == position.Line-1) {
			return true
		}
	}
	return false
}

// directive is one parsed //repolint:<name> comment.
type directive struct {
	line int
	name string
}

// parseDirectives extracts //repolint: comments from a parsed file.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//repolint:")
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(text, " ")
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			out = append(out, directive{line: fset.Position(c.Pos()).Line, name: name})
		}
	}
	return out
}

// Analyzers returns the full repolint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		SpanendAnalyzer,
		ForkjoinAnalyzer,
		CloserAnalyzer,
		NoreentrancyAnalyzer,
	}
}

// Run loads the packages matching patterns (relative to dir) and applies
// every analyzer, returning the surviving diagnostics sorted by position.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers), nil
}

// RunPackages applies every analyzer to every already-loaded package.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   pkg.Module,
				pkg:      pkg,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// pkgBase returns the last element of a package path ("repro/internal/obs"
// -> "obs"), the key analyzers match stub and real packages with.
func pkgBase(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	p := pkg.Path()
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// namedOrPtr unwraps a pointer type and returns the named type beneath it.
func namedOrPtr(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// calleeFunc resolves the *types.Func a call statically invokes (method or
// package-level function), or nil for builtins, conversions and indirect
// calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcSignature returns a function object's signature. (types.Func.Signature
// needs go1.23; the module language version is 1.22.)
func funcSignature(f *types.Func) *types.Signature {
	sig, _ := f.Type().(*types.Signature)
	return sig
}

// recvExprString renders a method call's receiver expression ("m.meter") for
// structural identity comparisons, or "" when the call has no receiver.
func recvExprString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return types.ExprString(sel.X)
}
