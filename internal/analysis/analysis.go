// Package analysis is repolint's self-contained static-analysis toolkit: a
// miniature go/analysis built only on the standard library's go/ast,
// go/types, go/parser and go/importer (the module deliberately has no
// third-party dependencies, so golang.org/x/tools is not available).
//
// The suite mechanically enforces the invariants that keep this repository's
// runs byte-deterministic — the property every reproduced figure depends on.
// PR 3 fixed three hand-found bugs (a leaked scan span, leaked staging
// writers, a zero budget slice) that belong to mechanically detectable
// classes; these analyzers make those classes impossible to reintroduce
// unnoticed:
//
//   - determinism:  no wall-clock time, no global math/rand, no map-order
//     dependence in non-test code
//   - spanend:      every obs span reaches End on all paths
//   - forkjoin:     every sim.Meter.Fork / obs.Tracer.ForkLanes is paired
//     with Join / JoinLanes on all paths, and the parent is never charged
//     (or traced) between fork and join
//   - closer:       resources with Close/Finish/Abort obligations are
//     released on all paths
//   - noreentrancy: no Meter.Charge from inside a ChargeObserver callback
//     chain
//   - gohandoff:    obligations captured by `go` statements are released
//     inside the goroutine on all paths
//
// The obligation analyzers are interprocedural within the module: a
// fixed-point summary pass (summary.go) computes, per function, which
// parameters' obligations it always / conditionally / never releases and
// which results carry fresh obligations, and the engine consults those
// summaries at call sites instead of treating every call as an ownership
// hand-off. An intentional ownership transfer the summaries cannot see is
// annotated //repolint:owner with a justification.
//
// A justified exception is annotated with a directive comment on the
// flagged line or the line above:
//
//	//repolint:<analyzer> <reason>   suppresses that analyzer's diagnostic
//	//repolint:ordered <reason>      marks a map iteration order-independent
//	                                 (determinism's domain-specific form)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named check that runs over a type-checked package.
type Analyzer struct {
	Name string // short lowercase identifier, used in output and directives
	Doc  string // one-line description of the guarded invariant
	Run  func(*Pass)
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string

	// Chain is the callee chain for interprocedural findings (outermost
	// callee first), empty for local ones. The chain is already rendered
	// into Message; it is carried separately for structured (-json) output.
	Chain []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package through one analyzer and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Module is the module path of the package under analysis ("" outside a
	// module). Analyzers use it to scope rules to first-party types.
	Module string

	pkg   *Package
	diags *[]Diagnostic

	// index is the whole-module function index the obligation analyzers
	// consult for interprocedural summaries; nil when running without one
	// (unit tests over a single synthetic pass).
	index *ModuleIndex
}

// Reportf records a diagnostic at pos unless a //repolint:<analyzer>
// directive on the same line (or the line above) justifies the site.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// report is Reportf carrying a callee chain for structured output.
func (p *Pass) report(pos token.Pos, chain []string, format string, args ...any) {
	if p.Directive(pos, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Directive reports whether a //repolint:<name> comment annotates the line of
// pos or the line immediately above it.
func (p *Pass) Directive(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	for _, d := range p.pkg.directives[position.Filename] {
		if d.name == name && (d.line == position.Line || d.line == position.Line-1) {
			return true
		}
	}
	return false
}

// directive is one parsed //repolint:<name> comment.
type directive struct {
	line int
	name string
}

// parseDirectives extracts //repolint: comments from a parsed file.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//repolint:")
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(text, " ")
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			out = append(out, directive{line: fset.Position(c.Pos()).Line, name: name})
		}
	}
	return out
}

// Analyzers returns the full repolint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		SpanendAnalyzer,
		ForkjoinAnalyzer,
		CloserAnalyzer,
		NoreentrancyAnalyzer,
		GohandoffAnalyzer,
	}
}

// Timing is one phase's wall-clock cost in a suite run.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// SuiteResult is the outcome of RunSuite: the sorted findings plus the
// wall-time and coverage figures cmd/repolint and verify.sh report.
type SuiteResult struct {
	Diags   []Diagnostic
	Timings []Timing    // "(summaries)" first, then one entry per analyzer
	Stats   ModuleStats // module summary coverage
}

// Run loads the packages matching patterns (relative to dir) and applies
// every analyzer, returning the surviving diagnostics sorted by position.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	res, err := RunSuite(dir, analyzers, patterns...)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunSuite is Run with per-phase wall times and module coverage statistics.
func RunSuite(dir string, analyzers []*Analyzer, patterns ...string) (*SuiteResult, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	res := &SuiteResult{}

	// Build the module index and force the summary fixed points up front so
	// their cost is attributed to one "(summaries)" phase instead of the
	// first analyzer that happens to trigger them.
	start := time.Now() //repolint:determinism wall-time measurement of the linter itself, never in output ordering
	idx := NewModuleIndex(pkgs)
	for _, rules := range obligationRuleSets() {
		idx.summaries(rules)
	}
	res.Timings = append(res.Timings, Timing{Name: "(summaries)", Elapsed: time.Since(start)}) //repolint:determinism wall-time measurement of the linter itself

	for _, a := range analyzers {
		start := time.Now() //repolint:determinism wall-time measurement of the linter itself
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   pkg.Module,
				pkg:      pkg,
				diags:    &res.Diags,
				index:    idx,
			}
			a.Run(pass)
		}
		res.Timings = append(res.Timings, Timing{Name: a.Name, Elapsed: time.Since(start)}) //repolint:determinism wall-time measurement of the linter itself
	}
	sortDiags(res.Diags)
	res.Stats = idx.Stats()
	return res, nil
}

// RunPackages applies every analyzer to every already-loaded package, with
// a shared module index for interprocedural summaries.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	idx := NewModuleIndex(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   pkg.Module,
				pkg:      pkg,
				diags:    &diags,
				index:    idx,
			}
			a.Run(pass)
		}
	}
	sortDiags(diags)
	return diags
}

// obligationRuleSets lists the rule sets that have summary tables, in the
// order their fixed points are computed.
func obligationRuleSets() []*obRules {
	return []*obRules{spanendRules(), forkjoinRules(), closerRules()}
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// pkgBase returns the last element of a package path ("repro/internal/obs"
// -> "obs"), the key analyzers match stub and real packages with.
func pkgBase(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	p := pkg.Path()
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// namedOrPtr unwraps a pointer type and returns the named type beneath it.
func namedOrPtr(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// calleeFunc resolves the *types.Func a call statically invokes (method or
// package-level function), or nil for builtins, conversions and indirect
// calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcSignature returns a function object's signature. (types.Func.Signature
// needs go1.23; the module language version is 1.22.)
func funcSignature(f *types.Func) *types.Signature {
	sig, _ := f.Type().(*types.Signature)
	return sig
}

// recvExprString renders a method call's receiver expression ("m.meter") for
// structural identity comparisons, or "" when the call has no receiver.
func recvExprString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return types.ExprString(sel.X)
}
