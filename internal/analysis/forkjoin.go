package analysis

import (
	"go/ast"
	"go/types"
)

// ForkjoinAnalyzer enforces the parallel cost model's barrier discipline:
// every sim.Meter.Fork must be paired with Join on all paths, every
// obs.Tracer.ForkLanes with JoinLanes, and between a fork and its join the
// parent must stay untouched — no Charge or Advance on the forked meter, no
// Start on the forked tracer. Violating either breaks the determinism
// argument: lane work is only conserved if it folds back through the barrier,
// and a parent charge between fork and join would interleave serial and
// parallel virtual time nondeterministically.
//
// Lane slices handed to module helpers are followed through the function
// summaries: a helper that always Joins them discharges the obligation, one
// that never (or only sometimes) does keeps the leak at the forking function
// with the callee chain.
var ForkjoinAnalyzer = &Analyzer{
	Name: "forkjoin",
	Doc:  "sim.Meter.Fork/obs.Tracer.ForkLanes must pair with Join/JoinLanes; no parent Charge between fork and join",
	Run:  runForkjoin,
}

func runForkjoin(p *Pass) {
	runObligations(p, forkjoinRules())
}

// forkjoinRules is the forkjoin obligation rule set, shared with the summary
// layer and the gohandoff analyzer.
func forkjoinRules() *obRules {
	return &obRules{
		name:        "forkjoin",
		leakVerb:    "Joined back",
		releaseArg:  map[string]bool{"Join": true, "JoinLanes": true},
		releaseRecv: map[string]bool{}, // joins go through the parent, never the lanes
		acquire: func(p *Pass, call *ast.CallExpr) (string, []int, bool) {
			f := calleeFunc(p.Info, call)
			if f == nil {
				return "", nil, false
			}
			switch {
			case f.Name() == "Fork" && pkgBase(f.Pkg()) == "sim":
				return "forked lane meters", []int{0}, true
			case f.Name() == "ForkLanes" && pkgBase(f.Pkg()) == "obs":
				return "forked lane tracers", []int{0}, true
			}
			return "", nil, false
		},
		paramType: func(p *Pass, t types.Type) (string, bool) {
			sl, ok := t.(*types.Slice)
			if !ok {
				return "", false
			}
			n := namedOrPtr(sl.Elem())
			if n == nil {
				return "", false
			}
			switch {
			case n.Obj().Name() == "Meter" && pkgBase(n.Obj().Pkg()) == "sim":
				return "forked lane meters", true
			case n.Obj().Name() == "Tracer" && pkgBase(n.Obj().Pkg()) == "obs":
				return "forked lane tracers", true
			}
			return "", false
		},
		validRelease: func(p *Pass, call *ast.CallExpr) bool {
			f := calleeFunc(p.Info, call)
			if f == nil {
				return false
			}
			base := pkgBase(f.Pkg())
			return base == "sim" || base == "obs"
		},
		// Handing the lane meters to ForkLanes (to clock the lane tracers) or
		// to len/cap reads them without taking over the Join obligation.
		keepArg: func(p *Pass, call *ast.CallExpr) bool {
			f := calleeFunc(p.Info, call)
			return f != nil && f.Name() == "ForkLanes" && pkgBase(f.Pkg()) == "obs"
		},
		onOpenCall: checkParentTouch,
	}
}

// checkParentTouch flags parent-meter charges (and parent-tracer span starts)
// issued while a fork is open on the same receiver expression.
func checkParentTouch(p *Pass, call *ast.CallExpr, open []*obligation) {
	if len(open) == 0 {
		return
	}
	f := calleeFunc(p.Info, call)
	if f == nil {
		return
	}
	var verb string
	switch {
	case pkgBase(f.Pkg()) == "sim" && (f.Name() == "Charge" || f.Name() == "Advance"):
		verb = "charged"
	case pkgBase(f.Pkg()) == "obs" && f.Name() == "Start":
		verb = "recorded to"
	default:
		return
	}
	recv := recvExprString(call)
	if recv == "" {
		return
	}
	for _, ob := range open {
		if ob.recv == recv {
			p.Reportf(call.Pos(), "parent %q is %s between Fork and Join (forked at line %d)",
				recv, verb, p.Fset.Position(ob.pos).Line)
			return
		}
	}
}
