package analysis

import (
	"go/ast"
	"go/types"
)

// SpanendAnalyzer enforces the span lifecycle contract of internal/obs: every
// span returned by Tracer.Start must reach End (or EndAt) on every path out
// of the acquiring function, including error returns. PR 3 fixed exactly this
// class by hand — the batch scan span leaked when the scan errored — and the
// next parallel fan-out must not be able to reintroduce it.
//
// The check is interprocedural within the module: passing a span to an
// always-Ending helper discharges it, a helper that never (or only
// conditionally) Ends it keeps the leak attributed to the acquirer with the
// callee chain, and functions returning spans they started are themselves
// acquire sites in their callers. Transfers the summaries cannot see
// (struct fields, closures, indirect calls) remain permissive.
var SpanendAnalyzer = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans must reach End() on all paths, including error returns",
	Run:  runSpanend,
}

func runSpanend(p *Pass) {
	runObligations(p, spanendRules())
}

// spanendRules is the spanend obligation rule set, shared with the summary
// layer and the gohandoff analyzer.
func spanendRules() *obRules {
	return &obRules{
		name:        "spanend",
		leakVerb:    "Ended",
		releaseRecv: map[string]bool{"End": true, "EndAt": true},
		acquire: func(p *Pass, call *ast.CallExpr) (string, []int, bool) {
			f := calleeFunc(p.Info, call)
			if f == nil || f.Name() != "Start" || pkgBase(f.Pkg()) != "obs" {
				return "", nil, false
			}
			if sig := funcSignature(f); sig.Results().Len() != 1 || namedOrPtr(sig.Results().At(0).Type()) == nil {
				return "", nil, false
			}
			return "obs span", []int{0}, true
		},
		paramType: func(p *Pass, t types.Type) (string, bool) {
			n := namedOrPtr(t)
			if n == nil || n.Obj().Name() != "Span" || pkgBase(n.Obj().Pkg()) != "obs" {
				return "", false
			}
			return "obs span", true
		},
		validRelease: func(p *Pass, call *ast.CallExpr) bool {
			f := calleeFunc(p.Info, call)
			return f != nil && pkgBase(f.Pkg()) == "obs"
		},
	}
}
