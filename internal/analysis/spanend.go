package analysis

import (
	"go/ast"
)

// SpanendAnalyzer enforces the span lifecycle contract of internal/obs: every
// span returned by Tracer.Start must reach End (or EndAt) on every path out
// of the acquiring function, including error returns. PR 3 fixed exactly this
// class by hand — the batch scan span leaked when the scan errored — and the
// next parallel fan-out must not be able to reintroduce it.
//
// Ownership transfers (spans stored in a struct such as a cursor, passed to
// another function, captured by a deferred closure) are respected: the
// obligation follows the value out and is checked wherever End is ultimately
// called from.
var SpanendAnalyzer = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans must reach End() on all paths, including error returns",
	Run:  runSpanend,
}

func runSpanend(p *Pass) {
	rules := &obRules{
		leakVerb:    "Ended",
		releaseRecv: map[string]bool{"End": true, "EndAt": true},
		acquire: func(p *Pass, call *ast.CallExpr) (string, []int, bool) {
			f := calleeFunc(p.Info, call)
			if f == nil || f.Name() != "Start" || pkgBase(f.Pkg()) != "obs" {
				return "", nil, false
			}
			if sig := funcSignature(f); sig.Results().Len() != 1 || namedOrPtr(sig.Results().At(0).Type()) == nil {
				return "", nil, false
			}
			return "obs span", []int{0}, true
		},
		validRelease: func(p *Pass, call *ast.CallExpr) bool {
			f := calleeFunc(p.Info, call)
			return f != nil && pkgBase(f.Pkg()) == "obs"
		},
	}
	runObligations(p, rules)
}
