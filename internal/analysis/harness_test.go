package analysis

// The analysistest-style harness: the lintdata module under testdata/ is
// loaded once, the full suite runs over it, and every `// want `+"`regex`"+``
// comment must be matched by exactly the diagnostics the analyzers emit — no
// missing findings, no extras. The Ok*/Fixed*/Good*/Free* functions are the
// passing cases and must stay diagnostic-free.

import (
	"go/ast"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	lintOnce  sync.Once
	lintPkgs  []*Package
	lintDiags []Diagnostic
	lintErr   error
)

// loadLintdata loads and analyzes the testdata module once per test binary.
func loadLintdata(t *testing.T) ([]*Package, []Diagnostic) {
	t.Helper()
	lintOnce.Do(func() {
		lintPkgs, lintErr = Load("testdata", "./...")
		if lintErr == nil {
			lintDiags = RunPackages(lintPkgs, Analyzers())
		}
	})
	if lintErr != nil {
		t.Fatalf("load testdata module: %v", lintErr)
	}
	return lintPkgs, lintDiags
}

// wantAt is one expectation parsed from a `// want` comment.
type wantAt struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRx = regexp.MustCompile("// want `([^`]+)`")

func collectWants(t *testing.T, pkgs []*Package) []*wantAt {
	t.Helper()
	var wants []*wantAt
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRx.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &wantAt{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// TestTestdataDiagnostics checks the exact correspondence between want
// comments and emitted diagnostics, in both directions.
func TestTestdataDiagnostics(t *testing.T) {
	pkgs, diags := loadLintdata(t)
	wants := collectWants(t, pkgs)
	if len(wants) == 0 {
		t.Fatal("no want comments found in testdata")
	}

	matchedWant := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matchedWant[i] = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matchedWant[i] {
			t.Errorf("missing diagnostic: %s:%d wants %q", w.file, w.line, w.re)
		}
	}
}

// TestAnalyzerCoverage asserts every analyzer catches at least two distinct
// failing cases in its testdata.
func TestAnalyzerCoverage(t *testing.T) {
	_, diags := loadLintdata(t)
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	for _, a := range Analyzers() {
		if byAnalyzer[a.Name] < 2 {
			t.Errorf("analyzer %s caught %d testdata cases, want >= 2", a.Name, byAnalyzer[a.Name])
		}
	}
}

// TestPassingCases asserts the Ok*/Fixed*/Good*/Free* functions stay clean,
// and that every case package ships at least one.
func TestPassingCases(t *testing.T) {
	pkgs, diags := loadLintdata(t)
	passing := map[string]int{} // package base -> count of passing functions
	for _, pkg := range pkgs {
		base := pkgBase(pkg.Types)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				name := fd.Name.Name
				if !strings.HasPrefix(name, "Ok") && !strings.HasPrefix(name, "Fixed") &&
					!strings.HasPrefix(name, "Good") && !strings.HasPrefix(name, "Free") {
					continue
				}
				passing[base]++
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				for _, d := range diags {
					if d.Pos.Filename == start.Filename && d.Pos.Line >= start.Line && d.Pos.Line <= end.Line {
						t.Errorf("passing case %s.%s has a diagnostic: %s", base, name, d)
					}
				}
			}
		}
	}
	for _, base := range []string{"determinism", "spanend", "forkjoin", "closer", "noreentrancy", "pr3scan", "pr3staging", "skewstats", "coldict", "profsnap", "servewire", "interproc", "gohandoff", "scorecat"} {
		if passing[base] == 0 {
			t.Errorf("case package %s has no passing (Ok*/Fixed*/Good*/Free*) function", base)
		}
	}
}

// TestPR3ScanShapeCaught is the white-box regression for PR 3's hand-found
// scan bugs: the leaked batch-scan span must trip spanend, and the un-Joined
// parallel fan-out must trip forkjoin, on the reconstructed code shapes.
func TestPR3ScanShapeCaught(t *testing.T) {
	_, diags := loadLintdata(t)
	counts := map[string]int{}
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "pr3scan") {
			counts[d.Analyzer]++
		}
	}
	if counts["spanend"] < 1 {
		t.Errorf("spanend missed the PR 3 leaked-scan-span shape (got %d diagnostics)", counts["spanend"])
	}
	if counts["forkjoin"] < 2 {
		t.Errorf("forkjoin missed the PR 3 un-Joined fan-out shape (got %d diagnostics, want 2: meter lanes and tracer lanes)", counts["forkjoin"])
	}
}

// TestPR3StagingShapeCaught is the white-box regression for PR 3's leaked
// staging writer: the mid-batch failure return must trip closer.
func TestPR3StagingShapeCaught(t *testing.T) {
	_, diags := loadLintdata(t)
	n := 0
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "pr3staging") && d.Analyzer == "closer" {
			n++
		}
	}
	if n < 1 {
		t.Error("closer missed the PR 3 leaked-staging-writer shape")
	}
}

// TestProfSnapShapeCaught is the white-box regression for the profiler's
// span-boundary counter-snapshot pairing: a span leaked before its end-side
// snapshot must trip spanend, and rendering a delta map in iteration order
// must trip determinism.
func TestProfSnapShapeCaught(t *testing.T) {
	_, diags := loadLintdata(t)
	counts := map[string]int{}
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "profsnap") {
			counts[d.Analyzer]++
		}
	}
	if counts["spanend"] < 1 {
		t.Errorf("spanend missed the leaked boundary-snapshot span (got %d diagnostics)", counts["spanend"])
	}
	if counts["determinism"] < 1 {
		t.Errorf("determinism missed the delta-map iteration (got %d diagnostics)", counts["determinism"])
	}
}

// TestServeWireShapeCaught is the white-box regression for the serving
// layer's release obligations: a fleet session leaked on the admission error
// path and a driver connection leaked on the handshake error path must trip
// closer, and the shared-batch span leaked on a scheduling failure must trip
// spanend.
func TestServeWireShapeCaught(t *testing.T) {
	_, diags := loadLintdata(t)
	counts := map[string]int{}
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "servewire") {
			counts[d.Analyzer]++
		}
	}
	if counts["closer"] < 2 {
		t.Errorf("closer missed the Session.Close/Conn.Close leak shapes (got %d diagnostics, want 2)", counts["closer"])
	}
	if counts["spanend"] < 1 {
		t.Errorf("spanend missed the leaked shared-batch span (got %d diagnostics)", counts["spanend"])
	}
}

// TestInterprocShapesCaught pins the tentpole claim: all three obligation
// analyzers catch the two-level helper-leak and the conditional-release
// shapes — exactly the shapes a purely intraprocedural engine hands off and
// forgets — and constructor-wrapped acquires re-attach in callers.
func TestInterprocShapesCaught(t *testing.T) {
	_, diags := loadLintdata(t)
	type key struct{ analyzer, kind string }
	counts := map[key]int{}
	for _, d := range diags {
		if !strings.Contains(d.Pos.Filename, "interproc") {
			continue
		}
		switch {
		case strings.Contains(d.Message, "never releases it"):
			counts[key{d.Analyzer, "chain"}]++
		case strings.Contains(d.Message, "only on some paths"):
			counts[key{d.Analyzer, "cond"}]++
		default:
			counts[key{d.Analyzer, "fresh"}]++
		}
		if strings.Contains(d.Message, "never releases it") && len(d.Chain) < 2 {
			t.Errorf("two-level finding carries a short callee chain %v: %s", d.Chain, d)
		}
	}
	for _, a := range []string{"spanend", "forkjoin", "closer"} {
		if counts[key{a, "chain"}] < 1 {
			t.Errorf("%s missed the two-level helper-leak shape", a)
		}
		if counts[key{a, "cond"}] < 1 {
			t.Errorf("%s missed the conditional-release shape", a)
		}
	}
	if counts[key{"spanend", "fresh"}] < 2 || counts[key{"closer", "fresh"}] < 2 {
		t.Errorf("constructor-wrapped acquires not re-attached in callers (spanend %d, closer %d, want >= 2 each)",
			counts[key{"spanend", "fresh"}], counts[key{"closer", "fresh"}])
	}
}

// TestGohandoffShapeCaught pins the new analyzer: goroutine-captured
// obligations without an in-goroutine release are reported at the `go`
// statement, across all three rule sets.
func TestGohandoffShapeCaught(t *testing.T) {
	_, diags := loadLintdata(t)
	counts := map[string]int{}
	for _, d := range diags {
		if d.Analyzer != "gohandoff" {
			continue
		}
		if !strings.Contains(d.Message, "captured by a goroutine") {
			t.Errorf("gohandoff diagnostic with unexpected message: %s", d)
		}
		if strings.Contains(d.Message, "obs span") {
			counts["span"]++
		}
		if strings.Contains(d.Message, "resource") {
			counts["resource"]++
		}
	}
	if counts["span"] < 3 {
		t.Errorf("gohandoff caught %d span-capture shapes, want >= 3 (plain, conditional, helper)", counts["span"])
	}
	if counts["resource"] < 1 {
		t.Errorf("gohandoff missed the resource-capture shape")
	}
}

// TestDiagnosticsDeterministic runs the suite twice over the same loaded
// packages and demands byte-identical output — the analyzers are subject to
// the same determinism contract they enforce.
func TestDiagnosticsDeterministic(t *testing.T) {
	pkgs, first := loadLintdata(t)
	second := RunPackages(pkgs, Analyzers())
	if len(first) != len(second) {
		t.Fatalf("diagnostic count changed between runs: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].String() != second[i].String() {
			t.Errorf("diagnostic %d differs between runs:\n  %s\n  %s", i, first[i], second[i])
		}
	}
}
