package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Module  string // module path, "" outside a module
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	directives map[string][]directive // filename -> //repolint: comments
}

// FuncDecls returns every function declaration with a body in the package,
// in file and source order (the module index's deterministic walk set).
func (p *Package) FuncDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves patterns with the go command (run in dir), parses each
// matched package's non-test sources and type-checks them against the
// compiled export data of their dependencies. It is the x/tools-free
// equivalent of go/packages.Load in LoadAllSyntax mode, restricted to what
// the analyzers need: syntax, types and type info for the target packages,
// export data only for dependencies.
//
// Only GoFiles are loaded, so test files and test-only packages are invisible
// to the analyzers by construction — the determinism rules apply to non-test
// code only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, errb.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&out)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg := &Package{
			PkgPath:    t.ImportPath,
			Fset:       fset,
			directives: map[string][]directive{},
		}
		if t.Module != nil {
			pkg.Module = t.Module.Path
		}
		for _, name := range t.GoFiles {
			path := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %v", path, err)
			}
			pkg.Files = append(pkg.Files, f)
			pkg.directives[path] = parseDirectives(fset, f)
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %v", t.ImportPath, err)
		}
		pkg.Types = tpkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
