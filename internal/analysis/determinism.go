package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer guards the repository's byte-determinism contract in
// non-test code: simulated results, obs traces and CC tables must be pure
// functions of (workload, configuration), identical across Workers and
// GOMAXPROCS. Three mechanically detectable classes break that:
//
//   - wall-clock reads (time.Now/Since): virtual time comes from sim.Meter;
//   - the global math/rand source: every random stream must be an explicitly
//     seeded *rand.Rand plumbed to its user;
//   - ranging over a map where iteration order can leak into output: meter
//     charges, trace spans or exported bytes. A loop is exempt when the
//     enclosing function visibly sorts afterwards (the collect-then-sort
//     idiom) or carries a //repolint:ordered justification.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock time, global math/rand, or order-dependent map iteration in non-test code",
	Run:  runDeterminism,
}

// randConstructors are the math/rand(/v2) entry points that do not draw from
// the global source and therefore stay legal.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				checkWallClockAndRand(p, st)
			case *ast.RangeStmt:
				checkMapRange(p, st, enclosingFunc(f, st))
			}
			return true
		})
	}
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing the
// statement, found by position.
func enclosingFunc(file *ast.File, st *ast.RangeStmt) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= st.Pos() && st.End() <= n.End() {
				best = n // keep descending: innermost wins
			}
		}
		return true
	})
	return best
}

// checkWallClockAndRand flags time.Now/Since and global math/rand draws.
func checkWallClockAndRand(p *Pass, call *ast.CallExpr) {
	f := calleeFunc(p.Info, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			p.Reportf(call.Pos(),
				"wall-clock time.%s breaks byte-determinism; derive time from the sim.Meter virtual clock",
				f.Name())
		}
	case "math/rand", "math/rand/v2":
		if funcSignature(f).Recv() != nil || randConstructors[f.Name()] {
			return // *rand.Rand methods and explicit-source constructors are fine
		}
		p.Reportf(call.Pos(),
			"global math/rand.%s draws from the process-wide source; plumb an explicitly seeded *rand.Rand",
			f.Name())
	}
}

// checkMapRange flags ranging over a map unless the loop feeds a sort or is
// annotated //repolint:ordered.
func checkMapRange(p *Pass, st *ast.RangeStmt, fn ast.Node) {
	tv, ok := p.Info.Types[st.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if p.Directive(st.Pos(), "ordered") {
		return
	}
	if fn != nil && sortsAfter(p, fn, st) {
		return
	}
	p.Reportf(st.Pos(),
		"map iteration order is nondeterministic; collect and sort the keys, or annotate //repolint:ordered with a justification")
}

// sortsAfter reports whether the enclosing function calls into sort/slices
// sorting at or after the range statement — the collect-then-sort idiom that
// makes the iteration order immaterial.
func sortsAfter(p *Pass, fn ast.Node, st *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < st.Pos() {
			return true
		}
		if isSortCall(p, call) {
			found = true
		}
		return !found
	})
	return found
}

// isSortCall recognizes ordering calls from sort and slices.
func isSortCall(p *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(p.Info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	name := f.Name()
	switch f.Pkg().Path() {
	case "sort":
		return !strings.HasPrefix(name, "Search") && !strings.HasPrefix(name, "IsSorted")
	case "slices":
		return strings.Contains(name, "Sort") && !strings.HasPrefix(name, "IsSorted")
	}
	return false
}
