package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CloserAnalyzer enforces release obligations on first-party resources:
// values of module-local types whose method set includes Close, Finish or
// Abort (cursors, staging writers, scan partitions, the file store) must be
// released on every path when acquired through a constructor-shaped call
// (Open*/New*/Create*/open*/new*/create*). PR 3's staging-writer leak — a
// mid-batch create/Finish failure left sibling writers open and their files
// on disk — is exactly this class.
//
// Ownership transfer is respected: resources stored into structs or slices,
// passed along, returned, or released by a deferred closure are not tracked
// further here.
var CloserAnalyzer = &Analyzer{
	Name: "closer",
	Doc:  "resources with Close/Finish/Abort obligations must be released on all paths",
	Run:  runCloser,
}

// closerReleases are the method names that discharge a resource.
var closerReleases = map[string]bool{
	"Close": true, "Finish": true, "Abort": true,
	"close": true, "finish": true, "abort": true,
}

func runCloser(p *Pass) {
	runObligations(p, closerRules())
}

// closerRules is the closer obligation rule set, shared with the summary
// layer and the gohandoff analyzer.
func closerRules() *obRules {
	return &obRules{
		name:        "closer",
		leakVerb:    "released (Close/Finish/Abort)",
		releaseRecv: closerReleases,
		acquire: func(p *Pass, call *ast.CallExpr) (string, []int, bool) {
			f := calleeFunc(p.Info, call)
			if f == nil || !acquisitiveName(f.Name()) {
				return "", nil, false
			}
			sig := funcSignature(f)
			var idxs []int
			var desc string
			for i := 0; i < sig.Results().Len(); i++ {
				if name, ok := resourceType(p, sig.Results().At(i).Type()); ok {
					idxs = append(idxs, i)
					desc = name
				}
			}
			if len(idxs) == 0 {
				return "", nil, false
			}
			return desc, idxs, true
		},
		paramType: resourceType,
	}
}

// acquisitiveName reports whether the callee name is constructor-shaped:
// opening, creating or newing up the resource, which is when the release
// obligation lands on the caller. Plain accessors returning an existing
// resource do not transfer it.
func acquisitiveName(name string) bool {
	for _, prefix := range []string{"Open", "New", "Create", "open", "new", "create"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// resourceType reports whether t is (a pointer to) a named type or interface
// declared inside the analyzed module whose method set carries a release
// method, and returns a printable name for it.
func resourceType(p *Pass, t types.Type) (string, bool) {
	n := namedOrPtr(t)
	if n == nil {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || p.Module == "" || !inModule(obj.Pkg().Path(), p.Module) {
		return "", false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		if closerReleases[ms.At(i).Obj().Name()] {
			return "resource " + obj.Name(), true
		}
	}
	return "", false
}

// inModule reports whether pkgPath lives under the module path.
func inModule(pkgPath, module string) bool {
	return pkgPath == module || strings.HasPrefix(pkgPath, module+"/")
}
