package analysis

// GohandoffAnalyzer checks the concurrency hand-off shape the serving layer
// is built from (cmd/served per-conn goroutines, serve.Fleet session
// lifecycles): an obligation — an obs span, forked lanes, a closable
// resource — captured by a `go func` literal or passed into a
// goroutine-launched call must be released inside the goroutine on every
// path. The intraprocedural analyzers deliberately treat goroutine capture
// as an ownership transfer and stop tracking; this analyzer follows the
// value into the goroutine body (or the summarized callee) and reports at
// the `go` statement when no in-goroutine release covers all paths and the
// parent never releases it either (a parent that releases after the
// goroutine signals back — the borrow shape — is fine).
//
// Intentional transfers the engine cannot see are annotated
// //repolint:owner (or //repolint:gohandoff) with a justification at the
// `go` statement.
var GohandoffAnalyzer = &Analyzer{
	Name: "gohandoff",
	Doc:  "obligations captured by a goroutine must be released inside it on all paths",
	Run:  runGohandoff,
}

func runGohandoff(p *Pass) {
	for _, rules := range obligationRuleSets() {
		// The base analyzers own discard diagnostics and open-call checks;
		// this pass only cares about goroutine captures.
		r := *rules
		r.onOpenCall = nil
		runObligationsMode(p, &r, modeGoHandoff)
	}
}
