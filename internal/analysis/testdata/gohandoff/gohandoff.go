// Package gohandoff exercises the goroutine hand-off analyzer: obligations
// captured by `go func` literals or passed to goroutine-launched helpers
// must be released inside the goroutine on every path, unless the parent
// keeps ownership and releases after the goroutine signals back (the borrow
// shape).
package gohandoff

import (
	"lintdata/obs"
	"lintdata/res"
	"lintdata/sim"
)

// leaveOpen reads the span but never ends it.
func leaveOpen(sp *obs.Span) { sp.SetRows(1) }

// closeIt ends the span on every path.
func closeIt(sp *obs.Span) { sp.End() }

func BadGoCapture(tr *obs.Tracer) {
	sp := tr.Start("conn", "serve")
	go func() { // want `obs span "sp" is captured by a goroutine but not Ended inside it on every path \(acquired at line \d+\)`
		sp.SetRows(1)
	}()
}

func BadGoCondRelease(tr *obs.Tracer, ok bool) {
	sp := tr.Start("conn", "serve")
	go func() { // want `obs span "sp" is captured by a goroutine but not Ended inside it on every path`
		if ok {
			sp.End()
		}
	}()
}

func BadGoHelper(tr *obs.Tracer) {
	sp := tr.Start("conn", "serve")
	go leaveOpen(sp) // want `obs span "sp" is captured by a goroutine but not Ended inside it on every path.*passed to gohandoff\.leaveOpen, which never releases it`
}

func BadGoCursor() {
	c := res.OpenScan()
	go func() { // want `resource Cursor "c" is captured by a goroutine but not released \(Close/Finish/Abort\) inside it on every path`
		c.Next()
	}()
}

func OkGoRelease(tr *obs.Tracer) {
	sp := tr.Start("conn", "serve")
	go func() {
		sp.SetRows(1)
		sp.End()
	}()
}

func OkGoArgRelease(tr *obs.Tracer) {
	sp := tr.Start("conn", "serve")
	go func(s *obs.Span) {
		s.End()
	}(sp)
}

func OkGoHelperClose(tr *obs.Tracer) {
	sp := tr.Start("conn", "serve")
	go closeIt(sp)
}

// OkGoBorrow: the goroutine only borrows the span; the parent keeps the
// obligation and ends it after the goroutine signals completion.
func OkGoBorrow(tr *obs.Tracer) {
	sp := tr.Start("conn", "serve")
	done := make(chan struct{})
	go func() {
		sp.SetRows(1)
		close(done)
	}()
	<-done
	sp.End()
}

// OkGoLanesBorrow: lane meters charged by a goroutine while the parent joins
// them after the barrier — the canonical worker shape.
func OkGoLanesBorrow(m *sim.Meter) {
	lanes := m.Fork(2)
	done := make(chan struct{})
	go func() {
		lanes[0].Charge(0, 1, 1)
		close(done)
	}()
	<-done
	m.Join(lanes)
}

// OkGoAnnotated: an intentional transfer the engine cannot prove — the
// goroutine releases only on the shutdown path — justified with owner.
func OkGoAnnotated(tr *obs.Tracer, shutdown bool) {
	sp := tr.Start("conn", "serve")
	//repolint:owner the monitor goroutine owns the span and ends it at shutdown
	go func() {
		if shutdown {
			sp.End()
		}
	}()
}
