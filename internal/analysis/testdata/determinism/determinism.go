// Package determinism holds the determinism analyzer's testdata: wall-clock
// reads, global math/rand draws and order-leaking map ranges are caught;
// seeded sources, collect-then-sort loops and //repolint:ordered loops pass.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func BadWallClock() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now breaks byte-determinism`
}

func BadElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock time\.Since breaks byte-determinism`
}

func BadGlobalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn draws from the process-wide source`
}

func BadGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

func BadMapOrder(m map[string]int64) []int64 {
	var out []int64
	for _, v := range m { // want `map iteration order is nondeterministic`
		out = append(out, v)
	}
	return out
}

func OkSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func OkCollectThenSort(m map[string]int64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func OkAnnotated(m map[string]int64) int64 {
	var sum int64
	//repolint:ordered summation is commutative
	for _, v := range m {
		sum += v
	}
	return sum
}

func OkSliceRange(xs []int64) int64 {
	var sum int64
	for _, v := range xs {
		sum += v
	}
	return sum
}
