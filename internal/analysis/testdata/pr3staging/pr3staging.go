// Package pr3staging reconstructs the staging-writer leak PR 3 fixed in
// internal/mw: a mid-batch failure returned without Aborting the writer that
// was already open, stranding its temp file. The Fixed variant aborts on
// every failure path and must stay clean.
package pr3staging

import (
	"errors"

	"lintdata/res"
)

var errBadPartition = errors.New("bad partition")

// LeakyStageAll is the pre-PR 3 shape: the per-partition writer leaks when a
// partition fails validation after the writer is created.
func LeakyStageAll(parts [][]byte) error {
	for _, part := range parts {
		w, err := res.Create() // want `resource Writer "w" is not released`
		if err != nil {
			return err
		}
		w.Write(part)
		if len(part) == 0 {
			return errBadPartition // the PR 3 bug: w is neither Finished nor Aborted
		}
		if err := w.Finish(); err != nil {
			return err
		}
	}
	return nil
}

// FixedStageAll is the post-PR 3 shape: Abort on the failure path.
func FixedStageAll(parts [][]byte) error {
	for _, part := range parts {
		w, err := res.Create()
		if err != nil {
			return err
		}
		w.Write(part)
		if len(part) == 0 {
			w.Abort()
			return errBadPartition
		}
		if err := w.Finish(); err != nil {
			return err
		}
	}
	return nil
}
