// Package spanend holds the spanend analyzer's testdata: spans leaked on
// error paths or discarded outright are caught; deferred ends, all-path ends,
// in-chain ends and ownership transfers pass.
package spanend

import (
	"errors"

	"lintdata/obs"
)

var errScan = errors.New("scan failed")

func BadErrorPath(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("scan", "scan") // want `obs span "sp" is not Ended on every path`
	if fail {
		return errScan // leaks the span
	}
	sp.End()
	return nil
}

func BadDiscarded(tr *obs.Tracer) {
	tr.Start("scan", "orphan") // want `obs span is discarded without being Ended`
}

func BadNeverEnded(tr *obs.Tracer, rows int64) int64 {
	sp := tr.Start("merge", "merge") // want `obs span "sp" is not Ended on every path`
	sp.SetRows(rows)
	return rows
}

func OkDefer(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("batch", "batch")
	defer sp.End()
	if fail {
		return errScan
	}
	return nil
}

func OkAllPaths(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("scan", "scan")
	if fail {
		sp.End()
		return errScan
	}
	sp.SetRows(1).End()
	return nil
}

func OkChained(tr *obs.Tracer) {
	tr.Start("stage", "stage-memory").SetRows(2).End()
}

func OkDeferredClosure(tr *obs.Tracer, rows int64) {
	sp := tr.Start("aux", "copy-subset")
	defer func() { sp.SetRows(rows).End() }()
}

type cursor struct{ sp *obs.Span }

func OkOwnershipTransfer(tr *obs.Tracer) *cursor {
	// The span moves into the cursor; whoever closes the cursor ends it.
	return &cursor{sp: tr.Start("cursor", "server-scan")}
}
