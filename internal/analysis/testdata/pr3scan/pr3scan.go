// Package pr3scan reconstructs the exact code shapes PR 3 fixed by hand in
// internal/mw: the batch scan span that leaked when the scan errored
// (spanend), and the parallel fan-out that returned early without folding its
// lanes back through the barrier (forkjoin). The Fixed variants are the
// post-PR 3 shapes and must stay clean.
package pr3scan

import (
	"errors"

	"lintdata/obs"
	"lintdata/sim"
)

var errScanFailed = errors.New("scan failed")

func scanBatch(fail bool) (int64, error) {
	if fail {
		return 0, errScanFailed
	}
	return 128, nil
}

// LeakyScanStep is the pre-PR 3 shape of mw's batch scan: the span opened
// before the scan never reaches End when the scan errors.
func LeakyScanStep(tr *obs.Tracer, fail bool) (int64, error) {
	ssp := tr.Start("scan", "batch-scan") // want `obs span "ssp" is not Ended on every path`
	rows, scanErr := scanBatch(fail)
	if scanErr != nil {
		return 0, scanErr // the PR 3 bug: span leaks on the error return
	}
	ssp.SetRows(rows).End()
	return rows, nil
}

// FixedScanStep is the post-PR 3 shape: End on the error path too.
func FixedScanStep(tr *obs.Tracer, fail bool) (int64, error) {
	ssp := tr.Start("scan", "batch-scan")
	rows, scanErr := scanBatch(fail)
	if scanErr != nil {
		ssp.End()
		return 0, scanErr
	}
	ssp.SetRows(rows).End()
	return rows, nil
}

// LeakyParallelScan is the pre-PR 3 fan-out shape: fork the meter and the
// lane tracers, then bail out on a planning error without joining either.
func LeakyParallelScan(m *sim.Meter, tr *obs.Tracer, workers int, fail bool) error {
	lanes := m.Fork(workers)    // want `forked lane meters "lanes" is not Joined back on every path`
	ltrs := tr.ForkLanes(lanes) // want `forked lane tracers "ltrs" is not Joined back on every path`
	for w := 0; w < workers; w++ {
		lanes[w].Charge(0, 1, 1)
		lsp := ltrs[w].Start("scan", "lane-scan")
		lsp.End()
	}
	if fail {
		return errScanFailed // lane work vanishes: never folded into the parent
	}
	m.Join(lanes)
	tr.JoinLanes(ltrs)
	return nil
}

// FixedParallelScan joins on every path before returning.
func FixedParallelScan(m *sim.Meter, tr *obs.Tracer, workers int, fail bool) error {
	lanes := m.Fork(workers)
	ltrs := tr.ForkLanes(lanes)
	for w := 0; w < workers; w++ {
		lanes[w].Charge(0, 1, 1)
		lsp := ltrs[w].Start("scan", "lane-scan")
		lsp.End()
	}
	m.Join(lanes)
	tr.JoinLanes(ltrs)
	if fail {
		return errScanFailed
	}
	return nil
}
