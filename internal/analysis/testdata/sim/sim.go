// Package sim is a structural stub of the real internal/sim: the analyzers
// match the Meter/ChargeObserver surface by package base name and method
// name, so testdata exercises the same shapes the repository does.
package sim

type Counter int

// Meter mirrors the virtual-clock meter's fork/join and charge surface.
type Meter struct {
	now    int64
	counts [4]int64
}

func NewMeter() *Meter { return &Meter{} }

func (m *Meter) Charge(c Counter, unitCost, n int64) {
	m.counts[c] += n
	m.now += unitCost * n
}

func (m *Meter) Advance(d int64) { m.now += d }

func (m *Meter) Count(c Counter) int64 { return m.counts[c] }

func (m *Meter) Fork(n int) []*Meter {
	lanes := make([]*Meter, n)
	for i := range lanes {
		lanes[i] = NewMeter()
	}
	return lanes
}

func (m *Meter) Join(lanes []*Meter) {
	var max int64
	for _, l := range lanes {
		if l.now > max {
			max = l.now
		}
	}
	m.now += max
}

// ChargeObserver mirrors the real observer hook: called after every Charge,
// must never charge back into a meter.
type ChargeObserver interface {
	ObserveCharge(c Counter, n, total, nowNS int64)
}
