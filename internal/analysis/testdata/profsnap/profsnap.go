// Package profsnap holds the profiler's span-boundary counter-snapshot
// pairing cases. The post-hoc profiler only sees a span's counter deltas if
// the end-boundary snapshot is actually taken — a span leaked on an error
// path leaves a half-open window and its costs silently fold into the
// parent. Rendering the resulting delta maps must not leak map iteration
// order into report bytes.
package profsnap

import (
	"errors"
	"sort"

	"lintdata/obs"
	"lintdata/sim"
)

var errBudget = errors.New("budget exhausted")

// BadSnapshotLeak captures the start-boundary counter snapshot but leaks the
// span on the error path: the end snapshot is never taken and the window
// stays half-open.
func BadSnapshotLeak(tr *obs.Tracer, m *sim.Meter, fail bool) error {
	sp := tr.Start("scan", "scan") // want `obs span "sp" is not Ended on every path`
	before := m.Count(0)
	m.Charge(0, 1, 10)
	if fail {
		return errBudget
	}
	sp.Attr("delta", m.Count(0)-before)
	sp.End()
	return nil
}

// BadDeltaMapOrder renders a counter-delta map by ranging over it directly:
// the report bytes would depend on map iteration order.
func BadDeltaMapOrder(deltas map[string]int64, emit func(string, int64)) {
	for name, v := range deltas { // want `map iteration order is nondeterministic`
		emit(name, v)
	}
}

// OkSnapshotPairing pairs the boundary snapshots with a deferred End: the
// end-side capture runs on every path, error or not.
func OkSnapshotPairing(tr *obs.Tracer, m *sim.Meter, fail bool) error {
	sp := tr.Start("scan", "scan")
	defer sp.End()
	before := m.Count(0)
	m.Charge(0, 1, 10)
	if fail {
		return errBudget
	}
	sp.Attr("delta", m.Count(0)-before)
	return nil
}

// OkRetroactiveCapture closes a span retroactively but captures its counter
// boundary explicitly first, then ends it on the single exit path.
func OkRetroactiveCapture(tr *obs.Tracer, m *sim.Meter, closeNS int64) {
	sp := tr.Start("level", "level 0")
	m.Charge(0, 1, 5)
	sp.CaptureCounters()
	sp.EndAt(closeNS)
}

// OkDeltaReport collects the delta keys and sorts before rendering, so the
// report is byte-deterministic.
func OkDeltaReport(deltas map[string]int64, emit func(string, int64)) {
	keys := make([]string, 0, len(deltas))
	for k := range deltas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, deltas[k])
	}
}
