// Package forkjoin holds the forkjoin analyzer's testdata: forks that can
// escape the function un-Joined and parent-meter charges between Fork and
// Join are caught; the canonical fork → lane work → join shape passes.
package forkjoin

import (
	"errors"

	"lintdata/obs"
	"lintdata/sim"
)

var errLane = errors.New("lane failed")

func BadUnjoinedOnError(m *sim.Meter, fail bool) error {
	lanes := m.Fork(4) // want `forked lane meters "lanes" is not Joined back on every path`
	if fail {
		return errLane // leaks the barrier: lane work is lost
	}
	m.Join(lanes)
	return nil
}

func BadParentCharge(m *sim.Meter) {
	lanes := m.Fork(2)
	m.Charge(0, 1, 1) // want `parent "m" is charged between Fork and Join`
	m.Join(lanes)
}

func BadParentAdvance(m *sim.Meter) {
	lanes := m.Fork(2)
	m.Advance(10) // want `parent "m" is charged between Fork and Join`
	m.Join(lanes)
}

func BadTracerRecord(m *sim.Meter, tr *obs.Tracer) {
	lanes := m.Fork(2)
	ltrs := tr.ForkLanes(lanes)
	sp := tr.Start("batch", "oops") // want `parent "tr" is recorded to between Fork and Join`
	sp.End()
	m.Join(lanes)
	tr.JoinLanes(ltrs)
}

func OkForkJoin(m *sim.Meter, tr *obs.Tracer) {
	lanes := m.Fork(2)
	ltrs := tr.ForkLanes(lanes)
	for i, lane := range lanes {
		lane.Charge(0, 1, int64(i)) // lane charges are the point of the fork
		lsp := ltrs[i].Start("lane", "lane")
		lsp.End()
	}
	m.Join(lanes)
	tr.JoinLanes(ltrs)
	m.Charge(0, 1, 1) // post-barrier serial work on the parent is fine
	sp := tr.Start("merge", "shard-merge")
	sp.End()
}
