// Package closer holds the closer analyzer's testdata: cursors and writers
// leaked on early returns are caught; deferred closes, all-path releases and
// ownership transfers pass.
package closer

import (
	"errors"

	"lintdata/res"
)

var errMid = errors.New("mid-scan failure")

func BadCursorLeak(fail bool) error {
	cur := res.OpenScan() // want `resource Cursor "cur" is not released`
	if fail {
		return errMid // leaks the cursor
	}
	cur.Close()
	return nil
}

func BadWriterLeak(rows [][]byte) (int, error) {
	w, err := res.Create() // want `resource Writer "w" is not released`
	if err != nil {
		return 0, err
	}
	for _, r := range rows {
		w.Write(r)
	}
	return len(rows), nil // never Finished nor Aborted
}

func OkDeferClose(fail bool) error {
	cur := res.OpenScan()
	defer cur.Close()
	if fail {
		return errMid
	}
	return nil
}

func OkFinishOrAbort(rows [][]byte, fail bool) error {
	w, err := res.Create()
	if err != nil {
		return err
	}
	if fail {
		w.Abort()
		return errMid
	}
	for _, r := range rows {
		w.Write(r)
	}
	return w.Finish()
}

func OkAccessorNotTracked(p *res.Pool) int {
	// Shared() hands out a borrowed cursor: no obligation lands here.
	cur := p.Shared()
	n, _ := cur.Next()
	return n
}

type scanState struct{ cur *res.Cursor }

func OkOwnershipTransfer() *scanState {
	// The cursor moves into the state struct; its Close happens elsewhere.
	return &scanState{cur: res.OpenScan()}
}
