// Package noreentrancy holds the noreentrancy analyzer's testdata: observers
// that charge a meter directly or through a helper chain are caught; pure
// readers (the real metrics sampler shape) pass.
package noreentrancy

import "lintdata/sim"

type BadDirect struct{ m *sim.Meter }

func (o *BadDirect) ObserveCharge(c sim.Counter, n, total, nowNS int64) {
	o.m.Charge(c, 1, n) // want `sim\.Meter\.Charge inside a ChargeObserver callback chain`
}

type BadIndirect struct{ m *sim.Meter }

func (o *BadIndirect) ObserveCharge(c sim.Counter, n, total, nowNS int64) {
	o.resample(c)
}

func (o *BadIndirect) resample(c sim.Counter) {
	o.m.Advance(1) // want `sim\.Meter\.Advance inside a ChargeObserver callback chain`
}

type GoodSampler struct {
	m       *sim.Meter
	samples []int64
}

func (o *GoodSampler) ObserveCharge(c sim.Counter, n, total, nowNS int64) {
	// Pure reader, exactly like obs.ProcMetrics: reads counters, never
	// charges.
	o.samples = append(o.samples, o.m.Count(c))
}

// FreeCharge is outside any observer chain: charging here is the normal case.
func FreeCharge(m *sim.Meter) {
	m.Charge(0, 1, 1)
}
