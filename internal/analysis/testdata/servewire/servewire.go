// Package servewire holds the serving-layer shapes that arrived with the
// wire daemon: fleet sessions (Close releases middleware staging) and driver
// connections (Close sends the goodbye frame and closes the socket) carry
// release obligations the closer analyzer enforces, and the shared-batch
// span must end on the error path like any other span.
package servewire

import (
	"errors"

	"lintdata/obs"
)

var errAdmit = errors.New("admission failed")

// Session mirrors serve.Session: staging files released by Close.
type Session struct{ open bool }

func NewSession() (*Session, error) { return &Session{open: true}, nil }

func (s *Session) Step() error { return nil }

func (s *Session) Close() { s.open = false }

// Conn mirrors the ccsql driver connection: a dialed socket plus handshake.
type Conn struct{ ok bool }

func OpenConn() (*Conn, error) { return &Conn{ok: true}, nil }

func (c *Conn) Handshake() error { return nil }

func (c *Conn) Query(stmt string) error { return nil }

func (c *Conn) Close() error { c.ok = false; return nil }

// BadSessionLeak is the fleet admission shape done wrong: the builder
// failing after the middleware opened leaves the session's staging files on
// disk until process exit.
func BadSessionLeak(fail bool) error {
	s, err := NewSession() // want `resource Session "s" is not released`
	if err != nil {
		return err
	}
	if fail {
		return errAdmit // leaks the session's staging
	}
	s.Close()
	return nil
}

// BadConnLeak is the driver shape done wrong: a handshake or statement
// failure returns without closing the dialed socket.
func BadConnLeak(stmt string) error {
	c, err := OpenConn() // want `resource Conn "c" is not released`
	if err != nil {
		return err
	}
	if err := c.Handshake(); err != nil {
		return err // leaks the socket
	}
	return c.Query(stmt)
}

// BadSharedBatchSpan leaks the shared batch span when scheduling fails.
func BadSharedBatchSpan(tr *obs.Tracer, fail bool) error {
	bsp := tr.Start("batch", "shared-batch") // want `obs span "bsp" is not Ended on every path`
	if fail {
		return errAdmit
	}
	bsp.End()
	return nil
}

// OkSessionDefer is the fleet error-path contract: Close is deferred until
// the session's builder takes over.
func OkSessionDefer(fail bool) error {
	s, err := NewSession()
	if err != nil {
		return err
	}
	defer s.Close()
	if fail {
		return errAdmit
	}
	return s.Step()
}

// OkConnHandshake is the fixed driver Open: the socket closes on the
// handshake error path and transfers to the caller on success.
func OkConnHandshake() (*Conn, error) {
	c, err := OpenConn()
	if err != nil {
		return nil, err
	}
	if err := c.Handshake(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil // ownership moves to database/sql
}

// OkSharedBatchSpan ends the span on both the error and success paths, the
// shape mw.SharedBatch.Finish/Abort implement.
func OkSharedBatchSpan(tr *obs.Tracer, fail bool) error {
	bsp := tr.Start("batch", "shared-batch")
	if fail {
		bsp.End()
		return errAdmit
	}
	bsp.SetRows(1).End()
	return nil
}

type fleet struct{ sessions []*Session }

// OkFleetTransfer admits a session into the fleet: the fleet's retire loop
// owns the Close from here.
func OkFleetTransfer(f *fleet) error {
	s, err := NewSession()
	if err != nil {
		return err
	}
	f.sessions = append(f.sessions, s)
	return nil
}
