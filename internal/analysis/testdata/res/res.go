// Package res declares module-local resource types for the closer analyzer:
// a Cursor with a Close obligation (the engine cursor shape) and a Writer
// with Finish/Abort obligations (the middleware staging-writer shape).
package res

type Cursor struct{ open bool }

func OpenScan() *Cursor { return &Cursor{open: true} }

func (c *Cursor) Next() (int, bool) { return 0, false }

func (c *Cursor) Close() { c.open = false }

type Writer struct {
	rows int
	err  error
}

func Create() (*Writer, error) { return &Writer{}, nil }

func (w *Writer) Write(b []byte) { w.rows++ }

func (w *Writer) Finish() error { return w.err }

func (w *Writer) Abort() { w.rows = 0 }

// Pool has a Close method but is handed out by an accessor, not a
// constructor: callers do not take over its release obligation.
type Pool struct{ cur Cursor }

func (p *Pool) Shared() *Cursor { return &p.cur }

func (p *Pool) Close() {}
