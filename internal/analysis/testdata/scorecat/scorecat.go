// Package scorecat holds the in-database scoring shapes that arrived with
// the model catalog: reconstructing a model from its catalog table opens a
// metered scan cursor that must be closed on every path (including the
// malformed-catalog error returns), and the scoring operator's span must end
// even when a row group fails to compile.
package scorecat

import (
	"errors"

	"lintdata/obs"
)

var errCatalog = errors.New("malformed catalog row")

// CatalogScan mirrors the engine's model-catalog cursor: one metered pass
// over the catalog table's rows, released by Close.
type CatalogScan struct{ open bool }

// OpenCatalogScan positions a cursor on the model's catalog table.
func OpenCatalogScan(model string) (*CatalogScan, error) {
	return &CatalogScan{open: true}, nil
}

// Next advances to the next catalog row.
func (s *CatalogScan) Next() bool { return false }

// Decode decodes the current row into a model node.
func (s *CatalogScan) Decode() error { return nil }

// Close releases the cursor.
func (s *CatalogScan) Close() { s.open = false }

// BadCatalogLeak is the model-reconstruction shape done wrong: a decode
// failure mid-scan returns without closing the catalog cursor.
func BadCatalogLeak(model string) error {
	s, err := OpenCatalogScan(model) // want `resource CatalogScan "s" is not released`
	if err != nil {
		return err
	}
	for s.Next() {
		if err := s.Decode(); err != nil {
			return errCatalog // leaks the cursor
		}
	}
	s.Close()
	return nil
}

// BadScoreSpanLeak leaks the scoring span when a row group's code-space
// compile fails.
func BadScoreSpanLeak(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("score", "score-table") // want `obs span "sp" is not Ended on every path`
	if fail {
		return errCatalog
	}
	sp.End()
	return nil
}

// OkCatalogDefer is the fixed reconstruction: the cursor closes on every
// path, decode errors included.
func OkCatalogDefer(model string) error {
	s, err := OpenCatalogScan(model)
	if err != nil {
		return err
	}
	defer s.Close()
	for s.Next() {
		if err := s.Decode(); err != nil {
			return errCatalog
		}
	}
	return nil
}

// OkScoreSpan ends the scoring span on the compile-failure path too, the
// shape engine.scoreColumnar implements.
func OkScoreSpan(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("score", "score-table")
	if fail {
		sp.End()
		return errCatalog
	}
	sp.SetRows(1).End()
	return nil
}
