// Package coldict reconstructs the tempting-but-wrong way to build a columnar
// row group's dictionary: collect the distinct values of a column into a map
// and range it to assign codes. Map iteration order varies between runs, so
// two builds of the same table would disagree on every code — and with them
// every downstream fingerprint. The determinism analyzer must catch both the
// code assignment and the page-size accounting built that way; the shipped
// collect-then-sort construction (storage.encodeGroup's shape) passes.
package coldict

import "sort"

// Value mirrors data.Value for the testdata module.
type Value int32

// BadDictCodes assigns dictionary codes in map iteration order: the same
// column gets different codes on every run.
func BadDictCodes(col []Value) map[Value]uint16 {
	distinct := map[Value]bool{}
	for _, v := range col {
		distinct[v] = true
	}
	codes := map[Value]uint16{}
	next := uint16(0)
	for v := range distinct { // want `map iteration order is nondeterministic`
		codes[v] = next
		next++
	}
	return codes
}

// BadDictBytes sums the modeled dictionary size by ranging a per-column map:
// with float accumulation downstream this leaks iteration order into the
// cost model.
func BadDictBytes(dicts map[int][]Value) []int {
	var sizes []int
	for _, dict := range dicts { // want `map iteration order is nondeterministic`
		sizes = append(sizes, 4*len(dict))
	}
	return sizes
}

// OkDictSorted is the shipped construction: collect the distinct values into
// a slice, sort, dedupe, and let the position be the code. The sorted
// dictionary doubles as the group's zone map.
func OkDictSorted(col []Value) ([]Value, []uint16) {
	dict := make([]Value, len(col))
	copy(dict, col)
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	n := 0
	for i, v := range dict {
		if i == 0 || v != dict[n-1] {
			dict[n] = v
			n++
		}
	}
	dict = dict[:n]
	codes := make([]uint16, len(col))
	for i, v := range col {
		codes[i] = uint16(sort.Search(len(dict), func(j int) bool { return dict[j] >= v }))
	}
	return dict, codes
}
