// Package skewstats holds the histogram-partitioning testdata: the naive
// map-based value-statistics shapes PR 5 deliberately avoided (split
// boundaries derived from a map walk would depend on iteration order and
// break byte-determinism), plus a split-planning span that leaks on the
// fallback path. The Ok variants are the shapes internal/engine/stats.go
// actually ships: dense slices walked in index order, spans ended on every
// path.
package skewstats

import (
	"sort"

	"lintdata/obs"
)

// BadMapHistogram is the tempting first cut of per-page value statistics: a
// map from value to count whose walk order — and therefore any split boundary
// computed from the walk — changes run to run.
func BadMapHistogram(values []int) []int64 {
	counts := map[int]int64{}
	for _, v := range values {
		counts[v]++
	}
	var weights []int64
	for _, c := range counts { // want `map iteration order is nondeterministic`
		weights = append(weights, c)
	}
	return weights
}

// BadMapBounds accumulates page weights keyed by page id and emits prefix
// boundaries straight off the map walk — the order-dependent arithmetic the
// weighted-bounds code must never contain.
func BadMapBounds(pageWeight map[int]int64, nparts int) []int64 {
	var prefix []int64
	var run int64
	for _, w := range pageWeight { // want `map iteration order is nondeterministic`
		run += w
		prefix = append(prefix, run)
	}
	return prefix
}

// OkSliceHistogram is the shipped shape: a dense counts slice indexed by
// value code (plus an overflow counter), walked in index order.
func OkSliceHistogram(values []int, maxValue int) ([]int64, int64) {
	counts := make([]int64, maxValue)
	var over int64
	for _, v := range values {
		if v < 0 || v >= maxValue {
			over++
			continue
		}
		counts[v]++
	}
	return counts, over
}

// OkSortedPageWalk is the acceptable map escape hatch: collect the keys,
// sort, then walk — boundaries become a pure function of the contents.
func OkSortedPageWalk(pageWeight map[int]int64) []int64 {
	pages := make([]int, 0, len(pageWeight))
	for p := range pageWeight {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	var prefix []int64
	var run int64
	for _, p := range pages {
		run += pageWeight[p]
		prefix = append(prefix, run)
	}
	return prefix
}

// LeakySplitSpan is the split-planning span mistake: the span opened around
// hint computation never reaches End when the stats are missing and the
// planner falls back to equal-width.
func LeakySplitSpan(tr *obs.Tracer, haveStats bool) []int {
	sp := tr.Start("plan", "weighted-split") // want `obs span "sp" is not Ended on every path`
	if !haveStats {
		return nil // fallback path leaks the span
	}
	bounds := []int{0, 1}
	sp.SetRows(int64(len(bounds))).End()
	return bounds
}

// FixedSplitSpan ends the span on the fallback path too.
func FixedSplitSpan(tr *obs.Tracer, haveStats bool) []int {
	sp := tr.Start("plan", "weighted-split")
	if !haveStats {
		sp.End()
		return nil
	}
	bounds := []int{0, 1}
	sp.SetRows(int64(len(bounds))).End()
	return bounds
}
