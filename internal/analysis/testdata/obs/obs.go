// Package obs is a structural stub of the real internal/obs: Tracer.Start
// returns a Span that must be Ended, and ForkLanes/JoinLanes mirror the lane
// tracer barrier.
package obs

import "lintdata/sim"

type Tracer struct{ spans int }

type Span struct {
	tr   *Tracer
	Dur  int64
	Rows int64
}

func (t *Tracer) Start(cat, name string) *Span {
	if t == nil {
		return nil
	}
	t.spans++
	return &Span{tr: t}
}

func (t *Tracer) ForkLanes(lanes []*sim.Meter) []*Tracer {
	if t == nil {
		return nil
	}
	out := make([]*Tracer, len(lanes))
	for i := range out {
		out[i] = &Tracer{}
	}
	return out
}

func (t *Tracer) JoinLanes(lanes []*Tracer) {
	for _, lt := range lanes {
		if lt != nil {
			t.spans += lt.spans
		}
	}
}

func (s *Span) End() {
	if s != nil {
		s.tr = nil
	}
}

func (s *Span) EndAt(ns int64) {
	if s != nil {
		s.Dur = ns
		s.tr = nil
	}
}

func (s *Span) CaptureCounters() *Span { return s }

func (s *Span) SetRows(n int64) *Span {
	if s != nil {
		s.Rows = n
	}
	return s
}

func (s *Span) Attr(key string, v int64) *Span { return s }
