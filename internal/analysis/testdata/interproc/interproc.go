// Package interproc exercises the function-summary layer: obligations handed
// to always/conditionally/never-releasing helpers, constructors whose results
// carry fresh obligations, two-level helper chains, and recursive cycles.
// Every Bad* case here is invisible to a purely intraprocedural engine —
// passing the value to any helper used to hand the obligation off.
package interproc

import (
	"lintdata/obs"
	"lintdata/res"
	"lintdata/sim"
)

// ---- spanend helpers ----------------------------------------------------

// endAlways releases its span on every path.
func endAlways(sp *obs.Span) { sp.End() }

// logSpan reads the span but never ends it.
func logSpan(sp *obs.Span) { sp.SetRows(1) }

// endIf releases the span only when ok.
func endIf(sp *obs.Span, ok bool) {
	if ok {
		sp.End()
	}
}

// endSafe nil-guards before releasing: on the nil branch there is nothing to
// end, so this still counts as always-releasing.
func endSafe(sp *obs.Span) {
	if sp != nil {
		sp.End()
	}
}

// forwardLeak forwards to a never-releasing helper: a two-level chain.
func forwardLeak(sp *obs.Span) { logSpan(sp) }

// startSpan wraps an acquire: its result carries a fresh obligation.
func startSpan(tr *obs.Tracer) *obs.Span { return tr.Start("aux", "wrapped") }

// startSpan2 wraps the wrapper: freshness must propagate two levels.
func startSpan2(tr *obs.Tracer) *obs.Span { return startSpan(tr) }

// recEnd releases on the base case and recurses otherwise: the fixed point
// must converge to always-releasing, not be pessimized by its own cycle.
func recEnd(sp *obs.Span, n int) {
	if n <= 0 {
		sp.End()
		return
	}
	recEnd(sp, n-1)
}

// recLeak has a base case that returns without releasing: conditional.
func recLeak(sp *obs.Span, n int) {
	if n == 0 {
		return
	}
	if n == 1 {
		sp.End()
		return
	}
	recLeak(sp, n-1)
}

// pingEnd / pongEnd form a mutually recursive always-releasing pair.
func pingEnd(sp *obs.Span, n int) {
	if n <= 0 {
		sp.End()
		return
	}
	pongEnd(sp, n-1)
}

func pongEnd(sp *obs.Span, n int) {
	if n <= 0 {
		sp.End()
		return
	}
	pingEnd(sp, n-1)
}

// ---- spanend cases ------------------------------------------------------

func BadTwoLevel(tr *obs.Tracer) {
	sp := tr.Start("scan", "batch") // want `obs span "sp" is not Ended on every path: function exit at line \d+ \(passed to interproc\.forwardLeak -> interproc\.logSpan, which never releases it\)`
	forwardLeak(sp)
}

func BadCondRelease(tr *obs.Tracer, ok bool) {
	sp := tr.Start("scan", "batch") // want `obs span "sp" is not Ended on every path.*passed to interproc\.endIf, which releases it only on some paths`
	endIf(sp, ok)
}

func BadWrappedLeak(tr *obs.Tracer) {
	sp := startSpan(tr) // want `obs span "sp" is not Ended on every path`
	sp.SetRows(2)
}

func BadWrappedTwoLevel(tr *obs.Tracer) {
	sp := startSpan2(tr) // want `obs span "sp" is not Ended on every path`
	sp.SetRows(3)
}

func BadWrappedDiscard(tr *obs.Tracer) {
	_ = startSpan(tr) // want `obs span is discarded without being Ended`
}

func BadRecursiveCond(tr *obs.Tracer, n int) {
	sp := tr.Start("scan", "batch") // want `obs span "sp" is not Ended on every path.*passed to interproc\.recLeak, which releases it only on some paths`
	recLeak(sp, n)
}

func OkHelperReleases(tr *obs.Tracer) {
	sp := tr.Start("scan", "batch")
	endAlways(sp)
}

func OkNilGuardHelper(tr *obs.Tracer) {
	sp := tr.Start("scan", "batch")
	endSafe(sp)
}

func OkWrappedReleased(tr *obs.Tracer) {
	sp := startSpan2(tr)
	sp.SetRows(4)
	sp.End()
}

func OkRecursiveHelper(tr *obs.Tracer) {
	sp := tr.Start("scan", "batch")
	recEnd(sp, 3)
}

func OkMutualRecursion(tr *obs.Tracer) {
	sp := tr.Start("scan", "batch")
	pingEnd(sp, 5)
}

// ---- closer helpers -----------------------------------------------------

func closeAlways(c *res.Cursor) { c.Close() }

func readOnly(c *res.Cursor) { c.Next() }

func closeIf(c *res.Cursor, ok bool) {
	if ok {
		c.Close()
	}
}

// drainVia forwards to a never-releasing helper: a two-level chain.
func drainVia(c *res.Cursor) { readOnly(c) }

// makeCursor is not constructor-named, but its summary says the result is a
// fresh obligation — callers must treat it as an acquire site anyway.
func makeCursor() *res.Cursor { return res.OpenScan() }

// makeCursor2 forwards the wrapped acquire another level.
func makeCursor2() *res.Cursor { return makeCursor() }

// makeWriter forwards a (value, error) constructor; the error sibling must
// keep guarding the obligation in callers.
func makeWriter() (*res.Writer, error) { return res.Create() }

// ---- closer cases -------------------------------------------------------

func BadCursorChain() {
	c := res.OpenScan() // want `resource Cursor "c" is not released \(Close/Finish/Abort\) on every path.*passed to interproc\.drainVia -> interproc\.readOnly, which never releases it`
	drainVia(c)
}

func BadCursorCond(ok bool) {
	c := res.OpenScan() // want `resource Cursor "c" is not released \(Close/Finish/Abort\) on every path.*passed to interproc\.closeIf, which releases it only on some paths`
	closeIf(c, ok)
}

func BadWrappedCursor() {
	c := makeCursor2() // want `resource Cursor "c" is not released \(Close/Finish/Abort\) on every path`
	c.Next()
}

func BadWrappedWriter() error {
	w, err := makeWriter() // want `resource Writer "w" is not released \(Close/Finish/Abort\) on every path`
	if err != nil {
		return err
	}
	w.Write([]byte("x"))
	return nil
}

func OkCursorHelper() {
	c := res.OpenScan()
	closeAlways(c)
}

func OkWrappedCursor() {
	c := makeCursor()
	c.Next()
	c.Close()
}

func OkWrappedWriterErrPath() error {
	w, err := makeWriter()
	if err != nil {
		return err
	}
	w.Write([]byte("x"))
	return w.Finish()
}

// ---- forkjoin helpers ---------------------------------------------------

// joinAll joins the lanes back on every path.
func joinAll(m *sim.Meter, lanes []*sim.Meter) { m.Join(lanes) }

// chargeLanes reads and charges the lanes but never joins them.
func chargeLanes(lanes []*sim.Meter) {
	for _, l := range lanes {
		l.Charge(0, 1, 1)
	}
}

// joinIf joins only when ok.
func joinIf(m *sim.Meter, lanes []*sim.Meter, ok bool) {
	if ok {
		m.Join(lanes)
	}
}

// forwardLanes forwards to the never-joining helper: a two-level chain.
func forwardLanes(lanes []*sim.Meter) { chargeLanes(lanes) }

// ---- forkjoin cases -----------------------------------------------------

func BadLanesChain(m *sim.Meter) {
	lanes := m.Fork(4) // want `forked lane meters "lanes" is not Joined back on every path.*passed to interproc\.forwardLanes -> interproc\.chargeLanes, which never releases it`
	forwardLanes(lanes)
}

func BadLanesCond(m *sim.Meter, ok bool) {
	lanes := m.Fork(4) // want `forked lane meters "lanes" is not Joined back on every path.*passed to interproc\.joinIf, which releases it only on some paths`
	joinIf(m, lanes, ok)
}

func OkLanesHelper(m *sim.Meter) {
	lanes := m.Fork(4)
	chargeLanes(lanes)
	joinAll(m, lanes)
}
