package analysis

// White-box tests for the function-summary fixed point: convergence on
// recursive and mutually recursive cycles, constructor freshness
// propagation, chain construction, and idempotent recomputation.

import (
	"testing"
)

// spanendSummaries computes the spanend summary table over the lintdata
// module with a fresh index, returning the index.
func spanendSummaries(t *testing.T) *ModuleIndex {
	t.Helper()
	pkgs, _ := loadLintdata(t)
	idx := NewModuleIndex(pkgs)
	idx.summaries(spanendRules())
	return idx
}

func spanParam(t *testing.T, idx *ModuleIndex, fn string) ParamSummary {
	t.Helper()
	sum := idx.Summary("spanend", fn)
	if sum == nil {
		t.Fatalf("no summary for %s", fn)
	}
	for _, p := range sum.Params {
		if p.Tracked {
			return p
		}
	}
	t.Fatalf("%s has no tracked parameter", fn)
	return ParamSummary{}
}

// TestSummaryFixedPointRecursion pins the lattice outcomes on cycles: a
// self-recursive helper that releases on its base case converges to
// always-releasing (the optimistic start keeps the cycle from pessimizing
// itself), one with a non-releasing base case settles at conditional, and a
// mutually recursive pair converges to always.
func TestSummaryFixedPointRecursion(t *testing.T) {
	idx := spanendSummaries(t)
	cases := []struct {
		fn   string
		want relStatus
	}{
		{"lintdata/interproc.recEnd", relAlways},
		{"lintdata/interproc.recLeak", relCond},
		{"lintdata/interproc.pingEnd", relAlways},
		{"lintdata/interproc.pongEnd", relAlways},
		{"lintdata/interproc.endAlways", relAlways},
		{"lintdata/interproc.endIf", relCond},
		{"lintdata/interproc.endSafe", relAlways},
		{"lintdata/interproc.logSpan", relNever},
		{"lintdata/interproc.forwardLeak", relNever},
	}
	for _, c := range cases {
		if got := spanParam(t, idx, c.fn).Status; got != c.want {
			t.Errorf("%s: status %d, want %d", c.fn, got, c.want)
		}
	}
}

// TestSummaryConvergenceBounds pins that the fixed point needed more than
// one round (the cycle shapes require propagation) but stayed comfortably
// under the iteration cap, i.e. it genuinely converged rather than bailing.
func TestSummaryConvergenceBounds(t *testing.T) {
	idx := spanendSummaries(t)
	it := idx.Iterations("spanend")
	if it <= 1 {
		t.Errorf("fixed point converged in %d iteration(s); the recursive shapes should need at least 2", it)
	}
	if it >= summaryMaxIter {
		t.Errorf("fixed point hit the iteration cap (%d): chains or statuses are oscillating", it)
	}
}

// TestSummaryFreshResults pins constructor freshness through two wrapper
// levels.
func TestSummaryFreshResults(t *testing.T) {
	idx := spanendSummaries(t)
	for _, fn := range []string{"lintdata/interproc.startSpan", "lintdata/interproc.startSpan2"} {
		sum := idx.Summary("spanend", fn)
		if sum == nil {
			t.Fatalf("no summary for %s", fn)
		}
		if len(sum.Results) != 1 || !sum.Results[0].Fresh {
			t.Errorf("%s: result not marked fresh: %+v", fn, sum.Results)
		}
	}
	// An accessor returning an existing value must NOT be fresh.
	pkgs, _ := loadLintdata(t)
	cidx := NewModuleIndex(pkgs)
	cidx.summaries(closerRules())
	if sum := cidx.Summary("closer", "(*lintdata/res.Pool).Shared"); sum != nil {
		for i, r := range sum.Results {
			if r.Fresh {
				t.Errorf("Pool.Shared result %d wrongly marked fresh", i)
			}
		}
	}
	for _, fn := range []string{"lintdata/interproc.makeCursor", "lintdata/interproc.makeCursor2"} {
		sum := cidx.Summary("closer", fn)
		if sum == nil || len(sum.Results) != 1 || !sum.Results[0].Fresh {
			t.Errorf("%s: result not marked fresh", fn)
		}
	}
}

// TestSummaryChains pins the callee chain recorded on a forwarding helper.
func TestSummaryChains(t *testing.T) {
	idx := spanendSummaries(t)
	p := spanParam(t, idx, "lintdata/interproc.forwardLeak")
	if len(p.Chain) != 1 || p.Chain[0] != "interproc.logSpan" {
		t.Errorf("forwardLeak chain = %v, want [interproc.logSpan]", p.Chain)
	}
	// The self-recursive conditional releaser's chain names the cycle head
	// once and must not grow through its own cycle (that would prevent
	// convergence).
	if p := spanParam(t, idx, "lintdata/interproc.recLeak"); len(p.Chain) != 1 || p.Chain[0] != "interproc.recLeak" {
		t.Errorf("recLeak chain = %v, want [interproc.recLeak] (deduped through the cycle)", p.Chain)
	}
}

// TestSummaryIdempotent pins that recomputing the table from scratch gives
// identical summaries — the determinism contract of the whole suite rests
// on this.
func TestSummaryIdempotent(t *testing.T) {
	a := spanendSummaries(t)
	b := spanendSummaries(t)
	if len(a.names) != len(b.names) {
		t.Fatalf("index sizes differ: %d vs %d", len(a.names), len(b.names))
	}
	for _, name := range a.names {
		sa, sb := a.Summary("spanend", name), b.Summary("spanend", name)
		if (sa == nil) != (sb == nil) {
			t.Errorf("%s: summary presence differs", name)
			continue
		}
		if sa != nil && !sa.equal(sb) {
			t.Errorf("%s: summaries differ between recomputations", name)
		}
	}
	if a.Iterations("spanend") != b.Iterations("spanend") {
		t.Errorf("iteration counts differ: %d vs %d", a.Iterations("spanend"), b.Iterations("spanend"))
	}
}
