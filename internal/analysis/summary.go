package analysis

// This file implements the whole-module function-summary layer behind the
// obligation analyzers: a fixed-point pass over the module's call graph that
// computes, per function, (a) which parameters' obligations it always /
// conditionally / never releases, (b) which result indices carry fresh
// obligations (constructors wrapping an acquire are themselves acquire
// sites), and (c) whether an obligation escapes into a goroutine, a struct
// field or a global. The obligation engine (flow.go) consults these
// summaries instead of treating every call as an ownership hand-off.
//
// Summaries are keyed by types.Func.FullName(): a *types.Func seen through a
// source-checked package and the same function seen through export data are
// different objects, but their full names agree, so the string key is the
// stable cross-package identity.
//
// The lattice per parameter is relAlways > relCond > relNever. The fixed
// point starts optimistic (every matching parameter relAlways, no result
// fresh, no escapes) and descends: that way an always-releasing recursive
// helper converges to relAlways instead of being pessimized to relCond by
// its own cycle, while a helper that only releases on its recursive path
// settles at relCond. Result freshness and escape bits only ever turn on.
// Iteration visits functions in sorted FullName order, so the computation —
// and every diagnostic derived from it — is deterministic.

import (
	"go/ast"
	"go/types"
	"sort"
)

// relStatus is a parameter's release status in the summary lattice.
type relStatus int

const (
	relNever  relStatus = iota // no path through the callee releases it
	relCond                    // some paths release it, some leave it open
	relAlways                  // every path releases it (or vacuously: nil)
)

// ParamSummary describes what a function does with one parameter's
// obligation. Index 0 is the receiver for methods; explicit parameters
// follow, shifted by one.
type ParamSummary struct {
	Tracked   bool      // the parameter's type matches the analyzer's obligation type
	Status    relStatus // release status over all paths
	Escapes   bool      // stored, returned, re-sliced or passed beyond the summary's sight
	Goroutine bool      // handed into a goroutine the callee starts
	Chain     []string  // callee chain explaining a relNever/relCond status
}

// ResultSummary describes one result index of a function.
type ResultSummary struct {
	Fresh bool   // the result carries a fresh obligation acquired inside
	Desc  string // obligation description for caller diagnostics
}

// FuncSummary is one function's obligation summary under one rule set.
type FuncSummary struct {
	Params  []ParamSummary
	Results []ResultSummary
}

func (s *FuncSummary) equal(o *FuncSummary) bool {
	if len(s.Params) != len(o.Params) || len(s.Results) != len(o.Results) {
		return false
	}
	for i := range s.Params {
		a, b := s.Params[i], o.Params[i]
		if a.Tracked != b.Tracked || a.Status != b.Status || a.Escapes != b.Escapes ||
			a.Goroutine != b.Goroutine || len(a.Chain) != len(b.Chain) {
			return false
		}
		for j := range a.Chain {
			if a.Chain[j] != b.Chain[j] {
				return false
			}
		}
	}
	for i := range s.Results {
		if s.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// funcNode is one module function in the index.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pass *Pass // synthetic pass over the declaring package
}

// ModuleStats is the one-line summary-coverage figure verify.sh prints.
type ModuleStats struct {
	Functions int // functions summarized (module-wide, per rule set)
	CrossFunc int // cross-function obligation events seen while analyzing
}

// ModuleIndex holds every function declaration of the loaded packages plus
// the per-rule-set summary tables, computed lazily to a fixed point.
type ModuleIndex struct {
	funcs map[string]*funcNode
	names []string // sorted keys of funcs: the deterministic iteration order

	sums  map[string]map[string]*FuncSummary // rules.name -> FullName -> summary
	iters map[string]int                     // rules.name -> fixed-point iterations

	crossFunc int // summary-driven discharges, chains and acquires (analyze mode)
}

// summaryMaxIter caps the fixed point; chains are deduplicated and capped,
// so convergence is expected in call-graph-depth iterations, far below this.
const summaryMaxIter = 32

// maxChainLen bounds the callee chain carried in diagnostics.
const maxChainLen = 4

// summaryAnalyzer names the synthetic passes the index walks functions with;
// summary mode never reports, so the name only matters for debugging.
var summaryAnalyzer = &Analyzer{Name: "summary", Doc: "internal summary computation"}

// NewModuleIndex builds the function index over the loaded packages.
func NewModuleIndex(pkgs []*Package) *ModuleIndex {
	idx := &ModuleIndex{
		funcs: map[string]*funcNode{},
		sums:  map[string]map[string]*FuncSummary{},
		iters: map[string]int{},
	}
	for _, pkg := range pkgs {
		var discard []Diagnostic
		pass := &Pass{
			Analyzer: summaryAnalyzer,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Module:   pkg.Module,
			pkg:      pkg,
			diags:    &discard,
		}
		for _, fd := range pkg.FuncDecls() {
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			idx.funcs[fn.FullName()] = &funcNode{fn: fn, decl: fd, pass: pass}
		}
	}
	idx.names = make([]string, 0, len(idx.funcs))
	for name := range idx.funcs { //repolint:ordered sorted immediately below
		idx.names = append(idx.names, name)
	}
	sort.Strings(idx.names)
	return idx
}

// Iterations returns how many fixed-point rounds the named rule set took,
// or 0 if its summaries have not been computed.
func (idx *ModuleIndex) Iterations(rulesName string) int { return idx.iters[rulesName] }

// Summary returns the computed summary for a function by FullName under the
// named rule set, or nil.
func (idx *ModuleIndex) Summary(rulesName, fullName string) *FuncSummary {
	return idx.sums[rulesName][fullName]
}

// Stats reports the module-wide coverage counters.
func (idx *ModuleIndex) Stats() ModuleStats {
	return ModuleStats{Functions: len(idx.funcs), CrossFunc: idx.crossFunc}
}

// summaries returns the fixed-point summary table for one rule set,
// computing and caching it on first use.
func (idx *ModuleIndex) summaries(rules *obRules) map[string]*FuncSummary {
	if rules.name == "" || rules.paramType == nil {
		return nil
	}
	if s, ok := idx.sums[rules.name]; ok {
		return s
	}
	cur := map[string]*FuncSummary{}
	for _, name := range idx.names {
		cur[name] = idx.skeleton(idx.funcs[name], rules)
	}
	iters := 0
	for iters < summaryMaxIter {
		iters++
		changed := false
		for _, name := range idx.names {
			ns := idx.summarize(idx.funcs[name], rules, cur)
			if !ns.equal(cur[name]) {
				changed = true
				cur[name] = ns
			}
		}
		if !changed {
			break
		}
	}
	idx.iters[rules.name] = iters
	idx.sums[rules.name] = cur
	return cur
}

// paramVars flattens a function's receiver and parameters into one slice;
// summaries index into it (receiver at 0 for methods).
func paramVars(fn *types.Func) []*types.Var {
	sig := funcSignature(fn)
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// skeleton is the optimistic starting summary: every matching parameter
// relAlways with no escapes, every result not fresh.
func (idx *ModuleIndex) skeleton(node *funcNode, rules *obRules) *FuncSummary {
	vars := paramVars(node.fn)
	sig := funcSignature(node.fn)
	fs := &FuncSummary{
		Params:  make([]ParamSummary, len(vars)),
		Results: make([]ResultSummary, sig.Results().Len()),
	}
	for i, v := range vars {
		if _, ok := rules.paramType(node.pass, v.Type()); ok {
			fs.Params[i] = ParamSummary{Tracked: true, Status: relAlways}
		}
	}
	return fs
}

// summarize runs the obligation engine over one function body in summary
// mode: parameters matching the rule set are seeded as obligations, callee
// consults use the current table, and the per-exit release statuses are
// aggregated into the lattice.
func (idx *ModuleIndex) summarize(node *funcNode, rules *obRules, cur map[string]*FuncSummary) *FuncSummary {
	vars := paramVars(node.fn)
	sig := funcSignature(node.fn)
	fs := &FuncSummary{
		Params:  make([]ParamSummary, len(vars)),
		Results: make([]ResultSummary, sig.Results().Len()),
	}
	sb := &summaryBuilder{
		params: map[*types.Var]*paramAcc{},
		fresh:  map[int]string{},
		self:   node.fn,
	}
	fa := &flowAnalysis{
		p:        node.pass,
		rules:    rules,
		body:     node.decl.Body,
		tracked:  map[*types.Var]*obligation{},
		reported: map[*types.Var]bool{},
		mode:     modeSummary,
		idx:      idx,
		sums:     cur,
		sb:       sb,
	}
	for i, v := range vars {
		desc, ok := rules.paramType(node.pass, v.Type())
		if !ok {
			continue
		}
		fs.Params[i].Tracked = true
		fa.tracked[v] = &obligation{v: v, pos: node.decl.Pos(), desc: desc, param: i}
		sb.params[v] = &paramAcc{}
	}
	fa.collectObligations()
	fa.dropEscapes()
	env := obEnv{}
	for v, ob := range fa.tracked { //repolint:ordered env seeding, order-independent
		if ob.param >= 0 {
			env[v] = &obState{ob: ob}
		}
	}
	if !fa.walkStmts(fa.body.List, env) {
		fa.checkExit(env, fa.body.Rbrace)
	}
	for i, v := range vars {
		if !fs.Params[i].Tracked {
			continue
		}
		acc := sb.params[v]
		fs.Params[i].Escapes = acc.escaped
		fs.Params[i].Goroutine = acc.goroutine
		fs.Params[i].Status = acc.status()
		if fs.Params[i].Status != relAlways {
			fs.Params[i].Chain = acc.chain
		}
	}
	for i := range fs.Results {
		if desc, ok := sb.fresh[i]; ok {
			fs.Results[i] = ResultSummary{Fresh: true, Desc: desc}
		}
	}
	return fs
}

// summaryBuilder accumulates per-exit observations while summarizing one
// function.
type summaryBuilder struct {
	params map[*types.Var]*paramAcc
	fresh  map[int]string // result index -> obligation description
	self   *types.Func    // function under summarization, for chain self-skip
}

func (sb *summaryBuilder) setFresh(i int, desc string) {
	if _, ok := sb.fresh[i]; !ok {
		sb.fresh[i] = desc
	}
}

// paramAcc accumulates one parameter's per-exit release outcomes.
type paramAcc struct {
	rel, cond, open    int
	chain              []string
	escaped, goroutine bool
}

// status folds the exit counts into the lattice. A function with no
// recorded exits (an infinite loop, or a parameter that escaped before the
// walk) is vacuously relAlways; the escape bits carry the real story then.
func (a *paramAcc) status() relStatus {
	switch {
	case a.open == 0 && a.cond == 0:
		return relAlways
	case a.rel == 0 && a.cond == 0:
		return relNever
	default:
		return relCond
	}
}

// shortFuncName renders a function for callee chains: package base plus
// name ("interproc.logSpan", "mw.mergeShards").
func shortFuncName(f *types.Func) string {
	return pkgBase(f.Pkg()) + "." + f.Name()
}

// buildChain prefixes the callee onto its own chain, skipping the function
// being summarized (self-recursion would otherwise grow the chain every
// fixed-point round), duplicates, and anything past the length cap.
func buildChain(self string, callee *types.Func, calleeChain []string) []string {
	name := shortFuncName(callee)
	out := []string{name}
	for _, c := range calleeChain {
		if len(out) >= maxChainLen {
			break
		}
		if c == name || c == self {
			continue
		}
		dup := false
		for _, have := range out {
			if have == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}
