// Package serve hosts the multi-tenant serving layer: a fleet scheduler that
// admits N concurrent decision-tree builds against one engine — dividing the
// middleware memory budget fairly, sharing physical table scans across
// sessions, and simulating every session on its own virtual clock — plus the
// wire daemon (daemon.go) that exposes the fleet over the network protocol
// cmd/served and the ccsql database/sql driver speak.
//
// Determinism: each session's clock is a pure function of the work charged
// to it (sim.Clocks), sessions are admitted in arrival order, solo steps go
// to the session furthest behind in virtual time (ties on id), and shared
// scans feed their consumers in session-id order. The whole fleet therefore
// simulates identically regardless of host scheduling, and any session's
// tree is byte-identical to the tree a single-tenant build produces from the
// same data and options.
package serve

import (
	"fmt"

	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// FleetConfig tunes the multi-tenant scheduler.
type FleetConfig struct {
	// Base is the middleware configuration template every session builds
	// with. Its Memory and Session fields are managed by the fleet: Memory
	// is re-sliced from TotalMemory as sessions join and leave, Session is
	// the session id.
	Base mw.Config
	// TotalMemory is the physical CC-memory budget shared by all running
	// sessions, divided evenly among them (0 = unlimited for everyone).
	TotalMemory int64
	// MaxSessions caps the concurrently running sessions; arrivals beyond
	// the cap wait for a slot in arrival order (0 = unlimited).
	MaxSessions int
	// ScanSharing attaches concurrent sessions whose next batch scans the
	// server table to one physical columnar scan, charging the page I/O
	// once. Requires the columnar scan path (mw.ColumnarAuto + AccessScan).
	ScanSharing bool
}

// Session is one tenant unit of work — a tree build, or an in-database
// scoring pass over the served table — with its own virtual clock, created
// at admission time. Builds carry a middleware and resumable builder;
// scoring sessions carry a Scorer and finish in one scan.
type Session struct {
	ID    int
	Label string

	opt       dtree.Options
	arrivalNS int64

	// Scoring sessions only (model non-nil marks the kind).
	model   *engine.Model
	workers int

	meter    *sim.Meter
	m        *mw.Middleware
	b        *dtree.Builder
	scorer   *mw.Scorer
	tree     *dtree.Tree
	score    *engine.ScoreResult
	finishNS int64
	admitted bool
	done     bool
}

// Tree returns the session's finished tree (nil before Run completes, and
// always nil for scoring sessions).
func (s *Session) Tree() *dtree.Tree { return s.tree }

// Score returns a scoring session's predictions (nil before Run completes,
// and always nil for build sessions).
func (s *Session) Score() *engine.ScoreResult { return s.score }

// Meter returns the session's virtual clock (nil before admission).
func (s *Session) Meter() *sim.Meter { return s.meter }

// ArrivalNS returns the session's arrival offset in virtual nanoseconds.
func (s *Session) ArrivalNS() int64 { return s.arrivalNS }

// FinishNS returns the virtual time the session's build completed.
func (s *Session) FinishNS() int64 { return s.finishNS }

// LatencyNS returns the session's end-to-end virtual latency: admission
// wait plus build time.
func (s *Session) LatencyNS() int64 { return s.finishNS - s.arrivalNS }

// Close releases the session's middleware resources (staging files). Run
// closes finished sessions itself; Close exists for error paths and is
// idempotent.
func (s *Session) Close() error {
	if s.m == nil {
		return nil
	}
	return s.m.Close()
}

// Fleet runs a set of sessions against one engine server.
type Fleet struct {
	srv    *engine.Server
	cfg    FleetConfig
	col    *obs.Collector
	clocks *sim.Clocks
	io     *sim.Meter

	sessions []*Session
	byID     map[int]*Session
	lastID   int
	freeNS   int64
	ran      bool

	// runHook is a test seam, always nil in production: invoked once per
	// scheduling round after admission, an error return simulates a mid-run
	// failure so tests can assert no admitted session's resources leak.
	runHook func() error
}

// NewFleet creates a fleet over the server. col may be nil (no
// observability); each session then runs untraced.
func NewFleet(srv *engine.Server, col *obs.Collector, cfg FleetConfig) (*Fleet, error) {
	if cfg.TotalMemory < 0 || cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("serve: negative fleet limit")
	}
	if cfg.ScanSharing {
		if cfg.Base.Columnar == mw.ColumnarOff {
			return nil, fmt.Errorf("serve: scan sharing requires the columnar scan path (mw.ColumnarAuto)")
		}
		if cfg.Base.Access != mw.AccessScan {
			return nil, fmt.Errorf("serve: scan sharing requires sequential server access (mw.AccessScan)")
		}
		if !srv.ColumnarAvailable() {
			return nil, fmt.Errorf("serve: scan sharing requires a columnar copy of the table")
		}
	}
	costs := srv.Meter().Costs()
	return &Fleet{
		srv:    srv,
		cfg:    cfg,
		col:    col,
		clocks: sim.NewClocks(costs),
		io:     sim.NewMeter(costs),
		byID:   make(map[int]*Session),
	}, nil
}

// Open registers a session that will build a tree with the given options,
// arriving at the given virtual offset. Sessions must be opened in
// non-decreasing arrival order (use sim.Arrivals for a seeded schedule);
// admission happens inside Run.
func (f *Fleet) Open(label string, opt dtree.Options, arrivalNS int64) (*Session, error) {
	if f.ran {
		return nil, fmt.Errorf("serve: fleet already ran")
	}
	if n := len(f.sessions); n > 0 && arrivalNS < f.sessions[n-1].arrivalNS {
		return nil, fmt.Errorf("serve: session arrivals must be non-decreasing")
	}
	f.lastID++
	s := &Session{ID: f.lastID, Label: label, opt: opt, arrivalNS: arrivalNS}
	if s.Label == "" {
		s.Label = fmt.Sprintf("session-%d", s.ID)
	}
	f.sessions = append(f.sessions, s)
	f.byID[s.ID] = s
	return s, nil
}

// OpenScore registers a scoring session: the model applied to the served
// table with the given scan parallelism (workers < 1 scores single-lane).
// Scoring sessions obey the same arrival-order and admission rules as
// builds and join shared scans with them.
func (f *Fleet) OpenScore(label string, model *engine.Model, workers int, arrivalNS int64) (*Session, error) {
	if f.ran {
		return nil, fmt.Errorf("serve: fleet already ran")
	}
	if model == nil {
		return nil, fmt.Errorf("serve: scoring session needs a model")
	}
	if n := len(f.sessions); n > 0 && arrivalNS < f.sessions[n-1].arrivalNS {
		return nil, fmt.Errorf("serve: session arrivals must be non-decreasing")
	}
	f.lastID++
	s := &Session{ID: f.lastID, Label: label, model: model, workers: workers, arrivalNS: arrivalNS}
	if s.Label == "" {
		s.Label = fmt.Sprintf("score-%d", s.ID)
	}
	f.sessions = append(f.sessions, s)
	f.byID[s.ID] = s
	return s, nil
}

// Sessions returns the fleet's sessions in arrival order.
func (f *Fleet) Sessions() []*Session { return f.sessions }

// IOMeter returns the shared-scan clock domain: cursor opens and page I/O of
// shared scans are charged here, once per cohort.
func (f *Fleet) IOMeter() *sim.Meter { return f.io }

// MakespanNS returns the latest session finish time after Run.
func (f *Fleet) MakespanNS() int64 {
	var max int64
	for _, s := range f.sessions {
		if s.finishNS > max {
			max = s.finishNS
		}
	}
	return max
}

// TotalServerPages returns the modeled server page reads of the whole run:
// every session's own reads plus the shared-scan reads charged once to the
// io meter. This is the quantity scan sharing reduces.
func (f *Fleet) TotalServerPages() int64 {
	total := f.io.Count(sim.CtrServerPages)
	for _, s := range f.sessions {
		if s.meter != nil {
			total += s.meter.Count(sim.CtrServerPages)
		}
	}
	return total
}

// admit opens the session's clock, advancing it past its admission wait
// (arrivals beyond the session cap wait for a slot), wires its
// observability proc, and creates its middleware view and builder.
func (f *Fleet) admit(s *Session) error {
	s.meter = f.clocks.Open(s.ID, s.arrivalNS)
	if wait := f.freeNS - int64(s.meter.Now()); wait > 0 {
		// The slot the session waited for freed at freeNS; it starts there.
		s.meter.Advance(wait)
	}
	var tr *obs.Tracer
	cfg := f.cfg.Base
	cfg.Session = s.ID
	cfg.Memory = f.cfg.TotalMemory
	if f.col != nil {
		t, pm := f.col.Proc(s.Label, s.meter)
		tr = t
		cfg.Metrics = pm
	}
	view := f.srv.View(s.meter, tr)
	if s.model != nil {
		sc, err := mw.NewScorer(view, s.model, s.workers)
		if err != nil {
			return err
		}
		s.scorer = sc
		s.admitted = true
		return nil
	}
	m, err := mw.New(view, cfg)
	if err != nil {
		return err
	}
	s.m = m
	b, err := dtree.NewBuilder(m, s.opt)
	if err != nil {
		m.Close()
		return err
	}
	s.b = b
	s.admitted = true
	return nil
}

// reslice divides the fleet memory budget evenly among the running sessions.
func (f *Fleet) reslice(running []*Session) {
	if f.cfg.TotalMemory == 0 || len(running) == 0 {
		return
	}
	slice := f.cfg.TotalMemory / int64(len(running))
	if slice < 1 {
		slice = 1
	}
	for _, s := range running {
		if s.m != nil { // scoring sessions hold no CC memory
			s.m.SetMemoryBudget(slice)
		}
	}
}

// Run admits and executes every opened session to completion. Solo steps go
// to the running session furthest behind in virtual time; with ScanSharing,
// rounds where two or more sessions' next batch is a shareable server scan
// run those batches against one physical scan. Returns the first error.
func (f *Fleet) Run() (err error) {
	if f.ran {
		return fmt.Errorf("serve: fleet already ran")
	}
	f.ran = true
	// An error abandons the round mid-flight: release every admitted,
	// unfinished session's middleware (staging files) before returning.
	// Middleware.Close is idempotent, so retired sessions are unaffected.
	defer func() {
		if err != nil {
			for _, s := range f.sessions {
				if s.admitted && !s.done {
					s.Close()
				}
			}
		}
	}()
	pending := append([]*Session(nil), f.sessions...)
	var running []*Session

	admit := func() error {
		grew := false
		for len(pending) > 0 && (f.cfg.MaxSessions == 0 || len(running) < f.cfg.MaxSessions) {
			s := pending[0]
			pending = pending[1:]
			if err := f.admit(s); err != nil {
				return err
			}
			running = append(running, s)
			grew = true
		}
		if grew {
			f.reslice(running)
		}
		return nil
	}

	for {
		if err := admit(); err != nil {
			return err
		}
		if f.runHook != nil {
			if err := f.runHook(); err != nil {
				return err
			}
		}
		if len(running) == 0 {
			return nil
		}

		var cohort []*Session
		if f.cfg.ScanSharing {
			for _, s := range running {
				if s.scorer != nil {
					if s.scorer.Shareable() {
						cohort = append(cohort, s)
					}
				} else if s.m.NextBatchShareable() {
					cohort = append(cohort, s)
				}
			}
		}
		if len(cohort) >= 2 {
			if err := f.sharedRound(cohort); err != nil {
				return err
			}
		} else {
			// Fair virtual-time scheduling: the session furthest behind
			// runs one batch. The clock set contains exactly the running
			// sessions.
			id, ok := f.clocks.Next(nil)
			if !ok {
				return fmt.Errorf("serve: no running session has an open clock")
			}
			s := f.byID[id]
			if s.scorer != nil {
				if err := s.scorer.RunSolo(); err != nil {
					return err
				}
			} else {
				results, err := s.m.Step()
				if err != nil {
					return err
				}
				if err := s.b.Feed(results); err != nil {
					return err
				}
			}
		}

		// Retire finished sessions: their slot frees at their finish time,
		// and the survivors' budgets re-slice.
		out := running[:0]
		retired := false
		for _, s := range running {
			if s.scorer != nil {
				if !s.scorer.Done() {
					out = append(out, s)
					continue
				}
				s.score = s.scorer.Result()
			} else {
				if s.b.Pending() > 0 {
					out = append(out, s)
					continue
				}
				tree, err := s.b.Finish()
				if err != nil {
					return err
				}
				s.tree = tree
			}
			s.finishNS = int64(s.meter.Now())
			if s.finishNS > f.freeNS {
				f.freeNS = s.finishNS
			}
			if err := s.Close(); err != nil {
				return err
			}
			f.clocks.Close(s.ID)
			s.done = true
			retired = true
		}
		running = out
		if retired {
			f.reslice(running)
		}
	}
}

// sharedRound runs one batch for every cohort session — build batches and
// scoring passes alike — against a single physical columnar scan. Sessions
// begin in id order; build batches that turn out not to be shareable after
// scheduling execute solo inside Begin. The physical scan charges the
// cohort's cursor open and page I/O once, to the fleet io meter, and every
// participant's clock then absorbs that I/O wait.
func (f *Fleet) sharedRound(cohort []*Session) error {
	type part struct {
		s        *Session
		sb       *mw.SharedBatch // build sessions
		cons     *engine.ScanConsumer
		needCols []int // nil = all columns
	}
	var parts []part
	for _, s := range cohort {
		if s.scorer != nil {
			cons, needCols, err := s.scorer.BeginShared()
			if err != nil {
				return err
			}
			parts = append(parts, part{s: s, cons: cons, needCols: needCols})
			continue
		}
		sb, results, err := s.m.BeginSharedBatch()
		if err != nil {
			return err
		}
		if sb == nil {
			if err := s.b.Feed(results); err != nil {
				return err
			}
			continue
		}
		parts = append(parts, part{s: s, sb: sb, cons: sb.Consumer(), needCols: sb.NeedCols()})
	}
	if len(parts) == 0 {
		return nil
	}

	// The physical scan reads the union of the columns any participant
	// needs; nil (all columns) from any participant forces a full read.
	union := true
	need := make([]bool, f.srv.Schema().NumCols())
	for _, p := range parts {
		if p.needCols == nil {
			union = false
			break
		}
		for _, c := range p.needCols {
			need[c] = true
		}
	}
	var cols []int
	if union {
		cols = make([]int, 0, len(need)) // non-nil: an empty union reads no pages
		for c, ok := range need {
			if ok {
				cols = append(cols, c)
			}
		}
	}

	cons := make([]*engine.ScanConsumer, len(parts))
	for i, p := range parts {
		cons[i] = p.cons
	}
	ioStart := int64(f.io.Now())
	f.srv.ScanColumnarShared(cons, cols, f.io)
	ioElapsed := int64(f.io.Now()) - ioStart

	for _, p := range parts {
		if p.s.scorer != nil {
			p.s.scorer.FinishShared(ioElapsed)
			continue
		}
		results, err := p.sb.Finish(ioElapsed)
		if err != nil {
			return err
		}
		if err := p.s.b.Feed(results); err != nil {
			return err
		}
	}
	return nil
}
