package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/sim"
)

// testServer loads a census dataset into a fresh engine.
func testServer(t *testing.T, rows int) *engine.Server {
	t.Helper()
	ds, err := datagen.GenerateCensus(datagen.CensusConfig{Seed: 7, Rows: rows}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := engine.NewServer(engine.New(sim.NewDefaultMeter(), 0), "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// soloBuild runs a plain single-tenant build on its own engine and returns
// the tree.
func soloBuild(t *testing.T, rows int, cfg mw.Config, opt dtree.Options) *dtree.Tree {
	t.Helper()
	srv := testServer(t, rows)
	m, err := mw.New(srv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tree, err := dtree.Build(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func baseCfg(workers int) mw.Config {
	return mw.Config{Staging: mw.StageFileAndMemory, Workers: workers}
}

var testOpt = dtree.Options{MaxDepth: 6, MinRows: 20}

// runFleetN builds n identical sessions, all arriving at virtual zero, and
// returns the finished fleet.
func runFleetN(t *testing.T, srv *engine.Server, n int, cfg FleetConfig, opt dtree.Options) *Fleet {
	t.Helper()
	f, err := NewFleet(srv, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := f.Open("", opt, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetSingleSessionMatchesSolo: a one-session fleet is exactly a
// single-tenant build — same tree, same modeled page reads.
func TestFleetSingleSessionMatchesSolo(t *testing.T) {
	const rows = 1500
	solo := soloBuild(t, rows, baseCfg(1), testOpt)

	srv := testServer(t, rows)
	f := runFleetN(t, srv, 1, FleetConfig{Base: baseCfg(1), ScanSharing: true}, testOpt)
	s := f.Sessions()[0]
	if s.Tree() == nil {
		t.Fatal("session has no tree")
	}
	if got, want := s.Tree().Dump(), solo.Dump(); got != want {
		t.Errorf("fleet tree differs from solo build:\n%s\nwant:\n%s", got, want)
	}
	if f.IOMeter().Count(sim.CtrServerPages) != 0 {
		t.Errorf("single session charged %d shared pages; sharing needs a cohort of 2",
			f.IOMeter().Count(sim.CtrServerPages))
	}
	if f.TotalServerPages() == 0 {
		t.Error("session charged no server pages")
	}
}

// TestFleetScanSharingReducesPages: four concurrent same-table builds with
// sharing on read fewer total pages than with sharing off, and every session
// still gets the single-tenant tree.
func TestFleetScanSharingReducesPages(t *testing.T) {
	const rows, n = 1500, 4
	solo := soloBuild(t, rows, baseCfg(1), testOpt)

	off := runFleetN(t, testServer(t, rows),
		n, FleetConfig{Base: baseCfg(1), ScanSharing: false}, testOpt)
	on := runFleetN(t, testServer(t, rows),
		n, FleetConfig{Base: baseCfg(1), ScanSharing: true}, testOpt)

	for _, f := range []*Fleet{off, on} {
		for _, s := range f.Sessions() {
			if !dtree.Equal(s.Tree(), solo) {
				t.Fatalf("session %d tree differs from the single-tenant build", s.ID)
			}
		}
	}
	if onP, offP := on.TotalServerPages(), off.TotalServerPages(); onP >= offP {
		t.Errorf("scan sharing did not reduce pages: on=%d off=%d", onP, offP)
	} else {
		t.Logf("pages: sharing on %d, off %d (%.2fx)", onP, offP, float64(offP)/float64(onP))
	}
	if on.IOMeter().Count(sim.CtrServerPages) == 0 {
		t.Error("sharing-on run charged no pages to the shared io meter")
	}
}

// TestFleetSharingMatchesSerial: two concurrent sessions with different
// options, sharing scans, produce exactly the trees serial solo runs produce.
func TestFleetSharingMatchesSerial(t *testing.T) {
	const rows = 1500
	optA := dtree.Options{MaxDepth: 4, MinRows: 40}
	optB := dtree.Options{MaxDepth: 6, MinRows: 10}
	soloA := soloBuild(t, rows, baseCfg(1), optA)
	soloB := soloBuild(t, rows, baseCfg(1), optB)

	f, err := NewFleet(testServer(t, rows), nil, FleetConfig{Base: baseCfg(1), ScanSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := f.Open("a", optA, 0)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := f.Open("b", optB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if !dtree.Equal(sa.Tree(), soloA) {
		t.Error("session a: shared-scan tree differs from serial build")
	}
	if !dtree.Equal(sb.Tree(), soloB) {
		t.Error("session b: shared-scan tree differs from serial build")
	}
}

// TestFleetDeterminism: the same fleet configuration replayed twice yields
// identical trees, clocks and page totals.
func TestFleetDeterminism(t *testing.T) {
	const rows, n = 1200, 3
	run := func() *Fleet {
		return runFleetN(t, testServer(t, rows),
			n, FleetConfig{Base: baseCfg(2), TotalMemory: 1 << 20, ScanSharing: true}, testOpt)
	}
	a, b := run(), run()
	if a.TotalServerPages() != b.TotalServerPages() {
		t.Errorf("page totals differ across replays: %d vs %d", a.TotalServerPages(), b.TotalServerPages())
	}
	if a.MakespanNS() != b.MakespanNS() {
		t.Errorf("makespans differ across replays: %d vs %d", a.MakespanNS(), b.MakespanNS())
	}
	for i := range a.Sessions() {
		sa, sb := a.Sessions()[i], b.Sessions()[i]
		if sa.Tree().Dump() != sb.Tree().Dump() {
			t.Errorf("session %d trees differ across replays", sa.ID)
		}
		if sa.FinishNS() != sb.FinishNS() {
			t.Errorf("session %d finish times differ: %d vs %d", sa.ID, sa.FinishNS(), sb.FinishNS())
		}
	}
}

// TestFleetAdmissionCap: with MaxSessions 1, sessions run strictly one after
// another — no cohort ever forms, later sessions wait for the slot, and
// finish times are strictly increasing.
func TestFleetAdmissionCap(t *testing.T) {
	const rows, n = 1200, 3
	f := runFleetN(t, testServer(t, rows),
		n, FleetConfig{Base: baseCfg(1), MaxSessions: 1, ScanSharing: true}, testOpt)
	if got := f.IOMeter().Count(sim.CtrServerPages); got != 0 {
		t.Errorf("capped fleet shared %d pages; sessions never overlap", got)
	}
	ss := f.Sessions()
	for i := 1; i < len(ss); i++ {
		if ss[i].FinishNS() <= ss[i-1].FinishNS() {
			t.Errorf("session %d finished at %d, not after session %d at %d",
				ss[i].ID, ss[i].FinishNS(), ss[i-1].ID, ss[i-1].FinishNS())
		}
		if ss[i].LatencyNS() <= ss[i-1].FinishNS()-ss[i].ArrivalNS()-1 {
			t.Errorf("session %d latency %d does not include its admission wait", ss[i].ID, ss[i].LatencyNS())
		}
	}
}

// TestFleetStaggeredArrivals: a seeded arrival schedule is accepted and
// arrival offsets show up in session latencies.
func TestFleetStaggeredArrivals(t *testing.T) {
	const rows, n = 1200, 3
	srv := testServer(t, rows)
	f, err := NewFleet(srv, nil, FleetConfig{Base: baseCfg(1), ScanSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	arr := sim.Arrivals(42, n, 1_000_000)
	for i := 0; i < n; i++ {
		if _, err := f.Open("", testOpt, arr[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order arrivals are rejected.
	if _, err := f.Open("late", testOpt, arr[0]); err == nil && arr[n-1] > arr[0] {
		t.Error("out-of-order arrival accepted")
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	for i, s := range f.Sessions()[:n] {
		if s.ArrivalNS() != arr[i] {
			t.Errorf("session %d arrival %d, want %d", s.ID, s.ArrivalNS(), arr[i])
		}
		if s.FinishNS() < s.ArrivalNS() {
			t.Errorf("session %d finished before it arrived", s.ID)
		}
	}
}

// TestNewFleetValidation: scan sharing requires the columnar scan path.
func TestNewFleetValidation(t *testing.T) {
	srv := testServer(t, 200)
	cases := []struct {
		name string
		cfg  FleetConfig
		want string
	}{
		{"columnar-off", FleetConfig{Base: mw.Config{Columnar: mw.ColumnarOff}, ScanSharing: true}, "columnar"},
		{"copy-table", FleetConfig{Base: mw.Config{Access: mw.AccessCopyTable}, ScanSharing: true}, "sequential"},
		{"negative-memory", FleetConfig{TotalMemory: -1}, "negative"},
		{"negative-cap", FleetConfig{MaxSessions: -1}, "negative"},
	}
	for _, tc := range cases {
		if _, err := NewFleet(srv, nil, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

// stageDirs returns the names of middleware staging temp dirs currently on
// disk (mw's fileStore creates one per session when Config.Dir is empty).
func stageDirs(t *testing.T) map[string]bool {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "mwstage-*"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(matches))
	for _, m := range matches {
		out[m] = true
	}
	return out
}

// TestFleetRunErrorClosesSessions: a mid-run failure must release every
// admitted session's middleware — concretely, the per-session staging
// directories created at admission must be gone after Run returns the error.
// (Before the fix, Run's error returns left them on disk for the process
// lifetime.)
func TestFleetRunErrorClosesSessions(t *testing.T) {
	before := stageDirs(t)
	srv := testServer(t, 800)
	f, err := NewFleet(srv, nil, FleetConfig{Base: baseCfg(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Open("", testOpt, 0); err != nil {
			t.Fatal(err)
		}
	}
	injected := errors.New("injected mid-run failure")
	rounds := 0
	f.runHook = func() error {
		rounds++
		if rounds >= 3 {
			return injected
		}
		return nil
	}
	if err := f.Run(); !errors.Is(err, injected) {
		t.Fatalf("Run() = %v, want the injected error", err)
	}
	for _, s := range f.Sessions() {
		if !s.admitted {
			t.Fatalf("session %d was never admitted", s.ID)
		}
	}
	for dir := range stageDirs(t) {
		if !before[dir] {
			t.Errorf("staging dir %s leaked past the failed Run", dir)
		}
	}
	// Close stays idempotent after the cleanup.
	for _, s := range f.Sessions() {
		if err := s.Close(); err != nil {
			t.Errorf("second Close of session %d: %v", s.ID, err)
		}
	}
}
