package serve

import (
	"bytes"
	"database/sql"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	_ "repro/driver" // registers the ccsql database/sql driver
	"repro/internal/dtree"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// startDaemon serves a fresh census engine on a loopback port and returns
// the address plus a shutdown func.
func startDaemon(t *testing.T, rows, workers int, sharing bool) (string, func()) {
	t.Helper()
	srv := testServer(t, rows)
	d := NewDaemon(srv, DaemonConfig{
		Fleet: FleetConfig{Base: baseCfg(workers), MaxSessions: 8, ScanSharing: sharing},
		Seed:  1,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Serve(ln) }()
	return ln.Addr().String(), func() {
		d.Drain(ln)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// queryStrings runs one statement through the ccsql driver and returns the
// first column of every row as strings.
func queryStrings(t *testing.T, db *sql.DB, stmt string) []string {
	t.Helper()
	rows, err := db.Query(stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	defer rows.Close()
	var out []string
	for rows.Next() {
		var s string
		if err := rows.Scan(&s); err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// inProcessArm mirrors exactly what the daemon's fleet does for a solitary
// session — a fresh virtual clock at the session's zero arrival, the
// "session-1" observability proc, session id 1 — but drives the build with
// the plain in-process dtree.Build API. Returns the tree and the ndjson
// trace lines.
func inProcessArm(t *testing.T, rows, workers int, opt dtree.Options) (*dtree.Tree, []string) {
	t.Helper()
	srv := testServer(t, rows)
	meter := sim.NewMeter(srv.Meter().Costs())
	col := obs.NewCollector(true, false)
	tr, pm := col.Proc("session-1", meter)
	cfg := baseCfg(workers)
	cfg.Session = 1
	cfg.Metrics = pm
	m, err := mw.New(srv.View(meter, tr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tree, err := dtree.Build(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.WriteTrace(&buf, "ndjson"); err != nil {
		t.Fatal(err)
	}
	return tree, strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
}

// TestDaemonEquivalence: a build submitted over the wire through the stock
// database/sql driver returns the byte-identical tree dump AND the
// byte-identical execution trace of an in-process dtree.Build, at one and at
// four workers.
func TestDaemonEquivalence(t *testing.T) {
	const rows = 1500
	opt := dtree.Options{MaxDepth: 6, MinRows: 20}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			wantTree, wantTrace := inProcessArm(t, rows, workers, opt)

			addr, stop := startDaemon(t, rows, workers, true)
			defer stop()
			db, err := sql.Open("ccsql", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			// One connection end to end: builds are serialized anyway, and a
			// single conn exercises statement-after-statement reuse.
			db.SetMaxOpenConns(1)

			build := fmt.Sprintf("BUILD TREE MAXDEPTH %d MINROWS %d WORKERS %d OUTPUT ",
				opt.MaxDepth, opt.MinRows, workers)
			gotTree := queryStrings(t, db, build+"TREE")
			if want := wantTree.DumpLines(); !equalLines(gotTree, want) {
				t.Errorf("daemon tree differs from in-process build:\n%s\nwant:\n%s",
					strings.Join(gotTree, "\n"), strings.Join(want, "\n"))
			}

			gotTrace := queryStrings(t, db, build+"TRACE")
			if !equalLines(gotTrace, wantTrace) {
				t.Errorf("daemon trace differs from in-process build: %d vs %d lines",
					len(gotTrace), len(wantTrace))
				for i := 0; i < len(gotTrace) && i < len(wantTrace); i++ {
					if gotTrace[i] != wantTrace[i] {
						t.Errorf("first divergence at line %d:\n got %s\nwant %s", i, gotTrace[i], wantTrace[i])
						break
					}
				}
			}
		})
	}
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDaemonConcurrentClients: several clients submitting builds at once —
// the scan-sharing cohort case — each still receive exactly the
// single-tenant tree.
func TestDaemonConcurrentClients(t *testing.T) {
	const rows, clients = 1200, 4
	opt := dtree.Options{MaxDepth: 6, MinRows: 20}
	want, _ := inProcessArm(t, rows, 1, opt)
	wantLines := want.DumpLines()

	addr, stop := startDaemon(t, rows, 1, true)
	defer stop()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			db, err := sql.Open("ccsql", addr)
			if err != nil {
				errs <- err
				return
			}
			defer db.Close()
			rows, err := db.Query("BUILD TREE MAXDEPTH 6 MINROWS 20 OUTPUT TREE")
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			defer rows.Close()
			var got []string
			for rows.Next() {
				var s string
				if err := rows.Scan(&s); err != nil {
					errs <- err
					return
				}
				got = append(got, s)
			}
			if err := rows.Err(); err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			if !equalLines(got, wantLines) {
				errs <- fmt.Errorf("client %d: tree differs from single-tenant build", c)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDriverSQL: plain SQL over the driver — streaming row batches, typed
// scans, statement errors surfacing without killing the connection, and the
// protocol's unsupported-features errors.
func TestDriverSQL(t *testing.T) {
	addr, stop := startDaemon(t, 1200, 1, false)
	defer stop()
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM cases").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1200 {
		t.Errorf("COUNT(*) = %d, want 1200", n)
	}

	// >BatchRows result rows stream across several RowBatch frames.
	rows, err := db.Query("SELECT * FROM cases")
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	for rows.Next() {
		streamed++
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if streamed != 1200 {
		t.Errorf("streamed %d rows, want 1200", streamed)
	}

	// A bad statement is an error, and the connection stays usable.
	if _, err := db.Query("SELECT * FROM nonexistent"); err == nil {
		t.Error("want error for missing table")
	}
	if err := db.QueryRow("SELECT COUNT(*) FROM cases").Scan(&n); err != nil {
		t.Errorf("connection unusable after statement error: %v", err)
	}

	if _, err := db.Begin(); err == nil {
		t.Error("want error for transactions")
	}
	if _, err := db.Query("SELECT * FROM cases WHERE class = ?", 1); err == nil {
		t.Error("want error for placeholder parameters")
	}
	if _, err := db.Query("BUILD TREE WORKERS 3"); err == nil ||
		!strings.Contains(err.Error(), "WORKERS") {
		t.Errorf("want WORKERS mismatch error, got %v", err)
	}
}

// TestDaemonDrain: draining completes an in-flight statement, then refuses
// new work and returns once every handler exits.
func TestDaemonDrain(t *testing.T) {
	srv := testServer(t, 800)
	d := NewDaemon(srv, DaemonConfig{
		Fleet: FleetConfig{Base: baseCfg(1), ScanSharing: true},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Serve(ln) }()

	db, err := sql.Open("ccsql", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	db.SetMaxOpenConns(1)
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM cases").Scan(&n); err != nil {
		t.Fatal(err)
	}

	d.Drain(ln)
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	// The drained daemon's listener is gone; new dials fail.
	if _, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		t.Error("dial succeeded after drain")
	}
	db.Close()
	// Drain is idempotent.
	d.Drain(ln)
}
