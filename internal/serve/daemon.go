package serve

import (
	"bytes"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/wire"
)

// Daemon serves one engine over the wire protocol: plain SQL statements
// execute directly, and BUILD TREE commands are funneled through the fleet
// scheduler so that tree builds submitted by concurrent clients run as one
// multi-tenant cohort — sharing scans and splitting the memory budget —
// while each still receives its own deterministic result.
//
// Concurrency model: connection handlers are goroutines, but everything that
// touches the engine is serialized — SQL statements under the engine mutex,
// and builds by a single coordinator goroutine that drains the build queue
// into fleet runs. Builds queued while a run executes batch into the next
// run, which is exactly the window in which scan sharing pays.
type Daemon struct {
	srv *engine.Server
	cfg DaemonConfig

	emu sync.Mutex // engine access: SQL statements and fleet runs

	bmu    sync.Mutex
	bcond  *sync.Cond
	bqueue []*buildReq
	runSeq int64
	closed bool

	cmu      sync.Mutex
	conns    map[net.Conn]bool
	draining bool

	wg sync.WaitGroup // connection handlers + build coordinator
}

// DaemonConfig tunes the daemon.
type DaemonConfig struct {
	// Fleet is the multi-tenant scheduling configuration for BUILD TREE
	// cohorts (session cap, memory budget, scan sharing).
	Fleet FleetConfig
	// Seed seeds the virtual arrival schedule of each fleet run
	// (sim.Arrivals); the run sequence number is folded in so distinct runs
	// draw distinct schedules.
	Seed int64
	// MeanGapNS is the mean virtual inter-arrival gap between the sessions
	// of one fleet run. Zero makes all sessions of a run arrive at virtual
	// time zero — the reproducible setting the equivalence tests use.
	MeanGapNS int64
}

// NewDaemon creates a daemon over the server.
func NewDaemon(srv *engine.Server, cfg DaemonConfig) *Daemon {
	d := &Daemon{srv: srv, cfg: cfg, conns: make(map[net.Conn]bool)}
	d.bcond = sync.NewCond(&d.bmu)
	return d
}

// Serve accepts connections until Drain closes the listener. It returns nil
// on a drain-initiated stop and the accept error otherwise.
func (d *Daemon) Serve(ln net.Listener) error {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.buildLoop()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			d.cmu.Lock()
			stopped := d.draining
			d.cmu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		d.cmu.Lock()
		if d.draining {
			d.cmu.Unlock()
			conn.Close()
			continue
		}
		d.conns[conn] = true
		d.cmu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handle(conn)
		}()
	}
}

// Drain stops the daemon gracefully: the listener closes, idle connections
// are unblocked (their next read fails), in-flight statements run to
// completion and flush their responses, and Drain returns when every handler
// has exited. ln is the listener given to Serve.
func (d *Daemon) Drain(ln net.Listener) {
	d.cmu.Lock()
	if d.draining {
		d.cmu.Unlock()
		d.wg.Wait()
		return
	}
	d.draining = true
	for c := range d.conns { //repolint:ordered deadline fan-out, order-free
		// Unblock handlers parked in ReadFrame; a handler mid-statement is
		// not reading and finishes its statement (and response) first.
		c.SetReadDeadline(time.Unix(0, 0))
	}
	d.cmu.Unlock()
	ln.Close()
	d.bmu.Lock()
	d.closed = true
	d.bcond.Broadcast()
	d.bmu.Unlock()
	d.wg.Wait()
}

// handle speaks the protocol on one connection.
func (d *Daemon) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		d.cmu.Lock()
		delete(d.conns, conn)
		d.cmu.Unlock()
	}()

	var hello wire.Hello
	if err := wire.Expect(conn, wire.THello, &hello); err != nil {
		return
	}
	if hello.Version != wire.Version {
		wire.WriteFrame(conn, wire.TError,
			wire.Error{Msg: fmt.Sprintf("served: protocol version %d not supported (want %d)", hello.Version, wire.Version)})
		return
	}
	ack := wire.HelloAck{Version: wire.Version, Table: d.srv.TableName(), Rows: d.srv.NumRows()}
	if err := wire.WriteFrame(conn, wire.THelloAck, ack); err != nil {
		return
	}

	for {
		t, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // disconnect or drain deadline
		}
		switch t {
		case wire.TGoodbye:
			return
		case wire.TQuery:
			var q wire.Query
			if err := unmarshal(payload, &q); err != nil {
				wire.WriteFrame(conn, wire.TError, wire.Error{Msg: err.Error()})
				continue
			}
			if err := d.serveQuery(conn, q.SQL); err != nil {
				return // write failure: connection is gone
			}
		default:
			wire.WriteFrame(conn, wire.TError,
				wire.Error{Msg: fmt.Sprintf("served: unexpected %s frame", t)})
		}
	}
}

// serveQuery executes one statement and streams its result. Statement
// failures are reported in-band with a TError frame; the returned error is
// non-nil only for connection-level write failures.
//
// BUILD TREE commands and SCORE TABLE statements against the served table go
// through the fleet queue — concurrent builds and scoring sessions form one
// cohort and share scans. Everything else (including SCORE TABLE against
// other tables) executes directly on the engine.
func (d *Daemon) serveQuery(conn net.Conn, sql string) error {
	var rs frameWriter
	var err error
	switch {
	case isBuildStmt(sql):
		rs, err = d.serveBuild(sql)
	case isScoreStmt(sql):
		rs, err = d.serveScore(sql)
	default:
		rs, err = d.serveSQL(sql)
	}
	if err != nil {
		return wire.WriteFrame(conn, wire.TError, wire.Error{Msg: err.Error()})
	}
	return rs.write(conn)
}

// frameWriter streams one statement result over the wire.
type frameWriter interface {
	write(conn net.Conn) error
}

// resultStream is a fully materialized statement result awaiting framing.
type resultStream struct {
	cols []string
	rows [][]wire.Cell
}

// write streams the result as header, row batches and done.
func (rs *resultStream) write(conn net.Conn) error {
	if err := wire.WriteFrame(conn, wire.TResultHeader, wire.ResultHeader{Cols: rs.cols}); err != nil {
		return err
	}
	for base := 0; base < len(rs.rows); base += wire.BatchRows {
		hi := base + wire.BatchRows
		if hi > len(rs.rows) {
			hi = len(rs.rows)
		}
		if err := wire.WriteFrame(conn, wire.TRowBatch, wire.RowBatch{Rows: rs.rows[base:hi]}); err != nil {
			return err
		}
	}
	return wire.WriteFrame(conn, wire.TDone, wire.Done{Rows: int64(len(rs.rows))})
}

// serveSQL executes one engine statement under the engine mutex.
func (d *Daemon) serveSQL(sql string) (*resultStream, error) {
	d.emu.Lock()
	res, err := d.srv.Engine().Exec(sql)
	d.emu.Unlock()
	if err != nil {
		return nil, err
	}
	rs := &resultStream{cols: res.Cols}
	for _, r := range res.Rows {
		row := make([]wire.Cell, len(r))
		for i, v := range r {
			row[i] = wire.Cell{Str: v.Str, I: v.I, S: v.S}
		}
		rs.rows = append(rs.rows, row)
	}
	return rs, nil
}

// buildReq is one client's fleet request — a BUILD TREE command or a SCORE
// TABLE statement against the served table — waiting for the coordinator.
type buildReq struct {
	opt    dtree.Options
	output string // "stats", "tree" or "trace"
	model  string // BUILD ... MODEL name: register the compiled tree

	score *scoreSpec // non-nil: a scoring request, not a build

	done chan buildResp
}

// scoreSpec is a queued SCORE TABLE request; m resolves under the engine
// mutex when the cohort runs.
type scoreSpec struct {
	model   string
	workers int
	m       *engine.Model
}

type buildResp struct {
	rs  frameWriter
	err error
}

// isBuildStmt reports whether the statement is the daemon's BUILD TREE
// command rather than engine SQL.
func isBuildStmt(sql string) bool {
	f := strings.Fields(strings.ToUpper(sql))
	return len(f) >= 2 && f[0] == "BUILD" && f[1] == "TREE"
}

// isScoreStmt reports whether the statement is a SCORE statement.
func isScoreStmt(sql string) bool {
	f := strings.Fields(strings.ToUpper(sql))
	return len(f) >= 1 && f[0] == "SCORE"
}

// parseBuild parses BUILD TREE [MAXDEPTH n] [MINROWS n] [WORKERS n]
// [MODEL name] [OUTPUT STATS|TREE|TRACE]. WORKERS is accepted for symmetry
// with the middleware config but applies fleet-wide, so it must match the
// daemon's configured worker count. MODEL registers the finished tree in the
// engine's model catalog under the given name, making it scoreable by SCORE
// TABLE and CLASSIFY() the moment the build responds.
func (d *Daemon) parseBuild(sql string) (*buildReq, error) {
	f := strings.Fields(sql)
	req := &buildReq{output: "stats", done: make(chan buildResp, 1)}
	i := 2 // past BUILD TREE
	intArg := func(kw string) (int64, error) {
		if i >= len(f) {
			return 0, fmt.Errorf("served: %s needs a value", kw)
		}
		n, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("served: bad %s value %q", kw, f[i])
		}
		i++
		return n, nil
	}
	for i < len(f) {
		kw := strings.ToUpper(f[i])
		i++
		switch kw {
		case "MAXDEPTH":
			n, err := intArg(kw)
			if err != nil {
				return nil, err
			}
			req.opt.MaxDepth = int(n)
		case "MINROWS":
			n, err := intArg(kw)
			if err != nil {
				return nil, err
			}
			req.opt.MinRows = n
		case "WORKERS":
			n, err := intArg(kw)
			if err != nil {
				return nil, err
			}
			if int(n) != d.cfg.Fleet.Base.Workers {
				return nil, fmt.Errorf("served: WORKERS %d does not match the daemon's configured %d",
					n, d.cfg.Fleet.Base.Workers)
			}
		case "MODEL":
			if i >= len(f) {
				return nil, fmt.Errorf("served: MODEL needs a name")
			}
			req.model = f[i]
			i++
		case "OUTPUT":
			if i >= len(f) {
				return nil, fmt.Errorf("served: OUTPUT needs STATS, TREE or TRACE")
			}
			out := strings.ToLower(f[i])
			i++
			switch out {
			case "stats", "tree", "trace":
				req.output = out
			default:
				return nil, fmt.Errorf("served: unknown OUTPUT %q", f[i-1])
			}
		default:
			return nil, fmt.Errorf("served: unknown BUILD TREE option %q", kw)
		}
	}
	return req, nil
}

// serveBuild queues the build with the coordinator and waits for its result.
func (d *Daemon) serveBuild(sql string) (frameWriter, error) {
	req, err := d.parseBuild(sql)
	if err != nil {
		return nil, err
	}
	return d.enqueue(req)
}

// serveScore handles a SCORE statement: scoring the served table goes
// through the fleet queue (joining any concurrent cohort's shared scan);
// scoring any other table executes directly on the engine.
func (d *Daemon) serveScore(sql string) (frameWriter, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sc, ok := st.(*sqlparser.ScoreTable)
	if !ok {
		return nil, fmt.Errorf("served: unexpected %T for a SCORE statement", st)
	}
	if sc.Table != d.srv.TableName() {
		return d.serveSQL(sql)
	}
	req := &buildReq{
		score: &scoreSpec{model: sc.Model, workers: sc.Workers},
		done:  make(chan buildResp, 1),
	}
	return d.enqueue(req)
}

// enqueue hands a request to the coordinator and waits for its result.
func (d *Daemon) enqueue(req *buildReq) (frameWriter, error) {
	d.bmu.Lock()
	if d.closed {
		d.bmu.Unlock()
		return nil, fmt.Errorf("served: daemon is draining")
	}
	d.bqueue = append(d.bqueue, req)
	d.bcond.Broadcast()
	d.bmu.Unlock()
	resp := <-req.done
	return resp.rs, resp.err
}

// scoreStream frames a scoring result: a header naming the class column and
// the per-class count columns, then TScoredBatch frames of BatchRows rows
// (classes plus distributions), then TDone — so the client starts consuming
// predictions before the last batch is framed.
type scoreStream struct {
	model *engine.Model
	res   *engine.ScoreResult
}

func (ss *scoreStream) write(conn net.Conn) error {
	cols := []string{"class"}
	for c := 0; c < ss.model.Classes; c++ {
		cols = append(cols, fmt.Sprintf("c%d", c))
	}
	if err := wire.WriteFrame(conn, wire.TResultHeader, wire.ResultHeader{Cols: cols}); err != nil {
		return err
	}
	n := len(ss.res.Classes)
	for base := 0; base < n; base += wire.BatchRows {
		hi := base + wire.BatchRows
		if hi > n {
			hi = n
		}
		b := wire.ScoredBatch{Model: ss.model.Name}
		for i := base; i < hi; i++ {
			b.Classes = append(b.Classes, int32(ss.res.Classes[i]))
			b.Dists = append(b.Dists, ss.res.Dist(ss.model, i))
		}
		if err := wire.WriteFrame(conn, wire.TScoredBatch, b); err != nil {
			return err
		}
	}
	return wire.WriteFrame(conn, wire.TDone, wire.Done{Rows: int64(n)})
}

// buildLoop is the coordinator: it drains the build queue into fleet runs,
// so builds that arrive while a run executes form the next run's cohort.
func (d *Daemon) buildLoop() {
	for {
		d.bmu.Lock()
		for len(d.bqueue) == 0 && !d.closed {
			d.bcond.Wait()
		}
		if len(d.bqueue) == 0 && d.closed {
			d.bmu.Unlock()
			return
		}
		batch := d.bqueue
		d.bqueue = nil
		seq := d.runSeq
		d.runSeq++
		d.bmu.Unlock()
		d.runFleet(batch, seq)
	}
}

// runFleet executes one cohort — builds and scoring sessions — as a fleet
// run and answers every request. The arrival schedule is virtual and seeded,
// so a cohort's results do not depend on network timing.
func (d *Daemon) runFleet(batch []*buildReq, seq int64) {
	answered := make([]bool, len(batch))
	answer := func(i int, resp buildResp) {
		if !answered[i] {
			answered[i] = true
			batch[i].done <- resp
		}
	}
	fail := func(err error) {
		for i := range batch {
			answer(i, buildResp{err: err})
		}
	}
	wantTrace := false
	for _, r := range batch {
		if r.output == "trace" {
			wantTrace = true
		}
	}
	col := obs.NewCollector(wantTrace, false)

	d.emu.Lock()
	defer d.emu.Unlock()
	fleet, err := NewFleet(d.srv, col, d.cfg.Fleet)
	if err != nil {
		fail(err)
		return
	}
	arr := sim.Arrivals(d.cfg.Seed+seq, len(batch), d.cfg.MeanGapNS)
	sessions := make([]*Session, len(batch))
	opened := false
	for i, r := range batch {
		if r.score != nil {
			// Resolve the model under the engine mutex; an unknown model
			// fails its own request, not the cohort.
			m, err := d.srv.Engine().Model(r.score.model)
			if err != nil {
				answer(i, buildResp{err: err})
				continue
			}
			r.score.m = m
			s, err := fleet.OpenScore("", m, r.score.workers, arr[i])
			if err != nil {
				fail(err)
				return
			}
			sessions[i] = s
			opened = true
			continue
		}
		s, err := fleet.Open("", r.opt, arr[i])
		if err != nil {
			fail(err)
			return
		}
		sessions[i] = s
		opened = true
	}
	if opened {
		if err := fleet.Run(); err != nil {
			fail(err)
			return
		}
	}

	var traceLines []string
	if wantTrace {
		var buf bytes.Buffer
		if err := col.WriteTrace(&buf, "ndjson"); err != nil {
			fail(err)
			return
		}
		traceLines = strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	}
	for i, r := range batch {
		if answered[i] {
			continue
		}
		if r.score != nil {
			answer(i, buildResp{rs: &scoreStream{model: r.score.m, res: sessions[i].Score()}})
			continue
		}
		if r.model != "" {
			// Register the compiled tree while still holding the engine
			// mutex, so the model is scoreable the moment the build responds.
			m, err := dtree.Compile(sessions[i].Tree(), r.model)
			if err == nil {
				err = d.srv.Engine().RegisterModel(m)
			}
			if err != nil {
				answer(i, buildResp{err: err})
				continue
			}
		}
		answer(i, buildResp{rs: buildResult(r, sessions[i], fleet, traceLines)})
	}
}

// buildResult renders one session's outcome in the request's output shape.
func buildResult(r *buildReq, s *Session, f *Fleet, traceLines []string) *resultStream {
	switch r.output {
	case "tree":
		rs := &resultStream{cols: []string{"node"}}
		for _, line := range s.Tree().DumpLines() {
			rs.rows = append(rs.rows, []wire.Cell{{Str: true, S: line}})
		}
		return rs
	case "trace":
		// The trace covers the whole cohort: one proc per session, in
		// session order. A single-session run's trace is exactly the
		// in-process build's.
		rs := &resultStream{cols: []string{"span"}}
		for _, line := range traceLines {
			rs.rows = append(rs.rows, []wire.Cell{{Str: true, S: line}})
		}
		return rs
	default:
		st := s.Tree().Stats()
		rs := &resultStream{cols: []string{"stat", "value"}}
		add := func(name string, v int64) {
			rs.rows = append(rs.rows, []wire.Cell{{Str: true, S: name}, {I: v}})
		}
		add("session", int64(s.ID))
		add("nodes", int64(st.Nodes))
		add("leaves", int64(st.Leaves))
		add("max_depth", int64(st.Depth))
		add("arrival_ns", s.ArrivalNS())
		add("latency_ns", s.LatencyNS())
		add("server_pages", s.Meter().Count(sim.CtrServerPages))
		add("shared_io_pages", f.IOMeter().Count(sim.CtrServerPages))
		return rs
	}
}

// unmarshal decodes a frame payload with a wire-level error message.
func unmarshal(payload []byte, msg any) error {
	return wire.Unmarshal(payload, msg)
}
