package serve

import (
	"database/sql"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
)

// inProcessScoreArm builds a tree exactly like the daemon's fleet would,
// compiles it, and scores the same table in-process with the vectorized
// operator: the reference predictions and distributions for the wire arm.
func inProcessScoreArm(t *testing.T, rows, workers int, opt dtree.Options) (*engine.Model, *engine.ScoreResult, []data.Value) {
	t.Helper()
	srv := testServer(t, rows)
	mid, err := mw.New(srv, baseCfg(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	tree, err := dtree.Build(mid, opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dtree.Compile(tree, "m")
	if err != nil {
		t.Fatal(err)
	}
	eng := srv.Engine()
	if err := eng.RegisterModel(m); err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.Table("cases")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.ScoreTable(tbl, m, workers)
	if err != nil {
		t.Fatal(err)
	}

	// The in-client row loop over the same table, as a second witness: a
	// plain SELECT * returns rows in storage order.
	rs, err := eng.Exec("SELECT * FROM cases")
	if err != nil {
		t.Fatal(err)
	}
	loop := make([]data.Value, 0, len(rs.Rows))
	for _, vr := range rs.Rows {
		row := make(data.Row, len(vr))
		for i, v := range vr {
			row[i] = data.Value(v.I)
		}
		loop = append(loop, tree.Predict(row))
	}
	return m, res, loop
}

// TestDaemonScoringEquivalence is the wire leg of the scoring equivalence
// spine: BUILD ... MODEL then SCORE TABLE over the stock database/sql driver
// must stream exactly the class labels and per-class distributions the
// in-process vectorized operator and the in-client tree walk produce — at
// one, four and eight workers.
func TestDaemonScoringEquivalence(t *testing.T) {
	const rows = 1500
	opt := dtree.Options{MaxDepth: 6, MinRows: 20}
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			model, res, loop := inProcessScoreArm(t, rows, workers, opt)
			if int64(len(loop)) != res.Rows {
				t.Fatalf("in-process witnesses disagree: %d loop rows, %d scored", len(loop), res.Rows)
			}
			for i := range loop {
				if loop[i] != res.Classes[i] {
					t.Fatalf("in-process witnesses disagree at row %d", i)
				}
			}

			addr, stop := startDaemon(t, rows, workers, true)
			defer stop()
			db, err := sql.Open("ccsql", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			db.SetMaxOpenConns(1)

			build := fmt.Sprintf("BUILD TREE MAXDEPTH %d MINROWS %d WORKERS %d MODEL m OUTPUT STATS",
				opt.MaxDepth, opt.MinRows, workers)
			if _, err := db.Exec(build); err != nil {
				t.Fatalf("%s: %v", build, err)
			}

			wrows, err := db.Query(fmt.Sprintf("SCORE TABLE cases USING m WORKERS %d", workers))
			if err != nil {
				t.Fatal(err)
			}
			defer wrows.Close()
			cols, err := wrows.Columns()
			if err != nil {
				t.Fatal(err)
			}
			if want := 1 + model.Classes; len(cols) != want {
				t.Fatalf("scored stream has %d columns, want %d (class + per-class counts)", len(cols), want)
			}
			i := 0
			dest := make([]any, len(cols))
			for di := range dest {
				dest[di] = new(int64)
			}
			for wrows.Next() {
				if err := wrows.Scan(dest...); err != nil {
					t.Fatal(err)
				}
				if i >= len(loop) {
					t.Fatalf("daemon streamed more than %d rows", len(loop))
				}
				if got := data.Value(*dest[0].(*int64)); got != loop[i] {
					t.Fatalf("row %d: daemon class %d, in-process %d", i, got, loop[i])
				}
				dist := res.Dist(model, i)
				for c := 0; c < model.Classes; c++ {
					if got := *dest[1+c].(*int64); got != dist[c] {
						t.Fatalf("row %d class %d: daemon count %d, in-process %d", i, c, got, dist[c])
					}
				}
				i++
			}
			if err := wrows.Err(); err != nil {
				t.Fatal(err)
			}
			if i != len(loop) {
				t.Fatalf("daemon streamed %d rows, want %d", i, len(loop))
			}
		})
	}
}

// TestDaemonModelRegistration pins that BUILD ... MODEL persists the model
// as data: the catalog table is queryable over the same connection and holds
// one row per tree node.
func TestDaemonModelRegistration(t *testing.T) {
	addr, stop := startDaemon(t, 1000, 1, true)
	defer stop()
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	dump := queryStrings(t, db, "BUILD TREE MAXDEPTH 4 MINROWS 20 MODEL cat OUTPUT TREE")
	if len(dump) < 2 {
		t.Fatal("empty tree dump")
	}
	// The dump is one header line plus one line per node.
	nodes := int64(len(dump) - 1)
	var catRows int64
	if err := db.QueryRow("SELECT COUNT(*) FROM " + engine.ModelCatalogTable("cat")).Scan(&catRows); err != nil {
		t.Fatal(err)
	}
	if catRows != nodes {
		t.Errorf("catalog holds %d rows, tree dump has %d nodes", catRows, nodes)
	}
}

// TestDaemonScoreUnknownModel pins per-request failure isolation: scoring
// with an unregistered model errors that one statement and leaves the
// connection usable.
func TestDaemonScoreUnknownModel(t *testing.T) {
	addr, stop := startDaemon(t, 800, 1, true)
	defer stop()
	db, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	if _, err := db.Exec("SCORE TABLE cases USING nosuch"); err == nil ||
		!strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("unknown-model error = %v, want it to name the model", err)
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM cases").Scan(&n); err != nil {
		t.Fatalf("connection unusable after unknown-model error: %v", err)
	}
}

// TestDaemonMixedCohort admits builds and scoring sessions to the same
// fleet at once — the scan-sharing case the scheduler was extended for —
// and checks every client still gets exactly its single-tenant answer.
func TestDaemonMixedCohort(t *testing.T) {
	const rows = 1200
	opt := dtree.Options{MaxDepth: 6, MinRows: 20}
	_, res, loop := inProcessScoreArm(t, rows, 1, opt)
	wantTree, _ := inProcessArm(t, rows, 1, opt)
	wantLines := wantTree.DumpLines()
	_ = res

	addr, stop := startDaemon(t, rows, 1, true)
	defer stop()

	// Register the model first, on its own connection.
	setup, err := sql.Open("ccsql", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("BUILD TREE MAXDEPTH 6 MINROWS 20 MODEL m OUTPUT STATS"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			db, err := sql.Open("ccsql", addr)
			if err != nil {
				errs <- err
				return
			}
			defer db.Close()
			if c%2 == 0 {
				got := make([]data.Value, 0, rows)
				wrows, err := db.Query("SCORE TABLE cases USING m")
				if err != nil {
					errs <- fmt.Errorf("scorer %d: %w", c, err)
					return
				}
				cols, err := wrows.Columns()
				if err != nil {
					errs <- err
					return
				}
				dest := make([]any, len(cols))
				for di := range dest {
					dest[di] = new(int64)
				}
				for wrows.Next() {
					if err := wrows.Scan(dest...); err != nil {
						errs <- err
						return
					}
					got = append(got, data.Value(*dest[0].(*int64)))
				}
				if err := wrows.Err(); err != nil {
					errs <- fmt.Errorf("scorer %d: %w", c, err)
					return
				}
				wrows.Close()
				if len(got) != len(loop) {
					errs <- fmt.Errorf("scorer %d: %d rows, want %d", c, len(got), len(loop))
					return
				}
				for i := range got {
					if got[i] != loop[i] {
						errs <- fmt.Errorf("scorer %d: prediction %d differs from single-tenant scoring", c, i)
						return
					}
				}
			} else {
				rows, err := db.Query("BUILD TREE MAXDEPTH 6 MINROWS 20 OUTPUT TREE")
				if err != nil {
					errs <- fmt.Errorf("builder %d: %w", c, err)
					return
				}
				var got []string
				for rows.Next() {
					var s string
					if err := rows.Scan(&s); err != nil {
						errs <- err
						return
					}
					got = append(got, s)
				}
				if err := rows.Err(); err != nil {
					errs <- fmt.Errorf("builder %d: %w", c, err)
					return
				}
				rows.Close()
				if !equalLines(got, wantLines) {
					errs <- fmt.Errorf("builder %d: tree differs from single-tenant build", c)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
