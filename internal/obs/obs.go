// Package obs is the deterministic observability layer: virtual-clock-native
// span tracing plus a metrics registry, shared by the engine, the middleware
// and the experiment harness.
//
// Everything in this package is driven by sim.Meter's virtual clock, never by
// wall time, so a trace is a pure function of (workload, configuration): two
// runs of the same build produce byte-identical exports regardless of
// GOMAXPROCS, goroutine interleaving or host speed. Observability never
// charges the meter — opening a span reads the clock, it does not advance it
// — so enabling tracing cannot perturb any simulated result.
//
// The span model mirrors the simulator's parallel cost model: a Tracer is
// single-goroutine like a Meter, and a parallel scan forks one lane Tracer
// per worker (ForkLanes) whose spans buffer privately and fold back in lane
// index order at the barrier (JoinLanes), exactly as lane meters fold through
// sim.Meter.Join. Lane spans render as separate threads in the Perfetto
// export.
//
// Every entry point is nil-receiver safe and allocation-free when disabled:
// a nil *Tracer returns nil *Spans, and all Span methods accept a nil
// receiver, so instrumented code calls straight through without guards.
package obs

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Span categories, from coarse to fine. The hierarchy in a typical tree
// build: build → level (client view) and build → batch → scan → lane →
// cursor / merge / stage / fallback → sql (middleware and engine view).
const (
	CatBuild    = "build"    // one whole model build (tree, NB)
	CatLevel    = "level"    // one tree level, client side
	CatBatch    = "batch"    // one middleware scheduling batch
	CatScan     = "scan"     // the batch's single scan of its source
	CatLane     = "lane"     // one worker's partition of a parallel scan
	CatMerge    = "merge"    // post-barrier CC shard merging
	CatStage    = "stage"    // staging capture/finalize (file or memory)
	CatFallback = "fallback" // one node serviced by the SQL fallback
	CatSQL      = "sql"      // one SQL statement at the server
	CatCursor   = "cursor"   // one cursor scan (server, keyset, TID join, file)
	CatAux      = "aux"      // auxiliary server structure build (§4.3.3)
	CatScore    = "score"    // one in-database scoring pass over a table
)

// Attr is one extra key/value attribute on a span. S is used when non-empty,
// otherwise I.
type Attr struct {
	Key string `json:"key"`
	I   int64  `json:"i,omitempty"`
	S   string `json:"s,omitempty"`
}

// Span is one closed or in-flight operation in virtual time. Typed fields
// cover the attributes the exporters render; Attrs holds ordered extras.
type Span struct {
	ID     int64  // unique within the proc, assigned in deterministic order
	Parent int64  // parent span ID, 0 = root
	Proc   int    // virtual-clock domain ("process" in Perfetto)
	Track  int    // render track within the proc ("thread"); 0 = main
	Cat    string // category constant (CatBatch, ...)
	Name   string
	Start  int64 // virtual ns
	Dur    int64 // virtual ns

	// Typed attributes; zero values are omitted from exports.
	Source string // data tier: "server", "file", "memory", "sql"
	Nodes  []int  // tree node ids the operation serviced
	Rows   int64
	Bytes  int64
	Part   int // partition index (meaningful when NParts > 0)
	NParts int
	Attrs  []Attr

	// Deltas holds the counter movement of the span's own clock domain over
	// the span window, captured at End (or by an explicit CaptureCounters
	// before a retroactive EndAt). Nil means no capture happened — the span
	// was never ended. The vector is inclusive: child-span work on the same
	// clock is part of it; the profiler (internal/obs/profile) subtracts
	// children to derive exclusive costs.
	Deltas *sim.CounterVec

	// Overlay marks spans recorded on a descriptive overlay track (Tracer.
	// Track) — e.g. the client-side level view, which intentionally overlaps
	// the build span in virtual time. The profiler reports overlay spans
	// separately and excludes them from exclusive-cost attribution, which
	// would otherwise double-count their windows.
	Overlay bool

	startCounts sim.CounterVec // owning clock's counters at Start
	tr          *Tracer        // owner while open; nil once ended
}

// proc is one virtual-clock domain: one meter's worth of spans plus its track
// (thread) name registry. All mutation happens on the owning goroutine.
type proc struct {
	id     int
	name   string
	spans  []*Span
	nextID int64
	tracks []string // track id -> name
}

func (p *proc) newID() int64 {
	p.nextID++
	return p.nextID
}

// trackID returns the stable track id for a name, allocating on first use.
// Allocation order is deterministic, so track ids are reproducible.
func (p *proc) trackID(name string) int {
	for i, n := range p.tracks {
		if n == name {
			return i
		}
	}
	p.tracks = append(p.tracks, name)
	return len(p.tracks) - 1
}

// Trace is a whole trace: every proc's spans. Procs register under a lock
// (experiment suites may build concurrently); within a proc all span activity
// is single-goroutine except lanes, which buffer privately until JoinLanes.
type Trace struct {
	mu    sync.Mutex
	procs []*proc
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Proc registers a new virtual-clock domain (id must be unique, 1-based) and
// returns its root tracer, clocked by meter. A nil Trace returns nil.
func (t *Trace) Proc(id int, name string, meter *sim.Meter) *Tracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &proc{id: id, name: name, tracks: []string{"main"}}
	t.procs = append(t.procs, p)
	return &Tracer{p: p, clock: meter}
}

// NumSpans returns the total span count across procs.
func (t *Trace) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, p := range t.procs {
		n += len(p.spans)
	}
	return n
}

// ProcView is the read-only per-proc view EachProc hands to post-hoc
// consumers such as the profiler (internal/obs/profile).
type ProcView struct {
	ID     int
	Name   string
	Tracks []string // track id -> name
	Spans  []*Span  // in record order
}

// EachProc invokes fn once per registered proc in registration order. The
// slices in the view alias the trace's live backing arrays: callers must
// treat them as read-only and only walk a trace after all span activity on it
// has finished.
func (t *Trace) EachProc(fn func(ProcView)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.procs {
		fn(ProcView{ID: p.id, Name: p.name, Tracks: p.tracks, Spans: p.spans})
	}
}

// Tracer opens spans against one proc on one track. Like a sim.Meter it is
// single-goroutine: parallel scans fork lane tracers (ForkLanes) instead of
// sharing one. The zero-value rule is nil = disabled: every method on a nil
// *Tracer is a no-op returning nil.
type Tracer struct {
	p       *proc
	clock   *sim.Meter
	track   int
	offset  int64 // added to clock readings (lane tracers: parent time at fork)
	overlay bool  // descriptive overlay track (Track): spans marked Span.Overlay
	stack   []*Span

	// Lane state: spans buffer locally with temporary negative ids until
	// JoinLanes folds them into the proc in lane order.
	detached   bool
	buf        []*Span
	nextTemp   int64
	laneName   string
	forkParent int64
}

// now returns the tracer's current virtual time in ns.
func (t *Tracer) now() int64 { return t.offset + int64(t.clock.Now()) }

// Start opens a span. Its parent is the innermost span still open on this
// tracer. Returns nil (allocation-free) on a nil tracer.
func (t *Tracer) Start(cat, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		Proc: t.procID(), Track: t.track, Cat: cat, Name: name,
		Start: t.now(), Overlay: t.overlay,
		startCounts: t.clock.CounterVec(), tr: t,
	}
	if t.detached {
		t.nextTemp--
		s.ID = t.nextTemp
	} else {
		s.ID = t.p.newID()
	}
	if n := len(t.stack); n > 0 {
		s.Parent = t.stack[n-1].ID
	}
	if t.detached {
		t.buf = append(t.buf, s)
	} else {
		t.p.spans = append(t.p.spans, s)
	}
	t.stack = append(t.stack, s)
	return s
}

func (t *Tracer) procID() int {
	if t.p != nil {
		return t.p.id
	}
	return 0
}

// Track returns a sibling tracer on the named render track of the same proc,
// with its own span stack. Must be called (and used) from the proc's owning
// goroutine; lanes use ForkLanes instead.
func (t *Tracer) Track(name string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{p: t.p, clock: t.clock, track: t.p.trackID(name), overlay: true}
}

// ForkLanes returns one lane tracer per lane meter, buffering spans privately
// so worker goroutines never touch shared state — the tracing analogue of
// sim.Meter.Fork. Lane clocks are offset by the parent's current time, and
// lane spans' parent is the span open on t at fork time. The parent tracer
// must not record between ForkLanes and the matching JoinLanes.
func (t *Tracer) ForkLanes(lanes []*sim.Meter) []*Tracer {
	if t == nil {
		return nil
	}
	var parent int64
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1].ID
	}
	out := make([]*Tracer, len(lanes))
	for i, lane := range lanes {
		out[i] = &Tracer{
			p:          t.p,
			clock:      lane,
			offset:     t.now(),
			detached:   true,
			laneName:   fmt.Sprintf("lane %d", i+1),
			forkParent: parent,
		}
	}
	return out
}

// JoinLanes folds lane tracers back into the proc in lane index order,
// assigning final span ids — the tracing analogue of sim.Meter.Join. Each
// lane's buffer is a pure function of its partition, so the folded trace is
// bit-for-bit reproducible regardless of goroutine interleaving.
func (t *Tracer) JoinLanes(lanes []*Tracer) {
	if t == nil {
		return
	}
	for _, lt := range lanes {
		track := t.p.trackID(lt.laneName)
		remap := make(map[int64]int64, len(lt.buf))
		for _, s := range lt.buf {
			id := t.p.newID()
			remap[s.ID] = id
			s.ID = id
			switch {
			case s.Parent < 0:
				s.Parent = remap[s.Parent]
			case s.Parent == 0:
				s.Parent = lt.forkParent
			}
			s.Track = track
			t.p.spans = append(t.p.spans, s)
		}
		lt.buf = nil
	}
}

// End closes the span at the tracer's current virtual time. Safe on a nil or
// already-ended span; out-of-order ends (e.g. overlapping client-side level
// spans) are handled by removing the span wherever it sits on the stack.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	s.Dur = s.tr.now() - s.Start
	s.captureCounters()
	s.popStack()
}

// EndAt closes the span at an explicit virtual time (ns in the proc's clock
// domain), for spans whose logical end was observed earlier than the call. An
// earlier CaptureCounters result is kept — by the time EndAt runs the clock
// has usually moved past the recorded end, so a fresh capture would attribute
// later work to the span; without one, counters are captured here.
func (s *Span) EndAt(ns int64) {
	if s == nil || s.tr == nil {
		return
	}
	s.Dur = ns - s.Start
	if s.Dur < 0 {
		s.Dur = 0
	}
	if s.Deltas == nil {
		s.captureCounters()
	}
	s.popStack()
}

// CaptureCounters records the span's inclusive counter deltas as of the
// owning clock's current state, overwriting any earlier capture. End captures
// automatically; callers that close spans retroactively with EndAt invoke
// this at each moment the span's logical end time advances (the client-side
// level spans do, at every node close). Nil-safe and chainable.
func (s *Span) CaptureCounters() *Span {
	if s != nil && s.tr != nil {
		s.captureCounters()
	}
	return s
}

func (s *Span) captureCounters() {
	d := s.tr.clock.CounterVec().Delta(s.startCounts)
	s.Deltas = &d
}

func (s *Span) popStack() {
	st := s.tr.stack
	for i := len(st) - 1; i >= 0; i-- {
		if st[i] == s {
			s.tr.stack = append(st[:i], st[i+1:]...)
			break
		}
	}
	s.tr = nil
}

// SetName replaces the span name. All setters are nil-safe and chainable.
func (s *Span) SetName(name string) *Span {
	if s != nil {
		s.Name = name
	}
	return s
}

// SetSource records the data tier the operation read ("server", "file",
// "memory", "sql").
func (s *Span) SetSource(src string) *Span {
	if s != nil {
		s.Source = src
	}
	return s
}

// SetNodes records the tree node ids serviced (the slice is copied).
func (s *Span) SetNodes(ids []int) *Span {
	if s != nil && len(ids) > 0 {
		s.Nodes = append([]int(nil), ids...)
	}
	return s
}

// SetRows records a row count.
func (s *Span) SetRows(n int64) *Span {
	if s != nil {
		s.Rows = n
	}
	return s
}

// SetBytes records a byte count.
func (s *Span) SetBytes(n int64) *Span {
	if s != nil {
		s.Bytes = n
	}
	return s
}

// SetPartition records partition bounds: partition part of nparts.
func (s *Span) SetPartition(part, nparts int) *Span {
	if s != nil {
		s.Part = part
		s.NParts = nparts
	}
	return s
}

// Attr appends an extra integer attribute.
func (s *Span) Attr(key string, v int64) *Span {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, I: v})
	}
	return s
}

// AttrStr appends an extra string attribute.
func (s *Span) AttrStr(key, v string) *Span {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, S: v})
	}
	return s
}

// Truncate caps a string attribute value (no allocation: returns a prefix).
func Truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
