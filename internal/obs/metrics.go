package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/sim"
)

// defaultSampleEveryNS is the virtual-time resolution of the counter time
// series sampled through the sim.ChargeObserver hook: at most one sample per
// 10 virtual milliseconds per proc.
const defaultSampleEveryNS = 10_000_000

// defaultWatch is the counter set sampled into each proc's time series.
func defaultWatch() []sim.Counter {
	return []sim.Counter{
		sim.CtrServerPages,
		sim.CtrRowsTransmitted,
		sim.CtrFileRowsWritten,
		sim.CtrFileRowsRead,
		sim.CtrMemRowsRead,
		sim.CtrCCUpdates,
		sim.CtrSQLStatements,
	}
}

// Metrics is the registry of per-proc derived metrics: batch statistics and
// counter time series, all in virtual time.
type Metrics struct {
	mu    sync.Mutex
	Procs []*ProcMetrics `json:"procs"`
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// NewProc registers a metrics domain for one meter and returns it. The
// caller attaches the result to the meter with SetObserver to enable the
// counter time series; batch stats arrive via AddBatch.
func (m *Metrics) NewProc(id int, label string, meter *sim.Meter) *ProcMetrics {
	if m == nil {
		return nil
	}
	p := &ProcMetrics{
		Proc:  id,
		Label: label,
		meter: meter,
		watch: defaultWatch(),
		every: defaultSampleEveryNS,
	}
	for _, c := range p.watch {
		p.WatchNames = append(p.WatchNames, c.String())
	}
	m.mu.Lock()
	m.Procs = append(m.Procs, p)
	m.mu.Unlock()
	return p
}

// Sample is one point of the counter time series: the cumulative values of
// the watched counters (ordered as ProcMetrics.WatchNames) at virtual time
// TNS.
type Sample struct {
	TNS  int64   `json:"t_ns"`
	Vals []int64 `json:"vals"`
}

// LaneStat describes one worker lane of a parallel batch scan.
type LaneStat struct {
	Lane      int   `json:"lane"`       // 1-based lane index
	ElapsedNS int64 `json:"elapsed_ns"` // lane virtual time (the max lane is the batch's critical path)
	Rows      int64 `json:"rows"`       // rows the lane read from its partition
}

// BatchStats summarizes one middleware scheduling batch: what it serviced,
// what every counter cost, how balanced the lanes were, and where the memory
// and file budgets stood when it finished. The per-batch sequence doubles as
// the staging-tier residency timeline: NodesServer/NodesFile/NodesMemory
// count open nodes per tier at batch end.
type BatchStats struct {
	Batch   int    `json:"batch"` // 1-based batch ordinal
	Source  string `json:"source"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`

	NNodes        int   `json:"n_nodes"`     // nodes serviced by the scan
	NFallbacks    int   `json:"n_fallbacks"` // nodes serviced by SQL fallback
	NRequeued     int   `json:"n_requeued"`
	NewFiles      int   `json:"new_files"`
	StagedMemRows int64 `json:"staged_mem_rows"`

	Lanes []LaneStat `json:"lanes,omitempty"`

	// Deltas holds every counter that moved during the batch, by name.
	Deltas map[string]int64 `json:"deltas,omitempty"`

	// Budget utilization and tier residency at batch end.
	MemUsedBytes   int64 `json:"mem_used_bytes"`
	MemBudgetBytes int64 `json:"mem_budget_bytes"`
	FileUsedBytes  int64 `json:"file_used_bytes"`
	FileBudget     int64 `json:"file_budget_bytes"`
	FilesLive      int   `json:"files_live"`
	NodesServer    int   `json:"nodes_server"`
	NodesFile      int   `json:"nodes_file"`
	NodesMemory    int   `json:"nodes_memory"`
}

// LaneImbalanceNS returns max(lane elapsed) - min(lane elapsed): the virtual
// time the fastest worker idled at the join barrier. Zero for serial batches.
func (b *BatchStats) LaneImbalanceNS() int64 {
	if len(b.Lanes) < 2 {
		return 0
	}
	min, max := b.Lanes[0].ElapsedNS, b.Lanes[0].ElapsedNS
	for _, l := range b.Lanes[1:] {
		if l.ElapsedNS < min {
			min = l.ElapsedNS
		}
		if l.ElapsedNS > max {
			max = l.ElapsedNS
		}
	}
	return max - min
}

// ProcMetrics is one virtual-clock domain's worth of metrics. It implements
// sim.ChargeObserver: attach it with Meter.SetObserver to sample the counter
// time series. All methods are nil-receiver safe so instrumented code can
// call straight through when metrics are disabled.
type ProcMetrics struct {
	Proc       int          `json:"proc"`
	Label      string       `json:"label"`
	WatchNames []string     `json:"watch"`
	Samples    []Sample     `json:"samples,omitempty"`
	Batches    []BatchStats `json:"batches,omitempty"`

	meter      *sim.Meter
	watch      []sim.Counter
	every      int64
	lastSample int64
	haveSample bool
}

// ObserveCharge implements sim.ChargeObserver: it samples the watched
// counters' cumulative values, throttled to one sample per `every` virtual
// ns. Pure reader — it never charges the meter.
func (p *ProcMetrics) ObserveCharge(_ sim.Counter, _, _, nowNS int64) {
	if p == nil {
		return
	}
	if p.haveSample && nowNS-p.lastSample < p.every {
		return
	}
	vals := make([]int64, len(p.watch))
	for i, c := range p.watch {
		vals[i] = p.meter.Count(c)
	}
	p.Samples = append(p.Samples, Sample{TNS: nowNS, Vals: vals})
	p.lastSample = nowNS
	p.haveSample = true
}

// AddBatch records one batch's statistics.
func (p *ProcMetrics) AddBatch(b BatchStats) {
	if p == nil {
		return
	}
	p.Batches = append(p.Batches, b)
}

// MaxLaneImbalanceNS returns the largest lane imbalance across all batches.
func (p *ProcMetrics) MaxLaneImbalanceNS() int64 {
	if p == nil {
		return 0
	}
	var max int64
	for i := range p.Batches {
		if d := p.Batches[i].LaneImbalanceNS(); d > max {
			max = d
		}
	}
	return max
}

// WriteJSON writes the whole registry as indented JSON. Struct field order
// and sorted map keys make the output byte-deterministic.
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Summary renders a short human-readable digest: per proc, the batch count
// by source tier, fallback and requeue totals, peak budget utilization and
// the worst lane imbalance.
func (m *Metrics) Summary() string {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := ""
	for _, p := range m.Procs {
		bySource := map[string]int{}
		falls, reqs := 0, 0
		var peakMem, peakFile int64
		var endNS int64
		for i := range p.Batches {
			b := &p.Batches[i]
			bySource[b.Source]++
			falls += b.NFallbacks
			reqs += b.NRequeued
			if b.MemUsedBytes > peakMem {
				peakMem = b.MemUsedBytes
			}
			if b.FileUsedBytes > peakFile {
				peakFile = b.FileUsedBytes
			}
			if b.EndNS > endNS {
				endNS = b.EndNS
			}
		}
		out += fmt.Sprintf(
			"proc %d %q: %d batches (server=%d file=%d memory=%d), %d fallback nodes, %d requeues, peak mem %d B, peak file %d B, max lane imbalance %d ns, end t=%d ns\n",
			p.Proc, p.Label, len(p.Batches),
			bySource["server"], bySource["file"], bySource["memory"],
			falls, reqs, peakMem, peakFile, p.MaxLaneImbalanceNS(), endNS)
	}
	return out
}

// emitCounters streams the metrics as Chrome counter ("C") events: the
// watched counter series plus per-batch budget utilization and tier
// residency, one counter track per series.
func (m *Metrics) emitCounters(ew *eventWriter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.Procs {
		for _, s := range p.Samples {
			for i, name := range p.WatchNames {
				ew.emit(traceEvent{
					Name: name, Ph: "C", Ts: usec(s.TNS), Pid: p.Proc,
					Args: map[string]any{"value": s.Vals[i]},
				})
			}
		}
		for i := range p.Batches {
			b := &p.Batches[i]
			ts := usec(b.EndNS)
			ew.emit(traceEvent{
				Name: "mem_used_bytes", Ph: "C", Ts: ts, Pid: p.Proc,
				Args: map[string]any{"value": b.MemUsedBytes},
			})
			ew.emit(traceEvent{
				Name: "file_used_bytes", Ph: "C", Ts: ts, Pid: p.Proc,
				Args: map[string]any{"value": b.FileUsedBytes},
			})
			ew.emit(traceEvent{
				Name: "files_live", Ph: "C", Ts: ts, Pid: p.Proc,
				Args: map[string]any{"value": b.FilesLive},
			})
			ew.emit(traceEvent{
				Name: "tier_residency", Ph: "C", Ts: ts, Pid: p.Proc,
				Args: map[string]any{
					"server": b.NodesServer,
					"file":   b.NodesFile,
					"memory": b.NodesMemory,
				},
			})
		}
	}
}
