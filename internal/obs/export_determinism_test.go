package obs

// Regression for the export layer's map-ordering contract: every map that
// reaches an export (BatchStats.Deltas, traceEvent.Args, span attrs rendered
// into args) must serialize in sorted key order, so two registries holding the
// same logical metrics — built with different map insertion orders — export
// byte-identical JSON and Chrome traces.

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// buildMetrics assembles one registry whose Deltas maps are populated in the
// given key order; the logical content is identical for any permutation.
func buildMetrics(keyOrder []string) *Metrics {
	m := NewMetrics()
	meter := sim.NewDefaultMeter()
	pm := m.NewProc(1, "run", meter)
	deltas := map[string]int64{}
	for _, k := range keyOrder {
		deltas[k] = int64(len(k)) * 7 // value derives from the key, not the slot
	}
	pm.AddBatch(BatchStats{
		Batch: 1, Source: "server", StartNS: 0, EndNS: 5_000_000,
		NNodes: 3, Deltas: deltas,
		MemUsedBytes: 64, FilesLive: 1,
		NodesServer: 2, NodesFile: 1,
	})
	return m
}

func TestMetricsExportByteIdenticalAcrossMapInsertionOrder(t *testing.T) {
	forward := []string{"server_pages", "rows_transmitted", "file_rows_written", "cc_updates", "sql_statements"}
	backward := make([]string, len(forward))
	for i, k := range forward {
		backward[len(forward)-1-i] = k
	}

	ma := buildMetrics(forward)
	mb := buildMetrics(backward)

	var ja, jb bytes.Buffer
	if err := ma.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := mb.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Errorf("metrics JSON depends on Deltas insertion order:\n%s\nvs\n%s", ja.Bytes(), jb.Bytes())
	}

	// The Chrome export path (counter events with map-valued Args) must hold
	// to the same contract.
	var ca, cb bytes.Buffer
	if err := NewTrace().WriteChrome(&ca, ma); err != nil {
		t.Fatal(err)
	}
	if err := NewTrace().WriteChrome(&cb, mb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Error("chrome counter export depends on map insertion order")
	}
	if ja.Len() == 0 || ca.Len() == 0 {
		t.Fatal("empty export")
	}
}

// TestSpanArgsExportSorted pins the same property for span attributes routed
// through traceEvent.Args maps in the Chrome export.
func TestSpanArgsExportSorted(t *testing.T) {
	build := func(order []string) []byte {
		tr := NewTrace()
		meter := sim.NewDefaultMeter()
		root := tr.Proc(1, "p", meter)
		sp := root.Start("cat", "span")
		for i, k := range order {
			sp.Attr(k, int64(10+i%2))
		}
		sp.Attr("zz", 1).Attr("aa", 2) // fixed tail so both runs agree on values
		sp.End()
		var b bytes.Buffer
		if err := tr.WriteChrome(&b, nil); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	// Attrs are an ordered slice; identical call order must mean identical
	// bytes, and the map-valued Args they pass through must not scramble runs
	// with the same call order.
	a := build([]string{"k1", "k2", "k3"})
	b := build([]string{"k1", "k2", "k3"})
	if !bytes.Equal(a, b) {
		t.Error("identical span attr sequences export different bytes")
	}
}
