package obs

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/sim"
)

// Collector bundles a Trace and a Metrics registry behind one handle with
// unified proc-id assignment, so the CLIs and the experiment harness wire
// observability with a single object. A nil Collector is the disabled state:
// Proc returns (nil, nil) and the writers are no-ops, so call sites need no
// enabled/disabled branches.
type Collector struct {
	mu       sync.Mutex
	nextProc int

	Trace   *Trace   // nil when span tracing is disabled
	Metrics *Metrics // nil when the metrics registry is disabled
}

// NewCollector returns a collector with the requested facilities, or nil if
// both are disabled.
func NewCollector(trace, metrics bool) *Collector {
	if !trace && !metrics {
		return nil
	}
	c := &Collector{}
	if trace {
		c.Trace = NewTrace()
	}
	if metrics {
		c.Metrics = NewMetrics()
	}
	return c
}

// Proc registers one virtual-clock domain (one build's meter) under the next
// proc id and returns its root tracer and metrics sink; either may be nil
// depending on what the collector enables. The meter's charge observer is
// attached here when metrics are on — Proc is the single wiring point.
func (c *Collector) Proc(label string, meter *sim.Meter) (*Tracer, *ProcMetrics) {
	if c == nil {
		return nil, nil
	}
	c.mu.Lock()
	c.nextProc++
	id := c.nextProc
	c.mu.Unlock()
	tr := c.Trace.Proc(id, label, meter)
	var pm *ProcMetrics
	if c.Metrics != nil {
		pm = c.Metrics.NewProc(id, label, meter)
		meter.SetObserver(pm)
	}
	return tr, pm
}

// WriteTrace writes the trace in the given format: "chrome" (Perfetto/Chrome
// trace-event JSON, including metrics counter tracks when enabled) or
// "ndjson" (one span per line).
func (c *Collector) WriteTrace(w io.Writer, format string) error {
	if c == nil {
		return nil
	}
	switch format {
	case "", "chrome":
		return c.Trace.WriteChrome(w, c.Metrics)
	case "ndjson":
		return c.Trace.WriteNDJSON(w)
	default:
		return fmt.Errorf("obs: unknown trace format %q (want chrome or ndjson)", format)
	}
}

// profileWriter is the registered profile renderer. The profiler lives in
// the subpackage internal/obs/profile — which imports obs and therefore
// cannot be imported from here — so, in the manner of database/sql drivers,
// importing that package registers its writer at init time.
var profileWriter func(t *Trace, m *Metrics, w io.Writer, format string) error

// RegisterProfileWriter installs the profile renderer WriteProfile delegates
// to. Called from the profile package's init; must not be called after
// collectors are in use.
func RegisterProfileWriter(fn func(t *Trace, m *Metrics, w io.Writer, format string) error) {
	profileWriter = fn
}

// WriteProfile renders the post-hoc profile of the collected trace — per-span
// cost attribution, critical-path/slack analysis and the EXPLAIN-style report
// — in "text" or "json" format. Requires span tracing to have been enabled
// and the profile package to be linked in (import repro/internal/obs/profile
// for side effects).
func (c *Collector) WriteProfile(w io.Writer, format string) error {
	if c == nil {
		return nil
	}
	if profileWriter == nil {
		return fmt.Errorf("obs: no profile writer registered (import repro/internal/obs/profile)")
	}
	return profileWriter(c.Trace, c.Metrics, w, format)
}

// WriteMetrics writes the metrics registry as indented JSON.
func (c *Collector) WriteMetrics(w io.Writer) error {
	if c == nil {
		return nil
	}
	return c.Metrics.WriteJSON(w)
}

// Summary returns the metrics digest, or "" when metrics are disabled.
func (c *Collector) Summary() string {
	if c == nil {
		return ""
	}
	return c.Metrics.Summary()
}
