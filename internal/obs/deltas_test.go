package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestEmptyTraceChromeValid: a trace with no spans (or no procs at all) must
// still serialize as valid Chrome trace-event JSON.
func TestEmptyTraceChromeValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *obs.Trace
	}{
		{"no-procs", obs.NewTrace()},
		{"proc-no-spans", func() *obs.Trace {
			tr := obs.NewTrace()
			tr.Proc(1, "idle", sim.NewDefaultMeter())
			return tr
		}()},
	} {
		var buf bytes.Buffer
		if err := tc.tr.WriteChrome(&buf, nil); err != nil {
			t.Fatalf("%s: WriteChrome: %v", tc.name, err)
		}
		var doc struct {
			DisplayTimeUnit string            `json:"displayTimeUnit"`
			TraceEvents     []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v\n%s", tc.name, err, buf.String())
		}
		if doc.DisplayTimeUnit != "ns" {
			t.Errorf("%s: displayTimeUnit = %q", tc.name, doc.DisplayTimeUnit)
		}
	}
}

// TestEmptyTraceNDJSONValid: an empty trace emits just the summary trailer,
// and the trailer is well-formed JSON on every trace.
func TestEmptyTraceNDJSONValid(t *testing.T) {
	tr := obs.NewTrace()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("empty trace: got %d lines, want 1 trailer:\n%s", len(lines), buf.String())
	}
	var trailer struct {
		Type  string `json:"type"`
		Procs int    `json:"procs"`
		Spans int    `json:"spans"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &trailer); err != nil {
		t.Fatalf("invalid trailer JSON: %v", err)
	}
	if trailer.Type != "trace" || trailer.Procs != 0 || trailer.Spans != 0 {
		t.Errorf("trailer = %+v, want type=trace procs=0 spans=0", trailer)
	}
}

// TestSpanDeltasOnEnd: ending a span captures the counter movement over its
// window; nested spans see only their own window's movement.
func TestSpanDeltasOnEnd(t *testing.T) {
	meter := sim.NewDefaultMeter()
	trace := obs.NewTrace()
	tr := trace.Proc(1, "p", meter)

	outer := tr.Start(obs.CatBuild, "outer")
	meter.Charge(sim.CtrServerScans, 10, 1)
	inner := tr.Start(obs.CatScan, "inner")
	meter.Charge(sim.CtrRowsTransmitted, 1, 50)
	inner.End()
	meter.Charge(sim.CtrServerScans, 10, 2)
	outer.End()

	if inner.Deltas == nil || outer.Deltas == nil {
		t.Fatal("Deltas not captured at End")
	}
	if got := inner.Deltas.Get(sim.CtrRowsTransmitted); got != 50 {
		t.Errorf("inner rows delta = %d, want 50", got)
	}
	if got := inner.Deltas.Get(sim.CtrServerScans); got != 0 {
		t.Errorf("inner scans delta = %d, want 0", got)
	}
	if got := outer.Deltas.Get(sim.CtrServerScans); got != 3 {
		t.Errorf("outer scans delta = %d, want 3", got)
	}
	if got := outer.Deltas.Get(sim.CtrRowsTransmitted); got != 50 {
		t.Errorf("outer rows delta = %d, want 50 (inclusive of inner)", got)
	}
}

// TestCaptureCountersBeforeEndAt: a span closed retroactively keeps the
// deltas captured explicitly at its logical close, not the later EndAt state.
func TestCaptureCountersBeforeEndAt(t *testing.T) {
	meter := sim.NewDefaultMeter()
	trace := obs.NewTrace()
	tr := trace.Proc(1, "p", meter)
	ltr := tr.Track("levels")

	sp := ltr.Start(obs.CatLevel, "level 0")
	meter.Charge(sim.CtrServerScans, 10, 4)
	closeNS := int64(meter.Now())
	sp.CaptureCounters()
	// Charges after the logical close must not leak into the span.
	meter.Charge(sim.CtrServerScans, 10, 5)
	sp.EndAt(closeNS)

	if sp.Deltas == nil {
		t.Fatal("Deltas lost by EndAt")
	}
	if got := sp.Deltas.Get(sim.CtrServerScans); got != 4 {
		t.Errorf("scans delta = %d, want 4 (captured at logical close)", got)
	}
	if !sp.Overlay {
		t.Error("Track()-derived span is not marked Overlay")
	}
}

// TestEndAtWithoutCaptureStillSnapshots: EndAt on a span that never called
// CaptureCounters captures the deltas at the EndAt call.
func TestEndAtWithoutCaptureStillSnapshots(t *testing.T) {
	meter := sim.NewDefaultMeter()
	trace := obs.NewTrace()
	tr := trace.Proc(1, "p", meter)
	sp := tr.Start(obs.CatBuild, "b")
	meter.Charge(sim.CtrServerScans, 10, 2)
	sp.EndAt(int64(meter.Now()))
	if sp.Deltas == nil || sp.Deltas.Get(sim.CtrServerScans) != 2 {
		t.Errorf("EndAt deltas = %v, want server_scans=2", sp.Deltas)
	}
}

// TestEachProcView: the read-only per-proc view exposes id, label, tracks and
// spans in registration order, and is nil-safe.
func TestEachProcView(t *testing.T) {
	var nilTrace *obs.Trace
	nilTrace.EachProc(func(obs.ProcView) { t.Error("callback on nil trace") })

	trace := obs.NewTrace()
	tr1 := trace.Proc(1, "alpha", sim.NewDefaultMeter())
	tr2 := trace.Proc(2, "beta", sim.NewDefaultMeter())
	tr1.Start(obs.CatBuild, "a").End()
	lt := tr2.Track("lanes")
	lt.Start(obs.CatLane, "l").End()

	var got []obs.ProcView
	trace.EachProc(func(pv obs.ProcView) { got = append(got, pv) })
	if len(got) != 2 {
		t.Fatalf("got %d procs, want 2", len(got))
	}
	if got[0].ID != 1 || got[0].Name != "alpha" || got[1].ID != 2 || got[1].Name != "beta" {
		t.Errorf("proc order/labels wrong: %+v", got)
	}
	if len(got[0].Spans) != 1 || len(got[1].Spans) != 1 {
		t.Errorf("span counts: %d, %d, want 1, 1", len(got[0].Spans), len(got[1].Spans))
	}
	sp := got[1].Spans[0]
	if sp.Track <= 0 || sp.Track >= len(got[1].Tracks) || got[1].Tracks[sp.Track] != "lanes" {
		t.Errorf("track name not resolvable: track=%d tracks=%v", sp.Track, got[1].Tracks)
	}
}

// TestCounterVecOps pins the vector arithmetic the profiler builds on.
func TestCounterVecOps(t *testing.T) {
	meter := sim.NewDefaultMeter()
	base := meter.CounterVec()
	meter.Charge(sim.CtrServerScans, 10, 3)
	meter.Charge(sim.CtrRowsTransmitted, 1, 7)
	d := meter.CounterVec().Delta(base)
	if d.Get(sim.CtrServerScans) != 3 || d.Get(sim.CtrRowsTransmitted) != 7 {
		t.Errorf("delta = %v", d)
	}
	if d.IsZero() {
		t.Error("non-zero vector reports zero")
	}
	var sum sim.CounterVec
	sum.Add(&d)
	sum.Add(&d)
	sum.Sub(&d)
	if sum != d {
		t.Error("Add/Sub round trip failed")
	}
	var names []string
	var vals []int64
	d.EachNonZero(func(c sim.Counter, n int64) {
		names = append(names, c.String())
		vals = append(vals, n)
	})
	if len(names) != 2 {
		t.Fatalf("EachNonZero visited %d counters, want 2", len(names))
	}
	// Declaration order: server scans precede transmitted rows.
	if names[0] != sim.CtrServerScans.String() || vals[0] != 3 {
		t.Errorf("first visit = %s/%d", names[0], vals[0])
	}
	if d.Get(sim.Counter(10_000)) != 0 {
		t.Error("out-of-range counter not zero")
	}
}
