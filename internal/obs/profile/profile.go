// Package profile is the post-hoc profiler for the observability layer: it
// consumes a finished obs.Trace (plus, optionally, the metrics registry) and
// attributes every virtual nanosecond and every counter delta of a build to
// the span that spent it.
//
// Three analyses come out of one Compute pass:
//
//   - Per-span cost attribution. Every span carries the counter vector of its
//     clock domain captured at its start and end boundaries (obs.Span.Deltas),
//     so its inclusive cost is exact; exclusive cost subtracts the children.
//     Exclusive virtual time is derived by a segment sweep that assigns every
//     instant of the proc's timeline to exactly one span, so exclusive times
//     sum to the total build virtual time — no instant is counted twice or
//     dropped, which TestAttributionSumsToTotal asserts as a property.
//
//   - Critical-path analysis over the Fork/Join lane DAG. Concurrent lane
//     spans (children of one parent on distinct render tracks) form a fork
//     group; the lane whose busy time bounds the join barrier is the critical
//     lane, every other lane's slack is the virtual time it idled at the
//     barrier, and the fork group with the largest total slack names the
//     batch/source whose imbalance costs the most (the skew diagnosis).
//     The same rule drives exclusive-time attribution: concurrent instants
//     resolve to the span that bounds the barrier, mirroring how
//     sim.Meter.Join advances the parent clock by max(lane elapsed).
//
//   - An EXPLAIN ANALYZE-style report (report.go): a deterministic text or
//     JSON tree mirroring the build — levels, batches, scans, stages,
//     fallback arms — with inclusive/exclusive costs, percent of total and
//     critical-path markers. Byte-identical across GOMAXPROCS and reruns,
//     same as the traces it reads.
//
// Importing this package registers its renderer with the obs package
// (obs.RegisterProfileWriter), enabling obs.Collector.WriteProfile.
package profile

import (
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Profile is the full result of one Compute pass: one Proc per virtual-clock
// domain in the trace, in registration order.
type Profile struct {
	Procs []*Proc `json:"procs"`
}

// Proc is the profile of one virtual-clock domain (one build).
type Proc struct {
	ID    int    `json:"proc"`
	Label string `json:"label"`

	TotalNS        int64 `json:"total_ns"`        // end of the last non-overlay span
	AttributedNS   int64 `json:"attributed_ns"`   // sum of exclusive times over the span forest
	UnattributedNS int64 `json:"unattributed_ns"` // timeline instants covered by no span
	Spans          int   `json:"spans"`           // non-overlay spans
	OverlaySpans   int   `json:"overlay_spans"`

	// Counters holds the proc's total counter values (the sum of the root
	// spans' inclusive deltas), keyed by counter name, non-zero entries only.
	Counters map[string]int64 `json:"counters,omitempty"`

	Roots    []*Node        `json:"tree,omitempty"`
	Overlays []*Node        `json:"overlays,omitempty"` // client-side level view etc.
	ByCat    []Rollup       `json:"by_cat,omitempty"`
	BySource []Rollup       `json:"by_source,omitempty"`
	ByLevel  []LevelRollup  `json:"by_level,omitempty"`
	Hot      []HotSpan      `json:"hot_spans,omitempty"`
	Forks    []*ForkGroup   `json:"forks,omitempty"`
	Skew     *SkewDiagnosis `json:"skew,omitempty"`
}

// Node is one span in the attribution forest.
type Node struct {
	ID       int64            `json:"id"`
	Cat      string           `json:"cat"`
	Name     string           `json:"name"`
	Source   string           `json:"source,omitempty"`
	Track    string           `json:"track,omitempty"` // non-main tracks (lanes)
	StartNS  int64            `json:"start_ns"`
	InclNS   int64            `json:"incl_ns"`
	ExclNS   int64            `json:"excl_ns"`
	PctBP    int64            `json:"excl_pct_bp"` // exclusive time in basis points of the proc total
	Rows     int64            `json:"rows,omitempty"`
	Part     string           `json:"part,omitempty"`
	Critical bool             `json:"critical,omitempty"`
	Attrs    []obs.Attr       `json:"attrs,omitempty"`
	Incl     map[string]int64 `json:"counters_incl,omitempty"`
	Excl     map[string]int64 `json:"counters_excl,omitempty"`
	Children []*Node          `json:"children,omitempty"`

	span    *obs.Span
	up      *Node // parent in the attribution forest; nil for roots
	inclVec sim.CounterVec
	exclVec sim.CounterVec
}

// EndNS returns the node's span end time.
func (n *Node) EndNS() int64 { return n.StartNS + n.InclNS }

// ExclCounter returns the node's exclusive delta for one counter.
func (n *Node) ExclCounter(c sim.Counter) int64 { return n.exclVec.Get(c) }

// Rollup aggregates exclusive costs over one span dimension (category or
// source tier).
type Rollup struct {
	Key      string           `json:"key"`
	Spans    int              `json:"spans"`
	InclNS   int64            `json:"incl_ns"`
	ExclNS   int64            `json:"excl_ns"`
	PctBP    int64            `json:"excl_pct_bp"`
	Counters map[string]int64 `json:"counters,omitempty"` // exclusive deltas

	vec sim.CounterVec
}

// LevelRollup aggregates the batches serving one tree level (from the batch
// spans' "level" attribute).
type LevelRollup struct {
	Level    int64            `json:"level"`
	Batches  int              `json:"batches"`
	InclNS   int64            `json:"incl_ns"` // summed inclusive batch time
	StartNS  int64            `json:"start_ns"`
	EndNS    int64            `json:"end_ns"`
	Counters map[string]int64 `json:"counters,omitempty"` // inclusive deltas

	vec sim.CounterVec
}

// HotSpan is one entry of the top-exclusive-time table.
type HotSpan struct {
	ID     int64  `json:"id"`
	Cat    string `json:"cat"`
	Name   string `json:"name"`
	Source string `json:"source,omitempty"`
	ExclNS int64  `json:"excl_ns"`
	PctBP  int64  `json:"excl_pct_bp"`
}

// LaneCost is one lane of a fork group.
type LaneCost struct {
	Track   string `json:"track"` // render track name, e.g. "lane 2"
	Spans   int    `json:"spans"`
	BusyNS  int64  `json:"busy_ns"`  // fork to the lane's last span end
	SlackNS int64  `json:"slack_ns"` // barrier - busy: idle time at the join
	Rows    int64  `json:"rows,omitempty"`
}

// ForkGroup is one Fork/Join barrier: the concurrent lanes under one parent
// span, with per-lane busy time and join slack.
type ForkGroup struct {
	Parent       int64      `json:"parent"` // span id the lanes forked under
	ParentCat    string     `json:"parent_cat"`
	ParentName   string     `json:"parent_name"`
	Batch        int64      `json:"batch,omitempty"` // enclosing batch ordinal
	Source       string     `json:"source,omitempty"`
	ForkNS       int64      `json:"fork_ns"`
	BarrierNS    int64      `json:"barrier_ns"` // fork + max lane busy
	Lanes        []LaneCost `json:"lanes"`
	CriticalLane string     `json:"critical_lane"` // track name of the lane bounding the barrier
	TotalSlackNS int64      `json:"total_slack_ns"`
}

// SkewDiagnosis names the join barrier whose lane imbalance costs the most
// virtual time across the whole build.
type SkewDiagnosis struct {
	Batch        int64  `json:"batch,omitempty"`
	Source       string `json:"source,omitempty"`
	Parent       int64  `json:"parent"`
	ParentCat    string `json:"parent_cat"`
	CriticalLane string `json:"critical_lane"`
	BusyNS       int64  `json:"critical_busy_ns"`
	TotalSlackNS int64  `json:"total_slack_ns"`
	PctBP        int64  `json:"slack_pct_bp"` // slack as basis points of the proc total
}

// pctBP returns v as basis points (hundredths of a percent) of total.
func pctBP(v, total int64) int64 {
	if total <= 0 {
		return 0
	}
	return v * 10_000 / total
}

// Compute profiles a finished trace. The metrics registry is optional (may be
// nil); when present it is only read, never mutated. The trace must be
// quiescent: no spans may be opened or ended during or after the call.
func Compute(t *obs.Trace, m *obs.Metrics) *Profile {
	p := &Profile{}
	t.EachProc(func(pv obs.ProcView) {
		p.Procs = append(p.Procs, computeProc(pv))
	})
	_ = m // reserved: per-batch budget/residency enrichment reads the registry
	return p
}

func computeProc(pv obs.ProcView) *Proc {
	proc := &Proc{ID: pv.ID, Label: pv.Name}

	// Split overlay spans (client-side level view: intentionally overlapping
	// windows) from the attribution forest and wrap everything in Nodes.
	byID := make(map[int64]*Node, len(pv.Spans))
	var normal, overlays []*Node
	for _, s := range pv.Spans {
		n := newNode(s, pv.Tracks)
		if s.Overlay {
			overlays = append(overlays, n)
		} else {
			normal = append(normal, n)
			byID[n.ID] = n
		}
	}
	proc.Spans = len(normal)
	proc.OverlaySpans = len(overlays)
	sortNodes(overlays)
	proc.Overlays = overlays

	// Link the forest. A parent id that resolves to no non-overlay node (or
	// 0) makes the span a root.
	var roots []*Node
	for _, n := range normal {
		if parent := byID[n.span.Parent]; parent != nil {
			parent.Children = append(parent.Children, n)
			n.up = parent
		} else {
			roots = append(roots, n)
		}
	}
	for _, n := range normal {
		sortNodes(n.Children)
		if end := n.EndNS(); end > proc.TotalNS {
			proc.TotalNS = end
		}
	}
	sortNodes(roots)
	proc.Roots = roots

	// Exclusive-time attribution: sweep the whole timeline once, assigning
	// every instant to exactly one span (or to UnattributedNS).
	if proc.TotalNS > 0 {
		virtualRoot := &Node{InclNS: proc.TotalNS, Children: roots}
		attributeTime(virtualRoot, []segment{{0, proc.TotalNS}})
		proc.UnattributedNS = virtualRoot.ExclNS
	}

	// Exclusive counters: own inclusive deltas minus the children's.
	for _, n := range normal {
		n.exclVec = n.inclVec
		for _, c := range n.Children {
			n.exclVec.Sub(&c.inclVec)
		}
	}
	counters := sim.CounterVec{}
	for _, r := range roots {
		counters.Add(&r.inclVec)
	}
	proc.Counters = counterMap(&counters)

	// Fork groups, critical path, slack and skew.
	proc.Forks = forkGroups(normal, pv.Tracks)
	markCritical(roots, proc.Forks, byID)
	proc.Skew = diagnoseSkew(proc.Forks, byID, proc.TotalNS)

	// Fill derived per-node fields and rollups now that attribution is done.
	for _, n := range normal {
		proc.AttributedNS += n.ExclNS
		n.PctBP = pctBP(n.ExclNS, proc.TotalNS)
		n.Incl = counterMap(&n.inclVec)
		n.Excl = counterMap(&n.exclVec)
	}
	proc.ByCat = rollupBy(normal, proc.TotalNS, func(n *Node) string { return n.Cat })
	proc.BySource = rollupBy(normal, proc.TotalNS, func(n *Node) string { return n.Source })
	proc.ByLevel = rollupLevels(normal)
	proc.Hot = hotSpans(normal, proc.TotalNS)
	return proc
}

func newNode(s *obs.Span, tracks []string) *Node {
	n := &Node{
		ID: s.ID, Cat: s.Cat, Name: s.Name, Source: s.Source,
		StartNS: s.Start, InclNS: s.Dur, Rows: s.Rows,
		Attrs: s.Attrs, span: s,
	}
	if s.Track > 0 && s.Track < len(tracks) {
		n.Track = tracks[s.Track]
	}
	if s.NParts > 0 {
		n.Part = strconv.Itoa(s.Part) + "/" + strconv.Itoa(s.NParts)
	}
	if s.Deltas != nil {
		n.inclVec = *s.Deltas
	}
	return n
}

// sortNodes orders siblings by start time, then id — the deterministic
// rendering and attribution order.
func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].StartNS != ns[j].StartNS {
			return ns[i].StartNS < ns[j].StartNS
		}
		return ns[i].ID < ns[j].ID
	})
}

// segment is one half-open [lo, hi) slice of the timeline.
type segment struct{ lo, hi int64 }

// attributeTime assigns every instant of n's owned segments either to the
// covering child that owns it or to n's own exclusive time, then recurses.
// Among children covering the same instant (concurrent lane spans), the owner
// is the one with the latest start, then the latest end, then the smallest
// id: the lane that bounds the join barrier — i.e. the critical path — owns
// the shared window, mirroring how sim.Meter.Join advances the parent clock
// by max(lane elapsed). The sweep partitions time exactly: summed exclusive
// times equal the total timeline.
func attributeTime(n *Node, owned []segment) {
	kids := n.Children
	if len(kids) == 0 {
		for _, s := range owned {
			n.ExclNS += s.hi - s.lo
		}
		return
	}
	cuts := make([]int64, 0, 2*len(kids))
	for _, k := range kids {
		cuts = append(cuts, k.StartNS, k.EndNS())
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	childOwned := make([][]segment, len(kids))
	for _, s := range owned {
		lo := s.lo
		ci := 0
		for lo < s.hi {
			// hi of this elementary interval: the next cut strictly past lo.
			hi := s.hi
			for ; ci < len(cuts); ci++ {
				if cuts[ci] > lo {
					if cuts[ci] < hi {
						hi = cuts[ci]
					}
					break
				}
			}
			owner := -1
			for i, k := range kids {
				if k.StartNS > lo || k.EndNS() < hi {
					continue // does not cover [lo, hi)
				}
				if owner < 0 {
					owner = i
					continue
				}
				o := kids[owner]
				switch {
				case k.StartNS != o.StartNS:
					if k.StartNS > o.StartNS {
						owner = i
					}
				case k.EndNS() != o.EndNS():
					if k.EndNS() > o.EndNS() {
						owner = i
					}
				case k.ID < o.ID:
					owner = i
				}
			}
			if owner < 0 {
				n.ExclNS += hi - lo
			} else if segs := childOwned[owner]; len(segs) > 0 && segs[len(segs)-1].hi == lo {
				childOwned[owner][len(segs)-1].hi = hi
			} else {
				childOwned[owner] = append(childOwned[owner], segment{lo, hi})
			}
			lo = hi
		}
	}
	for i, k := range kids {
		attributeTime(k, childOwned[i])
	}
}

// forkGroups finds every Fork/Join barrier: a parent whose children occupy
// two or more non-parent render tracks ran those tracks as concurrent lanes.
func forkGroups(nodes []*Node, tracks []string) []*ForkGroup {
	var groups []*ForkGroup
	for _, n := range nodes { // nodes are in record order; groups inherit it
		type laneAgg struct {
			track       string
			spans       int
			first, last int64
			rows        int64
		}
		byTrack := map[int]*laneAgg{}
		var order []int
		for _, k := range n.Children {
			if k.span.Track == n.span.Track {
				continue // same-track children are sequential, not lanes
			}
			la := byTrack[k.span.Track]
			if la == nil {
				name := ""
				if k.span.Track < len(tracks) {
					name = tracks[k.span.Track]
				}
				la = &laneAgg{track: name, first: k.StartNS, last: k.EndNS()}
				byTrack[k.span.Track] = la
				order = append(order, k.span.Track)
			}
			la.spans++
			la.rows += k.Rows
			if k.StartNS < la.first {
				la.first = k.StartNS
			}
			if e := k.EndNS(); e > la.last {
				la.last = e
			}
		}
		if len(order) < 2 {
			continue
		}
		sort.Ints(order)
		g := &ForkGroup{
			Parent: n.ID, ParentCat: n.Cat, ParentName: n.Name, Source: n.Source,
		}
		if b := enclosingBatch(n); b != nil {
			g.Batch = attrInt(b, "batch", 0)
			if g.Source == "" {
				g.Source = b.Source
			}
		}
		fork := int64(-1)
		for _, tid := range order {
			la := byTrack[tid]
			if fork < 0 || la.first < fork {
				fork = la.first
			}
		}
		g.ForkNS = fork
		g.BarrierNS = fork
		for _, tid := range order {
			la := byTrack[tid]
			if la.last > g.BarrierNS {
				g.BarrierNS = la.last
			}
		}
		for _, tid := range order {
			la := byTrack[tid]
			busy := la.last - fork
			g.Lanes = append(g.Lanes, LaneCost{
				Track: la.track, Spans: la.spans, BusyNS: busy,
				SlackNS: g.BarrierNS - la.last, Rows: la.rows,
			})
			g.TotalSlackNS += g.BarrierNS - la.last
		}
		// Critical lane: the first lane (lowest track id) with zero slack.
		for _, lc := range g.Lanes {
			if lc.SlackNS == 0 {
				g.CriticalLane = lc.Track
				break
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// enclosingBatch walks up the attribution forest to the nearest batch span.
func enclosingBatch(n *Node) *Node {
	for cur := n; cur != nil; cur = cur.up {
		if cur.Cat == obs.CatBatch {
			return cur
		}
	}
	return nil
}

// markCritical marks the chain of spans that determines the virtual clock: in
// the serial regions everything is critical; at each fork group only the
// critical lane's subtree stays on the path, every other lane's subtree is
// slack.
func markCritical(roots []*Node, groups []*ForkGroup, byID map[int64]*Node) {
	var markAll func(n *Node, v bool)
	markAll = func(n *Node, v bool) {
		n.Critical = v
		for _, k := range n.Children {
			markAll(k, v)
		}
	}
	for _, r := range roots {
		markAll(r, true)
	}
	for _, g := range groups {
		parent := byID[g.Parent]
		if parent == nil || !parent.Critical {
			continue
		}
		for _, k := range parent.Children {
			// Lane children (off the parent's own track) that are not on the
			// critical lane are join slack, subtrees included.
			if k.span.Track != parent.span.Track && k.Track != g.CriticalLane {
				markAll(k, false)
			}
		}
	}
}

// diagnoseSkew picks the fork group whose total join slack is largest.
func diagnoseSkew(groups []*ForkGroup, byID map[int64]*Node, totalNS int64) *SkewDiagnosis {
	var worst *ForkGroup
	for _, g := range groups {
		if g.TotalSlackNS == 0 {
			continue
		}
		if worst == nil || g.TotalSlackNS > worst.TotalSlackNS ||
			(g.TotalSlackNS == worst.TotalSlackNS && g.Parent < worst.Parent) {
			worst = g
		}
	}
	if worst == nil {
		return nil
	}
	d := &SkewDiagnosis{
		Batch: worst.Batch, Source: worst.Source,
		Parent: worst.Parent, ParentCat: worst.ParentCat,
		CriticalLane: worst.CriticalLane,
		TotalSlackNS: worst.TotalSlackNS,
		PctBP:        pctBP(worst.TotalSlackNS, totalNS),
	}
	for _, lc := range worst.Lanes {
		if lc.Track == worst.CriticalLane {
			d.BusyNS = lc.BusyNS
			break
		}
	}
	_ = byID
	return d
}

// rollupBy aggregates exclusive costs by a key function, skipping empty keys,
// sorted by descending exclusive time then key.
func rollupBy(nodes []*Node, totalNS int64, key func(*Node) string) []Rollup {
	idx := map[string]int{}
	var out []Rollup
	for _, n := range nodes {
		k := key(n)
		if k == "" {
			continue
		}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, Rollup{Key: k})
		}
		out[i].Spans++
		out[i].InclNS += n.InclNS
		out[i].ExclNS += n.ExclNS
		out[i].vec.Add(&n.exclVec)
	}
	for i := range out {
		out[i].PctBP = pctBP(out[i].ExclNS, totalNS)
		out[i].Counters = counterMap(&out[i].vec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ExclNS != out[j].ExclNS {
			return out[i].ExclNS > out[j].ExclNS
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// rollupLevels aggregates batch spans by their "level" attribute.
func rollupLevels(nodes []*Node) []LevelRollup {
	idx := map[int64]int{}
	var out []LevelRollup
	for _, n := range nodes {
		if n.Cat != obs.CatBatch {
			continue
		}
		lvl := attrInt(n, "level", -1)
		if lvl < 0 {
			continue
		}
		i, ok := idx[lvl]
		if !ok {
			i = len(out)
			idx[lvl] = i
			out = append(out, LevelRollup{Level: lvl, StartNS: n.StartNS, EndNS: n.EndNS()})
		}
		out[i].Batches++
		out[i].InclNS += n.InclNS
		out[i].vec.Add(&n.inclVec)
		if n.StartNS < out[i].StartNS {
			out[i].StartNS = n.StartNS
		}
		if e := n.EndNS(); e > out[i].EndNS {
			out[i].EndNS = e
		}
	}
	for i := range out {
		out[i].Counters = counterMap(&out[i].vec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Level < out[j].Level })
	return out
}

// hotSpans returns the top spans by exclusive time (at most 10, non-zero
// only), ties broken by id.
func hotSpans(nodes []*Node, totalNS int64) []HotSpan {
	byCost := append([]*Node(nil), nodes...)
	sort.Slice(byCost, func(i, j int) bool {
		if byCost[i].ExclNS != byCost[j].ExclNS {
			return byCost[i].ExclNS > byCost[j].ExclNS
		}
		return byCost[i].ID < byCost[j].ID
	})
	var out []HotSpan
	for _, n := range byCost {
		if n.ExclNS == 0 || len(out) == 10 {
			break
		}
		out = append(out, HotSpan{
			ID: n.ID, Cat: n.Cat, Name: n.Name, Source: n.Source,
			ExclNS: n.ExclNS, PctBP: pctBP(n.ExclNS, totalNS),
		})
	}
	return out
}

// attrInt returns the span's integer attribute by key, or def when absent.
func attrInt(n *Node, key string, def int64) int64 {
	for _, a := range n.Attrs {
		if a.Key == key && a.S == "" {
			return a.I
		}
	}
	return def
}

// counterMap converts a counter vector to the name-keyed map the JSON report
// serializes (encoding/json sorts the keys). Nil when all-zero.
func counterMap(v *sim.CounterVec) map[string]int64 {
	if v.IsZero() {
		return nil
	}
	out := make(map[string]int64)
	v.EachNonZero(func(c sim.Counter, n int64) {
		out[c.String()] = n
	})
	return out
}
