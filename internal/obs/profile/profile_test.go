package profile

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// scenario is one profiled build configuration. The set deliberately covers
// the edge shapes the profiler must attribute exactly: strictly sequential
// pipelines (Workers=1), parallel lanes with staging, fallback-only builds,
// nested aux-structure spans, and the columnar scan path.
type scenario struct {
	name string
	cfg  func(ds *data.Dataset) mw.Config
	data func(t *testing.T) *data.Dataset
	opt  dtree.Options
}

func censusData(t *testing.T) *data.Dataset {
	t.Helper()
	ds, err := datagen.GenerateCensus(datagen.CensusConfig{Rows: 2500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func clusteredData(t *testing.T) *data.Dataset {
	t.Helper()
	ds, err := datagen.GenerateClustered(datagen.ClusteredConfig{Rows: 2500, Seed: 17, Regions: 6, Attrs: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func scenarios() []scenario {
	shallow := dtree.Options{MaxDepth: 4, MinRows: 40}
	return []scenario{
		{
			name: "workers1-nostage",
			cfg:  func(*data.Dataset) mw.Config { return mw.Config{Workers: 1, Staging: mw.StageNone} },
			data: censusData,
			opt:  shallow,
		},
		{
			name: "staged-parallel",
			cfg: func(ds *data.Dataset) mw.Config {
				return mw.Config{Workers: 4, Staging: mw.StageFileAndMemory, Memory: ds.Bytes() / 2}
			},
			data: censusData,
			opt:  shallow,
		},
		{
			name: "fallback-only",
			// A memory budget below every node's estimate (under two CC
			// entries) pushes every request to the SQL fallback: no scan
			// spans, only fallback arms.
			cfg:  func(*data.Dataset) mw.Config { return mw.Config{Workers: 4, Memory: 64, Staging: mw.StageNone} },
			data: censusData,
			opt:  dtree.Options{MaxDepth: 3, MinRows: 40},
		},
		{
			name: "keyset-aux",
			// A high threshold triggers the §4.3.3 auxiliary builds, nesting
			// aux spans inside the batch pipeline.
			cfg: func(*data.Dataset) mw.Config {
				return mw.Config{Workers: 4, Access: mw.AccessKeyset, AuxThreshold: 0.6, Staging: mw.StageNone}
			},
			data: censusData,
			opt:  shallow,
		},
		{
			name: "columnar-clustered",
			cfg:  func(*data.Dataset) mw.Config { return mw.Config{Workers: 4, Staging: mw.StageNone} },
			data: clusteredData,
			opt:  shallow,
		},
	}
}

// buildProfiled runs one instrumented tree build and returns the collector,
// the final virtual clock, and the meter's final counter vector (snapshotted
// before Close so teardown charges don't blur the comparison).
func buildProfiled(t *testing.T, sc scenario) (*obs.Collector, int64, sim.CounterVec) {
	t.Helper()
	ds := sc.data(t)
	col := obs.NewCollector(true, true)
	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)
	srv, err := engine.NewServer(eng, "cases", ds)
	if err != nil {
		t.Fatal(err)
	}
	tr, pm := col.Proc("test-"+sc.name, meter)
	eng.SetTracer(tr)
	mcfg := sc.cfg(ds)
	mcfg.Metrics = pm
	m, err := mw.New(srv, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dtree.Build(m, sc.opt); err != nil {
		m.Close()
		t.Fatalf("%s: build: %v", sc.name, err)
	}
	total := int64(meter.Now())
	counts := meter.CounterVec()
	m.Close()
	return col, total, counts
}

func eachNode(roots []*Node, fn func(*Node)) {
	for _, r := range roots {
		fn(r)
		eachNode(r.Children, fn)
	}
}

// TestAttributionSumsToTotal is the profiler's conservation property: over
// every scenario shape, exclusive virtual times sum exactly to the build's
// total virtual time (nothing double-counted, nothing dropped), and exclusive
// counter deltas sum exactly to the root spans' inclusive deltas.
func TestAttributionSumsToTotal(t *testing.T) {
	for _, sc := range scenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			col, meterNS, meterCounts := buildProfiled(t, sc)
			p := Compute(col.Trace, col.Metrics)
			if len(p.Procs) != 1 {
				t.Fatalf("procs = %d, want 1", len(p.Procs))
			}
			proc := p.Procs[0]
			if proc.Spans == 0 {
				t.Fatal("no spans profiled")
			}
			if proc.TotalNS != meterNS {
				t.Errorf("TotalNS = %d, meter = %d", proc.TotalNS, meterNS)
			}
			if proc.AttributedNS+proc.UnattributedNS != proc.TotalNS {
				t.Errorf("attributed %d + unattributed %d != total %d",
					proc.AttributedNS, proc.UnattributedNS, proc.TotalNS)
			}
			var sumExcl int64
			var exclCounts, rootIncl sim.CounterVec
			nodes := 0
			eachNode(proc.Roots, func(n *Node) {
				nodes++
				if n.ExclNS < 0 {
					t.Errorf("span %d %s/%s: negative exclusive time %d", n.ID, n.Cat, n.Name, n.ExclNS)
				}
				if n.InclNS < n.ExclNS {
					t.Errorf("span %d %s/%s: excl %d > incl %d", n.ID, n.Cat, n.Name, n.ExclNS, n.InclNS)
				}
				sumExcl += n.ExclNS
				exclCounts.Add(&n.exclVec)
			})
			if nodes != proc.Spans {
				t.Errorf("forest has %d nodes, proc.Spans = %d", nodes, proc.Spans)
			}
			if sumExcl != proc.AttributedNS {
				t.Errorf("sum of exclusive times %d != AttributedNS %d", sumExcl, proc.AttributedNS)
			}
			for _, r := range proc.Roots {
				rootIncl.Add(&r.inclVec)
			}
			if exclCounts != rootIncl {
				t.Errorf("exclusive counter deltas do not sum to the roots' inclusive deltas:\n  excl %v\n  incl %v",
					counterMap(&exclCounts), counterMap(&rootIncl))
			}
			// Spans can only observe counters the meter actually charged.
			exclCounts.EachNonZero(func(c sim.Counter, n int64) {
				if m := meterCounts.Get(c); n > m {
					t.Errorf("counter %s: attributed %d > meter total %d", c, n, m)
				}
			})
		})
	}
}

// TestOverlaysExcluded: the client-side level spans are overlay-only — they
// overlap by design and must not participate in attribution.
func TestOverlaysExcluded(t *testing.T) {
	col, _, _ := buildProfiled(t, scenarios()[0])
	p := Compute(col.Trace, col.Metrics)
	proc := p.Procs[0]
	if len(proc.Overlays) == 0 {
		t.Fatal("no overlay spans: expected the dtree level view")
	}
	for _, o := range proc.Overlays {
		if o.Cat != obs.CatLevel {
			t.Errorf("overlay span %d has cat %q, want %q", o.ID, o.Cat, obs.CatLevel)
		}
	}
	if proc.Spans+proc.OverlaySpans != proc.Spans+len(proc.Overlays) {
		t.Errorf("overlay count mismatch: %d != %d", proc.OverlaySpans, len(proc.Overlays))
	}
	if len(proc.ByLevel) == 0 {
		t.Error("no per-level rollup: batch spans should carry the level attribute")
	}
}

// TestForkSlackAndSkew checks the critical-path invariants on a parallel
// build: every fork group has a critical lane with zero slack bounding the
// barrier, slack sums agree, and the skew diagnosis names the worst group.
func TestForkSlackAndSkew(t *testing.T) {
	col, _, _ := buildProfiled(t, scenarios()[1]) // staged-parallel, Workers=4
	p := Compute(col.Trace, col.Metrics)
	proc := p.Procs[0]
	if len(proc.Forks) == 0 {
		t.Fatal("no fork groups found in a Workers=4 build")
	}
	var maxSlack int64
	for _, g := range proc.Forks {
		if len(g.Lanes) < 2 {
			t.Errorf("fork group %d has %d lanes, want >= 2", g.Parent, len(g.Lanes))
		}
		if g.CriticalLane == "" {
			t.Errorf("fork group %d has no critical lane", g.Parent)
		}
		var slackSum, maxBusy int64
		sawCritical := false
		for _, lc := range g.Lanes {
			slackSum += lc.SlackNS
			if lc.BusyNS > maxBusy {
				maxBusy = lc.BusyNS
			}
			if lc.Track == g.CriticalLane {
				sawCritical = true
				if lc.SlackNS != 0 {
					t.Errorf("fork group %d: critical lane %q has slack %d", g.Parent, lc.Track, lc.SlackNS)
				}
			}
		}
		if !sawCritical {
			t.Errorf("fork group %d: critical lane %q not among lanes", g.Parent, g.CriticalLane)
		}
		if slackSum != g.TotalSlackNS {
			t.Errorf("fork group %d: lane slack sums to %d, TotalSlackNS = %d", g.Parent, slackSum, g.TotalSlackNS)
		}
		if g.BarrierNS != g.ForkNS+maxBusy {
			t.Errorf("fork group %d: barrier %d != fork %d + max busy %d", g.Parent, g.BarrierNS, g.ForkNS, maxBusy)
		}
		if g.TotalSlackNS > maxSlack {
			maxSlack = g.TotalSlackNS
		}
	}
	if maxSlack > 0 {
		if proc.Skew == nil {
			t.Fatal("slack present but no skew diagnosis")
		}
		if proc.Skew.TotalSlackNS != maxSlack {
			t.Errorf("skew slack %d != worst group slack %d", proc.Skew.TotalSlackNS, maxSlack)
		}
		if proc.Skew.CriticalLane == "" {
			t.Error("skew diagnosis names no critical lane")
		}
	} else if proc.Skew != nil {
		t.Error("no slack anywhere but skew diagnosis present")
	}
}

// TestFallbackOnlyShape: with every request pushed to SQL, the profile still
// balances and the fallback category dominates the rollup.
func TestFallbackOnlyShape(t *testing.T) {
	col, _, _ := buildProfiled(t, scenarios()[2])
	p := Compute(col.Trace, col.Metrics)
	proc := p.Procs[0]
	found := false
	for _, r := range proc.ByCat {
		if r.Key == obs.CatFallback {
			found = true
		}
		if r.Key == obs.CatScan {
			t.Error("fallback-only build produced scan spans")
		}
	}
	if !found {
		t.Error("no fallback category in the rollup")
	}
}

// TestCriticalPathMarking: at least one root-to-leaf chain is critical, and
// no span is critical while its forest parent is not.
func TestCriticalPathMarking(t *testing.T) {
	col, _, _ := buildProfiled(t, scenarios()[1])
	p := Compute(col.Trace, col.Metrics)
	proc := p.Procs[0]
	criticals := 0
	eachNode(proc.Roots, func(n *Node) {
		if n.Critical {
			criticals++
			if n.up != nil && !n.up.Critical {
				t.Errorf("span %d critical under non-critical parent %d", n.ID, n.up.ID)
			}
		}
	})
	if criticals == 0 {
		t.Fatal("no critical spans marked")
	}
	if len(proc.Forks) > 0 {
		nonCritical := 0
		eachNode(proc.Roots, func(n *Node) {
			if !n.Critical {
				nonCritical++
			}
		})
		if nonCritical == 0 {
			t.Error("fork groups exist but every span is critical (slack lanes should be unmarked)")
		}
	}
}

// TestReportDeterminism: the text and JSON reports are byte-identical across
// GOMAXPROCS settings and across reruns of the same build.
func TestReportDeterminism(t *testing.T) {
	for _, sc := range []scenario{scenarios()[1], scenarios()[4]} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			render := func() (string, string) {
				col, _, _ := buildProfiled(t, sc)
				p := Compute(col.Trace, col.Metrics)
				var txt, js bytes.Buffer
				if err := p.WriteText(&txt); err != nil {
					t.Fatal(err)
				}
				if err := p.WriteJSON(&js); err != nil {
					t.Fatal(err)
				}
				return txt.String(), js.String()
			}
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
			runtime.GOMAXPROCS(1)
			txt1, js1 := render()
			runtime.GOMAXPROCS(8)
			txt2, js2 := render()
			txt3, js3 := render()
			if txt1 != txt2 || txt1 != txt3 {
				t.Error("text report differs across GOMAXPROCS or reruns")
			}
			if js1 != js2 || js1 != js3 {
				t.Error("JSON report differs across GOMAXPROCS or reruns")
			}
			if txt1 == "" || js1 == "" {
				t.Error("empty report")
			}
		})
	}
}

// TestWriteProfileRegistered: importing this package enables the collector's
// WriteProfile entry point for both formats.
func TestWriteProfileRegistered(t *testing.T) {
	col, _, _ := buildProfiled(t, scenarios()[0])
	var txt, js bytes.Buffer
	if err := col.WriteProfile(&txt, "text"); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteProfile(&js, "json"); err != nil {
		t.Fatal(err)
	}
	if txt.Len() == 0 || js.Len() == 0 {
		t.Error("empty WriteProfile output")
	}
	if err := col.WriteProfile(&txt, "bogus"); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestEmptyAndDegenerateTraces: the profiler accepts nil and empty inputs.
func TestEmptyAndDegenerateTraces(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *obs.Trace
	}{
		{"nil-trace", nil},
		{"no-procs", obs.NewTrace()},
	} {
		p := Compute(tc.tr, nil)
		if len(p.Procs) != 0 {
			t.Errorf("%s: got %d procs, want 0", tc.name, len(p.Procs))
		}
		var buf bytes.Buffer
		if err := p.WriteText(&buf); err != nil {
			t.Errorf("%s: WriteText: %v", tc.name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: empty text output", tc.name)
		}
		buf.Reset()
		if err := p.WriteJSON(&buf); err != nil {
			t.Errorf("%s: WriteJSON: %v", tc.name, err)
		}
	}
	// A registered proc with no spans still profiles cleanly.
	tr := obs.NewTrace()
	tr.Proc(1, "idle", sim.NewDefaultMeter())
	p := Compute(tr, nil)
	if len(p.Procs) != 1 {
		t.Fatalf("got %d procs, want 1", len(p.Procs))
	}
	if p.Procs[0].TotalNS != 0 || p.Procs[0].Spans != 0 {
		t.Errorf("idle proc: total %d spans %d, want 0/0", p.Procs[0].TotalNS, p.Procs[0].Spans)
	}
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestColumnarScanAttrs: the columnar scenario's scan spans carry the row
// group counters as span attributes.
func TestColumnarScanAttrs(t *testing.T) {
	col, _, _ := buildProfiled(t, scenarios()[4])
	p := Compute(col.Trace, col.Metrics)
	proc := p.Procs[0]
	sawGroups := false
	eachNode(proc.Roots, func(n *Node) {
		if n.Cat != obs.CatScan {
			return
		}
		if attrInt(n, "col_groups_scanned", -1) > 0 {
			sawGroups = true
		}
	})
	if !sawGroups {
		t.Error("no scan span carries col_groups_scanned > 0 on the columnar path")
	}
}

// TestSecsAndPctFormatting pins the integer-only renderers.
func TestSecsAndPctFormatting(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000000s"},
		{1_500, "0.000001s"},
		{999_999_999, "0.999999s"},
		{1_000_000_000, "1.000000s"},
		{12_345_678_901, "12.345678s"},
		{-2_000_001_000, "-2.000001s"},
	}
	for _, c := range cases {
		if got := secs(c.ns); got != c.want {
			t.Errorf("secs(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
	pcts := []struct {
		bp   int64
		want string
	}{
		{0, "0.00%"}, {1, "0.01%"}, {100, "1.00%"}, {9_999, "99.99%"}, {10_000, "100.00%"}, {-50, "-0.50%"},
	}
	for _, c := range pcts {
		if got := pct(c.bp); got != c.want {
			t.Errorf("pct(%d) = %q, want %q", c.bp, got, c.want)
		}
	}
	if got := pctBP(1, 3); got != 3333 {
		t.Errorf("pctBP(1,3) = %d, want 3333", got)
	}
	if got := pctBP(5, 0); got != 0 {
		t.Errorf("pctBP(5,0) = %d, want 0", got)
	}
}
