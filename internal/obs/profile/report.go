package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

func init() {
	obs.RegisterProfileWriter(func(t *obs.Trace, m *obs.Metrics, w io.Writer, format string) error {
		p := Compute(t, m)
		switch format {
		case "", "text":
			return p.WriteText(w)
		case "json":
			return p.WriteJSON(w)
		default:
			return fmt.Errorf("profile: unknown format %q (want text or json)", format)
		}
	})
}

// WriteJSON writes the whole profile as indented JSON. Struct field order and
// sorted map keys make the output byte-deterministic.
func (p *Profile) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// secs renders virtual nanoseconds as seconds with microsecond precision,
// via integer math only (byte-deterministic, no float formatting).
func secs(ns int64) string {
	sign := ""
	if ns < 0 {
		sign, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%06ds", sign, ns/1_000_000_000, (ns%1_000_000_000)/1_000)
}

// pct renders basis points as a percentage with two decimals.
func pct(bp int64) string {
	sign := ""
	if bp < 0 {
		sign, bp = "-", -bp
	}
	return fmt.Sprintf("%s%d.%02d%%", sign, bp/100, bp%100)
}

// WriteText writes the EXPLAIN ANALYZE-style report: per proc, the span tree
// with inclusive/exclusive costs and critical-path markers, the level/batch
// breakdown, the top cost centers, the per-category and per-source rollups,
// every fork barrier's lane slack, and the skew diagnosis. Deterministic:
// byte-identical across reruns and GOMAXPROCS, same as the trace it reads.
func (p *Profile) WriteText(w io.Writer) error {
	tw := &errWriter{w: w}
	if len(p.Procs) == 0 {
		tw.printf("profile: empty trace (no procs)\n")
		return tw.err
	}
	for i, proc := range p.Procs {
		if i > 0 {
			tw.printf("\n")
		}
		writeProcText(tw, proc)
	}
	return tw.err
}

func writeProcText(tw *errWriter, proc *Proc) {
	tw.printf("== proc %d %q ==\n", proc.ID, proc.Label)
	tw.printf("total %s   spans %d", secs(proc.TotalNS), proc.Spans)
	if proc.OverlaySpans > 0 {
		tw.printf(" (+%d overlay)", proc.OverlaySpans)
	}
	tw.printf("   attributed %s (%s)", secs(proc.AttributedNS), pct(pctBP(proc.AttributedNS, proc.TotalNS)))
	if proc.UnattributedNS != 0 {
		tw.printf("   unattributed %s", secs(proc.UnattributedNS))
	}
	tw.printf("\n")

	if len(proc.Roots) > 0 {
		tw.printf("\nspan tree (* = critical path; incl / excl / excl%% of total):\n")
		for _, r := range proc.Roots {
			writeNodeText(tw, proc, r, 0)
		}
	}
	if len(proc.Overlays) > 0 {
		tw.printf("\nclient level view (overlay spans, excluded from attribution):\n")
		for _, o := range proc.Overlays {
			tw.printf("  %-24s %s .. %s  incl %s%s\n",
				o.Name, secs(o.StartNS), secs(o.EndNS()), secs(o.InclNS),
				topCounters(&o.inclVec, 3))
		}
	}
	if len(proc.Hot) > 0 {
		tw.printf("\ncost centers (top exclusive time):\n")
		for i, h := range proc.Hot {
			loc := h.Cat + "/" + h.Name
			if h.Source != "" {
				loc += " [" + h.Source + "]"
			}
			tw.printf("  %2d. %-36s span %-5d excl %s  %s\n",
				i+1, loc, h.ID, secs(h.ExclNS), pct(h.PctBP))
		}
	}
	if len(proc.ByCat) > 0 {
		tw.printf("\nby category (exclusive):\n")
		for _, r := range proc.ByCat {
			tw.printf("  %-10s %4d spans  excl %s  %s%s\n",
				r.Key, r.Spans, secs(r.ExclNS), pct(r.PctBP), topCounters(&r.vec, 3))
		}
	}
	if len(proc.BySource) > 0 {
		tw.printf("\nby source tier (exclusive):\n")
		for _, r := range proc.BySource {
			tw.printf("  %-10s %4d spans  excl %s  %s\n",
				r.Key, r.Spans, secs(r.ExclNS), pct(r.PctBP))
		}
	}
	if len(proc.ByLevel) > 0 {
		tw.printf("\nby tree level (batch spans, inclusive):\n")
		for _, l := range proc.ByLevel {
			tw.printf("  level %-3d %3d batches  %s .. %s  incl %s%s\n",
				l.Level, l.Batches, secs(l.StartNS), secs(l.EndNS), secs(l.InclNS),
				topCounters(&l.vec, 3))
		}
	}
	if len(proc.Forks) > 0 {
		tw.printf("\nfork/join barriers (lane busy time and join slack):\n")
		for _, g := range proc.Forks {
			tw.printf("  span %d %s/%s", g.Parent, g.ParentCat, g.ParentName)
			if g.Source != "" {
				tw.printf(" [%s]", g.Source)
			}
			if g.Batch > 0 {
				tw.printf(" batch %d", g.Batch)
			}
			tw.printf(": %d lanes, fork %s, barrier %s, critical %q, total slack %s\n",
				len(g.Lanes), secs(g.ForkNS), secs(g.BarrierNS), g.CriticalLane, secs(g.TotalSlackNS))
			for _, lc := range g.Lanes {
				marker := " "
				if lc.Track == g.CriticalLane {
					marker = "*"
				}
				tw.printf("    %s %-8s busy %s  slack %s", marker, lc.Track, secs(lc.BusyNS), secs(lc.SlackNS))
				if lc.Rows > 0 {
					tw.printf("  rows %d", lc.Rows)
				}
				tw.printf("\n")
			}
		}
	}
	if proc.Skew != nil {
		s := proc.Skew
		tw.printf("\nskew diagnosis: ")
		if s.Batch > 0 {
			tw.printf("batch %d ", s.Batch)
		}
		if s.Source != "" {
			tw.printf("[%s] ", s.Source)
		}
		tw.printf("%s span %d loses the most to lane imbalance: critical lane %q busy %s, total join slack %s (%s of build)\n",
			s.ParentCat, s.Parent, s.CriticalLane, secs(s.BusyNS), secs(s.TotalSlackNS), pct(s.PctBP))
	}
	if len(proc.Counters) > 0 {
		tw.printf("\ncounters (build totals):\n")
		keys := make([]string, 0, len(proc.Counters))
		//repolint:ordered collect-then-sort
		for k := range proc.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			tw.printf("  %-22s %d\n", k, proc.Counters[k])
		}
	}
}

func writeNodeText(tw *errWriter, proc *Proc, n *Node, depth int) {
	marker := " "
	if n.Critical {
		marker = "*"
	}
	label := n.Cat + "/" + n.Name
	if n.Source != "" {
		label += " [" + n.Source + "]"
	}
	if n.Track != "" {
		label += " (" + n.Track + ")"
	}
	if n.Part != "" {
		label += " part=" + n.Part
	}
	if n.Rows > 0 {
		label += fmt.Sprintf(" rows=%d", n.Rows)
	}
	if lvl := attrInt(n, "level", -1); n.Cat == obs.CatBatch && lvl >= 0 {
		label += fmt.Sprintf(" level=%d", lvl)
	}
	indent := strings.Repeat("  ", depth)
	pad := 56 - len(indent) - len(label)
	if pad < 1 {
		pad = 1
	}
	tw.printf("%s %s%s%s incl %s  excl %s  %6s%s\n",
		marker, indent, label, strings.Repeat(" ", pad),
		secs(n.InclNS), secs(n.ExclNS), pct(n.PctBP), topCounters(&n.exclVec, 3))
	for _, k := range n.Children {
		writeNodeText(tw, proc, k, depth+1)
	}
}

// topCounters renders the k largest (by absolute value) non-zero counters of
// a vector as "  {name=v name=v}", or "" when the vector is zero. Ordering is
// by descending absolute value, then counter declaration order.
func topCounters(v *sim.CounterVec, k int) string {
	type kv struct {
		c sim.Counter
		n int64
	}
	var all []kv
	v.EachNonZero(func(c sim.Counter, n int64) {
		all = append(all, kv{c, n})
	})
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return abs64(all[i].n) > abs64(all[j].n) })
	if len(all) > k {
		all = all[:k]
	}
	var b strings.Builder
	b.WriteString("  {")
	for i, e := range all {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", e.c, e.n)
	}
	b.WriteString("}")
	return b.String()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// errWriter accumulates the first write error so the renderers stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}
