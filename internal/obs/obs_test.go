package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestNilTracerZeroAllocs asserts the disabled-observability contract: with a
// nil tracer, the whole span API — Start, every setter, End — performs zero
// allocations, so hot paths need no enabled/disabled branches.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(CatBatch, "batch").
			SetSource("server").SetRows(100).SetBytes(4096).
			SetPartition(1, 4).Attr("k", 7).AttrStr("s", "v").SetName("renamed")
		sp.End()
		sp.EndAt(5) // idempotent, still no-op
		if lt := tr.Track("x"); lt != nil {
			t.Fatal("nil tracer Track returned non-nil")
		}
		if lts := tr.ForkLanes(nil); lts != nil {
			t.Fatal("nil tracer ForkLanes returned non-nil")
		}
		tr.JoinLanes(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer span API allocated %v times per run, want 0", allocs)
	}
}

// TestNilCollector asserts the nil Collector is a complete no-op handle.
func TestNilCollector(t *testing.T) {
	if c := NewCollector(false, false); c != nil {
		t.Fatal("NewCollector(false, false) should return nil")
	}
	var c *Collector
	tr, pm := c.Proc("x", sim.NewDefaultMeter())
	if tr != nil || pm != nil {
		t.Fatal("nil collector Proc should return (nil, nil)")
	}
	var b bytes.Buffer
	if err := c.WriteTrace(&b, "chrome"); err != nil || b.Len() != 0 {
		t.Fatalf("nil collector WriteTrace: err=%v len=%d", err, b.Len())
	}
	if err := c.WriteMetrics(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil collector WriteMetrics: err=%v len=%d", err, b.Len())
	}
	if s := c.Summary(); s != "" {
		t.Fatalf("nil collector Summary = %q", s)
	}
}

// TestSpanNesting checks parent assignment, deterministic ids and virtual-time
// durations for a simple nested open/close sequence.
func TestSpanNesting(t *testing.T) {
	meter := sim.NewDefaultMeter()
	trace := NewTrace()
	tr := trace.Proc(1, "test", meter)

	outer := tr.Start(CatBatch, "outer")
	meter.Advance(100)
	inner := tr.Start(CatScan, "inner").SetRows(5)
	meter.Advance(50)
	inner.End()
	meter.Advance(25)
	outer.End()

	if trace.NumSpans() != 2 {
		t.Fatalf("NumSpans = %d, want 2", trace.NumSpans())
	}
	p := trace.procs[0]
	o, i := p.spans[0], p.spans[1]
	if o.ID != 1 || i.ID != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", o.ID, i.ID)
	}
	if i.Parent != o.ID {
		t.Fatalf("inner parent = %d, want %d", i.Parent, o.ID)
	}
	if o.Parent != 0 {
		t.Fatalf("outer parent = %d, want 0 (root)", o.Parent)
	}
	if o.Start != 0 || o.Dur != 175 {
		t.Fatalf("outer start/dur = %d/%d, want 0/175", o.Start, o.Dur)
	}
	if i.Start != 100 || i.Dur != 50 {
		t.Fatalf("inner start/dur = %d/%d, want 100/50", i.Start, i.Dur)
	}
	if i.Rows != 5 {
		t.Fatalf("inner rows = %d, want 5", i.Rows)
	}
}

// TestEndAtClamp checks EndAt clamps negative durations to zero and that End
// is idempotent.
func TestEndAtClamp(t *testing.T) {
	meter := sim.NewDefaultMeter()
	tr := NewTrace().Proc(1, "t", meter)
	meter.Advance(100)
	sp := tr.Start(CatLevel, "lvl")
	sp.EndAt(10) // before start
	if sp.Dur != 0 {
		t.Fatalf("EndAt clamp: dur = %d, want 0", sp.Dur)
	}
	meter.Advance(100)
	sp.End() // second close must not resurrect the span
	if sp.Dur != 0 {
		t.Fatalf("End after EndAt changed dur to %d", sp.Dur)
	}
}

// laneWork drives a forked lane pair with asymmetric charges and returns the
// full NDJSON export, exercising the fold across real goroutines.
func laneWork(t *testing.T) []byte {
	t.Helper()
	meter := sim.NewDefaultMeter()
	trace := NewTrace()
	tr := trace.Proc(1, "fork", meter)

	bsp := tr.Start(CatBatch, "batch")
	lanes := meter.Fork(4)
	ltrs := tr.ForkLanes(lanes)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lsp := ltrs[w].Start(CatLane, "lane").SetPartition(w, 4)
			// Asymmetric work so lane clocks differ.
			lanes[w].Charge(sim.CtrMemRowsRead, 10, int64(w+1))
			lsp.SetRows(int64(w + 1)).End()
		}(w)
	}
	wg.Wait()
	meter.Join(lanes)
	tr.JoinLanes(ltrs)
	bsp.End()

	var b bytes.Buffer
	if err := trace.WriteNDJSON(&b); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	return b.Bytes()
}

// TestForkJoinDeterministic runs the same forked workload repeatedly and
// demands byte-identical exports: lane spans must fold in lane index order
// with reproducible ids regardless of goroutine interleaving.
func TestForkJoinDeterministic(t *testing.T) {
	ref := laneWork(t)
	for i := 0; i < 10; i++ {
		if got := laneWork(t); !bytes.Equal(got, ref) {
			t.Fatalf("run %d: NDJSON differs from first run\nref:\n%s\ngot:\n%s", i, ref, got)
		}
	}
	// Lane spans land on their own tracks with the batch span as parent.
	lines := strings.Split(strings.TrimSpace(string(ref)), "\n")
	if len(lines) != 6 { // batch + 4 lanes + trailer
		t.Fatalf("line count = %d, want 6", len(lines))
	}
	var sum ndSummary
	if err := json.Unmarshal([]byte(lines[5]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Type != "trace" || sum.Procs != 1 || sum.Spans != 5 {
		t.Fatalf("trailer = %+v, want trace/1/5", sum)
	}
	var batch ndSpan
	if err := json.Unmarshal([]byte(lines[0]), &batch); err != nil {
		t.Fatal(err)
	}
	for i, ln := range lines[1:5] {
		var s ndSpan
		if err := json.Unmarshal([]byte(ln), &s); err != nil {
			t.Fatal(err)
		}
		if s.Parent != batch.ID {
			t.Fatalf("lane %d parent = %d, want batch id %d", i, s.Parent, batch.ID)
		}
		if want := "lane " + string(rune('1'+i)); s.TrackN != want {
			t.Fatalf("lane %d track = %q, want %q", i, s.TrackN, want)
		}
		if s.Rows != int64(i+1) {
			t.Fatalf("lane %d rows = %d, want %d", i, s.Rows, i+1)
		}
	}
}

// TestWriteChrome checks the Chrome export is valid JSON with the expected
// event structure and is byte-deterministic across repeated exports.
func TestWriteChrome(t *testing.T) {
	meter := sim.NewDefaultMeter()
	trace := NewTrace()
	tr := trace.Proc(1, "proc-a", meter)
	sp := tr.Start(CatSQL, "sql").AttrStr("stmt", "SELECT 1").SetRows(1)
	meter.Advance(1234567) // exercises the sub-microsecond ts formatter
	sp.End()

	var b1, b2 bytes.Buffer
	if err := trace.WriteChrome(&b1, nil); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := trace.WriteChrome(&b2, nil); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("repeated WriteChrome exports differ")
	}

	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, b1.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var haveProcName, haveSpan bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				haveProcName = true
			}
		case "X":
			haveSpan = true
			if ev["name"] != "sql" || ev["cat"] != CatSQL {
				t.Fatalf("span event = %v", ev)
			}
			if ev["dur"].(float64) != 1234.567 {
				t.Fatalf("dur = %v, want 1234.567 us", ev["dur"])
			}
			args := ev["args"].(map[string]any)
			if args["stmt"] != "SELECT 1" || args["rows"].(float64) != 1 {
				t.Fatalf("span args = %v", args)
			}
		}
	}
	if !haveProcName || !haveSpan {
		t.Fatalf("missing events: procName=%v span=%v", haveProcName, haveSpan)
	}
}

// TestMetricsSampling drives the ChargeObserver hook and checks throttled
// sampling, batch stats, lane imbalance and deterministic JSON output.
func TestMetricsSampling(t *testing.T) {
	meter := sim.NewDefaultMeter()
	reg := NewMetrics()
	pm := reg.NewProc(1, "m", meter)
	meter.SetObserver(pm)

	// First charge always samples; charges inside the throttle window do not.
	meter.Charge(sim.CtrMemRowsRead, 10, 1)
	meter.Charge(sim.CtrMemRowsRead, 10, 1)
	if len(pm.Samples) != 1 {
		t.Fatalf("samples after 2 close charges = %d, want 1 (throttled)", len(pm.Samples))
	}
	// A charge that advances past the sampling period lands a second sample.
	meter.Charge(sim.CtrMemRowsRead, defaultSampleEveryNS, 1)
	if len(pm.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(pm.Samples))
	}
	last := pm.Samples[len(pm.Samples)-1]
	idx := -1
	for i, n := range pm.WatchNames {
		if n == sim.CtrMemRowsRead.String() {
			idx = i
		}
	}
	if idx < 0 || last.Vals[idx] != 3 {
		t.Fatalf("watched mem_rows_read = %d (idx %d), want 3", last.Vals[idx], idx)
	}

	pm.AddBatch(BatchStats{
		Batch: 1, Source: "server", EndNS: int64(meter.Now()),
		Lanes: []LaneStat{{Lane: 1, ElapsedNS: 100}, {Lane: 2, ElapsedNS: 160}},
	})
	if got := pm.MaxLaneImbalanceNS(); got != 60 {
		t.Fatalf("MaxLaneImbalanceNS = %d, want 60", got)
	}

	var b1, b2 bytes.Buffer
	if err := reg.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("repeated WriteJSON exports differ")
	}
	if !json.Valid(b1.Bytes()) {
		t.Fatalf("metrics JSON invalid:\n%s", b1.String())
	}
	if s := reg.Summary(); !strings.Contains(s, "max lane imbalance 60 ns") {
		t.Fatalf("Summary missing imbalance: %q", s)
	}

	// Nil ProcMetrics: every method is a safe no-op.
	var nilPM *ProcMetrics
	nilPM.ObserveCharge(sim.CtrMemRowsRead, 1, 1, 1)
	nilPM.AddBatch(BatchStats{})
	if nilPM.MaxLaneImbalanceNS() != 0 {
		t.Fatal("nil ProcMetrics imbalance != 0")
	}
}

// TestCollectorTraceFormats checks format dispatch and the unknown-format
// error.
func TestCollectorTraceFormats(t *testing.T) {
	c := NewCollector(true, true)
	meter := sim.NewDefaultMeter()
	tr, pm := c.Proc("p", meter)
	if tr == nil || pm == nil {
		t.Fatal("collector Proc returned nil facilities")
	}
	tr.Start(CatBuild, "b").End()

	var chrome, nd bytes.Buffer
	if err := c.WriteTrace(&chrome, ""); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteTrace(&nd, "ndjson"); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(chrome.Bytes()) {
		t.Fatal("chrome trace invalid JSON")
	}
	first, _, _ := bytes.Cut(bytes.TrimSpace(nd.Bytes()), []byte("\n"))
	var s ndSpan
	if err := json.Unmarshal(first, &s); err != nil || s.Name != "b" {
		t.Fatalf("ndjson span: %v %+v", err, s)
	}
	if err := c.WriteTrace(&chrome, "bogus"); err == nil {
		t.Fatal("unknown trace format accepted")
	}
}

// TestTruncate checks the attribute-string cap.
func TestTruncate(t *testing.T) {
	if got := Truncate("abcdef", 3); got != "abc" {
		t.Fatalf("Truncate = %q", got)
	}
	if got := Truncate("ab", 3); got != "ab" {
		t.Fatalf("Truncate short = %q", got)
	}
}
