package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// usec renders a virtual-ns quantity as Chrome trace-event microseconds with
// nanosecond precision ("1234.567"). A fixed formatter (never float64) keeps
// the export byte-deterministic.
type usec int64

func (u usec) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%d.%03d", int64(u)/1000, int64(u)%1000)), nil
}

// traceEvent is one Chrome trace-event object. Field order is fixed by the
// struct; map-valued Args marshal with sorted keys — both are load-bearing
// for the byte-determinism contract.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   usec           `json:"ts"`
	Dur  *usec          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the trace in Chrome/Perfetto trace-event JSON: each proc
// becomes a process, each track (main, lane 1, lane 2, ...) a thread, each
// span a complete ("X") event. Load the file at https://ui.perfetto.dev.
// Counter ("C") events from optional metrics render budget utilization and
// counter rates as time series; pass nil to export spans only.
func (t *Trace) WriteChrome(w io.Writer, m *Metrics) error {
	ew := &eventWriter{w: w}
	ew.begin()
	if t != nil {
		t.mu.Lock()
		for _, p := range t.procs {
			ew.emit(traceEvent{
				Name: "process_name", Ph: "M", Pid: p.id,
				Args: map[string]any{"name": p.name},
			})
			ew.emit(traceEvent{
				Name: "process_sort_index", Ph: "M", Pid: p.id,
				Args: map[string]any{"sort_index": p.id},
			})
			for tid, tn := range p.tracks {
				ew.emit(traceEvent{
					Name: "thread_name", Ph: "M", Pid: p.id, Tid: tid,
					Args: map[string]any{"name": tn},
				})
				ew.emit(traceEvent{
					Name: "thread_sort_index", Ph: "M", Pid: p.id, Tid: tid,
					Args: map[string]any{"sort_index": tid},
				})
			}
			for _, s := range p.spans {
				d := usec(s.Dur)
				ew.emit(traceEvent{
					Name: s.Name, Cat: s.Cat, Ph: "X",
					Ts: usec(s.Start), Dur: &d,
					Pid: s.Proc, Tid: s.Track, ID: s.ID,
					Args: spanArgs(s),
				})
			}
		}
		t.mu.Unlock()
	}
	if m != nil {
		m.emitCounters(ew)
	}
	ew.end()
	return ew.err
}

// spanArgs builds the args payload for a span's trace event.
func spanArgs(s *Span) map[string]any {
	args := make(map[string]any)
	if s.Parent != 0 {
		args["parent"] = s.Parent
	}
	if s.Source != "" {
		args["source"] = s.Source
	}
	if len(s.Nodes) > 0 {
		args["nodes"] = s.Nodes
	}
	if s.Rows != 0 {
		args["rows"] = s.Rows
	}
	if s.Bytes != 0 {
		args["bytes"] = s.Bytes
	}
	if s.NParts > 0 {
		args["partition"] = fmt.Sprintf("%d/%d", s.Part, s.NParts)
	}
	for _, a := range s.Attrs {
		if a.S != "" {
			args[a.Key] = a.S
		} else {
			args[a.Key] = a.I
		}
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// eventWriter streams the traceEvents array with one event per line. A trace
// with zero events renders as a compact empty array — `"traceEvents":[]` —
// so an empty (or nil) trace still exports a valid, loadable document and
// callers never need to guard the zero-span case.
type eventWriter struct {
	w     io.Writer
	err   error
	first bool
}

func (ew *eventWriter) begin() {
	ew.first = true
	ew.write([]byte("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["))
}

func (ew *eventWriter) end() {
	if !ew.first {
		ew.write([]byte("\n"))
	}
	ew.write([]byte("]}\n"))
}

func (ew *eventWriter) emit(ev traceEvent) {
	if ew.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		ew.err = err
		return
	}
	if ew.first {
		ew.write([]byte("\n"))
	} else {
		ew.write([]byte(",\n"))
	}
	ew.first = false
	ew.write(b)
}

func (ew *eventWriter) write(b []byte) {
	if ew.err != nil {
		return
	}
	_, ew.err = ew.w.Write(b)
}

// ndSpan is the NDJSON projection of a span: flat, self-describing, stable
// field order.
type ndSpan struct {
	Type    string `json:"type"`
	Proc    int    `json:"proc"`
	ProcN   string `json:"proc_name"`
	Track   int    `json:"track"`
	TrackN  string `json:"track_name"`
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent,omitempty"`
	Cat     string `json:"cat"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Source  string `json:"source,omitempty"`
	Nodes   []int  `json:"nodes,omitempty"`
	Rows    int64  `json:"rows,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	Part    string `json:"part,omitempty"`
	Overlay bool   `json:"overlay,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// ndSummary is the trailer line closing every NDJSON export: it makes the
// document self-describing (a consumer can verify it read every span) and
// guarantees an empty — even nil — trace still emits one valid JSON line
// rather than zero bytes.
type ndSummary struct {
	Type  string `json:"type"`
	Procs int    `json:"procs"`
	Spans int    `json:"spans"`
}

// WriteNDJSON writes one JSON object per span, one per line, in deterministic
// order (procs in registration order, spans in record order), closed by one
// `{"type":"trace", ...}` summary line — the grep/jq-friendly counterpart of
// WriteChrome.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	procs, spans := 0, 0
	if t != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		procs = len(t.procs)
		for _, p := range t.procs {
			spans += len(p.spans)
			for _, s := range p.spans {
				ns := ndSpan{
					Type: "span", Proc: p.id, ProcN: p.name,
					Track: s.Track, TrackN: p.tracks[s.Track],
					ID: s.ID, Parent: s.Parent, Cat: s.Cat, Name: s.Name,
					StartNS: s.Start, DurNS: s.Dur,
					Source: s.Source, Nodes: s.Nodes, Rows: s.Rows, Bytes: s.Bytes,
					Overlay: s.Overlay,
					Attrs:   s.Attrs,
				}
				if s.NParts > 0 {
					ns.Part = strconv.Itoa(s.Part) + "/" + strconv.Itoa(s.NParts)
				}
				b, err := json.Marshal(ns)
				if err != nil {
					return err
				}
				if _, err := w.Write(append(b, '\n')); err != nil {
					return err
				}
			}
		}
	}
	b, err := json.Marshal(ndSummary{Type: "trace", Procs: procs, Spans: spans})
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
