package dtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/sim"
)

// randomDataset draws rows over the schema with attribute values restricted
// to [0, hi) per attribute (hi = full card for the scoring set, card-1 for
// the training set, so scoring encounters values the tree never saw).
func randomDataset(rng *rand.Rand, schema *data.Schema, n int, restrict bool) *data.Dataset {
	ds := data.NewDataset(schema)
	for i := 0; i < n; i++ {
		row := make(data.Row, schema.NumCols())
		for a, at := range schema.Attrs {
			hi := at.Card
			if restrict && hi > 2 {
				hi-- // hold the top code out of training
			}
			row[a] = data.Value(rng.Intn(hi))
		}
		row[schema.ClassIndex()] = data.Value(rng.Intn(schema.Class.Card))
		ds.Rows = append(ds.Rows, row)
	}
	return ds
}

// TestScoringProperties is the randomized spine check: across many seeded
// (tree, row-batch) draws, the in-client tree walk, the compiled CASE
// expression, and the vectorized catalog operator agree byte for byte — and
// each prediction's distribution is exactly the training distribution of the
// tree node the walk stops at, with the predicted class its majority class.
// The scoring set deliberately contains attribute values the training set
// never had, so the unseen-value fallback and the dictionary-miss path are
// exercised on every trial.
func TestScoringProperties(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			schema := data.NewSchema(2+rng.Intn(5), 2+rng.Intn(5), 2+rng.Intn(3))
			train := randomDataset(rng, schema, 300+rng.Intn(300), true)
			scoreSet := randomDataset(rng, schema, 500+rng.Intn(500), false)

			opt := Options{MaxDepth: 2 + rng.Intn(4)}
			if rng.Intn(2) == 1 {
				opt.Split = MultiwaySplit
			}
			tree, err := BuildInMemory(train, opt)
			if err != nil {
				t.Fatal(err)
			}

			// Path A: in-client walk over the scoring rows.
			want := make([]byte, 0, len(scoreSet.Rows)*2)
			for _, row := range scoreSet.Rows {
				want = append(want, fmt.Sprintf("%d\n", tree.Predict(row))...)
			}

			eng := engine.New(sim.NewDefaultMeter(), 0)
			if _, err := engine.NewServer(eng, "cases", scoreSet); err != nil {
				t.Fatal(err)
			}
			m, err := Compile(tree, "m")
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.RegisterModel(m); err != nil {
				t.Fatal(err)
			}

			// Path B: compiled CASE expression as SQL.
			rs, err := eng.Exec(ScoreSQL(tree, "cases"))
			if err != nil {
				t.Fatal(err)
			}
			caseGot := make([]byte, 0, len(want))
			for _, r := range rs.Rows {
				caseGot = append(caseGot, fmt.Sprintf("%d\n", r[0].I)...)
			}
			if !bytes.Equal(caseGot, want) {
				t.Fatal("CASE-expression path diverges from the in-client walk")
			}

			// Path C: vectorized catalog operator at a random worker count.
			workers := []int{1, 4, 8}[rng.Intn(3)]
			res, err := eng.ScoreTable(mustTable(t, eng, "cases"), m, workers)
			if err != nil {
				t.Fatal(err)
			}
			vecGot := make([]byte, 0, len(want))
			for _, c := range res.Classes {
				vecGot = append(vecGot, fmt.Sprintf("%d\n", c)...)
			}
			if !bytes.Equal(vecGot, want) {
				t.Fatalf("vectorized path (workers=%d) diverges from the in-client walk", workers)
			}

			// Distribution properties, per scored row.
			for i, row := range scoreSet.Rows {
				node := walkToLeafNode(tree, row)
				dist := res.Dist(m, i)
				if len(dist) != schema.Class.Card {
					t.Fatalf("row %d: dist has %d classes, want %d", i, len(dist), schema.Class.Card)
				}
				var sum int64
				maxc, maxv := data.Value(0), int64(-1)
				for c, v := range dist {
					if v < 0 {
						t.Fatalf("row %d: negative count %d in distribution", i, v)
					}
					sum += v
					if v > maxv {
						maxc, maxv = data.Value(c), v
					}
				}
				if sum != node.Rows {
					t.Fatalf("row %d: distribution sums to %d, node holds %d training rows", i, sum, node.Rows)
				}
				if fmt.Sprint(dist) != fmt.Sprint(node.ClassCounts) {
					t.Fatalf("row %d: dist %v != stop node's training counts %v", i, dist, node.ClassCounts)
				}
				// The predicted class is the majority class of the stop
				// node's distribution (ties broken by lowest code, the
				// builder's rule).
				if res.Classes[i] != maxc && dist[res.Classes[i]] != maxv {
					t.Fatalf("row %d: predicted class %d is not a majority class of %v", i, res.Classes[i], dist)
				}
			}
		})
	}
}
