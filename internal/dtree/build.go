package dtree

import (
	"sort"

	"repro/internal/cc"
	"repro/internal/data"
	"repro/internal/mw"
	"repro/internal/predicate"
)

// Build grows a decision tree through the middleware using the Figure 3
// protocol: enqueue a request per active node, consume whichever counts
// tables the middleware chose to fulfil, grow the tree one level at those
// nodes, repeat until no active nodes remain. Children that already satisfy
// a termination criterion (their class histogram is known exactly from the
// parent's CC table) become leaves immediately and are never requested.
// Build is the single-session loop over Builder; the multi-tenant fleet
// drives the same Builder with an external scheduler.
func Build(m *mw.Middleware, opt Options) (*Tree, error) {
	b, err := NewBuilder(m, opt)
	if err != nil {
		return nil, err
	}
	for b.Pending() > 0 {
		results, err := m.Step()
		if err != nil {
			b.Abort()
			return nil, err
		}
		if err := b.Feed(results); err != nil {
			b.Abort()
			return nil, err
		}
	}
	return b.Finish()
}

// terminalProbe restricts Options to the criteria decidable without a CC
// table (purity, size, depth, exhausted attributes). decide is called with a
// nil table; guard by treating the gain search as "unknown, not a leaf".
func terminalProbe(opt Options) Options {
	o := opt
	o.probeOnly = true
	return o
}

// BuildInMemory grows a tree with the same split logic directly over an
// in-memory dataset: the traditional client of §3.1 and the reference
// implementation the middleware-built tree must match exactly.
func BuildInMemory(ds *data.Dataset, opt Options) (*Tree, error) {
	return BuildLevelwise(ds, opt, nil)
}

// BuildLevelwise grows the tree level-synchronously: one pass over the data
// per frontier generation, routing each row down the partially built tree to
// its active node and accumulating that node's counts table. This is how a
// traditional client organizes counting once the data has been extracted;
// onRow (may be nil) is invoked once per row per pass so baselines can
// charge per-row access costs. The tree produced is identical to Build's and
// BuildInMemory's.
func BuildLevelwise(ds *data.Dataset, opt Options, onRow func()) (*Tree, error) {
	schema := ds.Schema
	classCard := schema.Class.Card
	classIdx := schema.ClassIndex()

	root := &Node{ID: 0, Attrs: allAttrs(schema), Rows: int64(ds.N()), Depth: 0}
	nextID := 1

	type active struct {
		n     *Node
		attrs []int // counted attribute set
		cc    *cc.Table
	}
	frontier := map[*Node]*active{
		root: {n: root, attrs: append(append([]int(nil), root.Attrs...), classIdx), cc: cc.New()},
	}

	for len(frontier) > 0 {
		// One counting pass: route every row to its frontier node.
		for _, r := range ds.Rows {
			if onRow != nil {
				onRow()
			}
			n := root
			for {
				if a, ok := frontier[n]; ok {
					a.cc.AddRow(r, a.attrs)
					break
				}
				if n.Leaf {
					break
				}
				n = descend(n, r)
				if n == nil {
					break
				}
			}
		}

		// Decide every frontier node and assemble the next frontier.
		next := map[*Node]*active{}
		// Deterministic iteration order (by node ID).
		ordered := make([]*active, 0, len(frontier))
		for _, a := range frontier {
			ordered = append(ordered, a)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].n.ID < ordered[j].n.ID })
		for _, a := range ordered {
			n := a.n
			n.ClassCounts = classTotals(a.cc, classIdx, classCard)
			n.Class, _ = majority(n.ClassCounts)
			dec := decide(a.cc, n.Attrs, n.ClassCounts, n.Rows, n.Depth, opt)
			if dec.leaf {
				n.Leaf = true
				continue
			}
			n.SplitAttr = dec.attr
			n.SplitVal = dec.val
			n.Multiway = len(dec.vals) > 0
			n.SplitVals = dec.vals
			for _, spec := range expand(a.cc, n, dec, classCard) {
				child := &Node{
					ID:          nextID,
					Path:        n.Path.And(spec.cond),
					Attrs:       spec.attrs,
					Rows:        spec.rows,
					Depth:       n.Depth + 1,
					ClassCounts: spec.classCounts,
				}
				nextID++
				child.Class, _ = majority(child.ClassCounts)
				n.Children = append(n.Children, child)
				cdec := decide(nil, child.Attrs, child.ClassCounts, child.Rows, child.Depth, terminalProbe(opt))
				if cdec.leaf {
					child.Leaf = true
					continue
				}
				next[child] = &active{
					n:     child,
					attrs: append(append([]int(nil), child.Attrs...), classIdx),
					cc:    cc.New(),
				}
			}
		}
		frontier = next
	}
	return finalize(&Tree{Root: root, Schema: schema}), nil
}

// descend follows the split at internal node n for row r, or returns nil for
// an unseen multiway value.
func descend(n *Node, r data.Row) *Node {
	v := r[n.SplitAttr]
	if !n.Multiway {
		if v == n.SplitVal {
			return n.Children[0]
		}
		return n.Children[1]
	}
	for i, sv := range n.SplitVals {
		if sv == v {
			return n.Children[i]
		}
	}
	return nil
}

// CountsFetcher obtains the counts table for a node identified by its path
// predicate and remaining attribute set. The table must include the class
// pseudo-attribute (attribute index = schema.ClassIndex()).
type CountsFetcher func(path predicate.Conj, attrs []int) (*cc.Table, error)

// BuildWithCounts grows a tree level by level with the shared split logic,
// obtaining each active node's counts table from fetch. The baseline
// strategies (SQL counting, file-based data store) use it; the tree produced
// is identical to Build's and BuildInMemory's for the same data and options.
func BuildWithCounts(schema *data.Schema, rows int64, opt Options, fetch CountsFetcher) (*Tree, error) {
	classCard := schema.Class.Card
	classIdx := schema.ClassIndex()

	root := &Node{ID: 0, Attrs: allAttrs(schema), Rows: rows, Depth: 0}
	nextID := 1
	queue := []*Node{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]

		table, err := fetch(n.Path, n.Attrs)
		if err != nil {
			return nil, err
		}
		n.ClassCounts = classTotals(table, classIdx, classCard)
		n.Class, _ = majority(n.ClassCounts)

		dec := decide(table, n.Attrs, n.ClassCounts, n.Rows, n.Depth, opt)
		if dec.leaf {
			n.Leaf = true
			continue
		}
		n.SplitAttr = dec.attr
		n.SplitVal = dec.val
		n.Multiway = len(dec.vals) > 0
		n.SplitVals = dec.vals

		for _, spec := range expand(table, n, dec, classCard) {
			child := &Node{
				ID:          nextID,
				Path:        n.Path.And(spec.cond),
				Attrs:       spec.attrs,
				Rows:        spec.rows,
				Depth:       n.Depth + 1,
				ClassCounts: spec.classCounts,
			}
			nextID++
			child.Class, _ = majority(child.ClassCounts)
			n.Children = append(n.Children, child)

			cdec := decide(nil, child.Attrs, child.ClassCounts, child.Rows, child.Depth, terminalProbe(opt))
			if cdec.leaf {
				child.Leaf = true
				continue
			}
			queue = append(queue, child)
		}
	}
	return finalize(&Tree{Root: root, Schema: schema}), nil
}
