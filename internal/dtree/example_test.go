package dtree_test

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/mw"
	"repro/internal/sim"
)

// weatherDataset is the classic toy table: play tennis given outlook,
// humidity and wind.
func weatherDataset() *data.Dataset {
	s := &data.Schema{
		Attrs: []data.Attribute{
			{Name: "outlook", Card: 3},  // 0 sunny, 1 overcast, 2 rain
			{Name: "humidity", Card: 2}, // 0 high, 1 normal
			{Name: "wind", Card: 2},     // 0 weak, 1 strong
		},
		Class: data.Attribute{Name: "play", Card: 2}, // 0 no, 1 yes
	}
	ds := data.NewDataset(s)
	ds.Append(
		data.Row{0, 0, 0, 0}, data.Row{0, 0, 1, 0}, data.Row{1, 0, 0, 1},
		data.Row{2, 0, 0, 1}, data.Row{2, 1, 0, 1}, data.Row{2, 1, 1, 0},
		data.Row{1, 1, 1, 1}, data.Row{0, 0, 0, 0}, data.Row{0, 1, 0, 1},
		data.Row{2, 1, 0, 1}, data.Row{0, 1, 1, 1}, data.Row{1, 0, 1, 1},
		data.Row{1, 1, 0, 1}, data.Row{2, 0, 1, 0},
	)
	return ds
}

// ExampleBuild grows a decision tree over a SQL table through the
// middleware and prints its decision rules.
func ExampleBuild() {
	ds := weatherDataset()
	eng := engine.New(sim.NewDefaultMeter(), 0)
	srv, _ := engine.NewServer(eng, "weather", ds)
	m, _ := mw.New(srv, mw.Config{})
	defer m.Close()

	tree, _ := dtree.Build(m, dtree.Options{Measure: dtree.Entropy})
	fmt.Printf("%d leaves, depth %d, accuracy %.2f\n",
		tree.NumLeaves, tree.MaxDepth, tree.Accuracy(ds))
	fmt.Println(tree.Predict(data.Row{1, 0, 0, 0})) // overcast => play
	// Output:
	// 7 leaves, depth 4, accuracy 1.00
	// 1
}

// ExampleBuildInMemory shows the reference in-memory client, which produces
// the identical tree without a database.
func ExampleBuildInMemory() {
	ds := weatherDataset()
	tree, _ := dtree.BuildInMemory(ds, dtree.Options{})
	cm := dtree.Evaluate(tree, ds)
	fmt.Printf("accuracy %.2f over %d rows\n", cm.Accuracy(), cm.Total())
	// Output:
	// accuracy 1.00 over 14 rows
}
