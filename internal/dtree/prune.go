package dtree

import (
	"math"

	"repro/internal/data"
)

// The paper grows full trees ("we did not implement any tree pruning
// criteria ... this can be easily implemented in our scheme", §3.1). This
// file supplies the two standard pruning procedures a production client
// would enable. Both operate on the grown tree and the statistics already
// collected — pruning needs no further data access, which is exactly why it
// slots into the sufficient-statistics architecture for free.

// PruneReducedError prunes the tree bottom-up against a validation set:
// a subtree is replaced by a leaf when the leaf misclassifies no more
// validation rows than the subtree does (Quinlan's reduced-error pruning).
// It returns the number of internal nodes pruned. The tree is modified in
// place; statistics (NumNodes, NumLeaves, MaxDepth) are recomputed.
func (t *Tree) PruneReducedError(valid *data.Dataset) int {
	// Route validation rows to per-node error tallies.
	subtreeErr := map[*Node]int{} // misclassifications by the subtree below the node
	leafErr := map[*Node]int{}    // misclassifications if the node were a leaf
	for _, r := range valid.Rows {
		n := t.Root
		for {
			if r.Class() != n.Class {
				leafErr[n]++
			}
			if n.Leaf {
				if r.Class() != n.Class {
					// Count the leaf's own error as its subtree error.
					subtreeErr[n]++
				}
				break
			}
			next := descend(n, r)
			if next == nil {
				if r.Class() != n.Class {
					subtreeErr[n]++
				}
				break
			}
			n = next
		}
	}

	pruned := 0
	var rec func(n *Node) int // returns subtree validation errors after pruning below
	rec = func(n *Node) int {
		if n.Leaf {
			return subtreeErr[n]
		}
		errs := subtreeErr[n] // rows that fell off a multiway split here
		for _, c := range n.Children {
			errs += rec(c)
		}
		if leafErr[n] <= errs {
			n.collapse()
			pruned++
			return leafErr[n]
		}
		return errs
	}
	rec(t.Root)
	t.refreshStats()
	return pruned
}

// PrunePessimistic applies C4.5-style pessimistic pruning using only the
// training class counts already stored in the tree: each node's training
// error rate is inflated by a continuity correction scaled by confidence z
// (C4.5's default confidence of 25% corresponds to z ≈ 0.6745; larger z
// prunes more). A subtree is replaced by a leaf when the leaf's pessimistic
// error estimate does not exceed the subtree's. Returns the number of
// internal nodes pruned.
func (t *Tree) PrunePessimistic(z float64) int {
	if z <= 0 {
		z = 0.6745
	}
	pruned := 0
	var rec func(n *Node) float64 // pessimistic error count of the (possibly pruned) subtree
	rec = func(n *Node) float64 {
		total := sum(n.ClassCounts)
		asLeaf := pessimisticErrors(n.ClassCounts, total, z)
		if n.Leaf {
			return asLeaf
		}
		var asSubtree float64
		for _, c := range n.Children {
			asSubtree += rec(c)
		}
		if asLeaf <= asSubtree+1e-12 {
			n.collapse()
			pruned++
			return asLeaf
		}
		return asSubtree
	}
	rec(t.Root)
	t.refreshStats()
	return pruned
}

// pessimisticErrors is the upper confidence bound on the error count of a
// leaf with the given class counts: e + z*sqrt(e*(1-e/n)) + 1/2, where e is
// the observed error count.
func pessimisticErrors(counts []int64, n int64, z float64) float64 {
	if n == 0 {
		return 0
	}
	maj, _ := majority(counts)
	e := float64(n - counts[maj])
	p := e / float64(n)
	return e + z*math.Sqrt(e*(1-p)) + 0.5
}

// collapse turns an internal node into a leaf.
func (n *Node) collapse() {
	n.Leaf = true
	n.Children = nil
	n.SplitVals = nil
	n.Multiway = false
	n.SplitAttr = 0
	n.SplitVal = 0
}

// refreshStats recomputes NumNodes / NumLeaves / MaxDepth after pruning.
func (t *Tree) refreshStats() {
	t.NumNodes, t.NumLeaves, t.MaxDepth = 0, 0, 0
	t.Walk(func(n *Node) {
		t.NumNodes++
		if n.Leaf {
			t.NumLeaves++
		}
		if n.Depth > t.MaxDepth {
			t.MaxDepth = n.Depth
		}
	})
}
