package dtree

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/sqlparser"
)

// compileFixture builds a small census tree for compile tests.
func compileFixture(t *testing.T) (*data.Dataset, *Tree) {
	t.Helper()
	ds, err := datagen.GenerateCensus(datagen.CensusConfig{Rows: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildInMemory(ds, Options{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ds, tree
}

// TestCompileModel pins the tree → catalog-model translation: the flat model
// validates, preserves the node population, and predicts exactly like the
// tree it came from on every training row.
func TestCompileModel(t *testing.T) {
	ds, tree := compileFixture(t)
	m, err := Compile(tree, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("compiled model invalid: %v", err)
	}
	if len(m.Nodes) != tree.NumNodes {
		t.Fatalf("model has %d nodes, tree has %d", len(m.Nodes), tree.NumNodes)
	}
	if m.Cols != ds.Schema.NumAttrs() {
		t.Fatalf("model Cols = %d, want %d", m.Cols, ds.Schema.NumAttrs())
	}
	if m.Classes != ds.Schema.Class.Card {
		t.Fatalf("model Classes = %d, want %d", m.Classes, ds.Schema.Class.Card)
	}
	for i, row := range ds.Rows {
		if got, want := m.Predict(row), tree.Predict(row); got != want {
			t.Fatalf("row %d: model predicts %d, tree predicts %d", i, got, want)
		}
	}
}

// TestCompileRejectsNil pins the error paths.
func TestCompileRejectsNil(t *testing.T) {
	if _, err := Compile(nil, "m"); err == nil {
		t.Fatal("Compile(nil) accepted")
	}
	if _, err := Compile(&Tree{}, "m"); err == nil {
		t.Fatal("Compile of a rootless tree accepted")
	}
}

// TestCaseSQLParses pins that the emitted CASE expression is legal SQL for
// the repo's own parser and round-trips through its String rendering.
func TestCaseSQLParses(t *testing.T) {
	_, tree := compileFixture(t)
	sql := ScoreSQL(tree, "cases")
	st, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("generated scoring SQL does not parse: %v\n%s", err, sql)
	}
	printed := st.String()
	st2, err := sqlparser.Parse(printed)
	if err != nil {
		t.Fatalf("rendering of generated SQL does not re-parse: %v", err)
	}
	if st2.String() != printed {
		t.Fatal("generated scoring SQL is not a String round-trip fixed point")
	}
}

// TestModelCatalogRoundTrip pins that a registered model survives as data: a
// model reconstructed from its catalog table alone predicts identically and
// carries the same shape.
func TestModelCatalogRoundTrip(t *testing.T) {
	ds, tree := compileFixture(t)
	m, err := Compile(tree, "rt")
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(sim.NewDefaultMeter(), 0)
	if err := eng.RegisterModel(m); err != nil {
		t.Fatal(err)
	}
	m2, err := eng.ModelFromCatalog("rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Nodes) != len(m.Nodes) || m2.Cols != m.Cols || m2.Classes != m.Classes {
		t.Fatalf("round-trip shape (%d nodes, %d cols, %d classes) != original (%d, %d, %d)",
			len(m2.Nodes), m2.Cols, m2.Classes, len(m.Nodes), m.Cols, m.Classes)
	}
	for i := range m.Nodes {
		a, b := m.Nodes[i], m2.Nodes[i]
		if a.Leaf != b.Leaf || a.Attr != b.Attr || a.Val != b.Val || a.Multiway != b.Multiway || a.Class != b.Class {
			t.Fatalf("node %d differs after catalog round-trip: %+v vs %+v", i, a, b)
		}
		if fmt.Sprint(a.Counts) != fmt.Sprint(b.Counts) || fmt.Sprint(a.Kids) != fmt.Sprint(b.Kids) || fmt.Sprint(a.Vals) != fmt.Sprint(b.Vals) {
			t.Fatalf("node %d payload differs after catalog round-trip", i)
		}
	}
	for i, row := range ds.Rows {
		if got, want := m2.Predict(row), tree.Predict(row); got != want {
			t.Fatalf("row %d: catalog model predicts %d, tree predicts %d", i, got, want)
		}
	}
}

// predictionBytes renders a prediction vector in a canonical byte form, so
// equivalence checks compare byte-identical artifacts rather than values.
func predictionBytes(classes []data.Value) []byte {
	var b bytes.Buffer
	for _, c := range classes {
		fmt.Fprintf(&b, "%d\n", c)
	}
	return b.Bytes()
}

// equivDataset draws one dataset per workload generator.
func equivDataset(t *testing.T, gen string, rows int, seed int64) *data.Dataset {
	t.Helper()
	var (
		ds  *data.Dataset
		err error
	)
	switch gen {
	case "tree":
		cfg := datagen.TreeGenConfig{Seed: seed}.Normalize()
		cfg.CasesPerLeaf = rows / cfg.Leaves
		if cfg.CasesPerLeaf < 1 {
			cfg.CasesPerLeaf = 1
		}
		ds, _, err = datagen.GenerateTreeData(cfg)
	case "gaussians":
		cfg := datagen.GaussianConfig{Seed: seed}.Normalize()
		cfg.PerClass = rows / cfg.Components
		if cfg.PerClass < 1 {
			cfg.PerClass = 1
		}
		ds, err = datagen.GenerateGaussians(cfg)
	case "census":
		ds, err = datagen.GenerateCensus(datagen.CensusConfig{Rows: rows, Seed: seed})
	case "clustered":
		ds, err = datagen.GenerateClustered(datagen.ClusteredConfig{Rows: rows, Seed: seed})
	default:
		t.Fatalf("unknown generator %q", gen)
	}
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestScoringEquivalence is the spine of the in-database scoring feature:
// for every workload generator, the in-client tree walk, the compiled CASE
// expression executed as SQL, the SCORE TABLE statement, and the vectorized
// catalog-model operator at Workers ∈ {1, 4, 8} must produce byte-identical
// prediction vectors over the full table.
func TestScoringEquivalence(t *testing.T) {
	for _, gen := range []string{"tree", "gaussians", "census", "clustered"} {
		t.Run(gen, func(t *testing.T) {
			ds := equivDataset(t, gen, 3000, 11)
			tree, err := BuildInMemory(ds, Options{MaxDepth: 6})
			if err != nil {
				t.Fatal(err)
			}

			// Path A: the in-client row loop over the training rows.
			classes := make([]data.Value, len(ds.Rows))
			for i, row := range ds.Rows {
				classes[i] = tree.Predict(row)
			}
			want := predictionBytes(classes)

			eng := engine.New(sim.NewDefaultMeter(), 0)
			if _, err := engine.NewServer(eng, "cases", ds); err != nil {
				t.Fatal(err)
			}
			m, err := Compile(tree, "m")
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.RegisterModel(m); err != nil {
				t.Fatal(err)
			}

			// Path B: the compiled nested-CASE expression run as plain SQL.
			rs, err := eng.Exec(ScoreSQL(tree, "cases"))
			if err != nil {
				t.Fatal(err)
			}
			caseClasses := make([]data.Value, len(rs.Rows))
			for i, r := range rs.Rows {
				caseClasses[i] = data.Value(r[0].I)
			}
			if got := predictionBytes(caseClasses); !bytes.Equal(got, want) {
				t.Fatal("CASE-expression path diverges from the in-client tree walk")
			}

			// Path C: the vectorized catalog-model operator, across worker
			// counts — partitioning must not reorder or change predictions.
			for _, workers := range []int{1, 4, 8} {
				res, err := eng.ScoreTable(mustTable(t, eng, "cases"), m, workers)
				if err != nil {
					t.Fatal(err)
				}
				if res.Rows != int64(len(ds.Rows)) {
					t.Fatalf("workers=%d scored %d rows, want %d", workers, res.Rows, len(ds.Rows))
				}
				if got := predictionBytes(res.Classes); !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: vectorized path diverges from the in-client tree walk", workers)
				}
				// The leaf distribution behind every prediction must be the
				// training distribution of the leaf the tree walk lands in.
				for i, row := range ds.Rows {
					node := walkToLeafNode(tree, row)
					dist := res.Dist(m, i)
					if fmt.Sprint(dist) != fmt.Sprint(node.ClassCounts) {
						t.Fatalf("workers=%d row %d: dist %v, want leaf counts %v", workers, i, dist, node.ClassCounts)
					}
				}
			}

			// Path C via SQL surface: SCORE TABLE ... USING m.
			for _, workers := range []int{1, 4, 8} {
				rs, err := eng.Exec(fmt.Sprintf("SCORE TABLE cases USING m WORKERS %d", workers))
				if err != nil {
					t.Fatal(err)
				}
				stClasses := make([]data.Value, len(rs.Rows))
				for i, r := range rs.Rows {
					stClasses[i] = data.Value(r[0].I)
				}
				if got := predictionBytes(stClasses); !bytes.Equal(got, want) {
					t.Fatalf("SCORE TABLE WORKERS %d diverges from the in-client tree walk", workers)
				}
			}

			// Path D: CLASSIFY() over the table's attribute columns.
			cls := "CLASSIFY(m"
			for a := 0; a < ds.Schema.NumAttrs(); a++ {
				cls += ", " + ds.Schema.ColName(a)
			}
			cls += ")"
			rs, err = eng.Exec("SELECT " + cls + " FROM cases")
			if err != nil {
				t.Fatal(err)
			}
			clClasses := make([]data.Value, len(rs.Rows))
			for i, r := range rs.Rows {
				clClasses[i] = data.Value(r[0].I)
			}
			if got := predictionBytes(clClasses); !bytes.Equal(got, want) {
				t.Fatal("CLASSIFY() path diverges from the in-client tree walk")
			}
		})
	}
}

// walkToLeafNode walks the tree the same way Predict does but returns the
// leaf node itself, for distribution checks.
func walkToLeafNode(t *Tree, row data.Row) *Node {
	n := t.Root
	for !n.Leaf {
		next := step(n, row)
		if next == nil {
			return n
		}
		n = next
	}
	return n
}

// step mirrors Predict's one-level descent; nil means "stop here" (the
// unseen-value fallback at a multiway split).
func step(n *Node, row data.Row) *Node {
	if !n.Multiway {
		if row[n.SplitAttr] == n.SplitVal {
			return n.Children[0]
		}
		return n.Children[1]
	}
	for i, sv := range n.SplitVals {
		if row[n.SplitAttr] == sv {
			return n.Children[i]
		}
	}
	return nil
}

func mustTable(t *testing.T, eng *engine.Engine, name string) *engine.Table {
	t.Helper()
	tbl, err := eng.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}
