package dtree

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/obs"
	_ "repro/internal/obs/profile" // registers the -explain profile renderer
	"repro/internal/sim"
)

// driveScoreObs runs one fully-observed vectorized scoring pass and returns
// its NDJSON trace, metrics JSON and -explain text profile.
func driveScoreObs(t *testing.T, workers int) (nd, metrics, explain []byte) {
	t.Helper()
	ds, err := datagen.GenerateCensus(datagen.CensusConfig{Rows: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildInMemory(ds, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector(true, true)
	meter := sim.NewDefaultMeter()
	eng := engine.New(meter, 0)
	tr, _ := col.Proc("score", meter)
	eng.SetTracer(tr)
	if _, err := engine.NewServer(eng, "cases", ds); err != nil {
		t.Fatal(err)
	}
	m, err := Compile(tree, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterModel(m); err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.Table("cases")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ScoreTable(tbl, m, workers); err != nil {
		t.Fatal(err)
	}
	var nb, mb, eb bytes.Buffer
	if err := col.WriteTrace(&nb, "ndjson"); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteProfile(&eb, "text"); err != nil {
		t.Fatal(err)
	}
	return nb.Bytes(), mb.Bytes(), eb.Bytes()
}

// TestScoreObsByteDeterminism extends the repo's observability determinism
// contract to the scoring operator: for each fixed worker count, the NDJSON
// trace, the metrics JSON and the -explain profile of a scoring pass are
// byte-for-byte identical across reruns and across GOMAXPROCS settings.
func TestScoreObsByteDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(map[int]string{1: "workers=1", 4: "workers=4", 8: "workers=8"}[workers], func(t *testing.T) {
			refND, refMetrics, refExplain := driveScoreObs(t, workers)
			if len(refND) == 0 {
				t.Fatal("empty NDJSON trace")
			}
			if !bytes.Contains(refND, []byte(`"score"`)) {
				t.Fatal("scoring pass produced no score-category span")
			}
			run := 0
			for _, procs := range []int{1, 8} {
				old := runtime.GOMAXPROCS(procs)
				for rep := 0; rep < 2; rep++ {
					run++
					nd, metrics, explain := driveScoreObs(t, workers)
					if !bytes.Equal(nd, refND) {
						t.Errorf("run %d (GOMAXPROCS=%d): ndjson trace differs", run, procs)
					}
					if !bytes.Equal(metrics, refMetrics) {
						t.Errorf("run %d (GOMAXPROCS=%d): metrics differ", run, procs)
					}
					if !bytes.Equal(explain, refExplain) {
						t.Errorf("run %d (GOMAXPROCS=%d): explain profile differs", run, procs)
					}
				}
				runtime.GOMAXPROCS(old)
				if t.Failed() {
					break
				}
			}
		})
	}
}
