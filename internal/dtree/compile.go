package dtree

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/engine"
)

// This file compiles a finished tree into the two in-database forms of §1's
// deployment story: a flat engine.Model (registered into the engine's model
// catalog, where it persists as an ordinary table) and a nested-CASE SQL
// expression that any SQL backend can evaluate without knowing what a
// decision tree is. Both forms predict byte-identically to Tree.Predict —
// the equivalence suite pins all three.

// Compile flattens the tree into an engine.Model named name. Nodes are laid
// out in depth-first child order with the root at index 0, matching the
// walk order of Dump and Rules so catalog row ids line up with the printed
// tree.
func Compile(t *Tree, name string) (*engine.Model, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("dtree: compile %q: empty tree", name)
	}
	if t.Schema == nil {
		return nil, fmt.Errorf("dtree: compile %q: tree has no schema", name)
	}
	m := &engine.Model{
		Name:    name,
		Cols:    t.Schema.NumAttrs(),
		Classes: t.Schema.Class.Card,
	}
	var flatten func(n *Node, parent int32) int32
	flatten = func(n *Node, parent int32) int32 {
		id := int32(len(m.Nodes))
		counts := make([]int64, m.Classes)
		for c, v := range n.ClassCounts {
			if c < len(counts) {
				counts[c] = v
			}
		}
		mn := engine.ModelNode{
			Parent: parent,
			Leaf:   n.Leaf,
			Attr:   -1,
			Class:  n.Class,
			Counts: counts,
		}
		if !n.Leaf {
			mn.Attr = int32(n.SplitAttr)
			mn.Val = n.SplitVal
			mn.Multiway = n.Multiway
			if n.Multiway {
				mn.Vals = append([]data.Value(nil), n.SplitVals...)
			}
		}
		m.Nodes = append(m.Nodes, mn)
		for _, c := range n.Children {
			kid := flatten(c, id)
			m.Nodes[id].Kids = append(m.Nodes[id].Kids, kid)
		}
		return id
	}
	flatten(t.Root, -1)
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("dtree: compile %q: %v", name, err)
	}
	return m, nil
}

// CaseSQL renders the tree as one nested CASE expression over the schema's
// attribute names, evaluating to the predicted class label. A leaf is its
// class literal; a binary split is CASE WHEN A = v THEN .. ELSE .. END; a
// multiway split lists one WHEN arm per training value with the node's
// majority class as the ELSE — the unseen-value fallback, so the expression
// scores exactly like Predict. The output parses with internal/sqlparser.
func CaseSQL(t *Tree) string {
	var b strings.Builder
	caseNode(&b, t, t.Root)
	return b.String()
}

func caseNode(b *strings.Builder, t *Tree, n *Node) {
	if n.Leaf {
		fmt.Fprintf(b, "%d", n.Class)
		return
	}
	col := t.Schema.ColName(n.SplitAttr)
	b.WriteString("CASE")
	if !n.Multiway {
		fmt.Fprintf(b, " WHEN %s = %d THEN ", col, n.SplitVal)
		caseNode(b, t, n.Children[0])
		b.WriteString(" ELSE ")
		caseNode(b, t, n.Children[1])
		b.WriteString(" END")
		return
	}
	for i, sv := range n.SplitVals {
		fmt.Fprintf(b, " WHEN %s = %d THEN ", col, sv)
		caseNode(b, t, n.Children[i])
	}
	fmt.Fprintf(b, " ELSE %d END", n.Class)
}

// ScoreSQL renders a full scoring statement for the tree against a table:
// SELECT <nested CASE> FROM table. Running it through the engine is the
// CASE-expression scoring path of the equivalence suite.
func ScoreSQL(t *Tree, table string) string {
	return "SELECT " + CaseSQL(t) + " FROM " + table
}
