package dtree

import (
	"fmt"
	"sort"

	"repro/internal/cc"
	"repro/internal/mw"
	"repro/internal/obs"
)

// Builder is the resumable form of Build: the same Figure 3 protocol, but
// with the Step loop inverted so an external scheduler owns it. The
// multi-tenant fleet drives many Builders over one engine — each session
// feeds its own middleware's results in as they arrive (possibly produced by
// a shared scan) and the Builder grows its tree incrementally. Build is a
// thin wrapper, so the two paths execute identical span and enqueue
// sequences and produce byte-identical trees and traces.
type Builder struct {
	m         *mw.Middleware
	opt       Options
	classCard int
	classIdx  int

	bsp    *obs.Span
	ltr    *obs.Tracer
	levels map[int]*levelSpan

	root   *Node
	nodes  map[int]*Node
	nextID int
	closed bool
}

type levelSpan struct {
	sp     *obs.Span
	lastNS int64
}

// NewBuilder opens the build (build span, level track) and enqueues the root
// request. The caller must then repeatedly Feed the middleware's results
// until Pending reaches zero, and Finish; Abort releases the spans on an
// external error.
func NewBuilder(m *mw.Middleware, opt Options) (*Builder, error) {
	schema := m.Schema()
	b := &Builder{
		m:         m,
		opt:       opt,
		classCard: schema.Class.Card,
		classIdx:  schema.ClassIndex(),
		nextID:    1,
	}

	// Client-side spans: one for the whole build, plus one per tree level on
	// a separate render track. Levels overlap in virtual time (children are
	// enqueued before their parent closes), so each level span ends at the
	// time its last node closed, fixed up when the build finishes. All of it
	// is skipped — at zero cost — when no tracer is attached.
	tr := m.Tracer()
	b.bsp = tr.Start(obs.CatBuild, "dtree-build")
	if tr != nil {
		b.ltr = tr.Track("levels")
		b.levels = map[int]*levelSpan{}
	}

	rootAttrs := allAttrs(schema)
	b.root = &Node{ID: 0, Attrs: rootAttrs, Rows: m.DataRows(), Depth: 0}
	b.nodes = map[int]*Node{0: b.root}

	// The root's CC size estimate comes from the schema (no parent exists):
	// the sum of attribute cardinalities times the class cardinality.
	var rootEst int64
	for _, a := range schema.Attrs {
		rootEst += int64(a.Card)
	}
	rootEst = rootEst*int64(b.classCard) + int64(b.classCard)
	b.noteEnqueue(0)
	if err := m.Enqueue(&mw.Request{
		NodeID: 0, ParentID: -1, Path: nil,
		Attrs: rootAttrs, Rows: b.root.Rows, EstCC: rootEst,
	}); err != nil {
		b.closeSpans()
		return nil, err
	}
	return b, nil
}

func (b *Builder) noteEnqueue(depth int) {
	if b.ltr == nil {
		return
	}
	if _, ok := b.levels[depth]; !ok {
		sp := b.ltr.Start(obs.CatLevel, fmt.Sprintf("level %d", depth)).Attr("depth", int64(depth))
		b.levels[depth] = &levelSpan{sp: sp}
	}
}

func (b *Builder) noteClose(depth int) {
	if b.ltr == nil {
		return
	}
	if l, ok := b.levels[depth]; ok {
		l.lastNS = int64(b.m.Meter().Now())
		// The span is closed retroactively (EndAt at build finish), so
		// capture its counter deltas now, while the meter still reads the
		// state at this — possibly final — node close of the level.
		l.sp.CaptureCounters()
	}
}

// closeSpans ends the level spans (at their recorded last-close times) and
// the build span, once.
func (b *Builder) closeSpans() {
	if b.closed {
		return
	}
	b.closed = true
	if b.levels != nil {
		depths := make([]int, 0, len(b.levels))
		for d := range b.levels {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		for _, d := range depths {
			l := b.levels[d]
			if l.lastNS > 0 {
				l.sp.EndAt(l.lastNS)
			} else {
				l.sp.End()
			}
		}
	}
	b.bsp.End()
}

// Pending returns the number of outstanding middleware requests; the build
// is complete when it reaches zero.
func (b *Builder) Pending() int { return b.m.Pending() }

// Feed consumes one Step's worth of middleware results: grows the tree at
// each fulfilled node, enqueues the children that need counting, and closes
// the fulfilled nodes. An empty result set with requests still pending is
// the no-progress error, exactly as in Build's loop.
func (b *Builder) Feed(results []*mw.Result) error {
	if len(results) == 0 && b.m.Pending() > 0 {
		err := fmt.Errorf("dtree: middleware made no progress with %d pending requests", b.m.Pending())
		b.closeSpans()
		return err
	}
	for _, res := range results {
		n, ok := b.nodes[res.Req.NodeID]
		if !ok {
			b.closeSpans()
			return fmt.Errorf("dtree: result for unknown node %d", res.Req.NodeID)
		}
		n.ClassCounts = classTotals(res.CC, b.classIdx, b.classCard)
		n.Class, _ = majority(n.ClassCounts)

		dec := decide(res.CC, n.Attrs, n.ClassCounts, n.Rows, n.Depth, b.opt)
		if dec.leaf {
			n.Leaf = true
			b.m.CloseNode(n.ID)
			b.noteClose(n.Depth)
			continue
		}
		n.SplitAttr = dec.attr
		n.SplitVal = dec.val
		n.Multiway = len(dec.vals) > 0
		n.SplitVals = dec.vals

		for _, spec := range expand(res.CC, n, dec, b.classCard) {
			child := &Node{
				ID:          b.nextID,
				Path:        n.Path.And(spec.cond),
				Attrs:       spec.attrs,
				Rows:        spec.rows,
				Depth:       n.Depth + 1,
				ClassCounts: spec.classCounts,
			}
			b.nextID++
			child.Class, _ = majority(child.ClassCounts)
			n.Children = append(n.Children, child)
			b.nodes[child.ID] = child

			// Terminal children never reach the middleware: their
			// class histogram is already exact.
			cdec := decide(nil, child.Attrs, child.ClassCounts, child.Rows, child.Depth, terminalProbe(b.opt))
			if cdec.leaf {
				child.Leaf = true
				continue
			}
			est := cc.EstimateEntries(res.CC, child.Attrs, child.Rows, n.Rows, b.classCard)
			b.noteEnqueue(child.Depth)
			if err := b.m.Enqueue(&mw.Request{
				NodeID: child.ID, ParentID: n.ID,
				Path: child.Path, Attrs: child.Attrs,
				Rows: child.Rows, EstCC: est,
			}); err != nil {
				b.closeSpans()
				return err
			}
		}
		// Children are enqueued before the parent closes so ancestor
		// staging stays alive for them.
		b.m.CloseNode(n.ID)
		b.noteClose(n.Depth)
	}
	return nil
}

// Finish ends the build's spans and returns the completed tree.
func (b *Builder) Finish() (*Tree, error) {
	if b.m.Pending() > 0 {
		return nil, fmt.Errorf("dtree: Finish with %d requests still pending", b.m.Pending())
	}
	b.closeSpans()
	return finalize(&Tree{Root: b.root, Schema: b.m.Schema()}), nil
}

// Abort releases the build's spans without producing a tree; for callers
// whose Step loop failed outside Feed.
func (b *Builder) Abort() { b.closeSpans() }
