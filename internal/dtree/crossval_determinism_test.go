package dtree

// Determinism regression for cross-validation (and the train/test split in
// eval.go): both draw randomness exclusively from an explicitly seeded
// *rand.Rand constructed from the caller's seed — never the global math/rand
// source — so fold assignment is a pure function of (dataset, k, seed). The
// repolint determinism analyzer enforces the no-global-rand rule statically;
// this test pins the behavioral consequence.

import (
	"fmt"
	"math/rand"
	"testing"
)

// foldFingerprint renders the exact fold assignment CrossValidate derives from
// a seed: the seeded permutation, with row i landing in fold i%k.
func foldFingerprint(n, k int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, pi := range perm {
		folds[i%k] = append(folds[i%k], pi)
	}
	return fmt.Sprint(folds)
}

func TestCrossValidateFoldAssignmentDeterministic(t *testing.T) {
	ds := singleAttrDataset(600)
	const k = 5
	const seed = 42

	ref, err := CrossValidate(ds, k, Options{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	refFolds := foldFingerprint(ds.N(), k, seed)

	// Identical (dataset, k, seed) must reproduce the result exactly —
	// including per-fold accuracies, which are sensitive to fold membership.
	for rep := 0; rep < 3; rep++ {
		got, err := CrossValidate(ds, k, Options{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(ref) || fmt.Sprint(got.FoldAcc) != fmt.Sprint(ref.FoldAcc) {
			t.Fatalf("rep %d: CV result drifted:\n got  %+v\n want %+v", rep, got, ref)
		}
		if f := foldFingerprint(ds.N(), k, seed); f != refFolds {
			t.Fatalf("rep %d: fold assignment drifted for the same seed", rep)
		}
	}

	// Draws from the global source between runs must not leak in.
	rand.Int() //repolint:determinism deliberately perturbs the global source to prove CrossValidate does not read it
	got, err := CrossValidate(ds, k, Options{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.FoldAcc) != fmt.Sprint(ref.FoldAcc) {
		t.Fatal("CrossValidate result changed after perturbing the global math/rand source")
	}

	// A different seed must actually move the folds (the seed is plumbed, not
	// ignored).
	if foldFingerprint(ds.N(), k, seed+1) == refFolds {
		t.Fatal("fold assignment identical across different seeds; seed is not plumbed")
	}
}

// TestSplitDeterministic pins the same contract for the eval.go train/test
// split helper.
func TestSplitDeterministic(t *testing.T) {
	ds := singleAttrDataset(400)
	train1, test1 := Split(ds, 0.3, 7)
	train2, test2 := Split(ds, 0.3, 7)
	if fmt.Sprint(train1.Rows) != fmt.Sprint(train2.Rows) || fmt.Sprint(test1.Rows) != fmt.Sprint(test2.Rows) {
		t.Fatal("Split is not deterministic for a fixed seed")
	}
	_, test3 := Split(ds, 0.3, 8)
	if fmt.Sprint(test1.Rows) == fmt.Sprint(test3.Rows) {
		t.Fatal("Split ignores its seed")
	}
}
