package dtree

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
)

// CVResult summarizes a k-fold cross-validation.
type CVResult struct {
	K          int
	FoldAcc    []float64
	Mean       float64
	StdDev     float64
	MeanNodes  float64
	MeanLeaves float64
}

// String renders the result.
func (r CVResult) String() string {
	return fmt.Sprintf("%d-fold CV: accuracy %.4f ± %.4f (mean %d-node trees)",
		r.K, r.Mean, r.StdDev, int(r.MeanNodes))
}

// CrossValidate runs k-fold cross-validation of the in-memory tree builder
// over the dataset: k near-equal folds, each held out once while a tree is
// grown on the rest. Deterministic for a given seed.
func CrossValidate(ds *data.Dataset, k int, opt Options, seed int64) (CVResult, error) {
	if k < 2 {
		return CVResult{}, fmt.Errorf("dtree: k-fold needs k >= 2, got %d", k)
	}
	if ds.N() < k {
		return CVResult{}, fmt.Errorf("dtree: %d rows cannot form %d folds", ds.N(), k)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(ds.N())

	res := CVResult{K: k}
	for fold := 0; fold < k; fold++ {
		train := data.NewDataset(ds.Schema)
		test := data.NewDataset(ds.Schema)
		for i, pi := range perm {
			if i%k == fold {
				test.Rows = append(test.Rows, ds.Rows[pi])
			} else {
				train.Rows = append(train.Rows, ds.Rows[pi])
			}
		}
		tree, err := BuildInMemory(train, opt)
		if err != nil {
			return CVResult{}, fmt.Errorf("dtree: fold %d: %w", fold, err)
		}
		acc := tree.Accuracy(test)
		res.FoldAcc = append(res.FoldAcc, acc)
		res.Mean += acc
		res.MeanNodes += float64(tree.NumNodes)
		res.MeanLeaves += float64(tree.NumLeaves)
	}
	res.Mean /= float64(k)
	res.MeanNodes /= float64(k)
	res.MeanLeaves /= float64(k)
	var varsum float64
	for _, a := range res.FoldAcc {
		varsum += (a - res.Mean) * (a - res.Mean)
	}
	res.StdDev = math.Sqrt(varsum / float64(k))
	return res, nil
}
