package dtree

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
)

// noisyDataset: a weak signal (attribute 0) drowned in noise attributes, so
// a full tree heavily overfits.
func noisyDataset(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := data.NewSchema(6, 3, 2)
	ds := data.NewDataset(s)
	for i := 0; i < n; i++ {
		r := make(data.Row, 7)
		for j := 0; j < 6; j++ {
			r[j] = data.Value(rng.Intn(3))
		}
		cls := data.Value(0)
		if r[0] == 2 {
			cls = 1
		}
		if rng.Float64() < 0.25 { // heavy label noise
			cls = 1 - cls
		}
		r[6] = cls
		ds.Append(r)
	}
	return ds
}

func TestReducedErrorPruningShrinksAndHelps(t *testing.T) {
	full := noisyDataset(3000, 1)
	train, rest := Split(full, 0.5, 1)
	valid, test := Split(rest, 0.5, 2)

	tree, err := BuildInMemory(train, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.NumNodes
	accBefore := tree.Accuracy(test)

	pruned := tree.PruneReducedError(valid)
	if pruned == 0 {
		t.Fatal("nothing pruned from an overfit tree")
	}
	if tree.NumNodes >= before {
		t.Errorf("nodes %d -> %d, want shrink", before, tree.NumNodes)
	}
	if acc := tree.Accuracy(test); acc < accBefore-0.01 {
		t.Errorf("pruning hurt test accuracy: %.4f -> %.4f", accBefore, acc)
	}
	// Structural invariants survive pruning.
	tree.Walk(func(n *Node) {
		if n.Leaf && len(n.Children) != 0 {
			t.Error("leaf with children after pruning")
		}
		if !n.Leaf && len(n.Children) == 0 {
			t.Error("internal node without children after pruning")
		}
	})
	if tree.NumLeaves+countInternal(tree) != tree.NumNodes {
		t.Error("stats inconsistent after pruning")
	}
}

func countInternal(t *Tree) int {
	n := 0
	t.Walk(func(nd *Node) {
		if !nd.Leaf {
			n++
		}
	})
	return n
}

func TestPessimisticPruningShrinks(t *testing.T) {
	ds := noisyDataset(2000, 3)
	tree, err := BuildInMemory(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.NumNodes
	pruned := tree.PrunePessimistic(0)
	if pruned == 0 || tree.NumNodes >= before {
		t.Errorf("pessimistic pruning: %d pruned, %d -> %d nodes", pruned, before, tree.NumNodes)
	}
	// Higher confidence prunes at least as much.
	tree2, _ := BuildInMemory(ds, Options{})
	tree2.PrunePessimistic(2.0)
	if tree2.NumNodes > tree.NumNodes {
		t.Errorf("z=2.0 left %d nodes, z=0.6745 left %d", tree2.NumNodes, tree.NumNodes)
	}
}

func TestPruningPureTreeIsNoop(t *testing.T) {
	ds := xorDataset(400)
	tree, _ := BuildInMemory(ds, Options{})
	before := tree.NumNodes
	if pruned := tree.PruneReducedError(ds); pruned != 0 {
		t.Errorf("reduced-error pruned %d nodes of a perfect tree", pruned)
	}
	if tree.NumNodes != before {
		t.Error("perfect tree shrank")
	}
}

func TestSplitPartitions(t *testing.T) {
	ds := noisyDataset(1000, 4)
	train, test := Split(ds, 0.3, 9)
	if train.N()+test.N() != ds.N() {
		t.Fatalf("split lost rows: %d + %d != %d", train.N(), test.N(), ds.N())
	}
	if test.N() != 300 {
		t.Errorf("test size = %d, want 300", test.N())
	}
	// Deterministic for the same seed.
	tr2, _ := Split(ds, 0.3, 9)
	if tr2.N() != train.N() || &tr2.Rows[0][0] != &train.Rows[0][0] {
		t.Error("split not deterministic")
	}
}

func TestConfusionMatrix(t *testing.T) {
	ds := xorDataset(200)
	tree, _ := BuildInMemory(ds, Options{})
	cm := Evaluate(tree, ds)
	if cm.Total() != 200 {
		t.Fatalf("total = %d", cm.Total())
	}
	if cm.Accuracy() != 1.0 {
		t.Errorf("accuracy = %v", cm.Accuracy())
	}
	for c := data.Value(0); c < 2; c++ {
		if cm.Precision(c) != 1.0 || cm.Recall(c) != 1.0 {
			t.Errorf("class %d: precision %v recall %v", c, cm.Precision(c), cm.Recall(c))
		}
	}
	if s := cm.String(); !strings.Contains(s, "acc=1.0000") {
		t.Errorf("render: %s", s)
	}
}

func TestConfusionMatrixEdgeCases(t *testing.T) {
	cm := &ConfusionMatrix{Classes: 2, M: [][]int64{{0, 0}, {0, 0}}}
	if cm.Accuracy() != 0 || cm.Precision(0) != 0 || cm.Recall(1) != 0 {
		t.Error("empty matrix must score 0")
	}
}

func TestWriteDotAndRender(t *testing.T) {
	ds, _, err := datagen.GenerateTreeData(datagen.TreeGenConfig{
		Leaves: 6, Attrs: 4, Values: 3, ValuesStdDev: 0, Classes: 3, CasesPerLeaf: 30, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildInMemory(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tree.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	if !strings.HasPrefix(dot, "digraph tree {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("malformed dot: %q...", dot[:40])
	}
	if strings.Count(dot, "->") != tree.NumNodes-1 {
		t.Errorf("%d edges for %d nodes", strings.Count(dot, "->"), tree.NumNodes)
	}
	txt := tree.Render()
	if strings.Count(txt, "-> class =") != tree.NumLeaves {
		t.Errorf("render shows %d leaves, want %d", strings.Count(txt, "-> class ="), tree.NumLeaves)
	}

	// Multiway render covers the other branch.
	tree2, _ := BuildInMemory(ds, Options{Split: MultiwaySplit})
	var b2 strings.Builder
	if err := tree2.WriteDot(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "=") {
		t.Error("multiway dot missing edge labels")
	}
	if tree2.Render() == "" {
		t.Error("multiway render empty")
	}
}

func TestCrossValidate(t *testing.T) {
	ds := noisyDataset(1200, 10)
	res, err := CrossValidate(ds, 5, Options{MaxDepth: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 5 || len(res.FoldAcc) != 5 {
		t.Fatalf("folds: %+v", res)
	}
	// The weak signal plus 25% label noise bounds accuracy near 0.75.
	if res.Mean < 0.6 || res.Mean > 0.85 {
		t.Errorf("CV accuracy %.3f outside the plausible band", res.Mean)
	}
	if res.StdDev < 0 || res.StdDev > 0.2 {
		t.Errorf("CV stddev %.3f implausible", res.StdDev)
	}
	// Deterministic for the same seed.
	res2, _ := CrossValidate(ds, 5, Options{MaxDepth: 4}, 1)
	if res2.Mean != res.Mean {
		t.Error("CV not deterministic")
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	ds := noisyDataset(10, 11)
	if _, err := CrossValidate(ds, 1, Options{}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(ds, 11, Options{}, 1); err == nil {
		t.Error("k > rows accepted")
	}
}
