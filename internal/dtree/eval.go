package dtree

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/data"
)

// Classifier is anything that predicts a class for a row: decision trees,
// Naive Bayes models, or user-supplied models.
type Classifier interface {
	Predict(data.Row) data.Value
}

// Split partitions a dataset into train and test subsets with the given
// test fraction, deterministically for a seed. Rows are not copied.
func Split(ds *data.Dataset, testFrac float64, seed int64) (train, test *data.Dataset) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(ds.N())
	nTest := int(float64(ds.N()) * testFrac)
	train = data.NewDataset(ds.Schema)
	test = data.NewDataset(ds.Schema)
	for i, pi := range perm {
		if i < nTest {
			test.Rows = append(test.Rows, ds.Rows[pi])
		} else {
			train.Rows = append(train.Rows, ds.Rows[pi])
		}
	}
	return train, test
}

// ConfusionMatrix counts test outcomes: M[actual][predicted].
type ConfusionMatrix struct {
	Classes int
	M       [][]int64
}

// Evaluate runs the classifier over the dataset and tallies the confusion
// matrix.
func Evaluate(c Classifier, ds *data.Dataset) *ConfusionMatrix {
	k := ds.Schema.Class.Card
	cm := &ConfusionMatrix{Classes: k, M: make([][]int64, k)}
	for i := range cm.M {
		cm.M[i] = make([]int64, k)
	}
	for _, r := range ds.Rows {
		p := c.Predict(r)
		a := r.Class()
		if int(a) < k && int(p) < k && p >= 0 {
			cm.M[a][p]++
		}
	}
	return cm
}

// Total returns the number of evaluated rows.
func (cm *ConfusionMatrix) Total() int64 {
	var n int64
	for _, row := range cm.M {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the fraction of correct predictions.
func (cm *ConfusionMatrix) Accuracy() float64 {
	n := cm.Total()
	if n == 0 {
		return 0
	}
	var correct int64
	for i := range cm.M {
		correct += cm.M[i][i]
	}
	return float64(correct) / float64(n)
}

// Precision returns the precision for one class (0 when the class is never
// predicted).
func (cm *ConfusionMatrix) Precision(class data.Value) float64 {
	var predicted int64
	for a := range cm.M {
		predicted += cm.M[a][class]
	}
	if predicted == 0 {
		return 0
	}
	return float64(cm.M[class][class]) / float64(predicted)
}

// Recall returns the recall for one class (0 when the class never occurs).
func (cm *ConfusionMatrix) Recall(class data.Value) float64 {
	var actual int64
	for _, v := range cm.M[class] {
		actual += v
	}
	if actual == 0 {
		return 0
	}
	return float64(cm.M[class][class]) / float64(actual)
}

// String renders the matrix with per-class precision/recall.
func (cm *ConfusionMatrix) String() string {
	var b strings.Builder
	b.WriteString("actual\\pred")
	for c := 0; c < cm.Classes; c++ {
		fmt.Fprintf(&b, "%8d", c)
	}
	b.WriteString("    recall\n")
	for a := 0; a < cm.Classes; a++ {
		fmt.Fprintf(&b, "%11d", a)
		for p := 0; p < cm.Classes; p++ {
			fmt.Fprintf(&b, "%8d", cm.M[a][p])
		}
		fmt.Fprintf(&b, "  %8.3f\n", cm.Recall(data.Value(a)))
	}
	b.WriteString("  precision")
	for p := 0; p < cm.Classes; p++ {
		fmt.Fprintf(&b, "%8.3f", cm.Precision(data.Value(p)))
	}
	fmt.Fprintf(&b, "  acc=%.4f\n", cm.Accuracy())
	return b.String()
}

// WriteDot renders the tree in Graphviz DOT format.
func (t *Tree) WriteDot(w interface{ WriteString(string) (int, error) }) error {
	if _, err := w.WriteString("digraph tree {\n  node [shape=box, fontname=\"monospace\"];\n"); err != nil {
		return err
	}
	var werr error
	emit := func(s string) {
		if werr == nil {
			_, werr = w.WriteString(s)
		}
	}
	t.Walk(func(n *Node) {
		if n.Leaf {
			emit(fmt.Sprintf("  n%d [label=\"%s = %d\\nn=%d\", style=filled, fillcolor=lightgrey];\n",
				n.ID, t.Schema.Class.Name, n.Class, n.Rows))
		} else {
			attr := t.Schema.Attrs[n.SplitAttr].Name
			if n.Multiway {
				emit(fmt.Sprintf("  n%d [label=\"%s?\\nn=%d\"];\n", n.ID, attr, n.Rows))
				for i, c := range n.Children {
					emit(fmt.Sprintf("  n%d -> n%d [label=\"=%d\"];\n", n.ID, c.ID, n.SplitVals[i]))
				}
			} else {
				emit(fmt.Sprintf("  n%d [label=\"%s = %d?\\nn=%d\"];\n", n.ID, attr, n.SplitVal, n.Rows))
				emit(fmt.Sprintf("  n%d -> n%d [label=\"yes\"];\n", n.ID, n.Children[0].ID))
				emit(fmt.Sprintf("  n%d -> n%d [label=\"no\"];\n", n.ID, n.Children[1].ID))
			}
		}
	})
	emit("}\n")
	return werr
}

// Render returns an indented text form of the tree.
func (t *Tree) Render() string {
	var b strings.Builder
	var rec func(n *Node, prefix string)
	rec = func(n *Node, prefix string) {
		if n.Leaf {
			fmt.Fprintf(&b, "%s-> %s = %d (n=%d)\n", prefix, t.Schema.Class.Name, n.Class, n.Rows)
			return
		}
		attr := t.Schema.Attrs[n.SplitAttr].Name
		if n.Multiway {
			for i, c := range n.Children {
				fmt.Fprintf(&b, "%s%s = %d:\n", prefix, attr, n.SplitVals[i])
				rec(c, prefix+"  ")
			}
			return
		}
		fmt.Fprintf(&b, "%s%s = %d:\n", prefix, attr, n.SplitVal)
		rec(n.Children[0], prefix+"  ")
		fmt.Fprintf(&b, "%s%s <> %d:\n", prefix, attr, n.SplitVal)
		rec(n.Children[1], prefix+"  ")
	}
	rec(t.Root, "")
	return b.String()
}
