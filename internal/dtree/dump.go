package dtree

import (
	"fmt"
	"strings"
)

// Dump renders the tree in a canonical line-per-node text form: depth-first,
// children in split order, every decision-relevant field spelled out. Two
// trees produce the same dump iff they are structurally identical (same
// splits, labels, counts, and node ids in build order), so the dump is the
// byte-comparison currency of the daemon/in-process equivalence tests and
// the wire format cmd/served streams a built tree in.
func (t *Tree) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tree nodes=%d leaves=%d depth=%d class=%s\n",
		t.NumNodes, t.NumLeaves, t.MaxDepth, t.Schema.Class.Name)
	var walk func(n *Node)
	walk = func(n *Node) {
		b.WriteString(strings.Repeat("  ", n.Depth))
		fmt.Fprintf(&b, "node %d rows=%d class=%d counts=%v", n.ID, n.Rows, n.Class, n.ClassCounts)
		if n.Leaf {
			b.WriteString(" leaf\n")
			return
		}
		attr := t.Schema.ColName(n.SplitAttr)
		if n.Multiway {
			fmt.Fprintf(&b, " split %s in %v\n", attr, n.SplitVals)
		} else {
			fmt.Fprintf(&b, " split %s=%d\n", attr, n.SplitVal)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return b.String()
}

// DumpLines returns Dump split into lines, without the trailing empty line —
// the row-per-line form the daemon streams.
func (t *Tree) DumpLines() []string {
	s := strings.TrimSuffix(t.Dump(), "\n")
	return strings.Split(s, "\n")
}
