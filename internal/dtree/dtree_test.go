package dtree

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/data"
	"repro/internal/predicate"
)

// xorDataset builds a two-attribute XOR dataset: class = a XOR b, which
// needs exactly two levels of binary splits.
func xorDataset(n int) *data.Dataset {
	s := data.NewSchema(2, 2, 2)
	ds := data.NewDataset(s)
	for i := 0; i < n; i++ {
		a := data.Value(i % 2)
		b := data.Value((i / 2) % 2)
		ds.Append(data.Row{a, b, a ^ b})
	}
	return ds
}

// singleAttrDataset: class fully determined by attribute 0.
func singleAttrDataset(n int) *data.Dataset {
	s := data.NewSchema(3, 3, 3)
	ds := data.NewDataset(s)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		a := data.Value(rng.Intn(3))
		ds.Append(data.Row{a, data.Value(rng.Intn(3)), data.Value(rng.Intn(3)), a})
	}
	return ds
}

func TestBuildInMemoryXOR(t *testing.T) {
	ds := xorDataset(400)
	tree, err := BuildInMemory(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(ds); acc != 1.0 {
		t.Errorf("XOR accuracy = %v, want 1", acc)
	}
	if tree.MaxDepth != 2 {
		t.Errorf("XOR depth = %d, want 2", tree.MaxDepth)
	}
	if tree.NumLeaves != 4 {
		t.Errorf("XOR leaves = %d, want 4", tree.NumLeaves)
	}
}

func TestSingleInformativeAttributeChosen(t *testing.T) {
	ds := singleAttrDataset(900)
	for _, m := range []Measure{Entropy, Gini, GainRatio} {
		tree, err := BuildInMemory(ds, Options{Measure: m})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Root.SplitAttr != 0 {
			t.Errorf("measure %v: root split on A%d, want A1", m, tree.Root.SplitAttr+1)
		}
		if acc := tree.Accuracy(ds); acc != 1.0 {
			t.Errorf("measure %v: accuracy %v", m, acc)
		}
	}
}

func TestMultiwaySplit(t *testing.T) {
	ds := singleAttrDataset(900)
	tree, err := BuildInMemory(ds, Options{Split: MultiwaySplit})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.Multiway || tree.Root.SplitAttr != 0 {
		t.Fatalf("root = %+v", tree.Root)
	}
	if len(tree.Root.Children) != 3 {
		t.Errorf("children = %d, want 3", len(tree.Root.Children))
	}
	if acc := tree.Accuracy(ds); acc != 1.0 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestMaxDepthAndMinRows(t *testing.T) {
	ds := xorDataset(400)
	tree, err := BuildInMemory(ds, Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.MaxDepth > 1 {
		t.Errorf("depth = %d, want <= 1", tree.MaxDepth)
	}
	tree2, err := BuildInMemory(ds, Options{MinRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !tree2.Root.Leaf {
		t.Error("MinRows above N must keep the root a leaf")
	}
}

func TestMinGainStopsUninformativeSplits(t *testing.T) {
	// Pure-noise class: no split has real gain; with a high MinGain the
	// tree must stay a stump.
	rng := rand.New(rand.NewSource(3))
	s := data.NewSchema(3, 2, 2)
	ds := data.NewDataset(s)
	for i := 0; i < 500; i++ {
		ds.Append(data.Row{
			data.Value(rng.Intn(2)), data.Value(rng.Intn(2)),
			data.Value(rng.Intn(2)), data.Value(rng.Intn(2)),
		})
	}
	tree, err := BuildInMemory(ds, Options{MinGain: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.Leaf {
		t.Errorf("noise data grew a %d-node tree despite MinGain", tree.NumNodes)
	}
}

func TestImpurityFunctions(t *testing.T) {
	if h := impurity(Entropy, []int64{5, 5}, 10); math.Abs(h-1.0) > 1e-9 {
		t.Errorf("entropy(5,5) = %v, want 1", h)
	}
	if h := impurity(Entropy, []int64{10, 0}, 10); h != 0 {
		t.Errorf("entropy(10,0) = %v, want 0", h)
	}
	if g := impurity(Gini, []int64{5, 5}, 10); math.Abs(g-0.5) > 1e-9 {
		t.Errorf("gini(5,5) = %v, want 0.5", g)
	}
	if g := impurity(Gini, []int64{10, 0}, 10); g != 0 {
		t.Errorf("gini(10,0) = %v", g)
	}
	if h := impurity(Entropy, nil, 0); h != 0 {
		t.Errorf("empty impurity = %v", h)
	}
}

func TestMajority(t *testing.T) {
	cls, pure := majority([]int64{0, 7, 0})
	if cls != 1 || !pure {
		t.Errorf("majority = %d pure=%v", cls, pure)
	}
	cls, pure = majority([]int64{3, 7, 2})
	if cls != 1 || pure {
		t.Errorf("majority = %d pure=%v", cls, pure)
	}
	// Ties break to the lowest class index.
	cls, _ = majority([]int64{5, 5})
	if cls != 0 {
		t.Errorf("tie majority = %d", cls)
	}
}

func TestDecideDeterministicTieBreak(t *testing.T) {
	// Two identical attributes: the split must pick the lower index.
	s := data.NewSchema(2, 2, 2)
	ds := data.NewDataset(s)
	for i := 0; i < 100; i++ {
		v := data.Value(i % 2)
		ds.Append(data.Row{v, v, v})
	}
	tree, err := BuildInMemory(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.SplitAttr != 0 {
		t.Errorf("tie broke to attribute %d, want 0", tree.Root.SplitAttr)
	}
}

func TestPredictUnseenMultiwayValue(t *testing.T) {
	ds := singleAttrDataset(300)
	tree, err := BuildInMemory(ds, Options{Split: MultiwaySplit})
	if err != nil {
		t.Fatal(err)
	}
	// Value 9 was never seen: prediction falls back to the node majority.
	row := data.Row{9, 0, 0, 0}
	got := tree.Predict(row)
	if int(got) < 0 || int(got) >= 3 {
		t.Errorf("prediction %d out of range", got)
	}
}

func TestBuildersAgree(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := data.NewSchema(5, 3, 3)
		ds := data.NewDataset(s)
		for i := 0; i < 600; i++ {
			r := make(data.Row, 6)
			for j := 0; j < 5; j++ {
				r[j] = data.Value(rng.Intn(3))
			}
			r[5] = data.Value((int(r[0]) + int(r[1])) % 3)
			ds.Append(r)
		}
		for _, opt := range []Options{{}, {Split: MultiwaySplit}, {Measure: Gini}, {MaxDepth: 3}} {
			ref, err := BuildInMemory(ds, opt)
			if err != nil {
				t.Fatal(err)
			}
			lvl, err := BuildLevelwise(ds, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(ref, lvl) {
				t.Errorf("seed %d opt %+v: levelwise differs", seed, opt)
			}
			fetch := func(path predicate.Conj, attrs []int) (*cc.Table, error) {
				countAttrs := append(append([]int(nil), attrs...), s.ClassIndex())
				return cc.FromDataset(ds, countAttrs, path.Eval), nil
			}
			bwc, err := BuildWithCounts(s, int64(ds.N()), opt, fetch)
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(ref, bwc) {
				t.Errorf("seed %d opt %+v: BuildWithCounts differs", seed, opt)
			}
		}
	}
}

func TestLevelwiseOnRowCallbackCount(t *testing.T) {
	ds := xorDataset(200)
	var touches int
	tree, err := BuildLevelwise(ds, Options{}, func() { touches++ })
	if err != nil {
		t.Fatal(err)
	}
	// XOR needs the root pass plus one pass for the two depth-1 nodes:
	// 2 generations x 200 rows (depth-2 children are terminal by probe).
	want := 2 * ds.N()
	if touches != want {
		t.Errorf("touches = %d, want %d (tree depth %d)", touches, want, tree.MaxDepth)
	}
}

func TestRulesAndStats(t *testing.T) {
	ds := xorDataset(100)
	tree, _ := BuildInMemory(ds, Options{})
	rules := tree.Rules()
	if len(rules) != tree.NumLeaves {
		t.Errorf("%d rules for %d leaves", len(rules), tree.NumLeaves)
	}
	for _, r := range rules {
		if !strings.Contains(r, "IF ") || !strings.Contains(r, "THEN class = ") {
			t.Errorf("malformed rule %q", r)
		}
	}
	st := tree.Stats()
	if st.Nodes != tree.NumNodes || st.Leaves != tree.NumLeaves || st.Depth != tree.MaxDepth {
		t.Error("Stats disagree with fields")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	ds := xorDataset(100)
	a, _ := BuildInMemory(ds, Options{})
	b, _ := BuildInMemory(ds, Options{})
	if !Equal(a, b) {
		t.Fatal("identical builds unequal")
	}
	c, _ := BuildInMemory(ds, Options{MaxDepth: 1})
	if Equal(a, c) {
		t.Error("different trees equal")
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	ds := xorDataset(100)
	tree, _ := BuildInMemory(ds, Options{})
	n := 0
	tree.Walk(func(*Node) { n++ })
	if n != tree.NumNodes {
		t.Errorf("Walk visited %d of %d nodes", n, tree.NumNodes)
	}
}

func TestExpandSizesSumToParent(t *testing.T) {
	ds := singleAttrDataset(500)
	s := ds.Schema
	countAttrs := []int{0, 1, 2, s.ClassIndex()}
	table := cc.FromDataset(ds, countAttrs, nil)
	n := &Node{Attrs: []int{0, 1, 2}, Rows: int64(ds.N())}
	n.ClassCounts = classTotals(table, s.ClassIndex(), 3)

	dec := decide(table, n.Attrs, n.ClassCounts, n.Rows, 0, Options{})
	if dec.leaf {
		t.Fatal("expected a split")
	}
	specs := expand(table, n, dec, 3)
	var sumRows int64
	for _, sp := range specs {
		sumRows += sp.rows
		var sumClasses int64
		for _, c := range sp.classCounts {
			sumClasses += c
		}
		if sumClasses != sp.rows {
			t.Errorf("child class counts sum %d != rows %d", sumClasses, sp.rows)
		}
	}
	if sumRows != n.Rows {
		t.Errorf("children rows sum %d != parent rows %d (§4.2.1 exactness)", sumRows, n.Rows)
	}
}

func TestBinarySplitDropsExhaustedAttr(t *testing.T) {
	// Binary attribute: both children must drop it.
	s := data.NewSchema(2, 2, 2)
	ds := data.NewDataset(s)
	for i := 0; i < 100; i++ {
		a := data.Value(i % 2)
		ds.Append(data.Row{a, data.Value(i % 2), a})
	}
	tree, _ := BuildInMemory(ds, Options{})
	root := tree.Root
	if root.Leaf {
		t.Fatal("root is a leaf")
	}
	for _, ch := range root.Children {
		for _, a := range ch.Attrs {
			if a == root.SplitAttr {
				t.Errorf("child kept exhausted binary attribute %d", a)
			}
		}
	}
}
