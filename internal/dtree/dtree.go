// Package dtree implements the decision-tree classification client of §2–§3
// of the paper: Algorithm Grow driven entirely by sufficient statistics.
//
// The client never touches rows. For every active node it requests the
// node's counts (CC) table — from the middleware (Build) or from an
// in-memory dataset (BuildInMemory, the reference implementation the
// property tests compare against) — scores all candidate partitions with the
// configured measure, picks the best, and grows the tree one level. Node
// termination follows §2.1: a node becomes a leaf when it is pure, when no
// attribute can split it further, or when a configured depth/size limit is
// reached.
//
// The split decision is a pure function of the CC table, so the tree the
// client produces is independent of the order in which the middleware
// chooses to fulfil requests — the property §3.1 relies on ("this approach
// does not affect the decision tree that is finally produced").
package dtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cc"
	"repro/internal/data"
	"repro/internal/predicate"
)

// Measure selects the partition scoring function.
type Measure int

const (
	// Entropy is the information-gain measure of ID3/C4.5/CART used in the
	// paper's experiments (§3.1).
	Entropy Measure = iota
	// Gini is the Gini-index impurity of CART.
	Gini
	// GainRatio is C4.5's gain ratio (information gain normalized by split
	// information).
	GainRatio
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case Entropy:
		return "entropy"
	case Gini:
		return "gini"
	case GainRatio:
		return "gain-ratio"
	}
	return fmt.Sprintf("measure(%d)", int(m))
}

// SplitStyle selects the partition shape.
type SplitStyle int

const (
	// BinarySplit partitions a node into A = v versus A <> v, the form the
	// paper's experiments grow ("only binary trees were grown from the
	// data", §5.1.3) and the form §4.2.1's estimators assume.
	BinarySplit SplitStyle = iota
	// MultiwaySplit partitions on every observed value of the chosen
	// attribute (complete splits, [F94]).
	MultiwaySplit
)

// String names the split style.
func (s SplitStyle) String() string {
	switch s {
	case BinarySplit:
		return "binary"
	case MultiwaySplit:
		return "multiway"
	}
	return fmt.Sprintf("split(%d)", int(s))
}

// Options configures tree growth. The zero value grows a full binary
// entropy tree (no pruning), matching the paper's experimental setup.
type Options struct {
	Measure Measure
	Split   SplitStyle
	// MaxDepth stops splitting below this depth (0 = unlimited).
	MaxDepth int
	// MinRows is the minimum node size eligible for splitting (values < 2
	// are treated as 2).
	MinRows int64
	// MinGain, when positive, requires a split's impurity gain to exceed
	// it. The default 0 imposes no gain requirement: like the paper's
	// clients, the tree grows until nodes are pure or unsplittable, even
	// through zero-gain splits (which XOR-like concepts need).
	MinGain float64

	// probeOnly restricts decide to the termination criteria decidable
	// without a CC table; set internally when pre-screening fresh children.
	probeOnly bool
}

func (o Options) minRows() int64 {
	if o.MinRows < 2 {
		return 2
	}
	return o.MinRows
}

// Node is one tree node.
type Node struct {
	ID   int
	Path predicate.Conj // conjunction of edge conditions from the root
	// Attrs are the attribute indices still available below this node.
	Attrs []int
	Rows  int64
	Depth int
	// ClassCounts is the node's class histogram.
	ClassCounts []int64
	// Class is the majority class (the leaf label; internal nodes keep it
	// as the fallback prediction for unseen attribute values).
	Class data.Value

	Leaf bool
	// SplitAttr/SplitVal describe the partition at an internal node. For a
	// BinarySplit, Children[0] is A = SplitVal and Children[1] is
	// A <> SplitVal. For a MultiwaySplit, Children[i] is A = SplitVals[i].
	SplitAttr int
	SplitVal  data.Value
	Multiway  bool
	SplitVals []data.Value
	Children  []*Node
}

// Tree is a grown decision tree.
type Tree struct {
	Root      *Node
	Schema    *data.Schema
	NumNodes  int
	NumLeaves int
	MaxDepth  int
}

// Predict returns the predicted class for a row (only the attribute columns
// are consulted, so rows with or without a trailing class value work).
func (t *Tree) Predict(row data.Row) data.Value {
	n := t.Root
	for !n.Leaf {
		v := row[n.SplitAttr]
		if !n.Multiway {
			if v == n.SplitVal {
				n = n.Children[0]
			} else {
				n = n.Children[1]
			}
			continue
		}
		next := (*Node)(nil)
		for i, sv := range n.SplitVals {
			if sv == v {
				next = n.Children[i]
				break
			}
		}
		if next == nil {
			return n.Class // unseen value: majority fallback
		}
		n = next
	}
	return n.Class
}

// Accuracy returns the fraction of rows in ds whose class the tree predicts
// correctly.
func (t *Tree) Accuracy(ds *data.Dataset) float64 {
	if ds.N() == 0 {
		return 0
	}
	correct := 0
	for _, r := range ds.Rows {
		if t.Predict(r) == r.Class() {
			correct++
		}
	}
	return float64(correct) / float64(ds.N())
}

// Walk visits every node in depth-first, child-order traversal.
func (t *Tree) Walk(fn func(*Node)) { walkNode(t.Root, fn) }

func walkNode(n *Node, fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		walkNode(c, fn)
	}
}

// Frontier statistics used by the experiment harness.
type Stats struct {
	Nodes, Leaves, Depth int
}

// Stats returns node/leaf/depth counts.
func (t *Tree) Stats() Stats {
	return Stats{Nodes: t.NumNodes, Leaves: t.NumLeaves, Depth: t.MaxDepth}
}

// impurity computes the configured impurity of a class histogram with n
// total rows.
func impurity(m Measure, counts []int64, n int64) float64 {
	if n == 0 {
		return 0
	}
	switch m {
	case Gini:
		g := 1.0
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(n)
				g -= p * p
			}
		}
		return g
	default: // Entropy and GainRatio both use entropy as the impurity
		h := 0.0
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(n)
				h -= p * math.Log2(p)
			}
		}
		return h
	}
}

// classTotals extracts a node's class histogram from its CC table. The
// middleware counts the class column itself as a pseudo-attribute, so the
// histogram is available even when no predictor attributes remain.
func classTotals(t *cc.Table, classIdx, classCard int) []int64 {
	out := make([]int64, classCard)
	for c := 0; c < classCard; c++ {
		out[c] = t.Count(classIdx, data.Value(c), data.Value(c))
	}
	return out
}

// majority returns the majority class (lowest index on ties) and whether
// the histogram is pure.
func majority(counts []int64) (cls data.Value, pure bool) {
	best := 0
	var nonzero int
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
		if c > 0 {
			nonzero++
		}
	}
	return data.Value(best), nonzero <= 1
}

// decision is the outcome of scoring one node.
type decision struct {
	leaf bool
	attr int
	val  data.Value
	vals []data.Value // multiway
	gain float64
}

const gainEps = 1e-12

// decide scores all candidate partitions of a node from its CC table and
// returns either a split or a leaf decision. It is deterministic: ties break
// toward the lower attribute index and then the lower value.
func decide(t *cc.Table, attrs []int, classCounts []int64, rows int64, depth int, opt Options) decision {
	if _, pure := majority(classCounts); pure {
		return decision{leaf: true}
	}
	if rows < opt.minRows() || len(attrs) == 0 {
		return decision{leaf: true}
	}
	if opt.MaxDepth > 0 && depth >= opt.MaxDepth {
		return decision{leaf: true}
	}
	if opt.probeOnly {
		// Whether a positive-gain split exists needs the CC table; the
		// caller will request one.
		return decision{leaf: false}
	}
	classCard := len(classCounts)
	h0 := impurity(opt.Measure, classCounts, rows)

	// With no MinGain, any non-degenerate split qualifies (gain can be
	// exactly zero); ties and the first maximum break toward the lowest
	// attribute and value because candidates are visited in order.
	best := decision{leaf: true, gain: -1}
	if opt.MinGain > 0 {
		best.gain = opt.MinGain
	}
	for _, a := range attrs {
		vals := t.Values(a)
		if len(vals) < 2 {
			continue // constant attribute at this node
		}
		if opt.Split == MultiwaySplit {
			var rem, splitInfo float64
			for _, v := range vals {
				vec := t.ClassVector(a, v, classCard)
				nv := sum(vec)
				rem += float64(nv) / float64(rows) * impurity(opt.Measure, vec, nv)
				p := float64(nv) / float64(rows)
				splitInfo -= p * math.Log2(p)
			}
			gain := h0 - rem
			if opt.Measure == GainRatio && splitInfo > 0 {
				gain /= splitInfo
			}
			if gain > best.gain+gainEps {
				best = decision{attr: a, vals: vals, gain: gain}
			}
			continue
		}
		// Binary splits: A = v versus A <> v for every observed v.
		for _, v := range vals {
			vec := t.ClassVector(a, v, classCard)
			n1 := sum(vec)
			n2 := rows - n1
			if n1 == 0 || n2 == 0 {
				continue
			}
			rest := make([]int64, classCard)
			for i := range rest {
				rest[i] = classCounts[i] - vec[i]
			}
			rem := float64(n1)/float64(rows)*impurity(opt.Measure, vec, n1) +
				float64(n2)/float64(rows)*impurity(opt.Measure, rest, n2)
			gain := h0 - rem
			if opt.Measure == GainRatio {
				p1 := float64(n1) / float64(rows)
				si := -(p1*math.Log2(p1) + (1-p1)*math.Log2(1-p1))
				if si > 0 {
					gain /= si
				}
			}
			if gain > best.gain+gainEps {
				best = decision{attr: a, val: v, gain: gain}
			}
		}
	}
	return best
}

func sum(v []int64) int64 {
	var n int64
	for _, x := range v {
		n += x
	}
	return n
}

// removeAttr returns attrs without a (a fresh slice).
func removeAttr(attrs []int, a int) []int {
	out := make([]int, 0, len(attrs)-1)
	for _, x := range attrs {
		if x != a {
			out = append(out, x)
		}
	}
	return out
}

// childSpec describes one child produced by applying a decision to a node.
type childSpec struct {
	cond        predicate.Cond
	attrs       []int
	rows        int64
	classCounts []int64
}

// expand computes the children implied by a split decision, using only the
// parent's CC table (the estimator exactness of §4.2.1: "the data size of an
// active node can be calculated precisely from the count table of its
// parent" — and so can its class histogram).
func expand(t *cc.Table, n *Node, dec decision, classCard int) []childSpec {
	if dec.leaf {
		return nil
	}
	a := dec.attr
	if len(dec.vals) > 0 { // multiway
		specs := make([]childSpec, 0, len(dec.vals))
		sub := removeAttr(n.Attrs, a)
		for _, v := range dec.vals {
			vec := t.ClassVector(a, v, classCard)
			specs = append(specs, childSpec{
				cond:        predicate.Cond{Attr: a, Op: predicate.Eq, Val: v},
				attrs:       sub,
				rows:        sum(vec),
				classCounts: vec,
			})
		}
		return specs
	}
	// Binary: A = v child drops A; A <> v keeps A unless only one other
	// value remains.
	vec := t.ClassVector(a, dec.val, classCard)
	n1 := sum(vec)
	rest := make([]int64, classCard)
	for i := range rest {
		rest[i] = n.ClassCounts[i] - vec[i]
	}
	eqAttrs := removeAttr(n.Attrs, a)
	neAttrs := n.Attrs
	if t.Card(a) <= 2 {
		neAttrs = eqAttrs
	}
	return []childSpec{
		{cond: predicate.Cond{Attr: a, Op: predicate.Eq, Val: dec.val}, attrs: eqAttrs, rows: n1, classCounts: vec},
		{cond: predicate.Cond{Attr: a, Op: predicate.Ne, Val: dec.val}, attrs: append([]int(nil), neAttrs...), rows: n.Rows - n1, classCounts: rest},
	}
}

// allAttrs returns [0..m).
func allAttrs(s *data.Schema) []int {
	attrs := make([]int, s.NumAttrs())
	for i := range attrs {
		attrs[i] = i
	}
	return attrs
}

// finalize computes tree statistics.
func finalize(t *Tree) *Tree {
	t.Walk(func(n *Node) {
		t.NumNodes++
		if n.Leaf {
			t.NumLeaves++
		}
		if n.Depth > t.MaxDepth {
			t.MaxDepth = n.Depth
		}
	})
	return t
}

// Equal reports whether two trees have identical structure, splits and leaf
// labels. Used by the invariance tests (middleware tree == in-memory tree).
func Equal(a, b *Tree) bool { return nodeEqual(a.Root, b.Root) }

func nodeEqual(a, b *Node) bool {
	if a.Leaf != b.Leaf || a.Rows != b.Rows || a.Class != b.Class {
		return false
	}
	if a.Leaf {
		return true
	}
	if a.SplitAttr != b.SplitAttr || a.Multiway != b.Multiway || len(a.Children) != len(b.Children) {
		return false
	}
	if !a.Multiway && a.SplitVal != b.SplitVal {
		return false
	}
	for i := range a.Children {
		if !nodeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Rules renders the tree's leaves as decision rules (§2.1: "the leaves,
// represented as decision rules, are more easily understood by domain
// experts").
func (t *Tree) Rules() []string {
	var rules []string
	t.Walk(func(n *Node) {
		if !n.Leaf {
			return
		}
		cond := "true"
		if len(n.Path) > 0 {
			cond = n.Path.SQL(t.Schema)
		}
		total := sum(n.ClassCounts)
		var pure float64
		if total > 0 {
			pure = float64(n.ClassCounts[n.Class]) / float64(total)
		}
		rules = append(rules, fmt.Sprintf("IF %s THEN %s = %d  (n=%d, purity=%.2f)",
			cond, t.Schema.Class.Name, n.Class, total, pure))
	})
	sort.Strings(rules)
	return rules
}
