package predicate

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/data"
)

func TestCondEval(t *testing.T) {
	r := data.Row{2, 0, 1}
	cases := []struct {
		c    Cond
		want bool
	}{
		{Cond{Attr: 0, Op: Eq, Val: 2}, true},
		{Cond{Attr: 0, Op: Eq, Val: 1}, false},
		{Cond{Attr: 1, Op: Ne, Val: 2}, true},
		{Cond{Attr: 1, Op: Ne, Val: 0}, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(r); got != c.want {
			t.Errorf("%v.Eval(%v) = %v", c.c, r, got)
		}
	}
}

func TestConjEvalAndAnd(t *testing.T) {
	r := data.Row{2, 0, 1}
	var cj Conj
	if !cj.Eval(r) {
		t.Error("empty conjunction must be true")
	}
	cj2 := cj.And(Cond{Attr: 0, Op: Eq, Val: 2})
	cj3 := cj2.And(Cond{Attr: 1, Op: Ne, Val: 0})
	if !cj2.Eval(r) || cj3.Eval(r) {
		t.Error("conjunction semantics wrong")
	}
	// And must not alias: extending cj2 twice gives independent conjs.
	a := cj2.And(Cond{Attr: 2, Op: Eq, Val: 1})
	b := cj2.And(Cond{Attr: 2, Op: Eq, Val: 0})
	if a[1] == b[1] {
		t.Error("And aliased the parent slice")
	}
	if len(cj2) != 1 {
		t.Error("And mutated the receiver")
	}
}

func TestNormalize(t *testing.T) {
	eq := func(a int, v data.Value) Cond { return Cond{Attr: a, Op: Eq, Val: v} }
	ne := func(a int, v data.Value) Cond { return Cond{Attr: a, Op: Ne, Val: v} }

	// Equality subsumes inequality on the same attribute.
	out, ok := Conj{ne(0, 1), eq(0, 2), ne(0, 3)}.Normalize()
	if !ok || !reflect.DeepEqual(out, Conj{eq(0, 2)}) {
		t.Errorf("subsumption: %v %v", out, ok)
	}
	// Contradictions.
	if _, ok := (Conj{eq(0, 1), eq(0, 2)}).Normalize(); ok {
		t.Error("A=1 AND A=2 accepted")
	}
	if _, ok := (Conj{eq(0, 1), ne(0, 1)}).Normalize(); ok {
		t.Error("A=1 AND A<>1 accepted")
	}
	// Duplicates collapse.
	out, ok = Conj{ne(1, 0), ne(1, 0), ne(1, 2)}.Normalize()
	if !ok || len(out) != 2 {
		t.Errorf("dedupe: %v", out)
	}
	// Normalization preserves semantics.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var cj Conj
		for i := 0; i < rng.Intn(5); i++ {
			cj = append(cj, Cond{Attr: rng.Intn(3), Op: Op(rng.Intn(2)), Val: data.Value(rng.Intn(3))})
		}
		norm, ok := cj.Normalize()
		for rt := 0; rt < 20; rt++ {
			r := data.Row{data.Value(rng.Intn(3)), data.Value(rng.Intn(3)), data.Value(rng.Intn(3))}
			if !ok {
				if cj.Eval(r) {
					t.Fatalf("unsatisfiable %v matched %v", cj, r)
				}
				continue
			}
			if cj.Eval(r) != norm.Eval(r) {
				t.Fatalf("normalize changed semantics: %v vs %v on %v", cj, norm, r)
			}
		}
	}
}

func TestSQLRendering(t *testing.T) {
	s := data.NewSchema(3, 4, 2)
	cj := Conj{{Attr: 0, Op: Eq, Val: 2}, {Attr: 2, Op: Ne, Val: 1}}
	if got := cj.SQL(s); got != "A1 = 2 AND A3 <> 1" {
		t.Errorf("Conj.SQL = %q", got)
	}
	if got := (Conj{}).SQL(s); got != "1 = 1" {
		t.Errorf("empty Conj.SQL = %q", got)
	}
	f := Or(cj, Conj{{Attr: 1, Op: Eq, Val: 0}})
	if got := f.SQL(s); got != "(A1 = 2 AND A3 <> 1) OR (A2 = 0)" {
		t.Errorf("Filter.SQL = %q", got)
	}
	if got := MatchAll().SQL(s); got != "1 = 1" {
		t.Errorf("MatchAll.SQL = %q", got)
	}
	if got := (Filter{}).SQL(s); got != "1 = 0" {
		t.Errorf("empty Filter.SQL = %q", got)
	}
}

func TestFilterSemantics(t *testing.T) {
	r := data.Row{1, 2, 0}
	c1 := Conj{{Attr: 0, Op: Eq, Val: 1}}
	c2 := Conj{{Attr: 1, Op: Eq, Val: 9}}
	if f := Or(c2); f.Eval(r) {
		t.Error("non-matching filter matched")
	}
	if f := Or(c2, c1); !f.Eval(r) {
		t.Error("matching filter missed")
	}
	if !MatchAll().Eval(r) || !MatchAll().All() {
		t.Error("MatchAll")
	}
	var zero Filter
	if zero.Eval(r) || !zero.Empty() {
		t.Error("zero filter must match nothing")
	}
	// An empty conjunction (the root) degenerates the filter to match-all.
	if f := Or(c2, Conj{}); !f.All() {
		t.Error("root conjunction should force match-all")
	}
}

func TestStrings(t *testing.T) {
	cj := Conj{{Attr: 0, Op: Eq, Val: 2}}
	if cj.String() == "" || (Conj{}).String() != "true" {
		t.Error("Conj.String")
	}
	if MatchAll().String() != "true" || (Filter{}).String() != "false" {
		t.Error("Filter.String")
	}
	if Or(cj).String() == "" {
		t.Error("Or.String")
	}
	if Eq.String() != "=" || Ne.String() != "<>" {
		t.Error("Op.String")
	}
}

// TestFilterEqualsAnyConj: a filter matches exactly when at least one of its
// conjunctions does.
func TestFilterEqualsAnyConj(t *testing.T) {
	f := func(rows [][3]uint8, conds [][3]uint8) bool {
		var conjs []Conj
		for i, c := range conds {
			cj := Conj{{Attr: int(c[0] % 3), Op: Op(c[1] % 2), Val: data.Value(c[2] % 4)}}
			if i%2 == 1 && len(conds) > 1 {
				prev := conds[i-1]
				cj = cj.And(Cond{Attr: int(prev[0] % 3), Op: Op(prev[1] % 2), Val: data.Value(prev[2] % 4)})
			}
			conjs = append(conjs, cj)
		}
		filter := Or(conjs...)
		for _, rw := range rows {
			r := data.Row{data.Value(rw[0] % 4), data.Value(rw[1] % 4), data.Value(rw[2] % 4)}
			want := false
			for _, cj := range conjs {
				if cj.Eval(r) {
					want = true
					break
				}
			}
			if len(conjs) == 0 {
				want = false
			}
			if filter.Eval(r) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
