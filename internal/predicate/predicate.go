// Package predicate implements the node predicates and filter expressions of
// §4.3.1 of the paper.
//
// Every decision-tree node n is associated with a conjunction of simple
// conditions on the edges of the path from the root to n ("A1=a2 AND A2=a").
// When the middleware schedules a set of active nodes {n1..nk} for a single
// server scan, it generates the filter expression (S1 OR ... OR Sk) from the
// nodes' path predicates and pushes it into the server's SELECT so that
// "each record fetched from the server to the middleware contributes to one
// or more of the counts".
package predicate

import (
	"fmt"
	"strings"

	"repro/internal/data"
)

// Op is a comparison operator on a categorical attribute.
type Op int

// Supported operators. The paper's partitions are of the form "A = v" or
// "A = other" (§4.2.1), i.e. equality and its negation.
const (
	Eq Op = iota // attribute equals value
	Ne           // attribute differs from value
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Cond is one simple condition "Attr op Val" on attribute index Attr.
type Cond struct {
	Attr int
	Op   Op
	Val  data.Value
}

// Eval reports whether the row satisfies the condition.
func (c Cond) Eval(r data.Row) bool {
	if c.Op == Eq {
		return r[c.Attr] == c.Val
	}
	return r[c.Attr] != c.Val
}

// SQL renders the condition against the schema's column names.
func (c Cond) SQL(s *data.Schema) string {
	return fmt.Sprintf("%s %s %d", s.Attrs[c.Attr].Name, c.Op, c.Val)
}

// Conj is a conjunction of simple conditions: one tree node's path
// predicate. The empty (nil) conjunction is true (the root node).
type Conj []Cond

// Eval reports whether the row satisfies every condition.
func (cj Conj) Eval(r data.Row) bool {
	for _, c := range cj {
		if !c.Eval(r) {
			return false
		}
	}
	return true
}

// And returns a new conjunction extended with c. The receiver is not
// modified; the result does not alias it.
func (cj Conj) And(c Cond) Conj {
	out := make(Conj, 0, len(cj)+1)
	out = append(out, cj...)
	return append(out, c)
}

// Normalize returns an equivalent conjunction with redundant conditions
// removed: a "A = v" condition subsumes any "A <> w" (w != v) on the same
// attribute, and duplicate conditions collapse. It returns ok=false if the
// conjunction is unsatisfiable (e.g. A = 1 AND A = 2, or A = 1 AND A <> 1).
func (cj Conj) Normalize() (out Conj, ok bool) {
	eq := map[int]data.Value{}
	ne := map[int]map[data.Value]bool{}
	for _, c := range cj {
		switch c.Op {
		case Eq:
			if v, dup := eq[c.Attr]; dup && v != c.Val {
				return nil, false
			}
			eq[c.Attr] = c.Val
		case Ne:
			if ne[c.Attr] == nil {
				ne[c.Attr] = map[data.Value]bool{}
			}
			ne[c.Attr][c.Val] = true
		}
	}
	//repolint:ordered existence check; any iteration order reaches the same verdict
	for a, v := range eq {
		if ne[a][v] {
			return nil, false
		}
	}
	// Rebuild in first-occurrence order for determinism.
	seen := map[Cond]bool{}
	for _, c := range cj {
		if c.Op == Ne {
			if _, fixed := eq[c.Attr]; fixed {
				continue // subsumed by equality on the same attribute
			}
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out, true
}

// SQL renders the conjunction, or "1 = 1" for the empty conjunction.
func (cj Conj) SQL(s *data.Schema) string {
	if len(cj) == 0 {
		return "1 = 1"
	}
	parts := make([]string, len(cj))
	for i, c := range cj {
		parts[i] = c.SQL(s)
	}
	return strings.Join(parts, " AND ")
}

// String renders the conjunction with positional attribute names.
func (cj Conj) String() string {
	if len(cj) == 0 {
		return "true"
	}
	parts := make([]string, len(cj))
	for i, c := range cj {
		parts[i] = fmt.Sprintf("A%d %s %d", c.Attr+1, c.Op, c.Val)
	}
	return strings.Join(parts, " AND ")
}

// Filter is a disjunction of conjunctions: the filter expression
// (S1 OR ... OR Sk) generated for a batch of scheduled nodes. A nil or empty
// Filter matches every row only if MatchAll was used; the zero Filter
// matches nothing.
type Filter struct {
	all   bool
	conjs []Conj
}

// MatchAll returns the filter that accepts every row (scanning for the root
// node, whose path predicate is empty).
func MatchAll() Filter { return Filter{all: true} }

// Or builds a filter from the given node predicates. If any conjunction is
// empty (the root), the filter degenerates to match-all, mirroring the
// paper's observation that early in tree growth a complete scan is needed
// anyway.
func Or(conjs ...Conj) Filter {
	f := Filter{}
	for _, cj := range conjs {
		if len(cj) == 0 {
			return MatchAll()
		}
		f.conjs = append(f.conjs, cj)
	}
	return f
}

// All reports whether the filter accepts every row.
func (f Filter) All() bool { return f.all }

// Conjs returns the filter's disjuncts (nil for match-all and empty
// filters). Callers must not modify the returned slice; it is exposed so
// cardinality estimators (engine partition hints) can walk the disjunction
// without re-parsing the SQL rendering.
func (f Filter) Conjs() []Conj { return f.conjs }

// Empty reports whether the filter accepts no rows.
func (f Filter) Empty() bool { return !f.all && len(f.conjs) == 0 }

// Eval reports whether the row satisfies the filter.
func (f Filter) Eval(r data.Row) bool {
	if f.all {
		return true
	}
	for _, cj := range f.conjs {
		if cj.Eval(r) {
			return true
		}
	}
	return false
}

// SQL renders the filter as a WHERE-clause expression.
func (f Filter) SQL(s *data.Schema) string {
	if f.all {
		return "1 = 1"
	}
	if len(f.conjs) == 0 {
		return "1 = 0"
	}
	parts := make([]string, len(f.conjs))
	for i, cj := range f.conjs {
		parts[i] = "(" + cj.SQL(s) + ")"
	}
	return strings.Join(parts, " OR ")
}

// String renders the filter for diagnostics.
func (f Filter) String() string {
	if f.all {
		return "true"
	}
	if len(f.conjs) == 0 {
		return "false"
	}
	parts := make([]string, len(f.conjs))
	for i, cj := range f.conjs {
		parts[i] = "(" + cj.String() + ")"
	}
	return strings.Join(parts, " OR ")
}
