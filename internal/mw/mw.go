// Package mw implements the paper's scalable classification middleware
// (§3–§4): the layer between a sufficient-statistics-driven classification
// client and the SQL backend.
//
// The client queues a batch of requests, one per active tree node, each
// asking for the node's counts (CC) table. The middleware's scheduler picks
// which requests to service next (priority Rules 1–3 of §4.2.2), the
// execution module builds all their CC tables in a single scan of the best
// available data source (§4.1.1), and the stager copies shrinking relevant
// data from the server to middleware files and to middleware memory
// (Rules 4–6 of §4.2.3, file splitting per §4.3.2). The client then consumes
// the fulfilled counts tables, grows the tree one level at those nodes, and
// queues requests for the new active nodes — the interaction of Figure 3.
package mw

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cc"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// StagingMode selects which staging tiers the middleware may use (§4.1.2:
// "staging can be completely disabled or can be restricted to only caching
// in middleware files ... or to only memory caching").
type StagingMode int

const (
	// StageNone disables staging: every batch scans the server.
	StageNone StagingMode = iota
	// StageFileOnly allows staging to middleware files but not to memory.
	StageFileOnly
	// StageMemoryOnly allows staging to middleware memory but not to files.
	StageMemoryOnly
	// StageFileAndMemory allows the full server -> file -> memory migration.
	StageFileAndMemory
)

// String names the staging mode.
func (m StagingMode) String() string {
	switch m {
	case StageNone:
		return "none"
	case StageFileOnly:
		return "file"
	case StageMemoryOnly:
		return "memory"
	case StageFileAndMemory:
		return "file+memory"
	}
	return fmt.Sprintf("staging(%d)", int(m))
}

// FilePolicy selects the file-splitting behaviour of §4.3.2 / Figure 6.
type FilePolicy int

const (
	// FileSplitThreshold creates a new, smaller file when the fraction of a
	// staged file's rows used by the current batch falls below Threshold
	// (configuration 3 of Figure 6 at 50%).
	FileSplitThreshold FilePolicy = iota
	// FilePerNode creates a new staging file for every node serviced
	// (configuration 1 of Figure 6; equivalent to a 100% threshold).
	FilePerNode
	// FileSingleton creates one staging file for the whole tree and
	// repeatedly scans it (configuration 2 of Figure 6).
	FileSingleton
)

// String names the file policy.
func (p FilePolicy) String() string {
	switch p {
	case FileSplitThreshold:
		return "split-threshold"
	case FilePerNode:
		return "file-per-node"
	case FileSingleton:
		return "singleton"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ServerAccess selects how the middleware reads the shrinking relevant
// subset from the server (§4.3.3). AccessScan is the paper's recommended
// mode; the others exist to reproduce the index-scan experiment (§5.2.5).
type ServerAccess int

const (
	// AccessScan uses sequential cursor scans with the filter expression
	// pushed down (the default and the paper's winner).
	AccessScan ServerAccess = iota
	// AccessKeyset builds a server keyset cursor over the relevant subset
	// once it shrinks below AuxThreshold and re-scans it with a
	// stored-procedure filter (§4.3.3c).
	AccessKeyset
	// AccessTIDJoin copies the TIDs of the relevant subset into a temp
	// table and retrieves the subset with a TID join (§4.3.3b).
	AccessTIDJoin
	// AccessCopyTable copies the relevant subset into a new server-side
	// temp table and scans that (§4.3.3a).
	AccessCopyTable
)

// String names the access mode.
func (a ServerAccess) String() string {
	switch a {
	case AccessScan:
		return "scan"
	case AccessKeyset:
		return "keyset"
	case AccessTIDJoin:
		return "tid-join"
	case AccessCopyTable:
		return "copy-table"
	}
	return fmt.Sprintf("access(%d)", int(a))
}

// ColumnarMode selects whether server scans run against the column-major,
// dictionary-encoded copy the engine keeps beside every heap (the vectorized
// filter-then-count path) or against the row-major heap.
type ColumnarMode int

const (
	// ColumnarAuto (the default) scans the columnar copy whenever the
	// batch's server source has one — the base table, and the temp tables of
	// AccessCopyTable; keyset and TID-join access stay on the row path
	// (TID-addressed fetches have no columnar analog). Results are identical
	// to the row path; the virtual clock and I/O counters reflect the
	// columnar cost shape (block evaluation, per-column pages, zone-map
	// skips).
	ColumnarAuto ColumnarMode = iota
	// ColumnarOff forces every scan onto the row-major heap path — the
	// ablation arm of the columnar experiment.
	ColumnarOff
)

// String names the columnar mode.
func (c ColumnarMode) String() string {
	switch c {
	case ColumnarAuto:
		return "auto"
	case ColumnarOff:
		return "off"
	}
	return fmt.Sprintf("columnar(%d)", int(c))
}

// Config tunes the middleware. The zero value is usable: no staging, an
// effectively unlimited memory budget, and sequential server access.
type Config struct {
	// Memory is the middleware memory budget in bytes, shared between CC
	// tables under construction (or awaiting consumption) and data staged
	// in memory. Zero means unlimited.
	Memory int64
	// FileBudget limits the total bytes of middleware staging files. Zero
	// means unlimited (when file staging is enabled by Staging).
	FileBudget int64
	// Staging selects the allowed staging tiers.
	Staging StagingMode
	// FilePolicy selects file-splitting behaviour (Figure 6).
	FilePolicy FilePolicy
	// Threshold is the file-split threshold for FileSplitThreshold
	// (default 0.5, the paper's 50%).
	Threshold float64
	// Dir is the directory for staging files ("" = the OS temp dir).
	Dir string
	// Access selects the server access mode (§4.3.3 experiments).
	Access ServerAccess
	// AuxThreshold is the relevant-data fraction below which the auxiliary
	// server structures of §4.3.3 are built (default 0.10, the paper's
	// "around 10%").
	AuxThreshold float64
	// MaxBatch caps the number of nodes serviced per scan (0 = unlimited);
	// the paper's memory budget normally provides the cap.
	MaxBatch int
	// Workers is the number of parallel scan workers per batch. 0 or 1 (the
	// default) preserves the strictly sequential pipeline. With Workers > 1,
	// Step splits each batched scan into disjoint partitions (page ranges at
	// the server, row ranges for staged files and memory) processed by real
	// goroutines. Each worker counts into private CC shard tables, captures
	// staging rows into private buffers, spends a 1/Workers slice of the
	// memory budget, and charges a forked lane meter; after the barrier the
	// shards merge in partition order and the parent clock advances by the
	// slowest lane (sim.Meter.Join), so results, staging contents and the
	// virtual clock are bit-for-bit reproducible regardless of GOMAXPROCS or
	// goroutine interleaving. The same lane model covers every pipeline
	// stage: the §4.3.3 auxiliary builds partition their qualifying scan,
	// keyset and TID-join batches scan disjoint TID ranges per worker, and
	// the SQL fallback fans each request's GROUP BY arms out over lanes.
	// Only a scan whose per-worker budget slice would round down to zero
	// falls back to one worker.
	Workers int
	// Columnar selects the scan path for server batches: ColumnarAuto (the
	// default) runs the vectorized columnar kernel wherever a columnar copy
	// exists, ColumnarOff preserves the row-major path as the ablation.
	Columnar ColumnarMode
	// Session tags this middleware's batches with a fleet session id (> 0)
	// in traces and spans. Zero — a single-tenant build — emits exactly the
	// spans it always did.
	Session int

	// Ablation switches. Both default to off (= the paper's design) and
	// exist for the ablation experiments that quantify each design choice.

	// NoFilterPushdown disables §4.3.1's filter expressions: every server
	// scan transmits the whole table and the middleware filters received
	// rows itself. Trees produced are unchanged; only cost differs.
	NoFilterPushdown bool
	// FIFOScheduling disables Rule 3: eligible requests are admitted in
	// arrival order instead of by increasing estimated counts-table size.
	FIFOScheduling bool
	// NoHistogramHints disables skew-aware partitioning: parallel scans,
	// aux builds and fallback arms fall back to equal-width splits and
	// round-robin arm assignment instead of consulting per-page value
	// statistics. Results are unchanged; only lane balance (and therefore
	// the virtual clock) differs.
	NoHistogramHints bool

	// Trace, when non-nil, receives one Event per executed batch — the
	// scheduling decisions (source, serviced nodes, fallbacks, staging)
	// that are otherwise invisible to the client. It fires on every path,
	// including Workers > 1 batches (which add per-lane detail) and batches
	// serviced entirely by the SQL fallback.
	Trace func(Event)

	// Metrics, when non-nil, receives one obs.BatchStats per executed batch:
	// counter deltas, lane-imbalance figures, and budget/tier residency at
	// batch end. Wire it (together with the engine's tracer) through
	// obs.Collector.Proc.
	Metrics *obs.ProcMetrics
}

// Event describes one executed middleware batch for tracing.
type Event struct {
	Batch         int         // 1-based batch sequence number
	Source        string      // "server", "file" or "memory"
	Nodes         []int       // node ids serviced by the scan
	Fallback      []int       // node ids serviced by the SQL fallback
	Requeued      []int       // node ids shed mid-scan and returned to the queue
	NewFiles      int         // staging files created by this batch
	StagedMemRows int64       // rows staged into middleware memory by this batch
	Lanes         []EventLane // per-worker detail for Workers > 1 scans (nil otherwise)
}

// EventLane describes one worker lane of a parallel batch scan.
type EventLane struct {
	Lane    int           // 1-based lane index (partition order)
	Elapsed time.Duration // lane virtual time; the max lane is the batch's critical path
	Rows    int64         // rows the lane read from its partition of the source
}

// Request asks the middleware for the counts table of one active node.
// NodeID and ParentID are client-assigned; the middleware uses the parent
// chain to locate staged data an ancestor left behind.
type Request struct {
	NodeID   int
	ParentID int // -1 for the root
	// Path is the node's full path predicate (conjunction of edge
	// conditions from the root).
	Path predicate.Conj
	// Attrs lists the attribute indices still present at this node.
	Attrs []int
	// Rows is the node's exact data size, known from the parent's CC table
	// (§4.2.1); the root uses the table row count.
	Rows int64
	// EstCC is the estimated number of CC entries (cc.EstimateEntries).
	EstCC int64
}

// Result is one fulfilled request.
type Result struct {
	Req *Request
	CC  *cc.Table
	// ViaSQL reports that the node was serviced by the SQL fallback path
	// (its counts table did not fit in middleware memory, §4.1.1).
	ViaSQL bool
	// Source describes where the data was read from ("server", "file",
	// "memory", "sql"), the S/I/L location tags of Figure 1.
	Source string
}

// Middleware is the scalable classification middleware. Create one with New,
// drive it with Enqueue / Step / CloseNode, and Close it to release staging
// files.
type Middleware struct {
	srv    *engine.Server
	meter  *sim.Meter
	schema *data.Schema
	cfg    Config

	queue   []*Request
	parent  map[int]int          // nodeID -> parentID
	sources map[int][]*stageData // nodeID -> stages covering that node's subtree
	open    map[int]*Result      // fulfilled but not yet closed nodes (CC memory charged)

	files    *fileStore
	stageSeq int
	// ccHold is the memory charged for open (unconsumed) CC tables.
	ccHold int64
	// stagedMem is the memory charged for rows staged in middleware memory.
	stagedMem int64

	closed bool
}

// New creates a middleware over the server.
func New(srv *engine.Server, cfg Config) (*Middleware, error) {
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}
	if cfg.AuxThreshold == 0 {
		cfg.AuxThreshold = 0.10
	}
	if cfg.Memory < 0 || cfg.FileBudget < 0 {
		return nil, fmt.Errorf("mw: negative budget")
	}
	fs, err := newFileStore(cfg.Dir, srv.Meter(), srv.Schema(), cfg.FileBudget, srv.Tracer)
	if err != nil {
		return nil, err
	}
	// Propagate the hint ablation to the server so aux builders and bounds
	// queries (engine-side histogram consumers) follow the same switch.
	srv.SetSplitHints(!cfg.NoHistogramHints)
	return &Middleware{
		srv:     srv,
		meter:   srv.Meter(),
		schema:  srv.Schema(),
		cfg:     cfg,
		parent:  make(map[int]int),
		sources: make(map[int][]*stageData),
		open:    make(map[int]*Result),
		files:   fs,
	}, nil
}

// Close releases all staging files.
func (m *Middleware) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	return m.files.Close()
}

// Config returns the middleware configuration.
func (m *Middleware) Config() Config { return m.cfg }

// Meter returns the middleware's meter.
func (m *Middleware) Meter() *sim.Meter { return m.meter }

// Tracer returns the observability tracer attached to the backing engine
// (nil when tracing is disabled). The middleware and the client open their
// spans on the same tracer as the engine so the whole build shares one
// virtual-clock timeline.
func (m *Middleware) Tracer() *obs.Tracer { return m.srv.Tracer() }

// Schema returns the classification schema of the backing table.
func (m *Middleware) Schema() *data.Schema { return m.schema }

// DataRows returns the row count of the backing table (the root node's
// exact data size).
func (m *Middleware) DataRows() int64 { return m.srv.NumRows() }

// Pending returns the number of queued, unserviced requests.
func (m *Middleware) Pending() int { return len(m.queue) }

// Enqueue places requests on the request queue. Requests must have unique
// NodeIDs; a request's parent must be either -1 or a previously seen node.
func (m *Middleware) Enqueue(reqs ...*Request) error {
	for _, r := range reqs {
		if _, dup := m.parent[r.NodeID]; dup {
			return fmt.Errorf("mw: duplicate node id %d", r.NodeID)
		}
		if r.ParentID != -1 {
			if _, ok := m.parent[r.ParentID]; !ok {
				return fmt.Errorf("mw: node %d references unknown parent %d", r.NodeID, r.ParentID)
			}
		}
		m.parent[r.NodeID] = r.ParentID
		m.queue = append(m.queue, r)
		// Register the node with any ancestor staging sources so they
		// stay alive until the subtree is finished.
		for _, sd := range m.ancestorSources(r.NodeID) {
			sd.openNodes[r.NodeID] = true
		}
	}
	return nil
}

// CloseNode tells the middleware the client is done with a fulfilled node:
// its CC table memory is released and, once a staged data set has no open
// nodes left beneath it, the staged data is freed (the "flushing D out of
// memory and freeing up the resource" of §4.2.2). Children of the node must
// be enqueued before closing it, or ancestor staging may be freed too early.
func (m *Middleware) CloseNode(nodeID int) {
	if res, ok := m.open[nodeID]; ok {
		m.ccHold -= res.CC.Bytes()
		delete(m.open, nodeID)
	}
	for _, sd := range m.ancestorSources(nodeID) {
		delete(sd.openNodes, nodeID)
		if len(sd.openNodes) == 0 {
			m.freeStage(sd)
		}
	}
}

// ancestorSources returns the staged data sets registered at the node or any
// of its ancestors, nearest first (stages at the same node in creation
// order).
func (m *Middleware) ancestorSources(nodeID int) []*stageData {
	var out []*stageData
	seen := map[*stageData]bool{}
	id := nodeID
	for {
		for _, sd := range m.sources[id] {
			if !sd.freed && !seen[sd] {
				seen[sd] = true
				out = append(out, sd)
			}
		}
		p, ok := m.parent[id]
		if !ok || p == -1 {
			break
		}
		id = p
	}
	return out
}

// freeStage releases one staged data set: memory returns to the budget,
// files are deleted, server-side temp tables are dropped.
func (m *Middleware) freeStage(sd *stageData) {
	if sd.freed {
		return
	}
	sd.freed = true
	if sd.mem != nil {
		m.stagedMem -= sd.memBytes
		sd.mem = nil
	}
	if sd.file != nil {
		m.files.remove(sd.file)
		sd.file = nil
	}
	if sd.subSrv != nil {
		sd.subSrv.Drop()
		sd.subSrv = nil
	}
	sd.keyset = nil
	sd.tidTab = nil
	for _, id := range sd.keyNodes {
		list := m.sources[id]
		out := list[:0]
		for _, s := range list {
			if s != sd {
				out = append(out, s)
			}
		}
		if len(out) == 0 {
			delete(m.sources, id)
		} else {
			m.sources[id] = out
		}
	}
}

// memBudgetLeft returns the memory remaining for CC tables after staged data
// and open CC tables, or a very large number when unlimited.
func (m *Middleware) memBudgetLeft() int64 {
	if m.cfg.Memory == 0 {
		return 1 << 62
	}
	left := m.cfg.Memory - m.stagedMem - m.ccHold
	if left < 0 {
		return 0
	}
	return left
}

// MemoryInUse returns the bytes currently charged against the middleware
// memory budget (staged rows plus open CC tables).
func (m *Middleware) MemoryInUse() int64 { return m.stagedMem + m.ccHold }

// SetMemoryBudget re-tunes the middleware memory budget mid-build (zero
// means unlimited). The multi-tenant fleet calls it when sessions join or
// leave, re-slicing one physical budget fairly across the builds that share
// it; the new ceiling takes effect at the next batch's admission check.
func (m *Middleware) SetMemoryBudget(b int64) {
	if b < 0 {
		b = 0
	}
	m.cfg.Memory = b
}

// FileBytesInUse returns the bytes of live middleware staging files.
func (m *Middleware) FileBytesInUse() int64 { return m.files.bytesInUse }

// sortByEstCC orders requests by increasing estimated counts-table size,
// breaking ties by NodeID for determinism (Rule 3).
func sortByEstCC(reqs []*Request) {
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].EstCC != reqs[j].EstCC {
			return reqs[i].EstCC < reqs[j].EstCC
		}
		return reqs[i].NodeID < reqs[j].NodeID
	})
}

// sortByRowsDesc orders requests by decreasing data size, ties by NodeID
// (Rule 5).
func sortByRowsDesc(reqs []*Request) {
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Rows != reqs[j].Rows {
			return reqs[i].Rows > reqs[j].Rows
		}
		return reqs[i].NodeID < reqs[j].NodeID
	})
}
