package mw

import (
	"sort"
	"sync"

	"repro/internal/cc"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// This file fans the batch's SQL-fallback requests out over forked lanes.
// The serial path executes one §2.3 UNION-of-GROUP-BY statement per request
// (sqlCounts); each UNION arm is an independent GROUP BY that scans the table
// on its own, so the natural parallel unit is the arm, not the statement.
// The statement itself is unchanged — startup is charged once per request on
// the parent — while its arms execute on the server's parallel CPUs: each
// arm scans on a private lane meter (buffer-pool-warm or cold scan +
// per-row aggregation — see engine.CountsArmScan), counting into a private
// cc.Table shard; after the barrier the shards merge in arm order on the
// parent meter. Arms count disjoint attributes, so the merged table equals
// the serial statement's parse, and lanes touch only lane-local state,
// keeping results and the virtual clock bit-for-bit reproducible across
// GOMAXPROCS.

// fbArm identifies one GROUP BY arm of one fallback request: the arm's
// grouping attribute, or the class-histogram arm (attr == class index,
// class == true) that closes each request's UNION.
type fbArm struct {
	reqIdx int
	attr   int
	class  bool
}

// fallbackArms flattens the fallback requests into per-arm work units in
// deterministic order: for each request (in fallback order) its attribute
// arms in Attrs order, then the class arm — mirroring CountsSQL's arm order.
func fallbackArms(reqs []*Request, classIdx int) []fbArm {
	var units []fbArm
	for ri, r := range reqs {
		for _, a := range r.Attrs {
			units = append(units, fbArm{reqIdx: ri, attr: a})
		}
		units = append(units, fbArm{reqIdx: ri, attr: classIdx, class: true})
	}
	return units
}

// fallbackWorkers decides the lane count for the batch's SQL-fallback
// requests: one work unit per GROUP BY arm, capped at Config.Workers. Below
// two units (or Workers <= 1) the serial per-request path runs instead.
func (m *Middleware) fallbackWorkers(reqs []*Request) int {
	w := m.cfg.Workers
	if w <= 1 || len(reqs) == 0 {
		return 1
	}
	units := 0
	for _, r := range reqs {
		units += len(r.Attrs) + 1
	}
	if units < w {
		w = units
	}
	if w < 2 {
		return 1
	}
	return w
}

// fallbackArmWeights estimates each arm's scan cost: the page I/O (cold
// scans only) and per-row CPU every arm pays, plus one aggregation step per
// row the arm's request filter is estimated to match, from the table's
// per-page statistics. Returns nil when hints are disabled, sending the
// caller back to round-robin assignment.
func (m *Middleware) fallbackArmWeights(units []fbArm, reqs []*Request, warm bool) []int64 {
	costs := m.meter.Costs()
	est := make([]int64, len(reqs))
	for i, r := range reqs {
		e := m.srv.EstimateMatch(predicate.Or(r.Path))
		if e < 0 {
			return nil
		}
		est[i] = e
	}
	base := m.srv.NumRows() * costs.ServerRowCPU
	if !warm {
		base += int64(m.srv.NumPages()) * costs.ServerPageIO
	}
	weights := make([]int64, len(units))
	for k, u := range units {
		weights[k] = base + est[u.reqIdx]*costs.SQLAggRow
	}
	return weights
}

// fallbackArmLanes assigns each arm unit to a lane. With histogram hints a
// deterministic longest-processing-time greedy packs heavy arms first onto
// the least-loaded lane (ties break toward lower unit index and lower lane
// index), so a batch whose requests match very different row counts still
// balances; without hints it is the static round-robin k % nworkers. Either
// way the schedule is a pure function of the unit list and table stats, and
// shards still merge in global unit order, so results never depend on it.
func (m *Middleware) fallbackArmLanes(units []fbArm, reqs []*Request, nworkers int, warm bool) []int {
	laneOf := make([]int, len(units))
	weights := m.fallbackArmWeights(units, reqs, warm)
	if weights == nil {
		for k := range laneOf {
			laneOf[k] = k % nworkers
		}
		return laneOf
	}
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	load := make([]int64, nworkers)
	for _, k := range order {
		best := 0
		for l := 1; l < nworkers; l++ {
			if load[l] < load[best] {
				best = l
			}
		}
		laneOf[k] = best
		load[best] += weights[k]
	}
	return laneOf
}

// runFallbackParallel services the fallback requests with nworkers lanes and
// returns one counts table per request, in request order. Arms are assigned
// to lanes by fallbackArmLanes (weighted LPT under histogram hints,
// round-robin otherwise) — a static schedule that is a pure function of the
// unit list and table statistics — and the post-barrier merge charges the
// serial per-entry shard-merge cost on the parent, like the parallel scan's
// CC merge.
func (m *Middleware) runFallbackParallel(reqs []*Request, nworkers int) []*cc.Table {
	classIdx := m.schema.ClassIndex()
	units := fallbackArms(reqs, classIdx)
	tr := m.srv.Tracer()
	psp := tr.Start(obs.CatFallback, "sql-fallback-parallel").
		Attr("requests", int64(len(reqs))).Attr("arms", int64(len(units)))
	psp.SetNodes(nodeIDs(reqs))

	// One UNION statement per request reaches the server, exactly as on the
	// serial path; only its arms execute on parallel CPUs. Statement startup
	// is therefore charged per request on the parent, never per arm.
	startup := m.meter.Costs().QueryStartup
	for range reqs {
		m.meter.Charge(sim.CtrSQLStatements, startup, 1)
	}

	// Fault the table into the shared buffer pool on the parent meter before
	// forking (a no-op charge when earlier statements left it resident, and
	// skipped entirely when the table exceeds the pool). Lanes then scan warm
	// or cold exactly like the serial UNION's arms would, without ever
	// touching the pool from a goroutine.
	warm := m.srv.WarmTable()
	laneOf := m.fallbackArmLanes(units, reqs, nworkers, warm)

	lanes := m.meter.Fork(nworkers)
	ltrs := tr.ForkLanes(lanes)
	shards := make([]*cc.Table, len(units))
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		var ltr *obs.Tracer
		if ltrs != nil {
			ltr = ltrs[w]
		}
		wg.Add(1)
		go func(w int, lane *sim.Meter, ltr *obs.Tracer) {
			defer wg.Done()
			costs := lane.Costs()
			for k := 0; k < len(units); k++ {
				if laneOf[k] != w {
					continue
				}
				u := units[k]
				r := reqs[u.reqIdx]
				asp := ltr.Start(obs.CatFallback, "fallback-arm").
					Attr("node", int64(r.NodeID)).Attr("attr", int64(u.attr))
				t := cc.New()
				m.srv.CountsArmScan(predicate.Or(r.Path), lane, warm, func(row data.Row) {
					t.Add(u.attr, row[u.attr], row[classIdx], 1)
				})
				// One transmitted result row per aggregated group, matching
				// the serial statement's result-set transfer.
				lane.Charge(sim.CtrRowsTransmitted, costs.RowTransmit, int64(t.Entries()))
				shards[k] = t
				asp.SetSource("sql").SetRows(int64(t.Entries())).End()
			}
		}(w, lanes[w], ltr)
	}
	wg.Wait()
	m.meter.Join(lanes)
	tr.JoinLanes(ltrs)

	// Merge arm shards per request in arm order on the parent meter. Arms
	// group disjoint attributes, so the merge is pure accumulation; the class
	// arm (always a request's last unit) carries the request's row count.
	mergeCost := m.meter.Costs().MergeEntry
	out := make([]*cc.Table, len(reqs))
	for i := range out {
		out[i] = cc.New()
	}
	for k, u := range units {
		t := shards[k]
		m.meter.Charge(sim.CtrShardMergeEntries, mergeCost, int64(t.Entries()))
		out[u.reqIdx].Merge(t)
		if u.class {
			var rows int64
			t.Walk(func(_ cc.Key, n int64) { rows += n })
			out[u.reqIdx].SetRows(rows)
		}
	}
	psp.End()
	return out
}
